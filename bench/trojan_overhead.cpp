// E4 — Sec. III quantified: the hardware payload an untrusted foundry
// must hide for every attack scenario (a)-(e), across key-register sizes
// (the paper's running example is 128 bits), plus whether the scenario
// actually works against the basic (Fig. 1) and modified (Fig. 3)
// schemes. Payload gate-equivalents are the side-channel detectability
// argument: (e) is the only cheap Trojan, and the modified scheme kills it.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "chip/chip.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "util/parallel.h"
#include "util/table.h"

using namespace orap;

namespace {

OrapChip build_chip(const Netlist& core, std::size_t key_bits,
                    OrapVariant variant, TrojanKind kind, std::uint64_t seed) {
  LockedCircuit lc = lock_weighted(core, key_bits, 3, seed);
  OrapOptions opt;
  opt.variant = variant;
  opt.trojan = kind;
  return OrapChip(std::move(lc), 8, opt, seed + 1);
}

bool breaks(OrapChip& chip, Rng& rng) {
  chip.trigger_trojan();
  chip.power_on();
  if (chip.options().trojan == TrojanKind::kSuppressPulsePerCell) {
    chip.set_scan_enable(true);
    const BitVec image = chip.scan_unload();
    BitVec leaked(chip.lfsr_size());
    for (std::size_t i = 0; i < chip.lfsr_size(); ++i)
      leaked.set(i, image.get(*chip.scan_image_position(
                        ScanCell::Kind::kLfsr, i)));
    chip.exit_test_mode();
    return leaked == chip.correct_key();
  }
  Simulator sim(chip.locked_circuit().netlist);
  const std::size_t nd = chip.num_pis() + chip.num_state_ffs();
  for (int t = 0; t < 4; ++t) {
    const BitVec data = BitVec::random(nd, rng);
    const BitVec golden = sim.run_single(
        chip.locked_circuit().assemble_input(data, chip.correct_key()));
    BitVec got;
    if (chip.options().trojan == TrojanKind::kFreezeStateFfs ||
        chip.options().trojan == TrojanKind::kReplayResponses) {
      chip.set_scan_enable(true);
      BitVec image(chip.scan_image_size());
      for (std::size_t j = 0; j < chip.num_state_ffs(); ++j)
        image.set(*chip.scan_image_position(ScanCell::Kind::kStateFf, j),
                  data.get(chip.num_pis() + j));
      chip.scan_load(image);
      chip.exit_test_mode();
      BitVec pi(chip.num_pis());
      for (std::size_t i = 0; i < chip.num_pis(); ++i) pi.set(i, data.get(i));
      const BitVec po = chip.read_outputs(pi);
      chip.clock(pi);
      chip.set_scan_enable(true);
      const BitVec out = chip.scan_unload();
      got = BitVec(chip.num_pos() + chip.num_state_ffs());
      for (std::size_t o = 0; o < chip.num_pos(); ++o) got.set(o, po.get(o));
      for (std::size_t j = 0; j < chip.num_state_ffs(); ++j)
        got.set(chip.num_pos() + j,
                out.get(*chip.scan_image_position(ScanCell::Kind::kStateFf, j)));
      chip.exit_test_mode();
    } else {
      got = scan_oracle_query(chip, data);
    }
    if (got != golden) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.banner("Trojan payload overhead per attack scenario (Sec. III)");
  bench::JsonReport report("trojan_overhead", args);

  GenSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 28;
  spec.num_gates = args.full ? 2000 : 600;
  spec.depth = 10;
  spec.seed = 51;
  const Netlist core = generate_circuit(spec);

  const struct {
    TrojanKind kind;
    const char* name;
    const char* tag;
  } scenarios[] = {
      {TrojanKind::kSuppressPulsePerCell, "(a) suppress pulse/cell", "a"},
      {TrojanKind::kBypassLfsrInScan, "(b) bypass LFSR in scan", "b"},
      {TrojanKind::kShadowRegister, "(c) shadow register", "c"},
      {TrojanKind::kXorTrees, "(d) XOR trees", "d"},
      {TrojanKind::kFreezeStateFfs, "(e) freeze state FFs", "e"},
      {TrojanKind::kReplayResponses, "(e') record+replay responses", "e2"},
  };
  constexpr std::size_t kKeySizes[] = {64, 128, 256};
  constexpr std::size_t kNumScenarios = std::size(scenarios);
  constexpr std::size_t kNumKeySizes = std::size(kKeySizes);

  // Every (key size, scenario) cell builds its own pair of chips and its
  // own RNG stream derived from the cell index — independent work, fanned
  // out across the pool, deterministic at any thread count.
  struct Cell {
    double ge = 0.0;
    bool breaks_basic = false, breaks_modified = false;
  };
  std::vector<Cell> cells(kNumKeySizes * kNumScenarios);
  parallel_for(1, cells.size(), [&](std::size_t idx) {
    const std::size_t key_bits = kKeySizes[idx / kNumScenarios];
    const auto& sc = scenarios[idx % kNumScenarios];
    Rng rng = chunk_rng(52, idx);
    OrapChip basic =
        build_chip(core, key_bits, OrapVariant::kBasic, sc.kind, 100);
    OrapChip modified =
        build_chip(core, key_bits, OrapVariant::kModified, sc.kind, 200);
    // Payload can depend on the scheme variant ((e')'s replay storage
    // only exists against kModified); report the larger footprint.
    cells[idx].ge = std::max(basic.trojan_cost().gate_equivalents,
                             modified.trojan_cost().gate_equivalents);
    cells[idx].breaks_basic = breaks(basic, rng);
    cells[idx].breaks_modified = breaks(modified, rng);
  });

  for (std::size_t ki = 0; ki < kNumKeySizes; ++ki) {
    const std::size_t key_bits = kKeySizes[ki];
    std::printf("-- key register: %zu bits --\n", key_bits);
    Table t({"Scenario", "Payload (GE)", "GE per key bit", "vs basic",
             "vs modified"});
    for (std::size_t si = 0; si < kNumScenarios; ++si) {
      const Cell& c = cells[ki * kNumScenarios + si];
      t.add_row({scenarios[si].name, Table::num(c.ge, 1),
                 Table::num(c.ge / static_cast<double>(key_bits), 2),
                 c.breaks_basic ? "BREAKS" : "defended",
                 c.breaks_modified ? "BREAKS" : "defended"});
      const std::string tag =
          "k" + std::to_string(key_bits) + "_" + scenarios[si].tag;
      report.add(tag + "_ge", c.ge, 1);
      report.add(tag + "_breaks_basic",
                 static_cast<std::size_t>(c.breaks_basic));
      report.add(tag + "_breaks_modified",
                 static_cast<std::size_t>(c.breaks_modified));
    }
    t.print(std::cout);
    std::printf("\n");
  }
  report.finish();
  std::printf(
      "Paper check (128-bit register): scenario (a) costs ~64 NAND2-"
      "equivalents, as stated\nin Sec. III-a; (b) > (a); (c) > (b); (d) is "
      "the largest; (e) is a few gates but only\nbreaks the basic scheme — "
      "the modified scheme (Fig. 3) defends it. The record-and-\nreplay "
      "escalation (e') re-breaks the modified scheme, but at a payload "
      "proportional\nto response_cycles x LFSR/2 storage bits — the "
      "modified scheme's real contribution\nis raising the cheapest "
      "Trojan from ~4 GE to hundreds.\n");
  return 0;
}
