// Oracle-resilience sweep: how the SAT attack degrades — and recovers —
// when the oracle misbehaves. The paper's threat model gives the attacker
// a working chip; a real bench setup adds noise (marginal scan timing,
// contact resistance), transient failures, and hard query limits. This
// bench sweeps response bit-flip rate x majority votes x quarantine on a
// fixed embedded circuit and reports, per cell: attack status, whether the
// recovered key is functionally correct, DIPs, logical queries, and the
// resilience accounting (retries / vote queries / evicted / re-queried
// pairs).
//
// Expected shape: at noise 0 every configuration recovers the key with
// identical query counts (the resilience machinery is pass-through). At
// small noise the baseline attack dies with an inconsistent-oracle verdict
// or lands on a wrong key, while quarantine recovers the correct key at
// the cost of extra queries, and votes suppress the noise before it ever
// reaches the learner. Every cell is seeded and deterministic, so the
// --json record is byte-identical at any thread count.

#include <cstdio>
#include <iostream>
#include <string>

#include "attacks/faulty_oracle.h"
#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "bench_common.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "util/table.h"

using namespace orap;

namespace {

Netlist resilience_target(std::size_t gates, std::uint64_t seed) {
  GenSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 16;
  spec.num_gates = gates;
  spec.depth = 8;
  spec.seed = seed;
  return generate_circuit(spec);
}

struct Cell {
  double noise;
  std::size_t votes;
  bool quarantine;
};

const char* status_str(SatAttackResult::Status s) {
  switch (s) {
    case SatAttackResult::Status::kKeyFound: return "key found";
    case SatAttackResult::Status::kIterationLimit: return "iter limit";
    case SatAttackResult::Status::kSolverBudget: return "solver budget";
    case SatAttackResult::Status::kInconsistentOracle: return "inconsistent";
    case SatAttackResult::Status::kDegraded: return "degraded";
    case SatAttackResult::Status::kOracleError: return "oracle error";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.banner("Oracle resilience: noise x votes x quarantine");
  bench::JsonReport report("oracle_resilience", args);

  // Random XOR locking takes tens of DIPs to converge, so enough response
  // bits cross the noisy channel for corruption to actually land (weighted
  // locking would converge in a couple of DIPs and dodge the noise).
  const std::size_t gates = args.full ? 1200 : 400;
  const std::size_t key_bits = args.full ? 48 : 32;
  const Netlist n = resilience_target(gates, 77);
  const LockedCircuit lc = lock_random_xor(n, key_bits, 5);

  const double noises[] = {0.0, 0.002, 0.01};
  const Cell policies[] = {
      // {noise filled per row}
      {0.0, 1, false},  // baseline: no resilience
      {0.0, 1, true},   // quarantine only
      {0.0, 3, false},  // votes only
      {0.0, 3, true},   // votes + quarantine
  };

  Table t({"Noise", "Votes", "Quar", "Status", "Key OK", "DIPs", "Queries",
           "Evicted", "Re-asked"});
  for (const double noise : noises) {
    for (const Cell& p : policies) {
      GoldenOracle golden(lc);
      NoisyOracle noisy(golden, noise, /*seed=*/0xbadc0ffeULL);
      Oracle& oracle = noise > 0.0 ? static_cast<Oracle&>(noisy)
                                   : static_cast<Oracle&>(golden);
      SatAttackOptions opts;
      opts.max_iterations = 4096;
      opts.portfolio_size = args.portfolio;
      opts.preprocess = args.preprocess;
      opts.cube_depth = static_cast<std::uint32_t>(args.cube);
      opts.deadline_ms = args.deadline_ms;
      opts.incremental = args.incremental;
      opts.resilience.votes = p.votes;
      opts.resilience.quarantine = p.quarantine;
      // A noisy oracle with retries off: only corrupted responses, never
      // transient failures, so retries stay out of this sweep's scope.
      const SatAttackResult r = sat_attack(lc, oracle, opts);

      bool key_ok = false;
      if (r.status == SatAttackResult::Status::kKeyFound ||
          r.status == SatAttackResult::Status::kDegraded) {
        GoldenOracle verify(lc);
        key_ok = verify_key_against_oracle(lc, r.key, verify, 128, 3) == 0;
      }
      char noise_buf[16];
      std::snprintf(noise_buf, sizeof noise_buf, "%.3f", noise);
      t.add_row({noise_buf, std::to_string(p.votes),
                 p.quarantine ? "on" : "off", status_str(r.status),
                 key_ok ? "YES" : "no", std::to_string(r.iterations),
                 std::to_string(r.oracle_queries),
                 std::to_string(r.evicted_pairs),
                 std::to_string(r.requeried_pairs)});

      const std::string tag = std::string("n") + noise_buf + "_v" +
                              std::to_string(p.votes) +
                              (p.quarantine ? "_q1" : "_q0");
      report.add_string(tag + "_status", status_str(r.status));
      report.add(tag + "_key_ok", static_cast<std::size_t>(key_ok ? 1 : 0));
      report.add(tag + "_dips", r.iterations);
      report.add(tag + "_queries", r.oracle_queries);
      report.add(tag + "_vote_queries", r.vote_queries);
      report.add(tag + "_evicted", r.evicted_pairs);
      report.add(tag + "_requeried", r.requeried_pairs);
    }
  }
  t.print(std::cout);
  report.finish();
  std::printf(
      "\nReading: the attack itself is exact inference — a single corrupted "
      "response poisons\nthe learned key constraints, so the baseline row "
      "dies (inconsistent / wrong key) at\nany nonzero noise. Quarantine "
      "isolates the poisoned I/O pairs via unsat cores over\nper-pair "
      "selectors, re-queries them, and recovers the exact key; majority "
      "voting\nsuppresses the noise upstream at a fixed query "
      "multiplier.\n");
  return 0;
}
