// Oracle-serving throughput: the batching-vs-latency tradeoff over the
// serve/wire.h protocol. A served oracle charges its round-trip latency
// once per request FRAME (exactly like a tester session charges its cable
// round-trip once per scan burst), so B batched queries pay one round
// trip where B unbatched queries pay B. This bench drives a real
// OracleServer over a real fd transport (pipe pair + server thread — the
// same read/write/poll path the TCP and subprocess transports use) and
// sweeps injected latency x batch size, reporting queries/sec per cell
// and the speedup over the unbatched column.
//
// Expected shape: at zero injected latency batching still wins a modest
// factor (fewer syscalls and frame headers per query); at >= 1 ms
// injected latency the unbatched column collapses to ~1/latency queries
// per second while batched throughput holds, so the speedup grows roughly
// linearly in the batch size until simulation cost dominates. A pipelined
// row (all frames in flight before any reply is read) is included at each
// latency; it overlaps client/server framing work (visible at 0 latency)
// but cannot beat the injected latency, because the server charges it per
// frame IN SERIES — a single half-duplex tester session, not a window of
// independent links. Batching, not pipelining, is how you defeat a slow
// session.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "attacks/oracle.h"
#include "bench_common.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "serve/oracle_server.h"
#include "serve/transport.h"
#include "serve/wire.h"
#include "util/bitvec.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/table.h"

using namespace orap;

namespace {

LockedCircuit serve_target(std::size_t gates) {
  GenSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 16;
  spec.num_gates = gates;
  spec.depth = 8;
  spec.seed = 9;
  return lock_weighted(generate_circuit(spec), 16, 3, 10);
}

struct Pipes {
  std::unique_ptr<serve::FdTransport> client;
  std::unique_ptr<serve::FdTransport> server;
};

Pipes make_pipes() {
  int c2s[2], s2c[2];
  ORAP_CHECK(::pipe(c2s) == 0 && ::pipe(s2c) == 0);
  Pipes p;
  p.client = std::make_unique<serve::FdTransport>(s2c[0], c2s[1]);
  p.server = std::make_unique<serve::FdTransport>(c2s[0], s2c[1]);
  return p;
}

/// Sends `total` queries in frames of `batch`; with `pipelined` all
/// frames go out before any reply is read (the transports are ordered
/// streams, so replies come back in frame order). Returns wall seconds.
double drive(serve::Transport& t, const std::vector<BitVec>& inputs,
             std::size_t batch, bool pipelined, std::size_t num_outputs) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<BitVec>> frames;
  for (std::size_t off = 0; off < inputs.size(); off += batch) {
    const std::size_t n = std::min(batch, inputs.size() - off);
    frames.emplace_back(inputs.begin() + off, inputs.begin() + off + n);
  }
  std::size_t answered = 0;
  const auto read_reply = [&](std::size_t expect) {
    serve::Frame f;
    ORAP_CHECK(serve::read_frame(t, &f));
    ORAP_CHECK(f.type == serve::FrameType::kBatchReply);
    std::vector<OracleResult> rs;
    ORAP_CHECK(serve::decode_batch_reply(f.body, num_outputs, &rs));
    ORAP_CHECK(rs.size() == expect);
    for (const OracleResult& r : rs) answered += r.ok() ? 1 : 0;
  };
  if (pipelined) {
    for (const auto& fr : frames)
      ORAP_CHECK(serve::write_frame(t, serve::FrameType::kQueryBatch,
                                    serve::encode_query_batch(fr, false)));
    for (const auto& fr : frames) read_reply(fr.size());
  } else {
    for (const auto& fr : frames) {
      ORAP_CHECK(serve::write_frame(t, serve::FrameType::kQueryBatch,
                                    serve::encode_query_batch(fr, false)));
      read_reply(fr.size());
    }
  }
  ORAP_CHECK(answered == inputs.size());
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.banner("Oracle serving: batching/pipelining vs link latency");
  bench::JsonReport report("oracle_serve", args);

  const LockedCircuit lc = serve_target(args.full ? 1200 : 400);
  const std::size_t total = args.full ? 8192 : 2048;
  Rng rng(11);
  std::vector<BitVec> inputs;
  inputs.reserve(total);
  for (std::size_t i = 0; i < total; ++i)
    inputs.push_back(BitVec::random(lc.num_data_inputs, rng));

  const std::uint64_t latencies_us[] = {0, 1000};
  const std::size_t batches[] = {1, 16, 256, 2048};

  Table t({"Latency", "Mode", "Batch", "Wall ms", "Queries/s", "Speedup"});
  for (const std::uint64_t lat : latencies_us) {
    double unbatched_qps = 0.0;
    for (const bool pipelined : {false, true}) {
      for (const std::size_t batch : batches) {
        if (pipelined && batch != 1) continue;  // one pipelined row per
                                                // latency: depth = total
        // Fresh connection per cell so a slow cell cannot leave stale
        // frames behind for the next one.
        GoldenOracle oracle(lc);
        serve::OracleServerOptions sopts;
        sopts.latency_us = lat;
        serve::OracleServer server(oracle, sopts);
        Pipes pipes = make_pipes();
        std::thread st([&] { server.serve(*pipes.server); });
        const double secs = drive(*pipes.client, inputs, batch, pipelined,
                                  lc.netlist.num_outputs());
        ORAP_CHECK(serve::write_frame(*pipes.client,
                                      serve::FrameType::kShutdown, {}));
        serve::Frame ack;
        ORAP_CHECK(serve::read_frame(*pipes.client, &ack));
        st.join();

        const double qps = static_cast<double>(total) / secs;
        if (!pipelined && batch == 1) unbatched_qps = qps;
        const double speedup = unbatched_qps > 0.0 ? qps / unbatched_qps : 1.0;
        char lat_buf[16], qps_buf[32], sp_buf[16];
        std::snprintf(lat_buf, sizeof lat_buf, "%llu us",
                      static_cast<unsigned long long>(lat));
        std::snprintf(qps_buf, sizeof qps_buf, "%.0f", qps);
        std::snprintf(sp_buf, sizeof sp_buf, "%.1fx", speedup);
        t.add_row({lat_buf, pipelined ? "pipelined" : "sync",
                   std::to_string(batch),
                   std::to_string(static_cast<std::size_t>(secs * 1e3)),
                   qps_buf, sp_buf});

        const std::string tag =
            "lat" + std::to_string(lat) + (pipelined ? "_pipe" : "_b") +
            (pipelined ? std::to_string(total) : std::to_string(batch));
        report.add(tag + "_wall_ms", secs * 1e3, 1);
        report.add(tag + "_qps", qps, 1);
        report.add(tag + "_speedup", speedup, 2);
      }
    }
  }
  t.print(std::cout);
  report.finish();
  std::printf(
      "\nReading: every row moves the same %zu queries through the same "
      "server; only the\nframing changes. At 0 injected latency the "
      "protocol itself is the cost — batching\namortizes the per-frame "
      "syscalls. At 1 ms the sync batch-1 row pays one round trip\nPER "
      "QUERY and collapses to ~1000 queries/s; batch-256 pays it once per "
      "256 queries.\nThe acceptance bar (batched >= 5x unbatched at >= 1 "
      "ms) falls out of arithmetic:\nspeedup ~= batch size until "
      "simulation time, not the link, is the bottleneck.\n",
      total);
  return 0;
}
