// Oracle-serving throughput: the batching-vs-latency tradeoff over the
// serve/wire.h protocol. A served oracle charges its round-trip latency
// once per request FRAME (exactly like a tester session charges its cable
// round-trip once per scan burst), so B batched queries pay one round
// trip where B unbatched queries pay B. This bench drives a real
// OracleServer over a real fd transport (pipe pair + server thread — the
// same read/write/poll path the TCP and subprocess transports use) and
// sweeps injected latency x batch size, reporting queries/sec per cell
// and the speedup over the unbatched column.
//
// Expected shape: at zero injected latency batching still wins a modest
// factor (fewer syscalls and frame headers per query); at >= 1 ms
// injected latency the unbatched column collapses to ~1/latency queries
// per second while batched throughput holds, so the speedup grows roughly
// linearly in the batch size until simulation cost dominates. A pipelined
// row (all frames in flight before any reply is read) is included at each
// latency; it overlaps client/server framing work (visible at 0 latency)
// but cannot beat the injected latency, because the server charges it per
// frame IN SERIES — a single half-duplex tester session, not a window of
// independent links. Batching, not pipelining, is how you defeat a slow
// session.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "bench_common.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "serve/oracle_server.h"
#include "serve/remote_oracle.h"
#include "serve/transport.h"
#include "serve/wire.h"
#include "util/bitvec.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/table.h"

using namespace orap;

namespace {

LockedCircuit serve_target(std::size_t gates) {
  GenSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 16;
  spec.num_gates = gates;
  spec.depth = 8;
  spec.seed = 9;
  return lock_weighted(generate_circuit(spec), 16, 3, 10);
}

struct Pipes {
  std::unique_ptr<serve::FdTransport> client;
  std::unique_ptr<serve::FdTransport> server;
};

Pipes make_pipes() {
  int c2s[2], s2c[2];
  ORAP_CHECK(::pipe(c2s) == 0 && ::pipe(s2c) == 0);
  Pipes p;
  p.client = std::make_unique<serve::FdTransport>(s2c[0], c2s[1]);
  p.server = std::make_unique<serve::FdTransport>(c2s[0], s2c[1]);
  return p;
}

/// Sends `total` queries in frames of `batch`; with `pipelined` all
/// frames go out before any reply is read (the transports are ordered
/// streams, so replies come back in frame order). Returns wall seconds.
double drive(serve::Transport& t, const std::vector<BitVec>& inputs,
             std::size_t batch, bool pipelined, std::size_t num_outputs) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<BitVec>> frames;
  for (std::size_t off = 0; off < inputs.size(); off += batch) {
    const std::size_t n = std::min(batch, inputs.size() - off);
    frames.emplace_back(inputs.begin() + off, inputs.begin() + off + n);
  }
  std::size_t answered = 0;
  const auto read_reply = [&](std::size_t expect) {
    serve::Frame f;
    ORAP_CHECK(serve::read_frame(t, &f));
    ORAP_CHECK(f.type == serve::FrameType::kBatchReply);
    std::vector<OracleResult> rs;
    ORAP_CHECK(serve::decode_batch_reply(f.body, num_outputs, &rs));
    ORAP_CHECK(rs.size() == expect);
    for (const OracleResult& r : rs) answered += r.ok() ? 1 : 0;
  };
  if (pipelined) {
    for (const auto& fr : frames)
      ORAP_CHECK(serve::write_frame(t, serve::FrameType::kQueryBatch,
                                    serve::encode_query_batch(fr, false)));
    for (const auto& fr : frames) read_reply(fr.size());
  } else {
    for (const auto& fr : frames) {
      ORAP_CHECK(serve::write_frame(t, serve::FrameType::kQueryBatch,
                                    serve::encode_query_batch(fr, false)));
      read_reply(fr.size());
    }
  }
  ORAP_CHECK(answered == inputs.size());
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One end-to-end SAT attack against a served oracle: fresh pipe pair,
/// server thread charging `lat_us` per FRAME, RemoteOracle client.
struct AttackRun {
  SatAttackResult result;
  double wall_ms = 0.0;
};

AttackRun run_served_attack(const LockedCircuit& lc, std::uint64_t lat_us,
                            std::size_t votes, bool batch,
                            std::size_t dip_batch) {
  GoldenOracle oracle(lc);
  serve::OracleServerOptions sopts;
  sopts.latency_us = lat_us;
  serve::OracleServer server(oracle, sopts);
  Pipes pipes = make_pipes();
  std::thread st([&] { server.serve(*pipes.server); });

  std::string err;
  auto remote = serve::RemoteOracle::connect(std::move(pipes.client), &err);
  ORAP_CHECK_MSG(remote != nullptr, "remote oracle handshake failed");
  SatAttackOptions opts;
  opts.resilience.votes = votes;
  opts.oracle_batch = batch;
  opts.dip_batch = dip_batch;
  AttackRun run;
  const auto t0 = std::chrono::steady_clock::now();
  run.result = sat_attack(lc, *remote, opts);
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  ORAP_CHECK(remote->shutdown());
  st.join();
  return run;
}

const char* status_slug(SatAttackResult::Status s) {
  switch (s) {
    case SatAttackResult::Status::kKeyFound: return "key_found";
    case SatAttackResult::Status::kIterationLimit: return "iteration_limit";
    case SatAttackResult::Status::kSolverBudget: return "solver_budget";
    case SatAttackResult::Status::kInconsistentOracle:
      return "inconsistent_oracle";
    case SatAttackResult::Status::kDegraded: return "degraded";
    case SatAttackResult::Status::kOracleError: return "oracle_error";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.banner("Oracle serving: batching/pipelining vs link latency");
  bench::JsonReport report("oracle_serve", args);

  const LockedCircuit lc = serve_target(args.full ? 1200 : 400);
  const std::size_t total = args.full ? 8192 : 2048;
  Rng rng(11);
  std::vector<BitVec> inputs;
  inputs.reserve(total);
  for (std::size_t i = 0; i < total; ++i)
    inputs.push_back(BitVec::random(lc.num_data_inputs, rng));

  const std::uint64_t latencies_us[] = {0, 1000};
  const std::size_t batches[] = {1, 16, 256, 2048};

  Table t({"Latency", "Mode", "Batch", "Wall ms", "Queries/s", "Speedup"});
  for (const std::uint64_t lat : latencies_us) {
    double unbatched_qps = 0.0;
    for (const bool pipelined : {false, true}) {
      for (const std::size_t batch : batches) {
        if (pipelined && batch != 1) continue;  // one pipelined row per
                                                // latency: depth = total
        // Fresh connection per cell so a slow cell cannot leave stale
        // frames behind for the next one.
        GoldenOracle oracle(lc);
        serve::OracleServerOptions sopts;
        sopts.latency_us = lat;
        serve::OracleServer server(oracle, sopts);
        Pipes pipes = make_pipes();
        std::thread st([&] { server.serve(*pipes.server); });
        const double secs = drive(*pipes.client, inputs, batch, pipelined,
                                  lc.netlist.num_outputs());
        ORAP_CHECK(serve::write_frame(*pipes.client,
                                      serve::FrameType::kShutdown, {}));
        serve::Frame ack;
        ORAP_CHECK(serve::read_frame(*pipes.client, &ack));
        st.join();

        const double qps = static_cast<double>(total) / secs;
        if (!pipelined && batch == 1) unbatched_qps = qps;
        const double speedup = unbatched_qps > 0.0 ? qps / unbatched_qps : 1.0;
        char lat_buf[16], qps_buf[32], sp_buf[16];
        std::snprintf(lat_buf, sizeof lat_buf, "%llu us",
                      static_cast<unsigned long long>(lat));
        std::snprintf(qps_buf, sizeof qps_buf, "%.0f", qps);
        std::snprintf(sp_buf, sizeof sp_buf, "%.1fx", speedup);
        t.add_row({lat_buf, pipelined ? "pipelined" : "sync",
                   std::to_string(batch),
                   std::to_string(static_cast<std::size_t>(secs * 1e3)),
                   qps_buf, sp_buf});

        const std::string tag =
            "lat" + std::to_string(lat) + (pipelined ? "_pipe" : "_b") +
            (pipelined ? std::to_string(total) : std::to_string(batch));
        report.add(tag + "_wall_ms", secs * 1e3, 1);
        report.add(tag + "_qps", qps, 1);
        report.add(tag + "_speedup", speedup, 2);
      }
    }
  }
  t.print(std::cout);

  // == Attack-level end-to-end sweep ==
  // The frame table above prices raw protocol traffic; this sweep prices
  // what the ATTACK pays: the full SAT-attack DIP loop against a served
  // oracle, serial vs batched (--oracle-batch, --dip-batch), across
  // injected link latency x majority votes. XOR locking (not weighted) so
  // the DIP loop runs long enough for round trips to matter.
  GenSpec aspec;
  aspec.num_inputs = 20;
  aspec.num_outputs = 16;
  aspec.num_gates = args.full ? 800 : 300;
  aspec.depth = 8;
  aspec.seed = 21;
  const LockedCircuit alc =
      lock_random_xor(generate_circuit(aspec), args.full ? 24 : 18, 22);
  GoldenOracle golden_check(alc);

  std::printf("\nAttack-level sweep: SAT attack over the served oracle "
              "(%zu key bits)\n", alc.num_key_inputs);
  Table at({"Latency", "Votes", "DipBatch", "Serial RT", "Batch RT",
            "RT ratio", "Serial ms", "Batch ms", "Speedup"});
  const std::size_t votes_grid[] = {1, 3};
  const std::size_t dip_grid[] = {1, 8};
  for (const std::uint64_t lat : latencies_us) {
    for (const std::size_t votes : votes_grid) {
      const AttackRun serial =
          run_served_attack(alc, lat, votes, /*batch=*/false, 1);
      ORAP_CHECK_MSG(verify_key_against_oracle(alc, serial.result.key,
                                               golden_check, 256, 3) == 0,
                     "serial attack recovered a wrong key");
      for (const std::size_t dip : dip_grid) {
        const AttackRun batched =
            run_served_attack(alc, lat, votes, /*batch=*/true, dip);
        // Identical status at every grid point; identical key too. At
        // dip_batch == 1 the whole trajectory is byte-identical to serial
        // (clean oracle, element-order decorator contract), so iteration
        // and query counts must also match; dip_batch > 1 is a different
        // (equally valid) trajectory, and the key must still verify clean.
        ORAP_CHECK(batched.result.status == serial.result.status);
        ORAP_CHECK_MSG(verify_key_against_oracle(alc, batched.result.key,
                                                 golden_check, 256, 3) == 0,
                       "batched attack recovered a wrong key");
        if (dip == 1) {
          ORAP_CHECK(batched.result.key == serial.result.key);
          ORAP_CHECK(batched.result.iterations == serial.result.iterations);
          ORAP_CHECK(batched.result.oracle_queries ==
                     serial.result.oracle_queries);
        }
        const double ratio =
            batched.result.oracle_round_trips > 0
                ? static_cast<double>(serial.result.oracle_round_trips) /
                      static_cast<double>(batched.result.oracle_round_trips)
                : 0.0;
        // The acceptance bar: with votes=3 and dip-batch=8 every flush
        // carries up to 24 oracle queries where the serial loop pays 24
        // round trips, so >= 5x fewer round trips; at a real (1 ms) link
        // that shows up as wall time the serial attack pays and the
        // batched one does not. (dip-batch alone still wins, but the
        // attack may harvest more DIPs than the serial loop needed, so
        // only strict improvement is guaranteed there.)
        if (dip == 8)
          ORAP_CHECK_MSG(serial.result.oracle_round_trips >
                             batched.result.oracle_round_trips,
                         "dip-batch=8 did not reduce round trips");
        if (dip == 8 && votes == 3)
          ORAP_CHECK_MSG(serial.result.oracle_round_trips >=
                             5 * batched.result.oracle_round_trips,
                         "dip-batch=8 x votes=3 saved fewer than 5x round "
                         "trips");
        if (dip == 8 && votes == 3 && lat >= 1000)
          ORAP_CHECK_MSG(batched.wall_ms < serial.wall_ms,
                         "batched attack not faster on a 1 ms link");
        char lat_buf[16], ratio_buf[16], sp_buf[16], sms[24], bms[24];
        std::snprintf(lat_buf, sizeof lat_buf, "%llu us",
                      static_cast<unsigned long long>(lat));
        std::snprintf(ratio_buf, sizeof ratio_buf, "%.1fx", ratio);
        std::snprintf(sp_buf, sizeof sp_buf, "%.2fx",
                      batched.wall_ms > 0.0 ? serial.wall_ms / batched.wall_ms
                                            : 0.0);
        std::snprintf(sms, sizeof sms, "%.1f", serial.wall_ms);
        std::snprintf(bms, sizeof bms, "%.1f", batched.wall_ms);
        at.add_row({lat_buf, std::to_string(votes), std::to_string(dip),
                    std::to_string(serial.result.oracle_round_trips),
                    std::to_string(batched.result.oracle_round_trips),
                    ratio_buf, sms, bms, sp_buf});

        const std::string tag = "atk_lat" + std::to_string(lat) + "_v" +
                                std::to_string(votes) + "_d" +
                                std::to_string(dip);
        report.add_string(tag + "_status", status_slug(batched.result.status));
        report.add(tag + "_serial_rt", serial.result.oracle_round_trips);
        report.add(tag + "_batch_rt", batched.result.oracle_round_trips);
        report.add(tag + "_serial_queries", serial.result.oracle_queries);
        report.add(tag + "_batch_queries", batched.result.oracle_queries);
        report.add(tag + "_serial_wall_ms", serial.wall_ms, 1);
        report.add(tag + "_batch_wall_ms", batched.wall_ms, 1);
      }
    }
  }
  at.print(std::cout);
  report.finish();
  std::printf(
      "\nReading: every row moves the same %zu queries through the same "
      "server; only the\nframing changes. At 0 injected latency the "
      "protocol itself is the cost — batching\namortizes the per-frame "
      "syscalls. At 1 ms the sync batch-1 row pays one round trip\nPER "
      "QUERY and collapses to ~1000 queries/s; batch-256 pays it once per "
      "256 queries.\nThe acceptance bar (batched >= 5x unbatched at >= 1 "
      "ms) falls out of arithmetic:\nspeedup ~= batch size until "
      "simulation time, not the link, is the bottleneck.\n",
      total);
  return 0;
}
