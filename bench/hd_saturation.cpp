// E1b — the paper's key-size selection methodology (Sec. IV): "we set 256
// as maximum key size. However, we stopped with smaller key sizes if
// output corruptibility with HD = 50% had been achieved ... or if output
// corruptibility, in terms of HD, saturated." This bench sweeps the key
// size for several benchmark profiles and shows the HD curve saturating —
// the reason Table I's column 4 varies between 97 and 256.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/metrics.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "util/parallel.h"
#include "util/table.h"

using namespace orap;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.banner("HD vs key size: the Table I column-4 selection rule");
  bench::JsonReport report("hd_saturation", args);

  const std::size_t hd_words = args.full ? 256 : 32;
  const char* circuits[] = {"s38417", "b18", "b20"};
  constexpr std::size_t key_sizes[] = {16, 32, 64, 96, 128, 192, 256};
  constexpr std::size_t nk = std::size(key_sizes);
  constexpr std::size_t nc = std::size(circuits);

  // The (circuit, key size) grid is independent; the saturation deltas
  // are computed from the collected grid afterwards.
  std::vector<double> hd_grid(nc * nk, -1.0);
  parallel_for(1, nc * nk, [&](std::size_t idx) {
    const BenchmarkProfile& p = benchmark_profile(circuits[idx / nk]);
    const std::size_t key_bits = key_sizes[idx % nk];
    if (key_bits / p.ctrl_gate_inputs < 1) return;
    const Netlist n = make_benchmark(p, args.scale);
    const LockedCircuit lc = lock_weighted(n, key_bits, p.ctrl_gate_inputs, 77);
    hd_grid[idx] = hamming_corruptibility(lc, hd_words, 6, 5).hd_percent;
  });

  for (std::size_t c = 0; c < nc; ++c) {
    const BenchmarkProfile& p = benchmark_profile(circuits[c]);
    Table t({"Key size", "# key gates", "HD%", "delta"});
    double prev = 0.0;
    for (std::size_t k = 0; k < nk; ++k) {
      const double hd = hd_grid[c * nk + k];
      if (hd < 0.0) continue;
      const std::size_t key_bits = key_sizes[k];
      t.add_row({std::to_string(key_bits),
                 std::to_string(key_bits / p.ctrl_gate_inputs),
                 Table::num(hd), Table::num(hd - prev, 2)});
      report.add(std::string(circuits[c]) + "_k" + std::to_string(key_bits) +
                     "_hd_pct",
                 hd);
      prev = hd;
    }
    std::printf("-- %s (ctrl gates: %zu inputs) --\n", circuits[c],
                p.ctrl_gate_inputs);
    t.print(std::cout);
    std::printf("\n");
  }
  report.finish();
  std::printf(
      "Reading: HD climbs steeply with the first key gates, then "
      "saturates well below\nthe optimum for circuits with very many "
      "outputs (the b18 row of Table I stops at\n97 bits for exactly this "
      "reason) and approaches 50%% for output-lean circuits.\n");
  return 0;
}
