// E1b — the paper's key-size selection methodology (Sec. IV): "we set 256
// as maximum key size. However, we stopped with smaller key sizes if
// output corruptibility with HD = 50% had been achieved ... or if output
// corruptibility, in terms of HD, saturated." This bench sweeps the key
// size for several benchmark profiles and shows the HD curve saturating —
// the reason Table I's column 4 varies between 97 and 256.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/metrics.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "util/table.h"

using namespace orap;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.banner("HD vs key size: the Table I column-4 selection rule");

  const std::size_t hd_words = args.full ? 256 : 32;
  const char* circuits[] = {"s38417", "b18", "b20"};

  for (const char* name : circuits) {
    const BenchmarkProfile& p = benchmark_profile(name);
    const Netlist n = make_benchmark(p, args.scale);
    Table t({"Key size", "# key gates", "HD%", "delta"});
    double prev = 0.0;
    for (const std::size_t key_bits :
         {16u, 32u, 64u, 96u, 128u, 192u, 256u}) {
      if (key_bits / p.ctrl_gate_inputs < 1) continue;
      const LockedCircuit lc =
          lock_weighted(n, key_bits, p.ctrl_gate_inputs, 77);
      const HdResult hd = hamming_corruptibility(lc, hd_words, 6, 5);
      t.add_row({std::to_string(key_bits),
                 std::to_string(key_bits / p.ctrl_gate_inputs),
                 Table::num(hd.hd_percent),
                 Table::num(hd.hd_percent - prev, 2)});
      prev = hd.hd_percent;
      std::fflush(stdout);
    }
    std::printf("-- %s (ctrl gates: %zu inputs) --\n", name,
                p.ctrl_gate_inputs);
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Reading: HD climbs steeply with the first key gates, then "
      "saturates well below\nthe optimum for circuits with very many "
      "outputs (the b18 row of Table I stops at\n97 bits for exactly this "
      "reason) and approaches 50%% for output-lean circuits.\n");
  return 0;
}
