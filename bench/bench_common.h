#pragma once
// Shared plumbing for the table-reproduction benches: --full / --scale
// command-line handling and the paper's reference numbers for
// side-by-side printing.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace orap::bench {

struct BenchArgs {
  double scale = 0.15;  // default: reduced-cost mode
  bool full = false;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        a.full = true;
        a.scale = 1.0;
      } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
        a.scale = std::atof(argv[i] + 8);
        a.full = a.scale >= 1.0;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "usage: %s [--full | --scale=<0..1>]\n"
            "  --full       paper-scale circuits (slow: minutes)\n"
            "  --scale=S    shrink benchmark circuits to S of paper size\n",
            argv[0]);
        std::exit(0);
      }
    }
    return a;
  }

  void banner(const char* what) const {
    std::printf("== %s ==\n", what);
    if (full)
      std::printf("mode: FULL (paper-scale circuits)\n\n");
    else
      std::printf("mode: reduced (scale=%.2f of paper gate counts; run with "
                  "--full for paper scale)\n\n",
                  scale);
  }
};

}  // namespace orap::bench
