#pragma once
// Shared plumbing for the table-reproduction benches: --full / --scale /
// --threads / --json command-line handling, wall-clock timing, and a
// machine-readable JSON record per run so BENCH_*.json perf trajectories
// can be tracked across commits.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "util/parallel.h"

namespace orap::bench {

struct BenchArgs {
  double scale = 0.15;  // default: reduced-cost mode
  bool full = false;
  std::size_t threads = 0;  // 0 = auto (ORAP_THREADS / hardware)
  std::string json_path;    // empty = no JSON record

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        a.full = true;
        a.scale = 1.0;
      } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
        a.scale = std::atof(argv[i] + 8);
        a.full = a.scale >= 1.0;
      } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
        a.threads = static_cast<std::size_t>(std::atoll(argv[i] + 10));
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        a.json_path = argv[i] + 7;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "usage: %s [--full | --scale=<0..1>] [--threads=N] "
            "[--json=<path>]\n"
            "  --full       paper-scale circuits (slow: minutes)\n"
            "  --scale=S    shrink benchmark circuits to S of paper size\n"
            "  --threads=N  thread-pool size (0 = auto: ORAP_THREADS or "
            "hardware concurrency)\n"
            "  --json=PATH  write a machine-readable result record\n",
            argv[0]);
        std::exit(0);
      }
    }
    set_parallel_threads(a.threads);
    return a;
  }

  void banner(const char* what) const {
    std::printf("== %s ==\n", what);
    std::printf("threads: %zu\n", parallel_threads());
    if (full)
      std::printf("mode: FULL (paper-scale circuits)\n\n");
    else
      std::printf("mode: reduced (scale=%.2f of paper gate counts; run with "
                  "--full for paper scale)\n\n",
                  scale);
  }
};

/// Collects result key/value pairs during a bench run and writes one
/// {bench, scale, threads, wall_ms, results} JSON object at the end.
/// Result values are formatted with fixed precision so a deterministic
/// run yields a byte-identical file at any thread count.
class JsonReport {
 public:
  JsonReport(std::string bench_name, const BenchArgs& args)
      : bench_(std::move(bench_name)),
        args_(args),
        start_(std::chrono::steady_clock::now()) {}

  void add(const std::string& key, double value, int decimals = 4) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    entries_.emplace_back(key, buf);
  }
  void add(const std::string& key, std::size_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void add_string(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + escaped(value) + "\"");
  }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// Writes the record (no-op without --json) and prints the wall time.
  void finish() {
    const double wall = elapsed_ms();
    std::printf("wall-clock: %.1f ms (%zu threads)\n", wall,
                parallel_threads());
    if (args_.json_path.empty()) return;
    std::ofstream os(args_.json_path);
    if (!os.good()) {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   args_.json_path.c_str());
      return;
    }
    char scale_buf[32];
    std::snprintf(scale_buf, sizeof scale_buf, "%.4f", args_.scale);
    os << "{\"bench\": \"" << escaped(bench_) << "\", \"scale\": " << scale_buf
       << ", \"threads\": " << parallel_threads() << ", \"wall_ms\": ";
    char wall_buf[32];
    std::snprintf(wall_buf, sizeof wall_buf, "%.1f", wall);
    os << wall_buf << ", \"results\": {";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i) os << ", ";
      os << "\"" << escaped(entries_[i].first) << "\": " << entries_[i].second;
    }
    os << "}}\n";
    std::printf("json record -> %s\n", args_.json_path.c_str());
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string bench_;
  BenchArgs args_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace orap::bench
