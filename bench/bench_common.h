#pragma once
// Shared plumbing for the table-reproduction benches: --full / --scale /
// --threads / --portfolio / --json command-line handling, wall-clock
// timing, and a machine-readable JSON record per run so BENCH_*.json perf
// trajectories can be tracked across commits.
//
// Parsing is strict: every numeric value must consume its whole token
// (no atoll/atof silent garbage), negative or absurd sizes are rejected,
// and unknown flags are an error — parse() exits(2) with a usage message
// instead of silently ignoring a typo like --thread=4.

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "util/parallel.h"

namespace orap::bench {

struct BenchArgs {
  double scale = 0.15;  // default: reduced-cost mode
  bool full = false;
  std::size_t threads = 0;   // 0 = auto (ORAP_THREADS / hardware)
  std::size_t portfolio = 1; // CDCL portfolio size for SAT-bound benches
  std::size_t cube = 0;      // cube-and-conquer split depth (2^D cubes)
  bool preprocess = false;   // SatELite-style CNF simplification
  bool incremental = false;  // persistent single-solver attack/ATPG core
  // Oracle-resilience knobs (attack benches; attacks/faulty_oracle.h).
  double oracle_noise = 0.0;      // seeded response bit-flip rate
  double oracle_fail_rate = 0.0;  // seeded transient-failure rate
  std::size_t oracle_votes = 1;   // N-of-M majority vote (1 = off)
  std::size_t oracle_retries = 0; // retry attempts on retryable errors
  bool quarantine = false;        // suspect-pair quarantine
  std::int64_t deadline_ms = -1;  // wall-clock deadline (-1 = none)
  std::string json_path;     // empty = no JSON record
  bool help = false;

  static constexpr std::size_t kMaxThreads = 1024;
  static constexpr std::size_t kMaxPortfolio = 64;
  static constexpr std::size_t kMaxCube = 6;  // 2^6 = 64 cubes
  static constexpr std::size_t kMaxVotes = 63;  // odd cap keeps ties rare

  /// Strict unsigned parse: whole token, base 10, no sign characters.
  static bool parse_size(const char* s, std::size_t* out) {
    if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (errno != 0 || end == s || *end != '\0') return false;
    *out = static_cast<std::size_t>(v);
    return true;
  }

  /// Strict double parse: whole token, finite value.
  static bool parse_double(const char* s, double* out) {
    if (s == nullptr || *s == '\0') return false;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    if (errno != 0 || end == s || *end != '\0' || !std::isfinite(v))
      return false;
    *out = v;
    return true;
  }

  /// Parses argv into *out. Returns false with a diagnostic in *error on
  /// any unknown flag or malformed/out-of-range value. Does not touch the
  /// process (no exit, no pool resize) — parse() adds those.
  static bool try_parse(int argc, char** argv, BenchArgs* out,
                        std::string* error) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
        a.help = true;
      } else if (std::strcmp(arg, "--full") == 0) {
        a.full = true;
        a.scale = 1.0;
      } else if (std::strncmp(arg, "--scale=", 8) == 0) {
        if (!parse_double(arg + 8, &a.scale) || a.scale <= 0.0 ||
            a.scale > 16.0) {
          *error = std::string("invalid --scale value '") + (arg + 8) +
                   "' (want a number in (0, 16])";
          return false;
        }
        a.full = a.scale >= 1.0;
      } else if (std::strncmp(arg, "--threads=", 10) == 0) {
        if (!parse_size(arg + 10, &a.threads) || a.threads > kMaxThreads) {
          *error = std::string("invalid --threads value '") + (arg + 10) +
                   "' (want an integer in [0, " +
                   std::to_string(kMaxThreads) + "])";
          return false;
        }
      } else if (std::strncmp(arg, "--portfolio=", 12) == 0) {
        if (!parse_size(arg + 12, &a.portfolio) || a.portfolio == 0 ||
            a.portfolio > kMaxPortfolio) {
          *error = std::string("invalid --portfolio value '") + (arg + 12) +
                   "' (want an integer in [1, " +
                   std::to_string(kMaxPortfolio) + "])";
          return false;
        }
      } else if (std::strncmp(arg, "--cube=", 7) == 0) {
        if (!parse_size(arg + 7, &a.cube) || a.cube > kMaxCube) {
          *error = std::string("invalid --cube value '") + (arg + 7) +
                   "' (want an integer in [0, " + std::to_string(kMaxCube) +
                   "])";
          return false;
        }
      } else if (std::strcmp(arg, "--preprocess") == 0) {
        a.preprocess = true;
      } else if (std::strncmp(arg, "--preprocess=", 13) == 0) {
        std::size_t v = 0;
        if (!parse_size(arg + 13, &v) || v > 1) {
          *error = std::string("invalid --preprocess value '") + (arg + 13) +
                   "' (want 0 or 1)";
          return false;
        }
        a.preprocess = v == 1;
      } else if (std::strcmp(arg, "--incremental") == 0) {
        a.incremental = true;
      } else if (std::strncmp(arg, "--incremental=", 14) == 0) {
        std::size_t v = 0;
        if (!parse_size(arg + 14, &v) || v > 1) {
          *error = std::string("invalid --incremental value '") + (arg + 14) +
                   "' (want 0 or 1)";
          return false;
        }
        a.incremental = v == 1;
      } else if (std::strncmp(arg, "--oracle-noise=", 15) == 0) {
        if (!parse_double(arg + 15, &a.oracle_noise) || a.oracle_noise < 0.0 ||
            a.oracle_noise > 1.0) {
          *error = std::string("invalid --oracle-noise value '") + (arg + 15) +
                   "' (want a rate in [0, 1])";
          return false;
        }
      } else if (std::strncmp(arg, "--oracle-fail-rate=", 19) == 0) {
        if (!parse_double(arg + 19, &a.oracle_fail_rate) ||
            a.oracle_fail_rate < 0.0 || a.oracle_fail_rate > 1.0) {
          *error = std::string("invalid --oracle-fail-rate value '") +
                   (arg + 19) + "' (want a rate in [0, 1])";
          return false;
        }
      } else if (std::strncmp(arg, "--oracle-votes=", 15) == 0) {
        if (!parse_size(arg + 15, &a.oracle_votes) || a.oracle_votes == 0 ||
            a.oracle_votes > kMaxVotes) {
          *error = std::string("invalid --oracle-votes value '") + (arg + 15) +
                   "' (want an integer in [1, " + std::to_string(kMaxVotes) +
                   "])";
          return false;
        }
      } else if (std::strncmp(arg, "--oracle-retries=", 17) == 0) {
        if (!parse_size(arg + 17, &a.oracle_retries) ||
            a.oracle_retries > 1024) {
          *error = std::string("invalid --oracle-retries value '") +
                   (arg + 17) + "' (want an integer in [0, 1024])";
          return false;
        }
      } else if (std::strcmp(arg, "--quarantine") == 0) {
        a.quarantine = true;
      } else if (std::strncmp(arg, "--quarantine=", 13) == 0) {
        std::size_t v = 0;
        if (!parse_size(arg + 13, &v) || v > 1) {
          *error = std::string("invalid --quarantine value '") + (arg + 13) +
                   "' (want 0 or 1)";
          return false;
        }
        a.quarantine = v == 1;
      } else if (std::strncmp(arg, "--deadline-ms=", 14) == 0) {
        std::size_t v = 0;
        if (!parse_size(arg + 14, &v) ||
            v > static_cast<std::size_t>(1) << 40) {
          *error = std::string("invalid --deadline-ms value '") + (arg + 14) +
                   "' (want a non-negative millisecond count)";
          return false;
        }
        a.deadline_ms = static_cast<std::int64_t>(v);
      } else if (std::strncmp(arg, "--json=", 7) == 0) {
        a.json_path = arg + 7;
        if (a.json_path.empty()) {
          *error = "empty --json path";
          return false;
        }
      } else {
        *error = std::string("unknown argument '") + arg + "'";
        return false;
      }
    }
    *out = a;
    return true;
  }

  static void usage(std::FILE* os, const char* prog) {
    std::fprintf(
        os,
        "usage: %s [--full | --scale=<0..1>] [--threads=N] [--portfolio=N] "
        "[--cube=D] [--json=<path>]\n"
        "  --full          paper-scale circuits (slow: minutes)\n"
        "  --scale=S       shrink benchmark circuits to S of paper size\n"
        "  --threads=N     thread-pool size (0 = auto: ORAP_THREADS or "
        "hardware concurrency)\n"
        "  --portfolio=N   CDCL portfolio size for SAT-solver-bound work "
        "(default 1)\n"
        "  --cube=D        split every SAT query into 2^D cubes, conquered "
        "in parallel (default 0)\n"
        "  --preprocess[=0|1]  SatELite-style CNF simplification before "
        "solving (default 0)\n"
        "  --incremental[=0|1] persistent single-solver attack/ATPG core "
        "(default 0)\n"
        "  --oracle-noise=P      seeded oracle response bit-flip rate "
        "(default 0)\n"
        "  --oracle-fail-rate=P  seeded oracle transient-failure rate "
        "(default 0)\n"
        "  --oracle-votes=N      N-of-M majority vote per oracle query "
        "(default 1 = off)\n"
        "  --oracle-retries=N    retries per query on retryable errors "
        "(default 0)\n"
        "  --quarantine[=0|1]    suspect-pair quarantine in the DIP loop "
        "(default 0)\n"
        "  --deadline-ms=T       wall-clock deadline per attack "
        "(default: none)\n"
        "  --json=PATH     write a machine-readable result record\n",
        prog);
  }

  /// Strict front door: exits(2) on bad arguments, exits(0) on --help,
  /// configures the thread pool otherwise.
  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    std::string error;
    if (!try_parse(argc, argv, &a, &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
      usage(stderr, argv[0]);
      std::exit(2);
    }
    if (a.help) {
      usage(stdout, argv[0]);
      std::exit(0);
    }
    set_parallel_threads(a.threads);
    return a;
  }

  void banner(const char* what) const {
    std::printf("== %s ==\n", what);
    std::printf("threads: %zu\n", parallel_threads());
    if (portfolio > 1) std::printf("portfolio: %zu CDCL instances\n", portfolio);
    if (cube > 0)
      std::printf("cube: 2^%zu = %zu cubes per SAT query\n", cube,
                  std::size_t{1} << cube);
    if (preprocess) std::printf("preprocess: CNF simplification on\n");
    if (incremental)
      std::printf("incremental: persistent single-solver core on\n");
    if (oracle_noise > 0.0 || oracle_fail_rate > 0.0)
      std::printf("oracle faults: noise=%.4f fail-rate=%.4f\n", oracle_noise,
                  oracle_fail_rate);
    if (oracle_votes > 1 || oracle_retries > 0 || quarantine)
      std::printf("resilience: votes=%zu retries=%zu quarantine=%s\n",
                  oracle_votes, oracle_retries, quarantine ? "on" : "off");
    if (deadline_ms >= 0)
      std::printf("deadline: %lld ms\n", static_cast<long long>(deadline_ms));
    if (full)
      std::printf("mode: FULL (paper-scale circuits)\n\n");
    else
      std::printf("mode: reduced (scale=%.2f of paper gate counts; run with "
                  "--full for paper scale)\n\n",
                  scale);
  }
};

/// Simulation throughput in Mpatterns/s. Timing-derived by construction:
/// report it (stdout, perf-trajectory JSON fields), but keep it out of any
/// byte-compared "results" payload (attack_suite's cross-thread
/// determinism check diffs those bytes).
inline double mpatterns_per_sec(std::size_t patterns, double wall_ms) {
  return wall_ms <= 0.0 ? 0.0
                        : static_cast<double>(patterns) / (wall_ms * 1e3);
}

/// Collects result key/value pairs during a bench run and writes one
/// {bench, scale, threads, portfolio, wall_ms, results} JSON object at the
/// end. Result values are formatted with fixed precision so a
/// deterministic run yields a byte-identical file at any thread count.
class JsonReport {
 public:
  JsonReport(std::string bench_name, const BenchArgs& args)
      : bench_(std::move(bench_name)),
        args_(args),
        start_(std::chrono::steady_clock::now()) {}

  void add(const std::string& key, double value, int decimals = 4) {
    // %.*f renders non-finite doubles as `nan` / `inf` — bare words that
    // are not JSON. A NaN latency or a divide-by-zero rate must degrade to
    // a parseable record, not break every downstream consumer.
    if (!std::isfinite(value)) {
      entries_.emplace_back(key, "null");
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    entries_.emplace_back(key, buf);
  }
  void add(const std::string& key, std::size_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void add_string(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + escaped(value) + "\"");
  }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// Writes the record (no-op without --json) and prints the wall time.
  /// Returns false when the record could not be written intact — a failure
  /// mid-stream (disk full, closed fd) deletes the partial file rather
  /// than leaving truncated JSON that looks like a successful run.
  bool finish() {
    const double wall = elapsed_ms();
    std::printf("wall-clock: %.1f ms (%zu threads)\n", wall,
                parallel_threads());
    if (args_.json_path.empty()) return true;
    std::ofstream os(args_.json_path);
    if (!os.good()) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args_.json_path.c_str());
      return false;
    }
    char scale_buf[32];
    std::snprintf(scale_buf, sizeof scale_buf, "%.4f", args_.scale);
    os << "{\"bench\": \"" << escaped(bench_) << "\", \"scale\": " << scale_buf
       << ", \"threads\": " << parallel_threads()
       << ", \"portfolio\": " << args_.portfolio
       << ", \"cube\": " << args_.cube
       << ", \"preprocess\": " << (args_.preprocess ? 1 : 0)
       << ", \"incremental\": " << (args_.incremental ? 1 : 0);
    char rate_buf[32];
    std::snprintf(rate_buf, sizeof rate_buf, "%.6f", args_.oracle_noise);
    os << ", \"oracle_noise\": " << rate_buf;
    std::snprintf(rate_buf, sizeof rate_buf, "%.6f", args_.oracle_fail_rate);
    os << ", \"oracle_fail_rate\": " << rate_buf
       << ", \"oracle_votes\": " << args_.oracle_votes
       << ", \"oracle_retries\": " << args_.oracle_retries
       << ", \"quarantine\": " << (args_.quarantine ? 1 : 0)
       << ", \"deadline_ms\": " << args_.deadline_ms
       << ", \"wall_ms\": ";
    char wall_buf[32];
    std::snprintf(wall_buf, sizeof wall_buf, "%.1f", wall);
    os << wall_buf << ", \"results\": {";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i) os << ", ";
      os << "\"" << escaped(entries_[i].first) << "\": " << entries_[i].second;
    }
    os << "}}\n";
    // good() was only a precondition check: a stream can fail on any write
    // after it. Flush and re-check before claiming success; a truncated
    // record must not survive to be parsed as a complete bench run.
    os.flush();
    if (!os.good()) {
      os.close();
      std::remove(args_.json_path.c_str());
      std::fprintf(stderr, "error: write to %s failed; partial record "
                   "deleted\n", args_.json_path.c_str());
      return false;
    }
    std::printf("json record -> %s\n", args_.json_path.c_str());
    return true;
  }

  /// JSON string escaping: backslash, quote, and \uXXXX for every control
  /// character (< 0x20) — a newline or tab in a bench name or result key
  /// must not produce an invalid record.
  static std::string escaped(const std::string& s) {
    std::string out;
    for (const char c : s) {
      const auto u = static_cast<unsigned char>(c);
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (u < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", u);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

 private:
  std::string bench_;
  BenchArgs args_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace orap::bench
