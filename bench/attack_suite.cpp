// E3 — the paper's security claim (Sec. II-A / IV) as a measurement: every
// oracle-guided attack succeeds against a conventional chip's scan
// interface and fails against an OraP chip, for all locking schemes.
// Also reports the classic SAT-resistance landscape (SARLock / Anti-SAT
// need ~2^k DIPs; weighted locking needs few but has high HD — OraP lets
// the designer keep the high-HD scheme).

#include <cstdio>
#include <iostream>
#include <memory>

#include "attacks/faulty_oracle.h"
#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "attacks/simple_attacks.h"
#include "attacks/structural.h"
#include "bench_common.h"
#include "chip/chip.h"
#include "eval/metrics.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "netlist/simulator.h"
#include "util/parallel.h"
#include "util/table.h"

using namespace orap;

namespace {

Netlist attack_target(std::size_t gates, std::uint64_t seed) {
  GenSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 28;
  spec.num_gates = gates;
  spec.depth = 9;
  spec.seed = seed;
  return generate_circuit(spec);
}

std::string status_str(const SatAttackResult& r, const BitVec& correct,
                       const LockedCircuit& lc) {
  if (r.status != SatAttackResult::Status::kKeyFound) return "no key";
  // Functional check via random samples.
  GoldenOracle golden(lc);
  const std::size_t miss = verify_key_against_oracle(lc, r.key, golden, 128, 3);
  if (miss == 0) return "KEY RECOVERED";
  (void)correct;
  return "wrong key";
}

/// Wraps a bench oracle in the fault decorators selected on the command
/// line (attacks/faulty_oracle.h). With the rates at their 0 defaults this
/// is a plain pass-through and the run is byte-identical to older builds.
class OracleUnderTest {
 public:
  OracleUnderTest(Oracle& base, const bench::BenchArgs& args,
                  std::uint64_t seed) {
    oracle_ = &base;
    if (args.oracle_noise > 0.0) {
      noisy_ = std::make_unique<NoisyOracle>(*oracle_, args.oracle_noise, seed);
      oracle_ = noisy_.get();
    }
    if (args.oracle_fail_rate > 0.0) {
      flaky_ = std::make_unique<IntermittentOracle>(
          *oracle_, args.oracle_fail_rate, seed + 1);
      oracle_ = flaky_.get();
    }
  }
  Oracle& get() { return *oracle_; }

 private:
  Oracle* oracle_;
  std::unique_ptr<Oracle> noisy_, flaky_;
};

void apply_resilience(const bench::BenchArgs& args,
                      OracleResilienceOptions* res, std::int64_t* deadline) {
  res->retries = args.oracle_retries;
  res->votes = args.oracle_votes;
  res->quarantine = args.quarantine;
  *deadline = args.deadline_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.banner("Attack suite: golden scan oracle vs OraP scan oracle");
  bench::JsonReport report("attack_suite", args);
  const std::size_t gates = args.full ? 2000 : 600;

  // --- part 1: SAT-attack DIP counts across schemes (golden oracle) ------
  {
    Table t({"Scheme", "Key bits", "HD%", "ErrRate%", "SAT DIPs", "Outcome"});
    const Netlist n = attack_target(gates, 42);
    struct Case {
      const char* name;
      LockedCircuit lc;
      HdResult hd;
      SatAttackResult r;
    };
    Case cases[] = {
        {"random XOR", lock_random_xor(n, 16, 1), {}, {}},
        {"weighted k=3", lock_weighted(n, 18, 3, 2), {}, {}},
        {"SARLock", lock_sarlock(n, 10, 3), {}, {}},
        {"Anti-SAT", lock_antisat(n, 16, 4), {}, {}},
        {"XOR+SARLock", lock_xor_plus_sarlock(n, 8, 10, 5), {}, {}},
        // SFLL-HD(14,1): ~2^14/C(14,1) DIPs — the provable-resilience row.
        {"SFLL-HD h=1", lock_sfll_hd(n, 12, 1, 6), {}, {}},
        // K-Gate input encoding: high corruptibility, few DIPs — its
        // protection argument rests on guarding the oracle (the paper's
        // thesis), not on SAT resilience of the netlist.
        {"K-Gate p=2", lock_kgate(n, 16, 2, 7), {}, {}},
    };
    // Each scheme attacks its own oracle: independent, fan out.
    parallel_for(1, std::size(cases), [&](std::size_t i) {
      Case& c = cases[i];
      c.hd = hamming_corruptibility(c.lc, 16, 8, 9);
      GoldenOracle base(c.lc);
      OracleUnderTest oracle(base, args, 101 + i);
      SatAttackOptions opts;
      opts.max_iterations = 4096;
      opts.portfolio_size = args.portfolio;
      opts.preprocess = args.preprocess;
      opts.cube_depth = static_cast<std::uint32_t>(args.cube);
      opts.incremental = args.incremental;
      apply_resilience(args, &opts.resilience, &opts.deadline_ms);
      c.r = sat_attack(c.lc, oracle.get(), opts);
    });
    std::uint64_t part1_cubes = 0, part1_refuted = 0;
    std::uint64_t part1_rounds = 0, part1_carried = 0, part1_reused = 0;
    for (const auto& c : cases) {
      part1_cubes += c.r.cubes;
      part1_refuted += c.r.cubes_refuted;
      part1_rounds += c.r.incremental_rounds;
      part1_carried += c.r.clauses_carried;
      part1_reused += c.r.encode_reused;
    }
    // Deterministic counters only (no cube wall time): the results object
    // must stay byte-identical across thread counts. The incremental
    // counters qualify at the default portfolio of 1 (one solver per
    // attack, fixed solve sequence); wall times never do.
    report.add("golden_cubes", static_cast<std::size_t>(part1_cubes));
    report.add("golden_cubes_refuted", static_cast<std::size_t>(part1_refuted));
    report.add("golden_incremental_rounds",
               static_cast<std::size_t>(part1_rounds));
    report.add("golden_clauses_carried",
               static_cast<std::size_t>(part1_carried));
    report.add("golden_encode_reused", static_cast<std::size_t>(part1_reused));
    for (auto& c : cases) {
      const std::string outcome = status_str(c.r, c.lc.correct_key, c.lc);
      t.add_row({c.name, std::to_string(c.lc.num_key_inputs),
                 Table::num(c.hd.hd_percent), Table::num(c.hd.error_rate_pct),
                 std::to_string(c.r.iterations), outcome});
      const std::string tag = std::string("golden_") + c.name;
      report.add(tag + "_dips", c.r.iterations);
      report.add(tag + "_hd_pct", c.hd.hd_percent);
      report.add(tag + "_err_pct", c.hd.error_rate_pct);
      report.add_string(tag + "_outcome", outcome);
    }
    std::printf("-- SAT attack with golden (conventional scan) oracle --\n");
    t.print(std::cout);
    std::printf("\n");
  }

  // --- part 1b: structural attacks across the scheme zoo -----------------
  // Removal and bypass report three distinct statuses: success, incomplete
  // (budget exhaustion — NOT success), and "does not apply". SFLL-HD is
  // the canonical removal victim: the suspect comes off, but the attacker
  // recovers only the cube-stripped function, which the bench verifies.
  {
    Table t({"Scheme", "Removal", "Bypass"});
    const Netlist n = attack_target(gates, 44);
    struct SCase {
      const char* name;
      const char* id;  // JSON key fragment
      LockedCircuit lc;
      std::string removal, bypass;
    };
    SCase cases[] = {
        {"weighted k=3", "weighted", lock_weighted(n, 18, 3, 2), "", ""},
        {"SARLock", "sarlock", lock_sarlock(n, 10, 3), "", ""},
        {"Anti-SAT", "antisat", lock_antisat(n, 16, 4), "", ""},
        {"SFLL-HD h=1", "sfll_hd", lock_sfll_hd(n, 12, 1, 6), "", ""},
        {"K-Gate p=2", "kgate", lock_kgate(n, 16, 2, 7), "", ""},
    };
    parallel_for(1, std::size(cases), [&](std::size_t i) {
      SCase& c = cases[i];
      const auto rem = removal_attack(c.lc, 256, 501 + i);
      if (!rem.has_value()) {
        c.removal = "does not apply";
      } else if (c.lc.scheme == "sfll_hd") {
        // Verify the canonical SFLL result: recovered == stripped function
        // (original with output 0 inverted on the secret's HD-h sphere of
        // inputs 0..k), never the original itself.
        const std::size_t k = c.lc.num_key_inputs, h = 1;
        Simulator orig(n), rec(rem->recovered);
        Rng rng(701 + i);
        bool stripped_ok = true, differs_somewhere = false;
        for (int tr = 0; tr < 200 && stripped_ok; ++tr) {
          BitVec x = BitVec::random(n.num_inputs(), rng);
          if (tr % 2 == 0) {  // force onto the protected sphere
            for (std::size_t b = 0; b < k; ++b)
              x.set(b, c.lc.correct_key.get(b));
            x.flip(static_cast<std::size_t>(tr) % k);
          }
          std::size_t hd = 0;
          for (std::size_t b = 0; b < k; ++b)
            hd += x.get(b) != c.lc.correct_key.get(b);
          const BitVec key = BitVec::random(k, rng);
          BitVec expect = orig.run_single(x);
          if (hd == h) {
            expect.flip(0);
            differs_somewhere = true;
          }
          stripped_ok =
              rec.run_single(c.lc.assemble_input(x, key)) == expect;
        }
        c.removal = stripped_ok && differs_somewhere
                        ? "REMOVED (stripped fn, not original)"
                        : "REMOVED (unverified)";
      } else {
        c.removal = "REMOVED key logic";
      }
      GoldenOracle oracle(c.lc);
      const auto bp = bypass_attack(c.lc, oracle, 8, 601 + i);
      if (!bp.has_value())
        c.bypass = "does not apply";
      else if (!bp->complete)
        c.bypass = "incomplete (cap tripped at " +
                   std::to_string(bp->correction_points) + " cubes)";
      else
        c.bypass =
            "BYPASSED (" + std::to_string(bp->correction_points) + " cubes)";
    });
    for (auto& c : cases) {
      t.add_row({c.name, c.removal, c.bypass});
      report.add_string(std::string("structural_") + c.id + "_removal",
                        c.removal);
      report.add_string(std::string("structural_") + c.id + "_bypass",
                        c.bypass);
    }
    std::printf(
        "-- structural attacks (SPS-guided removal, CHES'17 bypass) --\n");
    t.print(std::cout);
    std::printf("\n");
  }

  // --- part 2: all attacks, golden vs OraP -------------------------------
  {
    Table t({"Attack", "Oracle", "Iter/queries", "Outcome"});
    const Netlist n = attack_target(gates, 43);

    // Attacks sharing one oracle stay serial (the oracle is a stateful
    // device model), but the golden and OraP groups are independent.
    using Row = std::vector<std::string>;
    std::vector<Row> group_rows[2];
    std::uint64_t group_cubes[2] = {0, 0};
    std::uint64_t group_rounds[2] = {0, 0};
    std::uint64_t group_carried[2] = {0, 0};
    auto run_against = [&](std::size_t group, const char* oracle_name,
                           Oracle& oracle, const LockedCircuit& view,
                           const BitVec& correct) {
      auto& rows = group_rows[group];
      SatAttackOptions sat_opts;
      sat_opts.portfolio_size = args.portfolio;
      sat_opts.preprocess = args.preprocess;
      sat_opts.cube_depth = static_cast<std::uint32_t>(args.cube);
      sat_opts.incremental = args.incremental;
      apply_resilience(args, &sat_opts.resilience, &sat_opts.deadline_ms);
      AppSatOptions app_opts;
      app_opts.portfolio_size = args.portfolio;
      app_opts.preprocess = args.preprocess;
      app_opts.cube_depth = static_cast<std::uint32_t>(args.cube);
      app_opts.incremental = args.incremental;
      apply_resilience(args, &app_opts.resilience, &app_opts.deadline_ms);
      {
        const SatAttackResult r = sat_attack(view, oracle, sat_opts);
        group_cubes[group] += r.cubes;
        group_rounds[group] += r.incremental_rounds;
        group_carried[group] += r.clauses_carried;
        rows.push_back({"SAT", oracle_name, std::to_string(r.oracle_queries),
                        status_str(r, correct, view)});
      }
      {
        const SatAttackResult r = appsat_attack(view, oracle, app_opts);
        group_cubes[group] += r.cubes;
        group_rounds[group] += r.incremental_rounds;
        group_carried[group] += r.clauses_carried;
        rows.push_back({"AppSAT", oracle_name,
                        std::to_string(r.oracle_queries),
                        status_str(r, correct, view)});
      }
      {
        const SatAttackResult r = double_dip_attack(view, oracle, sat_opts);
        group_cubes[group] += r.cubes;
        group_rounds[group] += r.incremental_rounds;
        group_carried[group] += r.clauses_carried;
        rows.push_back({"Double-DIP", oracle_name,
                        std::to_string(r.oracle_queries),
                        status_str(r, correct, view)});
      }
      {
        const HillClimbResult r = hill_climb_attack(view, oracle);
        GoldenOracle golden(view);
        const bool ok =
            verify_key_against_oracle(view, r.key, golden, 128, 3) == 0;
        rows.push_back({"hill-climb", oracle_name,
                        std::to_string(r.oracle_queries),
                        ok ? "KEY RECOVERED" : "wrong key"});
      }
      {
        const SensitizationResult r =
            sensitization_attack(view, oracle, 1, 20000, args.incremental);
        std::size_t right = 0;
        for (std::size_t i = 0; i < correct.size(); ++i)
          if (r.key_bits[i] >= 0 && r.key_bits[i] == (correct.get(i) ? 1 : 0))
            ++right;
        rows.push_back({"sensitize", oracle_name,
                        std::to_string(r.oracle_queries),
                        std::to_string(right) + "/" +
                            std::to_string(correct.size()) +
                            " bits correct"});
      }
    };

    parallel_for(1, 2, [&](std::size_t group) {
      if (group == 0) {
        const LockedCircuit lc = lock_weighted(n, 18, 3, 6);
        GoldenOracle base(lc);
        OracleUnderTest oracle(base, args, 201);
        run_against(0, "golden scan", oracle.get(), lc, lc.correct_key);
      } else {
        LockedCircuit lc = lock_weighted(n, 18, 3, 6);
        const BitVec correct = lc.correct_key;
        OrapOptions opt;
        opt.variant = OrapVariant::kModified;
        OrapChip chip(std::move(lc), 8, opt, 7);
        ChipScanOracle base(chip);
        OracleUnderTest oracle(base, args, 301);
        run_against(1, "OraP scan", oracle.get(), chip.locked_circuit(),
                    correct);
      }
    });
    for (const auto& rows : group_rows)
      for (const Row& row : rows) {
        t.add_row(row);
        report.add_string(row[1] + "_" + row[0], row[3]);
      }
    // Deterministic cube counters per oracle group (no wall time, so the
    // results object stays byte-identical across thread counts).
    report.add("golden_scan_cubes", static_cast<std::size_t>(group_cubes[0]));
    report.add("orap_scan_cubes", static_cast<std::size_t>(group_cubes[1]));
    report.add("golden_scan_solver_rounds",
               static_cast<std::size_t>(group_rounds[0]));
    report.add("orap_scan_solver_rounds",
               static_cast<std::size_t>(group_rounds[1]));
    report.add("golden_scan_clauses_carried",
               static_cast<std::size_t>(group_carried[0]));
    report.add("orap_scan_clauses_carried",
               static_cast<std::size_t>(group_carried[1]));
    std::printf("-- full attack suite: weighted locking (18-bit key) --\n");
    t.print(std::cout);
  }
  report.finish();
  std::printf(
      "\nReading: with the golden oracle the SAT-class attacks recover the "
      "key in a handful\nof DIPs (hill climbing and sensitization already "
      "fail against weighted locking's\nentangled key bits — the IOLTS'17 "
      "claim). Through OraP's scan interface the oracle\nonly exposes "
      "locked responses, so every attack converges on functionally-wrong\n"
      "keys. OraP + weighted locking = SAT resistance *and* ~40%% HD output "
      "corruption\n(Table I), which SARLock/Anti-SAT cannot offer.\n");
  return 0;
}
