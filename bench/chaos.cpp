// Chaos bench: what does serving survive? Sweeps seeded transport fault
// injection (disconnect / corruption rates, serve/chaos.h) x reconnect
// policy on/off x client-side checkpointing over a real TCP loopback
// server that models a PROCESS RESTART on every connection: each accept
// serves a brand-new oracle stack, so nothing survives a kill except what
// the client re-pushes.
//
// The headline is the robustness claim itself, asserted in-process: at a
// few-percent per-operation disconnect rate the no-reconnect baseline is
// dead within a handful of frame exchanges (status oracle_error, or the
// handshake never completes), while the self-healing client — redial +
// re-handshake + kStateSet state re-push + retransmit-as-requery —
// finishes with the byte-identical exact key, iteration count, and query
// counters of the fault-free run. Corruption behaves the same way because
// the frame CRC turns flipped bits into detectable stream deaths rather
// than wrong oracle answers. The stateful-stack row is the strongest
// form: the server runs a noisy (seeded RNG) oracle stack that a restart
// would rewind, and only the per-batch state re-sync makes the recovered
// trajectory byte-identical.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "attacks/checkpoint.h"
#include "attacks/faulty_oracle.h"
#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "bench_common.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "serve/chaos.h"
#include "serve/oracle_server.h"
#include "serve/remote_oracle.h"
#include "serve/transport.h"
#include "util/check.h"
#include "util/table.h"

using namespace orap;

namespace {

LockedCircuit chaos_target(bool full) {
  GenSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 16;
  spec.num_gates = full ? 800 : 400;
  spec.depth = 8;
  spec.seed = 77;
  return lock_random_xor(generate_circuit(spec), full ? 48 : 32, 5);
}

/// Restarting TCP server: every connection gets a FRESH oracle stack
/// (noisy when noise_rate > 0), exactly like a killed-and-restarted
/// server process whose in-memory decorator state is gone.
class RestartingServer {
 public:
  RestartingServer(const LockedCircuit& lc, double noise_rate)
      : lc_(lc), noise_rate_(noise_rate) {
    ORAP_CHECK_MSG(listener_.listen(0), "cannot bind 127.0.0.1");
    thread_ = std::thread([this] { loop(); });
  }
  ~RestartingServer() {
    done_.store(true);
    thread_.join();
  }

  std::uint16_t port() const { return listener_.port(); }
  std::uint64_t connections() const { return connections_.load(); }

 private:
  void loop() {
    while (!done_.load()) {
      auto conn = listener_.accept(50, 5000);
      if (conn == nullptr) continue;
      connections_.fetch_add(1);
      GoldenOracle golden(lc_);
      std::unique_ptr<NoisyOracle> noisy;
      Oracle* top = &golden;
      if (noise_rate_ > 0.0) {
        noisy = std::make_unique<NoisyOracle>(golden, noise_rate_, 0x600dULL);
        top = noisy.get();
      }
      serve::OracleServer server(*top);
      server.serve(*conn);
    }
  }

  const LockedCircuit& lc_;
  double noise_rate_;
  serve::TcpListener listener_;
  std::atomic<bool> done_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::thread thread_;
};

struct Cell {
  const char* tag;
  double disconnect_rate;
  double corrupt_rate;
  bool reconnect;
  bool checkpoint;       // wrap the client in a CheckpointedOracle
  double server_noise;   // stateful served stack; needs vote resilience
};

struct CellResult {
  bool connected = false;
  SatAttackResult result;
  double wall_ms = 0.0;
  std::uint64_t recoveries = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t state_syncs = 0;
  std::uint64_t autosaves = 0;
  bool checkpoint_loads = false;  // the flushed file round-trips
};

CellResult run_cell(const LockedCircuit& lc, const Cell& cell,
                    const SatAttackOptions& opts) {
  RestartingServer server(lc, cell.server_noise);

  serve::ChaosOptions copts;
  copts.disconnect_rate = cell.disconnect_rate;
  copts.corrupt_rate = cell.corrupt_rate;
  copts.seed = 0xc4a05;
  serve::ChaosEngine engine(copts);
  // ONE engine across every dial, so the fault script keeps advancing
  // deterministically through reconnects instead of restarting.
  const auto dial = [&]() -> std::unique_ptr<serve::Transport> {
    auto t = serve::tcp_connect("127.0.0.1", server.port(), 5000, 2000);
    if (t == nullptr) return nullptr;
    if (!copts.any()) return t;
    return std::make_unique<serve::ChaosTransport>(std::move(t), &engine);
  };

  std::unique_ptr<serve::Transport> transport;
  serve::RemoteOracleOptions oopts;
  if (cell.reconnect) {
    serve::ReconnectOptions ropts;
    ropts.max_attempts = 16;
    ropts.backoff_ms = 1;
    ropts.backoff_max_ms = 8;
    transport = std::make_unique<serve::ReconnectingTransport>(dial, ropts,
                                                               dial());
    oopts.max_recoveries = 1u << 20;
    oopts.state_refresh_batches = 1;
  } else {
    transport = dial();
  }

  CellResult out;
  std::string err;
  auto remote = transport == nullptr
                    ? nullptr
                    : serve::RemoteOracle::connect(std::move(transport), &err,
                                                   oopts);
  if (remote == nullptr) return out;  // died before the attack: baseline
  out.connected = true;

  std::unique_ptr<CheckpointedOracle> ckpt;
  Oracle* attack_oracle = remote.get();
  const std::string ckpt_path = std::string("BENCH_chaos_") + cell.tag +
                                ".ckpt.tmp";
  if (cell.checkpoint) {
    ckpt = std::make_unique<CheckpointedOracle>(*remote, /*config_hash=*/77);
    ckpt->enable_autosave(ckpt_path, /*every_n=*/64);
    attack_oracle = ckpt.get();
  }

  const auto t0 = std::chrono::steady_clock::now();
  out.result = sat_attack(lc, *attack_oracle, opts);
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  out.recoveries = remote->recoveries();
  out.retransmits = remote->retransmits();
  out.state_syncs = remote->state_syncs();
  if (ckpt != nullptr) {
    // save_file snapshots the remote stack state (kStateGet), so it must
    // run while the chaos connection is still up; the probe below then
    // needs the server's single accept loop free, so shut down first.
    if (ckpt->save_file(ckpt_path)) ++out.autosaves;
    out.autosaves += ckpt->autosaves();
    if (!remote->transport_failed()) remote->shutdown();
    // The checkpoint written mid-chaos must round-trip cleanly. Its state
    // blob is in the REMOTE oracle's format (a kStateGet snapshot), so the
    // resume stack is what production resume would use: a fresh clean
    // connection to the (still restarting) server.
    auto probe_t = serve::tcp_connect("127.0.0.1", server.port(), 5000, 2000);
    auto probe = probe_t == nullptr
                     ? nullptr
                     : serve::RemoteOracle::connect(std::move(probe_t));
    if (probe != nullptr) {
      CheckpointedOracle reload(*probe, 77);
      out.checkpoint_loads =
          reload.load_file(ckpt_path) == CheckpointedOracle::LoadStatus::kOk &&
          reload.transcript_size() == ckpt->transcript_size();
      probe->shutdown();
    }
    std::remove(ckpt_path.c_str());
  } else if (!remote->transport_failed()) {
    remote->shutdown();
  }
  return out;
}

const char* status_slug(SatAttackResult::Status s) {
  switch (s) {
    case SatAttackResult::Status::kKeyFound: return "key_found";
    case SatAttackResult::Status::kIterationLimit: return "iteration_limit";
    case SatAttackResult::Status::kSolverBudget: return "solver_budget";
    case SatAttackResult::Status::kInconsistentOracle:
      return "inconsistent_oracle";
    case SatAttackResult::Status::kDegraded: return "degraded";
    case SatAttackResult::Status::kOracleError: return "oracle_error";
  }
  return "?";
}

bool same_result(const SatAttackResult& a, const SatAttackResult& b) {
  return a.status == b.status && a.key.words() == b.key.words() &&
         a.iterations == b.iterations &&
         a.oracle_queries == b.oracle_queries &&
         a.oracle_retries == b.oracle_retries;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.banner("Chaos serving: fault injection x reconnect x checkpointing");
  bench::JsonReport report("chaos", args);

  const LockedCircuit lc = chaos_target(args.full);

  // Fault-free references: the byte-identity yardstick every surviving
  // cell is held to. (In-process — serving a clean link is already
  // regression-tested byte-identical elsewhere.) One tester-grade
  // resilience config everywhere: majority votes triple the round-trip
  // traffic, which is both realistic for a flaky tester session and what
  // gives the per-operation fault rates enough operations to bite.
  SatAttackOptions voting;
  voting.resilience.retries = 2;
  voting.resilience.votes = 3;
  voting.resilience.quarantine = true;
  GoldenOracle ref_oracle(lc);
  const SatAttackResult ref = sat_attack(lc, ref_oracle, voting);
  ORAP_CHECK(ref.status == SatAttackResult::Status::kKeyFound);

  GoldenOracle ref_g2(lc);
  NoisyOracle ref_noisy(ref_g2, 0.05, 0x600dULL);
  const SatAttackResult noisy_ref = sat_attack(lc, ref_noisy, voting);
  ORAP_CHECK(noisy_ref.status == SatAttackResult::Status::kKeyFound);

  const Cell cells[] = {
      // tag             disc   corr  rec    ckpt   noise
      {"clean_norec",    0.0,   0.0,  false, false, 0.0},
      {"d01_norec",      0.01,  0.0,  false, false, 0.0},
      {"d03_norec",      0.03,  0.0,  false, false, 0.0},
      {"d01_rec",        0.01,  0.0,  true,  false, 0.0},
      {"d03_rec",        0.03,  0.0,  true,  false, 0.0},
      {"c02_rec",        0.0,   0.02, true,  false, 0.0},
      {"d02c01_rec_ck",  0.02,  0.01, true,  true,  0.0},
      {"d02_rec_noisy",  0.02,  0.0,  true,  false, 0.05},
  };

  Table t({"Cell", "Survived", "Status", "Identical", "Recoveries",
           "Retransmits", "StateSyncs", "Wall ms"});
  for (const Cell& cell : cells) {
    const bool noisy = cell.server_noise > 0.0;
    const SatAttackResult& want = noisy ? noisy_ref : ref;
    const CellResult r = run_cell(lc, cell, voting);
    const bool survived =
        r.connected && r.result.status == SatAttackResult::Status::kKeyFound;
    const bool identical = survived && same_result(r.result, want);

    // == The robustness claims, asserted ==
    if (!cell.reconnect && (cell.disconnect_rate > 0.0 ||
                            cell.corrupt_rate > 0.0)) {
      // A short attack can get lucky at 1%; the death claim is asserted
      // at the headline 3% rate, and lower rates report what happened.
      if (cell.disconnect_rate + cell.corrupt_rate >= 0.03)
        ORAP_CHECK_MSG(!survived,
                       "no-reconnect baseline survived a chaos rate that "
                       "must kill it");
    } else {
      ORAP_CHECK_MSG(survived, "self-healing cell did not finish");
      ORAP_CHECK_MSG(identical,
                     "recovered result is not byte-identical to the "
                     "fault-free run");
      if (cell.disconnect_rate > 0.0 || cell.corrupt_rate > 0.0)
        ORAP_CHECK_MSG(r.recoveries > 0, "chaos cell recovered zero times");
    }
    if (cell.checkpoint)
      ORAP_CHECK_MSG(r.autosaves > 0 && r.checkpoint_loads,
                     "chaos checkpoint did not flush and round-trip");
    if (noisy)
      ORAP_CHECK_MSG(r.state_syncs > 0,
                     "stateful cell never re-synced server state");

    char wall[24];
    std::snprintf(wall, sizeof wall, "%.1f", r.wall_ms);
    t.add_row({cell.tag, survived ? "yes" : "no",
               r.connected ? status_slug(r.result.status) : "no_connect",
               identical ? "yes" : (survived ? "NO" : "-"),
               std::to_string(r.recoveries), std::to_string(r.retransmits),
               std::to_string(r.state_syncs), wall});

    const std::string tag = cell.tag;
    report.add_string(tag + "_status",
                      r.connected ? status_slug(r.result.status)
                                  : "no_connect");
    report.add(tag + "_survived", survived ? 1 : 0, 0);
    report.add(tag + "_byte_identical", identical ? 1 : 0, 0);
    report.add(tag + "_recoveries", static_cast<double>(r.recoveries), 0);
    report.add(tag + "_retransmits", static_cast<double>(r.retransmits), 0);
    report.add(tag + "_state_syncs", static_cast<double>(r.state_syncs), 0);
    report.add(tag + "_wall_ms", r.wall_ms, 1);
    if (cell.checkpoint)
      report.add(tag + "_autosaves", static_cast<double>(r.autosaves), 0);
  }
  t.print(std::cout);

  report.add("ref_iterations", static_cast<double>(ref.iterations), 0);
  report.add("ref_oracle_queries", static_cast<double>(ref.oracle_queries),
             0);
  report.finish();
  std::printf(
      "\nReading: every cell attacks the same circuit through a server "
      "that loses ALL state\non every reconnect. The *_norec rows show the "
      "failure mode this PR removes: a few\npercent per-operation "
      "disconnect rate kills the attack in seconds. The *_rec rows\npay "
      "recoveries + retransmits + state re-syncs and still land the exact "
      "key with\nbyte-identical counters; the noisy row proves the state "
      "re-push is what makes a\nSTATEFUL server stack restart-transparent, "
      "and the _ck row shows client-side\ncheckpointing composes with "
      "self-healing unchanged.\n");
  return 0;
}
