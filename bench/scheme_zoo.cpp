// E10 — the locking-scheme zoo: every scheme the arms race produced, on
// one design, measured on the three axes the literature trades between:
//   * SAT resilience      (DIP count until key recovery),
//   * output corruption   (HD% and error rate under wrong keys),
//   * structural safety   (SPS-guided removal, CHES'17 bypass).
// The SFLL-HD rows sweep h at fixed k and k at fixed h to reproduce the
// CCS'17 trade-off: resilience ~ 2^k / C(k,h) is maximal at h = 0 and
// falls as h moves toward k/2, while corruptibility C(k,h) / 2^k moves the
// opposite way — one knob, two opposing security goals. K-Gate rows show
// the other corner: high corruption, no removable point function, and no
// SAT resilience at all — its protection argument is guarding the oracle,
// which is the paper's thesis.

#include <cstdio>
#include <iostream>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "attacks/structural.h"
#include "bench_common.h"
#include "eval/metrics.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "util/parallel.h"
#include "util/table.h"

using namespace orap;

namespace {

Netlist zoo_target(std::size_t gates, std::uint64_t seed) {
  GenSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 28;
  spec.num_gates = gates;
  spec.depth = 9;
  spec.seed = seed;
  return generate_circuit(spec);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.banner("Scheme zoo: resilience / corruption / structural safety");
  bench::JsonReport report("scheme_zoo", args);

  const std::size_t gates = args.full ? 2000 : 600;
  const std::size_t hd_words = args.full ? 64 : 16;
  const Netlist n = zoo_target(gates, 90);

  struct ZooCase {
    const char* name;
    const char* id;      // JSON key fragment
    const char* param;   // scheme knob, for the table
    LockedCircuit lc;
    HdResult hd = {};
    SatAttackResult r = {};
    OverheadResult ov = {};
    std::string removal = {}, bypass = {};
  };
  ZooCase cases[] = {
      {"weighted", "weighted", "g=3", lock_weighted(n, 12, 3, 2)},
      {"SARLock", "sarlock", "-", lock_sarlock(n, 10, 3)},
      // h-sweep at k=10: resilience 2^k/C(k,h) falls, corruption rises.
      {"SFLL-HD", "sfll_k10_h0", "h=0", lock_sfll_hd(n, 10, 0, 4)},
      {"SFLL-HD", "sfll_k10_h1", "h=1", lock_sfll_hd(n, 10, 1, 4)},
      {"SFLL-HD", "sfll_k10_h2", "h=2", lock_sfll_hd(n, 10, 2, 4)},
      {"SFLL-HD", "sfll_k10_h3", "h=3", lock_sfll_hd(n, 10, 3, 4)},
      // k-sweep at h=1: resilience 2^k/k grows with the key size.
      {"SFLL-HD", "sfll_k8_h1", "h=1", lock_sfll_hd(n, 8, 1, 4)},
      {"SFLL-HD", "sfll_k12_h1", "h=1", lock_sfll_hd(n, 12, 1, 4)},
      // keys_per_gate sweep: the multi-key input encoding.
      {"K-Gate", "kgate_p2", "p=2", lock_kgate(n, 12, 2, 5)},
      {"K-Gate", "kgate_p4", "p=4", lock_kgate(n, 12, 4, 5)},
  };

  // Every row owns its oracle and solver: fully independent, fan out.
  parallel_for(1, std::size(cases), [&](std::size_t i) {
    ZooCase& c = cases[i];
    c.hd = hamming_corruptibility(c.lc, hd_words, 8, 9);
    c.ov = measure_overhead(n, c.lc.netlist);
    GoldenOracle sat_oracle(c.lc);
    SatAttackOptions opts;
    opts.max_iterations = 4096;
    opts.portfolio_size = args.portfolio;
    opts.preprocess = args.preprocess;
    opts.cube_depth = static_cast<std::uint32_t>(args.cube);
    opts.incremental = args.incremental;
    c.r = sat_attack(c.lc, sat_oracle, opts);

    const auto rem = removal_attack(c.lc, 256, 501 + i);
    c.removal = rem.has_value() ? "REMOVED" : "does not apply";
    GoldenOracle bp_oracle(c.lc);
    const auto bp = bypass_attack(c.lc, bp_oracle, 8, 601 + i);
    if (!bp.has_value())
      c.bypass = "does not apply";
    else if (!bp->complete)
      c.bypass = "incomplete";
    else
      c.bypass = "BYPASSED (" + std::to_string(bp->correction_points) + ")";
  });

  Table t({"Scheme", "Param", "Key bits", "HD%", "ErrRate%", "SAT DIPs",
           "Key found", "Removal", "Bypass", "Area+%"});
  for (auto& c : cases) {
    const bool found = c.r.status == SatAttackResult::Status::kKeyFound;
    t.add_row({c.name, c.param, std::to_string(c.lc.num_key_inputs),
               Table::num(c.hd.hd_percent), Table::num(c.hd.error_rate_pct),
               std::to_string(c.r.iterations), found ? "yes" : "NO",
               c.removal, c.bypass, Table::num(c.ov.area_overhead_pct)});
    const std::string tag = std::string("zoo_") + c.id;
    report.add(tag + "_dips", c.r.iterations);
    report.add(tag + "_hd_pct", c.hd.hd_percent);
    report.add(tag + "_err_pct", c.hd.error_rate_pct);
    report.add(tag + "_area_pct", c.ov.area_overhead_pct);
    report.add_string(tag + "_removal", c.removal);
    report.add_string(tag + "_bypass", c.bypass);
  }
  std::printf("-- scheme zoo (SAT cap 4096 DIPs; removal/bypass golden) --\n");
  t.print(std::cout);
  std::printf("\n");

  // The literature's qualitative laws, checked on the collected grid and
  // recorded as 0/1 flags so CI can assert them from the JSON record.
  const std::size_t d_h0 = cases[2].r.iterations, d_h1 = cases[3].r.iterations;
  const std::size_t d_h2 = cases[4].r.iterations, d_h3 = cases[5].r.iterations;
  const std::size_t d_k8 = cases[6].r.iterations, d_k12 = cases[7].r.iterations;
  const bool resilience_falls_with_h = d_h0 > d_h1 && d_h1 > d_h2 && d_h2 >= d_h3;
  const bool err_rises_with_h =
      cases[2].hd.error_rate_pct < cases[5].hd.error_rate_pct;
  const bool resilience_grows_with_k = d_k8 < d_h1 && d_h1 < d_k12;
  report.add("zoo_sfll_resilience_falls_with_h",
             static_cast<std::size_t>(resilience_falls_with_h));
  report.add("zoo_sfll_err_rises_with_h",
             static_cast<std::size_t>(err_rises_with_h));
  report.add("zoo_sfll_resilience_grows_with_k",
             static_cast<std::size_t>(resilience_grows_with_k));
  std::printf("SFLL-HD(k,h) laws on this design:\n");
  std::printf("  DIPs fall as h -> k/2 (2^k/C(k,h)):  %zu > %zu > %zu >= %zu  [%s]\n",
              d_h0, d_h1, d_h2, d_h3,
              resilience_falls_with_h ? "ok" : "VIOLATED");
  std::printf("  error rate rises with h:             %.2f%% -> %.2f%%  [%s]\n",
              cases[2].hd.error_rate_pct, cases[5].hd.error_rate_pct,
              err_rises_with_h ? "ok" : "VIOLATED");
  std::printf("  DIPs grow with k at fixed h=1:       %zu < %zu < %zu  [%s]\n",
              d_k8, d_h1, d_k12, resilience_grows_with_k ? "ok" : "VIOLATED");

  report.finish();
  std::printf(
      "\nReading: SFLL-HD buys provable SAT resilience (h = 0 is TTLock, the "
      "extreme: one\ncube, ~2^k DIPs) at the price of near-zero corruption, "
      "and its restore unit is\nthe canonical removal victim. Weighted "
      "locking is the mirror image: massive\ncorruption, one-DIP SAT "
      "recovery, nothing to remove. K-Gate's input encoding\nresists both "
      "structural attacks yet falls to SAT in a handful of DIPs — like\n"
      "every scheme here, it is only as strong as the oracle is guarded, "
      "which is the\npaper's argument for protecting the oracle rather than "
      "the netlist.\n");
  return 0;
}
