// E6 — google-benchmark microbenchmarks of the underlying engines:
// bit-parallel logic simulation, event-driven fault simulation, AIG
// rewriting, CNF encoding + SAT solving, and the full scan-based oracle
// query. These put the Table I/II runtimes in context.

#include <benchmark/benchmark.h>

#include "aig/rewrite.h"
#include "atpg/fault_sim.h"
#include "chip/chip.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "netlist/simulator.h"
#include "attacks/encode_util.h"
#include "sat/encode.h"
#include "util/simd.h"

using namespace orap;

namespace {

Netlist bench_circuit(std::size_t gates) {
  GenSpec spec;
  spec.num_inputs = 64;
  spec.num_outputs = 48;
  spec.num_gates = gates;
  spec.depth = 16;
  spec.seed = 99;
  return generate_circuit(spec);
}

void BM_BitParallelSim(benchmark::State& state) {
  const Netlist n = bench_circuit(static_cast<std::size_t>(state.range(0)));
  Simulator sim(n);
  Rng rng(1);
  for (auto _ : state) {
    sim.randomize_inputs(rng);
    sim.run();
    benchmark::DoNotOptimize(sim.output_word(0));
  }
  // 64 patterns per run. items_per_second in the report is patterns/s;
  // divide by 1e6 for the Mpatterns/s quoted in EXPERIMENTS.md.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_BitParallelSim)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BitParallelSimWide(benchmark::State& state) {
  // Same circuit, multi-word blocks: one pass evaluates 64*kBlockWords
  // patterns per gate with the striped kernels of util/simd.h (AVX2 when
  // the CPU has it, auto-vectorized scalar otherwise). Compare
  // items_per_second against BM_BitParallelSim for the widening speedup.
  const Netlist n = bench_circuit(static_cast<std::size_t>(state.range(0)));
  Simulator sim(n, simd::kBlockWords);
  Rng rng(1);
  for (auto _ : state) {
    sim.randomize_inputs(rng);
    sim.run();
    benchmark::DoNotOptimize(sim.output_block(0).back());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          static_cast<std::int64_t>(simd::kBlockWords));
}
BENCHMARK(BM_BitParallelSimWide)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FaultSimBlock(benchmark::State& state) {
  const Netlist n = bench_circuit(static_cast<std::size_t>(state.range(0)));
  FaultSimulator fsim(n);
  const auto all_faults = collapse_faults(n);
  Rng rng(2);
  std::vector<std::uint64_t> words(n.num_inputs());
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Fault> faults = all_faults;  // fresh list (no dropping bias)
    for (auto& w : words) w = rng.word();
    state.ResumeTiming();
    benchmark::DoNotOptimize(fsim.run_block(words, faults));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(all_faults.size()));
}
BENCHMARK(BM_FaultSimBlock)->Arg(1000)->Arg(5000);

void BM_FaultSimBlockWide(benchmark::State& state) {
  // Fault simulation with 64*kBlockWords patterns per pass: the good
  // machine and every propagation overlay run the striped block kernels.
  const Netlist n = bench_circuit(static_cast<std::size_t>(state.range(0)));
  FaultSimulator fsim(n, simd::kBlockWords);
  const auto all_faults = collapse_faults(n);
  Rng rng(2);
  std::vector<std::uint64_t> words(n.num_inputs() * simd::kBlockWords);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Fault> faults = all_faults;  // fresh list (no dropping bias)
    for (auto& w : words) w = rng.word();
    state.ResumeTiming();
    benchmark::DoNotOptimize(fsim.run_block(words, faults));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(all_faults.size()));
}
BENCHMARK(BM_FaultSimBlockWide)->Arg(1000)->Arg(5000);

void BM_AigRewritePass(benchmark::State& state) {
  const Netlist n = bench_circuit(static_cast<std::size_t>(state.range(0)));
  const aig::Aig a = aig::Aig::from_netlist(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aig::rewrite_pass(a).num_ands());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.num_ands()));
}
BENCHMARK(BM_AigRewritePass)->Arg(1000)->Arg(10000);

void BM_CnfEncode(benchmark::State& state) {
  const Netlist n = bench_circuit(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    sat::Solver s;
    sat::Encoder e(s);
    benchmark::DoNotOptimize(e.encode(n).outputs.size());
  }
}
BENCHMARK(BM_CnfEncode)->Arg(1000)->Arg(10000);

void BM_CnfSimplify(benchmark::State& state) {
  // SatELite-style preprocessing (BVE + subsumption) of a freshly encoded
  // circuit with its PI/PO interface frozen — the cost the attacks pay
  // once per miter before the DIP loop.
  const Netlist n = bench_circuit(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    sat::Solver s;
    sat::Encoder e(s);
    const auto cone = e.encode(n);
    for (const sat::Var v : cone.inputs) s.freeze(v);
    for (const sat::Var v : cone.outputs) s.freeze(v);
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.simplify());
  }
}
BENCHMARK(BM_CnfSimplify)->Arg(1000)->Arg(10000);

void BM_SatMiterFindsInjectedBug(benchmark::State& state) {
  // Miter with one corrupted output: the solver must find a witness.
  // (A *clean* identical miter is deliberately not benchmarked raw: that
  // UNSAT proof is exponential for plain CDCL — the attacks avoid it with
  // cone sharing + the equivalence scaffold, see attacks/encode_util.h.)
  const Netlist n = bench_circuit(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    sat::Solver s;
    sat::Encoder e(s);
    const auto a = e.encode(n);
    const auto b = e.encode(n, a.inputs);
    auto outs = b.outputs;
    outs[0] = e.encode_gate(GateType::kNot, {outs[0]});  // inject bug
    e.force_not_equal(a.outputs, outs);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatMiterFindsInjectedBug)->Arg(500)->Arg(2000);

void BM_ScaffoldedKeyEquivalenceUnsat(benchmark::State& state) {
  // The UNSAT equivalence proof the attacks actually run: two key-variant
  // copies with cone sharing + equivalence scaffold, keys pinned equal.
  const Netlist n = bench_circuit(static_cast<std::size_t>(state.range(0)));
  const LockedCircuit lc = lock_weighted(n, 24, 3, 5);
  for (auto _ : state) {
    sat::Solver s;
    LockedEncoder lenc(s, lc);
    std::vector<sat::Var> x, k1, k2;
    for (std::size_t i = 0; i < lc.num_data_inputs; ++i)
      x.push_back(s.new_var());
    for (std::size_t i = 0; i < lc.num_key_inputs; ++i)
      k1.push_back(s.new_var());
    for (std::size_t i = 0; i < lc.num_key_inputs; ++i)
      k2.push_back(s.new_var());
    const auto a = lenc.encode_full(x, k1);
    const auto b = lenc.encode_key_variant(a, k2);
    for (std::size_t i = 0; i < lc.num_key_inputs; ++i) {
      s.add_clause({sat::Lit(k1[i], !lc.correct_key.get(i))});
      s.add_clause({sat::Lit(k2[i], !lc.correct_key.get(i))});
    }
    lenc.encoder().force_not_equal(a.outputs, b.outputs);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_ScaffoldedKeyEquivalenceUnsat)->Arg(500)->Arg(2000);

void BM_ScanOracleQuery(benchmark::State& state) {
  GenSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 28;
  spec.num_gates = static_cast<std::size_t>(state.range(0));
  spec.depth = 10;
  spec.seed = 7;
  const Netlist core = generate_circuit(spec);
  LockedCircuit lc = lock_weighted(core, 24, 3, 8);
  OrapChip chip(std::move(lc), 8, {}, 9);
  Rng rng(10);
  const BitVec data =
      BitVec::random(chip.num_pis() + chip.num_state_ffs(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan_oracle_query(chip, data).size());
  }
}
BENCHMARK(BM_ScanOracleQuery)->Arg(1000)->Arg(5000);

void BM_WeightedLockInsertion(benchmark::State& state) {
  const Netlist n = bench_circuit(static_cast<std::size_t>(state.range(0)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lock_weighted(n, 48, 3, ++seed).netlist.num_gates());
  }
}
BENCHMARK(BM_WeightedLockInsertion)->Arg(5000);

}  // namespace

BENCHMARK_MAIN();
