// E5 — ablation of the paper's key design decision (Sec. III-d): using an
// LFSR (vs. a plain shift register) as the key register "mixes up" the
// seed bits, inflating the XOR-tree Trojan of attack scenario (d). Sweeps
// free-run cycles, seed counts and reseed-point density and reports the
// transfer-matrix row density plus the resulting XOR-tree payload.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "lfsr/lfsr.h"
#include "util/table.h"

using namespace orap;

namespace {

double avg_row_density(const Gf2Matrix& m) {
  std::size_t total = 0;
  for (std::size_t r = 0; r < m.rows(); ++r) total += m.row(r).count();
  return m.rows() == 0 ? 0.0
                       : static_cast<double>(total) /
                             static_cast<double>(m.rows());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.banner("LFSR seed mixing vs plain shift register (attack-(d) cost)");
  bench::JsonReport report("lfsr_mixing", args);

  const std::size_t n = args.full ? 256 : 128;  // key-register size
  std::printf("key register size: %zu bits\n\n", n);

  // Sweep 1: free-run cycles between seeds.
  {
    Table t({"Free-run gap", "LFSR density", "LFSR XOR2s", "SR density",
             "SR XOR2s", "ratio"});
    for (const std::size_t gap : {0u, 2u, 4u, 8u, 16u}) {
      const std::vector<std::size_t> gaps(3, gap);
      const auto lfsr_m = key_transfer_matrix(LfsrConfig::standard(n), 3, gaps);
      const auto sr_m =
          key_transfer_matrix(LfsrConfig::shift_register(n), 3, gaps);
      const std::size_t lc = xor_tree_cost(lfsr_m);
      const std::size_t sc = xor_tree_cost(sr_m);
      t.add_row({std::to_string(gap), Table::num(avg_row_density(lfsr_m), 1),
                 std::to_string(lc), Table::num(avg_row_density(sr_m), 1),
                 std::to_string(sc),
                 sc == 0 ? "inf" : Table::num(double(lc) / double(sc), 1)});
      report.add("gap" + std::to_string(gap) + "_lfsr_xor2", lc);
      report.add("gap" + std::to_string(gap) + "_sr_xor2", sc);
    }
    std::printf("-- 3 seeds, all-cell reseeding, varying free-run gaps --\n");
    t.print(std::cout);
    std::printf("\n");
  }

  // Sweep 2: number of seeds (gap fixed at 4).
  {
    Table t({"Seeds", "LFSR density", "LFSR XOR2s", "seed-storage FFs"});
    for (const std::size_t seeds : {1u, 2u, 4u, 8u}) {
      const std::vector<std::size_t> gaps(seeds, 4);
      const auto m = key_transfer_matrix(LfsrConfig::standard(n), seeds, gaps);
      const std::size_t cost = xor_tree_cost(m);
      t.add_row({std::to_string(seeds), Table::num(avg_row_density(m), 1),
                 std::to_string(cost), std::to_string(seeds * n)});
      report.add("seeds" + std::to_string(seeds) + "_lfsr_xor2", cost);
    }
    std::printf("-- all-cell reseeding, gap 4, varying seed count --\n");
    t.print(std::cout);
    std::printf("\n");
  }

  // Sweep 3: reseed-point density (8 seeds, gap 3).
  {
    Table t({"Reseed points", "rank", "LFSR density", "LFSR XOR2s"});
    for (const std::size_t stride : {1u, 2u, 4u, 8u}) {
      LfsrConfig cfg = LfsrConfig::standard(n);
      cfg.reseed_points.clear();
      for (std::size_t i = 0; i < n; i += stride)
        cfg.reseed_points.push_back(i);
      const std::vector<std::size_t> gaps(8, 3);
      const auto m = key_transfer_matrix(cfg, 8, gaps);
      t.add_row({std::to_string(cfg.reseed_points.size()),
                 std::to_string(m.rank()) + "/" + std::to_string(n),
                 Table::num(avg_row_density(m), 1),
                 std::to_string(xor_tree_cost(m))});
    }
    std::printf("-- 8 seeds, gap 3, varying reseed-point density --\n");
    t.print(std::cout);
  }

  std::printf(
      "\nReading: the LFSR's feedback spreads every seed bit over many key "
      "bits\n(density grows with free-run cycles), so the attacker's XOR "
      "trees cost\nthousands of gates; a plain shift register leaves the "
      "seeds unmixed and\nthe same Trojan nearly free — the reason Fig. 1 "
      "uses an LFSR.\n");
  report.finish();
  return 0;
}
