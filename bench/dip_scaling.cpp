// E3b — SAT-attack effort scaling: DIP count vs key size across schemes.
// This is the figure every SAT-resistance paper draws: point-function
// schemes (SARLock / Anti-SAT) force ~2^k DIPs while high-corruption
// schemes collapse in a handful — which is why the paper pairs OraP (kills
// the oracle) with weighted locking (keeps the corruption).

#include <cstdio>
#include <iostream>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "bench_common.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "util/table.h"

using namespace orap;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.banner("SAT-attack DIP count vs key size");

  GenSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 20;
  spec.num_gates = args.full ? 1200 : 400;
  spec.depth = 9;
  spec.seed = 71;
  const Netlist n = generate_circuit(spec);

  const std::size_t max_sar = args.full ? 12 : 10;
  Table t({"Key bits", "weighted DIPs", "random-XOR DIPs", "SARLock DIPs",
           "2^k"});
  for (std::size_t k = 4; k <= max_sar; k += 2) {
    SatAttackOptions opts;
    opts.max_iterations = (std::int64_t{1} << (max_sar + 1));

    const LockedCircuit wl = lock_weighted(n, k, 2, 81);
    GoldenOracle o1(wl);
    const auto r1 = sat_attack(wl, o1, opts);

    const LockedCircuit xr = lock_random_xor(n, k, 82);
    GoldenOracle o2(xr);
    const auto r2 = sat_attack(xr, o2, opts);

    const LockedCircuit sar = lock_sarlock(n, k, 83);
    GoldenOracle o3(sar);
    const auto r3 = sat_attack(sar, o3, opts);

    t.add_row({std::to_string(k), std::to_string(r1.iterations),
               std::to_string(r2.iterations), std::to_string(r3.iterations),
               std::to_string(std::size_t{1} << k)});
    std::fflush(stdout);
  }
  t.print(std::cout);
  std::printf(
      "\nReading: SARLock tracks the 2^k wall (one wrong key eliminated per "
      "DIP);\nweighted and random-XOR locking stay flat — strong corruption "
      "means every DIP\nprunes half the key space. SAT resistance and "
      "output corruption trade off,\nunless the oracle itself is removed "
      "(OraP).\n");
  return 0;
}
