// E3b — SAT-attack effort scaling: DIP count vs key size across schemes.
// This is the figure every SAT-resistance paper draws: point-function
// schemes (SARLock / Anti-SAT) force ~2^k DIPs while high-corruption
// schemes collapse in a handful — which is why the paper pairs OraP (kills
// the oracle) with weighted locking (keeps the corruption).

#include <cstdio>
#include <iostream>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "bench_common.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "util/parallel.h"
#include "util/table.h"

using namespace orap;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.banner("SAT-attack DIP count vs key size");
  bench::JsonReport report("dip_scaling", args);

  GenSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 20;
  spec.num_gates = args.full ? 1200 : 400;
  spec.depth = 9;
  spec.seed = 71;
  const Netlist n = generate_circuit(spec);

  const std::size_t max_sar = args.full ? 12 : 10;
  Table t({"Key bits", "weighted DIPs", "random-XOR DIPs", "SARLock DIPs",
           "2^k"});

  // Each (key size, scheme) attack is an independent DIP loop against its
  // own oracle; fan the grid out across the pool.
  std::vector<std::size_t> key_sizes;
  for (std::size_t k = 4; k <= max_sar; k += 2) key_sizes.push_back(k);
  struct Row {
    std::size_t weighted = 0, random_xor = 0, sarlock = 0;
  };
  std::vector<Row> rows(key_sizes.size());
  std::vector<double> solver_ms(3 * key_sizes.size(), 0.0);
  parallel_for(1, 3 * key_sizes.size(), [&](std::size_t idx) {
    const std::size_t k = key_sizes[idx / 3];
    SatAttackOptions opts;
    opts.max_iterations = (std::int64_t{1} << (max_sar + 1));
    opts.portfolio_size = args.portfolio;
    switch (idx % 3) {
      case 0: {
        const LockedCircuit wl = lock_weighted(n, k, 2, 81);
        GoldenOracle o(wl);
        const SatAttackResult r = sat_attack(wl, o, opts);
        rows[idx / 3].weighted = r.iterations;
        solver_ms[idx] = r.solver_wall_ms;
        break;
      }
      case 1: {
        const LockedCircuit xr = lock_random_xor(n, k, 82);
        GoldenOracle o(xr);
        const SatAttackResult r = sat_attack(xr, o, opts);
        rows[idx / 3].random_xor = r.iterations;
        solver_ms[idx] = r.solver_wall_ms;
        break;
      }
      default: {
        const LockedCircuit sar = lock_sarlock(n, k, 83);
        GoldenOracle o(sar);
        const SatAttackResult r = sat_attack(sar, o, opts);
        rows[idx / 3].sarlock = r.iterations;
        solver_ms[idx] = r.solver_wall_ms;
        break;
      }
    }
  });
  double total_solver_ms = 0.0;
  for (const double ms : solver_ms) total_solver_ms += ms;
  report.add("solver_wall_ms", total_solver_ms, 1);

  for (std::size_t i = 0; i < key_sizes.size(); ++i) {
    const std::size_t k = key_sizes[i];
    t.add_row({std::to_string(k), std::to_string(rows[i].weighted),
               std::to_string(rows[i].random_xor),
               std::to_string(rows[i].sarlock),
               std::to_string(std::size_t{1} << k)});
    const std::string tag = "k" + std::to_string(k);
    report.add(tag + "_weighted_dips", rows[i].weighted);
    report.add(tag + "_xor_dips", rows[i].random_xor);
    report.add(tag + "_sarlock_dips", rows[i].sarlock);
  }
  t.print(std::cout);
  report.finish();
  std::printf(
      "\nReading: SARLock tracks the 2^k wall (one wrong key eliminated per "
      "DIP);\nweighted and random-XOR locking stay flat — strong corruption "
      "means every DIP\nprunes half the key space. SAT resistance and "
      "output corruption trade off,\nunless the oracle itself is removed "
      "(OraP).\n");
  return 0;
}
