// E3b — SAT-attack effort scaling: DIP count vs key size across schemes.
// This is the figure every SAT-resistance paper draws: point-function
// schemes (SARLock / Anti-SAT) force ~2^k DIPs while high-corruption
// schemes collapse in a handful — which is why the paper pairs OraP (kills
// the oracle) with weighted locking (keeps the corruption).
//
// With --preprocess=1 each miter is simplified before its DIP loop; the
// JSON record carries per-case formula sizes (vars / active_vars) plus the
// recovered key and status, so an off-vs-on A/B can assert "same attack
// outcome, ~N% smaller formula" (see BENCH_dip_scaling.json).

#include <cstdio>
#include <iostream>
#include <string>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "bench_common.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "util/parallel.h"
#include "util/table.h"

using namespace orap;

namespace {

const char* status_str(SatAttackResult::Status s) {
  switch (s) {
    case SatAttackResult::Status::kKeyFound: return "key_found";
    case SatAttackResult::Status::kIterationLimit: return "iteration_limit";
    case SatAttackResult::Status::kSolverBudget: return "solver_budget";
    case SatAttackResult::Status::kInconsistentOracle: return "inconsistent";
    case SatAttackResult::Status::kDegraded: return "degraded";
    case SatAttackResult::Status::kOracleError: return "oracle_error";
  }
  return "?";
}

std::string key_str(const BitVec& key) {
  std::string s;
  for (std::size_t i = 0; i < key.size(); ++i) s += key.get(i) ? '1' : '0';
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.banner("SAT-attack DIP count vs key size");
  bench::JsonReport report("dip_scaling", args);

  GenSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 20;
  spec.num_gates = args.full ? 1200 : 400;
  spec.depth = 9;
  spec.seed = 71;
  const Netlist n = generate_circuit(spec);

  const std::size_t max_sar = args.full ? 12 : 10;
  Table t({"Key bits", "weighted DIPs", "random-XOR DIPs", "SARLock DIPs",
           "2^k"});

  // Each (key size, scheme) attack is an independent DIP loop against its
  // own oracle; fan the grid out across the pool.
  std::vector<std::size_t> key_sizes;
  for (std::size_t k = 4; k <= max_sar; k += 2) key_sizes.push_back(k);
  static constexpr const char* kSchemes[] = {"weighted", "xor", "sarlock"};
  std::vector<SatAttackResult> results(3 * key_sizes.size());
  parallel_for(1, 3 * key_sizes.size(), [&](std::size_t idx) {
    const std::size_t k = key_sizes[idx / 3];
    SatAttackOptions opts;
    opts.max_iterations = (std::int64_t{1} << (max_sar + 1));
    opts.portfolio_size = args.portfolio;
    opts.preprocess = args.preprocess;
    opts.cube_depth = static_cast<std::uint32_t>(args.cube);
    opts.deadline_ms = args.deadline_ms;
    opts.incremental = args.incremental;
    switch (idx % 3) {
      case 0: {
        const LockedCircuit wl = lock_weighted(n, k, 2, 81);
        GoldenOracle o(wl);
        results[idx] = sat_attack(wl, o, opts);
        break;
      }
      case 1: {
        const LockedCircuit xr = lock_random_xor(n, k, 82);
        GoldenOracle o(xr);
        results[idx] = sat_attack(xr, o, opts);
        break;
      }
      default: {
        const LockedCircuit sar = lock_sarlock(n, k, 83);
        GoldenOracle o(sar);
        results[idx] = sat_attack(sar, o, opts);
        break;
      }
    }
  });
  double total_solver_ms = 0.0;
  double total_simplify_ms = 0.0;
  double total_cube_ms = 0.0;
  std::size_t total_vars = 0, total_active = 0;
  std::uint64_t total_eliminated = 0, total_removed = 0;
  std::uint64_t total_cubes = 0, total_cubes_refuted = 0;
  std::uint64_t total_inc_rounds = 0, total_carried = 0, total_reused = 0;
  for (const auto& r : results) {
    total_solver_ms += r.solver_wall_ms;
    total_simplify_ms += r.simplify_ms;
    total_cube_ms += r.cube_wall_ms;
    total_vars += r.solver_vars;
    total_active += r.solver_active_vars;
    total_eliminated += r.eliminated_vars;
    total_removed += r.removed_clauses;
    total_cubes += r.cubes;
    total_cubes_refuted += r.cubes_refuted;
    total_inc_rounds += r.incremental_rounds;
    total_carried += r.clauses_carried;
    total_reused += r.encode_reused;
  }
  report.add("solver_wall_ms", total_solver_ms, 1);
  report.add("simplify_ms", total_simplify_ms, 1);
  report.add("solver_vars", total_vars);
  report.add("solver_active_vars", total_active);
  report.add("eliminated_vars", static_cast<std::size_t>(total_eliminated));
  report.add("removed_clauses", static_cast<std::size_t>(total_removed));
  report.add("cubes", static_cast<std::size_t>(total_cubes));
  report.add("cubes_refuted", static_cast<std::size_t>(total_cubes_refuted));
  report.add("cube_wall_ms", total_cube_ms, 1);
  report.add("incremental_rounds", static_cast<std::size_t>(total_inc_rounds));
  report.add("clauses_carried", static_cast<std::size_t>(total_carried));
  report.add("encode_reused", static_cast<std::size_t>(total_reused));

  for (std::size_t i = 0; i < key_sizes.size(); ++i) {
    const std::size_t k = key_sizes[i];
    t.add_row({std::to_string(k), std::to_string(results[3 * i].iterations),
               std::to_string(results[3 * i + 1].iterations),
               std::to_string(results[3 * i + 2].iterations),
               std::to_string(std::size_t{1} << k)});
    for (std::size_t s = 0; s < 3; ++s) {
      const SatAttackResult& r = results[3 * i + s];
      const std::string tag =
          "k" + std::to_string(k) + "_" + kSchemes[s] + "_";
      report.add(tag + "dips", r.iterations);
      report.add_string(tag + "status", status_str(r.status));
      report.add_string(tag + "key", key_str(r.key));
      report.add(tag + "vars", r.solver_vars);
      report.add(tag + "active_vars", r.solver_active_vars);
    }
  }
  t.print(std::cout);
  report.finish();
  std::printf(
      "\nReading: SARLock tracks the 2^k wall (one wrong key eliminated per "
      "DIP);\nweighted and random-XOR locking stay flat — strong corruption "
      "means every DIP\nprunes half the key space. SAT resistance and "
      "output corruption trade off,\nunless the oracle itself is removed "
      "(OraP).\n");
  return 0;
}
