// E1 — reproduces Table I: Hamming-distance output corruptibility and
// area/delay overhead of OraP + weighted logic locking on the eight
// ISCAS'89 / ITC'99 benchmark profiles.
//
// Method (paper Sec. IV): lock the combinational core with weighted logic
// locking (key size = LFSR size, control-gate width per column 5); HD is
// measured with the valid key vs. random keys over long pseudorandom
// pattern sequences; area/delay are measured after resynthesizing both
// original and protected circuits (our AIG rewrite pipeline standing in
// for ABC strash->refactor->rewrite); the OraP support hardware (pulse
// generators, reseeding + feedback XORs) is added to the protected area.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/metrics.h"
#include "gen/circuit_gen.h"
#include "lfsr/lfsr.h"
#include "locking/locking.h"
#include "util/parallel.h"
#include "util/table.h"

using namespace orap;

namespace {

struct PaperRow {
  double hd, area, delay;
};

// Table I's published numbers, for side-by-side comparison.
constexpr PaperRow kPaper[8] = {
    {39.45, 33.51, 14.29}, {50.00, 19.73, 0.00}, {35.39, 11.21, 0.00},
    {29.49, 1.80, 0.00},   {31.00, 1.97, 4.51},  {42.27, 27.16, 21.21},
    {41.00, 25.66, 19.40}, {40.37, 18.68, 18.84}};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.banner("Table I: HD, area and delay overhead (paper vs measured)");
  bench::JsonReport report("table1_overhead", args);

  Table table({"Circuit", "# Gates", "# Outs", "LFSR", "Ctrl",
               "HD% paper", "HD% ours", "ArOvhd% paper", "ArOvhd% ours",
               "DelOvhd% paper", "DelOvhd% ours"});

  const std::size_t hd_words = args.full ? 512 : 64;  // x64 patterns
  const std::size_t hd_keys = 8;

  const auto& profiles = paper_benchmarks();

  // Circuits are independent: fan the rows out across the pool and print
  // them in table order afterwards.
  struct Row {
    std::size_t gates = 0, outs = 0;
    HdResult hd;
    OverheadResult ov;
  };
  std::vector<Row> rows(profiles.size());
  parallel_for(1, profiles.size(), [&](std::size_t i) {
    const BenchmarkProfile& p = profiles[i];
    const Netlist n = make_benchmark(p, args.scale);
    const LockedCircuit lc =
        lock_weighted(n, p.lfsr_size, p.ctrl_gate_inputs, 1000 + i);

    rows[i].hd = hamming_corruptibility(lc, hd_words, hd_keys, 7 + i);

    // OraP support hardware counted with the protected circuit (Sec. IV):
    // reseeding XORs + polynomial XORs + pulse-generator NANDs.
    const LfsrConfig lfsr_cfg = LfsrConfig::standard(p.lfsr_size);
    rows[i].ov = measure_overhead(n, lc.netlist, lfsr_cfg.support_gate_count());
    rows[i].gates = n.gate_count_no_inverters();
    rows[i].outs = n.num_outputs();
  });

  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const BenchmarkProfile& p = profiles[i];
    const Row& r = rows[i];
    table.add_row({p.name, std::to_string(r.gates), std::to_string(r.outs),
                   std::to_string(p.lfsr_size),
                   std::to_string(p.ctrl_gate_inputs),
                   Table::num(kPaper[i].hd), Table::num(r.hd.hd_percent),
                   Table::num(kPaper[i].area),
                   Table::num(r.ov.area_overhead_pct),
                   Table::num(kPaper[i].delay),
                   Table::num(r.ov.delay_overhead_pct)});
    report.add(std::string(p.name) + "_hd_pct", r.hd.hd_percent);
    report.add(std::string(p.name) + "_area_ovh_pct", r.ov.area_overhead_pct);
    report.add(std::string(p.name) + "_delay_ovh_pct",
               r.ov.delay_overhead_pct);
  }
  table.print(std::cout);

  // --- scheme zoo: what the alternative schemes cost on one core --------
  // Same measurement as above (resynthesized AND counts / level depth) so
  // the numbers are comparable to the weighted-locking rows. SFLL-HD pays
  // for two HD comparator trees; SARLock/Anti-SAT for one point function;
  // K-Gate for a thin XOR/MUX layer on the encoded inputs.
  {
    Table zt({"Scheme", "Key bits", "ArOvhd%", "DelOvhd%"});
    const BenchmarkProfile& zp = benchmark_profile("s38417");
    const Netlist zn = make_benchmark(zp, args.scale);
    struct ZRow {
      const char* name;
      const char* id;
      LockedCircuit lc;
      OverheadResult ov = {};
    };
    ZRow zrows[] = {
        {"weighted g=3", "weighted", lock_weighted(zn, 24, 3, 21)},
        {"SARLock", "sarlock", lock_sarlock(zn, 12, 22)},
        {"Anti-SAT", "antisat", lock_antisat(zn, 16, 23)},
        {"SFLL-HD h=1", "sfll_hd", lock_sfll_hd(zn, 12, 1, 24)},
        {"K-Gate p=2", "kgate", lock_kgate(zn, 12, 2, 25)},
    };
    parallel_for(1, std::size(zrows), [&](std::size_t i) {
      zrows[i].ov = measure_overhead(zn, zrows[i].lc.netlist);
    });
    for (auto& z : zrows) {
      zt.add_row({z.name, std::to_string(z.lc.num_key_inputs),
                  Table::num(z.ov.area_overhead_pct),
                  Table::num(z.ov.delay_overhead_pct)});
      report.add(std::string("zoo_") + z.id + "_area_ovh_pct",
                 z.ov.area_overhead_pct);
      report.add(std::string("zoo_") + z.id + "_delay_ovh_pct",
                 z.ov.delay_overhead_pct);
    }
    std::printf("\n-- per-scheme overhead on s38417 (no OraP hardware) --\n");
    zt.print(std::cout);
  }
  report.finish();
  std::printf(
      "\nNotes: circuits are synthetic stand-ins with the published "
      "interface/gate profiles\n(see DESIGN.md). Absolute overheads differ "
      "from the paper (random logic resists\nresynthesis more than the real "
      "benchmarks), but the ordering across circuits —\ndriven by "
      "key-size-to-gates ratio — and the size trend are preserved.\n");
  return 0;
}
