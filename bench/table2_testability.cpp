// E2 — reproduces Table II: stuck-at fault coverage and redundant+aborted
// fault counts for the original vs. OraP-protected circuits.
//
// Flow (paper Sec. IV): pseudorandom fault simulation with dropping (the
// HOPE phase), then deterministic SAT-ATPG classifying every leftover
// fault as detected / redundant (UNSAT) / aborted (budget) — the Atalanta
// phase. Key inputs are free to the ATPG because the LFSR key register is
// part of the scan chains.

#include <cstdio>
#include <iostream>

#include "atpg/atpg.h"
#include "bench_common.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "util/table.h"

using namespace orap;

namespace {

struct PaperRow {
  double fc_orig, fc_prot;
  int ra_orig, ra_prot;  // redundant + aborted
};

constexpr PaperRow kPaper[8] = {
    {99.47, 99.50, 165, 165},   {95.85, 96.65, 1506, 1265},
    {97.23, 99.08, 2122, 717},  {99.43, 99.45, 1513, 1468},
    {99.03, 99.21, 5165, 4254}, {99.29, 99.33, 324, 318},
    {99.18, 99.30, 381, 340},   {99.48, 99.50, 352, 346}};

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  if (!args.full && args.scale > 0.05) args.scale = 0.05;  // ATPG is heavy
  args.banner("Table II: stuck-at fault coverage, original vs protected");

  Table table({"Circuit", "FC% orig (paper)", "FC% orig (ours)",
               "R+A orig (paper)", "R+A orig (ours)", "FC% prot (paper)",
               "FC% prot (ours)", "R+A prot (paper)", "R+A prot (ours)"});

  AtpgOptions opts;
  opts.random_words = args.full ? 512 : 96;
  // Hard redundancy proofs dominate the runtime; in reduced mode a lower
  // abort budget reclassifies the hardest ones as aborted (exactly what
  // Atalanta's backtrack limit does).
  opts.conflict_budget = args.full ? 10000 : 2000;

  const auto& profiles = paper_benchmarks();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const BenchmarkProfile& p = profiles[i];
    const Netlist n = make_benchmark(p, args.scale);
    const LockedCircuit lc =
        lock_weighted(n, p.lfsr_size, p.ctrl_gate_inputs, 2000 + i);

    opts.seed = 300 + i;
    const AtpgResult orig = run_atpg(n, opts);
    const AtpgResult prot = run_atpg(lc.netlist, opts);

    table.add_row(
        {p.name, Table::num(kPaper[i].fc_orig),
         Table::num(orig.fault_coverage_pct()),
         std::to_string(kPaper[i].ra_orig),
         std::to_string(orig.redundant_plus_aborted()),
         Table::num(kPaper[i].fc_prot), Table::num(prot.fault_coverage_pct()),
         std::to_string(kPaper[i].ra_prot),
         std::to_string(prot.redundant_plus_aborted())});
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape (matches the paper): FC of the protected version is "
      ">= the original\n(key inputs act as scan-controllable test points), "
      "and redundant+aborted does not grow.\n");
  return 0;
}
