// E2 — reproduces Table II: stuck-at fault coverage and redundant+aborted
// fault counts for the original vs. OraP-protected circuits.
//
// Flow (paper Sec. IV): pseudorandom fault simulation with dropping (the
// HOPE phase), then deterministic SAT-ATPG classifying every leftover
// fault as detected / redundant (UNSAT) / aborted (budget) — the Atalanta
// phase. Key inputs are free to the ATPG because the LFSR key register is
// part of the scan chains.

#include <cstdio>
#include <iostream>

#include "atpg/atpg.h"
#include "bench_common.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "util/parallel.h"
#include "util/table.h"

using namespace orap;

namespace {

struct PaperRow {
  double fc_orig, fc_prot;
  int ra_orig, ra_prot;  // redundant + aborted
};

constexpr PaperRow kPaper[8] = {
    {99.47, 99.50, 165, 165},   {95.85, 96.65, 1506, 1265},
    {97.23, 99.08, 2122, 717},  {99.43, 99.45, 1513, 1468},
    {99.03, 99.21, 5165, 4254}, {99.29, 99.33, 324, 318},
    {99.18, 99.30, 381, 340},   {99.48, 99.50, 352, 346}};

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  if (!args.full && args.scale > 0.05) args.scale = 0.05;  // ATPG is heavy
  args.banner("Table II: stuck-at fault coverage, original vs protected");
  bench::JsonReport report("table2_testability", args);

  Table table({"Circuit", "FC% orig (paper)", "FC% orig (ours)",
               "R+A orig (paper)", "R+A orig (ours)", "FC% prot (paper)",
               "FC% prot (ours)", "R+A prot (paper)", "R+A prot (ours)"});

  AtpgOptions opts;
  opts.random_words = args.full ? 512 : 96;
  // Hard redundancy proofs dominate the runtime; in reduced mode a lower
  // abort budget reclassifies the hardest ones as aborted (exactly what
  // Atalanta's backtrack limit does).
  opts.conflict_budget = args.full ? 10000 : 2000;
  opts.portfolio_size = args.portfolio;
  opts.preprocess = args.preprocess;
  opts.cube_depth = static_cast<std::uint32_t>(args.cube);
  opts.incremental = args.incremental;

  const auto& profiles = paper_benchmarks();

  // Every (circuit, original|protected) ATPG run is independent and
  // seeded by the circuit index, so the grid fans out across the pool and
  // the numbers are identical at any thread count.
  std::vector<AtpgResult> orig(profiles.size());
  std::vector<AtpgResult> prot(profiles.size());
  parallel_for(1, 2 * profiles.size(), [&](std::size_t t) {
    const std::size_t i = t / 2;
    const BenchmarkProfile& p = profiles[i];
    const Netlist n = make_benchmark(p, args.scale);
    AtpgOptions o = opts;
    o.seed = 300 + i;
    if (t % 2 == 0) {
      orig[i] = run_atpg(n, o);
    } else {
      const LockedCircuit lc =
          lock_weighted(n, p.lfsr_size, p.ctrl_gate_inputs, 2000 + i);
      prot[i] = run_atpg(lc.netlist, o);
    }
  });

  std::uint64_t total_cubes = 0, total_cubes_refuted = 0;
  double total_cube_ms = 0.0;
  std::uint64_t total_rounds = 0, total_carried = 0, total_reused = 0;
  std::size_t total_sim_patterns = 0;
  double total_sim_ms = 0.0;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    total_cubes += orig[i].cubes + prot[i].cubes;
    total_cubes_refuted += orig[i].cubes_refuted + prot[i].cubes_refuted;
    total_cube_ms += orig[i].cube_wall_ms + prot[i].cube_wall_ms;
    total_rounds += orig[i].solver_rounds + prot[i].solver_rounds;
    total_carried += orig[i].clauses_carried + prot[i].clauses_carried;
    total_reused += orig[i].encode_reused + prot[i].encode_reused;
    total_sim_patterns +=
        orig[i].random_sim_patterns + prot[i].random_sim_patterns;
    total_sim_ms += orig[i].random_sim_ms + prot[i].random_sim_ms;
  }
  report.add("cubes", static_cast<std::size_t>(total_cubes));
  report.add("cubes_refuted", static_cast<std::size_t>(total_cubes_refuted));
  report.add("cube_wall_ms", total_cube_ms, 1);
  report.add("solver_rounds", static_cast<std::size_t>(total_rounds));
  report.add("clauses_carried", static_cast<std::size_t>(total_carried));
  report.add("encode_reused", static_cast<std::size_t>(total_reused));
  report.add("random_sim_mpatterns_per_s",
             bench::mpatterns_per_sec(total_sim_patterns, total_sim_ms), 2);
  std::printf("random-phase fault simulation: %.2f Mpatterns/s\n",
              bench::mpatterns_per_sec(total_sim_patterns, total_sim_ms));

  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const BenchmarkProfile& p = profiles[i];
    table.add_row(
        {p.name, Table::num(kPaper[i].fc_orig),
         Table::num(orig[i].fault_coverage_pct()),
         std::to_string(kPaper[i].ra_orig),
         std::to_string(orig[i].redundant_plus_aborted()),
         Table::num(kPaper[i].fc_prot),
         Table::num(prot[i].fault_coverage_pct()),
         std::to_string(kPaper[i].ra_prot),
         std::to_string(prot[i].redundant_plus_aborted())});
    report.add(std::string(p.name) + "_fc_orig_pct",
               orig[i].fault_coverage_pct());
    report.add(std::string(p.name) + "_fc_prot_pct",
               prot[i].fault_coverage_pct());
    report.add(std::string(p.name) + "_ra_orig",
               orig[i].redundant_plus_aborted());
    report.add(std::string(p.name) + "_ra_prot",
               prot[i].redundant_plus_aborted());
  }
  table.print(std::cout);
  report.finish();
  std::printf(
      "\nExpected shape (matches the paper): FC of the protected version is "
      ">= the original\n(key inputs act as scan-controllable test points), "
      "and redundant+aborted does not grow.\n");
  return 0;
}
