file(REMOVE_RECURSE
  "liborap_chip.a"
)
