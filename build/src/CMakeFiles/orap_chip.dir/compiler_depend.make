# Empty compiler generated dependencies file for orap_chip.
# This may be replaced when dependencies are built.
