file(REMOVE_RECURSE
  "CMakeFiles/orap_chip.dir/chip/chip.cpp.o"
  "CMakeFiles/orap_chip.dir/chip/chip.cpp.o.d"
  "liborap_chip.a"
  "liborap_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orap_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
