# Empty compiler generated dependencies file for orap_lfsr.
# This may be replaced when dependencies are built.
