file(REMOVE_RECURSE
  "liborap_lfsr.a"
)
