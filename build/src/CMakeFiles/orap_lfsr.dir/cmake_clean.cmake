file(REMOVE_RECURSE
  "CMakeFiles/orap_lfsr.dir/lfsr/lfsr.cpp.o"
  "CMakeFiles/orap_lfsr.dir/lfsr/lfsr.cpp.o.d"
  "liborap_lfsr.a"
  "liborap_lfsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orap_lfsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
