# Empty dependencies file for orap_eval.
# This may be replaced when dependencies are built.
