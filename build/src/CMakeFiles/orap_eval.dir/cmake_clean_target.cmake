file(REMOVE_RECURSE
  "liborap_eval.a"
)
