file(REMOVE_RECURSE
  "CMakeFiles/orap_eval.dir/eval/metrics.cpp.o"
  "CMakeFiles/orap_eval.dir/eval/metrics.cpp.o.d"
  "liborap_eval.a"
  "liborap_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orap_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
