file(REMOVE_RECURSE
  "CMakeFiles/orap_util.dir/util/gf2.cpp.o"
  "CMakeFiles/orap_util.dir/util/gf2.cpp.o.d"
  "liborap_util.a"
  "liborap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
