# Empty dependencies file for orap_util.
# This may be replaced when dependencies are built.
