file(REMOVE_RECURSE
  "liborap_util.a"
)
