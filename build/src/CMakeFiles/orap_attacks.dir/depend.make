# Empty dependencies file for orap_attacks.
# This may be replaced when dependencies are built.
