file(REMOVE_RECURSE
  "liborap_attacks.a"
)
