file(REMOVE_RECURSE
  "CMakeFiles/orap_attacks.dir/attacks/sat_attack.cpp.o"
  "CMakeFiles/orap_attacks.dir/attacks/sat_attack.cpp.o.d"
  "CMakeFiles/orap_attacks.dir/attacks/simple_attacks.cpp.o"
  "CMakeFiles/orap_attacks.dir/attacks/simple_attacks.cpp.o.d"
  "CMakeFiles/orap_attacks.dir/attacks/structural.cpp.o"
  "CMakeFiles/orap_attacks.dir/attacks/structural.cpp.o.d"
  "liborap_attacks.a"
  "liborap_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orap_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
