file(REMOVE_RECURSE
  "CMakeFiles/orap_locking.dir/locking/locking.cpp.o"
  "CMakeFiles/orap_locking.dir/locking/locking.cpp.o.d"
  "liborap_locking.a"
  "liborap_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orap_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
