file(REMOVE_RECURSE
  "liborap_locking.a"
)
