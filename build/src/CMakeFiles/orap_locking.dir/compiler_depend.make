# Empty compiler generated dependencies file for orap_locking.
# This may be replaced when dependencies are built.
