# Empty dependencies file for orap_sat.
# This may be replaced when dependencies are built.
