file(REMOVE_RECURSE
  "CMakeFiles/orap_sat.dir/sat/dimacs.cpp.o"
  "CMakeFiles/orap_sat.dir/sat/dimacs.cpp.o.d"
  "CMakeFiles/orap_sat.dir/sat/encode.cpp.o"
  "CMakeFiles/orap_sat.dir/sat/encode.cpp.o.d"
  "CMakeFiles/orap_sat.dir/sat/solver.cpp.o"
  "CMakeFiles/orap_sat.dir/sat/solver.cpp.o.d"
  "liborap_sat.a"
  "liborap_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orap_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
