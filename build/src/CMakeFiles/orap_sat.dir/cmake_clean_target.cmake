file(REMOVE_RECURSE
  "liborap_sat.a"
)
