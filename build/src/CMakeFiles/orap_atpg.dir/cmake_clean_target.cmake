file(REMOVE_RECURSE
  "liborap_atpg.a"
)
