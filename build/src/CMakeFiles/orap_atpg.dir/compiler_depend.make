# Empty compiler generated dependencies file for orap_atpg.
# This may be replaced when dependencies are built.
