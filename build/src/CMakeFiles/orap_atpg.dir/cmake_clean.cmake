file(REMOVE_RECURSE
  "CMakeFiles/orap_atpg.dir/atpg/atpg.cpp.o"
  "CMakeFiles/orap_atpg.dir/atpg/atpg.cpp.o.d"
  "CMakeFiles/orap_atpg.dir/atpg/fault.cpp.o"
  "CMakeFiles/orap_atpg.dir/atpg/fault.cpp.o.d"
  "CMakeFiles/orap_atpg.dir/atpg/fault_sim.cpp.o"
  "CMakeFiles/orap_atpg.dir/atpg/fault_sim.cpp.o.d"
  "liborap_atpg.a"
  "liborap_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orap_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
