file(REMOVE_RECURSE
  "liborap_gen.a"
)
