file(REMOVE_RECURSE
  "CMakeFiles/orap_gen.dir/gen/circuit_gen.cpp.o"
  "CMakeFiles/orap_gen.dir/gen/circuit_gen.cpp.o.d"
  "CMakeFiles/orap_gen.dir/gen/embedded.cpp.o"
  "CMakeFiles/orap_gen.dir/gen/embedded.cpp.o.d"
  "liborap_gen.a"
  "liborap_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orap_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
