# Empty compiler generated dependencies file for orap_gen.
# This may be replaced when dependencies are built.
