file(REMOVE_RECURSE
  "CMakeFiles/orap_netlist.dir/netlist/analysis.cpp.o"
  "CMakeFiles/orap_netlist.dir/netlist/analysis.cpp.o.d"
  "CMakeFiles/orap_netlist.dir/netlist/bench_io.cpp.o"
  "CMakeFiles/orap_netlist.dir/netlist/bench_io.cpp.o.d"
  "CMakeFiles/orap_netlist.dir/netlist/netlist.cpp.o"
  "CMakeFiles/orap_netlist.dir/netlist/netlist.cpp.o.d"
  "CMakeFiles/orap_netlist.dir/netlist/simulator.cpp.o"
  "CMakeFiles/orap_netlist.dir/netlist/simulator.cpp.o.d"
  "CMakeFiles/orap_netlist.dir/netlist/verilog_io.cpp.o"
  "CMakeFiles/orap_netlist.dir/netlist/verilog_io.cpp.o.d"
  "liborap_netlist.a"
  "liborap_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orap_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
