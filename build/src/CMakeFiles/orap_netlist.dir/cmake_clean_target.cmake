file(REMOVE_RECURSE
  "liborap_netlist.a"
)
