# Empty compiler generated dependencies file for orap_netlist.
# This may be replaced when dependencies are built.
