
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/analysis.cpp" "src/CMakeFiles/orap_netlist.dir/netlist/analysis.cpp.o" "gcc" "src/CMakeFiles/orap_netlist.dir/netlist/analysis.cpp.o.d"
  "/root/repo/src/netlist/bench_io.cpp" "src/CMakeFiles/orap_netlist.dir/netlist/bench_io.cpp.o" "gcc" "src/CMakeFiles/orap_netlist.dir/netlist/bench_io.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/orap_netlist.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/orap_netlist.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/simulator.cpp" "src/CMakeFiles/orap_netlist.dir/netlist/simulator.cpp.o" "gcc" "src/CMakeFiles/orap_netlist.dir/netlist/simulator.cpp.o.d"
  "/root/repo/src/netlist/verilog_io.cpp" "src/CMakeFiles/orap_netlist.dir/netlist/verilog_io.cpp.o" "gcc" "src/CMakeFiles/orap_netlist.dir/netlist/verilog_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/orap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
