file(REMOVE_RECURSE
  "CMakeFiles/orap_aig.dir/aig/aig.cpp.o"
  "CMakeFiles/orap_aig.dir/aig/aig.cpp.o.d"
  "CMakeFiles/orap_aig.dir/aig/rewrite.cpp.o"
  "CMakeFiles/orap_aig.dir/aig/rewrite.cpp.o.d"
  "liborap_aig.a"
  "liborap_aig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orap_aig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
