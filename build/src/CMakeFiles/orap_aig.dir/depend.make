# Empty dependencies file for orap_aig.
# This may be replaced when dependencies are built.
