file(REMOVE_RECURSE
  "liborap_aig.a"
)
