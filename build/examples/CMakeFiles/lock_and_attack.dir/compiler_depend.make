# Empty compiler generated dependencies file for lock_and_attack.
# This may be replaced when dependencies are built.
