file(REMOVE_RECURSE
  "CMakeFiles/lock_and_attack.dir/lock_and_attack.cpp.o"
  "CMakeFiles/lock_and_attack.dir/lock_and_attack.cpp.o.d"
  "lock_and_attack"
  "lock_and_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_and_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
