file(REMOVE_RECURSE
  "CMakeFiles/trojan_analysis.dir/trojan_analysis.cpp.o"
  "CMakeFiles/trojan_analysis.dir/trojan_analysis.cpp.o.d"
  "trojan_analysis"
  "trojan_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trojan_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
