# Empty compiler generated dependencies file for trojan_analysis.
# This may be replaced when dependencies are built.
