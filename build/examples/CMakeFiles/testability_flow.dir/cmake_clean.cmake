file(REMOVE_RECURSE
  "CMakeFiles/testability_flow.dir/testability_flow.cpp.o"
  "CMakeFiles/testability_flow.dir/testability_flow.cpp.o.d"
  "testability_flow"
  "testability_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testability_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
