# Empty compiler generated dependencies file for testability_flow.
# This may be replaced when dependencies are built.
