# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/aig_test[1]_include.cmake")
include("/root/repo/build/tests/locking_test[1]_include.cmake")
include("/root/repo/build/tests/lfsr_test[1]_include.cmake")
include("/root/repo/build/tests/chip_test[1]_include.cmake")
include("/root/repo/build/tests/attacks_test[1]_include.cmake")
include("/root/repo/build/tests/atpg_test[1]_include.cmake")
include("/root/repo/build/tests/structural_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/dimacs_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
