file(REMOVE_RECURSE
  "CMakeFiles/locking_test.dir/locking_test.cpp.o"
  "CMakeFiles/locking_test.dir/locking_test.cpp.o.d"
  "locking_test"
  "locking_test.pdb"
  "locking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
