# Empty compiler generated dependencies file for structural_test.
# This may be replaced when dependencies are built.
