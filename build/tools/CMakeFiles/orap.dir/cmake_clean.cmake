file(REMOVE_RECURSE
  "CMakeFiles/orap.dir/orap_cli.cpp.o"
  "CMakeFiles/orap.dir/orap_cli.cpp.o.d"
  "orap"
  "orap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
