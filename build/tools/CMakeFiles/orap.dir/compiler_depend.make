# Empty compiler generated dependencies file for orap.
# This may be replaced when dependencies are built.
