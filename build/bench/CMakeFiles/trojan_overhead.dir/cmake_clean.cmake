file(REMOVE_RECURSE
  "CMakeFiles/trojan_overhead.dir/trojan_overhead.cpp.o"
  "CMakeFiles/trojan_overhead.dir/trojan_overhead.cpp.o.d"
  "trojan_overhead"
  "trojan_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trojan_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
