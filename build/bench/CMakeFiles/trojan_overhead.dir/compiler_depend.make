# Empty compiler generated dependencies file for trojan_overhead.
# This may be replaced when dependencies are built.
