file(REMOVE_RECURSE
  "CMakeFiles/dip_scaling.dir/dip_scaling.cpp.o"
  "CMakeFiles/dip_scaling.dir/dip_scaling.cpp.o.d"
  "dip_scaling"
  "dip_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dip_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
