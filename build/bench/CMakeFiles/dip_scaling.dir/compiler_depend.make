# Empty compiler generated dependencies file for dip_scaling.
# This may be replaced when dependencies are built.
