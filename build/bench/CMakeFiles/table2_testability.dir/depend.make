# Empty dependencies file for table2_testability.
# This may be replaced when dependencies are built.
