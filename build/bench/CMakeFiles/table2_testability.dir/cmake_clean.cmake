file(REMOVE_RECURSE
  "CMakeFiles/table2_testability.dir/table2_testability.cpp.o"
  "CMakeFiles/table2_testability.dir/table2_testability.cpp.o.d"
  "table2_testability"
  "table2_testability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_testability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
