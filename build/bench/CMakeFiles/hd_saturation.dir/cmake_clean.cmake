file(REMOVE_RECURSE
  "CMakeFiles/hd_saturation.dir/hd_saturation.cpp.o"
  "CMakeFiles/hd_saturation.dir/hd_saturation.cpp.o.d"
  "hd_saturation"
  "hd_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
