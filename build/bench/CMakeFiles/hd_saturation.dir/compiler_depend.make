# Empty compiler generated dependencies file for hd_saturation.
# This may be replaced when dependencies are built.
