file(REMOVE_RECURSE
  "CMakeFiles/attack_suite.dir/attack_suite.cpp.o"
  "CMakeFiles/attack_suite.dir/attack_suite.cpp.o.d"
  "attack_suite"
  "attack_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
