# Empty dependencies file for attack_suite.
# This may be replaced when dependencies are built.
