file(REMOVE_RECURSE
  "CMakeFiles/lfsr_mixing.dir/lfsr_mixing.cpp.o"
  "CMakeFiles/lfsr_mixing.dir/lfsr_mixing.cpp.o.d"
  "lfsr_mixing"
  "lfsr_mixing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfsr_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
