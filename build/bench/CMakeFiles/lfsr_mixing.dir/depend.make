# Empty dependencies file for lfsr_mixing.
# This may be replaced when dependencies are built.
