// Quickstart: protect a circuit with OraP + weighted logic locking, walk
// through the chip lifecycle (activation, functional use, test mode), and
// show the oracle-protection property in action.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "chip/chip.h"
#include "eval/metrics.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "util/rng.h"

using namespace orap;

int main() {
  // 1. A design to protect: synthetic combinational core with 8 primary
  //    inputs, 16 state flip-flops, and 12 primary outputs.
  GenSpec spec;
  spec.name = "demo";
  spec.num_inputs = 24;   // 8 PIs + 16 pseudo-inputs (state FFs)
  spec.num_outputs = 28;  // 12 POs + 16 next-state outputs
  spec.num_gates = 800;
  spec.depth = 12;
  spec.seed = 2024;
  const Netlist design = generate_circuit(spec);
  std::printf("design: %zu gates, %zu inputs, %zu outputs\n",
              design.gate_count_no_inverters(), design.num_inputs(),
              design.num_outputs());

  // 2. Lock it with weighted logic locking: 24 key bits, 3-input control
  //    gates (high output corruptibility — the paper's Table I pairing).
  LockedCircuit locked = lock_weighted(design, /*key_bits=*/24,
                                       /*ctrl_inputs=*/3, /*seed=*/1);
  const HdResult hd = hamming_corruptibility(locked, 32, 8, 7);
  std::printf("locked with %zu key bits; wrong-key corruption HD = %.1f%%\n",
              locked.num_key_inputs, hd.hd_percent);

  // 3. Build the OraP chip around it (Fig. 3 modified variant: unlock
  //    mixes locked-circuit responses into the LFSR reseeding).
  OrapOptions opt;
  opt.variant = OrapVariant::kModified;
  OrapChip chip(std::move(locked), /*num_pis=*/8, opt, /*seed=*/2);
  std::printf("chip activated; key register unlocked: %s\n",
              chip.is_unlocked() ? "yes" : "no");

  // 4. Normal operation.
  Rng rng(3);
  for (int cycle = 0; cycle < 4; ++cycle) {
    const BitVec pi = BitVec::random(chip.num_pis(), rng);
    const BitVec po = chip.read_outputs(pi);
    chip.clock(pi);
    std::printf("cycle %d: po[0..3] = %d%d%d%d\n", cycle, po.get(0) ? 1 : 0,
                po.get(1) ? 1 : 0, po.get(2) ? 1 : 0, po.get(3) ? 1 : 0);
  }

  // 5. An attacker raises scan-enable to harvest oracle responses — the
  //    pulse generators clear the key register before the first shift.
  chip.set_scan_enable(true);
  std::printf("scan-enable raised; key register cleared: %s\n",
              chip.key_register_state().none() ? "yes" : "no");

  const BitVec probe = BitVec::random(chip.num_pis() + chip.num_state_ffs(), rng);
  const BitVec response = scan_oracle_query(chip, probe);
  std::printf("scan oracle query returned %zu bits (locked responses — "
              "useless to oracle-guided attacks)\n",
              response.size());

  // 6. Back to the field: the controller replays the unlock sequence.
  chip.exit_test_mode();
  std::printf("test mode exited; chip unlocked again: %s\n",
              chip.is_unlocked() ? "yes" : "no");
  return 0;
}
