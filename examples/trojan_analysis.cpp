// Security analysis of Sec. III: an untrusted foundry inserts a Trojan to
// defeat OraP's self-clearing key register. For each attack scenario
// (a)-(e) this example shows (1) whether the Trojan works against the
// basic and the modified scheme, and (2) what hardware payload it costs —
// the quantity the designer maximizes so side-channel Trojan detection
// catches the modification.
//
// Run: ./build/examples/trojan_analysis

#include <cstdio>

#include "chip/chip.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "util/rng.h"

using namespace orap;

namespace {

OrapChip build_chip(const Netlist& core, OrapVariant variant, TrojanKind kind,
                    std::uint64_t seed) {
  LockedCircuit lc = lock_weighted(core, 32, 3, seed);
  OrapOptions opt;
  opt.variant = variant;
  opt.trojan = kind;
  return OrapChip(std::move(lc), /*num_pis=*/8, opt, seed + 1);
}

/// Does the triggered Trojan let the attacker obtain one golden response —
/// or, for scenario (a), read the key straight off the scan-out pins?
bool trojan_breaks_chip(OrapChip& chip, Rng& rng) {
  chip.trigger_trojan();
  chip.power_on();
  if (chip.options().trojan == TrojanKind::kSuppressPulsePerCell) {
    // The pulse reset is suppressed but the LFSR still scans: the first
    // unload after unlock ships the key out through the scan pins.
    chip.set_scan_enable(true);
    const BitVec image = chip.scan_unload();
    BitVec leaked(chip.lfsr_size());
    for (std::size_t i = 0; i < chip.lfsr_size(); ++i) {
      const auto pos = chip.scan_image_position(ScanCell::Kind::kLfsr, i);
      leaked.set(i, image.get(*pos));
    }
    chip.exit_test_mode();
    return leaked == chip.correct_key();
  }
  const std::size_t nd = chip.num_pis() + chip.num_state_ffs();
  // Reference: the golden response of the locked core.
  Simulator sim(chip.locked_circuit().netlist);
  for (int t = 0; t < 8; ++t) {
    const BitVec data = BitVec::random(nd, rng);
    const BitVec golden = sim.run_single(
        chip.locked_circuit().assemble_input(data, chip.correct_key()));
    BitVec got;
    if (chip.options().trojan == TrojanKind::kFreezeStateFfs) {
      // Attack (e) protocol: preserve state across the unlock replay.
      chip.set_scan_enable(true);
      BitVec image(chip.scan_image_size());
      for (std::size_t j = 0; j < chip.num_state_ffs(); ++j) {
        const auto pos = chip.scan_image_position(ScanCell::Kind::kStateFf, j);
        image.set(*pos, data.get(chip.num_pis() + j));
      }
      chip.scan_load(image);
      chip.exit_test_mode();
      BitVec pi(chip.num_pis());
      for (std::size_t i = 0; i < chip.num_pis(); ++i) pi.set(i, data.get(i));
      const BitVec po = chip.read_outputs(pi);
      chip.clock(pi);
      chip.set_scan_enable(true);
      const BitVec out = chip.scan_unload();
      got = BitVec(chip.num_pos() + chip.num_state_ffs());
      for (std::size_t o = 0; o < chip.num_pos(); ++o) got.set(o, po.get(o));
      for (std::size_t j = 0; j < chip.num_state_ffs(); ++j) {
        const auto pos = chip.scan_image_position(ScanCell::Kind::kStateFf, j);
        got.set(chip.num_pos() + j, out.get(*pos));
      }
      chip.exit_test_mode();
    } else {
      got = scan_oracle_query(chip, data);
    }
    if (got != golden) return false;
  }
  return true;
}

}  // namespace

int main() {
  GenSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 28;
  spec.num_gates = 600;
  spec.depth = 10;
  spec.seed = 31;
  const Netlist core = generate_circuit(spec);
  Rng rng(32);

  struct Scenario {
    TrojanKind kind;
    const char* name;
  };
  const Scenario scenarios[] = {
      {TrojanKind::kSuppressPulsePerCell, "(a) suppress pulse per cell"},
      {TrojanKind::kBypassLfsrInScan, "(b) bypass LFSR in scan"},
      {TrojanKind::kShadowRegister, "(c) shadow key register"},
      {TrojanKind::kXorTrees, "(d) XOR trees from seeds"},
      {TrojanKind::kFreezeStateFfs, "(e) freeze state FFs"},
  };

  std::printf("%-30s | %-10s | %-10s | payload (GE)\n", "trojan scenario",
              "vs basic", "vs modified");
  std::printf("%.90s\n",
              "-----------------------------------------------------------"
              "-------------------------------");
  for (const Scenario& sc : scenarios) {
    OrapChip basic = build_chip(core, OrapVariant::kBasic, sc.kind, 100);
    OrapChip modified = build_chip(core, OrapVariant::kModified, sc.kind, 200);
    const bool b_ok = trojan_breaks_chip(basic, rng);
    const bool m_ok = trojan_breaks_chip(modified, rng);
    std::printf("%-30s | %-10s | %-10s | %8.1f  (%s)\n", sc.name,
                b_ok ? "BREAKS" : "defended", m_ok ? "BREAKS" : "defended",
                basic.trojan_cost().gate_equivalents,
                basic.trojan_cost().description.c_str());
  }
  std::printf(
      "\nNote (a): the key leaks at the scan-out pins even without oracle\n"
      "queries once the pulse reset is suppressed — countered by keeping\n"
      "LFSR cells in one side-channel-monitored segment (Sec. III-a).\n"
      "Note (e): the modified scheme (Fig. 3) feeds locked responses into\n"
      "the reseeding points, so frozen FFs corrupt the derived key.\n");
  return 0;
}
