// Manufacturing-test flow on an OraP-protected design (Table II story):
// the chip is tested *locked*, but because the LFSR key register sits in
// the scan chains, the ATPG can drive the key inputs freely — testability
// improves rather than degrades.
//
// Run: ./build/examples/testability_flow

#include <cstdio>

#include "atpg/atpg.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"

using namespace orap;

namespace {

void report(const char* label, const AtpgResult& r) {
  std::printf(
      "  %-9s: %5zu faults | FC %6.2f%% | random %5zu + atpg %4zu | "
      "redundant %3zu + aborted %2zu\n",
      label, r.total_faults, r.fault_coverage_pct(), r.detected_random,
      r.detected_atpg, r.redundant, r.aborted);
}

}  // namespace

int main() {
  GenSpec spec;
  spec.num_inputs = 32;
  spec.num_outputs = 24;
  spec.num_gates = 1200;
  spec.depth = 14;
  spec.seed = 21;
  const Netlist design = generate_circuit(spec);
  std::printf("design under test: %zu gates\n", design.gate_count_no_inverters());

  AtpgOptions opts;
  opts.random_words = 128;  // 8192 pseudorandom patterns, then SAT-ATPG

  std::printf("\nphase 1+2 flow (pseudorandom fault simulation, then "
              "SAT-ATPG classifying redundant/aborted):\n");
  const AtpgResult orig = run_atpg(design, opts);
  report("original", orig);

  // Protect with OraP + weighted logic locking; the comb core now has the
  // key inputs as extra (scan-controllable) inputs.
  const LockedCircuit lc = lock_weighted(design, 36, 3, 22);
  const AtpgResult prot = run_atpg(lc.netlist, opts);
  report("protected", prot);

  std::printf("\nkey gates act as test points: coverage %s, "
              "redundant+aborted %zu -> %zu\n",
              prot.fault_coverage_pct() >= orig.fault_coverage_pct()
                  ? "improves"
                  : "changes",
              orig.redundant_plus_aborted(), prot.redundant_plus_aborted());
  std::printf("(the chip is tested in the LOCKED state — no oracle responses "
              "leak during test)\n");
  return 0;
}
