// The attacker's perspective: run the full oracle-guided attack suite
// (SAT, AppSAT, Double-DIP, hill climbing, key sensitization) against
//   (a) a conventional chip whose scan chains expose golden responses, and
//   (b) an OraP-protected chip.
//
// Run: ./build/examples/lock_and_attack

#include <cstdio>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "attacks/simple_attacks.h"
#include "chip/chip.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"

using namespace orap;

namespace {

const char* status_name(SatAttackResult::Status s) {
  switch (s) {
    case SatAttackResult::Status::kKeyFound: return "key-found";
    case SatAttackResult::Status::kIterationLimit: return "iteration-limit";
    case SatAttackResult::Status::kSolverBudget: return "solver-budget";
    case SatAttackResult::Status::kInconsistentOracle: return "inconsistent";
  }
  return "?";
}

void report(const char* attack, const char* target,
            const SatAttackResult& r, bool key_correct) {
  std::printf("  %-11s vs %-12s: %-15s iters=%-4zu queries=%-5zu key %s\n",
              attack, target, status_name(r.status), r.iterations,
              r.oracle_queries, key_correct ? "CORRECT" : "wrong/none");
}

}  // namespace

int main() {
  GenSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 28;
  spec.num_gates = 500;
  spec.depth = 9;
  spec.seed = 11;
  const Netlist design = generate_circuit(spec);

  std::printf("target: %zu-gate circuit, weighted locking, 18 key bits\n\n",
              design.gate_count_no_inverters());

  // --- (a) conventional chip: scan gives golden responses ---------------
  {
    const LockedCircuit lc = lock_weighted(design, 18, 3, 5);
    GoldenOracle o_sat(lc), o_app(lc), o_hc(lc), o_sens(lc);

    const SatAttackResult r1 = sat_attack(lc, o_sat);
    report("SAT", "golden scan", r1, r1.key == lc.correct_key);

    const SatAttackResult r2 = appsat_attack(lc, o_app);
    report("AppSAT", "golden scan", r2, r2.key == lc.correct_key);

    const HillClimbResult r3 = hill_climb_attack(lc, o_hc);
    std::printf("  %-11s vs %-12s: bit-dist=%-4zu queries=%zu key %s\n",
                "hill-climb", "golden scan", r3.mismatches, r3.oracle_queries,
                r3.key == lc.correct_key ? "CORRECT" : "wrong");

    const SensitizationResult r4 = sensitization_attack(lc, o_sens);
    std::printf("  %-11s vs %-12s: resolved %zu/%zu key bits\n\n",
                "sensitize", "golden scan", r4.resolved, lc.num_key_inputs);
  }

  // --- (b) OraP chip: scan clears the key register -----------------------
  {
    LockedCircuit lc = lock_weighted(design, 18, 3, 5);
    const BitVec correct = lc.correct_key;
    OrapOptions opt;
    opt.variant = OrapVariant::kModified;
    OrapChip chip(std::move(lc), /*num_pis=*/8, opt, 6);
    const LockedCircuit& view = chip.locked_circuit();

    ChipScanOracle o_sat(chip);
    const SatAttackResult r1 = sat_attack(view, o_sat);
    report("SAT", "OraP scan", r1, r1.key == correct);

    ChipScanOracle o_app(chip);
    const SatAttackResult r2 = appsat_attack(view, o_app);
    report("AppSAT", "OraP scan", r2, r2.key == correct);

    ChipScanOracle o_hc(chip);
    const HillClimbResult r3 = hill_climb_attack(view, o_hc);
    std::printf("  %-11s vs %-12s: bit-dist=%-4zu queries=%zu key %s\n"
                "               (a perfect fit to the oracle is a perfect fit "
                "to the LOCKED circuit)\n",
                "hill-climb", "OraP scan", r3.mismatches, r3.oracle_queries,
                r3.key == correct ? "CORRECT" : "wrong");

    ChipScanOracle o_sens(chip);
    const SensitizationResult r4 = sensitization_attack(view, o_sens);
    std::size_t correct_bits = 0;
    for (std::size_t i = 0; i < correct.size(); ++i)
      if (r4.key_bits[i] >= 0 && r4.key_bits[i] == (correct.get(i) ? 1 : 0))
        ++correct_bits;
    std::printf("  %-11s vs %-12s: resolved %zu bits, %zu actually correct\n",
                "sensitize", "OraP scan", r4.resolved, correct_bits);
    std::printf("\nOraP verdict: every attack converges onto the *locked* "
                "behaviour;\nthe correct key never leaves the chip.\n");
  }
  return 0;
}
