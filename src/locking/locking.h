#pragma once
// Combinational logic-locking schemes.
//
// The paper pairs OraP with *weighted logic locking* [26] (fault-impact
// site selection; a k-input AND/NAND control gate combining k key inputs
// in front of every XOR/XNOR key gate, giving each key gate an actuation
// probability of 1 - 2^-k under a random wrong key — hence the high output
// corruptibility of Table I). Random XOR locking (EPIC-style), SARLock and
// Anti-SAT are implemented as baselines for the attack-suite experiments.
//
// Convention: the locked netlist's inputs are the original inputs in their
// original order, followed by the key inputs (named "key<N>"). All schemes
// are functionally transparent under the correct key.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "util/bitvec.h"
#include "util/check.h"
#include "util/rng.h"

namespace orap {

/// Thrown by the lock_* constructors when the requested configuration does
/// not fit the circuit (key wider than the primary-input count, odd
/// Anti-SAT key, Hamming target above the comparator width, ...). Derives
/// from CheckError so existing catch sites keep working, but lets callers
/// distinguish a bad locking request from an internal invariant failure.
class LockError : public CheckError {
 public:
  explicit LockError(const std::string& what) : CheckError(what) {}
};

struct LockedCircuit {
  Netlist netlist;
  std::size_t num_data_inputs = 0;  // original circuit inputs
  std::size_t num_key_inputs = 0;   // appended key inputs
  BitVec correct_key;               // one bit per key input
  std::string scheme;

  /// Gate id of key input #i.
  GateId key_input(std::size_t i) const {
    return netlist.inputs()[num_data_inputs + i];
  }

  /// Builds a full input pattern from data bits + key bits.
  BitVec assemble_input(const BitVec& data, const BitVec& key) const;
};

/// EPIC-style random XOR/XNOR insertion, one key input per key gate.
LockedCircuit lock_random_xor(const Netlist& original, std::size_t key_bits,
                              std::uint64_t seed);

/// Weighted logic locking [26]: key_bits key inputs grouped into control
/// gates of `ctrl_inputs` each (the paper's column-5 parameter); key gates
/// are placed on the highest fault-impact sites (impact estimated by
/// forced-inversion bit-parallel simulation).
LockedCircuit lock_weighted(const Netlist& original, std::size_t key_bits,
                            std::size_t ctrl_inputs, std::uint64_t seed);

/// SARLock [7]: comparator-driven single-output flip; one key bit per
/// selected data input. Point-function corruption (SAT-resistant, very low
/// corruptibility) — the contrast case for the corruption experiments.
/// `tap_inputs` restricts the comparator taps to the first N inputs
/// (0 = any input); the compound scheme uses it to avoid tapping key wires.
LockedCircuit lock_sarlock(const Netlist& original, std::size_t key_bits,
                           std::uint64_t seed, std::size_t tap_inputs = 0);

/// Compound scheme: random XOR locking plus SARLock on top — the
/// two-layer configuration the Double-DIP attack targets (the SAT attack
/// stalls on the point function; Double-DIP peels the traditional layer).
LockedCircuit lock_xor_plus_sarlock(const Netlist& original,
                                    std::size_t xor_bits,
                                    std::size_t sar_bits, std::uint64_t seed);

/// Anti-SAT [8]: complementary AND-tree block B = g(X^K1) & !g(X^K2)
/// XORed into one output; correct keys satisfy K1 == K2.
LockedCircuit lock_antisat(const Netlist& original, std::size_t key_bits,
                           std::uint64_t seed);

/// SFLL-HD(k, h) [Yasin et al., CCS'17 "Provably-Secure Logic Locking"]:
/// the first `key_bits` primary inputs are the protected-cube selector
/// X_sel. A hardwired *strip unit* flips output 0 whenever
/// HD(X_sel, K_secret) == h (so the stored netlist implements the
/// cube-stripped function, not the original), and a keyed *restore unit*
/// flips it back whenever HD(X_sel, K) == h. The two cancel exactly under
/// the correct key. h == 0 degenerates to TTLock. SAT resilience scales as
/// 2^k / C(k, h) DIPs while corruptibility scales as C(k, h) / 2^k — the
/// scheme's signature trade-off. The protected-input selection is
/// deterministic (inputs 0..key_bits) so experiments can enumerate the
/// protected cubes; the secret key is drawn from `seed`.
LockedCircuit lock_sfll_hd(const Netlist& original, std::size_t key_bits,
                           std::size_t h, std::uint64_t seed);

/// K-Gate Lock (multi-key input encoding, arXiv 2501.02118): key bits are
/// grouped `keys_per_gate` at a time; each group drives an encoding chain
/// on a pair of primary inputs that alternates keyed XOR/XNOR masking
/// stages with keyed MUX swap stages. Under the correct key every stage is
/// the identity; any wrong bit permutes/inverts the encoded inputs before
/// they reach the original logic, so corruption is input-wide (no single
/// removable point function — structural attacks find nothing to cut).
/// `key_bits` must be a multiple of `keys_per_gate`, and the circuit needs
/// 2 * (key_bits / keys_per_gate) distinct driven primary inputs.
LockedCircuit lock_kgate(const Netlist& original, std::size_t key_bits,
                         std::size_t keys_per_gate, std::uint64_t seed);

/// Fault-impact scores: for each candidate gate, the average number of
/// output bits that flip when the gate's value is inverted (64 random
/// patterns x `rounds`). Used for weighted-locking site selection and
/// exposed for tests/ablations.
std::vector<double> fault_impact(const Netlist& n,
                                 const std::vector<GateId>& candidates,
                                 Rng& rng, int rounds = 2);

}  // namespace orap
