#pragma once
// Combinational logic-locking schemes.
//
// The paper pairs OraP with *weighted logic locking* [26] (fault-impact
// site selection; a k-input AND/NAND control gate combining k key inputs
// in front of every XOR/XNOR key gate, giving each key gate an actuation
// probability of 1 - 2^-k under a random wrong key — hence the high output
// corruptibility of Table I). Random XOR locking (EPIC-style), SARLock and
// Anti-SAT are implemented as baselines for the attack-suite experiments.
//
// Convention: the locked netlist's inputs are the original inputs in their
// original order, followed by the key inputs (named "key<N>"). All schemes
// are functionally transparent under the correct key.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace orap {

struct LockedCircuit {
  Netlist netlist;
  std::size_t num_data_inputs = 0;  // original circuit inputs
  std::size_t num_key_inputs = 0;   // appended key inputs
  BitVec correct_key;               // one bit per key input
  std::string scheme;

  /// Gate id of key input #i.
  GateId key_input(std::size_t i) const {
    return netlist.inputs()[num_data_inputs + i];
  }

  /// Builds a full input pattern from data bits + key bits.
  BitVec assemble_input(const BitVec& data, const BitVec& key) const;
};

/// EPIC-style random XOR/XNOR insertion, one key input per key gate.
LockedCircuit lock_random_xor(const Netlist& original, std::size_t key_bits,
                              std::uint64_t seed);

/// Weighted logic locking [26]: key_bits key inputs grouped into control
/// gates of `ctrl_inputs` each (the paper's column-5 parameter); key gates
/// are placed on the highest fault-impact sites (impact estimated by
/// forced-inversion bit-parallel simulation).
LockedCircuit lock_weighted(const Netlist& original, std::size_t key_bits,
                            std::size_t ctrl_inputs, std::uint64_t seed);

/// SARLock [7]: comparator-driven single-output flip; one key bit per
/// selected data input. Point-function corruption (SAT-resistant, very low
/// corruptibility) — the contrast case for the corruption experiments.
/// `tap_inputs` restricts the comparator taps to the first N inputs
/// (0 = any input); the compound scheme uses it to avoid tapping key wires.
LockedCircuit lock_sarlock(const Netlist& original, std::size_t key_bits,
                           std::uint64_t seed, std::size_t tap_inputs = 0);

/// Compound scheme: random XOR locking plus SARLock on top — the
/// two-layer configuration the Double-DIP attack targets (the SAT attack
/// stalls on the point function; Double-DIP peels the traditional layer).
LockedCircuit lock_xor_plus_sarlock(const Netlist& original,
                                    std::size_t xor_bits,
                                    std::size_t sar_bits, std::uint64_t seed);

/// Anti-SAT [8]: complementary AND-tree block B = g(X^K1) & !g(X^K2)
/// XORed into one output; correct keys satisfy K1 == K2.
LockedCircuit lock_antisat(const Netlist& original, std::size_t key_bits,
                           std::uint64_t seed);

/// Fault-impact scores: for each candidate gate, the average number of
/// output bits that flip when the gate's value is inverted (64 random
/// patterns x `rounds`). Used for weighted-locking site selection and
/// exposed for tests/ablations.
std::vector<double> fault_impact(const Netlist& n,
                                 const std::vector<GateId>& candidates,
                                 Rng& rng, int rounds = 2);

}  // namespace orap
