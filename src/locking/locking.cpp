#include "locking/locking.h"

#include <algorithm>
#include <numeric>

#include "netlist/simulator.h"

// Argument validation for the lock_* constructors: throws a typed
// LockError (rather than tripping ORAP_CHECK) so callers can tell a bad
// locking request apart from an internal invariant failure.
#define ORAP_LOCK_REQUIRE(cond, scheme, msg)       \
  do {                                             \
    if (!(cond)) {                                 \
      std::ostringstream orap_lock_os_;            \
      orap_lock_os_ << scheme << ": " << msg;      \
      throw ::orap::LockError(orap_lock_os_.str()); \
    }                                              \
  } while (false)

namespace orap {

BitVec LockedCircuit::assemble_input(const BitVec& data,
                                     const BitVec& key) const {
  ORAP_CHECK(data.size() == num_data_inputs);
  ORAP_CHECK(key.size() == num_key_inputs);
  BitVec full(num_data_inputs + num_key_inputs);
  for (std::size_t i = 0; i < data.size(); ++i) full.set(i, data.get(i));
  for (std::size_t i = 0; i < key.size(); ++i)
    full.set(num_data_inputs + i, key.get(i));
  return full;
}

namespace {

/// Skeleton for insertion-style schemes: copies `original`, adds
/// `key_bits` key inputs, and lets `wrap` replace the copy of selected
/// gates. `wrap(new_netlist, copied_gate, old_gate)` returns the gate that
/// fanouts should see instead (or the copy itself for unlocked gates).
struct CopyContext {
  Netlist out;
  std::vector<GateId> key_inputs;
  std::vector<GateId> map;  // old id -> new id (post-wrap)
};

CopyContext begin_copy(const Netlist& original, std::size_t key_bits) {
  CopyContext ctx;
  ctx.out.set_name(original.name() + "_locked");
  ctx.map.assign(original.num_gates(), kNoGate);
  for (const GateId in : original.inputs())
    ctx.map[in] = ctx.out.add_input(original.gate_name(in));
  std::size_t name_idx = 0;
  for (std::size_t i = 0; i < key_bits; ++i) {
    // Layered schemes lock an already-locked netlist whose inputs may
    // already be called key<N>; skip taken names.
    while (ctx.out.find("key" + std::to_string(name_idx)) != kNoGate)
      ++name_idx;
    ctx.key_inputs.push_back(
        ctx.out.add_input("key" + std::to_string(name_idx++)));
  }
  return ctx;
}

template <typename WrapFn>
void copy_gates(const Netlist& original, CopyContext& ctx, WrapFn&& wrap) {
  std::vector<GateId> fi;
  for (GateId g = 0; g < original.num_gates(); ++g) {
    if (ctx.map[g] != kNoGate) continue;  // inputs
    const GateType t = original.type(g);
    if (t == GateType::kConst0 || t == GateType::kConst1) {
      ctx.map[g] = ctx.out.add_const(t == GateType::kConst1);
      continue;
    }
    fi.clear();
    for (const GateId f : original.fanins(g)) fi.push_back(ctx.map[f]);
    const GateId copy = ctx.out.add_gate(t, fi);
    ctx.map[g] = wrap(copy, g);
  }
  for (const auto& po : original.outputs())
    ctx.out.mark_output(ctx.map[po.gate], po.name);
}

LockedCircuit finish(CopyContext ctx, const Netlist& original,
                     std::size_t key_bits, BitVec key, std::string scheme) {
  LockedCircuit lc;
  lc.netlist = std::move(ctx.out);
  lc.num_data_inputs = original.num_inputs();
  lc.num_key_inputs = key_bits;
  lc.correct_key = std::move(key);
  lc.scheme = std::move(scheme);
  lc.netlist.validate();
  return lc;
}

/// Candidate lock sites: real logic gates (no inverters/buffers), skipping
/// gates that drive nothing.
/// Ones-count(bits) == target as a gate network: a bit-serial increment
/// chain into a ceil(log2(n+1))-bit counter, then a constant comparator.
/// The final increment carry is dropped — the counter is wide enough that
/// it can never overflow.
GateId count_equals(Netlist& nl, const std::vector<GateId>& bits,
                    std::size_t target) {
  std::size_t width = 1;
  while ((std::size_t{1} << width) <= bits.size()) ++width;
  std::vector<GateId> sum(width, nl.add_const(false));
  for (const GateId b : bits) {
    GateId carry = b;
    for (std::size_t j = 0; j < width; ++j) {
      const GateId ns = nl.add_xor2(sum[j], carry);
      carry = nl.add_and2(sum[j], carry);
      sum[j] = ns;
    }
  }
  std::vector<GateId> eq(width);
  for (std::size_t j = 0; j < width; ++j) {
    const bool want = ((target >> j) & 1) != 0;
    eq[j] = want ? sum[j] : nl.add_not(sum[j]);
  }
  return width == 1 ? eq[0] : nl.add_gate(GateType::kAnd, eq);
}

std::vector<GateId> lock_candidates(const Netlist& n) {
  const auto fo = [&] {
    std::vector<std::uint32_t> f(n.num_gates(), 0);
    for (GateId g = 0; g < n.num_gates(); ++g)
      for (const GateId x : n.fanins(g)) ++f[x];
    for (const auto& po : n.outputs()) ++f[po.gate];
    return f;
  }();
  std::vector<GateId> cands;
  for (GateId g = 0; g < n.num_gates(); ++g) {
    const GateType t = n.type(g);
    if (!gate_type_is_logic(t) || t == GateType::kNot || t == GateType::kBuf)
      continue;
    if (fo[g] == 0) continue;
    cands.push_back(g);
  }
  return cands;
}

}  // namespace

std::vector<double> fault_impact(const Netlist& n,
                                 const std::vector<GateId>& candidates,
                                 Rng& rng, int rounds) {
  std::vector<double> impact(candidates.size(), 0.0);
  Simulator sim(n);
  std::vector<std::uint64_t> baseline;
  std::vector<std::uint64_t> faulty(n.num_gates());
  std::vector<std::uint64_t> buf;
  for (int round = 0; round < rounds; ++round) {
    sim.randomize_inputs(rng);
    sim.run();
    baseline.assign(sim.values().begin(), sim.values().end());
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      const GateId site = candidates[ci];
      // Re-simulate downstream of the inverted site.
      std::copy(baseline.begin(), baseline.end(), faulty.begin());
      faulty[site] = ~faulty[site];
      for (GateId g = site + 1; g < n.num_gates(); ++g) {
        const GateType t = n.type(g);
        if (t == GateType::kInput) continue;
        const auto fis = n.fanins(g);
        buf.resize(fis.size());
        for (std::size_t i = 0; i < fis.size(); ++i) buf[i] = faulty[fis[i]];
        faulty[g] = eval_gate_word(t, buf);
      }
      std::uint64_t diff_bits = 0;
      for (const auto& po : n.outputs())
        diff_bits += static_cast<std::uint64_t>(
            __builtin_popcountll(baseline[po.gate] ^ faulty[po.gate]));
      impact[ci] += static_cast<double>(diff_bits) / 64.0;
    }
  }
  for (auto& v : impact) v /= rounds;
  return impact;
}

LockedCircuit lock_random_xor(const Netlist& original, std::size_t key_bits,
                              std::uint64_t seed) {
  ORAP_LOCK_REQUIRE(key_bits >= 1, "random_xor", "needs at least one key bit");
  Rng rng(seed);
  auto cands = lock_candidates(original);
  ORAP_LOCK_REQUIRE(cands.size() >= key_bits, "random_xor",
                    "circuit has " << cands.size()
                                   << " lockable gates, key needs "
                                   << key_bits);
  std::shuffle(cands.begin(), cands.end(), rng);
  cands.resize(key_bits);
  std::sort(cands.begin(), cands.end());

  BitVec key(key_bits);
  for (std::size_t i = 0; i < key_bits; ++i) key.set(i, rng.bit());

  CopyContext ctx = begin_copy(original, key_bits);
  std::size_t next = 0;
  copy_gates(original, ctx, [&](GateId copy, GateId old) -> GateId {
    if (next >= cands.size() || cands[next] != old) return copy;
    // key bit 0 -> XOR (transparent at 0); key bit 1 -> XNOR.
    const GateType kg = key.get(next) ? GateType::kXnor : GateType::kXor;
    const GateId out =
        ctx.out.add_gate(kg, {copy, ctx.key_inputs[next]});
    ++next;
    return out;
  });
  return finish(std::move(ctx), original, key_bits, std::move(key),
                "random_xor");
}

LockedCircuit lock_weighted(const Netlist& original, std::size_t key_bits,
                            std::size_t ctrl_inputs, std::uint64_t seed) {
  ORAP_LOCK_REQUIRE(ctrl_inputs >= 2, "weighted",
                    "control gates need at least 2 key inputs, got "
                        << ctrl_inputs);
  Rng rng(seed);
  const std::size_t num_key_gates = key_bits / ctrl_inputs;
  ORAP_LOCK_REQUIRE(num_key_gates >= 1, "weighted",
                    "key of " << key_bits
                              << " bits is narrower than one control gate ("
                              << ctrl_inputs << " inputs)");

  // Fault-analysis site selection: sample candidates, rank by impact.
  auto cands = lock_candidates(original);
  ORAP_LOCK_REQUIRE(cands.size() >= num_key_gates, "weighted",
                    "circuit has " << cands.size()
                                   << " lockable gates, key needs "
                                   << num_key_gates);
  std::shuffle(cands.begin(), cands.end(), rng);
  const std::size_t sample =
      std::min(cands.size(), std::max<std::size_t>(num_key_gates * 4, 64));
  cands.resize(sample);
  const auto impact = fault_impact(original, cands, rng);
  std::vector<std::size_t> order(cands.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return impact[a] > impact[b]; });
  std::vector<GateId> sites;
  for (std::size_t i = 0; i < num_key_gates; ++i) sites.push_back(cands[order[i]]);
  std::sort(sites.begin(), sites.end());

  // Secret key: random; control gate i owns key bits [i*k, (i+1)*k).
  // Leftover key bits (key_bits % ctrl_inputs) are folded into the last
  // control gate so every key input is load-bearing.
  BitVec key(key_bits);
  for (std::size_t i = 0; i < key_bits; ++i) key.set(i, rng.bit());

  CopyContext ctx = begin_copy(original, key_bits);
  std::size_t next = 0;
  copy_gates(original, ctx, [&](GateId copy, GateId old) -> GateId {
    if (next >= sites.size() || sites[next] != old) return copy;
    const std::size_t lo = next * ctrl_inputs;
    const std::size_t hi = (next + 1 == sites.size())
                               ? key_bits
                               : (next + 1) * ctrl_inputs;
    // Control gate: AND over (key_i == secret_i); inverters realize the
    // comparison. Randomly use the NAND+XOR dual to vary structure.
    const bool use_nand = rng.bit();
    std::vector<GateId> ctrl_fi;
    for (std::size_t i = lo; i < hi; ++i) {
      GateId kin = ctx.key_inputs[i];
      if (!key.get(i)) kin = ctx.out.add_not(kin);
      ctrl_fi.push_back(kin);
    }
    const GateId ctrl = ctx.out.add_gate(
        use_nand ? GateType::kNand : GateType::kAnd, ctrl_fi);
    // AND control is 1 under the correct key -> XNOR key gate is
    // transparent; NAND control is 0 -> XOR key gate is transparent.
    // Any wrong bit in the group actuates the key gate.
    const GateId kg = ctx.out.add_gate(
        use_nand ? GateType::kXor : GateType::kXnor, {copy, ctrl});
    ++next;
    return kg;
  });
  return finish(std::move(ctx), original, key_bits, std::move(key),
                "weighted");
}

LockedCircuit lock_sarlock(const Netlist& original, std::size_t key_bits,
                           std::uint64_t seed, std::size_t tap_inputs) {
  Rng rng(seed);
  if (tap_inputs == 0) tap_inputs = original.num_inputs();
  ORAP_LOCK_REQUIRE(key_bits >= 1, "sarlock", "needs at least one key bit");
  ORAP_LOCK_REQUIRE(tap_inputs <= original.num_inputs(), "sarlock",
                    "tap window of " << tap_inputs
                                     << " exceeds the primary-input count "
                                     << original.num_inputs());
  ORAP_LOCK_REQUIRE(tap_inputs >= key_bits, "sarlock",
                    "key of " << key_bits
                              << " bits is wider than the comparator taps ("
                              << tap_inputs << " inputs)");
  ORAP_LOCK_REQUIRE(original.num_outputs() >= 1, "sarlock",
                    "circuit has no output to flip");
  // Select key_bits data inputs for the comparator.
  std::vector<std::size_t> in_pos(tap_inputs);
  std::iota(in_pos.begin(), in_pos.end(), std::size_t{0});
  std::shuffle(in_pos.begin(), in_pos.end(), rng);
  in_pos.resize(key_bits);

  BitVec key(key_bits);
  for (std::size_t i = 0; i < key_bits; ++i) key.set(i, rng.bit());

  CopyContext ctx = begin_copy(original, key_bits);
  copy_gates(original, ctx, [](GateId copy, GateId) { return copy; });

  // flip = (X == K) & (K != Ksecret); Ksecret is hardwired via inverters.
  std::vector<GateId> eq_x;       // X_i == K_i
  std::vector<GateId> eq_secret;  // K_i == Ksecret_i
  for (std::size_t i = 0; i < key_bits; ++i) {
    const GateId kin = ctx.key_inputs[i];
    const GateId xin = ctx.map[original.inputs()[in_pos[i]]];
    eq_x.push_back(ctx.out.add_gate(GateType::kXnor, {xin, kin}));
    eq_secret.push_back(key.get(i) ? kin : ctx.out.add_not(kin));
  }
  const GateId x_match = ctx.out.add_gate(GateType::kAnd, eq_x);
  const GateId k_correct = ctx.out.add_gate(GateType::kAnd, eq_secret);
  const GateId k_wrong = ctx.out.add_not(k_correct);
  const GateId flip = ctx.out.add_and2(x_match, k_wrong);

  // XOR the flip into output 0.
  const GateId flipped =
      ctx.out.add_gate(GateType::kXor, {ctx.out.outputs()[0].gate, flip});
  ctx.out.set_output_gate(0, flipped);
  return finish(std::move(ctx), original, key_bits, std::move(key),
                "sarlock");
}

LockedCircuit lock_xor_plus_sarlock(const Netlist& original,
                                    std::size_t xor_bits,
                                    std::size_t sar_bits,
                                    std::uint64_t seed) {
  ORAP_LOCK_REQUIRE(xor_bits >= 1 && sar_bits >= 1, "xor+sarlock",
                    "both layers need at least one key bit");
  LockedCircuit base = lock_random_xor(original, xor_bits, seed);
  // Layer SARLock on the locked netlist; its key inputs land after the
  // XOR keys, and the comparator taps only real data inputs.
  LockedCircuit top = lock_sarlock(base.netlist, sar_bits, seed + 1,
                                   original.num_inputs());
  LockedCircuit lc;
  lc.netlist = std::move(top.netlist);
  lc.num_data_inputs = original.num_inputs();
  lc.num_key_inputs = xor_bits + sar_bits;
  lc.correct_key = BitVec(lc.num_key_inputs);
  for (std::size_t i = 0; i < xor_bits; ++i)
    lc.correct_key.set(i, base.correct_key.get(i));
  for (std::size_t i = 0; i < sar_bits; ++i)
    lc.correct_key.set(xor_bits + i, top.correct_key.get(i));
  lc.scheme = "xor+sarlock";
  lc.netlist.validate();
  return lc;
}

LockedCircuit lock_antisat(const Netlist& original, std::size_t key_bits,
                           std::uint64_t seed) {
  ORAP_LOCK_REQUIRE(key_bits >= 2 && key_bits % 2 == 0, "antisat",
                    "needs an even key (two equal halves), got " << key_bits);
  const std::size_t n_half = key_bits / 2;
  Rng rng(seed);
  ORAP_LOCK_REQUIRE(original.num_inputs() >= n_half, "antisat",
                    "key half of " << n_half
                                   << " bits exceeds the primary-input count "
                                   << original.num_inputs());
  ORAP_LOCK_REQUIRE(original.num_outputs() >= 1, "antisat",
                    "circuit has no output to flip");
  std::vector<std::size_t> in_pos(original.num_inputs());
  std::iota(in_pos.begin(), in_pos.end(), std::size_t{0});
  std::shuffle(in_pos.begin(), in_pos.end(), rng);
  in_pos.resize(n_half);

  // Correct key: K1 == K2 (any shared value); pick a random one.
  BitVec key(key_bits);
  for (std::size_t i = 0; i < n_half; ++i) {
    const bool b = rng.bit();
    key.set(i, b);
    key.set(n_half + i, b);
  }

  CopyContext ctx = begin_copy(original, key_bits);
  copy_gates(original, ctx, [](GateId copy, GateId) { return copy; });
  Netlist& nl = ctx.out;

  std::vector<GateId> t1, t2;
  for (std::size_t i = 0; i < n_half; ++i) {
    const GateId xin = ctx.map[original.inputs()[in_pos[i]]];
    t1.push_back(nl.add_gate(GateType::kXor, {xin, ctx.key_inputs[i]}));
    t2.push_back(
        nl.add_gate(GateType::kXor, {xin, ctx.key_inputs[n_half + i]}));
  }
  const GateId g1 = nl.add_gate(GateType::kAnd, t1);
  const GateId g2 = nl.add_gate(GateType::kAnd, t2);
  const GateId ng2 = nl.add_not(g2);
  const GateId blk = nl.add_and2(g1, ng2);

  const GateId flipped =
      nl.add_gate(GateType::kXor, {nl.outputs()[0].gate, blk});
  nl.set_output_gate(0, flipped);
  return finish(std::move(ctx), original, key_bits, std::move(key),
                "antisat");
}

LockedCircuit lock_sfll_hd(const Netlist& original, std::size_t key_bits,
                           std::size_t h, std::uint64_t seed) {
  ORAP_LOCK_REQUIRE(key_bits >= 1, "sfll_hd", "needs at least one key bit");
  ORAP_LOCK_REQUIRE(key_bits <= original.num_inputs(), "sfll_hd",
                    "key of " << key_bits
                              << " bits exceeds the primary-input count "
                              << original.num_inputs());
  ORAP_LOCK_REQUIRE(h <= key_bits, "sfll_hd",
                    "Hamming target " << h << " exceeds the key width "
                                      << key_bits);
  ORAP_LOCK_REQUIRE(original.num_outputs() >= 1, "sfll_hd",
                    "circuit has no output to strip");
  Rng rng(seed);
  BitVec key(key_bits);
  for (std::size_t i = 0; i < key_bits; ++i) key.set(i, rng.bit());

  CopyContext ctx = begin_copy(original, key_bits);
  copy_gates(original, ctx, [](GateId copy, GateId) { return copy; });
  Netlist& nl = ctx.out;

  // Strip unit (hardwired secret: X_i XOR secret_i is a wire or an
  // inverter) and restore unit (keyed: X_i XOR K_i). Both compare their
  // ones-count against h; under the correct key they agree everywhere and
  // the two XORs below cancel.
  std::vector<GateId> strip_bits(key_bits), restore_bits(key_bits);
  for (std::size_t i = 0; i < key_bits; ++i) {
    const GateId xin = ctx.map[original.inputs()[i]];
    strip_bits[i] = key.get(i) ? nl.add_not(xin) : xin;
    restore_bits[i] =
        nl.add_gate(GateType::kXor, {xin, ctx.key_inputs[i]});
  }
  const GateId strip = count_equals(nl, strip_bits, h);
  const GateId restore = count_equals(nl, restore_bits, h);

  // The stored netlist implements the cube-stripped function (output 0
  // XOR strip); the keyed restore output feeds the final PO XOR — the
  // structure SPS ranking and the removal attack are meant to find.
  const GateId stripped =
      nl.add_gate(GateType::kXor, {nl.outputs()[0].gate, strip});
  const GateId restored = nl.add_gate(GateType::kXor, {stripped, restore});
  nl.set_output_gate(0, restored);
  return finish(std::move(ctx), original, key_bits, std::move(key),
                "sfll_hd");
}

LockedCircuit lock_kgate(const Netlist& original, std::size_t key_bits,
                         std::size_t keys_per_gate, std::uint64_t seed) {
  ORAP_LOCK_REQUIRE(keys_per_gate >= 2, "kgate",
                    "encoding gates need at least 2 key inputs, got "
                        << keys_per_gate);
  ORAP_LOCK_REQUIRE(key_bits >= keys_per_gate &&
                        key_bits % keys_per_gate == 0,
                    "kgate",
                    "key of " << key_bits
                              << " bits is not a positive multiple of "
                              << keys_per_gate);
  const std::size_t groups = key_bits / keys_per_gate;

  // Each group encodes a pair of *driven* primary inputs (an input with no
  // fanout would make its key bits dead).
  std::vector<std::uint32_t> fo(original.num_gates(), 0);
  for (GateId g = 0; g < original.num_gates(); ++g)
    for (const GateId x : original.fanins(g)) ++fo[x];
  for (const auto& po : original.outputs()) ++fo[po.gate];
  std::vector<std::size_t> usable;
  for (std::size_t pos = 0; pos < original.num_inputs(); ++pos)
    if (fo[original.inputs()[pos]] > 0) usable.push_back(pos);
  ORAP_LOCK_REQUIRE(usable.size() >= 2 * groups, "kgate",
                    "needs " << 2 * groups
                             << " driven primary inputs, circuit has "
                             << usable.size());
  Rng rng(seed);
  std::shuffle(usable.begin(), usable.end(), rng);
  usable.resize(2 * groups);

  BitVec key(key_bits);
  for (std::size_t i = 0; i < key_bits; ++i) key.set(i, rng.bit());

  CopyContext ctx = begin_copy(original, key_bits);
  Netlist& nl = ctx.out;
  // Build the encoding chains first, then remap the selected inputs so the
  // copied logic consumes the encoded wires instead of the raw inputs.
  for (std::size_t g = 0; g < groups; ++g) {
    GateId a = ctx.map[original.inputs()[usable[2 * g]]];
    GateId b = ctx.map[original.inputs()[usable[2 * g + 1]]];
    for (std::size_t j = 0; j < keys_per_gate; ++j) {
      const std::size_t ki = g * keys_per_gate + j;
      const GateId kin = ctx.key_inputs[ki];
      if (j % 2 == 0) {
        // Keyed inversion stage on alternating targets: XOR is
        // transparent when the secret bit is 0, XNOR when it is 1.
        const GateType t = key.get(ki) ? GateType::kXnor : GateType::kXor;
        if ((j / 2) % 2 == 0)
          a = nl.add_gate(t, {a, kin});
        else
          b = nl.add_gate(t, {b, kin});
      } else {
        // Keyed swap stage: ctrl is 0 under the correct key, so both
        // muxes pass through; a wrong bit swaps the pair.
        const GateId ctrl = key.get(ki) ? nl.add_not(kin) : kin;
        const GateId na = nl.add_gate(GateType::kMux, {ctrl, a, b});
        const GateId nb = nl.add_gate(GateType::kMux, {ctrl, b, a});
        a = na;
        b = nb;
      }
    }
    ctx.map[original.inputs()[usable[2 * g]]] = a;
    ctx.map[original.inputs()[usable[2 * g + 1]]] = b;
  }
  copy_gates(original, ctx, [](GateId copy, GateId) { return copy; });
  return finish(std::move(ctx), original, key_bits, std::move(key), "kgate");
}

}  // namespace orap
