#include "aig/aig.h"

#include <algorithm>

namespace orap::aig {

Aig::Aig() {
  // Node 0: constant 0.
  fanin0_.push_back(kNoLit);
  fanin1_.push_back(kNoLit);
}

std::uint32_t Aig::new_node(AigLit f0, AigLit f1) {
  const auto node = static_cast<std::uint32_t>(fanin0_.size());
  fanin0_.push_back(f0);
  fanin1_.push_back(f1);
  return node;
}

AigLit Aig::add_pi() {
  const std::uint32_t node = new_node(kNoLit, kNoLit);
  pis_.push_back(node);
  return make_lit(node, false);
}

AigLit Aig::find_and(AigLit a, AigLit b) const {
  if (a > b) std::swap(a, b);
  if (a == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (a == b) return a;
  if (a == lit_not(b)) return kLitFalse;
  const auto it = strash_.find({a, b});
  return it == strash_.end() ? kNoLit : make_lit(it->second, false);
}

AigLit Aig::and2(AigLit a, AigLit b) {
  if (a > b) std::swap(a, b);
  if (a == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (a == b) return a;
  if (a == lit_not(b)) return kLitFalse;
  ORAP_DCHECK(lit_node(b) < num_nodes());
  const auto it = strash_.find({a, b});
  if (it != strash_.end()) return make_lit(it->second, false);
  const std::uint32_t node = new_node(a, b);
  strash_.emplace(std::make_pair(a, b), node);
  ++num_ands_;
  return make_lit(node, false);
}

AigLit Aig::xor2(AigLit a, AigLit b) {
  // a ^ b = !(!(a & !b) & !(!a & b))
  return lit_not(and2(lit_not(and2(a, lit_not(b))), lit_not(and2(lit_not(a), b))));
}

AigLit Aig::mux(AigLit s, AigLit d0, AigLit d1) {
  // s ? d1 : d0 = !(!(s & d1) & !(!s & d0))
  return lit_not(and2(lit_not(and2(s, d1)), lit_not(and2(lit_not(s), d0))));
}

std::vector<std::uint32_t> Aig::levels() const {
  std::vector<std::uint32_t> lvl(num_nodes(), 0);
  for (std::uint32_t n = 1; n < num_nodes(); ++n) {
    if (!is_and(n)) continue;
    lvl[n] = 1 + std::max(lvl[lit_node(fanin0_[n])], lvl[lit_node(fanin1_[n])]);
  }
  return lvl;
}

std::uint32_t Aig::depth() const {
  const auto lvl = levels();
  std::uint32_t d = 0;
  for (const AigLit po : pos_) d = std::max(d, lvl[lit_node(po)]);
  return d;
}

std::vector<std::uint32_t> Aig::fanout_counts() const {
  std::vector<std::uint32_t> fo(num_nodes(), 0);
  for (std::uint32_t n = 1; n < num_nodes(); ++n) {
    if (!is_and(n)) continue;
    ++fo[lit_node(fanin0_[n])];
    ++fo[lit_node(fanin1_[n])];
  }
  for (const AigLit po : pos_) ++fo[lit_node(po)];
  return fo;
}

Aig Aig::from_netlist(const Netlist& n) {
  Aig a;
  std::vector<AigLit> lit_of(n.num_gates(), kNoLit);
  for (const GateId in : n.inputs()) lit_of[in] = a.add_pi();

  auto reduce = [&a](std::span<const AigLit> ls, bool is_or) {
    // Balanced reduction tree to keep depth logarithmic.
    std::vector<AigLit> layer(ls.begin(), ls.end());
    while (layer.size() > 1) {
      std::vector<AigLit> next;
      for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
        next.push_back(is_or ? a.or2(layer[i], layer[i + 1])
                             : a.and2(layer[i], layer[i + 1]));
      if (layer.size() % 2 != 0) next.push_back(layer.back());
      layer = std::move(next);
    }
    return layer[0];
  };

  std::vector<AigLit> fi;
  for (GateId g = 0; g < n.num_gates(); ++g) {
    if (lit_of[g] != kNoLit) continue;
    const GateType t = n.type(g);
    if (t == GateType::kConst0) {
      lit_of[g] = kLitFalse;
      continue;
    }
    if (t == GateType::kConst1) {
      lit_of[g] = kLitTrue;
      continue;
    }
    fi.clear();
    for (const GateId f : n.fanins(g)) fi.push_back(lit_of[f]);
    switch (t) {
      case GateType::kBuf: lit_of[g] = fi[0]; break;
      case GateType::kNot: lit_of[g] = lit_not(fi[0]); break;
      case GateType::kAnd: lit_of[g] = reduce(fi, false); break;
      case GateType::kNand: lit_of[g] = lit_not(reduce(fi, false)); break;
      case GateType::kOr: lit_of[g] = reduce(fi, true); break;
      case GateType::kNor: lit_of[g] = lit_not(reduce(fi, true)); break;
      case GateType::kXor:
      case GateType::kXnor: {
        AigLit acc = fi[0];
        for (std::size_t i = 1; i < fi.size(); ++i) acc = a.xor2(acc, fi[i]);
        lit_of[g] = t == GateType::kXnor ? lit_not(acc) : acc;
        break;
      }
      case GateType::kMux: lit_of[g] = a.mux(fi[0], fi[1], fi[2]); break;
      default:
        ORAP_CHECK_MSG(false, "unexpected gate type in from_netlist");
    }
  }
  for (const auto& po : n.outputs()) a.add_po(lit_of[po.gate]);
  return a;
}

Netlist Aig::to_netlist() const {
  Netlist n;
  n.set_name("aig");
  std::vector<GateId> pos_gate(num_nodes(), kNoGate);  // non-complemented
  std::vector<GateId> neg_gate(num_nodes(), kNoGate);  // complemented view
  for (std::size_t i = 0; i < pis_.size(); ++i)
    pos_gate[pis_[i]] = n.add_input("pi" + std::to_string(i));

  GateId const0 = kNoGate;
  auto gate_of = [&](AigLit l) -> GateId {
    const std::uint32_t node = lit_node(l);
    if (node == 0) {
      // Lit 0 is const0; lit 1 (complemented) is const1.
      if (const0 == kNoGate) const0 = n.add_const(false);
      if (!lit_compl(l)) return const0;
      if (neg_gate[0] == kNoGate) neg_gate[0] = n.add_not(const0);
      return neg_gate[0];
    }
    if (!lit_compl(l)) return pos_gate[node];
    if (neg_gate[node] == kNoGate) neg_gate[node] = n.add_not(pos_gate[node]);
    return neg_gate[node];
  };
  for (std::uint32_t node = 1; node < num_nodes(); ++node) {
    if (!is_and(node)) continue;
    const GateId f0 = gate_of(fanin0_[node]);
    const GateId f1 = gate_of(fanin1_[node]);
    pos_gate[node] = n.add_and2(f0, f1);
  }
  for (std::size_t i = 0; i < pos_.size(); ++i)
    n.mark_output(gate_of(pos_[i]), "po" + std::to_string(i));
  n.validate();
  return n;
}

std::vector<std::uint64_t> Aig::simulate_nodes(
    std::span<const std::uint64_t> pi_words) const {
  ORAP_CHECK(pi_words.size() == pis_.size());
  std::vector<std::uint64_t> val(num_nodes(), 0);
  for (std::size_t i = 0; i < pis_.size(); ++i) val[pis_[i]] = pi_words[i];
  auto lit_val = [&val](AigLit l) {
    const std::uint64_t v = val[lit_node(l)];
    return lit_compl(l) ? ~v : v;
  };
  for (std::uint32_t n = 1; n < num_nodes(); ++n) {
    if (!is_and(n)) continue;
    val[n] = lit_val(fanin0_[n]) & lit_val(fanin1_[n]);
  }
  return val;
}

std::vector<std::uint64_t> Aig::simulate(
    std::span<const std::uint64_t> pi_words) const {
  const auto val = simulate_nodes(pi_words);
  std::vector<std::uint64_t> out;
  out.reserve(pos_.size());
  for (const AigLit po : pos_) {
    const std::uint64_t v = val[lit_node(po)];
    out.push_back(lit_compl(po) ? ~v : v);
  }
  return out;
}

Aig Aig::cleanup() const {
  std::vector<bool> used(num_nodes(), false);
  std::vector<std::uint32_t> stack;
  for (const AigLit po : pos_) stack.push_back(lit_node(po));
  while (!stack.empty()) {
    const std::uint32_t node = stack.back();
    stack.pop_back();
    if (used[node]) continue;
    used[node] = true;
    if (is_and(node)) {
      stack.push_back(lit_node(fanin0_[node]));
      stack.push_back(lit_node(fanin1_[node]));
    }
  }
  Aig out;
  std::vector<AigLit> map(num_nodes(), kNoLit);
  map[0] = kLitFalse;
  // Preserve the PI interface exactly (even unused PIs).
  for (const std::uint32_t pi : pis_) map[pi] = out.add_pi();
  auto map_lit = [&map](AigLit l) {
    ORAP_DCHECK(map[lit_node(l)] != kNoLit);
    return lit_compl(l) ? lit_not(map[lit_node(l)]) : map[lit_node(l)];
  };
  for (std::uint32_t node = 1; node < num_nodes(); ++node) {
    if (!used[node] || !is_and(node)) continue;
    map[node] = out.and2(map_lit(fanin0_[node]), map_lit(fanin1_[node]));
  }
  for (const AigLit po : pos_) out.add_po(map_lit(po));
  return out;
}

AigStats aig_stats(const Aig& a) { return {a.num_ands(), a.depth()}; }

}  // namespace orap::aig
