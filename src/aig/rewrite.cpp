#include "aig/rewrite.h"

#include <algorithm>
#include <array>
#include <unordered_map>

namespace orap::aig {

namespace {

// --- truth-table helpers (templated over width) ------------------------------
//
// TruthOps<TT, NV> provides variable masks and cofactors for functions of
// NV variables packed into a TT word: 16-bit/4-var tables drive the
// rewrite pass, 64-bit/6-var tables drive the refactor pass.

template <typename TT, int NV>
struct TruthOps {
  static constexpr TT splat(std::uint64_t w) { return static_cast<TT>(w); }
  static constexpr TT var(int i) {
    constexpr std::uint64_t kPatterns[6] = {
        0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
        0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL};
    return splat(kPatterns[i]);
  }
  static constexpr TT all_ones() {
    return static_cast<TT>(~static_cast<TT>(0));
  }
  static TT cofactor0(TT f, int v) {
    const TT lo = f & static_cast<TT>(~var(v));
    return lo | static_cast<TT>(lo << (1 << v));
  }
  static TT cofactor1(TT f, int v) {
    const TT hi = f & var(v);
    return hi | static_cast<TT>(hi >> (1 << v));
  }
  static bool depends_on(TT f, int v) {
    return cofactor0(f, v) != cofactor1(f, v);
  }
};

using Tt = std::uint16_t;  // 4-var tables for the cut rewriter
using Ops4 = TruthOps<Tt, 4>;
constexpr Tt kVarTt[4] = {0xAAAA, 0xCCCC, 0xF0F0, 0xFF00};
constexpr Tt kTtTrue = 0xFFFF;

Tt cofactor0(Tt f, int var) { return Ops4::cofactor0(f, var); }
Tt cofactor1(Tt f, int var) { return Ops4::cofactor1(f, var); }
bool depends_on(Tt f, int var) { return Ops4::depends_on(f, var); }

// --- cuts --------------------------------------------------------------------

struct Cut {
  std::array<std::uint32_t, 4> leaves{};
  std::uint8_t size = 0;
  Tt truth = 0;  // over leaves[0..size-1] as vars 0..size-1 (padded to 4)
};

/// Re-expresses `t` (over `from`) on the leaf set `to` (a superset).
Tt expand_truth(Tt t, const Cut& from, const Cut& to) {
  std::array<int, 4> pos{};  // var i of `from` sits at pos[i] of `to`
  for (int i = 0; i < from.size; ++i) {
    int p = -1;
    for (int j = 0; j < to.size; ++j)
      if (to.leaves[j] == from.leaves[i]) {
        p = j;
        break;
      }
    ORAP_DCHECK(p >= 0);
    pos[i] = p;
  }
  Tt out = 0;
  for (int m = 0; m < 16; ++m) {
    int proj = 0;
    for (int i = 0; i < from.size; ++i)
      proj |= ((m >> pos[i]) & 1) << i;
    if ((t >> proj) & 1) out |= static_cast<Tt>(1) << m;
  }
  return out;
}

bool merge_leaves(const Cut& a, const Cut& b, Cut& out) {
  int i = 0, j = 0, k = 0;
  while (i < a.size || j < b.size) {
    std::uint32_t next;
    if (i < a.size && (j >= b.size || a.leaves[i] <= b.leaves[j])) {
      next = a.leaves[i];
      if (j < b.size && b.leaves[j] == next) ++j;
      ++i;
    } else {
      next = b.leaves[j];
      ++j;
    }
    if (k == 4) return false;
    out.leaves[k++] = next;
  }
  out.size = static_cast<std::uint8_t>(k);
  return true;
}

// --- memoized function synthesis ----------------------------------------------

enum class DecKind : std::uint8_t {
  kConst0,
  kVar,       // f == var (possibly complemented handled by normalization)
  kOrVarF0,   // f = x | f0
  kAndNVarF0, // f = !x & f0
  kOrNVarF1,  // f = !x | f1
  kAndVarF1,  // f = x & f1
  kXorVarF0,  // f = x ^ f0
  kMux,       // f = x ? f1 : f0
};

struct Decision {
  DecKind kind = DecKind::kConst0;
  std::uint8_t var = 0;
  std::uint16_t cost = 0;
};

/// Memoized Shannon-decomposition synthesizer over NV-variable functions
/// packed into TT words. The 4-var instantiation backs the cut rewriter;
/// the 6-var one backs the fanout-free-cone refactorer.
template <typename TT, int NV>
class FuncSynthT {
  using Ops = TruthOps<TT, NV>;

 public:
  /// Standalone AND-node cost of `f` (negations free).
  std::uint16_t cost(TT f) {
    bool flip;
    const TT g = norm(f, flip);
    return decide(g).cost;
  }

  struct PB {  // probe/build result
    std::uint32_t new_nodes = 0;
    AigLit lit = Aig::kNoLit;  // known literal, or kNoLit during probing
  };

  /// build=false: exact count of AND nodes that synthesizing `f` over
  /// `leaves` would add to `a` (sharing via strash lookups). build=true:
  /// actually creates the structure and returns its literal.
  PB synth(TT f, const std::array<AigLit, NV>& leaves, Aig& a, bool build) {
    bool flip;
    const TT g = norm(f, flip);
    PB r = synth_norm(g, leaves, a, build);
    if (flip && r.lit != Aig::kNoLit) r.lit = lit_not(r.lit);
    return r;
  }

 private:
  static TT norm(TT f, bool& flip) {
    flip = (f & 1) != 0;
    return flip ? static_cast<TT>(~f) : f;
  }

  const Decision& decide(TT f) {
    ORAP_DCHECK((f & 1) == 0);
    auto it = memo_.find(f);
    if (it != memo_.end()) return it->second;
    Decision d = compute(f);
    return memo_.emplace(f, d).first->second;
  }

  Decision compute(TT f) {
    if (f == 0) return {DecKind::kConst0, 0, 0};
    for (std::uint8_t v = 0; v < NV; ++v)
      if (f == Ops::var(v)) return {DecKind::kVar, v, 0};

    Decision best;
    best.cost = 0xffff;
    for (std::uint8_t v = 0; v < NV; ++v) {
      if (!Ops::depends_on(f, v)) continue;
      const TT f0 = Ops::cofactor0(f, v);
      const TT f1 = Ops::cofactor1(f, v);
      Decision cand;
      cand.var = v;
      if (f1 == Ops::all_ones()) {
        cand.kind = DecKind::kOrVarF0;
        cand.cost = static_cast<std::uint16_t>(1 + cost(f0));
      } else if (f1 == 0) {
        cand.kind = DecKind::kAndNVarF0;
        cand.cost = static_cast<std::uint16_t>(1 + cost(f0));
      } else if (f0 == Ops::all_ones()) {
        cand.kind = DecKind::kOrNVarF1;
        cand.cost = static_cast<std::uint16_t>(1 + cost(f1));
      } else if (f0 == 0) {
        cand.kind = DecKind::kAndVarF1;
        cand.cost = static_cast<std::uint16_t>(1 + cost(f1));
      } else if (f1 == static_cast<TT>(~f0)) {
        cand.kind = DecKind::kXorVarF0;
        cand.cost = static_cast<std::uint16_t>(3 + cost(f0));
      } else {
        cand.kind = DecKind::kMux;
        cand.cost = static_cast<std::uint16_t>(3 + cost(f0) + cost(f1));
      }
      if (cand.cost < best.cost) best = cand;
    }
    ORAP_DCHECK(best.cost != 0xffff);
    return best;
  }

  PB pand(PB x, PB y, Aig& a, bool build) {
    if (build) return {0, a.and2(x.lit, y.lit)};
    PB r;
    r.new_nodes = x.new_nodes + y.new_nodes;
    if (x.lit != Aig::kNoLit && y.lit != Aig::kNoLit) {
      const AigLit hit = a.find_and(x.lit, y.lit);
      if (hit != Aig::kNoLit) {
        r.lit = hit;
        return r;
      }
    }
    ++r.new_nodes;
    return r;
  }

  static PB pnot(PB x) {
    if (x.lit != Aig::kNoLit) x.lit = lit_not(x.lit);
    return x;
  }

  PB synth_norm(TT f, const std::array<AigLit, NV>& leaves, Aig& a,
                bool build) {
    if (f == 0) return {0, kLitFalse};
    for (std::uint8_t v = 0; v < NV; ++v)
      if (f == Ops::var(v)) return {0, leaves[v]};
    const Decision d = decide(f);
    const PB x{0, leaves[d.var]};
    const TT f0 = Ops::cofactor0(f, d.var);
    const TT f1 = Ops::cofactor1(f, d.var);
    switch (d.kind) {
      case DecKind::kOrVarF0:  // !( !x & !f0 )
        return pnot(pand(pnot(x), pnot(synth(f0, leaves, a, build)), a, build));
      case DecKind::kAndNVarF0:
        return pand(pnot(x), synth(f0, leaves, a, build), a, build);
      case DecKind::kOrNVarF1:  // !( x & !f1 )
        return pnot(pand(x, pnot(synth(f1, leaves, a, build)), a, build));
      case DecKind::kAndVarF1:
        return pand(x, synth(f1, leaves, a, build), a, build);
      case DecKind::kXorVarF0: {
        // x ^ f0 = !( !(x & !f0) & !(!x & f0) )
        const PB s0 = synth(f0, leaves, a, build);
        const PB t0 = pand(x, pnot(s0), a, build);
        const PB t1 = pand(pnot(x), s0, a, build);
        return pnot(pand(pnot(t0), pnot(t1), a, build));
      }
      case DecKind::kMux: {
        // x ? f1 : f0 = !( !(x & f1) & !(!x & f0) )
        const PB s0 = synth(f0, leaves, a, build);
        const PB s1 = synth(f1, leaves, a, build);
        const PB t1 = pand(x, s1, a, build);
        const PB t0 = pand(pnot(x), s0, a, build);
        return pnot(pand(pnot(t1), pnot(t0), a, build));
      }
      default:
        ORAP_CHECK_MSG(false, "unreachable synth kind");
        return {};
    }
  }

  std::unordered_map<TT, Decision> memo_;
};

using FuncSynth = FuncSynthT<std::uint16_t, 4>;
using ConeSynth = FuncSynthT<std::uint64_t, 6>;

// Thread-unsafe but cheap: one shared memo across passes.
FuncSynth& func_synth() {
  static FuncSynth s;
  return s;
}

ConeSynth& cone_synth() {
  static ConeSynth s;
  return s;
}

// --- cut enumeration -----------------------------------------------------------

std::vector<std::vector<Cut>> enumerate_cuts(const Aig& in, int cuts_per_node) {
  std::vector<std::vector<Cut>> cuts(in.num_nodes());
  // Constant node: single empty-leaf cut with constant-0 truth.
  cuts[0].push_back(Cut{{}, 0, 0});
  for (std::uint32_t n = 1; n < in.num_nodes(); ++n) {
    Cut trivial;
    trivial.leaves[0] = n;
    trivial.size = 1;
    trivial.truth = kVarTt[0];
    if (!in.is_and(n)) {
      cuts[n].push_back(trivial);
      continue;
    }
    const AigLit l0 = in.fanin0(n);
    const AigLit l1 = in.fanin1(n);
    std::vector<Cut>& out = cuts[n];
    for (const Cut& c0 : cuts[lit_node(l0)]) {
      for (const Cut& c1 : cuts[lit_node(l1)]) {
        Cut merged;
        if (!merge_leaves(c0, c1, merged)) continue;
        Tt t0 = expand_truth(c0.truth, c0, merged);
        Tt t1 = expand_truth(c1.truth, c1, merged);
        if (lit_compl(l0)) t0 = static_cast<Tt>(~t0);
        if (lit_compl(l1)) t1 = static_cast<Tt>(~t1);
        merged.truth = t0 & t1;
        // Dedupe by leaf set.
        bool dup = false;
        for (const Cut& c : out)
          if (c.size == merged.size && c.leaves == merged.leaves) {
            dup = true;
            break;
          }
        if (!dup) out.push_back(merged);
      }
    }
    std::sort(out.begin(), out.end(),
              [](const Cut& a, const Cut& b) { return a.size < b.size; });
    if (static_cast<int>(out.size()) > cuts_per_node)
      out.resize(cuts_per_node);
    out.push_back(trivial);  // building block for parents
  }
  return cuts;
}

}  // namespace

namespace {

/// Number of interior cone nodes (strictly between `root` and the cut
/// leaves) whose only fanout lies inside the cone — i.e. the nodes that
/// die if `root` is re-expressed directly over the leaves (an MFFC
/// approximation using global fanout-1 as the "dies" criterion).
std::uint32_t dying_interior(const Aig& in,
                             const std::vector<std::uint32_t>& fanout,
                             std::uint32_t root, const Cut& c) {
  std::uint32_t dying = 0;
  std::array<std::uint32_t, 16> stack;
  std::array<std::uint32_t, 16> seen{};
  int sp = 0, nseen = 0;
  auto is_leaf = [&c](std::uint32_t node) {
    for (int i = 0; i < c.size; ++i)
      if (c.leaves[i] == node) return true;
    return false;
  };
  stack[sp++] = root;
  while (sp > 0) {
    const std::uint32_t t = stack[--sp];
    for (const AigLit f : {in.fanin0(t), in.fanin1(t)}) {
      const std::uint32_t fn = lit_node(f);
      if (!in.is_and(fn) || is_leaf(fn)) continue;
      bool dup = false;
      for (int i = 0; i < nseen; ++i) dup |= seen[i] == fn;
      if (dup || nseen == 16 || sp == 16) continue;
      seen[nseen++] = fn;
      if (fanout[fn] == 1) ++dying;
      stack[sp++] = fn;
    }
  }
  return dying;
}

}  // namespace

Aig rewrite_pass(const Aig& in, const RewriteOptions& opts) {
  const auto cuts = enumerate_cuts(in, opts.cuts_per_node);
  const auto fanout = in.fanout_counts();
  FuncSynth& fs = func_synth();

  Aig out;
  std::vector<AigLit> map(in.num_nodes(), Aig::kNoLit);
  map[0] = kLitFalse;
  for (const std::uint32_t pi : in.pis()) map[pi] = out.add_pi();
  auto map_lit = [&map](AigLit l) {
    return lit_compl(l) ? lit_not(map[lit_node(l)]) : map[lit_node(l)];
  };

  for (std::uint32_t n = 1; n < in.num_nodes(); ++n) {
    if (!in.is_and(n)) continue;
    const AigLit a = map_lit(in.fanin0(n));
    const AigLit b = map_lit(in.fanin1(n));
    // Default choice: rebuild from the mapped fanins (cost 0 when the
    // strash already has the node). Interior nodes it keeps alive are
    // sunk cost, so its score gets no dying credit.
    const std::int32_t default_cost =
        out.find_and(a, b) != Aig::kNoLit ? 0 : 1;
    std::int32_t best_score = default_cost;
    const Cut* best_cut = nullptr;
    std::array<AigLit, 4> best_leaves{};
    if (default_cost > 0) {
      for (const Cut& c : cuts[n]) {
        if (c.size == 1 && c.leaves[0] == n) continue;  // self-cut
        std::array<AigLit, 4> leaves{kLitFalse, kLitFalse, kLitFalse,
                                     kLitFalse};
        for (int i = 0; i < c.size; ++i) leaves[i] = map[c.leaves[i]];
        const auto probe = fs.synth(c.truth, leaves, out, /*build=*/false);
        const std::uint32_t dying = dying_interior(in, fanout, n, c);
        const std::int32_t score =
            static_cast<std::int32_t>(probe.new_nodes) -
            static_cast<std::int32_t>(dying);
        // Strict improvement, or a tie that at least retires interior
        // nodes (canonicalization that unlocks sharing in later passes).
        if (score < best_score ||
            (score == best_score && dying > 0 && best_cut == nullptr)) {
          best_score = score;
          best_cut = &c;
          best_leaves = leaves;
        }
      }
    }
    if (best_cut == nullptr) {
      map[n] = out.and2(a, b);
    } else {
      map[n] = fs.synth(best_cut->truth, best_leaves, out, /*build=*/true).lit;
    }
  }
  for (const AigLit po : in.pos()) out.add_po(map_lit(po));
  return out.cleanup();
}

Aig refactor_pass(const Aig& in) {
  const auto fanout = in.fanout_counts();
  ConeSynth& cs = cone_synth();

  Aig out;
  std::vector<AigLit> map(in.num_nodes(), Aig::kNoLit);
  map[0] = kLitFalse;
  for (const std::uint32_t pi : in.pis()) map[pi] = out.add_pi();
  auto map_lit = [&map](AigLit l) {
    return lit_compl(l) ? lit_not(map[lit_node(l)]) : map[lit_node(l)];
  };

  std::vector<std::uint32_t> cone;    // interior nodes (including root)
  std::vector<std::uint32_t> leaves;  // boundary nodes
  for (std::uint32_t n = 1; n < in.num_nodes(); ++n) {
    if (!in.is_and(n)) continue;
    const AigLit da = map_lit(in.fanin0(n));
    const AigLit db = map_lit(in.fanin1(n));
    const std::int32_t default_cost =
        out.find_and(da, db) != Aig::kNoLit ? 0 : 1;

    bool use_cone = false;
    std::uint64_t truth = 0;
    std::array<AigLit, 6> leaf_lits{};
    std::int32_t cone_score = 0;
    if (default_cost > 0) {
      // Fanout-free cone: expand fanins that are single-fanout ANDs.
      cone.clear();
      leaves.clear();
      cone.push_back(n);
      for (std::size_t i = 0; i < cone.size() && leaves.size() <= 6; ++i) {
        const std::uint32_t t = cone[i];
        for (const AigLit f : {in.fanin0(t), in.fanin1(t)}) {
          const std::uint32_t fn = lit_node(f);
          if (fn == 0) continue;  // constant: not a leaf variable
          const bool interior = in.is_and(fn) && fanout[fn] == 1;
          auto& bucket = interior ? cone : leaves;
          if (std::find(bucket.begin(), bucket.end(), fn) == bucket.end())
            bucket.push_back(fn);
        }
      }
      if (leaves.size() <= 6 && cone.size() >= 3) {
        // Truth table of the cone over its leaves (evaluate in id order;
        // fanins always precede their gate).
        std::sort(cone.begin(), cone.end());
        std::unordered_map<std::uint32_t, std::uint64_t> val;
        val[0] = 0;  // const node
        for (std::size_t i = 0; i < leaves.size(); ++i)
          val[leaves[i]] = TruthOps<std::uint64_t, 6>::var(static_cast<int>(i));
        auto lit_val = [&val](AigLit l) {
          const std::uint64_t v = val.at(lit_node(l));
          return lit_compl(l) ? ~v : v;
        };
        for (const std::uint32_t t : cone)
          val[t] = lit_val(in.fanin0(t)) & lit_val(in.fanin1(t));
        truth = val[n];
        for (std::size_t i = 0; i < leaves.size(); ++i)
          leaf_lits[i] = map[leaves[i]];
        for (std::size_t i = leaves.size(); i < 6; ++i)
          leaf_lits[i] = kLitFalse;
        const auto probe = cs.synth(truth, leaf_lits, out, /*build=*/false);
        // Every interior node except the root dies if bypassed.
        const auto dying = static_cast<std::int32_t>(cone.size() - 1);
        cone_score = static_cast<std::int32_t>(probe.new_nodes) - dying;
        use_cone = cone_score < default_cost;
      }
    }
    map[n] = use_cone
                 ? cs.synth(truth, leaf_lits, out, /*build=*/true).lit
                 : out.and2(da, db);
  }
  for (const AigLit po : in.pos()) out.add_po(map_lit(po));
  return out.cleanup();
}

Aig balance(const Aig& in) {
  const auto fanout = in.fanout_counts();

  // A node is interior to an AND tree when it feeds exactly one parent,
  // uncomplemented; such nodes are folded into their root's operand list.
  std::vector<bool> interior(in.num_nodes(), false);
  for (std::uint32_t n = 1; n < in.num_nodes(); ++n) {
    if (!in.is_and(n)) continue;
    for (const AigLit f : {in.fanin0(n), in.fanin1(n)}) {
      const std::uint32_t fn = lit_node(f);
      if (!lit_compl(f) && in.is_and(fn) && fanout[fn] == 1)
        interior[fn] = true;
    }
  }

  Aig out;
  std::vector<AigLit> map(in.num_nodes(), Aig::kNoLit);
  map[0] = kLitFalse;
  for (const std::uint32_t pi : in.pis()) map[pi] = out.add_pi();
  auto map_lit = [&map](AigLit l) {
    return lit_compl(l) ? lit_not(map[lit_node(l)]) : map[lit_node(l)];
  };

  std::vector<std::uint32_t> lvl_cache;  // levels in `out`, grown lazily
  auto level_of = [&](AigLit l) -> std::uint32_t {
    const std::uint32_t node = lit_node(l);
    if (node >= lvl_cache.size()) lvl_cache.resize(out.num_nodes(), 0);
    return lvl_cache[node];
  };
  auto record_level = [&](AigLit l) {
    const std::uint32_t node = lit_node(l);
    if (node >= lvl_cache.size()) lvl_cache.resize(node + 1, 0);
    if (out.is_and(node)) {
      lvl_cache[node] =
          1 + std::max(level_of(out.fanin0(node)), level_of(out.fanin1(node)));
    }
  };

  for (std::uint32_t n = 1; n < in.num_nodes(); ++n) {
    if (!in.is_and(n) || interior[n]) continue;
    // Collect the maximal single-fanout AND tree rooted here; operands are
    // the tree's frontier literals (already mapped, being earlier roots).
    std::vector<AigLit> operands;
    std::vector<std::uint32_t> stack{n};
    while (!stack.empty()) {
      const std::uint32_t t = stack.back();
      stack.pop_back();
      for (const AigLit f : {in.fanin0(t), in.fanin1(t)}) {
        const std::uint32_t fn = lit_node(f);
        if (!lit_compl(f) && in.is_and(fn) && fanout[fn] == 1) {
          stack.push_back(fn);
        } else {
          operands.push_back(f);
        }
      }
    }
    // Huffman-style combine: always AND the two shallowest operands.
    std::vector<AigLit> ops;
    for (const AigLit f : operands) ops.push_back(map_lit(f));
    while (ops.size() > 1) {
      std::sort(ops.begin(), ops.end(), [&](AigLit x, AigLit y) {
        return level_of(x) > level_of(y);  // descending; take from back
      });
      const AigLit x = ops.back();
      ops.pop_back();
      const AigLit y = ops.back();
      ops.pop_back();
      const AigLit r = out.and2(x, y);
      record_level(r);
      ops.push_back(r);
    }
    map[n] = ops[0];
  }
  for (const AigLit po : in.pos()) out.add_po(map_lit(po));
  return out.cleanup();
}

Aig resynthesize(const Aig& in, const RewriteOptions& opts) {
  Aig cur = in.cleanup();  // strash-style dedup + dead-node sweep
  if (opts.balance) cur = balance(cur);
  // A pass that does not shrink the AIG can still canonicalize structures
  // and unlock sharing for the next pass, so stop only after two
  // consecutive non-improving passes. The dying-credit heuristic can
  // occasionally lose its bet and grow the graph, so track the best
  // result seen and never return anything worse.
  Aig best = cur;
  int stale = 0;
  for (int pass = 0; pass < opts.passes && stale < 2; ++pass) {
    const std::size_t before = cur.num_ands();
    cur = rewrite_pass(cur, opts);
    stale = cur.num_ands() >= before ? stale + 1 : 0;
    if (cur.num_ands() < best.num_ands()) best = cur;
  }
  // Larger-window refactor, then one more rewrite to clean up.
  cur = refactor_pass(cur);
  if (cur.num_ands() < best.num_ands()) best = cur;
  cur = rewrite_pass(cur, opts);
  if (cur.num_ands() < best.num_ands()) best = cur;
  if (opts.balance) {
    Aig balanced = balance(best);
    if (balanced.num_ands() <= best.num_ands()) return balanced;
  }
  return best;
}

AigStats resynthesized_stats(const Netlist& n, const RewriteOptions& opts) {
  return aig_stats(resynthesize(Aig::from_netlist(n), opts));
}

}  // namespace orap::aig
