#pragma once
// DAG-aware AIG resynthesis: 4-input cut enumeration with truth tables, a
// memoized Shannon-decomposition function synthesizer with exact new-node
// cost probing against the structural hash, and level-driven AND-tree
// balancing. `resynthesize` chains them the way the paper runs ABC
// (strash → refactor → rewrite) before measuring area/delay overhead.

#include <cstdint>

#include "aig/aig.h"

namespace orap::aig {

struct RewriteOptions {
  int cuts_per_node = 6;
  int passes = 3;       // rewrite iterations (stops early at fixpoint)
  bool balance = true;  // run tree balancing first and last
};

/// One greedy reconstruction pass: every node is rebuilt either from its
/// fanins or from the cheapest 4-cut resynthesis, whichever adds fewer new
/// nodes. Constants and wire-equivalences discovered via cut truth tables
/// are collapsed for free.
Aig rewrite_pass(const Aig& in, const RewriteOptions& opts = {});

/// Level-minimizing reconstruction: multi-input AND trees are regrouped
/// Huffman-style (lowest-level operands first).
Aig balance(const Aig& in);

/// Refactor pass: every fanout-free cone with at most six leaves is
/// re-expressed from its 64-bit truth table when that saves nodes — the
/// larger-window complement to the 4-cut rewriter (ABC's `refactor`).
Aig refactor_pass(const Aig& in);

/// Full pipeline: balance, then rewrite passes to fixpoint, then balance.
Aig resynthesize(const Aig& in, const RewriteOptions& opts = {});

/// Resynthesized area/delay of a netlist (the Table I measurement): maps
/// the netlist into an AIG, optimizes, and reports AND count + depth.
AigStats resynthesized_stats(const Netlist& n,
                             const RewriteOptions& opts = {});

}  // namespace orap::aig
