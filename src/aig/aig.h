#pragma once
// And-Inverter Graph package: structural hashing, simulation, netlist
// conversion, and garbage collection. Together with rewrite.h this is the
// repository's stand-in for ABC's `strash → refactor → rewrite` pipeline,
// used to measure Table I's area (AND-node count; inverters are free
// complement edges, matching the paper's inverter-less gate counts) and
// delay (AND levels).

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"
#include "util/check.h"

namespace orap::aig {

/// AIG literal: 2*node + complement. Node 0 is constant-0, so lit 0 =
/// const0 and lit 1 = const1.
using AigLit = std::uint32_t;
inline constexpr AigLit kLitFalse = 0;
inline constexpr AigLit kLitTrue = 1;

inline std::uint32_t lit_node(AigLit l) { return l >> 1; }
inline bool lit_compl(AigLit l) { return (l & 1) != 0; }
inline AigLit make_lit(std::uint32_t node, bool compl_) {
  return (node << 1) | (compl_ ? 1 : 0);
}
inline AigLit lit_not(AigLit l) { return l ^ 1; }

class Aig {
 public:
  Aig();

  // --- construction ------------------------------------------------------
  AigLit add_pi();
  /// Hashed AND with trivial-case simplification (constants, a&a, a&!a).
  AigLit and2(AigLit a, AigLit b);
  AigLit or2(AigLit a, AigLit b) {
    return lit_not(and2(lit_not(a), lit_not(b)));
  }
  AigLit xor2(AigLit a, AigLit b);
  AigLit mux(AigLit s, AigLit d0, AigLit d1);
  void add_po(AigLit l) { pos_.push_back(l); }

  /// Looks up an existing AND node without creating one; returns the lit
  /// or kNoLit. Used by the rewriter's exact cost probing.
  static constexpr AigLit kNoLit = 0xffffffffu;
  AigLit find_and(AigLit a, AigLit b) const;

  // --- structure ----------------------------------------------------------
  std::size_t num_nodes() const { return fanin0_.size(); }  // incl const+PIs
  std::size_t num_pis() const { return pis_.size(); }
  std::size_t num_pos() const { return pos_.size(); }
  std::size_t num_ands() const { return num_ands_; }
  const std::vector<AigLit>& pos() const { return pos_; }
  const std::vector<std::uint32_t>& pis() const { return pis_; }

  bool is_and(std::uint32_t node) const {
    return fanin0_[node] != kNoLit && node != 0;
  }
  bool is_pi(std::uint32_t node) const {
    return node != 0 && fanin0_[node] == kNoLit;
  }
  AigLit fanin0(std::uint32_t node) const { return fanin0_[node]; }
  AigLit fanin1(std::uint32_t node) const { return fanin1_[node]; }

  /// AND-depth of each node (PIs and const are 0; complement edges free).
  std::vector<std::uint32_t> levels() const;
  std::uint32_t depth() const;

  /// Fanout count (AND fanins + PO references).
  std::vector<std::uint32_t> fanout_counts() const;

  // --- conversion ---------------------------------------------------------
  static Aig from_netlist(const Netlist& n);
  /// Back to a Netlist of AND/NOT gates (names pi<N>/po<N>).
  Netlist to_netlist() const;

  // --- simulation ---------------------------------------------------------
  /// 64-way bit-parallel simulation. `pi_words` has one word per PI;
  /// returns one word per PO.
  std::vector<std::uint64_t> simulate(
      std::span<const std::uint64_t> pi_words) const;

  /// Node values for the same stimulus (for the rewriter's validation).
  std::vector<std::uint64_t> simulate_nodes(
      std::span<const std::uint64_t> pi_words) const;

  /// Removes nodes unreachable from the POs. Returns the compacted AIG.
  Aig cleanup() const;

 private:
  std::uint32_t new_node(AigLit f0, AigLit f1);

  struct PairHash {
    std::size_t operator()(const std::pair<AigLit, AigLit>& p) const {
      return std::hash<std::uint64_t>()(
          (static_cast<std::uint64_t>(p.first) << 32) | p.second);
    }
  };

  std::vector<AigLit> fanin0_;  // kNoLit for PIs and const
  std::vector<AigLit> fanin1_;
  std::vector<std::uint32_t> pis_;
  std::vector<AigLit> pos_;
  std::unordered_map<std::pair<AigLit, AigLit>, std::uint32_t, PairHash>
      strash_;
  std::size_t num_ands_ = 0;
};

/// Area/delay summary used by the Table I pipeline.
struct AigStats {
  std::size_t ands = 0;
  std::uint32_t depth = 0;
};
AigStats aig_stats(const Aig& a);

}  // namespace orap::aig
