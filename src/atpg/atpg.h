#pragma once
// SAT-based stuck-at ATPG (the Atalanta stand-in of the Table II flow).
//
// For each fault left over from the pseudorandom fault-simulation phase, a
// good/faulty miter is encoded (sharing everything outside the fault's
// fanout cone) and solved under a conflict budget:
//   SAT     -> test pattern generated (validated in the fault simulator),
//   UNSAT   -> fault is provably redundant,
//   UNKNOWN -> aborted (budget exhausted), like Atalanta's backtrack limit.

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/fault.h"
#include "atpg/fault_sim.h"
#include "util/bitvec.h"

namespace orap::sat {
struct SolverStats;
}

namespace orap {

enum class FaultClass { kDetectedRandom, kDetectedAtpg, kRedundant, kAborted };

struct AtpgOptions {
  std::size_t random_words = 256;       // 64 patterns per word
  std::int64_t conflict_budget = 10000; // per fault ("high effort"; harder
                                        // proofs abort, as in Atalanta)
  std::uint64_t seed = 1;
  bool resimulate_new_patterns = true;  // drop more faults per ATPG pattern
  /// > 1 races that many diversified CDCL instances per fault query in
  /// deterministic lockstep epochs (sat/portfolio.h); 1 = single solver.
  std::size_t portfolio_size = 1;
  /// Runs SatELite-style CNF simplification (sat/simplify.h) on each
  /// good/faulty miter before solving. Fault-site and PI/PO variables are
  /// frozen so the test pattern stays readable from the model.
  bool preprocess = false;
  /// > 0 splits every fault query into 2^depth cubes via deterministic
  /// lookahead and conquers them in parallel (sat/cube.h); the conflict
  /// budget becomes a TOTAL per query, split across cubes.
  std::uint32_t cube_depth = 0;
  /// Wall-clock deadline for the whole ATPG phase; < 0 = none. Once it
  /// expires, the in-flight fault query aborts (solver-internal check) and
  /// every not-yet-attempted fault is counted as aborted. Timing-dependent,
  /// so it waives bit-identity only when it actually fires.
  std::int64_t deadline_ms = -1;
  /// Incremental single-solver mode: one persistent solver for the whole
  /// ATPG phase. The good circuit is encoded once; each fault adds only
  /// its faulty fanout cone plus a miter clause guarded by a fresh
  /// activation literal, solves under that assumption, and retires the
  /// query with a unit ¬act — so learnt clauses about the shared good
  /// logic carry from fault to fault instead of being re-derived per
  /// query. Same fault classification semantics; the generated patterns
  /// may differ (different CNF, different model), and each is still
  /// validated in the fault simulator. With `preprocess`, simplification
  /// runs once after the good copy with every gate variable frozen
  /// (any gate can become a future cone boundary), i.e. subsumption and
  /// strengthening only — no elimination.
  bool incremental = false;
  /// Words per fault-simulation block (64 patterns each). 0 = auto
  /// (simd::kBlockWords). Any width detects the identical fault set.
  std::size_t sim_block_words = 0;
};

struct AtpgResult {
  std::size_t total_faults = 0;  // collapsed list
  std::size_t detected_random = 0;
  std::size_t detected_atpg = 0;
  std::size_t redundant = 0;
  std::size_t aborted = 0;
  std::vector<BitVec> patterns;  // ATPG-phase patterns only

  // Cube-and-conquer accounting over the ATPG phase (0 when cube_depth
  // is 0 — see AtpgOptions::cube_depth).
  std::uint64_t cubes = 0;
  std::uint64_t cubes_refuted = 0;
  double cube_wall_ms = 0.0;

  // Incremental-solver accounting. solver_rounds / clauses_carried come
  // from the solver (learnts alive at each solve() entry, summed);
  // encode_reused counts good-copy gates a fault query shared instead of
  // re-encoding and is nonzero only with AtpgOptions::incremental.
  std::uint64_t solver_rounds = 0;
  std::uint64_t clauses_carried = 0;
  std::uint64_t encode_reused = 0;

  // Pseudorandom-phase throughput (satellite of the wide fault simulator):
  // patterns pushed through the simulator and the wall time they took.
  // Timing-derived — report it, never byte-compare it.
  std::size_t random_sim_patterns = 0;
  double random_sim_ms = 0.0;

  std::size_t detected() const { return detected_random + detected_atpg; }
  double fault_coverage_pct() const {
    return total_faults == 0
               ? 100.0
               : 100.0 * static_cast<double>(detected()) /
                     static_cast<double>(total_faults);
  }
  std::size_t redundant_plus_aborted() const { return redundant + aborted; }
};

/// Generates a test pattern for one fault (nullopt = redundant or
/// aborted; `aborted_out` distinguishes the two). portfolio_size > 1
/// races diversified solver instances on the good/faulty miter;
/// `preprocess` simplifies the miter CNF before the solve; cube_depth > 0
/// splits the query into 2^depth cubes. `stats_out` (optional) receives
/// the query's summed solver stats, cube counters included. `deadline`
/// (optional) bounds the query by wall clock: expiry aborts it.
std::optional<BitVec> generate_test(
    const Netlist& n, const Fault& f, std::int64_t conflict_budget,
    bool* aborted_out, std::size_t portfolio_size = 1, bool preprocess = false,
    std::uint32_t cube_depth = 0, sat::SolverStats* stats_out = nullptr,
    const std::chrono::steady_clock::time_point* deadline = nullptr);

/// The full Table II flow: collapse faults, pseudorandom phase with
/// dropping, SAT-ATPG on the remainder.
AtpgResult run_atpg(const Netlist& n, const AtpgOptions& opts = {});

}  // namespace orap
