#include "atpg/fault_sim.h"

#include <algorithm>
#include <queue>

namespace orap {

FaultSimulator::FaultSimulator(const Netlist& n)
    : n_(n),
      sim_(n),
      fanouts_(n.num_gates()),
      is_po_(n.num_gates(), 0),
      faulty_val_(n.num_gates(), 0),
      stamp_(n.num_gates(), 0),
      queued_stamp_(n.num_gates(), 0) {
  for (GateId g = 0; g < n.num_gates(); ++g)
    for (const GateId f : n.fanins(g)) fanouts_[f].push_back(g);
  for (const auto& po : n.outputs()) is_po_[po.gate] = 1;
  val_ = sim_.values();
}

std::uint64_t FaultSimulator::faulty_site_value(const Fault& f) const {
  const std::uint64_t stuck = f.stuck_value ? ~0ULL : 0ULL;
  if (f.pin < 0) return stuck;
  // Input-pin fault: re-evaluate the gate with that pin forced.
  const auto fi = n_.fanins(f.gate);
  std::vector<std::uint64_t> buf(fi.size());
  for (std::size_t i = 0; i < fi.size(); ++i) buf[i] = val_[fi[i]];
  buf[f.pin] = stuck;
  return eval_gate_word(n_.type(f.gate), buf);
}

std::uint64_t FaultSimulator::propagate(const Fault& f,
                                        std::uint64_t site_value) {
  if (site_value == val_[f.gate]) return 0;  // fault not excited
  ++epoch_;
  stamp_[f.gate] = epoch_;
  faulty_val_[f.gate] = site_value;
  std::uint64_t detect = is_po_[f.gate] ? site_value ^ val_[f.gate] : 0;

  auto value_of = [this](GateId g) {
    return stamp_[g] == epoch_ ? faulty_val_[g] : val_[g];
  };

  // Min-heap over gate ids = topological processing order; each gate is
  // evaluated once (fanouts always have larger ids).
  std::priority_queue<GateId, std::vector<GateId>, std::greater<>> heap;
  auto push_fanouts = [&](GateId g) {
    for (const GateId q : fanouts_[g]) {
      if (queued_stamp_[q] == epoch_) continue;
      queued_stamp_[q] = epoch_;
      heap.push(q);
    }
  };
  push_fanouts(f.gate);

  std::vector<std::uint64_t> buf;
  while (!heap.empty()) {
    const GateId g = heap.top();
    heap.pop();
    const auto fi = n_.fanins(g);
    buf.resize(fi.size());
    for (std::size_t i = 0; i < fi.size(); ++i) buf[i] = value_of(fi[i]);
    const std::uint64_t nv = eval_gate_word(n_.type(g), buf);
    if (nv == val_[g]) {
      // Fault effect dies here; if a previous overlay existed it is now
      // stale, so record the clean value explicitly.
      if (stamp_[g] == epoch_) {
        faulty_val_[g] = nv;
      }
      continue;
    }
    stamp_[g] = epoch_;
    faulty_val_[g] = nv;
    if (is_po_[g]) detect |= nv ^ val_[g];
    push_fanouts(g);
  }
  return detect;
}

std::size_t FaultSimulator::run_block(
    std::span<const std::uint64_t> input_words, std::vector<Fault>& remaining) {
  ORAP_CHECK(input_words.size() == n_.num_inputs());
  for (std::size_t i = 0; i < input_words.size(); ++i)
    sim_.set_input_word(i, input_words[i]);
  sim_.run();
  std::size_t detected = 0;
  for (std::size_t i = 0; i < remaining.size();) {
    const Fault& f = remaining[i];
    if (propagate(f, faulty_site_value(f)) != 0) {
      remaining[i] = remaining.back();
      remaining.pop_back();
      ++detected;
    } else {
      ++i;
    }
  }
  return detected;
}

std::size_t FaultSimulator::run_random(std::size_t words, Rng& rng,
                                       std::vector<Fault>& remaining) {
  std::size_t total = 0;
  std::vector<std::uint64_t> in(n_.num_inputs());
  for (std::size_t w = 0; w < words && !remaining.empty(); ++w) {
    for (auto& x : in) x = rng.word();
    total += run_block(in, remaining);
  }
  return total;
}

bool FaultSimulator::detects(const BitVec& pattern, const Fault& f) {
  sim_.broadcast_inputs(pattern);
  sim_.run();
  return propagate(f, faulty_site_value(f)) != 0;
}

}  // namespace orap
