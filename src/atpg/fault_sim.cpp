#include "atpg/fault_sim.h"

#include <algorithm>

#include "util/parallel.h"

namespace orap {

namespace {
// Below this many pending faults the pool dispatch overhead outweighs the
// propagation work; grain keeps per-task work substantial above it.
constexpr std::size_t kParallelFaultThreshold = 256;
constexpr std::size_t kFaultGrain = 64;
}  // namespace

FaultSimulator::FaultSimulator(const Netlist& n)
    : n_(n), sim_(n), fanouts_(n.num_gates()), is_po_(n.num_gates(), 0) {
  for (GateId g = 0; g < n.num_gates(); ++g)
    for (const GateId f : n.fanins(g)) fanouts_[f].push_back(g);
  for (const auto& po : n.outputs()) is_po_[po.gate] = 1;
  val_ = sim_.values();
  states_.resize(parallel_threads());
}

FaultSimulator::PropState& FaultSimulator::slot_state() {
  const std::size_t slot = parallel_slot();
  if (slot >= states_.size()) states_.resize(slot + 1);  // serial context only
  if (!states_[slot])
    states_[slot] = std::make_unique<PropState>(n_.num_gates());
  return *states_[slot];
}

std::uint64_t FaultSimulator::faulty_site_value(const Fault& f,
                                                PropState& st) const {
  const std::uint64_t stuck = f.stuck_value ? ~0ULL : 0ULL;
  if (f.pin < 0) return stuck;
  // Input-pin fault: re-evaluate the gate with that pin forced.
  const auto fi = n_.fanins(f.gate);
  st.fanin_buf.resize(fi.size());
  for (std::size_t i = 0; i < fi.size(); ++i) st.fanin_buf[i] = val_[fi[i]];
  st.fanin_buf[f.pin] = stuck;
  return eval_gate_word(n_.type(f.gate), {st.fanin_buf.data(), fi.size()});
}

std::uint64_t FaultSimulator::propagate(const Fault& f,
                                        std::uint64_t site_value,
                                        PropState& st) const {
  if (site_value == val_[f.gate]) return 0;  // fault not excited
  ++st.epoch;
  st.stamp[f.gate] = st.epoch;
  st.faulty_val[f.gate] = site_value;
  std::uint64_t detect = is_po_[f.gate] ? site_value ^ val_[f.gate] : 0;

  auto value_of = [&st, this](GateId g) {
    return st.stamp[g] == st.epoch ? st.faulty_val[g] : val_[g];
  };

  // Min-heap over gate ids = topological processing order; each gate is
  // evaluated once (fanouts always have larger ids). The heap vector is
  // reused across faults — no allocation in the steady state.
  auto& heap = st.heap;
  heap.clear();
  const auto cmp = std::greater<GateId>();
  auto push_fanouts = [&](GateId g) {
    for (const GateId q : fanouts_[g]) {
      if (st.queued_stamp[q] == st.epoch) continue;
      st.queued_stamp[q] = st.epoch;
      heap.push_back(q);
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  };
  push_fanouts(f.gate);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const GateId g = heap.back();
    heap.pop_back();
    const auto fi = n_.fanins(g);
    st.fanin_buf.resize(fi.size());
    for (std::size_t i = 0; i < fi.size(); ++i)
      st.fanin_buf[i] = value_of(fi[i]);
    const std::uint64_t nv =
        eval_gate_word(n_.type(g), {st.fanin_buf.data(), fi.size()});
    if (nv == val_[g]) {
      // Fault effect dies here; if a previous overlay existed it is now
      // stale, so record the clean value explicitly.
      if (st.stamp[g] == st.epoch) {
        st.faulty_val[g] = nv;
      }
      continue;
    }
    st.stamp[g] = st.epoch;
    st.faulty_val[g] = nv;
    if (is_po_[g]) detect |= nv ^ val_[g];
    push_fanouts(g);
  }
  return detect;
}

std::size_t FaultSimulator::run_block(
    std::span<const std::uint64_t> input_words, std::vector<Fault>& remaining) {
  ORAP_CHECK(input_words.size() == n_.num_inputs());
  for (std::size_t i = 0; i < input_words.size(); ++i)
    sim_.set_input_word(i, input_words[i]);
  sim_.run();

  const std::size_t nf = remaining.size();
  if (nf < kParallelFaultThreshold || parallel_threads() == 1 ||
      in_parallel_region()) {
    // Serial path: same stable compaction as the parallel merge below.
    PropState& st = slot_state();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < nf; ++i)
      if (!block_detects(remaining[i], st)) remaining[keep++] = remaining[i];
    remaining.resize(keep);
    return nf - keep;
  }

  if (states_.size() < parallel_threads()) states_.resize(parallel_threads());
  detected_.assign(nf, 0);
  parallel_for_chunks(kFaultGrain, nf,
                      [&](std::size_t b, std::size_t e, std::size_t) {
                        PropState& st = slot_state();
                        for (std::size_t i = b; i < e; ++i)
                          if (block_detects(remaining[i], st))
                            detected_[i] = 1;
                      });
  // Deterministic merge: compact survivors in their original order.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < nf; ++i)
    if (!detected_[i]) remaining[keep++] = remaining[i];
  remaining.resize(keep);
  return nf - keep;
}

std::size_t FaultSimulator::run_random(std::size_t words, Rng& rng,
                                       std::vector<Fault>& remaining) {
  std::size_t total = 0;
  std::vector<std::uint64_t> in(n_.num_inputs());
  for (std::size_t w = 0; w < words && !remaining.empty(); ++w) {
    for (auto& x : in) x = rng.word();
    total += run_block(in, remaining);
  }
  return total;
}

bool FaultSimulator::detects(const BitVec& pattern, const Fault& f) {
  sim_.broadcast_inputs(pattern);
  sim_.run();
  return block_detects(f, slot_state());
}

}  // namespace orap
