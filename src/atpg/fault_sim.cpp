#include "atpg/fault_sim.h"

#include <algorithm>

#include "util/parallel.h"
#include "util/simd.h"

namespace orap {

namespace {
// Below this many pending faults the pool dispatch overhead outweighs the
// propagation work; grain keeps per-task work substantial above it.
constexpr std::size_t kParallelFaultThreshold = 256;
constexpr std::size_t kFaultGrain = 64;
}  // namespace

FaultSimulator::FaultSimulator(const Netlist& n, std::size_t block_words)
    : n_(n),
      w_(block_words == 0 ? 1 : block_words),
      sim_(n, block_words),
      fanouts_(n.num_gates()),
      is_po_(n.num_gates(), 0) {
  for (GateId g = 0; g < n.num_gates(); ++g)
    for (const GateId f : n.fanins(g)) fanouts_[f].push_back(g);
  for (const auto& po : n.outputs()) is_po_[po.gate] = 1;
  val_ = sim_.values();
  states_.resize(parallel_threads());
}

FaultSimulator::PropState& FaultSimulator::slot_state() {
  const std::size_t slot = parallel_slot();
  if (slot >= states_.size()) states_.resize(slot + 1);  // serial context only
  if (!states_[slot])
    states_[slot] = std::make_unique<PropState>(n_.num_gates(), w_);
  return *states_[slot];
}

void FaultSimulator::faulty_site_value(const Fault& f, PropState& st) const {
  const std::uint64_t stuck = f.stuck_value ? ~0ULL : 0ULL;
  if (f.pin < 0) {
    for (std::size_t j = 0; j < w_; ++j) st.site_buf[j] = stuck;
    return;
  }
  // Input-pin fault: re-evaluate the gate with that pin's block forced.
  const auto fi = n_.fanins(f.gate);
  st.fanin_buf.resize(fi.size() * w_);
  st.ptr_buf.resize(fi.size());
  for (std::size_t i = 0; i < fi.size(); ++i) {
    std::uint64_t* blk = &st.fanin_buf[i * w_];
    const std::uint64_t* src = &val_[fi[i] * w_];
    for (std::size_t j = 0; j < w_; ++j) blk[j] = src[j];
    st.ptr_buf[i] = blk;
  }
  std::uint64_t* pin_blk = &st.fanin_buf[static_cast<std::size_t>(f.pin) * w_];
  for (std::size_t j = 0; j < w_; ++j) pin_blk[j] = stuck;
  eval_gate_block(n_.type(f.gate), st.ptr_buf.data(), fi.size(),
                  st.site_buf.data(), w_);
}

bool FaultSimulator::propagate(const Fault& f, PropState& st) const {
  const std::size_t w = w_;
  if (simd::eq(st.site_buf.data(), &val_[f.gate * w], w))
    return false;  // fault not excited in any lane
  ++st.epoch;
  st.stamp[f.gate] = st.epoch;
  std::uint64_t* site = &st.faulty_val[f.gate * w];
  for (std::size_t j = 0; j < w; ++j) site[j] = st.site_buf[j];
  std::uint64_t detect = 0;
  if (is_po_[f.gate])
    for (std::size_t j = 0; j < w; ++j) detect |= site[j] ^ val_[f.gate * w + j];

  auto block_of = [&st, this, w](GateId g) -> const std::uint64_t* {
    return st.stamp[g] == st.epoch ? &st.faulty_val[g * w] : &val_[g * w];
  };

  // Min-heap over gate ids = topological processing order; each gate is
  // evaluated once (fanouts always have larger ids). The heap vector is
  // reused across faults — no allocation in the steady state.
  auto& heap = st.heap;
  heap.clear();
  const auto cmp = std::greater<GateId>();
  auto push_fanouts = [&](GateId g) {
    for (const GateId q : fanouts_[g]) {
      if (st.queued_stamp[q] == st.epoch) continue;
      st.queued_stamp[q] = st.epoch;
      heap.push_back(q);
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  };
  push_fanouts(f.gate);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const GateId g = heap.back();
    heap.pop_back();
    const auto fi = n_.fanins(g);
    st.ptr_buf.resize(fi.size());
    for (std::size_t i = 0; i < fi.size(); ++i)
      st.ptr_buf[i] = block_of(fi[i]);
    // Evaluate straight into g's overlay block (fanins have smaller ids,
    // so no aliasing); the stamp decides whether it is ever read.
    std::uint64_t* nv = &st.faulty_val[g * w];
    eval_gate_block(n_.type(g), st.ptr_buf.data(), fi.size(), nv, w);
    if (simd::eq(nv, &val_[g * w], w)) {
      // Fault effect dies here; the overlay now holds the clean value, so
      // a stale stamp from an earlier epoch reading it stays correct.
      continue;
    }
    st.stamp[g] = st.epoch;
    if (is_po_[g])
      for (std::size_t j = 0; j < w; ++j) detect |= nv[j] ^ val_[g * w + j];
    push_fanouts(g);
  }
  return detect != 0;
}

std::size_t FaultSimulator::run_block(
    std::span<const std::uint64_t> input_words, std::vector<Fault>& remaining) {
  ORAP_CHECK(input_words.size() == n_.num_inputs() * w_);
  for (std::size_t i = 0; i < n_.num_inputs(); ++i)
    sim_.set_input_block(i, input_words.subspan(i * w_, w_));
  sim_.run();

  const std::size_t nf = remaining.size();
  if (nf < kParallelFaultThreshold || parallel_threads() == 1 ||
      in_parallel_region()) {
    // Serial path: same stable compaction as the parallel merge below.
    PropState& st = slot_state();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < nf; ++i)
      if (!block_detects(remaining[i], st)) remaining[keep++] = remaining[i];
    remaining.resize(keep);
    return nf - keep;
  }

  if (states_.size() < parallel_threads()) states_.resize(parallel_threads());
  detected_.assign(nf, 0);
  parallel_for_chunks(kFaultGrain, nf,
                      [&](std::size_t b, std::size_t e, std::size_t) {
                        PropState& st = slot_state();
                        for (std::size_t i = b; i < e; ++i)
                          if (block_detects(remaining[i], st))
                            detected_[i] = 1;
                      });
  // Deterministic merge: compact survivors in their original order.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < nf; ++i)
    if (!detected_[i]) remaining[keep++] = remaining[i];
  remaining.resize(keep);
  return nf - keep;
}

std::size_t FaultSimulator::run_random(std::size_t words, Rng& rng,
                                       std::vector<Fault>& remaining) {
  std::size_t total = 0;
  std::vector<std::uint64_t> in(n_.num_inputs() * w_);
  std::size_t done = 0;
  while (done < words && !remaining.empty()) {
    const std::size_t take = std::min(w_, words - done);
    // Word-major draw order: the global rng stream matches a width-1 run
    // over the same word budget.
    for (std::size_t w = 0; w < take; ++w)
      for (std::size_t i = 0; i < n_.num_inputs(); ++i)
        in[i * w_ + w] = rng.word();
    // Pad a partial tail block by repeating its first word: a duplicated
    // pattern detects exactly what the original does, so the detected set
    // is unchanged.
    for (std::size_t w = take; w < w_; ++w)
      for (std::size_t i = 0; i < n_.num_inputs(); ++i)
        in[i * w_ + w] = in[i * w_];
    total += run_block(in, remaining);
    done += take;
  }
  return total;
}

bool FaultSimulator::detects(const BitVec& pattern, const Fault& f) {
  sim_.broadcast_inputs(pattern);
  sim_.run();
  return block_detects(f, slot_state());
}

}  // namespace orap
