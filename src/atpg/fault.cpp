#include "atpg/fault.h"

#include <sstream>

namespace orap {

std::string fault_name(const Netlist& n, const Fault& f) {
  std::ostringstream os;
  const std::string& nm = n.gate_name(f.gate);
  os << (nm.empty() ? "g" + std::to_string(f.gate) : nm);
  if (f.pin >= 0) os << ".in" << f.pin;
  os << "/sa" << (f.stuck_value ? 1 : 0);
  return os.str();
}

std::vector<Fault> enumerate_faults(const Netlist& n) {
  const auto fo = [&] {
    std::vector<std::uint32_t> f(n.num_gates(), 0);
    for (GateId g = 0; g < n.num_gates(); ++g)
      for (const GateId x : n.fanins(g)) ++f[x];
    for (const auto& po : n.outputs()) ++f[po.gate];
    return f;
  }();

  std::vector<Fault> faults;
  for (GateId g = 0; g < n.num_gates(); ++g) {
    const GateType t = n.type(g);
    if (t == GateType::kConst0 || t == GateType::kConst1) continue;
    if (fo[g] == 0 && t != GateType::kInput) continue;  // dangling
    // Output (stem) faults.
    faults.push_back({g, -1, false});
    faults.push_back({g, -1, true});
    // Input (branch) faults, only where the driver has fanout > 1 (a
    // single-fanout connection is equivalent to the stem).
    if (!gate_type_is_logic(t)) continue;
    const auto fi = n.fanins(g);
    for (std::size_t p = 0; p < fi.size(); ++p) {
      if (fo[fi[p]] <= 1) continue;
      faults.push_back({g, static_cast<std::int32_t>(p), false});
      faults.push_back({g, static_cast<std::int32_t>(p), true});
    }
  }
  return faults;
}

std::vector<Fault> collapse_faults(const Netlist& n) {
  std::vector<Fault> out;
  for (const Fault& f : enumerate_faults(n)) {
    if (f.pin < 0) {
      out.push_back(f);
      continue;
    }
    const GateType t = n.type(f.gate);
    // Controlling-value input faults are equivalent to an output fault of
    // the same gate; drop them. Inverter/buffer input faults fold into
    // the driver's stem faults (which exist because fanout > 1 here...
    // the branch is still distinct, keep only for multi-fanout drivers —
    // enumerate_faults already guarantees that, so fold equivalences:
    switch (t) {
      case GateType::kAnd:
      case GateType::kNand:
        if (!f.stuck_value) continue;  // input sa0 ~ output sa(0/1)
        break;
      case GateType::kOr:
      case GateType::kNor:
        if (f.stuck_value) continue;  // input sa1 ~ output sa(1/0)
        break;
      default:
        break;  // XOR/XNOR/MUX/NOT/BUF branch faults all kept
    }
    out.push_back(f);
  }
  return out;
}

}  // namespace orap
