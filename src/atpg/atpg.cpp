#include "atpg/atpg.h"

#include "netlist/analysis.h"
#include "sat/cube.h"
#include "sat/encode.h"
#include "util/simd.h"

namespace orap {

namespace {

/// Gates in the transitive fanout of the fault site (including the site).
std::vector<bool> fanout_cone(const Netlist& n, GateId site) {
  std::vector<bool> affected(n.num_gates(), false);
  affected[site] = true;
  for (GateId g = site + 1; g < n.num_gates(); ++g) {
    for (const GateId f : n.fanins(g)) {
      if (affected[f]) {
        affected[g] = true;
        break;
      }
    }
  }
  return affected;
}

/// Persistent-solver ATPG (AtpgOptions::incremental). The good circuit is
/// encoded once at construction; generate() adds only the fault's faulty
/// cone and an activation-guarded miter, solves under the assumption
/// pos(act), and retires the query with a unit ¬act. Everything the solver
/// learned about the good logic — the bulk of every fault query — stays
/// live for the next fault.
class IncrementalAtpg {
 public:
  IncrementalAtpg(const Netlist& n, const AtpgOptions& opts,
                  const std::chrono::steady_clock::time_point* deadline)
      : n_(n), s_(cube_opts(opts)), e_(s_) {
    if (deadline != nullptr) s_.set_deadline(*deadline);
    gvar_.assign(n.num_gates(), sat::Encoder::kNoVar);
    std::vector<sat::Var> fi;
    for (GateId g = 0; g < n.num_gates(); ++g) {
      const GateType t = n.type(g);
      if (t == GateType::kInput) {
        gvar_[g] = s_.new_var();
        continue;
      }
      if (t == GateType::kConst0 || t == GateType::kConst1) {
        gvar_[g] = e_.encode_gate(t, {});
        continue;
      }
      fi.clear();
      for (const GateId x : n.fanins(g)) fi.push_back(gvar_[x]);
      gvar_[g] = e_.encode_gate(t, fi);
    }
    if (opts.preprocess) {
      // Any gate can become a future cone boundary (a faulty-cone fanin),
      // so every gate variable is interface here: elimination is off the
      // table and the pass is subsumption / strengthening only.
      for (const sat::Var v : gvar_)
        if (v != sat::Encoder::kNoVar) s_.freeze(v);
      s_.simplify();
    }
  }

  std::optional<BitVec> generate(const Fault& f, std::int64_t budget,
                                 bool* aborted) {
    *aborted = false;
    const auto affected = fanout_cone(n_, f.gate);
    std::vector<GateId> reachable_pos;
    for (const auto& po : n_.outputs())
      if (affected[po.gate]) reachable_pos.push_back(po.gate);
    if (reachable_pos.empty()) return std::nullopt;  // cannot reach any PO

    // The non-incremental path re-encodes the whole cone of influence per
    // fault; here everything outside the faulty cone rides on the
    // persistent good copy.
    const auto needed = fanin_cone(n_, reachable_pos);
    for (GateId g = 0; g < n_.num_gates(); ++g)
      if (needed[g] && !affected[g]) ++encode_reused_;

    const sat::Var act = s_.new_var();
    const sat::Var stuck = s_.new_var();
    s_.add_clause({sat::Lit(stuck, !f.stuck_value)});

    fvar_.assign(n_.num_gates(), sat::Encoder::kNoVar);
    std::vector<sat::Var> fi;
    for (GateId g = 0; g < n_.num_gates(); ++g) {
      if (!affected[g]) continue;
      if (g == f.gate && f.pin < 0) {
        fvar_[g] = stuck;  // output stuck-at
        continue;
      }
      const GateType t = n_.type(g);
      ORAP_CHECK_MSG(gate_type_is_logic(t),
                     "fault site cone reached a non-logic gate");
      fi.clear();
      const auto fanins = n_.fanins(g);
      for (std::size_t p = 0; p < fanins.size(); ++p) {
        if (g == f.gate && static_cast<std::int32_t>(p) == f.pin)
          fi.push_back(stuck);
        else
          fi.push_back(affected[fanins[p]] ? fvar_[fanins[p]]
                                           : gvar_[fanins[p]]);
      }
      fvar_[g] = e_.encode_gate(t, fi);
    }

    // act -> some affected PO differs.
    std::vector<sat::Lit> any{sat::neg(act)};
    for (const GateId po_gate : reachable_pos)
      any.push_back(
          sat::pos(e_.encode_xor2(gvar_[po_gate], fvar_[po_gate])));
    s_.add_clause(any);

    const std::vector<sat::Lit> assume{sat::pos(act)};
    const auto res = s_.solve(assume, budget);
    // Retire the query: the miter clause (the only act-guarded clause)
    // goes permanently silent; the faulty-cone definitions are satisfiable
    // under any input and stay as dead weight the solver never revisits.
    s_.add_clause({sat::neg(act)});
    if (res == sat::Solver::Result::kUnknown) {
      *aborted = true;
      return std::nullopt;
    }
    if (res == sat::Solver::Result::kUnsat) return std::nullopt;

    BitVec pattern(n_.num_inputs());
    for (std::size_t i = 0; i < n_.num_inputs(); ++i)
      pattern.set(i, s_.model_value(gvar_[n_.inputs()[i]]));
    return pattern;
  }

  sat::SolverStats stats() const { return s_.total_stats(); }
  std::uint64_t encode_reused() const { return encode_reused_; }

 private:
  static sat::CubeOptions cube_opts(const AtpgOptions& opts) {
    sat::CubeOptions co;
    co.depth = opts.cube_depth;
    co.portfolio.size = opts.portfolio_size == 0 ? 1 : opts.portfolio_size;
    return co;
  }

  const Netlist& n_;
  sat::CubeSolver s_;
  sat::Encoder e_;
  std::vector<sat::Var> gvar_;
  std::vector<sat::Var> fvar_;  // per-fault scratch
  std::uint64_t encode_reused_ = 0;
};

}  // namespace

std::optional<BitVec> generate_test(
    const Netlist& n, const Fault& f, std::int64_t conflict_budget,
    bool* aborted_out, std::size_t portfolio_size, bool preprocess,
    std::uint32_t cube_depth, sat::SolverStats* stats_out,
    const std::chrono::steady_clock::time_point* deadline) {
  if (aborted_out != nullptr) *aborted_out = false;
  if (stats_out != nullptr) *stats_out = sat::SolverStats{};

  // Cone of influence: only the fanin support of the POs the fault can
  // reach matters. Everything outside stays unconstrained (and its
  // pattern bits default to 0), which keeps the CNF proportional to the
  // fault's neighbourhood rather than the whole circuit.
  const auto affected = fanout_cone(n, f.gate);
  std::vector<GateId> reachable_pos;
  for (const auto& po : n.outputs())
    if (affected[po.gate]) reachable_pos.push_back(po.gate);
  if (reachable_pos.empty()) return std::nullopt;  // cannot reach any PO
  const auto needed = fanin_cone(n, reachable_pos);

  sat::CubeOptions co;
  co.depth = cube_depth;
  co.portfolio.size = portfolio_size == 0 ? 1 : portfolio_size;
  sat::CubeSolver s(co);
  if (deadline != nullptr) s.set_deadline(*deadline);
  sat::Encoder e(s);

  // Good copy, restricted to the cone of influence.
  std::vector<sat::Var> gvar(n.num_gates(), sat::Encoder::kNoVar);
  for (GateId g = 0; g < n.num_gates(); ++g) {
    if (!needed[g]) continue;
    const GateType t = n.type(g);
    if (t == GateType::kInput) {
      gvar[g] = s.new_var();
      continue;
    }
    if (t == GateType::kConst0 || t == GateType::kConst1) {
      gvar[g] = e.encode_gate(t, {});
      continue;
    }
    std::vector<sat::Var> fi;
    for (const GateId x : n.fanins(g)) fi.push_back(gvar[x]);
    gvar[g] = e.encode_gate(t, fi);
  }

  // Faulty copy: clone only the fault's fanout cone; everything else is
  // shared with the good copy.
  std::vector<sat::Var> fvar(n.num_gates(), sat::Encoder::kNoVar);
  const sat::Var stuck = s.new_var();
  s.add_clause({sat::Lit(stuck, !f.stuck_value)});

  for (GateId g = 0; g < n.num_gates(); ++g) {
    if (!needed[g]) continue;
    if (!affected[g]) {
      fvar[g] = gvar[g];
      continue;
    }
    if (g == f.gate && f.pin < 0) {
      fvar[g] = stuck;  // output stuck-at
      continue;
    }
    const GateType t = n.type(g);
    ORAP_CHECK_MSG(gate_type_is_logic(t),
                   "fault site cone reached a non-logic gate");
    std::vector<sat::Var> fi;
    const auto fanins = n.fanins(g);
    for (std::size_t p = 0; p < fanins.size(); ++p) {
      if (g == f.gate && static_cast<std::int32_t>(p) == f.pin)
        fi.push_back(stuck);
      else
        fi.push_back(fvar[fanins[p]]);
    }
    fvar[g] = e.encode_gate(t, fi);
  }

  // Miter: some affected PO differs.
  std::vector<sat::Lit> any;
  for (const GateId po_gate : reachable_pos)
    any.push_back(sat::pos(e.encode_xor2(gvar[po_gate], fvar[po_gate])));
  s.add_clause(any);

  if (preprocess) {
    // The pattern is read back from the PI variables and the fault site
    // pins the miter: keep them (and the observed POs) out of elimination.
    for (std::size_t i = 0; i < n.num_inputs(); ++i) {
      const GateId in = n.inputs()[i];
      if (gvar[in] != sat::Encoder::kNoVar) s.freeze(gvar[in]);
    }
    s.freeze(stuck);
    for (const GateId po_gate : reachable_pos) {
      s.freeze(gvar[po_gate]);
      s.freeze(fvar[po_gate]);
    }
    s.simplify();
  }

  const auto res = s.solve({}, conflict_budget);
  if (stats_out != nullptr) *stats_out = s.total_stats();
  if (res == sat::Solver::Result::kUnknown) {
    if (aborted_out != nullptr) *aborted_out = true;
    return std::nullopt;
  }
  if (res == sat::Solver::Result::kUnsat) return std::nullopt;

  BitVec pattern(n.num_inputs());
  for (std::size_t i = 0; i < n.num_inputs(); ++i) {
    const GateId in = n.inputs()[i];
    pattern.set(i, gvar[in] != sat::Encoder::kNoVar && s.model_value(gvar[in]));
  }
  return pattern;
}

AtpgResult run_atpg(const Netlist& n, const AtpgOptions& opts) {
  AtpgResult result;
  std::vector<Fault> remaining = collapse_faults(n);
  result.total_faults = remaining.size();

  const std::size_t sim_w =
      opts.sim_block_words == 0 ? simd::kBlockWords : opts.sim_block_words;
  FaultSimulator fsim(n, sim_w);
  Rng rng(opts.seed);
  {
    const auto t0 = std::chrono::steady_clock::now();
    result.detected_random =
        fsim.run_random(opts.random_words, rng, remaining);
    result.random_sim_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    result.random_sim_patterns = opts.random_words * 64;
  }

  std::chrono::steady_clock::time_point deadline{};
  const bool has_deadline = opts.deadline_ms >= 0;
  if (has_deadline)
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(opts.deadline_ms);

  std::optional<IncrementalAtpg> inc;
  if (opts.incremental)
    inc.emplace(n, opts, has_deadline ? &deadline : nullptr);

  // Deterministic phase: SAT per leftover fault.
  std::vector<std::uint64_t> resim_words;
  while (!remaining.empty()) {
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      // Out of wall clock: every unattempted fault counts as aborted, the
      // same class a per-fault budget exhaustion lands in.
      result.aborted += remaining.size();
      remaining.clear();
      break;
    }
    const Fault f = remaining.back();
    remaining.pop_back();
    bool aborted = false;
    std::optional<BitVec> pattern;
    if (inc.has_value()) {
      pattern = inc->generate(f, opts.conflict_budget, &aborted);
    } else {
      sat::SolverStats qstats;
      pattern = generate_test(n, f, opts.conflict_budget, &aborted,
                              opts.portfolio_size, opts.preprocess,
                              opts.cube_depth, &qstats,
                              has_deadline ? &deadline : nullptr);
      result.cubes += qstats.cubes;
      result.cubes_refuted += qstats.cubes_refuted;
      result.cube_wall_ms += qstats.cube_wall_ms;
      result.solver_rounds += qstats.incremental_rounds;
      result.clauses_carried += qstats.clauses_carried;
    }
    if (!pattern.has_value()) {
      if (aborted)
        ++result.aborted;
      else
        ++result.redundant;
      continue;
    }
    ORAP_CHECK_MSG(fsim.detects(*pattern, f),
                   "ATPG produced a pattern that does not detect its fault");
    ++result.detected_atpg;
    result.patterns.push_back(*pattern);
    if (opts.resimulate_new_patterns && !remaining.empty()) {
      // The new pattern often detects other pending faults too. Every lane
      // of every block carries the same pattern — duplicates can't detect
      // anything a single lane wouldn't.
      resim_words.assign(n.num_inputs() * sim_w, 0);
      for (std::size_t i = 0; i < n.num_inputs(); ++i)
        if (pattern->get(i))
          std::fill_n(resim_words.begin() + i * sim_w, sim_w, ~0ULL);
      result.detected_atpg += fsim.run_block(resim_words, remaining);
    }
  }
  if (inc.has_value()) {
    // One persistent solver: its totals ARE the phase totals.
    const sat::SolverStats st = inc->stats();
    result.cubes = st.cubes;
    result.cubes_refuted = st.cubes_refuted;
    result.cube_wall_ms = st.cube_wall_ms;
    result.solver_rounds = st.incremental_rounds;
    result.clauses_carried = st.clauses_carried;
    result.encode_reused = inc->encode_reused();
  }
  return result;
}

}  // namespace orap
