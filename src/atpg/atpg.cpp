#include "atpg/atpg.h"

#include "netlist/analysis.h"
#include "sat/cube.h"
#include "sat/encode.h"

namespace orap {

namespace {

/// Gates in the transitive fanout of the fault site (including the site).
std::vector<bool> fanout_cone(const Netlist& n, GateId site) {
  std::vector<bool> affected(n.num_gates(), false);
  affected[site] = true;
  for (GateId g = site + 1; g < n.num_gates(); ++g) {
    for (const GateId f : n.fanins(g)) {
      if (affected[f]) {
        affected[g] = true;
        break;
      }
    }
  }
  return affected;
}

}  // namespace

std::optional<BitVec> generate_test(
    const Netlist& n, const Fault& f, std::int64_t conflict_budget,
    bool* aborted_out, std::size_t portfolio_size, bool preprocess,
    std::uint32_t cube_depth, sat::SolverStats* stats_out,
    const std::chrono::steady_clock::time_point* deadline) {
  if (aborted_out != nullptr) *aborted_out = false;
  if (stats_out != nullptr) *stats_out = sat::SolverStats{};

  // Cone of influence: only the fanin support of the POs the fault can
  // reach matters. Everything outside stays unconstrained (and its
  // pattern bits default to 0), which keeps the CNF proportional to the
  // fault's neighbourhood rather than the whole circuit.
  const auto affected = fanout_cone(n, f.gate);
  std::vector<GateId> reachable_pos;
  for (const auto& po : n.outputs())
    if (affected[po.gate]) reachable_pos.push_back(po.gate);
  if (reachable_pos.empty()) return std::nullopt;  // cannot reach any PO
  const auto needed = fanin_cone(n, reachable_pos);

  sat::CubeOptions co;
  co.depth = cube_depth;
  co.portfolio.size = portfolio_size == 0 ? 1 : portfolio_size;
  sat::CubeSolver s(co);
  if (deadline != nullptr) s.set_deadline(*deadline);
  sat::Encoder e(s);

  // Good copy, restricted to the cone of influence.
  std::vector<sat::Var> gvar(n.num_gates(), sat::Encoder::kNoVar);
  for (GateId g = 0; g < n.num_gates(); ++g) {
    if (!needed[g]) continue;
    const GateType t = n.type(g);
    if (t == GateType::kInput) {
      gvar[g] = s.new_var();
      continue;
    }
    if (t == GateType::kConst0 || t == GateType::kConst1) {
      gvar[g] = e.encode_gate(t, {});
      continue;
    }
    std::vector<sat::Var> fi;
    for (const GateId x : n.fanins(g)) fi.push_back(gvar[x]);
    gvar[g] = e.encode_gate(t, fi);
  }

  // Faulty copy: clone only the fault's fanout cone; everything else is
  // shared with the good copy.
  std::vector<sat::Var> fvar(n.num_gates(), sat::Encoder::kNoVar);
  const sat::Var stuck = s.new_var();
  s.add_clause({sat::Lit(stuck, !f.stuck_value)});

  for (GateId g = 0; g < n.num_gates(); ++g) {
    if (!needed[g]) continue;
    if (!affected[g]) {
      fvar[g] = gvar[g];
      continue;
    }
    if (g == f.gate && f.pin < 0) {
      fvar[g] = stuck;  // output stuck-at
      continue;
    }
    const GateType t = n.type(g);
    ORAP_CHECK_MSG(gate_type_is_logic(t),
                   "fault site cone reached a non-logic gate");
    std::vector<sat::Var> fi;
    const auto fanins = n.fanins(g);
    for (std::size_t p = 0; p < fanins.size(); ++p) {
      if (g == f.gate && static_cast<std::int32_t>(p) == f.pin)
        fi.push_back(stuck);
      else
        fi.push_back(fvar[fanins[p]]);
    }
    fvar[g] = e.encode_gate(t, fi);
  }

  // Miter: some affected PO differs.
  std::vector<sat::Lit> any;
  for (const GateId po_gate : reachable_pos)
    any.push_back(sat::pos(e.encode_xor2(gvar[po_gate], fvar[po_gate])));
  s.add_clause(any);

  if (preprocess) {
    // The pattern is read back from the PI variables and the fault site
    // pins the miter: keep them (and the observed POs) out of elimination.
    for (std::size_t i = 0; i < n.num_inputs(); ++i) {
      const GateId in = n.inputs()[i];
      if (gvar[in] != sat::Encoder::kNoVar) s.freeze(gvar[in]);
    }
    s.freeze(stuck);
    for (const GateId po_gate : reachable_pos) {
      s.freeze(gvar[po_gate]);
      s.freeze(fvar[po_gate]);
    }
    s.simplify();
  }

  const auto res = s.solve({}, conflict_budget);
  if (stats_out != nullptr) *stats_out = s.total_stats();
  if (res == sat::Solver::Result::kUnknown) {
    if (aborted_out != nullptr) *aborted_out = true;
    return std::nullopt;
  }
  if (res == sat::Solver::Result::kUnsat) return std::nullopt;

  BitVec pattern(n.num_inputs());
  for (std::size_t i = 0; i < n.num_inputs(); ++i) {
    const GateId in = n.inputs()[i];
    pattern.set(i, gvar[in] != sat::Encoder::kNoVar && s.model_value(gvar[in]));
  }
  return pattern;
}

AtpgResult run_atpg(const Netlist& n, const AtpgOptions& opts) {
  AtpgResult result;
  std::vector<Fault> remaining = collapse_faults(n);
  result.total_faults = remaining.size();

  FaultSimulator fsim(n);
  Rng rng(opts.seed);
  result.detected_random = fsim.run_random(opts.random_words, rng, remaining);

  std::chrono::steady_clock::time_point deadline{};
  const bool has_deadline = opts.deadline_ms >= 0;
  if (has_deadline)
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(opts.deadline_ms);

  // Deterministic phase: SAT per leftover fault.
  while (!remaining.empty()) {
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      // Out of wall clock: every unattempted fault counts as aborted, the
      // same class a per-fault budget exhaustion lands in.
      result.aborted += remaining.size();
      remaining.clear();
      break;
    }
    const Fault f = remaining.back();
    remaining.pop_back();
    bool aborted = false;
    sat::SolverStats qstats;
    const auto pattern = generate_test(
        n, f, opts.conflict_budget, &aborted, opts.portfolio_size,
        opts.preprocess, opts.cube_depth, &qstats,
        has_deadline ? &deadline : nullptr);
    result.cubes += qstats.cubes;
    result.cubes_refuted += qstats.cubes_refuted;
    result.cube_wall_ms += qstats.cube_wall_ms;
    if (!pattern.has_value()) {
      if (aborted)
        ++result.aborted;
      else
        ++result.redundant;
      continue;
    }
    ORAP_CHECK_MSG(fsim.detects(*pattern, f),
                   "ATPG produced a pattern that does not detect its fault");
    ++result.detected_atpg;
    result.patterns.push_back(*pattern);
    if (opts.resimulate_new_patterns && !remaining.empty()) {
      // The new pattern often detects other pending faults too.
      std::vector<std::uint64_t> words(n.num_inputs());
      for (std::size_t i = 0; i < n.num_inputs(); ++i)
        words[i] = pattern->get(i) ? ~0ULL : 0ULL;
      result.detected_atpg += fsim.run_block(words, remaining);
    }
  }
  return result;
}

}  // namespace orap
