#pragma once
// Single stuck-at fault model with structural equivalence collapsing.
//
// Faults are attached to gate *outputs* and to gate *inputs* (a fanout
// branch can carry a fault independently of its stem). Collapsing merges
// the classic equivalences (e.g. an AND's output s-a-0 with any input
// s-a-0), reducing the fault list the way Atalanta does before ATPG.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace orap {

struct Fault {
  GateId gate = kNoGate;     // fault site
  std::int32_t pin = -1;     // -1 = output fault, >=0 = input pin index
  bool stuck_value = false;  // stuck-at-0 or stuck-at-1

  bool operator==(const Fault&) const = default;
};

std::string fault_name(const Netlist& n, const Fault& f);

/// All uncollapsed faults: two per gate output + two per gate input pin
/// (fanout branches only — single-fanout connections fold into the stem).
std::vector<Fault> enumerate_faults(const Netlist& n);

/// Equivalence-collapsed fault list (a subset of enumerate_faults):
///  * AND/NAND: input s-a-0 ~ output s-a-0/1; keep input s-a-1 branches.
///  * OR/NOR:   input s-a-1 ~ output s-a-1/0; keep input s-a-0 branches.
///  * NOT/BUF:  input faults ~ output faults.
///  * XOR/XNOR/MUX: no structural collapsing.
std::vector<Fault> collapse_faults(const Netlist& n);

}  // namespace orap
