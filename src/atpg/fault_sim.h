#pragma once
// HOPE-style bit-parallel fault simulator: 64 patterns per pass,
// event-driven forward propagation from the fault site, fault dropping.
// This is the pseudorandom phase of the Table II flow (the paper runs
// HOPE before Atalanta on the largest circuits).

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/fault.h"
#include "netlist/simulator.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace orap {

class FaultSimulator {
 public:
  explicit FaultSimulator(const Netlist& n);

  /// Simulates one 64-pattern block (one word per input) against
  /// `remaining`; detected faults are removed (fault dropping). Returns
  /// the number of faults detected by this block.
  std::size_t run_block(std::span<const std::uint64_t> input_words,
                        std::vector<Fault>& remaining);

  /// Convenience: `words` random blocks; returns total detected.
  std::size_t run_random(std::size_t words, Rng& rng,
                         std::vector<Fault>& remaining);

  /// Does `pattern` (one bit per input) detect `f`? (Used to validate
  /// ATPG-generated patterns.)
  bool detects(const BitVec& pattern, const Fault& f);

  const Netlist& netlist() const { return n_; }

 private:
  /// Faulty value of the fault-site gate under the good values in val_
  /// (0/1 lanes where the fault changes the site's output).
  std::uint64_t faulty_site_value(const Fault& f) const;

  /// Propagates a faulty value at f.gate through the fanout cone;
  /// returns the OR over POs of (good ^ faulty) — the detect mask.
  std::uint64_t propagate(const Fault& f, std::uint64_t site_value);

  const Netlist& n_;
  Simulator sim_;
  std::span<const std::uint64_t> val_;      // good values (sim_'s buffer)
  std::vector<std::vector<GateId>> fanouts_;
  std::vector<std::uint8_t> is_po_;
  // Epoch-stamped overlay of faulty values (avoids clearing per fault).
  std::vector<std::uint64_t> faulty_val_;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> queued_stamp_;
  std::uint32_t epoch_ = 0;
};

}  // namespace orap
