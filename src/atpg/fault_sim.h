#pragma once
// HOPE-style bit-parallel fault simulator: 64 patterns per pass,
// event-driven forward propagation from the fault site, fault dropping.
// This is the pseudorandom phase of the Table II flow (the paper runs
// HOPE before Atalanta on the largest circuits).
//
// Parallel execution: every fault's detect decision depends only on the
// shared good-machine values of the current block, so run_block shards the
// remaining-fault list across the thread pool. Each worker slot owns a
// private propagation overlay (PropState) over the one shared good
// simulation; detected faults are merged by compacting the list in its
// original order, so the result is bit-identical at any thread count.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "atpg/fault.h"
#include "netlist/simulator.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace orap {

class FaultSimulator {
 public:
  explicit FaultSimulator(const Netlist& n);

  /// Simulates one 64-pattern block (one word per input) against
  /// `remaining`; detected faults are removed (fault dropping, order of
  /// the survivors preserved). Returns the number detected by this block.
  std::size_t run_block(std::span<const std::uint64_t> input_words,
                        std::vector<Fault>& remaining);

  /// Convenience: `words` random blocks; returns total detected.
  std::size_t run_random(std::size_t words, Rng& rng,
                         std::vector<Fault>& remaining);

  /// Does `pattern` (one bit per input) detect `f`? (Used to validate
  /// ATPG-generated patterns.)
  bool detects(const BitVec& pattern, const Fault& f);

  const Netlist& netlist() const { return n_; }

 private:
  /// Per-worker propagation scratch: an epoch-stamped overlay of faulty
  /// values (avoids clearing per fault) plus reusable heap/fanin buffers
  /// so the hot loop never allocates.
  struct PropState {
    std::vector<std::uint64_t> faulty_val;
    std::vector<std::uint32_t> stamp;
    std::vector<std::uint32_t> queued_stamp;
    std::uint32_t epoch = 0;
    std::vector<GateId> heap;           // binary min-heap over gate ids
    std::vector<std::uint64_t> fanin_buf;

    explicit PropState(std::size_t num_gates)
        : faulty_val(num_gates, 0),
          stamp(num_gates, 0),
          queued_stamp(num_gates, 0) {}
  };

  /// Faulty value of the fault-site gate under the good values in val_
  /// (0/1 lanes where the fault changes the site's output).
  std::uint64_t faulty_site_value(const Fault& f, PropState& st) const;

  /// Propagates a faulty value at f.gate through the fanout cone;
  /// returns the OR over POs of (good ^ faulty) — the detect mask.
  std::uint64_t propagate(const Fault& f, std::uint64_t site_value,
                          PropState& st) const;

  /// True iff the shared good-machine block detects `f` (pure w.r.t.
  /// shared state; writes only to `st`).
  bool block_detects(const Fault& f, PropState& st) const {
    return propagate(f, faulty_site_value(f, st), st) != 0;
  }

  /// Scratch for the pool slot of the calling thread (lazily created).
  PropState& slot_state();

  const Netlist& n_;
  Simulator sim_;
  std::span<const std::uint64_t> val_;      // good values (sim_'s buffer)
  std::vector<std::vector<GateId>> fanouts_;
  std::vector<std::uint8_t> is_po_;
  std::vector<std::unique_ptr<PropState>> states_;  // one per pool slot
  std::vector<std::uint8_t> detected_;              // run_block scratch
};

}  // namespace orap
