#pragma once
// HOPE-style bit-parallel fault simulator: 64 patterns per word,
// event-driven forward propagation from the fault site, fault dropping.
// This is the pseudorandom phase of the Table II flow (the paper runs
// HOPE before Atalanta on the largest circuits).
//
// Block mode: constructed with block_words = W > 1 every pass carries
// 64*W patterns (W words per gate, evaluated as one contiguous block —
// see netlist/simulator.h). Detection is the union over the block's
// lanes, so a W-wide pass detects exactly the faults the same patterns
// detect one word at a time; only the pattern count per pass changes.
//
// Parallel execution: every fault's detect decision depends only on the
// shared good-machine values of the current block, so run_block shards the
// remaining-fault list across the thread pool. Each worker slot owns a
// private propagation overlay (PropState) over the one shared good
// simulation; detected faults are merged by compacting the list in its
// original order, so the result is bit-identical at any thread count.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "atpg/fault.h"
#include "netlist/simulator.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace orap {

class FaultSimulator {
 public:
  explicit FaultSimulator(const Netlist& n, std::size_t block_words = 1);

  std::size_t block_words() const { return w_; }

  /// Simulates one block (block_words() words per input, input-major)
  /// against `remaining`; detected faults are removed (fault dropping,
  /// order of the survivors preserved). Returns the number detected by
  /// this block.
  std::size_t run_block(std::span<const std::uint64_t> input_words,
                        std::vector<Fault>& remaining);

  /// Convenience: `words` random 64-pattern words (drawn in the same
  /// global order at any block width; a partial tail block is padded with
  /// repeats of its first word, which cannot detect anything new); returns
  /// total detected. Early exit on an emptied fault list is per block, so
  /// rng consumption — but never the detected set — may differ between
  /// block widths.
  std::size_t run_random(std::size_t words, Rng& rng,
                         std::vector<Fault>& remaining);

  /// Does `pattern` (one bit per input) detect `f`? (Used to validate
  /// ATPG-generated patterns.)
  bool detects(const BitVec& pattern, const Fault& f);

  const Netlist& netlist() const { return n_; }

 private:
  /// Per-worker propagation scratch: an epoch-stamped overlay of faulty
  /// value blocks (avoids clearing per fault) plus reusable heap/fanin
  /// buffers so the hot loop never allocates.
  struct PropState {
    std::vector<std::uint64_t> faulty_val;  // num_gates * w blocks
    std::vector<std::uint32_t> stamp;
    std::vector<std::uint32_t> queued_stamp;
    std::uint32_t epoch = 0;
    std::vector<GateId> heap;           // binary min-heap over gate ids
    std::vector<std::uint64_t> fanin_buf;   // fanin blocks, fanin-major
    std::vector<const std::uint64_t*> ptr_buf;
    std::vector<std::uint64_t> site_buf;    // faulty site value block

    PropState(std::size_t num_gates, std::size_t w)
        : faulty_val(num_gates * w, 0),
          stamp(num_gates, 0),
          queued_stamp(num_gates, 0),
          site_buf(w, 0) {}
  };

  /// Faulty value block of the fault-site gate under the good values in
  /// val_ (written to st.site_buf).
  void faulty_site_value(const Fault& f, PropState& st) const;

  /// Propagates the faulty block in st.site_buf through the fanout cone;
  /// returns true iff some PO lane differs from the good machine.
  bool propagate(const Fault& f, PropState& st) const;

  /// True iff the shared good-machine block detects `f` (pure w.r.t.
  /// shared state; writes only to `st`).
  bool block_detects(const Fault& f, PropState& st) const {
    faulty_site_value(f, st);
    return propagate(f, st);
  }

  /// Scratch for the pool slot of the calling thread (lazily created).
  PropState& slot_state();

  const Netlist& n_;
  std::size_t w_ = 1;
  Simulator sim_;
  std::span<const std::uint64_t> val_;      // good blocks (sim_'s buffer)
  std::vector<std::vector<GateId>> fanouts_;
  std::vector<std::uint8_t> is_po_;
  std::vector<std::unique_ptr<PropState>> states_;  // one per pool slot
  std::vector<std::uint8_t> detected_;              // run_block scratch
};

}  // namespace orap
