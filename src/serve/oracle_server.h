#pragma once
// Server side of oracle-as-a-service: exposes any Oracle — including a
// full fault-decorator stack from attacks/faulty_oracle.h — over one
// Transport speaking the serve/wire.h protocol.
//
// The server processes request frames strictly in order on one
// connection, modelling what it stands in for: a single physical chip on
// a single tester session. Configurable per-round-trip latency (fixed +
// seeded jitter) is charged once per kQueryBatch frame, which is what
// makes the batching-vs-latency tradeoff real: B batched queries pay one
// round trip, B unbatched queries pay B.

#include <atomic>
#include <cstdint>

#include "attacks/oracle.h"
#include "serve/transport.h"
#include "util/rng.h"

namespace orap::serve {

struct OracleServerOptions {
  /// Injected per-request-frame latency (microseconds) plus a seeded
  /// jitter draw in [0, jitter_us]. Zero = off.
  std::uint64_t latency_us = 0;
  std::uint64_t jitter_us = 0;
  std::uint64_t jitter_seed = 1;
  /// Graceful drain: when *stop goes true (a SIGTERM/SIGINT handler sets
  /// it), serve() finishes the frame in flight and returns as an orderly
  /// end. Pair with FdTransport::set_interrupt_flag so a read blocked on
  /// an idle client unwinds too. nullptr disables the check.
  const std::atomic<bool>* stop = nullptr;
};

/// Per-connection error isolation: serve() handles exactly one client and
/// reports how it ended; a malformed, corrupted, or chaos-killed client
/// tears down that one connection — the caller's accept loop (and every
/// other client it serves) keeps running. Nothing a peer sends can throw
/// out of serve(): the wire decoders reject rather than trust, and a frame
/// that fails its CRC is a protocol error, not an oracle call.
class OracleServer {
 public:
  OracleServer(Oracle& oracle, const OracleServerOptions& opts = {});

  /// Serves one connection until kShutdown, EOF, drain, or a protocol
  /// error. Returns true on an orderly end (shutdown, EOF, or drain),
  /// false when the peer broke the protocol (a kError frame is sent first
  /// when the stream still works).
  bool serve(Transport& t);

  std::uint64_t frames_served() const { return frames_; }
  std::uint64_t queries_served() const { return queries_; }
  std::uint64_t connections_served() const { return connections_; }
  /// Connections torn down for torn/corrupt/malformed traffic.
  std::uint64_t protocol_errors() const { return protocol_errors_; }

 private:
  Oracle& oracle_;
  OracleServerOptions opts_;
  Rng jitter_rng_;
  std::uint64_t frames_ = 0;
  std::uint64_t queries_ = 0;
  std::uint64_t connections_ = 0;
  std::uint64_t protocol_errors_ = 0;
};

}  // namespace orap::serve
