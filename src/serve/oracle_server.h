#pragma once
// Server side of oracle-as-a-service: exposes any Oracle — including a
// full fault-decorator stack from attacks/faulty_oracle.h — over one
// Transport speaking the serve/wire.h protocol.
//
// The server processes request frames strictly in order on one
// connection, modelling what it stands in for: a single physical chip on
// a single tester session. Configurable per-round-trip latency (fixed +
// seeded jitter) is charged once per kQueryBatch frame, which is what
// makes the batching-vs-latency tradeoff real: B batched queries pay one
// round trip, B unbatched queries pay B.

#include <cstdint>

#include "attacks/oracle.h"
#include "serve/transport.h"
#include "util/rng.h"

namespace orap::serve {

struct OracleServerOptions {
  /// Injected per-request-frame latency (microseconds) plus a seeded
  /// jitter draw in [0, jitter_us]. Zero = off.
  std::uint64_t latency_us = 0;
  std::uint64_t jitter_us = 0;
  std::uint64_t jitter_seed = 1;
};

class OracleServer {
 public:
  OracleServer(Oracle& oracle, const OracleServerOptions& opts = {});

  /// Serves one connection until kShutdown, EOF, or a protocol error.
  /// Returns true on an orderly end (shutdown or EOF), false when the
  /// peer broke the protocol (a kError frame is sent first when the
  /// stream still works).
  bool serve(Transport& t);

  std::uint64_t frames_served() const { return frames_; }
  std::uint64_t queries_served() const { return queries_; }

 private:
  Oracle& oracle_;
  OracleServerOptions opts_;
  Rng jitter_rng_;
  std::uint64_t frames_ = 0;
  std::uint64_t queries_ = 0;
};

}  // namespace orap::serve
