#include "serve/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace orap::serve {

namespace {

void close_quiet(int fd) {
  if (fd >= 0) {
    int rc;
    do {
      rc = ::close(fd);
    } while (rc != 0 && errno == EINTR);
  }
}

}  // namespace

// --- FdTransport ------------------------------------------------------------

FdTransport::FdTransport(int read_fd, int write_fd, int timeout_ms,
                         bool is_socket)
    : rfd_(read_fd),
      wfd_(write_fd),
      timeout_ms_(timeout_ms),
      is_socket_(is_socket) {}

FdTransport::~FdTransport() {
  close_quiet(rfd_);
  if (wfd_ != rfd_) close_quiet(wfd_);
}

bool FdTransport::wait_ready(bool for_read) {
  if (timeout_ms_ < 0) return true;
  struct pollfd p;
  p.fd = for_read ? rfd_ : wfd_;
  p.events = for_read ? POLLIN : POLLOUT;
  p.revents = 0;
  int rc;
  do {
    rc = ::poll(&p, 1, timeout_ms_);
  } while (rc < 0 && errno == EINTR && !(for_read && interrupted()));
  // POLLHUP/POLLERR still let the read/write run and report definitively.
  return rc > 0;
}

bool FdTransport::read_full(void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    if (interrupted()) return false;
    if (!wait_ready(/*for_read=*/true)) return false;
    const ssize_t got = is_socket_ ? ::recv(rfd_, p, n, 0) : ::read(rfd_, p, n);
    if (got < 0) {
      if (errno == EINTR) {
        if (interrupted()) return false;
        continue;
      }
      return false;
    }
    if (got == 0) return false;  // EOF mid-frame
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool FdTransport::write_full(const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    if (!wait_ready(/*for_read=*/false)) return false;
    const ssize_t put =
        is_socket_ ? ::send(wfd_, p, n, MSG_NOSIGNAL) : ::write(wfd_, p, n);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

// --- TcpListener ------------------------------------------------------------

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  close_quiet(fd_);
  fd_ = -1;
  port_ = 0;
}

bool TcpListener::listen(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd_, 8) != 0) {
    close();
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    close();
    return false;
  }
  port_ = ntohs(addr.sin_port);
  return true;
}

std::unique_ptr<FdTransport> TcpListener::accept(int timeout_ms,
                                                 int io_timeout_ms) {
  if (fd_ < 0) return nullptr;
  if (timeout_ms >= 0) {
    struct pollfd p;
    p.fd = fd_;
    p.events = POLLIN;
    p.revents = 0;
    int rc;
    do {
      rc = ::poll(&p, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) return nullptr;
  }
  int cfd;
  do {
    cfd = ::accept(fd_, nullptr, nullptr);
  } while (cfd < 0 && errno == EINTR);
  if (cfd < 0) return nullptr;
  const int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<FdTransport>(cfd, cfd, io_timeout_ms,
                                       /*is_socket=*/true);
}

std::unique_ptr<FdTransport> tcp_connect(const std::string& host,
                                         std::uint16_t port, int io_timeout_ms,
                                         int connect_timeout_ms) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return nullptr;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  // Non-blocking connect + poll: a host that never answers the SYN (the
  // usual failure for a killed or firewalled server) fails after the
  // caller's deadline instead of the kernel's minutes-long one, which is
  // what lets the reconnect backoff loop make progress.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (connect_timeout_ms >= 0 && flags >= 0)
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && connect_timeout_ms >= 0 && errno == EINPROGRESS) {
    struct pollfd p;
    p.fd = fd;
    p.events = POLLOUT;
    p.revents = 0;
    do {
      rc = ::poll(&p, 1, connect_timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {  // timeout or poll error: give up on this dial
      close_quiet(fd);
      return nullptr;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      close_quiet(fd);
      return nullptr;
    }
    rc = 0;
  }
  if (rc != 0) {
    close_quiet(fd);
    return nullptr;
  }
  if (connect_timeout_ms >= 0 && flags >= 0) ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<FdTransport>(fd, fd, io_timeout_ms,
                                       /*is_socket=*/true);
}

// --- SubprocessTransport ----------------------------------------------------

std::unique_ptr<SubprocessTransport> SubprocessTransport::spawn(
    const std::vector<std::string>& argv, int io_timeout_ms) {
  if (argv.empty()) return nullptr;
  int to_child[2];   // parent writes -> child stdin
  int from_child[2]; // child stdout -> parent reads
  if (::pipe(to_child) != 0) return nullptr;
  if (::pipe(from_child) != 0) {
    close_quiet(to_child[0]);
    close_quiet(to_child[1]);
    return nullptr;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]})
      close_quiet(fd);
    return nullptr;
  }
  if (pid == 0) {
    // Child: wire the pipes to stdin/stdout and exec. Protocol bytes own
    // stdout; the server writes diagnostics to stderr only.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]})
      close_quiet(fd);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv)
      cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    ::_exit(127);
  }
  close_quiet(to_child[0]);
  close_quiet(from_child[1]);
  return std::unique_ptr<SubprocessTransport>(new SubprocessTransport(
      pid, from_child[0], to_child[1], io_timeout_ms));
}

SubprocessTransport::SubprocessTransport(pid_t pid, int read_fd, int write_fd,
                                         int io_timeout_ms)
    : pid_(pid),
      io_(std::make_unique<FdTransport>(read_fd, write_fd, io_timeout_ms)) {}

bool SubprocessTransport::reap() {
  if (reaped_) return exit_clean_;
  io_.reset();  // closing the child's stdin tells it to exit
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid_, &status, 0);
  } while (rc < 0 && errno == EINTR);
  reaped_ = true;
  if (rc < 0) {
    exit_diag_ = "waitpid failed: " + std::string(std::strerror(errno));
  } else if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    exit_clean_ = code == 0;
    exit_diag_ = "exit status " + std::to_string(code);
  } else if (WIFSIGNALED(status)) {
    exit_diag_ = "killed by signal " + std::to_string(WTERMSIG(status));
  } else {
    exit_diag_ = "unknown wait status " + std::to_string(status);
  }
  return exit_clean_;
}

SubprocessTransport::~SubprocessTransport() {
  if (!reap()) {
    // An oracle server that died abnormally is worth a diagnostic even on
    // the teardown path: it is usually the root cause of the kExhausted
    // the attack just reported.
    std::fprintf(stderr, "oracle subprocess (pid %ld): %s\n",
                 static_cast<long>(pid_), exit_diag_.c_str());
  }
}

bool SubprocessTransport::read_full(void* buf, std::size_t n) {
  return io_->read_full(buf, n);
}

bool SubprocessTransport::write_full(const void* buf, std::size_t n) {
  return io_->write_full(buf, n);
}

}  // namespace orap::serve
