#include "serve/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace orap::serve {

namespace {

void close_quiet(int fd) {
  if (fd >= 0) {
    int rc;
    do {
      rc = ::close(fd);
    } while (rc != 0 && errno == EINTR);
  }
}

}  // namespace

// --- FdTransport ------------------------------------------------------------

FdTransport::FdTransport(int read_fd, int write_fd, int timeout_ms,
                         bool is_socket)
    : rfd_(read_fd),
      wfd_(write_fd),
      timeout_ms_(timeout_ms),
      is_socket_(is_socket) {}

FdTransport::~FdTransport() {
  close_quiet(rfd_);
  if (wfd_ != rfd_) close_quiet(wfd_);
}

bool FdTransport::wait_ready(bool for_read) {
  if (timeout_ms_ < 0) return true;
  struct pollfd p;
  p.fd = for_read ? rfd_ : wfd_;
  p.events = for_read ? POLLIN : POLLOUT;
  p.revents = 0;
  int rc;
  do {
    rc = ::poll(&p, 1, timeout_ms_);
  } while (rc < 0 && errno == EINTR);
  // POLLHUP/POLLERR still let the read/write run and report definitively.
  return rc > 0;
}

bool FdTransport::read_full(void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    if (!wait_ready(/*for_read=*/true)) return false;
    const ssize_t got = is_socket_ ? ::recv(rfd_, p, n, 0) : ::read(rfd_, p, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF mid-frame
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool FdTransport::write_full(const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    if (!wait_ready(/*for_read=*/false)) return false;
    const ssize_t put =
        is_socket_ ? ::send(wfd_, p, n, MSG_NOSIGNAL) : ::write(wfd_, p, n);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

// --- TcpListener ------------------------------------------------------------

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  close_quiet(fd_);
  fd_ = -1;
  port_ = 0;
}

bool TcpListener::listen(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd_, 8) != 0) {
    close();
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    close();
    return false;
  }
  port_ = ntohs(addr.sin_port);
  return true;
}

std::unique_ptr<FdTransport> TcpListener::accept(int timeout_ms,
                                                 int io_timeout_ms) {
  if (fd_ < 0) return nullptr;
  if (timeout_ms >= 0) {
    struct pollfd p;
    p.fd = fd_;
    p.events = POLLIN;
    p.revents = 0;
    int rc;
    do {
      rc = ::poll(&p, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) return nullptr;
  }
  int cfd;
  do {
    cfd = ::accept(fd_, nullptr, nullptr);
  } while (cfd < 0 && errno == EINTR);
  if (cfd < 0) return nullptr;
  const int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<FdTransport>(cfd, cfd, io_timeout_ms,
                                       /*is_socket=*/true);
}

std::unique_ptr<FdTransport> tcp_connect(const std::string& host,
                                         std::uint16_t port,
                                         int io_timeout_ms) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return nullptr;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    close_quiet(fd);
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<FdTransport>(fd, fd, io_timeout_ms,
                                       /*is_socket=*/true);
}

// --- SubprocessTransport ----------------------------------------------------

std::unique_ptr<SubprocessTransport> SubprocessTransport::spawn(
    const std::vector<std::string>& argv, int io_timeout_ms) {
  if (argv.empty()) return nullptr;
  int to_child[2];   // parent writes -> child stdin
  int from_child[2]; // child stdout -> parent reads
  if (::pipe(to_child) != 0) return nullptr;
  if (::pipe(from_child) != 0) {
    close_quiet(to_child[0]);
    close_quiet(to_child[1]);
    return nullptr;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]})
      close_quiet(fd);
    return nullptr;
  }
  if (pid == 0) {
    // Child: wire the pipes to stdin/stdout and exec. Protocol bytes own
    // stdout; the server writes diagnostics to stderr only.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]})
      close_quiet(fd);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv)
      cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    ::_exit(127);
  }
  close_quiet(to_child[0]);
  close_quiet(from_child[1]);
  return std::unique_ptr<SubprocessTransport>(new SubprocessTransport(
      pid, from_child[0], to_child[1], io_timeout_ms));
}

SubprocessTransport::SubprocessTransport(pid_t pid, int read_fd, int write_fd,
                                         int io_timeout_ms)
    : pid_(pid),
      io_(std::make_unique<FdTransport>(read_fd, write_fd, io_timeout_ms)) {}

SubprocessTransport::~SubprocessTransport() {
  io_.reset();  // closing the child's stdin tells it to exit
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid_, &status, 0);
  } while (rc < 0 && errno == EINTR);
}

bool SubprocessTransport::read_full(void* buf, std::size_t n) {
  return io_->read_full(buf, n);
}

bool SubprocessTransport::write_full(const void* buf, std::size_t n) {
  return io_->write_full(buf, n);
}

}  // namespace orap::serve
