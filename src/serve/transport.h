#pragma once
// Blocking byte-stream transports for the oracle wire protocol
// (serve/wire.h). Two concrete flavors, matching how a served oracle is
// actually reached:
//
//  * loopback/remote TCP  — TcpListener + tcp_connect + FdTransport,
//  * subprocess stdio     — SubprocessTransport forks the server binary
//                           and speaks the protocol over its stdin/stdout.
//
// FdTransport is deliberately paranoid about POSIX edge cases: every read
// and write loops over partial transfers, retries EINTR, and (with a
// timeout configured) polls before blocking so a hung peer surfaces as a
// clean failure instead of a wedged attack. Socket writes use
// MSG_NOSIGNAL so a vanished peer reports an error rather than raising
// SIGPIPE.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

namespace orap::serve {

/// Blocking, reliable, ordered byte stream (both transports are).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Reads exactly `n` bytes. false on EOF, error, or timeout — the
  /// stream is then unusable (a frame boundary was lost).
  virtual bool read_full(void* buf, std::size_t n) = 0;
  /// Writes exactly `n` bytes; false on error or timeout.
  virtual bool write_full(const void* buf, std::size_t n) = 0;
};

/// Transport over a pair of file descriptors (equal for a socket).
/// Owns and closes them.
class FdTransport final : public Transport {
 public:
  /// `timeout_ms` < 0 blocks forever; otherwise every read/write that
  /// would block for longer fails. `is_socket` selects send/recv with
  /// MSG_NOSIGNAL over read/write.
  FdTransport(int read_fd, int write_fd, int timeout_ms = -1,
              bool is_socket = false);
  ~FdTransport() override;
  FdTransport(const FdTransport&) = delete;
  FdTransport& operator=(const FdTransport&) = delete;

  bool read_full(void* buf, std::size_t n) override;
  bool write_full(const void* buf, std::size_t n) override;

  /// Graceful-drain hook: while *flag is true, reads fail promptly instead
  /// of (re)blocking — a signal handler sets the flag and the EINTR from
  /// the interrupted poll/recv unwinds the serve loop. Writes are left
  /// alone so an in-flight reply still completes. The flag must outlive
  /// the transport; nullptr (the default) disables the check.
  void set_interrupt_flag(const std::atomic<bool>* flag) { intr_ = flag; }

 private:
  bool wait_ready(bool for_read);
  bool interrupted() const {
    return intr_ != nullptr && intr_->load(std::memory_order_relaxed);
  }

  int rfd_;
  int wfd_;
  int timeout_ms_;
  bool is_socket_;
  const std::atomic<bool>* intr_ = nullptr;
};

/// Listening IPv4 socket. Binds 127.0.0.1 only: the protocol carries no
/// authentication, so a served oracle must never be reachable off-host by
/// default.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port —
  /// read it back via port()).
  bool listen(std::uint16_t port);
  std::uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  /// Accepts one connection. `timeout_ms` < 0 blocks forever. Returns a
  /// connected Transport or nullptr.
  std::unique_ptr<FdTransport> accept(int timeout_ms = -1,
                                      int io_timeout_ms = -1);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to host:port. Returns nullptr on failure. The connect itself
/// is non-blocking + poll so an unresponsive host (SYN black hole) fails
/// after `connect_timeout_ms` instead of hanging for the kernel's
/// multi-minute TCP timeout; < 0 keeps the kernel default.
std::unique_ptr<FdTransport> tcp_connect(const std::string& host,
                                         std::uint16_t port,
                                         int io_timeout_ms = -1,
                                         int connect_timeout_ms = -1);

/// Forks `argv` with a pipe pair wired to the child's stdin/stdout and
/// speaks the protocol over them. The child is reaped on destruction
/// (stdin close is its shutdown signal).
class SubprocessTransport final : public Transport {
 public:
  static std::unique_ptr<SubprocessTransport> spawn(
      const std::vector<std::string>& argv, int io_timeout_ms = -1);
  ~SubprocessTransport() override;
  SubprocessTransport(const SubprocessTransport&) = delete;
  SubprocessTransport& operator=(const SubprocessTransport&) = delete;

  bool read_full(void* buf, std::size_t n) override;
  bool write_full(const void* buf, std::size_t n) override;

  /// Closes the child's stdin and reaps it (EINTR-safe), recording how it
  /// ended. Idempotent; the destructor calls it and logs an abnormal exit
  /// to stderr. Returns true when the child exited with status 0.
  bool reap();
  /// Human-readable exit summary after reap(): "exit status N",
  /// "killed by signal N", or "" while the child is still running.
  const std::string& exit_diagnostic() const { return exit_diag_; }

 private:
  SubprocessTransport(pid_t pid, int read_fd, int write_fd,
                      int io_timeout_ms);

  pid_t pid_;
  std::unique_ptr<FdTransport> io_;
  bool reaped_ = false;
  bool exit_clean_ = false;
  std::string exit_diag_;
};

}  // namespace orap::serve
