#pragma once
// Client side of oracle-as-a-service: RemoteOracle is a full Oracle over
// a Transport, so every existing attack (sat_attack, appsat, double_dip,
// the resilient loop, CheckpointedOracle) runs against a served oracle
// unmodified — including the save_state/load_state chain, which round-
// trips the SERVER-side decorator stack's resume state through
// kStateGet/kStateSet.
//
// One do_query is one single-query batch (one round trip). Callers
// holding many independent inputs should use query_batch, and truly
// latency-bound callers can pipeline whole frames by driving wire.h
// directly (the bench does).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attacks/oracle.h"
#include "serve/transport.h"

namespace orap::serve {

class RemoteOracle final : public Oracle {
 public:
  /// Performs the Hello handshake; returns nullptr (with a diagnostic in
  /// *error) when the transport dies or the server speaks another version.
  static std::unique_ptr<RemoteOracle> connect(
      std::unique_ptr<Transport> transport, std::string* error = nullptr);

  std::size_t num_inputs() const override { return num_inputs_; }
  std::size_t num_outputs() const override { return num_outputs_; }

  /// Remote state chain: save_state appends the server stack's state as a
  /// length-prefixed blob; load_state pushes the same blob back. A dead
  /// transport surfaces as an empty blob / false.
  void save_state(std::vector<std::uint8_t>* out) const override;
  bool load_state(bytes::Reader* in) override;

  /// Orderly server shutdown (kShutdown + ack). The transport stays owned
  /// until destruction.
  bool shutdown();

  bool transport_failed() const { return dead_; }

 protected:
  OracleResult do_query(const BitVec& data) override;
  /// Batch-aware: the whole batch travels as ONE kQueryBatch frame — one
  /// wire round trip regardless of batch size. A dead transport fills
  /// every element with the terminal kExhausted (same rationale as
  /// do_query).
  void do_query_batch(const std::vector<BitVec>& xs,
                      std::vector<OracleResult>* out) override;

 private:
  RemoteOracle(std::unique_ptr<Transport> transport, std::size_t num_inputs,
               std::size_t num_outputs);

  /// One kQueryBatch frame; false on a dead transport (out is then
  /// cleared). `requery` routes to the server oracle's retry accounting.
  bool send_batch(const std::vector<BitVec>& xs,
                  std::vector<OracleResult>* out, bool requery);

  std::unique_ptr<Transport> transport_;
  std::size_t num_inputs_;
  std::size_t num_outputs_;
  mutable bool dead_ = false;
};

}  // namespace orap::serve
