#pragma once
// Client side of oracle-as-a-service: RemoteOracle is a full Oracle over
// a Transport, so every existing attack (sat_attack, appsat, double_dip,
// the resilient loop, CheckpointedOracle) runs against a served oracle
// unmodified — including the save_state/load_state chain, which round-
// trips the SERVER-side decorator stack's resume state through
// kStateGet/kStateSet.
//
// One do_query is one single-query batch (one round trip). Callers
// holding many independent inputs should use query_batch, and truly
// latency-bound callers can pipeline whole frames by driving wire.h
// directly (the bench does).
//
// Self-healing (opt-in via RemoteOracleOptions::max_recoveries over a
// ReconnectingTransport): a dead stream is no longer terminal. The client
// keeps a cached copy of the server stack's save_state blob — captured
// atomically with each batch reply via the want_state bit — and on
// transport death it redials, re-runs the Hello handshake, re-pushes that
// blob with kStateSet, and retransmits the in-flight batch flagged as a
// requery. Because the pushed state is from the last batch boundary the
// client actually consumed, a restarted (or mid-reply-killed) server
// replays exactly the fault-decorator trajectory the uninterrupted run
// would have produced: at-least-once retransmission becomes exactly-once
// semantics, and the recovered attack is byte-identical. Only after the
// recovery budget is exhausted does the client fall back to the old
// behavior and surface kExhausted.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attacks/oracle.h"
#include "serve/transport.h"

namespace orap::serve {

class ReconnectingTransport;
struct HelloReply;

struct RemoteOracleOptions {
  /// Total transport recoveries (redial + rehandshake + state re-push)
  /// allowed over the oracle's lifetime. 0 = legacy behavior: any stream
  /// death is terminal. > 0 requires the transport to be a
  /// ReconnectingTransport (connect() fails otherwise).
  std::size_t max_recoveries = 0;
  /// Capture the server stack's state every N batches (want_state bit in
  /// kQueryBatch). 1 — the default — is the only setting that guarantees
  /// byte-identical recovery for STATEFUL server stacks (noisy/stuck/...);
  /// larger N trades that guarantee for fewer state bytes on the wire.
  /// Stacks whose state blob is empty (a bare GoldenOracle) are detected
  /// at connect time and never pay for state capture at all.
  std::size_t state_refresh_batches = 1;
};

class RemoteOracle final : public Oracle {
 public:
  /// Performs the Hello handshake; returns nullptr (with a diagnostic in
  /// *error) when the transport dies or the server speaks another version.
  /// With opts.max_recoveries > 0 the handshake itself is retried across
  /// redials, and the initial state blob is fetched as the recovery seed.
  static std::unique_ptr<RemoteOracle> connect(
      std::unique_ptr<Transport> transport, std::string* error = nullptr,
      const RemoteOracleOptions& opts = {});

  std::size_t num_inputs() const override { return num_inputs_; }
  std::size_t num_outputs() const override { return num_outputs_; }

  /// Remote state chain: save_state appends the server stack's state as a
  /// length-prefixed blob; load_state pushes the same blob back. A dead
  /// transport surfaces as an empty blob / false.
  void save_state(std::vector<std::uint8_t>* out) const override;
  bool load_state(bytes::Reader* in) override;

  /// Orderly server shutdown (kShutdown + ack). Never triggers recovery:
  /// tearing down a link we are about to drop would be wasted redials.
  bool shutdown();

  bool transport_failed() const { return dead_; }

  /// Self-healing telemetry.
  std::uint64_t recoveries() const { return recoveries_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t state_syncs() const { return state_syncs_; }

 protected:
  OracleResult do_query(const BitVec& data) override;
  /// Batch-aware: the whole batch travels as ONE kQueryBatch frame — one
  /// wire round trip regardless of batch size. A dead transport fills
  /// every element with the terminal kExhausted (same rationale as
  /// do_query).
  void do_query_batch(const std::vector<BitVec>& xs,
                      std::vector<OracleResult>* out) override;

 private:
  RemoteOracle(std::unique_ptr<Transport> transport, std::size_t num_inputs,
               std::size_t num_outputs);

  /// One kQueryBatch frame; false on a dead transport (out is then
  /// cleared). `requery` routes to the server oracle's retry accounting.
  /// With recovery enabled, loops redial + rehandshake + retransmit until
  /// success or policy exhaustion.
  bool send_batch(const std::vector<BitVec>& xs,
                  std::vector<OracleResult>* out, bool requery);

  /// One Hello round trip on the current stream (no shape check).
  bool hello_once(HelloReply* r);
  /// Redial + Hello + shape check + state re-push. Consumes recovery
  /// budget; false once it is spent or the dial policy gives up.
  bool recover();
  /// kStateGet on the current stream, refreshing the cached blob.
  bool state_get_once(std::vector<std::uint8_t>* blob);

  std::unique_ptr<Transport> transport_;
  std::size_t num_inputs_;
  std::size_t num_outputs_;
  mutable bool dead_ = false;

  RemoteOracleOptions opts_;
  /// Set when recovery is enabled; points into *transport_.
  ReconnectingTransport* reconn_ = nullptr;
  /// Last server-stack state blob the client knows the server reached.
  std::vector<std::uint8_t> state_blob_;
  bool have_state_ = false;
  /// The stack's state blob is empty: nothing to re-push, skip capture.
  bool stateless_ = false;
  std::size_t batches_since_sync_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t state_syncs_ = 0;
};

}  // namespace orap::serve
