#include "serve/wire.h"

#include <utility>

namespace orap::serve {

std::uint32_t frame_crc(FrameType type, const std::vector<std::uint8_t>& body) {
  const std::uint8_t tb = static_cast<std::uint8_t>(type);
  const std::uint32_t seed = bytes::crc32(&tb, 1);
  return bytes::crc32(body.data(), body.size(), seed);
}

FrameRead read_frame_ex(Transport& t, Frame* out) {
  // The header is read in two pieces so a peer that hangs up cleanly
  // between frames (zero header bytes delivered) is distinguishable from
  // one that died mid-frame.
  std::uint8_t head[9];
  if (!t.read_full(head, 1)) return FrameRead::kEof;
  if (!t.read_full(head + 1, sizeof(head) - 1)) return FrameRead::kTorn;
  bytes::Reader hr(head, sizeof(head));
  const std::uint32_t len = hr.u32();
  const std::uint8_t type = hr.u8();
  const std::uint32_t crc = hr.u32();
  if (len > kMaxFrameBody) return FrameRead::kBad;
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kError))
    return FrameRead::kBad;
  out->type = static_cast<FrameType>(type);
  out->body.resize(len);
  if (len != 0 && !t.read_full(out->body.data(), len)) return FrameRead::kTorn;
  if (crc != frame_crc(out->type, out->body)) return FrameRead::kBad;
  return FrameRead::kFrame;
}

bool read_frame(Transport& t, Frame* out) {
  return read_frame_ex(t, out) == FrameRead::kFrame;
}

bool write_frame(Transport& t, FrameType type,
                 const std::vector<std::uint8_t>& body) {
  if (body.size() > kMaxFrameBody) return false;
  std::vector<std::uint8_t> head;
  head.reserve(9);
  bytes::put_u32(&head, static_cast<std::uint32_t>(body.size()));
  bytes::put_u8(&head, static_cast<std::uint8_t>(type));
  bytes::put_u32(&head, frame_crc(type, body));
  return t.write_full(head.data(), head.size()) &&
         (body.empty() || t.write_full(body.data(), body.size()));
}

std::vector<std::uint8_t> encode_hello() {
  std::vector<std::uint8_t> body;
  bytes::put_u32(&body, kProtoVersion);
  return body;
}

bool decode_hello(const std::vector<std::uint8_t>& body,
                  std::uint32_t* version) {
  bytes::Reader in(body);
  *version = in.u32();
  return in.ok() && in.remaining() == 0;
}

std::vector<std::uint8_t> encode_hello_reply(const HelloReply& r) {
  std::vector<std::uint8_t> body;
  bytes::put_u32(&body, r.version);
  bytes::put_u64(&body, r.num_inputs);
  bytes::put_u64(&body, r.num_outputs);
  return body;
}

bool decode_hello_reply(const std::vector<std::uint8_t>& body,
                        HelloReply* r) {
  bytes::Reader in(body);
  r->version = in.u32();
  r->num_inputs = in.u64();
  r->num_outputs = in.u64();
  return in.ok() && in.remaining() == 0;
}

void pack_bits(std::vector<std::uint8_t>* out, const BitVec& v) {
  for (const std::uint64_t w : v.words()) bytes::put_u64(out, w);
}

bool unpack_bits(bytes::Reader* in, std::size_t nbits, BitVec* out) {
  BitVec v(nbits);
  for (auto& w : v.words()) w = in->u64();
  if (!in->ok()) return false;
  if (nbits % 64 != 0 && !v.words().empty() &&
      (v.words().back() >> (nbits % 64)) != 0)
    return false;
  *out = std::move(v);
  return true;
}

std::vector<std::uint8_t> encode_query_batch(const std::vector<BitVec>& xs,
                                             bool requery, bool want_state) {
  std::vector<std::uint8_t> body;
  bytes::put_u8(&body, static_cast<std::uint8_t>((requery ? 1 : 0) |
                                                 (want_state ? 2 : 0)));
  bytes::put_u32(&body, static_cast<std::uint32_t>(xs.size()));
  for (const BitVec& x : xs) pack_bits(&body, x);
  return body;
}

bool decode_query_batch(const std::vector<std::uint8_t>& body,
                        std::size_t num_inputs, bool* requery,
                        std::vector<BitVec>* xs, bool* want_state) {
  bytes::Reader in(body);
  const std::uint8_t kind = in.u8();
  if (kind > 3) return false;
  *requery = (kind & 1) != 0;
  if (want_state != nullptr) *want_state = (kind & 2) != 0;
  const std::uint32_t count = in.u32();
  if (!in.ok()) return false;
  // Cheap overrun check before reserving anything: each input is a fixed
  // number of words, so the remaining byte count pins the maximum count.
  if (static_cast<std::uint64_t>(count) * packed_words(num_inputs) * 8 !=
      in.remaining())
    return false;
  xs->clear();
  xs->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    BitVec x;
    if (!unpack_bits(&in, num_inputs, &x)) return false;
    xs->push_back(std::move(x));
  }
  return in.ok() && in.remaining() == 0;
}

std::vector<std::uint8_t> encode_batch_reply(
    const std::vector<OracleResult>& rs,
    const std::vector<std::uint8_t>* state) {
  std::vector<std::uint8_t> body;
  bytes::put_u32(&body, static_cast<std::uint32_t>(rs.size()));
  for (const OracleResult& r : rs) {
    if (r.ok()) {
      bytes::put_u8(&body, 0);
      pack_bits(&body, r.response());
    } else {
      bytes::put_u8(&body,
                    static_cast<std::uint8_t>(r.error().kind) + 1);
    }
  }
  bytes::put_u8(&body, state != nullptr ? 1 : 0);
  if (state != nullptr) bytes::put_blob(&body, state->data(), state->size());
  return body;
}

bool decode_batch_reply(const std::vector<std::uint8_t>& body,
                        std::size_t num_outputs,
                        std::vector<OracleResult>* rs, bool* has_state,
                        std::vector<std::uint8_t>* state) {
  bytes::Reader in(body);
  const std::uint32_t count = in.u32();
  if (!in.ok()) return false;
  rs->clear();
  rs->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t status = in.u8();
    if (status == 0) {
      BitVec y;
      if (!unpack_bits(&in, num_outputs, &y)) return false;
      rs->push_back(OracleResult(std::move(y)));
    } else if (status <= 3) {
      rs->push_back(
          OracleResult::failure(static_cast<OracleErrorKind>(status - 1)));
    } else {
      return false;
    }
  }
  const std::uint8_t carries = in.u8();
  if (!in.ok() || carries > 1) return false;
  if (has_state != nullptr) *has_state = carries == 1;
  if (carries == 1) {
    std::vector<std::uint8_t> blob;
    if (!in.blob(&blob)) return false;
    if (state != nullptr) *state = std::move(blob);
  }
  return in.ok() && in.remaining() == 0;
}

std::vector<std::uint8_t> encode_ack(bool ok) {
  std::vector<std::uint8_t> body;
  bytes::put_u8(&body, ok ? 1 : 0);
  return body;
}

bool decode_ack(const std::vector<std::uint8_t>& body, bool* ok) {
  bytes::Reader in(body);
  const std::uint8_t v = in.u8();
  if (!in.ok() || in.remaining() != 0 || v > 1) return false;
  *ok = v == 1;
  return true;
}

std::vector<std::uint8_t> encode_error(const std::string& message) {
  std::vector<std::uint8_t> body;
  bytes::put_string(&body, message);
  return body;
}

bool decode_error(const std::vector<std::uint8_t>& body,
                  std::string* message) {
  bytes::Reader in(body);
  return in.str(message) && in.remaining() == 0;
}

}  // namespace orap::serve
