#include "serve/job_server.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "attacks/checkpoint.h"
#include "attacks/faulty_oracle.h"
#include "util/bytes.h"
#include "util/parallel.h"

namespace orap::serve {

namespace {

void hash_u64(std::vector<std::uint8_t>* buf, std::uint64_t v) {
  bytes::put_u64(buf, v);
}

void hash_double(std::vector<std::uint8_t>* buf, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  bytes::put_u64(buf, bits);
}

/// The job's oracle stack, owned as a unit. Construction order is the
/// serialization order (innermost first), so checkpoint state blobs
/// round-trip through the same shape every run.
struct OracleStack {
  explicit OracleStack(const AttackJob& job, OracleResultCache* cache = nullptr)
      : golden(*job.circuit) {
    Oracle* top = &golden;
    // The cache wraps the golden device directly — BELOW every fault
    // decorator — so a cached response is indistinguishable from a device
    // response and the fault layers' RNG trajectories (hence the job's
    // result) are byte-identical with the cache on or off.
    if (cache != nullptr) {
      cached = std::make_unique<CachedOracle>(*top, *cache);
      top = cached.get();
    }
    const JobOracleConfig& c = job.oracle;
    if (c.noise_rate > 0.0) {
      noisy = std::make_unique<NoisyOracle>(*top, c.noise_rate, c.noise_seed);
      top = noisy.get();
    }
    if (c.stick_rate > 0.0) {
      stuck = std::make_unique<StuckOracle>(*top, c.stick_rate, c.stick_seed);
      top = stuck.get();
    }
    if (c.drop_rate > 0.0) {
      drop = std::make_unique<IntermittentOracle>(*top, c.drop_rate,
                                                  c.drop_seed);
      top = drop.get();
    }
    if (c.max_queries > 0) {
      budget = std::make_unique<BudgetedOracle>(*top, c.max_queries);
      top = budget.get();
    }
    if (c.latency_us > 0 || c.jitter_us > 0) {
      latent = std::make_unique<LatentOracle>(*top, c.latency_us, c.jitter_us,
                                              c.latency_seed);
      top = latent.get();
    }
    outer = top;
  }

  GoldenOracle golden;
  std::unique_ptr<CachedOracle> cached;
  std::unique_ptr<NoisyOracle> noisy;
  std::unique_ptr<StuckOracle> stuck;
  std::unique_ptr<IntermittentOracle> drop;
  std::unique_ptr<BudgetedOracle> budget;
  std::unique_ptr<LatentOracle> latent;
  Oracle* outer = nullptr;
};

}  // namespace

std::uint64_t job_config_hash(const AttackJob& job) {
  std::vector<std::uint8_t> buf;
  // Circuit identity: shape plus the correct key (a cheap proxy for the
  // netlist — job lists regenerate circuits from seeds, so shape + key
  // collisions across configs are not a realistic hazard; the replay
  // divergence guard backstops them anyway).
  hash_u64(&buf, job.circuit->num_data_inputs);
  hash_u64(&buf, job.circuit->num_key_inputs);
  hash_u64(&buf, job.circuit->netlist.num_outputs());
  for (const std::uint64_t w : job.circuit->correct_key.words())
    hash_u64(&buf, w);
  hash_u64(&buf, static_cast<std::uint64_t>(job.kind));
  const bool app = job.kind == AttackJob::Kind::kAppSat;
  hash_u64(&buf, static_cast<std::uint64_t>(
                     app ? job.appsat.max_iterations : job.sat.max_iterations));
  hash_u64(&buf, static_cast<std::uint64_t>(
                     app ? job.appsat.conflict_budget : job.sat.conflict_budget));
  const OracleResilienceOptions& res =
      app ? job.appsat.resilience : job.sat.resilience;
  hash_u64(&buf, res.retries);
  hash_u64(&buf, res.votes);
  hash_u64(&buf, res.quarantine ? 1 : 0);
  hash_u64(&buf, res.max_evictions);
  hash_u64(&buf, res.degraded_samples);
  hash_u64(&buf, app ? job.appsat.portfolio_size : job.sat.portfolio_size);
  hash_u64(&buf, app ? job.appsat.cube_depth : job.sat.cube_depth);
  hash_u64(&buf, (app ? job.appsat.preprocess : job.sat.preprocess) ? 1 : 0);
  hash_u64(&buf, (app ? job.appsat.incremental : job.sat.incremental) ? 1 : 0);
  // Batching changes the oracle-traffic trajectory (flush boundaries and,
  // with dip_batch > 1, which DIPs get asked), so a checkpoint taken at
  // one setting must not resume at another. The result cache is NOT
  // hashed: it sits below the fault decorators, so it never changes a
  // job's trajectory — only its device-traffic counters.
  hash_u64(&buf, (app ? job.appsat.oracle_batch : job.sat.oracle_batch) ? 1 : 0);
  hash_u64(&buf, app ? std::uint64_t{1} : job.sat.dip_batch);
  if (app) {
    hash_u64(&buf, job.appsat.check_period);
    hash_u64(&buf, job.appsat.random_queries);
    hash_u64(&buf, job.appsat.settle_rounds);
    hash_u64(&buf, job.appsat.seed);
  }
  hash_double(&buf, job.oracle.noise_rate);
  hash_u64(&buf, job.oracle.noise_seed);
  hash_double(&buf, job.oracle.stick_rate);
  hash_u64(&buf, job.oracle.stick_seed);
  hash_double(&buf, job.oracle.drop_rate);
  hash_u64(&buf, job.oracle.drop_seed);
  hash_u64(&buf, job.oracle.max_queries);
  // Latency shapes timing only, never responses, so it is deliberately
  // NOT part of the hash: a checkpoint taken over a slow link resumes
  // against a fast one.
  const std::uint32_t lo = bytes::crc32(buf.data(), buf.size());
  const std::uint32_t hi = bytes::crc32(buf.data(), buf.size(), 0x9e3779b9u);
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

std::uint64_t chip_fingerprint(const LockedCircuit& circuit) {
  std::vector<std::uint8_t> buf;
  hash_u64(&buf, circuit.num_data_inputs);
  hash_u64(&buf, circuit.num_key_inputs);
  hash_u64(&buf, circuit.netlist.num_outputs());
  for (const std::uint64_t w : circuit.correct_key.words()) hash_u64(&buf, w);
  const std::uint32_t lo = bytes::crc32(buf.data(), buf.size());
  const std::uint32_t hi = bytes::crc32(buf.data(), buf.size(), 0x9e3779b9u);
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

JobResult JobServer::run_job(const AttackJob& job) const {
  std::uint64_t backoff = opts_.retry_backoff_ms;
  for (std::uint32_t attempt = 1;; ++attempt) {
    if (opts_.stop != nullptr &&
        opts_.stop->load(std::memory_order_relaxed)) {
      // Drained before this attempt started: any existing checkpoint on
      // disk is already the resume point; do not touch it.
      JobResult out;
      out.id = job.id;
      out.stopped = true;
      out.attempts = attempt - 1;
      out.error = "stopped before start";
      return out;
    }
    try {
      JobResult out = run_job_attempt(job);
      out.attempts = attempt;
      return out;
    } catch (const AttackStopped& e) {
      // The drain flag fired mid-attack; the checkpoint was flushed at the
      // exact query boundary before the unwind, so this job is resumable.
      JobResult out;
      out.id = job.id;
      out.stopped = true;
      out.attempts = attempt;
      out.error = e.what();
      if (!opts_.checkpoint_dir.empty())
        out.checkpoint_path = opts_.checkpoint_dir + "/" + job.id + ".ckpt";
      return out;
    } catch (const std::exception& e) {
      if (attempt > opts_.max_job_retries) {
        JobResult out;
        out.id = job.id;
        out.failed = true;
        out.attempts = attempt;
        out.error = e.what();
        return out;
      }
      // Transient failure (a flaky oracle stack, an exhausted budget that
      // a retry policy forgives, ...): back off, then retry. With
      // checkpointing on, the retry resumes from the autosaved transcript
      // rather than repaying the queries the failed attempt answered.
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        backoff = std::min<std::uint64_t>(backoff * 2, 60'000);
      }
    }
  }
}

JobResult JobServer::run_job_attempt(const AttackJob& job) const {
  ORAP_CHECK_MSG(job.circuit != nullptr, "AttackJob without a circuit");
  JobResult out;
  out.id = job.id;
  out.config_hash = job_config_hash(job);

  OracleResultCache* cache =
      opts_.result_cache ? &caches_.for_chip(chip_fingerprint(*job.circuit))
                         : nullptr;
  auto stack = std::make_unique<OracleStack>(job, cache);
  auto ckpt =
      std::make_unique<CheckpointedOracle>(*stack->outer, out.config_hash);
  if (!opts_.checkpoint_dir.empty()) {
    out.checkpoint_path = opts_.checkpoint_dir + "/" + job.id + ".ckpt";
    const CheckpointedOracle::LoadStatus ls =
        ckpt->load_file(out.checkpoint_path);
    if (ls == CheckpointedOracle::LoadStatus::kOk) {
      out.resumed = true;
      out.replayed_queries = ckpt->transcript_size();
    } else if (ls != CheckpointedOracle::LoadStatus::kMissing) {
      // Corrupt or foreign checkpoint: start fresh on a clean stack (a
      // failed state load may have half-written the decorators).
      out.checkpoint_rejected = true;
      ckpt.reset();
      stack = std::make_unique<OracleStack>(job, cache);
      ckpt = std::make_unique<CheckpointedOracle>(*stack->outer,
                                                  out.config_hash);
    }
    ckpt->enable_autosave(out.checkpoint_path, opts_.checkpoint_every);
  }
  ckpt->set_stop_flag(opts_.stop);

  switch (job.kind) {
    case AttackJob::Kind::kSat:
      out.result = sat_attack(*job.circuit, *ckpt, job.sat);
      break;
    case AttackJob::Kind::kAppSat:
      out.result = appsat_attack(*job.circuit, *ckpt, job.appsat);
      break;
    case AttackJob::Kind::kDoubleDip:
      out.result = double_dip_attack(*job.circuit, *ckpt, job.sat);
      break;
  }
  ORAP_CHECK_MSG(!ckpt->diverged(),
                 "checkpoint replay diverged despite matching config hash");
  out.checkpoints_written = ckpt->autosaves();
  if (!out.checkpoint_path.empty()) {
    ckpt->set_progress_dips(out.result.iterations);
    if (ckpt->save_file(out.checkpoint_path)) ++out.checkpoints_written;
  }
  return out;
}

std::vector<JobResult> JobServer::run(
    const std::vector<AttackJob>& jobs) const {
  std::vector<JobResult> results(jobs.size());
  parallel_for(/*grain=*/1, jobs.size(), [&](std::size_t i) {
    results[i] = run_job(jobs[i]);
  });
  return results;
}

}  // namespace orap::serve
