#pragma once
// Cross-job oracle result cache.
//
// The oracle is the attack's expensive, rate-limited resource; when the
// job server runs many jobs against the same activated chip (sweeping
// attack options, resuming after kills), most of their oracle traffic is
// redundant. OracleResultCache is a shared, hash-keyed input->output memo
// over the chip's deterministic function, and CachedOracle is the
// decorator that consults it before any device hit.
//
// Placement contract: the cache sits DIRECTLY above the truthful device
// oracle (GoldenOracle / ChipScanOracle) and BELOW every fault decorator.
// The device is deterministic, so a cached response is byte-identical to
// a fresh one, and the fault layers above still draw their per-attempt
// RNG state in query order — the attack's trajectory is byte-identical
// with the cache on or off, only the device traffic shrinks. (Above the
// fault layers the same memo would be wrong: it would freeze one noisy
// sample as the truth.)
//
// Checkpoint semantics: a cache hit is replay, not traffic — it performs
// zero queries on the device below, exactly like serving a transcript
// entry. CachedOracle itself is stateless (no RNG, no serialized blob):
// a resumed job with a cold cache simply re-queries the device and gets
// the same bytes, so checkpoints stay valid across cache on/off and
// across process restarts. Hit/miss counts DO depend on job scheduling
// order and are therefore reported outside any byte-compared job output.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "attacks/oracle.h"
#include "util/bitvec.h"

namespace orap::serve {

/// Mixes size + payload words so unordered_map buckets spread even for
/// the low-entropy inputs SAT attacks tend to produce.
struct BitVecHash {
  std::size_t operator()(const BitVec& v) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ull ^ v.size();
    for (const std::uint64_t w : v.words()) {
      h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Thread-safe input->output memo shared by every CachedOracle layered
/// over the same chip. Exact-match keys (full input bits), never evicts:
/// an attack's distinct-input working set is bounded by its query count.
class OracleResultCache {
 public:
  /// True and fills *y on a hit.
  bool lookup(const BitVec& x, BitVec* y) const;
  /// First insert wins; a second insert for the same input is a no-op
  /// (the device is deterministic, so the values agree by construction).
  void insert(const BitVec& x, const BitVec& y);
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<BitVec, BitVec, BitVecHash> map_;
};

/// Hands out one OracleResultCache per chip fingerprint, so concurrent
/// jobs share a memo exactly when they attack the same chip config and
/// never when they do not (the same input means different things on
/// different chips). Returned references stay valid for the registry's
/// lifetime.
class ResultCacheRegistry {
 public:
  OracleResultCache& for_chip(std::uint64_t fingerprint);
  std::size_t num_chips() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<OracleResultCache>>
      caches_;
};

/// The memo decorator. A hit is served without touching the inner oracle
/// (zero device queries); a miss queries inward and records the response.
/// Only OK responses are cached — errors above a truthful device oracle
/// cannot happen, and caching one would replay a failure forever.
class CachedOracle final : public OracleDecorator {
 public:
  CachedOracle(Oracle& inner, OracleResultCache& cache)
      : OracleDecorator(inner), cache_(cache) {}

  std::size_t cache_hits() const override {
    return hits_ + inner().cache_hits();
  }
  std::size_t cache_misses() const override {
    return misses_ + inner().cache_misses();
  }

 protected:
  OracleResult do_query(const BitVec& data) override;
  /// Batch-aware: misses ship inward as one sub-batch in element order;
  /// hits are filled in place.
  void do_query_batch(const std::vector<BitVec>& xs,
                      std::vector<OracleResult>* out) override;

 private:
  OracleResultCache& cache_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace orap::serve
