#pragma once
// Length-prefixed binary wire protocol for oracle-as-a-service.
//
// Frame layout (little-endian, helpers in util/bytes.h):
//
//   u32 body_length | u8 frame_type | body
//
// Conversation: the client opens with kHello (its protocol version); the
// server answers kHelloReply with the oracle's I/O shape. After that the
// client sends any number of request frames and the server answers each in
// order — the transports are ordered byte streams, so a client may PIPELINE
// requests (send several frames before reading the replies) and BATCH
// queries (many inputs per kQueryBatch frame). Both matter against a
// high-latency link: the server charges its injected per-round-trip
// latency once per request frame, exactly like a real tester session
// charges its cable round-trip once per scan burst.
//
//   kHello       -> kHelloReply     version/shape handshake
//   kQueryBatch  -> kBatchReply     n packed inputs -> n status+response
//   kStateGet    -> kStateBlob      Oracle::save_state of the served stack
//   kStateSet    -> kAck            Oracle::load_state (checkpoint resume)
//   kShutdown    -> kAck            orderly server exit
//   (anything malformed) -> kError  message + connection close
//
// Query inputs and responses are packed fixed-width — ceil(nbits/64)
// words, no per-item length — because both shapes are fixed by the
// handshake; a batch of B inputs costs 5 + 1 + 4 + B*8*words bytes on the
// wire.

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/oracle.h"
#include "serve/transport.h"
#include "util/bitvec.h"

namespace orap::serve {

constexpr std::uint32_t kProtoVersion = 1;
/// Upper bound on a frame body; anything larger is a protocol error (and
/// a malicious peer cannot make the server allocate unbounded memory).
constexpr std::uint32_t kMaxFrameBody = 1u << 26;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kHelloReply = 2,
  kQueryBatch = 3,
  kBatchReply = 4,
  kStateGet = 5,
  kStateBlob = 6,
  kStateSet = 7,
  kAck = 8,
  kShutdown = 9,
  kError = 10,
};

struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> body;
};

/// Reads one frame. false on EOF/timeout/oversized body (stream dead).
bool read_frame(Transport& t, Frame* out);
bool write_frame(Transport& t, FrameType type,
                 const std::vector<std::uint8_t>& body);

/// kHello body: u32 proto version. kHelloReply body: u32 version accepted,
/// u64 num_inputs, u64 num_outputs.
struct HelloReply {
  std::uint32_t version = 0;
  std::uint64_t num_inputs = 0;
  std::uint64_t num_outputs = 0;
};
std::vector<std::uint8_t> encode_hello();
bool decode_hello(const std::vector<std::uint8_t>& body,
                  std::uint32_t* version);
std::vector<std::uint8_t> encode_hello_reply(const HelloReply& r);
bool decode_hello_reply(const std::vector<std::uint8_t>& body, HelloReply* r);

/// Fixed-width BitVec packing: ceil(nbits/64) little-endian words.
inline std::size_t packed_words(std::size_t nbits) {
  return (nbits + 63) / 64;
}
void pack_bits(std::vector<std::uint8_t>* out, const BitVec& v);
/// Unpacks `nbits`; false when the tail word carries garbage bits.
bool unpack_bits(bytes::Reader* in, std::size_t nbits, BitVec* out);

/// kQueryBatch body: u8 kind (0 = logical query, 1 = requery; server-side
/// accounting only), u32 count, count packed inputs.
std::vector<std::uint8_t> encode_query_batch(const std::vector<BitVec>& xs,
                                             bool requery);
bool decode_query_batch(const std::vector<std::uint8_t>& body,
                        std::size_t num_inputs, bool* requery,
                        std::vector<BitVec>* xs);

/// kBatchReply body: u32 count, then per query u8 status (0 = ok, else
/// OracleErrorKind + 1) and the packed response when ok.
std::vector<std::uint8_t> encode_batch_reply(
    const std::vector<OracleResult>& rs);
bool decode_batch_reply(const std::vector<std::uint8_t>& body,
                        std::size_t num_outputs,
                        std::vector<OracleResult>* rs);

/// kAck body: u8 ok. kError body: length-prefixed message.
std::vector<std::uint8_t> encode_ack(bool ok);
bool decode_ack(const std::vector<std::uint8_t>& body, bool* ok);
std::vector<std::uint8_t> encode_error(const std::string& message);
bool decode_error(const std::vector<std::uint8_t>& body,
                  std::string* message);

}  // namespace orap::serve
