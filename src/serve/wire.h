#pragma once
// Length-prefixed binary wire protocol for oracle-as-a-service.
//
// Frame layout (little-endian, helpers in util/bytes.h):
//
//   u32 body_length | u8 frame_type | u32 crc32(frame_type || body) | body
//
// The CRC (protocol v2) exists because the serving layer is chaos-tested:
// a flipped bit anywhere in a frame must surface as a detectable protocol
// error — killing that one connection so the client can reconnect and
// retransmit — never as a silently wrong oracle answer poisoning a SAT
// attack. It covers the type byte and body; corruption of the length field
// desynchronizes the stream and is caught by the same check (the CRC of
// whatever got framed will not match).
//
// Conversation: the client opens with kHello (its protocol version); the
// server answers kHelloReply with the oracle's I/O shape. After that the
// client sends any number of request frames and the server answers each in
// order — the transports are ordered byte streams, so a client may PIPELINE
// requests (send several frames before reading the replies) and BATCH
// queries (many inputs per kQueryBatch frame). Both matter against a
// high-latency link: the server charges its injected per-round-trip
// latency once per request frame, exactly like a real tester session
// charges its cable round-trip once per scan burst.
//
//   kHello       -> kHelloReply     version/shape handshake
//   kQueryBatch  -> kBatchReply     n packed inputs -> n status+response
//   kStateGet    -> kStateBlob      Oracle::save_state of the served stack
//   kStateSet    -> kAck            Oracle::load_state (checkpoint resume /
//                                   reconnect state re-push)
//   kShutdown    -> kAck            orderly server exit
//   (anything malformed) -> kError  message + connection close
//
// Query inputs and responses are packed fixed-width — ceil(nbits/64)
// words, no per-item length — because both shapes are fixed by the
// handshake; a batch of B inputs costs 9 + 1 + 4 + B*8*words bytes on the
// wire. A kQueryBatch may set the want_state bit, asking the server to
// append its stack's post-batch save_state blob to the kBatchReply: that
// makes "answer the batch and capture the resulting decorator state" one
// atomic round trip, which is what lets a reconnecting client roll a
// restarted server back and retransmit the in-flight batch with
// exactly-once semantics even for stateful (noisy/stuck) oracle stacks.

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/oracle.h"
#include "serve/transport.h"
#include "util/bitvec.h"

namespace orap::serve {

/// v2: frame-level CRC-32 + want_state batch replies.
constexpr std::uint32_t kProtoVersion = 2;
/// Upper bound on a frame body; anything larger is a protocol error (and
/// a malicious peer cannot make the server allocate unbounded memory).
constexpr std::uint32_t kMaxFrameBody = 1u << 26;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kHelloReply = 2,
  kQueryBatch = 3,
  kBatchReply = 4,
  kStateGet = 5,
  kStateBlob = 6,
  kStateSet = 7,
  kAck = 8,
  kShutdown = 9,
  kError = 10,
};

struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> body;
};

/// How a read_frame_ex attempt ended. The server cares about the
/// difference: kEof is an orderly hangup between frames; kTorn and kBad
/// are protocol errors that tear down the one offending connection.
enum class FrameRead : std::uint8_t {
  kFrame = 0,  // a complete, CRC-valid frame
  kEof = 1,    // peer hung up cleanly between frames
  kTorn = 2,   // stream died mid-frame (truncation, disconnect, timeout)
  kBad = 3,    // oversized body, unknown type, or CRC mismatch
};

FrameRead read_frame_ex(Transport& t, Frame* out);
/// Reads one frame; false on anything but a complete valid frame.
bool read_frame(Transport& t, Frame* out);
bool write_frame(Transport& t, FrameType type,
                 const std::vector<std::uint8_t>& body);
/// CRC over the type byte followed by the body, as carried in the header.
std::uint32_t frame_crc(FrameType type, const std::vector<std::uint8_t>& body);

/// kHello body: u32 proto version. kHelloReply body: u32 version accepted,
/// u64 num_inputs, u64 num_outputs.
struct HelloReply {
  std::uint32_t version = 0;
  std::uint64_t num_inputs = 0;
  std::uint64_t num_outputs = 0;
};
std::vector<std::uint8_t> encode_hello();
bool decode_hello(const std::vector<std::uint8_t>& body,
                  std::uint32_t* version);
std::vector<std::uint8_t> encode_hello_reply(const HelloReply& r);
bool decode_hello_reply(const std::vector<std::uint8_t>& body, HelloReply* r);

/// Fixed-width BitVec packing: ceil(nbits/64) little-endian words.
inline std::size_t packed_words(std::size_t nbits) {
  return (nbits + 63) / 64;
}
void pack_bits(std::vector<std::uint8_t>* out, const BitVec& v);
/// Unpacks `nbits`; false when the tail word carries garbage bits.
bool unpack_bits(bytes::Reader* in, std::size_t nbits, BitVec* out);

/// kQueryBatch body: u8 kind bitmask (bit 0 = requery, for server-side
/// accounting; bit 1 = want_state, asking for the stack's post-batch state
/// blob in the reply), u32 count, count packed inputs.
std::vector<std::uint8_t> encode_query_batch(const std::vector<BitVec>& xs,
                                             bool requery,
                                             bool want_state = false);
bool decode_query_batch(const std::vector<std::uint8_t>& body,
                        std::size_t num_inputs, bool* requery,
                        std::vector<BitVec>* xs,
                        bool* want_state = nullptr);

/// kBatchReply body: u32 count, then per query u8 status (0 = ok, else
/// OracleErrorKind + 1) and the packed response when ok; then u8 has_state
/// and, when set, the u32-length-prefixed post-batch state blob.
std::vector<std::uint8_t> encode_batch_reply(
    const std::vector<OracleResult>& rs,
    const std::vector<std::uint8_t>* state = nullptr);
bool decode_batch_reply(const std::vector<std::uint8_t>& body,
                        std::size_t num_outputs,
                        std::vector<OracleResult>* rs,
                        bool* has_state = nullptr,
                        std::vector<std::uint8_t>* state = nullptr);

/// kAck body: u8 ok. kError body: length-prefixed message.
std::vector<std::uint8_t> encode_ack(bool ok);
bool decode_ack(const std::vector<std::uint8_t>& body, bool* ok);
std::vector<std::uint8_t> encode_error(const std::string& message);
bool decode_error(const std::vector<std::uint8_t>& body,
                  std::string* message);

}  // namespace orap::serve
