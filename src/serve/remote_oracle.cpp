#include "serve/remote_oracle.h"

#include <utility>

#include "serve/chaos.h"
#include "serve/wire.h"

namespace orap::serve {

RemoteOracle::RemoteOracle(std::unique_ptr<Transport> transport,
                           std::size_t num_inputs, std::size_t num_outputs)
    : transport_(std::move(transport)),
      num_inputs_(num_inputs),
      num_outputs_(num_outputs) {}

std::unique_ptr<RemoteOracle> RemoteOracle::connect(
    std::unique_ptr<Transport> transport, std::string* error,
    const RemoteOracleOptions& opts) {
  const auto fail = [error](const char* msg) {
    if (error != nullptr) *error = msg;
    return nullptr;
  };
  if (!transport) return fail("no transport");
  auto oracle = std::unique_ptr<RemoteOracle>(
      new RemoteOracle(std::move(transport), 0, 0));
  oracle->opts_ = opts;
  if (opts.max_recoveries > 0) {
    oracle->reconn_ =
        dynamic_cast<ReconnectingTransport*>(oracle->transport_.get());
    if (oracle->reconn_ == nullptr)
      return fail("reconnect policy requires a ReconnectingTransport");
  }
  HelloReply r;
  for (;;) {
    Frame f;
    if (write_frame(*oracle->transport_, FrameType::kHello, encode_hello()) &&
        read_frame(*oracle->transport_, &f)) {
      if (f.type == FrameType::kHelloReply && decode_hello_reply(f.body, &r) &&
          r.version == kProtoVersion)
        break;
      if (f.type == FrameType::kError) {
        // The server refused us. Without a redial policy that is final
        // (version skew, shape policy — redialing would get the same no).
        // WITH one, the refusal may be self-inflicted: fault injection can
        // corrupt OUR hello in flight, and the server answers kError for a
        // frame it cannot trust. Retry within the recovery budget; a
        // genuine refusal is deterministic, so it exhausts the budget and
        // surfaces this same diagnostic.
        std::string msg;
        decode_error(f.body, &msg);
        if (error != nullptr) *error = "server rejected hello: " + msg;
        if (oracle->reconn_ == nullptr ||
            oracle->recoveries_ >= opts.max_recoveries)
          return nullptr;
      } else {
        return fail("bad hello reply");
      }
    }
    // Stream death (or a possibly-corruption-induced rejection) mid-
    // handshake: recoverable when a redial policy exists.
    if (oracle->reconn_ == nullptr ||
        oracle->recoveries_ >= opts.max_recoveries)
      return fail("handshake failed");
    ++oracle->recoveries_;
    if (!oracle->reconn_->reconnect())
      return fail("handshake failed: redial policy exhausted");
  }
  oracle->num_inputs_ = static_cast<std::size_t>(r.num_inputs);
  oracle->num_outputs_ = static_cast<std::size_t>(r.num_outputs);
  if (oracle->reconn_ != nullptr) {
    // Seed the recovery cache with the stack's starting state. An empty
    // blob marks the stack stateless: re-pushing "nothing" is always
    // correct, so such clients skip state capture entirely.
    std::vector<std::uint8_t> blob;
    while (!oracle->state_get_once(&blob)) {
      if (!oracle->recover()) return fail("initial state sync failed");
    }
    oracle->stateless_ = blob.empty();
    oracle->state_blob_ = std::move(blob);
    oracle->have_state_ = true;
  }
  return oracle;
}

bool RemoteOracle::hello_once(HelloReply* r) {
  Frame f;
  return write_frame(*transport_, FrameType::kHello, encode_hello()) &&
         read_frame(*transport_, &f) && f.type == FrameType::kHelloReply &&
         decode_hello_reply(f.body, r) && r->version == kProtoVersion;
}

bool RemoteOracle::state_get_once(std::vector<std::uint8_t>* blob) {
  Frame f;
  if (!write_frame(*transport_, FrameType::kStateGet, {}) ||
      !read_frame(*transport_, &f) || f.type != FrameType::kStateBlob)
    return false;
  *blob = std::move(f.body);
  return true;
}

bool RemoteOracle::recover() {
  if (reconn_ == nullptr) return false;
  while (recoveries_ < opts_.max_recoveries) {
    ++recoveries_;
    if (!reconn_->reconnect()) return false;
    HelloReply r;
    if (!hello_once(&r) ||
        static_cast<std::size_t>(r.num_inputs) != num_inputs_ ||
        static_cast<std::size_t>(r.num_outputs) != num_outputs_)
      continue;  // the fresh stream died too: charge a recovery, redial
    if (have_state_ && !stateless_) {
      // Roll the (possibly restarted) server stack back to the last batch
      // boundary this client consumed, so fault-decorator RNG trajectories
      // resume exactly where the answers we hold left off.
      Frame f;
      bool ok = false;
      if (!write_frame(*transport_, FrameType::kStateSet, state_blob_) ||
          !read_frame(*transport_, &f) || f.type != FrameType::kAck ||
          !decode_ack(f.body, &ok) || !ok)
        continue;
    }
    return true;
  }
  return false;
}

bool RemoteOracle::send_batch(const std::vector<BitVec>& xs,
                              std::vector<OracleResult>* out, bool requery) {
  out->clear();
  if (dead_) return false;
  bool as_requery = requery;
  for (;;) {
    // Capture the post-batch stack state in the same round trip every Nth
    // batch: reply + state arrive atomically, so there is no window where
    // a crash leaves the cache stale relative to answers already consumed.
    const bool want_state = reconn_ != nullptr && !stateless_ &&
                            batches_since_sync_ + 1 >=
                                opts_.state_refresh_batches;
    Frame f;
    bool has_state = false;
    std::vector<std::uint8_t> new_state;
    if (write_frame(*transport_, FrameType::kQueryBatch,
                    encode_query_batch(xs, as_requery, want_state)) &&
        read_frame(*transport_, &f) && f.type == FrameType::kBatchReply &&
        decode_batch_reply(f.body, num_outputs_, out, &has_state,
                           &new_state) &&
        out->size() == xs.size() && has_state == want_state) {
      if (has_state) {
        state_blob_ = std::move(new_state);
        have_state_ = true;
        ++state_syncs_;
        batches_since_sync_ = 0;
      } else {
        ++batches_since_sync_;
      }
      return true;
    }
    out->clear();
    if (!recover()) {
      dead_ = true;
      return false;
    }
    // The server may have answered the lost frame before the stream died,
    // so the retransmission is flagged requery: the state re-push already
    // rolled the stack back, making the redraw identical, and the server
    // charges the repeat to retry accounting instead of inflating the
    // logical query count.
    as_requery = true;
    ++retransmits_;
  }
}

OracleResult RemoteOracle::do_query(const BitVec& data) {
  // Without a recovery policy a broken stream never heals (the frame
  // boundary is gone), so it is a terminal kExhausted, not a retryable
  // transient — retrying into a dead link would spin the resilience
  // policy for nothing. With one, send_batch only fails after the policy
  // is exhausted, and kExhausted is still the honest verdict. Genuine
  // transients/timeouts of the DEVICE travel inside kBatchReply and keep
  // their own kinds.
  std::vector<OracleResult> rs;
  if (!send_batch({data}, &rs, /*requery=*/false)) {
    return OracleResult::failure(OracleErrorKind::kExhausted);
  }
  return std::move(rs.front());
}

void RemoteOracle::do_query_batch(const std::vector<BitVec>& xs,
                                  std::vector<OracleResult>* out) {
  if (!send_batch(xs, out, /*requery=*/false)) {
    out->clear();
    out->reserve(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
      out->push_back(OracleResult::failure(OracleErrorKind::kExhausted));
  }
}

void RemoteOracle::save_state(std::vector<std::uint8_t>* out) const {
  auto* self = const_cast<RemoteOracle*>(this);
  std::vector<std::uint8_t> state;
  if (!dead_) {
    for (;;) {
      if (self->state_get_once(&state)) {
        if (reconn_ != nullptr) {
          self->state_blob_ = state;
          self->have_state_ = true;
        }
        break;
      }
      state.clear();
      if (!self->recover()) {
        dead_ = true;
        break;
      }
    }
  }
  bytes::put_blob(out, state.data(), state.size());
}

bool RemoteOracle::load_state(bytes::Reader* in) {
  std::vector<std::uint8_t> state;
  if (!in->blob(&state)) return false;
  if (dead_) return false;
  for (;;) {
    Frame f;
    bool ok = false;
    if (write_frame(*transport_, FrameType::kStateSet, state) &&
        read_frame(*transport_, &f) && f.type == FrameType::kAck &&
        decode_ack(f.body, &ok)) {
      if (ok && reconn_ != nullptr) {
        state_blob_ = std::move(state);
        have_state_ = true;
      }
      return ok;
    }
    if (!recover()) {
      dead_ = true;
      return false;
    }
  }
}

bool RemoteOracle::shutdown() {
  if (dead_) return false;
  Frame f;
  bool ok = false;
  if (!write_frame(*transport_, FrameType::kShutdown, {}) ||
      !read_frame(*transport_, &f) || f.type != FrameType::kAck ||
      !decode_ack(f.body, &ok)) {
    dead_ = true;
    return false;
  }
  return ok;
}

}  // namespace orap::serve
