#include "serve/remote_oracle.h"

#include <utility>

#include "serve/wire.h"

namespace orap::serve {

RemoteOracle::RemoteOracle(std::unique_ptr<Transport> transport,
                           std::size_t num_inputs, std::size_t num_outputs)
    : transport_(std::move(transport)),
      num_inputs_(num_inputs),
      num_outputs_(num_outputs) {}

std::unique_ptr<RemoteOracle> RemoteOracle::connect(
    std::unique_ptr<Transport> transport, std::string* error) {
  const auto fail = [error](const char* msg) {
    if (error != nullptr) *error = msg;
    return nullptr;
  };
  if (!transport) return fail("no transport");
  if (!write_frame(*transport, FrameType::kHello, encode_hello()))
    return fail("handshake write failed");
  Frame f;
  if (!read_frame(*transport, &f)) return fail("handshake read failed");
  if (f.type == FrameType::kError) {
    std::string msg;
    decode_error(f.body, &msg);
    if (error != nullptr) *error = "server rejected hello: " + msg;
    return nullptr;
  }
  HelloReply r;
  if (f.type != FrameType::kHelloReply || !decode_hello_reply(f.body, &r) ||
      r.version != kProtoVersion)
    return fail("bad hello reply");
  return std::unique_ptr<RemoteOracle>(new RemoteOracle(
      std::move(transport), static_cast<std::size_t>(r.num_inputs),
      static_cast<std::size_t>(r.num_outputs)));
}

bool RemoteOracle::send_batch(const std::vector<BitVec>& xs,
                              std::vector<OracleResult>* out, bool requery) {
  out->clear();
  if (dead_) return false;
  Frame f;
  if (!write_frame(*transport_, FrameType::kQueryBatch,
                   encode_query_batch(xs, requery)) ||
      !read_frame(*transport_, &f) || f.type != FrameType::kBatchReply ||
      !decode_batch_reply(f.body, num_outputs_, out) ||
      out->size() != xs.size()) {
    dead_ = true;
    out->clear();
    return false;
  }
  return true;
}

OracleResult RemoteOracle::do_query(const BitVec& data) {
  // A broken stream never recovers (the frame boundary is gone), so it is
  // a terminal kExhausted, not a retryable transient — retrying into a
  // dead link would spin the resilience policy for nothing. Genuine
  // transients/timeouts of the DEVICE travel inside kBatchReply and keep
  // their own kinds.
  std::vector<OracleResult> rs;
  if (!send_batch({data}, &rs, /*requery=*/false)) {
    return OracleResult::failure(OracleErrorKind::kExhausted);
  }
  return std::move(rs.front());
}

void RemoteOracle::do_query_batch(const std::vector<BitVec>& xs,
                                  std::vector<OracleResult>* out) {
  if (!send_batch(xs, out, /*requery=*/false)) {
    out->clear();
    out->reserve(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
      out->push_back(OracleResult::failure(OracleErrorKind::kExhausted));
  }
}

void RemoteOracle::save_state(std::vector<std::uint8_t>* out) const {
  std::vector<std::uint8_t> state;
  if (!dead_) {
    Frame f;
    if (write_frame(*transport_, FrameType::kStateGet, {}) &&
        read_frame(*transport_, &f) && f.type == FrameType::kStateBlob) {
      state = std::move(f.body);
    } else {
      dead_ = true;
    }
  }
  bytes::put_blob(out, state.data(), state.size());
}

bool RemoteOracle::load_state(bytes::Reader* in) {
  std::vector<std::uint8_t> state;
  if (!in->blob(&state)) return false;
  if (dead_) return false;
  Frame f;
  bool ok = false;
  if (!write_frame(*transport_, FrameType::kStateSet, state) ||
      !read_frame(*transport_, &f) || f.type != FrameType::kAck ||
      !decode_ack(f.body, &ok)) {
    dead_ = true;
    return false;
  }
  return ok;
}

bool RemoteOracle::shutdown() {
  if (dead_) return false;
  Frame f;
  bool ok = false;
  if (!write_frame(*transport_, FrameType::kShutdown, {}) ||
      !read_frame(*transport_, &f) || f.type != FrameType::kAck ||
      !decode_ack(f.body, &ok)) {
    dead_ = true;
    return false;
  }
  return ok;
}

}  // namespace orap::serve
