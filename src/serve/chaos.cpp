#include "serve/chaos.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

namespace orap::serve {
namespace {

// Maps a 64-bit word to a uniform double in [0, 1).
double unit(std::uint64_t w) {
  return static_cast<double>(w >> 11) * (1.0 / 9007199254740992.0);
}

void sleep_us(std::uint64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void sleep_ms(std::uint64_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

ChaosEngine::Fate ChaosEngine::draw(bool* delay) {
  ++ops_;
  const double d = unit(rng_.word());
  const double f = unit(rng_.word());
  *delay = d < opts_.delay_rate;
  if (*delay) ++delays_;
  if (f < opts_.disconnect_rate) {
    ++disconnects_;
    return Fate::kDisconnect;
  }
  if (f < opts_.disconnect_rate + opts_.corrupt_rate) {
    ++corruptions_;
    return Fate::kCorrupt;
  }
  if (f < opts_.disconnect_rate + opts_.corrupt_rate + opts_.truncate_rate) {
    ++truncations_;
    return Fate::kTruncate;
  }
  return Fate::kClean;
}

bool ChaosTransport::read_full(void* buf, std::size_t n) {
  if (inner_ == nullptr) return false;
  bool delay = false;
  const ChaosEngine::Fate fate = chaos_->draw(&delay);
  if (delay) sleep_us(chaos_->options().delay_us);
  switch (fate) {
    case ChaosEngine::Fate::kDisconnect:
      inner_.reset();
      return false;
    case ChaosEngine::Fate::kTruncate: {
      // Deliver a random strict prefix, then hang up mid-read: the caller
      // sees a short read, the peer (on its next op) sees a dead stream.
      const std::size_t keep =
          static_cast<std::size_t>(chaos_->pick(static_cast<std::uint64_t>(n)));
      if (keep > 0) inner_->read_full(buf, keep);
      inner_.reset();
      return false;
    }
    case ChaosEngine::Fate::kCorrupt: {
      if (!inner_->read_full(buf, n)) {
        inner_.reset();
        return false;
      }
      if (n > 0) {
        const std::uint64_t bit = chaos_->pick(static_cast<std::uint64_t>(n) * 8);
        static_cast<std::uint8_t*>(buf)[bit >> 3] ^=
            static_cast<std::uint8_t>(1u << (bit & 7));
      }
      return true;
    }
    case ChaosEngine::Fate::kClean:
      break;
  }
  if (!inner_->read_full(buf, n)) {
    inner_.reset();
    return false;
  }
  return true;
}

bool ChaosTransport::write_full(const void* buf, std::size_t n) {
  if (inner_ == nullptr) return false;
  bool delay = false;
  const ChaosEngine::Fate fate = chaos_->draw(&delay);
  if (delay) sleep_us(chaos_->options().delay_us);
  switch (fate) {
    case ChaosEngine::Fate::kDisconnect:
      inner_.reset();
      return false;
    case ChaosEngine::Fate::kTruncate: {
      const std::size_t keep =
          static_cast<std::size_t>(chaos_->pick(static_cast<std::uint64_t>(n)));
      if (keep > 0) inner_->write_full(buf, keep);
      inner_.reset();
      return false;
    }
    case ChaosEngine::Fate::kCorrupt: {
      if (n == 0) return inner_->write_full(buf, n);
      std::vector<std::uint8_t> copy(static_cast<const std::uint8_t*>(buf),
                                     static_cast<const std::uint8_t*>(buf) + n);
      const std::uint64_t bit = chaos_->pick(static_cast<std::uint64_t>(n) * 8);
      copy[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
      if (!inner_->write_full(copy.data(), n)) {
        inner_.reset();
        return false;
      }
      return true;
    }
    case ChaosEngine::Fate::kClean:
      break;
  }
  if (!inner_->write_full(buf, n)) {
    inner_.reset();
    return false;
  }
  return true;
}

bool ReconnectingTransport::reconnect() {
  inner_.reset();
  std::uint64_t backoff = opts_.backoff_ms;
  for (std::size_t attempt = 0; attempt < opts_.max_attempts; ++attempt) {
    if (attempt > 0) {
      const std::uint64_t jitter = backoff > 0 ? jitter_.below(backoff) : 0;
      sleep_ms(backoff + jitter);
      backoff = backoff < opts_.backoff_max_ms
                    ? std::min(backoff * 2, opts_.backoff_max_ms)
                    : opts_.backoff_max_ms;
    }
    ++dial_attempts_;
    inner_ = connect_();
    if (inner_ != nullptr) {
      ++reconnects_;
      return true;
    }
  }
  return false;
}

}  // namespace orap::serve
