#include "serve/result_cache.h"

#include <utility>

namespace orap::serve {

bool OracleResultCache::lookup(const BitVec& x, BitVec* y) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(x);
  if (it == map_.end()) return false;
  *y = it->second;
  return true;
}

void OracleResultCache::insert(const BitVec& x, const BitVec& y) {
  std::lock_guard<std::mutex> lock(mu_);
  map_.emplace(x, y);
}

std::size_t OracleResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

OracleResultCache& ResultCacheRegistry::for_chip(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = caches_[fingerprint];
  if (!slot) slot = std::make_unique<OracleResultCache>();
  return *slot;
}

std::size_t ResultCacheRegistry::num_chips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return caches_.size();
}

OracleResult CachedOracle::do_query(const BitVec& data) {
  BitVec y;
  if (cache_.lookup(data, &y)) {
    ++hits_;
    return y;
  }
  ++misses_;
  OracleResult r = inner().query(data);
  if (r.ok()) cache_.insert(data, r.response());
  return r;
}

void CachedOracle::do_query_batch(const std::vector<BitVec>& xs,
                                  std::vector<OracleResult>* out) {
  out->reserve(xs.size());
  const OracleResult placeholder =
      OracleResult::failure(OracleErrorKind::kTransient);
  // Duplicate inputs inside one batch (vote replicas of the same DIP) are
  // deduplicated: the device below is deterministic, so one inner query
  // serves every replica — that is most of what vote batching saves.
  std::vector<BitVec> miss;
  std::unordered_map<BitVec, std::size_t, BitVecHash> pending;
  std::vector<std::pair<std::size_t, std::size_t>> fill;  // out idx, miss idx
  for (std::size_t i = 0; i < xs.size(); ++i) {
    BitVec y;
    if (cache_.lookup(xs[i], &y)) {
      ++hits_;
      out->push_back(std::move(y));
      continue;
    }
    ++misses_;
    out->push_back(placeholder);
    const auto it = pending.find(xs[i]);
    if (it == pending.end()) {
      pending.emplace(xs[i], miss.size());
      fill.emplace_back(i, miss.size());
      miss.push_back(xs[i]);
    } else {
      fill.emplace_back(i, it->second);
    }
  }
  if (miss.empty()) return;
  std::vector<OracleResult> sub;
  inner().query_batch(miss, &sub);
  for (std::size_t j = 0; j < sub.size(); ++j) {
    if (sub[j].ok()) cache_.insert(miss[j], sub[j].response());
  }
  for (const auto& [at, from] : fill) (*out)[at] = sub[from];
}

}  // namespace orap::serve
