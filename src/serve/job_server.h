#pragma once
// Attack job server: runs N oracle-guided attack jobs concurrently on the
// work-stealing pool, each against its own (optionally fault-injected)
// oracle stack wrapped in a CheckpointedOracle. With a checkpoint
// directory configured, every job's oracle transcript is snapshotted
// atomically every `checkpoint_every` live queries; a killed server
// re-run with the same job list resumes each job from its last snapshot
// and — because the attacks are deterministic given oracle responses and
// the fault decorators' RNG positions travel in the snapshot — finishes
// with the byte-identical final key, status, and counters the
// uninterrupted run produces.
//
// Jobs run via parallel_for with grain 1, so the pool schedules them;
// each job's own attack-internal parallelism (portfolio / cube) runs
// inline inside the job's worker (nested regions do), keeping the
// per-job trajectory independent of how many jobs share the pool.
//
// Deadlines (`deadline_ms >= 0`) are wall-clock and therefore waive the
// byte-identity guarantee exactly as they do in-process; checkpointed
// jobs normally leave them off.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "attacks/sat_attack.h"
#include "locking/locking.h"
#include "serve/result_cache.h"

namespace orap::serve {

/// Deterministic fault-decorator stack built over a job's GoldenOracle
/// (innermost to outermost: noisy, stuck, intermittent, budgeted,
/// latent). All off by default.
struct JobOracleConfig {
  double noise_rate = 0.0;
  std::uint64_t noise_seed = 1;
  double stick_rate = 0.0;
  std::uint64_t stick_seed = 2;
  double drop_rate = 0.0;
  std::uint64_t drop_seed = 3;
  std::size_t max_queries = 0;  // 0 = unlimited
  std::uint64_t latency_us = 0;
  std::uint64_t jitter_us = 0;
  std::uint64_t latency_seed = 4;
};

struct AttackJob {
  enum class Kind { kSat, kAppSat, kDoubleDip };

  std::string id;  // checkpoint file stem; unique within a job list
  const LockedCircuit* circuit = nullptr;
  Kind kind = Kind::kSat;
  SatAttackOptions sat;     // kSat / kDoubleDip
  AppSatOptions appsat;     // kAppSat
  JobOracleConfig oracle;
};

struct JobServerOptions {
  /// Directory for <id>.ckpt files; empty disables checkpointing.
  std::string checkpoint_dir;
  /// Live oracle queries between snapshots.
  std::size_t checkpoint_every = 64;
  /// Shares a hash-keyed input->response cache (serve/result_cache.h)
  /// between all jobs attacking the same chip (same circuit fingerprint):
  /// a query one job already paid for is served to every other job with
  /// zero device traffic. The cache sits directly above the golden device
  /// and BELOW the fault decorators, so each job's fault trajectory — and
  /// therefore its result — is byte-identical with the cache on or off;
  /// only the device-traffic counters change. Cache entries are process-
  /// lifetime only and deliberately not checkpointed: a resumed job
  /// replays its own transcript and re-warms the cache as it goes live.
  bool result_cache = false;
  /// Supervision: a job whose attack throws is retried up to this many
  /// extra attempts — each resuming from the job's checkpoint when
  /// checkpointing is on, so transiently-failed progress is not repaid —
  /// with exponential backoff starting at retry_backoff_ms between
  /// attempts. A job that fails every attempt is contained in
  /// JobResult::failed/error; run() itself never throws for a job failure.
  std::size_t max_job_retries = 0;
  std::uint64_t retry_backoff_ms = 0;
  /// Graceful drain: when *stop goes true (SIGTERM/SIGINT handler), every
  /// running job flushes its checkpoint at its next live oracle query and
  /// returns a stopped JobResult; queued jobs return stopped without
  /// starting. nullptr disables.
  const std::atomic<bool>* stop = nullptr;
};

struct JobResult {
  std::string id;
  SatAttackResult result;
  std::uint64_t config_hash = 0;
  bool resumed = false;              // a valid checkpoint was replayed
  std::size_t replayed_queries = 0;  // transcript prefix served from disk
  bool checkpoint_rejected = false;  // file existed but was corrupt or
                                     // belonged to a different config
  std::uint64_t checkpoints_written = 0;
  std::string checkpoint_path;       // empty when checkpointing is off
  // Supervision outcome. At most one of failed/stopped is set; when
  // either is, `result` is meaningless and `error` says why.
  bool failed = false;    // threw on every allowed attempt
  bool stopped = false;   // drained via the stop flag; checkpoint flushed
  std::string error;
  std::uint32_t attempts = 0;  // 1 = first try succeeded
};

/// Fingerprint of everything that shapes a job's trajectory (circuit,
/// attack kind + options, oracle stack). Embedded in the checkpoint so a
/// stale file can never resume a different job.
std::uint64_t job_config_hash(const AttackJob& job);

/// Fingerprint of the chip function alone (shape + correct key), shared
/// by every job attacking the same circuit regardless of attack kind,
/// options, or fault config — the result-cache registry key.
std::uint64_t chip_fingerprint(const LockedCircuit& circuit);

class JobServer {
 public:
  explicit JobServer(const JobServerOptions& opts = {}) : opts_(opts) {}

  /// Runs one job to completion (resuming from its checkpoint if one is
  /// valid) and writes a final snapshot. Supervised: exceptions are
  /// contained into JobResult::failed (after max_job_retries resume-and-
  /// retry attempts) and a drain unwinds into JobResult::stopped.
  JobResult run_job(const AttackJob& job) const;

  /// Runs all jobs concurrently on the pool; results in job order. Never
  /// crashes on a failing job: each result carries its own outcome.
  std::vector<JobResult> run(const std::vector<AttackJob>& jobs) const;

  /// The per-chip result caches (populated only with result_cache on).
  const ResultCacheRegistry& caches() const { return caches_; }

 private:
  /// One unsupervised attempt (the pre-supervision run_job body).
  JobResult run_job_attempt(const AttackJob& job) const;

  JobServerOptions opts_;
  // Shared across run()/run_job() calls for the server's lifetime; the
  // registry hands out one cache per chip fingerprint.
  mutable ResultCacheRegistry caches_;
};

}  // namespace orap::serve
