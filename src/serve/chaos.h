#pragma once
// Transport fault injection and self-healing redial.
//
// Two decorators over serve::Transport:
//
//  * ChaosTransport — wraps any transport and injects faults at seeded,
//    deterministic per-operation rates: hard disconnects (the inner
//    transport is destroyed, so a TCP peer sees EOF/RST), single-bit byte
//    corruption (caught by the frame CRC on the other side), frame
//    truncation (a random prefix is delivered, then the stream dies), and
//    extra delay. All randomness comes from one ChaosEngine so a given
//    (options, seed) pair replays the exact same fault script — chaos runs
//    are reproducible test vectors, not flaky noise.
//
//  * ReconnectingTransport — owns a connector factory (dial a TCP host,
//    respawn a subprocess, ...) and re-dials on demand with exponential
//    backoff, seeded jitter, and a max-attempt cap. It does NOT hide
//    failures from the caller: a dead stream still fails the current
//    read/write, because the frame boundary is gone and only a
//    protocol-aware layer (RemoteOracle) knows how to resynchronize.
//    RemoteOracle calls reconnect() and then re-runs its handshake.
//
// Rates are charged per transport operation (one read_full/write_full
// call). A protocol frame is a handful of operations (header write + body
// write on the way out; type byte + rest-of-header + body on the way in),
// so the effective per-frame fault rate is a small multiple of the per-op
// rate.

#include <cstdint>
#include <functional>
#include <memory>

#include "serve/transport.h"
#include "util/rng.h"

namespace orap::serve {

struct ChaosOptions {
  /// Per-operation probability of each fate. Disconnect wins over corrupt
  /// wins over truncate when the single uniform draw lands in overlapping
  /// mass; keep the sum well below 1.
  double disconnect_rate = 0.0;
  double corrupt_rate = 0.0;
  double truncate_rate = 0.0;
  /// Independent per-operation probability of sleeping delay_us before the
  /// operation runs (models a congested or throttled link).
  double delay_rate = 0.0;
  std::uint64_t delay_us = 0;
  std::uint64_t seed = 1;

  bool any() const {
    return disconnect_rate > 0.0 || corrupt_rate > 0.0 ||
           truncate_rate > 0.0 || delay_rate > 0.0;
  }
};

/// Seeded fault scheduler shared by every ChaosTransport a connector
/// factory creates, so the fault script continues deterministically across
/// reconnections instead of restarting from the seed on every redial.
class ChaosEngine {
 public:
  enum class Fate : std::uint8_t { kClean, kDisconnect, kCorrupt, kTruncate };

  explicit ChaosEngine(const ChaosOptions& opts)
      : opts_(opts), rng_(opts.seed) {}

  /// Draws the fate of the next transport operation. Always consumes
  /// exactly two RNG words (one for delay, one for the fate) so the stream
  /// position depends only on how many operations ran, not on which rates
  /// are enabled.
  Fate draw(bool* delay);

  /// Uniform draw in [0, bound) for corruption bit / truncation length
  /// placement.
  std::uint64_t pick(std::uint64_t bound) {
    return bound == 0 ? 0 : rng_.below(bound);
  }

  const ChaosOptions& options() const { return opts_; }
  std::uint64_t ops() const { return ops_; }
  std::uint64_t disconnects() const { return disconnects_; }
  std::uint64_t corruptions() const { return corruptions_; }
  std::uint64_t truncations() const { return truncations_; }
  std::uint64_t delays() const { return delays_; }

 private:
  ChaosOptions opts_;
  Rng rng_;
  std::uint64_t ops_ = 0;
  std::uint64_t disconnects_ = 0;
  std::uint64_t corruptions_ = 0;
  std::uint64_t truncations_ = 0;
  std::uint64_t delays_ = 0;
};

/// Fault-injecting decorator. Owns the inner transport; a disconnect or
/// truncation fate destroys it (closing its fds, so a socket peer observes
/// a hard hangup) and every later operation fails until the whole
/// ChaosTransport is discarded by a redial.
class ChaosTransport final : public Transport {
 public:
  ChaosTransport(std::unique_ptr<Transport> inner, ChaosEngine* chaos)
      : inner_(std::move(inner)), chaos_(chaos) {}

  bool read_full(void* buf, std::size_t n) override;
  bool write_full(const void* buf, std::size_t n) override;

  bool alive() const { return inner_ != nullptr; }

 private:
  std::unique_ptr<Transport> inner_;
  ChaosEngine* chaos_;
};

/// Dials a fresh transport. Returns nullptr when the dial fails (host
/// down, subprocess spawn failure); ReconnectingTransport backs off and
/// retries up to its attempt cap.
using TransportFactory = std::function<std::unique_ptr<Transport>()>;

struct ReconnectOptions {
  /// Dial attempts per reconnect() call before giving up.
  std::size_t max_attempts = 8;
  /// First-retry backoff; doubles per failed attempt, capped at
  /// backoff_max_ms. Seeded jitter in [0, backoff) is added on top so
  /// herds of clients do not redial in lockstep.
  std::uint64_t backoff_ms = 10;
  std::uint64_t backoff_max_ms = 2000;
  std::uint64_t jitter_seed = 1;
};

/// Redialing decorator. Forwards I/O to the current inner transport and
/// exposes reconnect() to replace a dead stream with a freshly dialed one.
class ReconnectingTransport final : public Transport {
 public:
  ReconnectingTransport(TransportFactory connect, const ReconnectOptions& opts,
                        std::unique_ptr<Transport> initial)
      : connect_(std::move(connect)),
        opts_(opts),
        jitter_(opts.jitter_seed),
        inner_(std::move(initial)) {}

  bool read_full(void* buf, std::size_t n) override {
    return inner_ != nullptr && inner_->read_full(buf, n);
  }
  bool write_full(const void* buf, std::size_t n) override {
    return inner_ != nullptr && inner_->write_full(buf, n);
  }

  /// Drops the current stream and dials a new one with exponential backoff
  /// and jitter. Returns false once max_attempts dials in this call all
  /// failed; the caller may call again (each call gets a fresh budget).
  bool reconnect();

  bool connected() const { return inner_ != nullptr; }
  std::uint64_t reconnects() const { return reconnects_; }
  std::uint64_t dial_attempts() const { return dial_attempts_; }

 private:
  TransportFactory connect_;
  ReconnectOptions opts_;
  Rng jitter_;
  std::unique_ptr<Transport> inner_;
  std::uint64_t reconnects_ = 0;
  std::uint64_t dial_attempts_ = 0;
};

}  // namespace orap::serve
