#include "serve/oracle_server.h"

#include <chrono>
#include <thread>

#include "serve/wire.h"

namespace orap::serve {

OracleServer::OracleServer(Oracle& oracle, const OracleServerOptions& opts)
    : oracle_(oracle), opts_(opts), jitter_rng_(opts.jitter_seed) {}

bool OracleServer::serve(Transport& t) {
  ++connections_;
  Frame f;
  while (true) {
    if (opts_.stop != nullptr &&
        opts_.stop->load(std::memory_order_relaxed))
      return true;  // drain requested: finish between frames
    switch (read_frame_ex(t, &f)) {
      case FrameRead::kFrame:
        break;
      case FrameRead::kEof:
        return true;  // the client hung up cleanly between frames
      case FrameRead::kTorn:
        // Stream died mid-frame: nothing can be sent back (the peer is
        // gone or desynchronized), but it is this connection's failure
        // alone.
        ++protocol_errors_;
        return false;
      case FrameRead::kBad:
        // Oversized, unknown type, or CRC mismatch. The stream position
        // may still be intact (hand-rolled bad frame) or not (corrupted
        // length); either way the error frame is best-effort and the
        // connection is done.
        ++protocol_errors_;
        write_frame(t, FrameType::kError,
                    encode_error("bad frame: oversized, unknown type, or "
                                 "CRC mismatch"));
        return false;
    }
    ++frames_;
    switch (f.type) {
      case FrameType::kHello: {
        std::uint32_t version = 0;
        if (!decode_hello(f.body, &version) || version != kProtoVersion) {
          ++protocol_errors_;
          write_frame(t, FrameType::kError,
                      encode_error("unsupported protocol version"));
          return false;
        }
        HelloReply r;
        r.version = kProtoVersion;
        r.num_inputs = oracle_.num_inputs();
        r.num_outputs = oracle_.num_outputs();
        if (!write_frame(t, FrameType::kHelloReply, encode_hello_reply(r)))
          return true;
        break;
      }
      case FrameType::kQueryBatch: {
        bool requery = false;
        bool want_state = false;
        std::vector<BitVec> xs;
        if (!decode_query_batch(f.body, oracle_.num_inputs(), &requery, &xs,
                                &want_state)) {
          ++protocol_errors_;
          write_frame(t, FrameType::kError,
                      encode_error("malformed query batch"));
          return false;
        }
        // One round trip, one latency charge — regardless of batch size.
        if (opts_.latency_us > 0 || opts_.jitter_us > 0) {
          std::uint64_t us = opts_.latency_us;
          if (opts_.jitter_us > 0) us += jitter_rng_.below(opts_.jitter_us + 1);
          if (us > 0)
            std::this_thread::sleep_for(std::chrono::microseconds(us));
        }
        std::vector<OracleResult> rs;
        rs.reserve(xs.size());
        for (const BitVec& x : xs)
          rs.push_back(requery ? oracle_.requery(x) : oracle_.query(x));
        queries_ += xs.size();
        // want_state: answers + post-batch stack state in ONE reply, so a
        // reconnecting client's recovery cache can never be stale relative
        // to answers it consumed.
        std::vector<std::uint8_t> state;
        if (want_state) oracle_.save_state(&state);
        if (!write_frame(t, FrameType::kBatchReply,
                         encode_batch_reply(rs, want_state ? &state : nullptr)))
          return true;
        break;
      }
      case FrameType::kStateGet: {
        std::vector<std::uint8_t> state;
        oracle_.save_state(&state);
        if (!write_frame(t, FrameType::kStateBlob, state)) return true;
        break;
      }
      case FrameType::kStateSet: {
        bytes::Reader in(f.body);
        const bool ok =
            oracle_.load_state(&in) && in.ok() && in.remaining() == 0;
        if (!write_frame(t, FrameType::kAck, encode_ack(ok))) return true;
        break;
      }
      case FrameType::kShutdown:
        write_frame(t, FrameType::kAck, encode_ack(true));
        return true;
      default:
        ++protocol_errors_;
        write_frame(t, FrameType::kError,
                    encode_error("unexpected frame type"));
        return false;
    }
  }
}

}  // namespace orap::serve
