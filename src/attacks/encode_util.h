#pragma once
// Shared CNF-encoding utilities for the oracle-guided attacks.
//
// A locked netlist's key inputs influence only their fanout cones; when a
// second circuit copy differs solely in the key variables, every gate
// outside that cone can share the first copy's CNF variables. Without the
// sharing, the SAT solver has to re-derive the equality of two
// structurally identical subcircuits — the dominant cost of miter-style
// attacks on a plain CDCL solver.

#include <vector>

#include "locking/locking.h"
#include "netlist/simulator.h"
#include "sat/encode.h"

namespace orap {

class LockedEncoder {
 public:
  LockedEncoder(sat::ClauseSink& solver, const LockedCircuit& lc)
      : s_(solver), enc_(solver), lc_(lc), sim_(lc.netlist) {
    // Forward key-dependence marking.
    key_dep_.assign(lc.netlist.num_gates(), false);
    for (std::size_t i = 0; i < lc.num_key_inputs; ++i)
      key_dep_[lc.key_input(i)] = true;
    for (GateId g = 0; g < lc.netlist.num_gates(); ++g) {
      for (const GateId f : lc.netlist.fanins(g)) {
        if (key_dep_[f]) {
          key_dep_[g] = true;
          break;
        }
      }
    }
    const_true_ = s_.new_var();
    s_.add_clause({sat::pos(const_true_)});
  }

  sat::Encoder& encoder() { return enc_; }
  const std::vector<bool>& key_dependent() const { return key_dep_; }

  /// Incremental mode: per-DIP cones are constant-folded against the
  /// simulated key-independent values before any clause is emitted —
  /// buffers/inverters become literal aliases, controlling constants
  /// collapse whole gates, XOR chains fold to polarity flips. Only the
  /// residual gates get fresh variables and clauses, so the persistent
  /// solver's formula grows far slower across the DIP loop. The folded
  /// and unfolded constraints are equisatisfiable over the key variables;
  /// the CNF (and hence the solver's search trajectory) differs, which is
  /// why the knob defaults off.
  void set_fold_constants(bool on) { fold_ = on; }
  bool fold_constants() const { return fold_; }
  /// Cone gates resolved during add_io_constraint without fresh clauses
  /// (folded to a constant or aliased to an existing literal).
  std::uint64_t encode_reused() const { return encode_reused_; }

  /// Freezes the encoder-owned interface vars (the constants) against
  /// preprocessing. Attacks call this — together with freezing their data
  /// inputs, key vectors, activation literal and miter outputs — before
  /// Solver/PortfolioSolver::simplify(), because every later
  /// add_io_constraint() references the key vars and the constants.
  void freeze_interface() {
    s_.freeze(const_true_);
    if (const_false_ >= 0) s_.freeze(const_false_);
  }
  sat::Lit constant(bool v) const {
    return v ? sat::pos(const_true_) : sat::neg(const_true_);
  }

  /// Full encoding (fresh data-input and key vars unless provided).
  sat::CircuitVars encode_full(const std::vector<sat::Var>& data,
                               const std::vector<sat::Var>& key) {
    std::vector<sat::Var> shared(lc_.netlist.num_inputs(),
                                 sat::Encoder::kNoVar);
    for (std::size_t i = 0; i < data.size(); ++i) shared[i] = data[i];
    for (std::size_t i = 0; i < key.size(); ++i)
      shared[lc_.num_data_inputs + i] = key[i];
    return enc_.encode(lc_.netlist, shared);
  }

  /// Key-variant encoding: shares every gate outside the key cone with
  /// `base`; only key-dependent gates get fresh variables.
  ///
  /// `equivalence_scaffold` additionally encodes, per duplicated gate
  /// pair, the valid implication "all corresponding fanins equal => the
  /// outputs are equal". Without it, proving the miter UNSAT once the
  /// oracle constraints pin both keys to the same value requires the
  /// solver to re-derive the equality of two structurally identical
  /// cones — an exponentially painful exercise for plain CDCL; with it,
  /// equal keys unit-propagate straight to equal outputs.
  sat::CircuitVars encode_key_variant(const sat::CircuitVars& base,
                                      const std::vector<sat::Var>& key,
                                      bool equivalence_scaffold = true) {
    const Netlist& n = lc_.netlist;
    sat::CircuitVars cv;
    cv.gate.assign(n.num_gates(), sat::Encoder::kNoVar);
    // eq[g]: literal-var asserting base and variant agree at gate g
    // (only tracked for duplicated gates; shared gates agree trivially).
    std::vector<sat::Var> eq(n.num_gates(), sat::Encoder::kNoVar);
    for (std::size_t i = 0; i < lc_.num_data_inputs; ++i) {
      const GateId g = n.inputs()[i];
      cv.gate[g] = base.gate[g];
      cv.inputs.push_back(cv.gate[g]);
    }
    for (std::size_t i = 0; i < lc_.num_key_inputs; ++i) {
      const GateId g = lc_.key_input(i);
      cv.gate[g] = key[i];
      cv.inputs.push_back(key[i]);
      if (equivalence_scaffold)
        eq[g] = xnor_var(base.gate[g], key[i]);
    }
    for (GateId g = 0; g < n.num_gates(); ++g) {
      if (cv.gate[g] != sat::Encoder::kNoVar) continue;
      if (!key_dep_[g]) {
        cv.gate[g] = base.gate[g];
        continue;
      }
      fi_.clear();
      for (const GateId f : n.fanins(g)) fi_.push_back(cv.gate[f]);
      cv.gate[g] = enc_.encode_gate(n.type(g), fi_);
      if (equivalence_scaffold) {
        eq[g] = xnor_var(base.gate[g], cv.gate[g]);
        // (eq over all duplicated fanins) -> eq[g].
        cl_.clear();
        for (const GateId f : n.fanins(g))
          if (eq[f] != sat::Encoder::kNoVar) cl_.push_back(sat::neg(eq[f]));
        cl_.push_back(sat::pos(eq[g]));
        s_.add_clause(cl_);
      }
    }
    for (const auto& po : n.outputs()) cv.outputs.push_back(cv.gate[po.gate]);
    return cv;
  }

  /// Adds the oracle constraint C(xd, key_vars) == y, encoding only the
  /// key-dependent cone (key-independent gate values are computed by
  /// simulation and enter the CNF as constants). Returns false when a
  /// key-independent output already contradicts `y` — a lying oracle no
  /// key assignment can explain.
  ///
  /// `guard >= 0` makes the constraint retractable: every output-pinning
  /// clause carries ¬guard, so the pair only binds while pos(guard) is
  /// assumed (or asserted), and a unit ¬guard evicts it for good. The cone
  /// definition clauses stay unguarded — they only define fresh variables
  /// and are satisfiable under any key. This is the suspect-pair
  /// quarantine hook of the resilient attack loop.
  bool add_io_constraint(const BitVec& xd, const BitVec& y,
                         const std::vector<sat::Var>& key_vars,
                         sat::Var guard = -1) {
    const Netlist& n = lc_.netlist;
    // Key-independent values via simulation (key bits are irrelevant for
    // these gates; use zeros).
    sim_.broadcast_inputs(lc_.assemble_input(xd, BitVec(lc_.num_key_inputs)));
    sim_.run();
    auto sim_bit = [this](GateId g) { return (sim_.value(g) & 1) != 0; };

    if (fold_) return add_io_constraint_folded(y, key_vars, guard, sim_bit);

    // This runs once per DIP: reuse the gate-var map and fanin scratch
    // across calls instead of reallocating num_gates() entries each time.
    auto& var = io_var_;
    var.assign(n.num_gates(), sat::Encoder::kNoVar);
    for (std::size_t i = 0; i < lc_.num_key_inputs; ++i)
      var[lc_.key_input(i)] = key_vars[i];
    for (GateId g = 0; g < n.num_gates(); ++g) {
      if (!key_dep_[g] || var[g] != sat::Encoder::kNoVar) continue;
      // Key-independent fanins enter as constants (their simulated value).
      fi_.clear();
      for (const GateId f : n.fanins(g))
        fi_.push_back(key_dep_[f] ? var[f] : const_var(sim_bit(f)));
      var[g] = enc_.encode_gate(n.type(g), fi_);
    }

    bool consistent = true;
    for (std::size_t o = 0; o < n.num_outputs(); ++o) {
      const GateId g = n.outputs()[o].gate;
      if (key_dep_[g]) {
        if (guard >= 0)
          s_.add_clause({sat::neg(guard), sat::Lit(var[g], !y.get(o))});
        else
          s_.add_clause({sat::Lit(var[g], !y.get(o))});
      } else if (sim_bit(g) != y.get(o)) {
        consistent = false;
      }
    }
    return consistent;
  }

 private:
  /// Folded cone value: a known constant (k = 0/1) or a literal (k = -1).
  struct FLit {
    sat::Lit lit{};
    std::int8_t k = -1;
    static FLit constant(bool v) { return {sat::Lit{}, v ? std::int8_t{1} : std::int8_t{0}}; }
    static FLit symbolic(sat::Lit l) { return {l, -1}; }
    bool is_const() const { return k >= 0; }
  };

  /// Incremental-mode cone encoding: same key constraint as the unfolded
  /// path, but gates whose value is forced by the key-independent
  /// simulation (or that reduce to an alias / negation of one literal)
  /// never touch the solver. Returns false exactly when an output's value
  /// is forced — by simulation or by folding — to contradict `y`: no key
  /// assignment can explain the response (the classic lying-oracle proof,
  /// caught here without a single solver call).
  template <typename SimBit>
  bool add_io_constraint_folded(const BitVec& y,
                                const std::vector<sat::Var>& key_vars,
                                sat::Var guard, SimBit sim_bit) {
    const Netlist& n = lc_.netlist;
    auto& fv = io_fold_;
    fv.assign(n.num_gates(), FLit{});
    for (std::size_t i = 0; i < lc_.num_key_inputs; ++i)
      fv[lc_.key_input(i)] = FLit::symbolic(sat::pos(key_vars[i]));

    auto fanin_of = [&](GateId f) {
      return key_dep_[f] ? fv[f] : FLit::constant(sim_bit(f));
    };

    std::vector<sat::Lit>& res = cl_;  // residual-literal scratch
    for (GateId g = 0; g < n.num_gates(); ++g) {
      if (!key_dep_[g] || n.type(g) == GateType::kInput) continue;
      const auto fins = n.fanins(g);
      const GateType t = n.type(g);
      FLit out;
      switch (t) {
        case GateType::kConst0:
        case GateType::kConst1:
          out = FLit::constant(t == GateType::kConst1);
          break;
        case GateType::kBuf: {
          out = fanin_of(fins[0]);
          ++encode_reused_;
          break;
        }
        case GateType::kNot: {
          out = fanin_of(fins[0]);
          if (out.is_const())
            out.k = static_cast<std::int8_t>(1 - out.k);
          else
            out.lit = ~out.lit;
          ++encode_reused_;
          break;
        }
        case GateType::kAnd:
        case GateType::kNand:
        case GateType::kOr:
        case GateType::kNor: {
          const bool is_or = t == GateType::kOr || t == GateType::kNor;
          const bool inv = t == GateType::kNand || t == GateType::kNor;
          // Controlling value: 0 for AND, 1 for OR.
          const bool ctrl = is_or;
          bool controlled = false;
          res.clear();
          for (const GateId f : fins) {
            const FLit v = fanin_of(f);
            if (v.is_const()) {
              if ((v.k != 0) == ctrl) {
                controlled = true;
                break;
              }
              continue;  // neutral constant: drop
            }
            res.push_back(v.lit);
          }
          if (controlled) {
            out = FLit::constant(ctrl != inv);
            ++encode_reused_;
          } else if (res.empty()) {
            out = FLit::constant(!ctrl != inv);
            ++encode_reused_;
          } else if (res.size() == 1) {
            out = FLit::symbolic(inv ? ~res[0] : res[0]);
            ++encode_reused_;
          } else {
            out = FLit::symbolic(is_or ? enc_.encode_or_lits(res, inv)
                                       : enc_.encode_and_lits(res, inv));
          }
          break;
        }
        case GateType::kXor:
        case GateType::kXnor: {
          bool parity = t == GateType::kXnor;
          res.clear();
          for (const GateId f : fins) {
            const FLit v = fanin_of(f);
            if (v.is_const())
              parity = parity != (v.k != 0);
            else
              res.push_back(v.lit);
          }
          if (res.empty()) {
            out = FLit::constant(parity);
            ++encode_reused_;
          } else if (res.size() == 1) {
            out = FLit::symbolic(parity ? ~res[0] : res[0]);
            ++encode_reused_;
          } else {
            sat::Lit acc = res[0];
            for (std::size_t i = 1; i < res.size(); ++i)
              acc = enc_.encode_xor2_lit(acc, res[i]);
            out = FLit::symbolic(parity ? ~acc : acc);
          }
          break;
        }
        case GateType::kMux: {
          const FLit s = fanin_of(fins[0]);
          const FLit d0 = fanin_of(fins[1]);
          const FLit d1 = fanin_of(fins[2]);
          if (s.is_const()) {
            out = s.k != 0 ? d1 : d0;
            ++encode_reused_;
          } else if (d0.is_const() && d1.is_const()) {
            if (d0.k == d1.k)
              out = d0;
            else if (d0.k == 0)  // d0=0, d1=1: out = s
              out = FLit::symbolic(s.lit);
            else  // d0=1, d1=0: out = !s
              out = FLit::symbolic(~s.lit);
            ++encode_reused_;
          } else if (!d0.is_const() && !d1.is_const() && d0.lit == d1.lit) {
            out = d0;
            ++encode_reused_;
          } else {
            auto as_lit = [this](const FLit& v) {
              return v.is_const() ? sat::pos(const_var(v.k != 0)) : v.lit;
            };
            out = FLit::symbolic(
                enc_.encode_mux_lit(s.lit, as_lit(d0), as_lit(d1)));
          }
          break;
        }
        case GateType::kInput:
          break;  // unreachable (filtered above)
      }
      fv[g] = out;
    }

    bool consistent = true;
    for (std::size_t o = 0; o < n.num_outputs(); ++o) {
      const GateId g = n.outputs()[o].gate;
      const bool want = y.get(o);
      if (!key_dep_[g]) {
        if (sim_bit(g) != want) consistent = false;
        continue;
      }
      const FLit v = fv[g];
      if (v.is_const()) {
        // The cone folded to a constant: equal is a tautology, different
        // is the same no-key-can-explain-this proof as the key-independent
        // mismatch above.
        if ((v.k != 0) != want) consistent = false;
        continue;
      }
      const sat::Lit pin = want ? v.lit : ~v.lit;
      if (guard >= 0)
        s_.add_clause({sat::neg(guard), pin});
      else
        s_.add_clause({pin});
    }
    return consistent;
  }

  /// Fresh variable e with e <-> (a == b).
  sat::Var xnor_var(sat::Var a, sat::Var b) {
    const sat::Var e = s_.new_var();
    s_.add_clause({sat::neg(e), sat::neg(a), sat::pos(b)});
    s_.add_clause({sat::neg(e), sat::pos(a), sat::neg(b)});
    s_.add_clause({sat::pos(e), sat::pos(a), sat::pos(b)});
    s_.add_clause({sat::pos(e), sat::neg(a), sat::neg(b)});
    return e;
  }

  sat::Var const_var(bool v) {
    if (v) return const_true_;
    if (const_false_ < 0) {
      const_false_ = s_.new_var();
      s_.add_clause({sat::neg(const_false_)});
    }
    return const_false_;
  }

  sat::ClauseSink& s_;
  sat::Encoder enc_;
  const LockedCircuit& lc_;
  Simulator sim_;
  std::vector<bool> key_dep_;
  sat::Var const_true_ = -1;
  sat::Var const_false_ = -1;

  bool fold_ = false;
  std::uint64_t encode_reused_ = 0;

  // Scratch buffers reused across encode calls.
  std::vector<sat::Var> fi_;
  std::vector<sat::Lit> cl_;
  std::vector<sat::Var> io_var_;
  std::vector<FLit> io_fold_;
};

}  // namespace orap
