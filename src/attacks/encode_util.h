#pragma once
// Shared CNF-encoding utilities for the oracle-guided attacks.
//
// A locked netlist's key inputs influence only their fanout cones; when a
// second circuit copy differs solely in the key variables, every gate
// outside that cone can share the first copy's CNF variables. Without the
// sharing, the SAT solver has to re-derive the equality of two
// structurally identical subcircuits — the dominant cost of miter-style
// attacks on a plain CDCL solver.

#include <vector>

#include "locking/locking.h"
#include "netlist/simulator.h"
#include "sat/encode.h"

namespace orap {

class LockedEncoder {
 public:
  LockedEncoder(sat::ClauseSink& solver, const LockedCircuit& lc)
      : s_(solver), enc_(solver), lc_(lc), sim_(lc.netlist) {
    // Forward key-dependence marking.
    key_dep_.assign(lc.netlist.num_gates(), false);
    for (std::size_t i = 0; i < lc.num_key_inputs; ++i)
      key_dep_[lc.key_input(i)] = true;
    for (GateId g = 0; g < lc.netlist.num_gates(); ++g) {
      for (const GateId f : lc.netlist.fanins(g)) {
        if (key_dep_[f]) {
          key_dep_[g] = true;
          break;
        }
      }
    }
    const_true_ = s_.new_var();
    s_.add_clause({sat::pos(const_true_)});
  }

  sat::Encoder& encoder() { return enc_; }
  const std::vector<bool>& key_dependent() const { return key_dep_; }

  /// Freezes the encoder-owned interface vars (the constants) against
  /// preprocessing. Attacks call this — together with freezing their data
  /// inputs, key vectors, activation literal and miter outputs — before
  /// Solver/PortfolioSolver::simplify(), because every later
  /// add_io_constraint() references the key vars and the constants.
  void freeze_interface() {
    s_.freeze(const_true_);
    if (const_false_ >= 0) s_.freeze(const_false_);
  }
  sat::Lit constant(bool v) const {
    return v ? sat::pos(const_true_) : sat::neg(const_true_);
  }

  /// Full encoding (fresh data-input and key vars unless provided).
  sat::CircuitVars encode_full(const std::vector<sat::Var>& data,
                               const std::vector<sat::Var>& key) {
    std::vector<sat::Var> shared(lc_.netlist.num_inputs(),
                                 sat::Encoder::kNoVar);
    for (std::size_t i = 0; i < data.size(); ++i) shared[i] = data[i];
    for (std::size_t i = 0; i < key.size(); ++i)
      shared[lc_.num_data_inputs + i] = key[i];
    return enc_.encode(lc_.netlist, shared);
  }

  /// Key-variant encoding: shares every gate outside the key cone with
  /// `base`; only key-dependent gates get fresh variables.
  ///
  /// `equivalence_scaffold` additionally encodes, per duplicated gate
  /// pair, the valid implication "all corresponding fanins equal => the
  /// outputs are equal". Without it, proving the miter UNSAT once the
  /// oracle constraints pin both keys to the same value requires the
  /// solver to re-derive the equality of two structurally identical
  /// cones — an exponentially painful exercise for plain CDCL; with it,
  /// equal keys unit-propagate straight to equal outputs.
  sat::CircuitVars encode_key_variant(const sat::CircuitVars& base,
                                      const std::vector<sat::Var>& key,
                                      bool equivalence_scaffold = true) {
    const Netlist& n = lc_.netlist;
    sat::CircuitVars cv;
    cv.gate.assign(n.num_gates(), sat::Encoder::kNoVar);
    // eq[g]: literal-var asserting base and variant agree at gate g
    // (only tracked for duplicated gates; shared gates agree trivially).
    std::vector<sat::Var> eq(n.num_gates(), sat::Encoder::kNoVar);
    for (std::size_t i = 0; i < lc_.num_data_inputs; ++i) {
      const GateId g = n.inputs()[i];
      cv.gate[g] = base.gate[g];
      cv.inputs.push_back(cv.gate[g]);
    }
    for (std::size_t i = 0; i < lc_.num_key_inputs; ++i) {
      const GateId g = lc_.key_input(i);
      cv.gate[g] = key[i];
      cv.inputs.push_back(key[i]);
      if (equivalence_scaffold)
        eq[g] = xnor_var(base.gate[g], key[i]);
    }
    for (GateId g = 0; g < n.num_gates(); ++g) {
      if (cv.gate[g] != sat::Encoder::kNoVar) continue;
      if (!key_dep_[g]) {
        cv.gate[g] = base.gate[g];
        continue;
      }
      fi_.clear();
      for (const GateId f : n.fanins(g)) fi_.push_back(cv.gate[f]);
      cv.gate[g] = enc_.encode_gate(n.type(g), fi_);
      if (equivalence_scaffold) {
        eq[g] = xnor_var(base.gate[g], cv.gate[g]);
        // (eq over all duplicated fanins) -> eq[g].
        cl_.clear();
        for (const GateId f : n.fanins(g))
          if (eq[f] != sat::Encoder::kNoVar) cl_.push_back(sat::neg(eq[f]));
        cl_.push_back(sat::pos(eq[g]));
        s_.add_clause(cl_);
      }
    }
    for (const auto& po : n.outputs()) cv.outputs.push_back(cv.gate[po.gate]);
    return cv;
  }

  /// Adds the oracle constraint C(xd, key_vars) == y, encoding only the
  /// key-dependent cone (key-independent gate values are computed by
  /// simulation and enter the CNF as constants). Returns false when a
  /// key-independent output already contradicts `y` — a lying oracle no
  /// key assignment can explain.
  ///
  /// `guard >= 0` makes the constraint retractable: every output-pinning
  /// clause carries ¬guard, so the pair only binds while pos(guard) is
  /// assumed (or asserted), and a unit ¬guard evicts it for good. The cone
  /// definition clauses stay unguarded — they only define fresh variables
  /// and are satisfiable under any key. This is the suspect-pair
  /// quarantine hook of the resilient attack loop.
  bool add_io_constraint(const BitVec& xd, const BitVec& y,
                         const std::vector<sat::Var>& key_vars,
                         sat::Var guard = -1) {
    const Netlist& n = lc_.netlist;
    // Key-independent values via simulation (key bits are irrelevant for
    // these gates; use zeros).
    sim_.broadcast_inputs(lc_.assemble_input(xd, BitVec(lc_.num_key_inputs)));
    sim_.run();
    auto sim_bit = [this](GateId g) { return (sim_.value(g) & 1) != 0; };

    // This runs once per DIP: reuse the gate-var map and fanin scratch
    // across calls instead of reallocating num_gates() entries each time.
    auto& var = io_var_;
    var.assign(n.num_gates(), sat::Encoder::kNoVar);
    for (std::size_t i = 0; i < lc_.num_key_inputs; ++i)
      var[lc_.key_input(i)] = key_vars[i];
    for (GateId g = 0; g < n.num_gates(); ++g) {
      if (!key_dep_[g] || var[g] != sat::Encoder::kNoVar) continue;
      // Key-independent fanins enter as constants (their simulated value).
      fi_.clear();
      for (const GateId f : n.fanins(g))
        fi_.push_back(key_dep_[f] ? var[f] : const_var(sim_bit(f)));
      var[g] = enc_.encode_gate(n.type(g), fi_);
    }

    bool consistent = true;
    for (std::size_t o = 0; o < n.num_outputs(); ++o) {
      const GateId g = n.outputs()[o].gate;
      if (key_dep_[g]) {
        if (guard >= 0)
          s_.add_clause({sat::neg(guard), sat::Lit(var[g], !y.get(o))});
        else
          s_.add_clause({sat::Lit(var[g], !y.get(o))});
      } else if (sim_bit(g) != y.get(o)) {
        consistent = false;
      }
    }
    return consistent;
  }

 private:
  /// Fresh variable e with e <-> (a == b).
  sat::Var xnor_var(sat::Var a, sat::Var b) {
    const sat::Var e = s_.new_var();
    s_.add_clause({sat::neg(e), sat::neg(a), sat::pos(b)});
    s_.add_clause({sat::neg(e), sat::pos(a), sat::neg(b)});
    s_.add_clause({sat::pos(e), sat::pos(a), sat::pos(b)});
    s_.add_clause({sat::pos(e), sat::neg(a), sat::neg(b)});
    return e;
  }

  sat::Var const_var(bool v) {
    if (v) return const_true_;
    if (const_false_ < 0) {
      const_false_ = s_.new_var();
      s_.add_clause({sat::neg(const_false_)});
    }
    return const_false_;
  }

  sat::ClauseSink& s_;
  sat::Encoder enc_;
  const LockedCircuit& lc_;
  Simulator sim_;
  std::vector<bool> key_dep_;
  sat::Var const_true_ = -1;
  sat::Var const_false_ = -1;

  // Scratch buffers reused across encode calls.
  std::vector<sat::Var> fi_;
  std::vector<sat::Lit> cl_;
  std::vector<sat::Var> io_var_;
};

}  // namespace orap
