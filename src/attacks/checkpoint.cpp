#include "attacks/checkpoint.h"

#include <cstdio>
#include <utility>

#include "util/bytes.h"

namespace orap {

namespace {

constexpr char kMagic[8] = {'O', 'R', 'A', 'P', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

void put_bitvec(std::vector<std::uint8_t>* out, const BitVec& v) {
  bytes::put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const std::uint64_t w : v.words()) bytes::put_u64(out, w);
}

bool get_bitvec(bytes::Reader* in, BitVec* v) {
  const std::uint32_t nbits = in->u32();
  if (!in->ok()) return false;
  BitVec out(nbits);
  for (auto& w : out.words()) w = in->u64();
  if (!in->ok()) return false;
  // Bits past nbits in the tail word can only come from corruption.
  if (nbits % 64 != 0 && !out.words().empty() &&
      (out.words().back() >> (nbits % 64)) != 0)
    return false;
  *v = std::move(out);
  return true;
}

}  // namespace

CheckpointedOracle::CheckpointedOracle(Oracle& inner,
                                       std::uint64_t config_hash)
    : OracleDecorator(inner), config_hash_(config_hash) {}

OracleResult CheckpointedOracle::do_query(const BitVec& data) {
  if (replay_pos_ < transcript_.size()) {
    const Entry& e = transcript_[replay_pos_];
    if (e.x == data) {
      ++replay_pos_;
      if (e.status == 0) return e.y;
      return OracleResult::failure(
          static_cast<OracleErrorKind>(e.status - 1));
    }
    // The replayed attack asked something the recorded one did not: the
    // job configuration differs from the checkpoint's. Everything past
    // this point in the recording belongs to the other trajectory.
    diverged_ = true;
    transcript_.resize(replay_pos_);
  }
  check_stop();
  OracleResult r = inner().query(data);
  record_live(data, r);
  return r;
}

void CheckpointedOracle::check_stop() {
  if (stop_ == nullptr || !stop_->load(std::memory_order_relaxed)) return;
  // Flush before unwinding: the thrown-through attack cannot save, and the
  // whole point of a drain is that this exact query boundary is resumable.
  if (!autosave_path_.empty() && save_file(autosave_path_)) ++autosaves_;
  throw AttackStopped("stop requested: checkpoint flushed at query " +
                      std::to_string(transcript_.size()));
}

void CheckpointedOracle::record_live(const BitVec& x, const OracleResult& r) {
  Entry e;
  e.x = x;
  if (r.ok()) {
    e.y = r.response();
  } else {
    e.status = static_cast<std::uint8_t>(r.error().kind) + 1;
  }
  transcript_.push_back(std::move(e));
  // Keep replay_pos_ == transcript_.size() while live, so a recorded
  // entry is never mistaken for replayable history.
  replay_pos_ = transcript_.size();
  if (autosave_every_ > 0 && ++live_since_save_ >= autosave_every_) {
    live_since_save_ = 0;
    if (save_file(autosave_path_)) ++autosaves_;
  }
}

void CheckpointedOracle::do_query_batch(const std::vector<BitVec>& xs,
                                        std::vector<OracleResult>* out) {
  out->reserve(xs.size());
  // Serve the replayable prefix from the recording, element by element.
  std::size_t i = 0;
  for (; i < xs.size() && replay_pos_ < transcript_.size(); ++i) {
    const Entry& e = transcript_[replay_pos_];
    if (e.x != xs[i]) {
      diverged_ = true;
      transcript_.resize(replay_pos_);
      break;
    }
    ++replay_pos_;
    if (e.status == 0)
      out->push_back(e.y);
    else
      out->push_back(OracleResult::failure(
          static_cast<OracleErrorKind>(e.status - 1)));
  }
  if (i == xs.size()) return;
  check_stop();
  // Live remainder: one inner batch (replay_pos_ is at or past the
  // transcript end here, and record_live keeps it pinned there, so every
  // remaining element is live).
  std::vector<BitVec> live(xs.begin() + static_cast<std::ptrdiff_t>(i),
                           xs.end());
  std::vector<OracleResult> sub;
  try {
    inner().query_batch(live, &sub);
  } catch (...) {
    // The inner oracle died mid-batch. Its serial fallback (and every
    // element-order decorator) fills `sub` incrementally, so it holds
    // exactly the answered prefix — record it (triggering autosave) before
    // propagating, so a resume replays those answers instead of paying for
    // them again. Only the genuinely unanswered tail is lost.
    for (std::size_t j = 0; j < sub.size(); ++j) record_live(live[j], sub[j]);
    throw;
  }
  for (std::size_t j = 0; j < sub.size(); ++j) {
    record_live(live[j], sub[j]);
    out->push_back(std::move(sub[j]));
  }
}

void CheckpointedOracle::enable_autosave(std::string path,
                                         std::size_t every_n) {
  autosave_path_ = std::move(path);
  autosave_every_ = every_n;
  live_since_save_ = 0;
}

std::vector<std::uint8_t> CheckpointedOracle::serialize() const {
  std::vector<std::uint8_t> out;
  bytes::put_bytes(&out, kMagic, sizeof(kMagic));
  bytes::put_u32(&out, kVersion);
  bytes::put_u64(&out, config_hash_);
  bytes::put_u64(&out, inner().num_inputs());
  bytes::put_u64(&out, inner().num_outputs());
  bytes::put_u64(&out, progress_dips_);
  bytes::put_u64(&out, query_count());
  bytes::put_u64(&out, retry_count());
  bytes::put_u64(&out, error_count());
  std::vector<std::uint8_t> state;
  inner().save_state(&state);
  bytes::put_blob(&out, state.data(), state.size());
  bytes::put_u32(&out, static_cast<std::uint32_t>(transcript_.size()));
  for (const Entry& e : transcript_) {
    put_bitvec(&out, e.x);
    bytes::put_u8(&out, e.status);
    if (e.status == 0) put_bitvec(&out, e.y);
  }
  bytes::put_u32(&out, bytes::crc32(out.data(), out.size()));
  return out;
}

CheckpointedOracle::LoadStatus CheckpointedOracle::deserialize(
    const std::vector<std::uint8_t>& blob) {
  // CRC gate first: everything after it can assume the bytes are the bytes
  // serialize() wrote (modulo a truncated tail, which the length check
  // catches here too).
  if (blob.size() < sizeof(kMagic) + 8) return LoadStatus::kCorrupt;
  const std::size_t payload = blob.size() - 4;
  bytes::Reader tail(blob.data() + payload, 4);
  if (bytes::crc32(blob.data(), payload) != tail.u32())
    return LoadStatus::kCorrupt;

  bytes::Reader in(blob.data(), payload);
  char magic[sizeof(kMagic)];
  if (!in.raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return LoadStatus::kCorrupt;
  if (in.u32() != kVersion) return LoadStatus::kCorrupt;
  if (in.u64() != config_hash_) return LoadStatus::kMismatch;
  if (in.u64() != inner().num_inputs() ||
      in.u64() != inner().num_outputs())
    return LoadStatus::kMismatch;
  const std::uint64_t dips = in.u64();
  in.u64();  // queries/retries/errors are informational: the resumed
  in.u64();  // attack regenerates the live counters by replaying.
  in.u64();
  std::vector<std::uint8_t> state;
  if (!in.blob(&state)) return LoadStatus::kCorrupt;
  const std::uint32_t count = in.u32();
  std::vector<Entry> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry e;
    if (!get_bitvec(&in, &e.x)) return LoadStatus::kCorrupt;
    e.status = in.u8();
    if (e.status > 3) return LoadStatus::kCorrupt;
    if (e.status == 0 && !get_bitvec(&in, &e.y)) return LoadStatus::kCorrupt;
    entries.push_back(std::move(e));
  }
  if (!in.ok() || in.remaining() != 0) return LoadStatus::kCorrupt;

  // Structural validation done; apply. The oracle-stack state is the state
  // at save time — after every transcript entry — and replay never touches
  // the inner stack, so restoring it now leaves the live continuation
  // exactly where the interrupted run's would have been. A load_state
  // failure past this point means the wrapped decorator stack is shaped
  // differently from the saved one (the config hash should have caught
  // it); the stack is then partially written and the caller must rebuild
  // the oracle before reusing it.
  bytes::Reader sr(state);
  if (!inner().load_state(&sr) || !sr.ok() || sr.remaining() != 0)
    return LoadStatus::kMismatch;
  transcript_ = std::move(entries);
  replay_pos_ = 0;
  diverged_ = false;
  progress_dips_ = dips;
  return LoadStatus::kOk;
}

bool CheckpointedOracle::save_file(const std::string& path) const {
  const std::vector<std::uint8_t> blob = serialize();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(blob.data(), 1, blob.size(), f) == blob.size() &&
      std::fflush(f) == 0;
  if (std::fclose(f) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

CheckpointedOracle::LoadStatus CheckpointedOracle::load_file(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return LoadStatus::kMissing;
  std::vector<std::uint8_t> blob;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    blob.insert(blob.end(), buf, buf + n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return LoadStatus::kCorrupt;
  return deserialize(blob);
}

}  // namespace orap
