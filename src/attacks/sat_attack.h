#pragma once
// Oracle-guided SAT attack [Subramanyan et al., HOST'15] and its variants
// AppSAT [11] and Double-DIP [10].
//
// The attacker holds the locked netlist (key unknown) and a functional
// oracle. Each iteration finds a distinguishing input pattern (DIP) — an
// input on which two candidate keys disagree — queries the oracle, and
// adds the observed I/O pair as a constraint, pruning all keys
// inconsistent with it. When no DIP remains, any consistent key is
// functionally equivalent to the correct one *given a truthful oracle*.
// Against OraP the oracle answers with locked responses, so the attack
// either derives a wrong key or runs out of DIP budget.

#include <cstdint>

#include "attacks/oracle.h"
#include "locking/locking.h"
#include "util/bitvec.h"

namespace orap {

/// Resilience policy against unreliable oracles (attacks/faulty_oracle.h
/// models them; real testers misbehave the same ways). All features
/// default OFF: a default-constructed policy changes no behavior.
struct OracleResilienceOptions {
  /// Extra attempts per oracle query on retryable errors (transients /
  /// timeouts). The backoff between attempts is *logical* — a bounded,
  /// attempt-indexed schedule, never a wall-clock sleep — so retried runs
  /// stay bit-reproducible.
  std::size_t retries = 0;
  /// N-of-M majority vote: each logical query is asked `votes` times and
  /// every response bit is decided by majority (ties fall back to the
  /// first response). 1 = off. Extra attempts are charged to
  /// SatAttackResult::vote_queries, not oracle_queries.
  std::size_t votes = 1;
  /// Suspect-pair quarantine: every recorded I/O pair is guarded by a
  /// fresh selector literal; when the learned-constraint formula goes
  /// UNSAT the minimal inconsistent pair subset is isolated via unsat
  /// cores over the selectors, evicted, re-queried, and the DIP loop
  /// continues instead of dying with kInconsistentOracle.
  bool quarantine = false;
  /// Evicting more pairs than this abandons exact recovery: the attack
  /// keeps a maximal consistent pair subset and returns kDegraded with
  /// the best approximate key + a measured error rate.
  std::size_t max_evictions = 256;
  /// Oracle samples used to measure the error rate of a kDegraded key.
  std::size_t degraded_samples = 64;

  bool enabled() const { return retries > 0 || votes > 1 || quarantine; }
};

struct SatAttackOptions {
  std::int64_t max_iterations = 4096;
  std::int64_t conflict_budget = -1;  // per SAT call; <0 = unlimited
  /// Wall-clock deadline for the whole attack; < 0 = none. Checked between
  /// DIP iterations and inside every solver epoch; expiry surfaces as
  /// kSolverBudget. Timing-dependent by nature, so it waives the
  /// bit-identity contract only when it actually fires.
  std::int64_t deadline_ms = -1;
  OracleResilienceOptions resilience;
  /// > 1 races that many diversified CDCL instances per SAT call in
  /// deterministic lockstep epochs (sat/portfolio.h); 1 = single solver.
  std::size_t portfolio_size = 1;
  /// Runs SatELite-style CNF simplification (sat/simplify.h) on the miter
  /// once before the DIP loop. The attack freezes its interface variables
  /// (data inputs, key vectors, activation literal, miter outputs, encoder
  /// constants) so every later add_io_constraint stays expressible.
  bool preprocess = false;
  /// > 0 splits every SAT query into 2^depth cubes via deterministic
  /// lookahead and conquers them in parallel (sat/cube.h); composes with
  /// portfolio_size (one portfolio per cube) and preprocess. A finite
  /// conflict_budget is the TOTAL for the query, split across cubes.
  std::uint32_t cube_depth = 0;
  /// Incremental single-solver mode: per-DIP oracle constraints are
  /// constant-folded against the key-independent simulation before they
  /// reach the persistent miter solver (LockedEncoder::set_fold_constants),
  /// so the formula grows far slower across iterations and learnt clauses
  /// carry further. Equisatisfiable over the key variables but a different
  /// CNF, hence a different solver trajectory — defaults off so historical
  /// runs replay bit-identically. Results stay deterministic for any fixed
  /// incremental setting across threads/portfolio/cube.
  bool incremental = false;
  /// Attack-side oracle batching: ship all majority-vote replicas of a
  /// logical query, the quarantine re-query set, and the degraded
  /// measurement samples as Oracle::query_batch flushes (one round trip
  /// each over a served oracle) instead of serial queries. Byte-identical
  /// to serial execution as long as no retryable oracle error fires
  /// mid-batch (then the retry completion order differs — results stay
  /// deterministic for a fixed setting, and the default OFF preserves the
  /// serial trajectory exactly).
  bool oracle_batch = false;
  /// k-DIP harvesting: enumerate up to this many distinct DIPs per solver
  /// round via blocking clauses and ship them as one oracle batch before
  /// re-encoding — slightly more solver work for k-fold fewer oracle
  /// round trips. 1 = off (the classic one-DIP-per-round loop, exactly).
  /// A different value is a different (equally valid) attack trajectory;
  /// the final key agrees whenever the scheme admits one functionally
  /// correct key.
  std::size_t dip_batch = 1;
};

struct SatAttackResult {
  enum class Status {
    kKeyFound,           // DIP loop converged to a consistent key
    kIterationLimit,     // budget exhausted
    kSolverBudget,       // a SAT call aborted on its conflict budget or
                         // the attack's wall-clock deadline
    kInconsistentOracle, // no key matches the observed I/O pairs — the
                         // oracle is lying (what OraP causes) — and it is
                         // PROVEN empty, never a budget abort
    kDegraded,           // quarantine hit max_evictions: `key` is the best
                         // approximate key over a maximal consistent pair
                         // subset; oracle_error_rate holds the measured
                         // response error
    kOracleError,        // a query failed terminally (exhausted budget /
                         // unretried transient) before the attack settled
  };
  Status status = Status::kIterationLimit;
  BitVec key;                 // valid when kKeyFound or kDegraded
  std::size_t iterations = 0; // DIPs used
  std::size_t oracle_queries = 0;
  double solver_wall_ms = 0.0;  // wall time spent inside SAT solve calls

  // Oracle-resilience accounting (all 0 / -1 with the policy off).
  std::size_t oracle_retries = 0;   // retry attempts on retryable errors
  std::size_t vote_queries = 0;     // extra majority-vote attempts
  std::size_t evicted_pairs = 0;    // I/O pairs quarantined as corrupted
  std::size_t requeried_pairs = 0;  // evicted pairs asked again
  double oracle_error_rate = -1.0;  // measured bit error rate (kDegraded)

  // Formula-size accounting, sampled at DIP-loop start so preprocess
  // on/off runs compare the same formula (preprocess off: active == total,
  // the remaining counters stay 0).
  std::size_t solver_vars = 0;         // miter CNF variables
  std::size_t solver_active_vars = 0;  // still in the search post-simplify
  std::uint64_t eliminated_vars = 0;   // removed by variable elimination
  std::uint64_t removed_clauses = 0;   // net clause-count reduction
  double simplify_ms = 0.0;            // time spent preprocessing

  // Cube-and-conquer accounting (all 0 when cube_depth == 0).
  std::uint64_t cubes = 0;          // cubes enumerated across all queries
  std::uint64_t cubes_refuted = 0;  // cubes individually proven UNSAT
  double cube_wall_ms = 0.0;        // wall time inside split solves

  // Incremental-miter accounting. incremental_rounds / clauses_carried are
  // counted by the solver on every solve() entry (learnt clauses persist
  // across DIP iterations in all modes); encode_reused counts cone gates
  // the folding encoder resolved without emitting clauses and is nonzero
  // only with `incremental`.
  std::uint64_t incremental_rounds = 0;  // solve() calls on the miter
  std::uint64_t clauses_carried = 0;     // learnts alive at solve() entry, summed
  std::uint64_t encode_reused = 0;       // folded-away cone gates

  // Oracle-traffic accounting, read from the outermost oracle layer.
  // Every batch element counts exactly once in oracle_queries /
  // oracle_retries / vote_queries (same as its serial equivalent);
  // oracle_round_trips is what the attack actually paid in device round
  // trips (each serial query is one, each batch flush is one), and
  // oracle_batches counts the flushes. cache_hits/cache_misses are the
  // stack's result-cache totals (serve/result_cache.h; 0 without one) —
  // a hit is served with zero device traffic.
  std::size_t oracle_batches = 0;
  std::size_t oracle_round_trips = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

SatAttackResult sat_attack(const LockedCircuit& locked, Oracle& oracle,
                           const SatAttackOptions& opts = {});

/// AppSAT: interleaves the DIP loop with random-query checks and stops
/// early when the candidate key's observed error rate drops below
/// `settle_threshold` over `random_queries` samples — an *approximate*
/// deobfuscation (effective against point-function schemes like SARLock).
struct AppSatOptions {
  std::int64_t max_iterations = 1024;
  std::int64_t conflict_budget = -1; // per SAT call; <0 = unlimited
  std::size_t check_period = 8;      // DIPs between random-sampling rounds
  std::size_t random_queries = 64;   // samples per round
  std::size_t settle_rounds = 2;     // consecutive clean rounds to stop
  std::uint64_t seed = 1;
  std::size_t portfolio_size = 1;    // as in SatAttackOptions
  bool preprocess = false;           // as in SatAttackOptions
  std::uint32_t cube_depth = 0;      // as in SatAttackOptions
  std::int64_t deadline_ms = -1;     // as in SatAttackOptions
  bool incremental = false;          // as in SatAttackOptions
  /// As in SatAttackOptions: batches each random-sampling round's
  /// `random_queries` probes (and all vote replicas) into query_batch
  /// flushes. AppSAT has no dip_batch — the check_period interleave wants
  /// one DIP per round.
  bool oracle_batch = false;
  OracleResilienceOptions resilience;
};

SatAttackResult appsat_attack(const LockedCircuit& locked, Oracle& oracle,
                              const AppSatOptions& opts = {});

/// Double-DIP: every iteration finds an input where two *distinct* key
/// pairs disagree with a reference key, eliminating at least two wrong
/// keys per oracle query (the countermeasure-aware variant against
/// SARLock-style one-key-per-DIP schemes).
SatAttackResult double_dip_attack(const LockedCircuit& locked, Oracle& oracle,
                                  const SatAttackOptions& opts = {});

/// Checks a recovered key against the oracle on random samples (the only
/// verification available to a real attacker). Returns the mismatch count.
std::size_t verify_key_against_oracle(const LockedCircuit& locked,
                                      const BitVec& key, Oracle& oracle,
                                      std::size_t samples, std::uint64_t seed);

}  // namespace orap
