#pragma once
// Oracle-guided SAT attack [Subramanyan et al., HOST'15] and its variants
// AppSAT [11] and Double-DIP [10].
//
// The attacker holds the locked netlist (key unknown) and a functional
// oracle. Each iteration finds a distinguishing input pattern (DIP) — an
// input on which two candidate keys disagree — queries the oracle, and
// adds the observed I/O pair as a constraint, pruning all keys
// inconsistent with it. When no DIP remains, any consistent key is
// functionally equivalent to the correct one *given a truthful oracle*.
// Against OraP the oracle answers with locked responses, so the attack
// either derives a wrong key or runs out of DIP budget.

#include <cstdint>

#include "attacks/oracle.h"
#include "locking/locking.h"
#include "util/bitvec.h"

namespace orap {

struct SatAttackOptions {
  std::int64_t max_iterations = 4096;
  std::int64_t conflict_budget = -1;  // per SAT call; <0 = unlimited
  /// > 1 races that many diversified CDCL instances per SAT call in
  /// deterministic lockstep epochs (sat/portfolio.h); 1 = single solver.
  std::size_t portfolio_size = 1;
};

struct SatAttackResult {
  enum class Status {
    kKeyFound,           // DIP loop converged to a consistent key
    kIterationLimit,     // budget exhausted
    kSolverBudget,       // a SAT call aborted on its conflict budget
    kInconsistentOracle, // no key matches the observed I/O pairs — the
                         // oracle is lying (what OraP causes)
  };
  Status status = Status::kIterationLimit;
  BitVec key;                 // valid when kKeyFound
  std::size_t iterations = 0; // DIPs used
  std::size_t oracle_queries = 0;
  double solver_wall_ms = 0.0;  // wall time spent inside SAT solve calls
};

SatAttackResult sat_attack(const LockedCircuit& locked, Oracle& oracle,
                           const SatAttackOptions& opts = {});

/// AppSAT: interleaves the DIP loop with random-query checks and stops
/// early when the candidate key's observed error rate drops below
/// `settle_threshold` over `random_queries` samples — an *approximate*
/// deobfuscation (effective against point-function schemes like SARLock).
struct AppSatOptions {
  std::int64_t max_iterations = 1024;
  std::size_t check_period = 8;      // DIPs between random-sampling rounds
  std::size_t random_queries = 64;   // samples per round
  std::size_t settle_rounds = 2;     // consecutive clean rounds to stop
  std::uint64_t seed = 1;
  std::size_t portfolio_size = 1;    // as in SatAttackOptions
};

SatAttackResult appsat_attack(const LockedCircuit& locked, Oracle& oracle,
                              const AppSatOptions& opts = {});

/// Double-DIP: every iteration finds an input where two *distinct* key
/// pairs disagree with a reference key, eliminating at least two wrong
/// keys per oracle query (the countermeasure-aware variant against
/// SARLock-style one-key-per-DIP schemes).
SatAttackResult double_dip_attack(const LockedCircuit& locked, Oracle& oracle,
                                  const SatAttackOptions& opts = {});

/// Checks a recovered key against the oracle on random samples (the only
/// verification available to a real attacker). Returns the mismatch count.
std::size_t verify_key_against_oracle(const LockedCircuit& locked,
                                      const BitVec& key, Oracle& oracle,
                                      std::size_t samples, std::uint64_t seed);

}  // namespace orap
