#pragma once
// Pre-SAT oracle-guided attacks: hill climbing [Plaza & Markov] and a
// key-sensitization attack [Yasin et al.]. Both are defeated by OraP the
// same way the SAT attack is — the scan-based oracle only ever answers
// with locked responses.

#include <cstdint>

#include "attacks/oracle.h"
#include "locking/locking.h"

namespace orap {

struct HillClimbOptions {
  std::size_t samples = 64;       // oracle queries per fitness evaluation
  std::size_t max_restarts = 8;
  std::size_t max_plateau = 3;    // full sweeps without improvement
  std::uint64_t seed = 1;
};

struct HillClimbResult {
  BitVec key;
  std::size_t mismatches = 0;  // best fitness: summed output-bit Hamming
                               // distance over the probe set (0 = perfect)
  std::size_t oracle_queries = 0;
};

/// Greedy bit-flip search minimizing oracle disagreement. Effective
/// against plain XOR locking (each key bit's contribution is separable),
/// poor against schemes with entangled key bits.
HillClimbResult hill_climb_attack(const LockedCircuit& locked, Oracle& oracle,
                                  const HillClimbOptions& opts = {});

struct SensitizationResult {
  std::vector<int> key_bits;  // -1 unknown, 0/1 inferred
  std::size_t resolved = 0;
  std::size_t oracle_queries = 0;
  // Solver accounting (see SatAttackResult): solve() calls and learnt
  // clauses alive at each call's entry. With `incremental` one persistent
  // solver serves every (bit, reference) round, so clauses_carried grows;
  // the per-round fresh solvers of the default mode carry nothing.
  std::uint64_t solver_rounds = 0;
  std::uint64_t clauses_carried = 0;
};

/// Individual key-bit sensitization: for each key bit, search (via SAT)
/// for an input that propagates that bit to an output with the other key
/// bits pinned to a reference value, then compare the oracle's answer on
/// the sensitized outputs against both polarities, demanding agreement
/// across several independent references. Weighted logic locking
/// entangles bits through its control gates, collapsing the resolution
/// rate — the property [26] claims and our tests check. SAT calls beyond
/// `conflict_budget` count the bit as unresolved.
///
/// `incremental` keeps ONE solver for the whole attack: the two-copy
/// sensitization formula (outputs forced unequal) is encoded once and each
/// (bit, reference) round pins both key vectors via assumptions instead of
/// unit clauses in a fresh solver. Equisatisfiable per round, but the
/// search trajectory differs, so it defaults off.
SensitizationResult sensitization_attack(const LockedCircuit& locked,
                                         Oracle& oracle,
                                         std::uint64_t seed = 1,
                                         std::int64_t conflict_budget = 20000,
                                         bool incremental = false);

}  // namespace orap
