#include "attacks/structural.h"

#include <algorithm>

#include "attacks/encode_util.h"
#include "netlist/simulator.h"
#include "sat/encode.h"
#include "util/rng.h"

namespace orap {

std::vector<SpsCandidate> sps_rank(const LockedCircuit& lc, std::size_t words,
                                   std::uint64_t seed, std::size_t top_k) {
  const Netlist& n = lc.netlist;
  Simulator sim(n);
  Rng rng(seed);
  std::vector<std::uint64_t> ones(n.num_gates(), 0);
  for (std::size_t w = 0; w < words; ++w) {
    sim.randomize_inputs(rng);  // random X *and* random K
    sim.run();
    for (GateId g = 0; g < n.num_gates(); ++g)
      ones[g] += static_cast<std::uint64_t>(__builtin_popcountll(sim.value(g)));
  }
  const double total = static_cast<double>(words) * 64.0;

  // Only key-dependent logic is interesting: skew in the original design
  // (constants, near-constant control logic) is not an attack surface.
  std::vector<bool> key_dependent(n.num_gates(), false);
  for (std::size_t i = 0; i < lc.num_key_inputs; ++i)
    key_dependent[lc.key_input(i)] = true;
  for (GateId g = 0; g < n.num_gates(); ++g)
    for (const GateId f : n.fanins(g))
      if (key_dependent[f]) {
        key_dependent[g] = true;
        break;
      }

  // Structural signature (the SPS paper's second ingredient): Anti-SAT
  // injects its block output through an XOR/XNOR that directly drives a
  // primary output. Deep random logic also has skewed signals, but they
  // do not sit on a corruption-injection point.
  std::vector<bool> is_po(n.num_gates(), false);
  for (const auto& po : n.outputs()) is_po[po.gate] = true;
  std::vector<bool> feeds_po_xor(n.num_gates(), false);
  for (GateId g = 0; g < n.num_gates(); ++g) {
    const GateType t = n.type(g);
    if ((t != GateType::kXor && t != GateType::kXnor) || !is_po[g]) continue;
    for (const GateId f : n.fanins(g)) feeds_po_xor[f] = true;
  }

  std::vector<SpsCandidate> all;
  for (GateId g = 0; g < n.num_gates(); ++g) {
    const GateType t = n.type(g);
    if (!gate_type_is_logic(t) || t == GateType::kNot || t == GateType::kBuf)
      continue;
    if (!key_dependent[g] || !feeds_po_xor[g]) continue;
    SpsCandidate c;
    c.gate = g;
    c.prob_one = static_cast<double>(ones[g]) / total;
    c.skew = std::abs(c.prob_one - 0.5);
    all.push_back(c);
  }
  std::sort(all.begin(), all.end(),
            [](const SpsCandidate& a, const SpsCandidate& b) {
              return a.skew > b.skew;
            });
  if (all.size() > top_k) all.resize(top_k);
  return all;
}

namespace {

/// Rebuilds `n` with gate `victim` replaced by a constant.
Netlist tie_off(const Netlist& n, GateId victim, bool value) {
  Netlist out;
  out.set_name(n.name() + "_removed");
  std::vector<GateId> map(n.num_gates(), kNoGate);
  for (GateId g = 0; g < n.num_gates(); ++g) {
    const GateType t = n.type(g);
    if (g == victim) {
      map[g] = out.add_const(value);
      continue;
    }
    if (t == GateType::kInput) {
      map[g] = out.add_input(n.gate_name(g));
    } else if (t == GateType::kConst0 || t == GateType::kConst1) {
      map[g] = out.add_const(t == GateType::kConst1);
    } else {
      std::vector<GateId> fi;
      for (const GateId f : n.fanins(g)) fi.push_back(map[f]);
      map[g] = out.add_gate(t, fi);
    }
  }
  for (const auto& po : n.outputs()) out.mark_output(map[po.gate], po.name);
  out.validate();
  return out;
}

}  // namespace

namespace {

/// True when no output of `n` lies in the fanout cone of a key input —
/// the attacker's success criterion for a removal: the tie-off must have
/// disconnected the locking logic entirely (checkable without an oracle).
bool key_logic_dead(const Netlist& n, const LockedCircuit& lc) {
  std::vector<bool> key_dep(n.num_gates(), false);
  for (std::size_t i = 0; i < lc.num_key_inputs; ++i)
    key_dep[n.inputs()[lc.num_data_inputs + i]] = true;
  for (GateId g = 0; g < n.num_gates(); ++g)
    for (const GateId f : n.fanins(g))
      if (key_dep[f]) {
        key_dep[g] = true;
        break;
      }
  for (const auto& po : n.outputs())
    if (key_dep[po.gate]) return false;
  return true;
}

}  // namespace

std::optional<RemovalResult> removal_attack(const LockedCircuit& lc,
                                            std::size_t words,
                                            std::uint64_t seed,
                                            double min_skew) {
  const auto ranking = sps_rank(lc, words, seed, 4);
  for (const SpsCandidate& suspect : ranking) {
    if (suspect.skew < min_skew) break;  // ranking is sorted by skew
    // Tie the suspect to its dominant value (the value it almost always
    // takes — for Anti-SAT's block output, constant 0) and verify the
    // removal actually disconnected the key logic. A skewed signal in
    // ordinary design logic fails this check, so the attacker moves on.
    Netlist recovered =
        tie_off(lc.netlist, suspect.gate, suspect.prob_one > 0.5);
    if (!key_logic_dead(recovered, lc)) continue;
    RemovalResult r;
    r.removed = suspect.gate;
    r.skew = suspect.skew;
    r.recovered = std::move(recovered);
    return r;
  }
  return std::nullopt;
}

std::optional<BypassResult> bypass_attack(const LockedCircuit& lc,
                                          Oracle& oracle,
                                          std::size_t max_corrections,
                                          std::uint64_t seed) {
  ORAP_CHECK(oracle.num_inputs() == lc.num_data_inputs);
  Rng rng(seed);
  const std::size_t nd = lc.num_data_inputs;
  const std::size_t nk = lc.num_key_inputs;

  // Commit to two distinct arbitrary (almost surely wrong) keys — the
  // CHES'17 construction: for point-function schemes the two wrong keys
  // disagree only on their own corruption points, so SAT enumeration of
  // diff(K1', K2') is tiny, and querying the oracle there is enough to
  // patch K1' everywhere it errs.
  const BitVec wrong_key = BitVec::random(nk, rng);
  BitVec wrong_key2 = BitVec::random(nk, rng);
  if (wrong_key2 == wrong_key) wrong_key2.flip(0);
  Simulator sim(lc.netlist);

  sat::Solver s;
  LockedEncoder lenc(s, lc);
  std::vector<sat::Var> xvars, k1vars, k2vars;
  for (std::size_t i = 0; i < nd; ++i) xvars.push_back(s.new_var());
  for (std::size_t i = 0; i < nk; ++i) k1vars.push_back(s.new_var());
  for (std::size_t i = 0; i < nk; ++i) k2vars.push_back(s.new_var());
  const auto a = lenc.encode_full(xvars, k1vars);
  const auto b = lenc.encode_key_variant(a, k2vars);
  for (std::size_t i = 0; i < nk; ++i) {
    s.add_clause({sat::Lit(k1vars[i], !wrong_key.get(i))});
    s.add_clause({sat::Lit(k2vars[i], !wrong_key2.get(i))});
  }
  lenc.encoder().force_not_equal(a.outputs, b.outputs);

  // Each SAT model is one point of a diff *region*; point-function
  // schemes corrupt whole cubes (the comparator leaves the other inputs
  // free), so the point is expanded to a cube before being blocked —
  // otherwise the enumeration would walk 2^(free inputs) points.
  struct Correction {
    BitVec cube_mask;   // which data inputs the cube binds
    BitVec cube_value;  // their bound values
    BitVec fix_mask;    // outputs to flip inside the cube
  };
  std::vector<Correction> corrections;

  auto diff_mask_at = [&](const BitVec& x) {
    return sim.run_single(lc.assemble_input(x, wrong_key)) ^
           sim.run_single(lc.assemble_input(x, wrong_key2));
  };

  bool complete = false;
  for (std::size_t iter = 0; iter <= 4 * max_corrections + 8; ++iter) {
    const auto res = s.solve();
    if (res != sat::Solver::Result::kSat) {
      complete = true;
      break;
    }
    BitVec x(nd);
    for (std::size_t i = 0; i < nd; ++i) x.set(i, s.model_value(a.inputs[i]));
    const BitVec diff0 = diff_mask_at(x);

    // Cube expansion by sampling: unbind every input whose value does not
    // influence the diff mask (checked on random completions).
    BitVec bound(nd, true);
    Rng crng(seed ^ (iter + 1) * 0x9e37ULL);
    for (std::size_t i = 0; i < nd; ++i) {
      bool independent = true;
      for (int trial = 0; trial < 6 && independent; ++trial) {
        BitVec probe = x;
        for (std::size_t j = 0; j < nd; ++j)
          if (!bound.get(j) || j == i) probe.set(j, crng.bit());
        BitVec probe_flip = probe;
        probe_flip.flip(i);
        independent = diff_mask_at(probe) == diff0 &&
                      diff_mask_at(probe_flip) == diff0;
      }
      if (independent) bound.set(i, false);
    }

    // Decide the fix from the oracle, checking consistency across the
    // cube (a varying fix means the scheme is not cube-bypassable).
    BitVec fix;
    bool fix_known = false, consistent = true;
    for (int trial = 0; trial < 4 && consistent; ++trial) {
      BitVec probe = x;
      if (trial > 0)
        for (std::size_t j = 0; j < nd; ++j)
          if (!bound.get(j)) probe.set(j, crng.bit());
      const OracleResult qr = oracle.query(probe);
      if (!qr.ok()) {
        consistent = false;  // unobservable cube: treat as not bypassable
        break;
      }
      const BitVec& yo = qr.response();
      const BitVec yw = sim.run_single(lc.assemble_input(probe, wrong_key));
      const BitVec f = yo ^ yw;
      if (!fix_known) {
        fix = f;
        fix_known = true;
      } else if (!(fix == f)) {
        consistent = false;
      }
    }
    if (!consistent) return std::nullopt;

    if (fix.any()) {
      Correction c;
      c.cube_mask = bound;
      c.cube_value = x;
      c.fix_mask = fix;
      corrections.push_back(std::move(c));
      // Cap tripped: the diff set is larger than the attacker budgeted
      // for. The enumeration ran out, it did not fail structurally —
      // report an incomplete result below rather than "does not apply".
      if (corrections.size() > max_corrections) break;
    }
    // Block the whole cube.
    std::vector<sat::Lit> block;
    for (std::size_t i = 0; i < nd; ++i)
      if (bound.get(i)) block.push_back(sat::Lit(a.inputs[i], x.get(i)));
    if (block.empty()) return std::nullopt;  // diff everywhere: not bypassable
    s.add_clause(block);
  }
  if (!complete) {
    // Ran out of corrections (or iterations) before the diff enumeration
    // went UNSAT. No usable bypassed netlist exists, but this is a budget
    // exhaustion, not structural inapplicability — callers must not count
    // it as a successful bypass.
    BypassResult r;
    r.wrong_key = wrong_key;
    r.correction_points = corrections.size();
    r.complete = false;
    return r;
  }

  // Build the bypassed netlist: the locked circuit with the wrong key
  // hardwired, plus a comparator per correction that flips the recorded
  // outputs.
  const Netlist& n = lc.netlist;
  Netlist out;
  out.set_name(n.name() + "_bypassed");
  std::vector<GateId> map(n.num_gates(), kNoGate);
  std::vector<GateId> data_in;
  for (std::size_t i = 0; i < nd; ++i) {
    const GateId in = n.inputs()[i];
    map[in] = out.add_input(n.gate_name(in));
    data_in.push_back(map[in]);
  }
  GateId c0 = out.add_const(false);
  GateId c1 = out.add_const(true);
  for (std::size_t i = 0; i < nk; ++i)
    map[n.inputs()[nd + i]] = wrong_key.get(i) ? c1 : c0;
  for (GateId g = 0; g < n.num_gates(); ++g) {
    if (map[g] != kNoGate) continue;
    const GateType t = n.type(g);
    if (t == GateType::kConst0 || t == GateType::kConst1) {
      map[g] = t == GateType::kConst1 ? c1 : c0;
      continue;
    }
    std::vector<GateId> fi;
    for (const GateId f : n.fanins(g)) fi.push_back(map[f]);
    map[g] = out.add_gate(t, fi);
  }

  // Cube comparators: only the bound inputs participate.
  std::vector<GateId> match(corrections.size());
  for (std::size_t ci = 0; ci < corrections.size(); ++ci) {
    std::vector<GateId> eq;
    for (std::size_t i = 0; i < nd; ++i) {
      if (!corrections[ci].cube_mask.get(i)) continue;
      eq.push_back(corrections[ci].cube_value.get(i)
                       ? data_in[i]
                       : out.add_not(data_in[i]));
    }
    ORAP_CHECK(eq.size() >= 1);
    match[ci] = eq.size() == 1 ? eq[0] : out.add_gate(GateType::kAnd, eq);
  }
  // Output fix-up.
  for (std::size_t o = 0; o < n.outputs().size(); ++o) {
    std::vector<GateId> flips;
    for (std::size_t ci = 0; ci < corrections.size(); ++ci)
      if (corrections[ci].fix_mask.get(o)) flips.push_back(match[ci]);
    GateId driver = map[n.outputs()[o].gate];
    if (!flips.empty()) {
      const GateId any = flips.size() == 1
                             ? flips[0]
                             : out.add_gate(GateType::kOr, flips);
      driver = out.add_xor2(driver, any);
    }
    out.mark_output(driver, n.outputs()[o].name);
  }
  out.validate();

  BypassResult r;
  r.bypassed = std::move(out);
  r.wrong_key = wrong_key;
  r.correction_points = corrections.size();
  r.complete = true;
  return r;
}

}  // namespace orap
