#pragma once
// Deterministic fault-injected oracle decorators.
//
// Each decorator wraps any Oracle (GoldenOracle, ChipScanOracle, or
// another decorator — they compose) and injects one failure mode,
// reproducibly from a seed:
//
//  * NoisyOracle       — flips each response bit with probability
//                        `flip_rate` (ATPG-guided fault-injection /
//                        measurement-noise model),
//  * IntermittentOracle — fails whole queries with probability
//                        `fail_rate` (tester-link transients / timeouts),
//  * StuckOracle       — repeats the previous response with probability
//                        `stick_rate` (a stale capture register),
//  * BudgetedOracle    — hard cap on device accesses; every access past
//                        the cap returns kExhausted,
//  * LatentOracle      — burns wall-clock time per query (fixed latency
//                        plus seeded jitter), modelling a slow tester link
//                        or a served oracle's network round-trip.
//
// Determinism contract: the injected faults are a pure function of the
// seed and the *sequence* of do_query calls, never of wall time or thread
// count. A zero-rate decorator draws nothing from its RNG, so its output
// is byte-identical to the bare oracle (regression-tested in
// tests/resilience_test.cpp). LatentOracle never alters response bytes —
// only their timing — so it preserves byte-identity of results while
// making deadline paths and batching tradeoffs measurable.
//
// All decorators implement the Oracle save_state/load_state hooks
// (RNG stream positions, stale caches, attempt counters), so a
// checkpointed attack resumes against the exact fault sequence the
// uninterrupted run would have seen (src/attacks/checkpoint.h).

#include <cstdint>

#include "attacks/oracle.h"
#include "util/rng.h"

namespace orap {

/// Flips each response bit independently with probability `flip_rate`.
class NoisyOracle final : public OracleDecorator {
 public:
  NoisyOracle(Oracle& inner, double flip_rate, std::uint64_t seed);

  std::size_t flipped_bits() const { return flipped_bits_; }
  std::size_t corrupted_responses() const { return corrupted_responses_; }

  void save_state(std::vector<std::uint8_t>* out) const override;
  bool load_state(bytes::Reader* in) override;

 protected:
  OracleResult do_query(const BitVec& data) override;
  // Batch-aware: one inner batch, then flip draws per element in order
  // (inner and this layer use independent RNG streams, so the interleaving
  // of draws across layers does not matter — only per-layer element order).
  void do_query_batch(const std::vector<BitVec>& xs,
                      std::vector<OracleResult>* out) override;

 private:
  double flip_rate_;
  Rng rng_;
  std::size_t flipped_bits_ = 0;
  std::size_t corrupted_responses_ = 0;
};

/// Fails whole queries with probability `fail_rate` before they reach the
/// inner oracle (the device was never asked — a dropped tester link).
class IntermittentOracle final : public OracleDecorator {
 public:
  IntermittentOracle(Oracle& inner, double fail_rate, std::uint64_t seed,
                     OracleErrorKind kind = OracleErrorKind::kTransient);

  std::size_t injected_failures() const { return injected_failures_; }

  void save_state(std::vector<std::uint8_t>* out) const override;
  bool load_state(bytes::Reader* in) override;

 protected:
  OracleResult do_query(const BitVec& data) override;
  // Batch-aware: drop decisions drawn per element in order first (they
  // precede the inner query serially), then the surviving subset is
  // forwarded inward as one batch.
  void do_query_batch(const std::vector<BitVec>& xs,
                      std::vector<OracleResult>* out) override;

 private:
  double fail_rate_;
  OracleErrorKind kind_;
  Rng rng_;
  std::size_t injected_failures_ = 0;
};

/// Repeats the previous (stale) response with probability `stick_rate`.
/// The first query is always served fresh; only successful responses are
/// remembered.
class StuckOracle final : public OracleDecorator {
 public:
  StuckOracle(Oracle& inner, double stick_rate, std::uint64_t seed);

  std::size_t stale_responses() const { return stale_responses_; }

  void save_state(std::vector<std::uint8_t>* out) const override;
  bool load_state(bytes::Reader* in) override;

 protected:
  OracleResult do_query(const BitVec& data) override;
  // Batch-aware: fresh elements accumulate into runs forwarded inward as
  // sub-batches; a run is flushed before any stale element is served so
  // last_ is exactly what the serial loop would have remembered.
  void do_query_batch(const std::vector<BitVec>& xs,
                      std::vector<OracleResult>* out) override;

 private:
  double stick_rate_;
  Rng rng_;
  bool have_last_ = false;
  BitVec last_;
  std::size_t stale_responses_ = 0;
};

/// Hard cap on device accesses. Retries and votes count — they are real
/// accesses — so resilience policies spend this budget too.
class BudgetedOracle final : public OracleDecorator {
 public:
  BudgetedOracle(Oracle& inner, std::size_t max_queries);

  std::size_t attempts() const { return attempts_; }
  std::size_t remaining() const {
    return attempts_ >= max_queries_ ? 0 : max_queries_ - attempts_;
  }

  void save_state(std::vector<std::uint8_t>* out) const override;
  bool load_state(bytes::Reader* in) override;

 protected:
  OracleResult do_query(const BitVec& data) override;
  // Batch-aware: the prefix that fits the remaining budget goes inward as
  // one batch; everything past the cap is kExhausted without ever
  // reaching the device.
  void do_query_batch(const std::vector<BitVec>& xs,
                      std::vector<OracleResult>* out) override;

 private:
  std::size_t max_queries_;
  std::size_t attempts_ = 0;
};

/// Burns `latency_us` plus a seeded jitter draw in [0, jitter_us] of wall
/// clock per query before forwarding. Responses are byte-identical to the
/// inner oracle's — only their timing changes — so results stay
/// deterministic while deadline handling and the batching-vs-latency
/// tradeoff become measurable (the oracle-serve bench and the deadline
/// regression tests are its main consumers).
class LatentOracle final : public OracleDecorator {
 public:
  LatentOracle(Oracle& inner, std::uint64_t latency_us,
               std::uint64_t jitter_us = 0, std::uint64_t seed = 1);

  std::uint64_t total_injected_us() const { return total_injected_us_; }

  // Deliberately NO save_state/load_state override: latency shapes timing,
  // never responses, and checkpoints must resume across latency-config
  // changes (a snapshot taken over a slow link resumes against a fast
  // one), so this layer keeps the pass-through default and its jitter RNG
  // stays out of the state blob.

 protected:
  OracleResult do_query(const BitVec& data) override;
  // Batch-aware: ONE latency+jitter charge for the whole batch — a batch
  // models one tester/network round trip, which is exactly the saving
  // attack-side batching exists to realize. (Jitter RNG consumption
  // therefore differs between batched and serial runs; that is fine
  // because this RNG is outside the determinism contract and the state
  // blob — latency never alters response bytes.)
  void do_query_batch(const std::vector<BitVec>& xs,
                      std::vector<OracleResult>* out) override;

 private:
  std::uint64_t latency_us_;
  std::uint64_t jitter_us_;
  Rng rng_;
  std::uint64_t total_injected_us_ = 0;
};

}  // namespace orap
