#pragma once
// Deterministic fault-injected oracle decorators.
//
// Each decorator wraps any Oracle (GoldenOracle, ChipScanOracle, or
// another decorator — they compose) and injects one failure mode,
// reproducibly from a seed:
//
//  * NoisyOracle       — flips each response bit with probability
//                        `flip_rate` (ATPG-guided fault-injection /
//                        measurement-noise model),
//  * IntermittentOracle — fails whole queries with probability
//                        `fail_rate` (tester-link transients / timeouts),
//  * StuckOracle       — repeats the previous response with probability
//                        `stick_rate` (a stale capture register),
//  * BudgetedOracle    — hard cap on device accesses; every access past
//                        the cap returns kExhausted.
//
// Determinism contract: the injected faults are a pure function of the
// seed and the *sequence* of do_query calls, never of wall time or thread
// count. A zero-rate decorator draws nothing from its RNG, so its output
// is byte-identical to the bare oracle (regression-tested in
// tests/resilience_test.cpp).

#include <cstdint>

#include "attacks/oracle.h"
#include "util/rng.h"

namespace orap {

/// Flips each response bit independently with probability `flip_rate`.
class NoisyOracle final : public OracleDecorator {
 public:
  NoisyOracle(Oracle& inner, double flip_rate, std::uint64_t seed);

  std::size_t flipped_bits() const { return flipped_bits_; }
  std::size_t corrupted_responses() const { return corrupted_responses_; }

 protected:
  OracleResult do_query(const BitVec& data) override;

 private:
  double flip_rate_;
  Rng rng_;
  std::size_t flipped_bits_ = 0;
  std::size_t corrupted_responses_ = 0;
};

/// Fails whole queries with probability `fail_rate` before they reach the
/// inner oracle (the device was never asked — a dropped tester link).
class IntermittentOracle final : public OracleDecorator {
 public:
  IntermittentOracle(Oracle& inner, double fail_rate, std::uint64_t seed,
                     OracleErrorKind kind = OracleErrorKind::kTransient);

  std::size_t injected_failures() const { return injected_failures_; }

 protected:
  OracleResult do_query(const BitVec& data) override;

 private:
  double fail_rate_;
  OracleErrorKind kind_;
  Rng rng_;
  std::size_t injected_failures_ = 0;
};

/// Repeats the previous (stale) response with probability `stick_rate`.
/// The first query is always served fresh; only successful responses are
/// remembered.
class StuckOracle final : public OracleDecorator {
 public:
  StuckOracle(Oracle& inner, double stick_rate, std::uint64_t seed);

  std::size_t stale_responses() const { return stale_responses_; }

 protected:
  OracleResult do_query(const BitVec& data) override;

 private:
  double stick_rate_;
  Rng rng_;
  bool have_last_ = false;
  BitVec last_;
  std::size_t stale_responses_ = 0;
};

/// Hard cap on device accesses. Retries and votes count — they are real
/// accesses — so resilience policies spend this budget too.
class BudgetedOracle final : public OracleDecorator {
 public:
  BudgetedOracle(Oracle& inner, std::size_t max_queries);

  std::size_t attempts() const { return attempts_; }
  std::size_t remaining() const {
    return attempts_ >= max_queries_ ? 0 : max_queries_ - attempts_;
  }

 protected:
  OracleResult do_query(const BitVec& data) override;

 private:
  std::size_t max_queries_;
  std::size_t attempts_ = 0;
};

}  // namespace orap
