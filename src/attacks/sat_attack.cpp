#include "attacks/sat_attack.h"

#include <memory>

#include "attacks/encode_util.h"
#include "netlist/simulator.h"
#include "sat/cube.h"
#include "sat/encode.h"
#include "sat/simplify.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace orap {

namespace {

using sat::CubeSolver;
using sat::Encoder;
using sat::Lit;
using sat::Solver;
using sat::Var;

sat::CubeOptions cube_options(std::size_t portfolio_size,
                              std::uint32_t cube_depth) {
  sat::CubeOptions co;
  co.depth = cube_depth;
  co.portfolio.size = portfolio_size == 0 ? 1 : portfolio_size;
  return co;
}

/// Shared state of the DIP loop.
struct AttackContext {
  const LockedCircuit& lc;
  CubeSolver solver;
  LockedEncoder lenc;
  std::vector<Var> x;    // shared data-input vars of the miter
  std::vector<Var> k1;   // key copy 1
  std::vector<Var> k2;   // key copy 2
  Var act = -1;          // miter activation literal
  bool oracle_inconsistent = false;

  AttackContext(const LockedCircuit& locked, std::size_t portfolio_size,
                std::uint32_t cube_depth)
      : lc(locked),
        solver(cube_options(portfolio_size, cube_depth)),
        lenc(solver, locked) {}

  std::size_t nd() const { return lc.num_data_inputs; }
  std::size_t nk() const { return lc.num_key_inputs; }
  Encoder& enc() { return lenc.encoder(); }

  /// Adds an oracle I/O constraint for one key copy: C(xd, key) == y.
  /// Only the key-dependent cone is encoded; key-independent outputs are
  /// checked against simulation, flagging a lying oracle.
  void add_io_constraint(const BitVec& xd, const BitVec& y,
                         const std::vector<Var>& key) {
    if (!lenc.add_io_constraint(xd, y, key)) oracle_inconsistent = true;
  }

  /// Freezes the miter interface variables and runs SatELite-style
  /// preprocessing. Must run after the miter is fully built and before
  /// the first solve: everything the DIP loop later constrains (data
  /// inputs, key vectors, activation literal, miter outputs, encoder
  /// constants) must survive elimination.
  void preprocess_miter(
      std::initializer_list<const std::vector<Var>*> interface_vars) {
    for (const auto* vs : interface_vars)
      for (const Var v : *vs) solver.freeze(v);
    solver.freeze(act);
    lenc.freeze_interface();
    // The miter is solved hundreds of times (once per DIP), so trading a
    // few extra clauses per eliminated variable for a smaller variable
    // count pays off — unlike the one-shot default of grow = 0.
    sat::SimplifyOptions sopts;
    sopts.grow = 8;
    solver.simplify(sopts);
  }

  /// Records the miter's formula size at DIP-loop start. Called after the
  /// miter is built (and optionally simplified) so the A/B comparison in
  /// the benches measures the preprocessed formula, not the formula after
  /// hundreds of iterations have appended fresh I/O-constraint cones.
  void snapshot_miter_size() {
    miter_vars_ = solver.num_vars();
    miter_active_vars_ =
        miter_vars_ -
        static_cast<std::size_t>(solver.stats().eliminated_vars);
  }

  /// Copies formula-size / preprocessing / cube counters into the result.
  void fill_solver_stats(SatAttackResult* result) const {
    const sat::SolverStats st = solver.stats();
    result->solver_vars =
        miter_vars_ != 0 ? miter_vars_ : solver.num_vars();
    result->solver_active_vars =
        miter_vars_ != 0
            ? miter_active_vars_
            : solver.num_vars() - static_cast<std::size_t>(st.eliminated_vars);
    result->eliminated_vars = st.eliminated_vars;
    result->removed_clauses = st.simplify_removed_clauses;
    result->simplify_ms = st.simplify_ms;
    result->cubes = st.cubes;
    result->cubes_refuted = st.cubes_refuted;
    result->cube_wall_ms = st.cube_wall_ms;
  }

  std::size_t miter_vars_ = 0;
  std::size_t miter_active_vars_ = 0;

  BitVec model_bits(const std::vector<Var>& vars) const {
    BitVec out(vars.size());
    for (std::size_t i = 0; i < vars.size(); ++i)
      out.set(i, solver.model_value(vars[i]));
    return out;
  }

  /// Extracts a key consistent with all I/O constraints (miter disabled).
  /// Returns false when none exists (lying oracle).
  bool extract_key(BitVec* key, std::int64_t budget,
                   SatAttackResult::Status* budget_status) {
    const std::vector<Lit> off{sat::neg(act)};
    const auto res = solver.solve(off, budget);
    if (res == Solver::Result::kUnknown) {
      *budget_status = SatAttackResult::Status::kSolverBudget;
      return false;
    }
    if (res != Solver::Result::kSat) return false;
    *key = model_bits(k1);
    return true;
  }
};

std::vector<Var> fresh_vars(sat::ClauseSink& s, std::size_t n) {
  std::vector<Var> v(n);
  for (auto& x : v) x = s.new_var();
  return v;
}

}  // namespace

SatAttackResult sat_attack(const LockedCircuit& locked, Oracle& oracle,
                           const SatAttackOptions& opts) {
  ORAP_CHECK(oracle.num_inputs() == locked.num_data_inputs);
  ORAP_CHECK(oracle.num_outputs() == locked.netlist.num_outputs());

  AttackContext ctx(locked, opts.portfolio_size, opts.cube_depth);
  ctx.x = fresh_vars(ctx.solver, ctx.nd());
  ctx.k1 = fresh_vars(ctx.solver, ctx.nk());
  ctx.k2 = fresh_vars(ctx.solver, ctx.nk());
  ctx.act = ctx.solver.new_var();

  const auto a = ctx.lenc.encode_full(ctx.x, ctx.k1);
  const auto b = ctx.lenc.encode_key_variant(a, ctx.k2);
  // Activatable miter: act -> outputs differ somewhere.
  {
    std::vector<Lit> any{sat::neg(ctx.act)};
    for (std::size_t o = 0; o < a.outputs.size(); ++o)
      any.push_back(
          sat::pos(ctx.enc().encode_xor2(a.outputs[o], b.outputs[o])));
    ctx.solver.add_clause(any);
  }
  if (opts.preprocess)
    ctx.preprocess_miter({&ctx.x, &ctx.k1, &ctx.k2, &a.outputs, &b.outputs});
  ctx.snapshot_miter_size();

  SatAttackResult result;
  const std::vector<Lit> on{sat::pos(ctx.act)};
  const auto finish = [&ctx, &result, &oracle] {
    result.oracle_queries = oracle.query_count();
    result.solver_wall_ms = ctx.solver.cube_stats().solve_wall_ms;
    ctx.fill_solver_stats(&result);
  };
  while (static_cast<std::int64_t>(result.iterations) < opts.max_iterations) {
    const auto res = ctx.solver.solve(on, opts.conflict_budget);
    if (res == Solver::Result::kUnknown) {
      result.status = SatAttackResult::Status::kSolverBudget;
      finish();
      return result;
    }
    if (res == Solver::Result::kUnsat) break;  // no DIP left
    ++result.iterations;
    const BitVec xd = ctx.model_bits(ctx.x);
    const BitVec y = oracle.query(xd);
    ctx.add_io_constraint(xd, y, ctx.k1);
    ctx.add_io_constraint(xd, y, ctx.k2);
    if (ctx.oracle_inconsistent) {
      // A key-independent output contradicted the response: no key can
      // explain this oracle.
      result.status = SatAttackResult::Status::kInconsistentOracle;
      finish();
      return result;
    }
  }
  // finish() exactly once per exit path: a second call after extract_key
  // used to overwrite the stats snapshot and misattribute solver wall
  // time between the DIP loop and the extraction.
  if (static_cast<std::int64_t>(result.iterations) >= opts.max_iterations) {
    result.status = SatAttackResult::Status::kIterationLimit;
    finish();
    return result;
  }

  SatAttackResult::Status budget_status = SatAttackResult::Status::kKeyFound;
  if (ctx.extract_key(&result.key, opts.conflict_budget, &budget_status)) {
    result.status = SatAttackResult::Status::kKeyFound;
  } else {
    result.status =
        budget_status == SatAttackResult::Status::kSolverBudget
            ? budget_status
            : SatAttackResult::Status::kInconsistentOracle;
  }
  finish();
  return result;
}

SatAttackResult appsat_attack(const LockedCircuit& locked, Oracle& oracle,
                              const AppSatOptions& opts) {
  AttackContext ctx(locked, opts.portfolio_size, opts.cube_depth);
  ctx.x = fresh_vars(ctx.solver, ctx.nd());
  ctx.k1 = fresh_vars(ctx.solver, ctx.nk());
  ctx.k2 = fresh_vars(ctx.solver, ctx.nk());
  ctx.act = ctx.solver.new_var();
  const auto a = ctx.lenc.encode_full(ctx.x, ctx.k1);
  const auto b = ctx.lenc.encode_key_variant(a, ctx.k2);
  {
    std::vector<Lit> any{sat::neg(ctx.act)};
    for (std::size_t o = 0; o < a.outputs.size(); ++o)
      any.push_back(
          sat::pos(ctx.enc().encode_xor2(a.outputs[o], b.outputs[o])));
    ctx.solver.add_clause(any);
  }
  if (opts.preprocess)
    ctx.preprocess_miter({&ctx.x, &ctx.k1, &ctx.k2, &a.outputs, &b.outputs});
  ctx.snapshot_miter_size();

  Rng rng(opts.seed);
  Simulator sim(locked.netlist);
  SatAttackResult result;
  std::size_t clean_rounds = 0;
  const std::vector<Lit> on{sat::pos(ctx.act)};
  const auto finish = [&ctx, &result, &oracle] {
    result.oracle_queries = oracle.query_count();
    result.solver_wall_ms = ctx.solver.cube_stats().solve_wall_ms;
    ctx.fill_solver_stats(&result);
  };

  while (static_cast<std::int64_t>(result.iterations) < opts.max_iterations) {
    const auto res = ctx.solver.solve(on, opts.conflict_budget);
    if (res == Solver::Result::kUnknown) {
      // Budget abort, exactly as in sat_attack — NOT a lying oracle.
      result.status = SatAttackResult::Status::kSolverBudget;
      finish();
      return result;
    }
    if (res == Solver::Result::kUnsat) break;  // exact convergence
    ++result.iterations;
    const BitVec xd = ctx.model_bits(ctx.x);
    const BitVec y = oracle.query(xd);
    ctx.add_io_constraint(xd, y, ctx.k1);
    ctx.add_io_constraint(xd, y, ctx.k2);
    if (ctx.oracle_inconsistent) {
      result.status = SatAttackResult::Status::kInconsistentOracle;
      finish();
      return result;
    }

    if (result.iterations % opts.check_period != 0) continue;
    // Random-sampling round on the current candidate key.
    SatAttackResult::Status mid_status = SatAttackResult::Status::kKeyFound;
    BitVec candidate;
    if (!ctx.extract_key(&candidate, opts.conflict_budget, &mid_status)) {
      if (mid_status == SatAttackResult::Status::kSolverBudget) {
        result.status = mid_status;
        finish();
        return result;
      }
      break;  // no consistent key: the final extraction settles the status
    }
    std::size_t mismatches = 0;
    for (std::size_t q = 0; q < opts.random_queries; ++q) {
      const BitVec xr = BitVec::random(ctx.nd(), rng);
      const BitVec yo = oracle.query(xr);
      const BitVec yc = sim.run_single(locked.assemble_input(xr, candidate));
      if (yo != yc) {
        ++mismatches;
        ctx.add_io_constraint(xr, yo, ctx.k1);
        ctx.add_io_constraint(xr, yo, ctx.k2);
      }
    }
    if (mismatches == 0) {
      if (++clean_rounds >= opts.settle_rounds) {
        // Approximate key settled.
        result.status = SatAttackResult::Status::kKeyFound;
        result.key = candidate;
        finish();
        return result;
      }
    } else {
      clean_rounds = 0;
    }
  }
  if (static_cast<std::int64_t>(result.iterations) >= opts.max_iterations) {
    result.status = SatAttackResult::Status::kIterationLimit;
    finish();
    return result;
  }
  SatAttackResult::Status budget_status = SatAttackResult::Status::kKeyFound;
  if (ctx.extract_key(&result.key, opts.conflict_budget, &budget_status)) {
    result.status = SatAttackResult::Status::kKeyFound;
  } else {
    // A budget abort must surface as kSolverBudget; only a genuinely
    // unsatisfiable key formula means the oracle lied.
    result.status =
        budget_status == SatAttackResult::Status::kSolverBudget
            ? budget_status
            : SatAttackResult::Status::kInconsistentOracle;
  }
  finish();
  return result;
}

SatAttackResult double_dip_attack(const LockedCircuit& locked, Oracle& oracle,
                                  const SatAttackOptions& opts) {
  AttackContext ctx(locked, opts.portfolio_size, opts.cube_depth);
  ctx.x = fresh_vars(ctx.solver, ctx.nd());
  ctx.k1 = fresh_vars(ctx.solver, ctx.nk());
  ctx.k2 = fresh_vars(ctx.solver, ctx.nk());
  auto k3 = fresh_vars(ctx.solver, ctx.nk());
  auto k4 = fresh_vars(ctx.solver, ctx.nk());
  ctx.act = ctx.solver.new_var();
  CubeSolver& s = ctx.solver;
  Encoder& e = ctx.enc();

  const auto a = ctx.lenc.encode_full(ctx.x, ctx.k1);
  const auto b = ctx.lenc.encode_key_variant(a, ctx.k2);
  const auto c = ctx.lenc.encode_key_variant(a, k3);
  const auto d = ctx.lenc.encode_key_variant(a, k4);

  // act -> Y(a)==Y(b), Y(c)==Y(d), Y(a)!=Y(c), k1!=k2, k3!=k4.
  // Whichever side the oracle contradicts loses two keys at once.
  const Lit noact = sat::neg(ctx.act);
  for (std::size_t o = 0; o < a.outputs.size(); ++o) {
    s.add_clause({noact, sat::neg(a.outputs[o]), sat::pos(b.outputs[o])});
    s.add_clause({noact, sat::pos(a.outputs[o]), sat::neg(b.outputs[o])});
    s.add_clause({noact, sat::neg(c.outputs[o]), sat::pos(d.outputs[o])});
    s.add_clause({noact, sat::pos(c.outputs[o]), sat::neg(d.outputs[o])});
  }
  auto add_neq = [&](const std::vector<Var>& u, const std::vector<Var>& v) {
    std::vector<Lit> any{noact};
    for (std::size_t i = 0; i < u.size(); ++i)
      any.push_back(sat::pos(e.encode_xor2(u[i], v[i])));
    s.add_clause(any);
  };
  {
    std::vector<Lit> any{noact};
    for (std::size_t o = 0; o < a.outputs.size(); ++o)
      any.push_back(sat::pos(e.encode_xor2(a.outputs[o], c.outputs[o])));
    s.add_clause(any);
  }
  add_neq(ctx.k1, ctx.k2);
  add_neq(k3, k4);
  if (opts.preprocess)
    ctx.preprocess_miter({&ctx.x, &ctx.k1, &ctx.k2, &k3, &k4, &a.outputs,
                          &b.outputs, &c.outputs, &d.outputs});
  ctx.snapshot_miter_size();

  SatAttackResult result;
  const std::vector<Lit> on{sat::pos(ctx.act)};
  const auto finish = [&ctx, &result, &oracle] {
    result.oracle_queries = oracle.query_count();
    result.solver_wall_ms = ctx.solver.cube_stats().solve_wall_ms;
    ctx.fill_solver_stats(&result);
  };
  while (static_cast<std::int64_t>(result.iterations) < opts.max_iterations) {
    const auto res = s.solve(on, opts.conflict_budget);
    if (res == Solver::Result::kUnknown) {
      result.status = SatAttackResult::Status::kSolverBudget;
      finish();
      return result;
    }
    if (res == Solver::Result::kUnsat) break;
    ++result.iterations;
    const BitVec xd = ctx.model_bits(ctx.x);
    const BitVec y = oracle.query(xd);
    ctx.add_io_constraint(xd, y, ctx.k1);
    ctx.add_io_constraint(xd, y, ctx.k2);
    ctx.add_io_constraint(xd, y, k3);
    ctx.add_io_constraint(xd, y, k4);
    if (ctx.oracle_inconsistent) {
      result.status = SatAttackResult::Status::kInconsistentOracle;
      finish();
      return result;
    }
  }
  if (static_cast<std::int64_t>(result.iterations) >= opts.max_iterations) {
    result.status = SatAttackResult::Status::kIterationLimit;
    finish();
    return result;
  }
  // No double-DIP remains: at most one equivalence class of the
  // "traditional" key part survives (point-function flips like SARLock's
  // cannot form a double-DIP, so they stay unresolved — the Double-DIP
  // paper's point is precisely that this part does not matter). Extract a
  // key from the surviving class; run sat_attack afterwards if exactness
  // on the point-function part is required.
  SatAttackResult::Status budget_status = SatAttackResult::Status::kKeyFound;
  if (ctx.extract_key(&result.key, opts.conflict_budget, &budget_status)) {
    result.status = SatAttackResult::Status::kKeyFound;
  } else {
    result.status =
        budget_status == SatAttackResult::Status::kSolverBudget
            ? budget_status
            : SatAttackResult::Status::kInconsistentOracle;
  }
  finish();
  return result;
}

std::size_t verify_key_against_oracle(const LockedCircuit& locked,
                                      const BitVec& key, Oracle& oracle,
                                      std::size_t samples,
                                      std::uint64_t seed) {
  // The oracle models a physical device (stateful scan protocol), so its
  // queries run serially in draw order; the candidate-key simulations are
  // independent and shard across the pool.
  Rng rng(seed);
  std::vector<BitVec> xs;
  std::vector<BitVec> ys;
  xs.reserve(samples);
  ys.reserve(samples);
  for (std::size_t q = 0; q < samples; ++q) {
    xs.push_back(BitVec::random(locked.num_data_inputs, rng));
    ys.push_back(oracle.query(xs.back()));
  }

  std::vector<std::unique_ptr<Simulator>> sims(parallel_threads());
  return parallel_reduce(
      /*grain=*/16, samples, std::size_t{0},
      [&](std::size_t b, std::size_t e, std::size_t) {
        const std::size_t slot = parallel_slot();
        if (!sims[slot]) sims[slot] = std::make_unique<Simulator>(locked.netlist);
        std::size_t miss = 0;
        for (std::size_t q = b; q < e; ++q)
          if (ys[q] != sims[slot]->run_single(locked.assemble_input(xs[q], key)))
            ++miss;
        return miss;
      },
      [](std::size_t acc, std::size_t part) { return acc + part; });
}

}  // namespace orap
