#include "attacks/sat_attack.h"

#include <algorithm>
#include <chrono>
#include <bit>
#include <memory>
#include <span>

#include "attacks/encode_util.h"
#include "netlist/simulator.h"
#include "sat/cube.h"
#include "sat/encode.h"
#include "sat/simplify.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/simd.h"

namespace orap {

namespace {

using sat::CubeSolver;
using sat::Encoder;
using sat::Lit;
using sat::Solver;
using sat::Var;

sat::CubeOptions cube_options(std::size_t portfolio_size,
                              std::uint32_t cube_depth) {
  sat::CubeOptions co;
  co.depth = cube_depth;
  co.portfolio.size = portfolio_size == 0 ? 1 : portfolio_size;
  return co;
}

/// One recorded oracle I/O pair. With quarantine on, `sel` guards every
/// clause the pair contributed, so assuming pos(sel) binds it and a unit
/// ¬sel evicts it; with quarantine off the pair is unguarded (sel == -1)
/// and is never tracked here.
struct PairRecord {
  BitVec x, y;
  Var sel = -1;
  bool live = true;
};

/// Shared state of the DIP loop.
struct AttackContext {
  const LockedCircuit& lc;
  CubeSolver solver;
  LockedEncoder lenc;
  std::vector<Var> x;    // shared data-input vars of the miter
  std::vector<Var> k1;   // key copy 1
  std::vector<Var> k2;   // key copy 2
  Var act = -1;          // miter activation literal
  bool oracle_inconsistent = false;

  // Resilience state.
  Oracle* oracle = nullptr;
  OracleResilienceOptions res;
  std::vector<std::vector<Var>> key_sets;  // key copies each pair constrains
  std::vector<PairRecord> pairs;           // quarantine-guarded pairs only
  bool oracle_failed = false;              // a query failed terminally
  std::size_t oracle_retries = 0;
  std::size_t vote_queries = 0;
  std::size_t evicted_pairs = 0;
  std::size_t requeried_pairs = 0;
  double oracle_error_rate = -1.0;

  // Attack-side batching (opts.oracle_batch / opts.dip_batch). With batch
  // off and dip_batch 1 every path below reduces to the exact serial
  // trajectory; batching is byte-identical to it as long as no retryable
  // oracle error fires mid-batch (the retry completion then runs serially
  // after the flush, a different — still deterministic — order).
  bool batch = false;
  std::size_t dip_batch = 1;

  // Wall-clock deadline (opts.deadline_ms >= 0).
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  AttackContext(const LockedCircuit& locked, Oracle& orc,
                std::size_t portfolio_size, std::uint32_t cube_depth,
                const OracleResilienceOptions& resilience,
                std::int64_t deadline_ms, bool incremental = false)
      : lc(locked),
        solver(cube_options(portfolio_size, cube_depth)),
        lenc(solver, locked),
        oracle(&orc),
        res(resilience) {
    lenc.set_fold_constants(incremental);
    if (deadline_ms >= 0) {
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(deadline_ms);
      has_deadline = true;
      solver.set_deadline(deadline);
    }
  }

  std::size_t nd() const { return lc.num_data_inputs; }
  std::size_t nk() const { return lc.num_key_inputs; }
  Encoder& enc() { return lenc.encoder(); }

  bool deadline_expired() const {
    return has_deadline && std::chrono::steady_clock::now() >= deadline;
  }

  /// Assumptions for a solve: `base` (the miter on/off literal) plus the
  /// selector of every live quarantined pair. Returns a view into a
  /// member scratch buffer — the DIP loop calls this every iteration, and
  /// with quarantine on the vector grows to one literal per recorded pair,
  /// so a fresh allocation per solve was pure churn. Valid until the next
  /// assumps()/solve_subset() call.
  std::span<const Lit> assumps(Lit base) {
    assumps_buf_.clear();
    assumps_buf_.push_back(base);
    for (const PairRecord& p : pairs)
      if (p.live) assumps_buf_.push_back(sat::pos(p.sel));
    return assumps_buf_;
  }

  // --- resilient oracle access --------------------------------------------

  /// One oracle attempt with bounded retry on retryable errors. `logical`
  /// charges the first attempt to query_count (a fresh logical query);
  /// retries and vote/re-query attempts go to retry_count, so logical
  /// query counts stay comparable with resilience off. The backoff is the
  /// attempt index itself — a deterministic schedule, never a wall-clock
  /// sleep, preserving bit-reproducibility.
  bool attempt_with_retries(const BitVec& xd, bool logical, BitVec* y) {
    OracleResult r = logical ? oracle->query(xd) : oracle->requery(xd);
    std::size_t attempt = 0;
    while (!r.ok() && r.error().retryable() && attempt < res.retries) {
      ++attempt;
      ++oracle_retries;
      r = oracle->requery(xd);
    }
    if (!r.ok()) {
      oracle_failed = true;
      return false;
    }
    *y = r.response();
    return true;
  }

  /// One logical query under the full policy: retry, then N-of-M majority
  /// vote per output bit (ties fall back to the first response).
  bool resilient_query(const BitVec& xd, BitVec* y, bool logical = true) {
    BitVec first;
    if (!attempt_with_retries(xd, logical, &first)) return false;
    const std::size_t votes = res.votes < 1 ? 1 : res.votes;
    if (votes == 1) {
      *y = first;
      return true;
    }
    std::vector<std::uint32_t> ones(first.size(), 0);
    for (std::size_t o = 0; o < first.size(); ++o)
      if (first.get(o)) ++ones[o];
    for (std::size_t v = 1; v < votes; ++v) {
      ++vote_queries;
      BitVec yv;
      if (!attempt_with_retries(xd, /*logical=*/false, &yv)) return false;
      for (std::size_t o = 0; o < yv.size(); ++o)
        if (yv.get(o)) ++ones[o];
    }
    BitVec out(first.size());
    for (std::size_t o = 0; o < out.size(); ++o) {
      const std::uint32_t count = ones[o];
      if (2 * count > votes)
        out.set(o, true);
      else if (2 * count == votes)  // even split: keep the first response
        out.set(o, first.get(o));
    }
    *y = out;
    return true;
  }

  /// Batched form of resilient_query over independent logical inputs: ALL
  /// vote replicas of ALL inputs ship as ONE query_batch flush, ordered
  /// [x0 x votes, x1 x votes, ...] — exactly the serial do_query sequence,
  /// so responses and per-element accounting are byte-identical to the
  /// serial path when no retryable error fires. Failed attempts are then
  /// completed with serial retries per slot. Returns the number of leading
  /// inputs fully answered (== xds.size() on success); ys holds exactly
  /// that prefix, and a terminal failure sets oracle_failed.
  std::size_t resilient_query_batch(const std::vector<BitVec>& xds,
                                    std::vector<BitVec>* ys,
                                    bool logical = true) {
    ys->clear();
    const std::size_t votes = res.votes < 1 ? 1 : res.votes;
    std::vector<BitVec> flat;
    std::vector<std::uint8_t> mask;
    flat.reserve(xds.size() * votes);
    mask.reserve(xds.size() * votes);
    for (const BitVec& xd : xds) {
      for (std::size_t v = 0; v < votes; ++v) {
        flat.push_back(xd);
        mask.push_back(v == 0 && logical ? 1 : 0);
        if (v > 0) ++vote_queries;
      }
    }
    std::vector<OracleResult> rs;
    oracle->query_batch(flat, &rs, &mask);
    for (std::size_t i = 0; i < xds.size(); ++i) {
      BitVec first;
      std::vector<std::uint32_t> ones;
      bool have_first = false;
      bool failed = false;
      for (std::size_t v = 0; v < votes; ++v) {
        OracleResult r = rs[i * votes + v];
        std::size_t attempt = 0;
        while (!r.ok() && r.error().retryable() && attempt < res.retries) {
          ++attempt;
          ++oracle_retries;
          r = oracle->requery(xds[i]);
        }
        if (!r.ok()) {
          failed = true;
          break;
        }
        const BitVec& yv = r.response();
        if (!have_first) {
          first = yv;
          have_first = true;
          ones.assign(yv.size(), 0);
        }
        for (std::size_t o = 0; o < yv.size(); ++o)
          if (yv.get(o)) ++ones[o];
      }
      if (failed) {
        oracle_failed = true;
        return i;
      }
      if (votes == 1) {
        ys->push_back(std::move(first));
        continue;
      }
      BitVec out(first.size());
      for (std::size_t o = 0; o < out.size(); ++o) {
        const std::uint32_t count = ones[o];
        if (2 * count > votes)
          out.set(o, true);
        else if (2 * count == votes)  // even split: keep the first response
          out.set(o, first.get(o));
      }
      ys->push_back(std::move(out));
    }
    return xds.size();
  }

  // --- pair recording ------------------------------------------------------

  enum class RecordStatus { kOk, kEvicted, kInconsistent };

  /// Adds the I/O pair as a constraint on every key copy. A mismatch on a
  /// key-INDEPENDENT output is proof the response is corrupted: with
  /// quarantine on, the pair is evicted on the spot (its guarded clauses
  /// are killed by a unit ¬sel); with quarantine off, it is the classic
  /// kInconsistentOracle signal.
  RecordStatus record_pair(const BitVec& xd, const BitVec& y) {
    const Var sel = res.quarantine ? solver.new_var() : -1;
    bool consistent = true;
    for (const std::vector<Var>& keys : key_sets)
      consistent &= lenc.add_io_constraint(xd, y, keys, sel);
    if (consistent) {
      if (sel >= 0) pairs.push_back({xd, y, sel, true});
      return RecordStatus::kOk;
    }
    if (!res.quarantine) {
      oracle_inconsistent = true;
      return RecordStatus::kInconsistent;
    }
    solver.add_clause({sat::neg(sel)});
    oracle->note_corruption_suspected();
    ++evicted_pairs;
    return RecordStatus::kEvicted;
  }

  /// Evicts a recorded pair for good: a unit ¬sel retracts its guarded
  /// clauses from every future solve.
  void evict_pair(std::size_t idx) {
    PairRecord& p = pairs[idx];
    ORAP_DCHECK(p.live);
    p.live = false;
    solver.add_clause({sat::neg(p.sel)});
    oracle->note_corruption_suspected();
    ++evicted_pairs;
  }

  // --- k-DIP harvesting ----------------------------------------------------

  /// Call immediately after a kSat solve of the activated miter. Reads the
  /// model's DIP and, when want > 1, keeps re-solving under a fresh
  /// harvest selector `h` with per-DIP blocking clauses ({neg(h)} or some
  /// x bit differs from the harvested input) to collect up to `want`
  /// DISTINCT DIPs of the same constraint set before any re-encoding —
  /// slightly more solver work for want-fold fewer oracle round trips.
  /// Harvesting is opportunistic: kUnsat (no further DIP exists) or
  /// kUnknown (conflict budget / deadline inside the extra solve) just
  /// stops it; the DIPs already in hand are genuine DIPs and still
  /// advance the attack. The selector retires with a unit neg(h) so the
  /// blocking clauses are permanently satisfied and never constrain a
  /// later round.
  std::vector<BitVec> harvest_dips(std::size_t want, std::int64_t budget) {
    std::vector<BitVec> out;
    out.push_back(model_bits(x));
    if (want <= 1) return out;  // classic loop: no extra vars, no clauses
    const Var h = solver.new_var();
    while (out.size() < want) {
      std::vector<Lit> block{sat::neg(h)};
      const BitVec& last = out.back();
      for (std::size_t i = 0; i < x.size(); ++i)
        block.push_back(last.get(i) ? sat::neg(x[i]) : sat::pos(x[i]));
      solver.add_clause(block);
      assumps(sat::pos(act));
      assumps_buf_.push_back(sat::pos(h));
      if (solver.solve(assumps_buf_, budget) != Solver::Result::kSat) break;
      out.push_back(model_bits(x));
    }
    solver.add_clause({sat::neg(h)});
    return out;
  }

  enum class DipRound { kOk, kOracleError, kInconsistent };

  /// Queries the harvested DIPs — one query_batch flush when batching is
  /// on, the classic serial resilient queries otherwise — and records each
  /// answered pair in order. Recording never touches the oracle, so the
  /// device sees the identical query sequence either way.
  DipRound query_and_record(const std::vector<BitVec>& xds) {
    std::vector<BitVec> ys;
    std::size_t got;
    if (batch) {
      got = resilient_query_batch(xds, &ys);
    } else {
      got = 0;
      ys.reserve(xds.size());
      for (const BitVec& xd : xds) {
        BitVec y;
        if (!resilient_query(xd, &y)) break;
        ys.push_back(std::move(y));
        ++got;
      }
    }
    for (std::size_t j = 0; j < got; ++j) {
      if (record_pair(xds[j], ys[j]) == RecordStatus::kInconsistent)
        return DipRound::kInconsistent;
    }
    return got == xds.size() ? DipRound::kOk : DipRound::kOracleError;
  }

  // --- quarantine repair ---------------------------------------------------

  /// After an UNSAT key extraction: isolates a minimal-ish inconsistent
  /// subset of the live pairs via unsat cores over their selectors —
  /// first a core fixpoint (re-solve with only the core's pairs enabled;
  /// the new core can only shrink), then a binary halving pass (if one
  /// half alone is inconsistent, recurse into it). Returns pair indices;
  /// empty when the UNSAT involves no pair at all (a genuinely empty key
  /// space). Sets *aborted when a solve hits the conflict budget.
  std::vector<std::size_t> minimize_suspects(std::int64_t budget,
                                             bool* aborted) {
    *aborted = false;
    std::vector<std::size_t> suspects = core_suspects();
    if (suspects.empty()) return suspects;

    // Core fixpoint: each round solves with only the suspects enabled, so
    // the returned core — a subset of those selectors — can only shrink.
    for (int round = 0; round < 8; ++round) {
      const Solver::Result r = solve_subset(suspects, budget);
      if (r == Solver::Result::kUnknown) {
        *aborted = true;
        return {};
      }
      if (r == Solver::Result::kSat) break;  // cannot happen for a sound core
      std::vector<std::size_t> next = core_suspects();
      if (next.size() >= suspects.size()) break;
      suspects = std::move(next);
    }

    // Binary halving: if either half is inconsistent on its own, the
    // minimal subset lives entirely inside it.
    while (suspects.size() > 1) {
      const std::size_t mid = suspects.size() / 2;
      bool narrowed = false;
      for (int half = 0; half < 2 && !narrowed; ++half) {
        std::vector<std::size_t> part(
            suspects.begin() + (half == 0 ? 0 : mid),
            half == 0 ? suspects.begin() + mid : suspects.end());
        const Solver::Result r = solve_subset(part, budget);
        if (r == Solver::Result::kUnknown) {
          *aborted = true;
          return {};
        }
        if (r == Solver::Result::kUnsat) {
          std::vector<std::size_t> next = core_suspects();
          suspects = next.empty() ? std::move(part) : std::move(next);
          narrowed = true;
        }
      }
      if (!narrowed) break;  // the inconsistency needs pairs of both halves
    }
    return suspects;
  }

  /// Solve with the miter off and ONLY the given pairs bound.
  Solver::Result solve_subset(const std::vector<std::size_t>& subset,
                              std::int64_t budget) {
    assumps_buf_.assign(1, sat::neg(act));
    for (const std::size_t i : subset)
      assumps_buf_.push_back(sat::pos(pairs[i].sel));
    return solver.solve(assumps_buf_, budget);
  }

  /// Live pair indices whose selector shows up in the last unsat core
  /// (the core is in failed-clause form, i.e. negated assumptions — match
  /// by variable).
  std::vector<std::size_t> core_suspects() const {
    std::vector<std::size_t> out;
    const std::vector<Lit>& core = solver.unsat_core();
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (!pairs[i].live) continue;
      for (const Lit l : core) {
        if (l.var() == pairs[i].sel) {
          out.push_back(i);
          break;
        }
      }
    }
    return out;
  }

  std::size_t miter_vars_ = 0;
  std::size_t miter_active_vars_ = 0;
  std::vector<Lit> assumps_buf_;  // assumps()/solve_subset() scratch

  /// Freezes the miter interface variables and runs SatELite-style
  /// preprocessing. Must run after the miter is fully built and before
  /// the first solve: everything the DIP loop later constrains (data
  /// inputs, key vectors, activation literal, miter outputs, encoder
  /// constants) must survive elimination. Pair selectors are created
  /// after this point, so they are never elimination candidates.
  void preprocess_miter(
      std::initializer_list<const std::vector<Var>*> interface_vars) {
    for (const auto* vs : interface_vars)
      for (const Var v : *vs) solver.freeze(v);
    solver.freeze(act);
    lenc.freeze_interface();
    // The miter is solved hundreds of times (once per DIP), so trading a
    // few extra clauses per eliminated variable for a smaller variable
    // count pays off — unlike the one-shot default of grow = 0.
    sat::SimplifyOptions sopts;
    sopts.grow = 8;
    solver.simplify(sopts);
  }

  /// Records the miter's formula size at DIP-loop start. Called after the
  /// miter is built (and optionally simplified) so the A/B comparison in
  /// the benches measures the preprocessed formula, not the formula after
  /// hundreds of iterations have appended fresh I/O-constraint cones.
  void snapshot_miter_size() {
    miter_vars_ = solver.num_vars();
    miter_active_vars_ =
        miter_vars_ -
        static_cast<std::size_t>(solver.stats().eliminated_vars);
  }

  /// Copies formula-size / preprocessing / cube / resilience counters into
  /// the result.
  void fill_solver_stats(SatAttackResult* result) const {
    const sat::SolverStats st = solver.stats();
    result->solver_vars =
        miter_vars_ != 0 ? miter_vars_ : solver.num_vars();
    result->solver_active_vars =
        miter_vars_ != 0
            ? miter_active_vars_
            : solver.num_vars() - static_cast<std::size_t>(st.eliminated_vars);
    result->eliminated_vars = st.eliminated_vars;
    result->removed_clauses = st.simplify_removed_clauses;
    result->simplify_ms = st.simplify_ms;
    result->cubes = st.cubes;
    result->cubes_refuted = st.cubes_refuted;
    result->cube_wall_ms = st.cube_wall_ms;
    result->oracle_retries = oracle_retries;
    result->vote_queries = vote_queries;
    result->evicted_pairs = evicted_pairs;
    result->requeried_pairs = requeried_pairs;
    result->oracle_error_rate = oracle_error_rate;
    result->incremental_rounds = st.incremental_rounds;
    result->clauses_carried = st.clauses_carried;
    result->encode_reused = lenc.encode_reused();
    result->oracle_batches = oracle->batch_count();
    result->oracle_round_trips = oracle->round_trip_count();
    result->cache_hits = oracle->cache_hits();
    result->cache_misses = oracle->cache_misses();
  }

  BitVec model_bits(const std::vector<Var>& vars) const {
    BitVec out(vars.size());
    for (std::size_t i = 0; i < vars.size(); ++i)
      out.set(i, solver.model_value(vars[i]));
    return out;
  }

  /// Extracts a key consistent with all live I/O constraints (miter
  /// disabled). Returns false when none exists (a lying oracle — or, with
  /// quarantine on, a corrupted pair the caller should repair).
  bool extract_key(BitVec* key, std::int64_t budget,
                   SatAttackResult::Status* budget_status) {
    const auto res_ = solver.solve(assumps(sat::neg(act)), budget);
    if (res_ == Solver::Result::kUnknown) {
      *budget_status = SatAttackResult::Status::kSolverBudget;
      return false;
    }
    if (res_ != Solver::Result::kSat) return false;
    *key = model_bits(k1);
    return true;
  }
};

std::vector<Var> fresh_vars(sat::ClauseSink& s, std::size_t n) {
  std::vector<Var> v(n);
  for (auto& x : v) x = s.new_var();
  return v;
}

/// Caps the repair rounds per attack independently of max_evictions (each
/// round evicts at least one pair, but a pathological oracle could feed
/// one corrupted pair per round forever).
constexpr std::size_t kMaxRepairRounds = 256;

/// Outcome of one extraction + repair attempt.
enum class ExtractOutcome {
  kDone,    // result.status / result.key are final
  kResume,  // corrupted pairs evicted: re-enter the DIP loop
};

// --- wide candidate-key simulation -----------------------------------------
// The verification paths (verify_key_against_oracle, AppSAT's random-check
// rounds, the degraded-key error measurement) all simulate the locked
// circuit under one fixed key over many input samples. Packing
// 64 * simd::kBlockWords samples per simulator pass replaces those
// per-sample run_single calls with a handful of block evaluations over the
// same netlist walk. Bit-exact with the per-sample path: each sample owns
// one lane and the per-lane extraction reads exactly the bits run_single
// would produce.

/// Simulates `lc` under `key` for xs[q0..q1) in one wide pass (q1 - q0 must
/// fit in one block, i.e. <= 64 * sim.block_words()); appends one response
/// per sample to `out`, in order.
void simulate_key_block(const LockedCircuit& lc, Simulator& sim,
                        std::span<const BitVec> xs, const BitVec& key,
                        std::size_t q0, std::size_t q1,
                        std::vector<BitVec>* out) {
  const std::size_t w = sim.block_words();
  const std::size_t nd = lc.num_data_inputs;
  std::vector<std::uint64_t> block(w);
  for (std::size_t i = 0; i < nd; ++i) {
    for (std::size_t j = 0; j < w; ++j) {
      std::uint64_t word = 0;
      const std::size_t base = q0 + j * 64;
      const std::size_t nb =
          base < q1 ? std::min<std::size_t>(64, q1 - base) : 0;
      for (std::size_t b = 0; b < nb; ++b)
        if (xs[base + b].get(i)) word |= std::uint64_t{1} << b;
      block[j] = word;
    }
    sim.set_input_block(i, block);
  }
  for (std::size_t i = 0; i < lc.num_key_inputs; ++i) {
    std::fill(block.begin(), block.end(),
              key.get(i) ? ~std::uint64_t{0} : std::uint64_t{0});
    sim.set_input_block(nd + i, block);
  }
  sim.run();
  const std::size_t nout = lc.netlist.num_outputs();
  for (std::size_t q = q0; q < q1; ++q) {
    const std::size_t lane = q - q0;
    BitVec y(nout);
    for (std::size_t o = 0; o < nout; ++o)
      y.set(o, (sim.output_block(o)[lane / 64] >> (lane % 64)) & 1);
    out->push_back(std::move(y));
  }
}

/// Candidate-key responses for every input in `xs`.
std::vector<BitVec> simulate_key_batch(const LockedCircuit& lc,
                                       std::span<const BitVec> xs,
                                       const BitVec& key) {
  Simulator sim(lc.netlist, simd::kBlockWords);
  const std::size_t lanes = 64 * sim.block_words();
  std::vector<BitVec> out;
  out.reserve(xs.size());
  for (std::size_t q0 = 0; q0 < xs.size(); q0 += lanes)
    simulate_key_block(lc, sim, xs, key, q0,
                       std::min(xs.size(), q0 + lanes), &out);
  return out;
}

/// Measures the candidate key's response error against the (resilient)
/// oracle on fresh random samples and fills result with kDegraded.
void finish_degraded(AttackContext& ctx, const BitVec& key,
                     SatAttackResult* result) {
  result->status = SatAttackResult::Status::kDegraded;
  result->key = key;
  Rng rng(0x0ddf00dULL);
  // Draw every sample up front (same rng stream as drawing per query) and
  // batch the candidate-key responses through the wide simulator.
  std::vector<BitVec> xrs;
  xrs.reserve(ctx.res.degraded_samples);
  for (std::size_t q = 0; q < ctx.res.degraded_samples; ++q)
    xrs.push_back(BitVec::random(ctx.nd(), rng));
  const std::vector<BitVec> ycs = simulate_key_batch(ctx.lc, xrs, key);
  std::size_t mismatched_bits = 0, total_bits = 0;
  if (ctx.batch) {
    // Batched measurement: chunked query_batch flushes with the deadline
    // checked BETWEEN chunks, so deadline expiry still wins over the
    // degraded verdict (kSolverBudget) within one chunk of slack, and a
    // terminal oracle failure still keeps the partial estimate.
    constexpr std::size_t kChunk = 16;
    for (std::size_t q0 = 0; q0 < xrs.size();) {
      if (ctx.deadline_expired()) {
        result->status = SatAttackResult::Status::kSolverBudget;
        break;
      }
      const std::size_t q1 = std::min(xrs.size(), q0 + kChunk);
      const std::vector<BitVec> sub(
          xrs.begin() + static_cast<std::ptrdiff_t>(q0),
          xrs.begin() + static_cast<std::ptrdiff_t>(q1));
      std::vector<BitVec> yos;
      const std::size_t got = ctx.resilient_query_batch(sub, &yos);
      for (std::size_t j = 0; j < got; ++j) {
        mismatched_bits += (yos[j] ^ ycs[q0 + j]).count();
        total_bits += yos[j].size();
      }
      if (got < sub.size()) break;  // keep the partial estimate
      q0 = q1;
    }
  } else {
    for (std::size_t q = 0; q < xrs.size(); ++q) {
      // The measurement loop is pure oracle traffic, so the solver's
      // deadline check never fires in it; with a slow (e.g. remote) oracle
      // it used to overshoot the deadline by up to degraded_samples
      // round-trips and still report kDegraded. Deadline expiry must win
      // over the degraded verdict; the partial error estimate is kept for
      // diagnostics.
      if (ctx.deadline_expired()) {
        result->status = SatAttackResult::Status::kSolverBudget;
        break;
      }
      BitVec yo;
      if (!ctx.resilient_query(xrs[q], &yo)) break;  // keep partial estimate
      mismatched_bits += (yo ^ ycs[q]).count();
      total_bits += yo.size();
    }
  }
  ctx.oracle_error_rate =
      total_bits == 0 ? -1.0
                      : static_cast<double>(mismatched_bits) /
                            static_cast<double>(total_bits);
}

/// Degraded recovery once eviction stops converging: greedily keeps a
/// maximal consistent subset of the live pairs (in recording order, each
/// accepted only if the key space stays non-empty), extracts a key from
/// it, and measures its error rate. Deterministic: the pair order and
/// every solve are.
void degrade(AttackContext& ctx, std::int64_t budget,
             SatAttackResult* result) {
  if (ctx.deadline_expired()) {
    result->status = SatAttackResult::Status::kSolverBudget;
    return;
  }
  std::vector<std::size_t> chosen;
  for (std::size_t i = 0; i < ctx.pairs.size(); ++i) {
    if (!ctx.pairs[i].live) continue;
    chosen.push_back(i);
    const Solver::Result r = ctx.solve_subset(chosen, budget);
    if (r == Solver::Result::kUnknown) {
      result->status = SatAttackResult::Status::kSolverBudget;
      return;
    }
    if (r != Solver::Result::kSat) chosen.pop_back();
  }
  const Solver::Result r = ctx.solve_subset(chosen, budget);
  if (r == Solver::Result::kUnknown) {
    result->status = SatAttackResult::Status::kSolverBudget;
    return;
  }
  if (r != Solver::Result::kSat) {
    // Even the empty subset is UNSAT: the key space is empty regardless
    // of any oracle answer.
    result->status = SatAttackResult::Status::kInconsistentOracle;
    return;
  }
  finish_degraded(ctx, ctx.model_bits(ctx.k1), result);
}

/// Final key extraction with quarantine repair. On kResume the caller
/// re-enters its DIP loop (corrupted pairs were evicted and re-queried).
ExtractOutcome extract_or_repair(AttackContext& ctx, std::int64_t budget,
                                 std::size_t* repair_rounds,
                                 SatAttackResult* result) {
  if (ctx.deadline_expired()) {
    result->status = SatAttackResult::Status::kSolverBudget;
    return ExtractOutcome::kDone;
  }
  SatAttackResult::Status budget_status = SatAttackResult::Status::kKeyFound;
  if (ctx.extract_key(&result->key, budget, &budget_status)) {
    result->status = SatAttackResult::Status::kKeyFound;
    return ExtractOutcome::kDone;
  }
  if (budget_status == SatAttackResult::Status::kSolverBudget) {
    result->status = budget_status;
    return ExtractOutcome::kDone;
  }
  // Proven UNSAT. Without quarantine this is the classic verdict: no key
  // explains the observed pairs — the oracle lied.
  if (!ctx.res.quarantine) {
    result->status = SatAttackResult::Status::kInconsistentOracle;
    return ExtractOutcome::kDone;
  }
  bool aborted = false;
  const std::vector<std::size_t> suspects =
      ctx.minimize_suspects(budget, &aborted);
  if (aborted) {
    result->status = SatAttackResult::Status::kSolverBudget;
    return ExtractOutcome::kDone;
  }
  if (suspects.empty()) {
    // The refutation never leaned on a pair selector: the key space is
    // empty independent of the observations — genuinely inconsistent.
    result->status = SatAttackResult::Status::kInconsistentOracle;
    return ExtractOutcome::kDone;
  }
  if (++*repair_rounds > kMaxRepairRounds ||
      ctx.evicted_pairs + suspects.size() > ctx.res.max_evictions) {
    degrade(ctx, budget, result);
    return ExtractOutcome::kDone;
  }
  // Evict the minimal inconsistent subset and ask the oracle again about
  // each of its inputs — a fresh answer (new noise draw, retries, votes)
  // usually disagrees with the corrupted one and re-enters cleanly.
  if (ctx.batch) {
    // Batched repair: the whole re-query set (with all its vote replicas)
    // ships as one flush. Deadline checked once up front — the flush is a
    // single round trip, so the serial loop's per-pair check degenerates
    // to this one.
    if (ctx.deadline_expired()) {
      result->status = SatAttackResult::Status::kSolverBudget;
      return ExtractOutcome::kDone;
    }
    std::vector<BitVec> xds;
    xds.reserve(suspects.size());
    for (const std::size_t i : suspects) {
      xds.push_back(ctx.pairs[i].x);
      ctx.evict_pair(i);
      ++ctx.requeried_pairs;
    }
    std::vector<BitVec> ys;
    const std::size_t got =
        ctx.resilient_query_batch(xds, &ys, /*logical=*/false);
    for (std::size_t j = 0; j < got; ++j) ctx.record_pair(xds[j], ys[j]);
    if (got < xds.size()) {
      result->status = SatAttackResult::Status::kOracleError;
      return ExtractOutcome::kDone;
    }
    return ExtractOutcome::kResume;
  }
  for (const std::size_t i : suspects) {
    // Re-queries are oracle traffic: nothing on this path reaches the
    // solver's deadline check, so a slow oracle used to drag the repair
    // loop arbitrarily past the deadline and then report whatever verdict
    // the repair happened to reach (kDegraded, kInconsistentOracle, even
    // kKeyFound). Deadline expiry here is a deadline result, full stop.
    if (ctx.deadline_expired()) {
      result->status = SatAttackResult::Status::kSolverBudget;
      return ExtractOutcome::kDone;
    }
    const BitVec xd = ctx.pairs[i].x;
    ctx.evict_pair(i);
    ++ctx.requeried_pairs;
    BitVec y;
    if (!ctx.resilient_query(xd, &y, /*logical=*/false)) {
      result->status = SatAttackResult::Status::kOracleError;
      return ExtractOutcome::kDone;
    }
    // A re-recorded pair that is corrupted again evicts itself; the next
    // extraction round deals with subtler corruption.
    ctx.record_pair(xd, y);
  }
  return ExtractOutcome::kResume;
}

}  // namespace

SatAttackResult sat_attack(const LockedCircuit& locked, Oracle& oracle,
                           const SatAttackOptions& opts) {
  ORAP_CHECK(oracle.num_inputs() == locked.num_data_inputs);
  ORAP_CHECK(oracle.num_outputs() == locked.netlist.num_outputs());

  AttackContext ctx(locked, oracle, opts.portfolio_size, opts.cube_depth,
                    opts.resilience, opts.deadline_ms, opts.incremental);
  ctx.batch = opts.oracle_batch;
  ctx.dip_batch = opts.dip_batch < 1 ? 1 : opts.dip_batch;
  ctx.x = fresh_vars(ctx.solver, ctx.nd());
  ctx.k1 = fresh_vars(ctx.solver, ctx.nk());
  ctx.k2 = fresh_vars(ctx.solver, ctx.nk());
  ctx.act = ctx.solver.new_var();
  ctx.key_sets = {ctx.k1, ctx.k2};

  const auto a = ctx.lenc.encode_full(ctx.x, ctx.k1);
  const auto b = ctx.lenc.encode_key_variant(a, ctx.k2);
  // Activatable miter: act -> outputs differ somewhere.
  {
    std::vector<Lit> any{sat::neg(ctx.act)};
    for (std::size_t o = 0; o < a.outputs.size(); ++o)
      any.push_back(
          sat::pos(ctx.enc().encode_xor2(a.outputs[o], b.outputs[o])));
    ctx.solver.add_clause(any);
  }
  if (opts.preprocess)
    ctx.preprocess_miter({&ctx.x, &ctx.k1, &ctx.k2, &a.outputs, &b.outputs});
  ctx.snapshot_miter_size();

  SatAttackResult result;
  const auto finish = [&ctx, &result, &oracle] {
    result.oracle_queries = oracle.query_count();
    result.solver_wall_ms = ctx.solver.cube_stats().solve_wall_ms;
    ctx.fill_solver_stats(&result);
  };
  std::size_t repair_rounds = 0;
  while (true) {
    // --- DIP loop over the live pair set ---------------------------------
    while (static_cast<std::int64_t>(result.iterations) <
           opts.max_iterations) {
      if (ctx.deadline_expired()) {
        result.status = SatAttackResult::Status::kSolverBudget;
        finish();
        return result;
      }
      const auto res =
          ctx.solver.solve(ctx.assumps(sat::pos(ctx.act)),
                           opts.conflict_budget);
      if (res == Solver::Result::kUnknown) {
        result.status = SatAttackResult::Status::kSolverBudget;
        finish();
        return result;
      }
      if (res == Solver::Result::kUnsat) break;  // no DIP left
      // Harvest up to dip_batch DIPs from this solver round (1 = the
      // classic loop, bit for bit), capped at the iteration budget, and
      // query them in one flush when batching is on.
      const std::size_t want = std::min(
          ctx.dip_batch,
          static_cast<std::size_t>(opts.max_iterations) - result.iterations);
      const std::vector<BitVec> xds =
          ctx.harvest_dips(want, opts.conflict_budget);
      result.iterations += xds.size();
      const auto round = ctx.query_and_record(xds);
      if (round == AttackContext::DipRound::kOracleError) {
        result.status = SatAttackResult::Status::kOracleError;
        finish();
        return result;
      }
      if (round == AttackContext::DipRound::kInconsistent) {
        // A key-independent output contradicted the response: no key can
        // explain this oracle (and quarantine is off).
        result.status = SatAttackResult::Status::kInconsistentOracle;
        finish();
        return result;
      }
      // kEvicted pairs inside the round were quarantined without
      // constraining anything; those DIPs resurface and are re-queried in
      // a later round.
    }
    // finish() exactly once per exit path: a second call after extract_key
    // used to overwrite the stats snapshot and misattribute solver wall
    // time between the DIP loop and the extraction.
    if (static_cast<std::int64_t>(result.iterations) >= opts.max_iterations) {
      result.status = SatAttackResult::Status::kIterationLimit;
      finish();
      return result;
    }

    if (extract_or_repair(ctx, opts.conflict_budget, &repair_rounds,
                          &result) == ExtractOutcome::kDone) {
      finish();
      return result;
    }
    // Pairs were evicted and re-queried: the key space reopened, so the
    // DIP loop continues refining it.
  }
}

SatAttackResult appsat_attack(const LockedCircuit& locked, Oracle& oracle,
                              const AppSatOptions& opts) {
  AttackContext ctx(locked, oracle, opts.portfolio_size, opts.cube_depth,
                    opts.resilience, opts.deadline_ms, opts.incremental);
  ctx.batch = opts.oracle_batch;
  ctx.x = fresh_vars(ctx.solver, ctx.nd());
  ctx.k1 = fresh_vars(ctx.solver, ctx.nk());
  ctx.k2 = fresh_vars(ctx.solver, ctx.nk());
  ctx.act = ctx.solver.new_var();
  ctx.key_sets = {ctx.k1, ctx.k2};
  const auto a = ctx.lenc.encode_full(ctx.x, ctx.k1);
  const auto b = ctx.lenc.encode_key_variant(a, ctx.k2);
  {
    std::vector<Lit> any{sat::neg(ctx.act)};
    for (std::size_t o = 0; o < a.outputs.size(); ++o)
      any.push_back(
          sat::pos(ctx.enc().encode_xor2(a.outputs[o], b.outputs[o])));
    ctx.solver.add_clause(any);
  }
  if (opts.preprocess)
    ctx.preprocess_miter({&ctx.x, &ctx.k1, &ctx.k2, &a.outputs, &b.outputs});
  ctx.snapshot_miter_size();

  Rng rng(opts.seed);
  SatAttackResult result;
  std::size_t clean_rounds = 0;
  const auto finish = [&ctx, &result, &oracle] {
    result.oracle_queries = oracle.query_count();
    result.solver_wall_ms = ctx.solver.cube_stats().solve_wall_ms;
    ctx.fill_solver_stats(&result);
  };
  std::size_t repair_rounds = 0;

  while (true) {
    bool dip_space_empty = false;
    while (static_cast<std::int64_t>(result.iterations) <
           opts.max_iterations) {
      if (ctx.deadline_expired()) {
        result.status = SatAttackResult::Status::kSolverBudget;
        finish();
        return result;
      }
      const auto res = ctx.solver.solve(ctx.assumps(sat::pos(ctx.act)),
                                        opts.conflict_budget);
      if (res == Solver::Result::kUnknown) {
        // Budget abort, exactly as in sat_attack — NOT a lying oracle.
        result.status = SatAttackResult::Status::kSolverBudget;
        finish();
        return result;
      }
      if (res == Solver::Result::kUnsat) {
        dip_space_empty = true;  // exact convergence (over the live pairs)
        break;
      }
      ++result.iterations;
      // One DIP per round (the check_period interleave wants that), but
      // query_and_record still flushes its vote replicas as one batch
      // when batching is on.
      const auto round = ctx.query_and_record({ctx.model_bits(ctx.x)});
      if (round == AttackContext::DipRound::kOracleError) {
        result.status = SatAttackResult::Status::kOracleError;
        finish();
        return result;
      }
      if (round == AttackContext::DipRound::kInconsistent) {
        result.status = SatAttackResult::Status::kInconsistentOracle;
        finish();
        return result;
      }

      if (result.iterations % opts.check_period != 0) continue;
      // Random-sampling round on the current candidate key.
      SatAttackResult::Status mid_status = SatAttackResult::Status::kKeyFound;
      BitVec candidate;
      if (!ctx.extract_key(&candidate, opts.conflict_budget, &mid_status)) {
        if (mid_status == SatAttackResult::Status::kSolverBudget) {
          result.status = mid_status;
          finish();
          return result;
        }
        break;  // no consistent key: extraction + repair settles it below
      }
      // Draw the whole round up front (identical rng stream to drawing one
      // sample per query) and batch the candidate's responses through the
      // wide simulator; the oracle query order and every early exit stay
      // exactly as in the per-sample loop.
      std::vector<BitVec> xrs;
      xrs.reserve(opts.random_queries);
      for (std::size_t q = 0; q < opts.random_queries; ++q)
        xrs.push_back(BitVec::random(ctx.nd(), rng));
      const std::vector<BitVec> ycs =
          simulate_key_batch(locked, xrs, candidate);
      std::size_t mismatches = 0;
      if (ctx.batch) {
        // The whole sampling round — every sample with every vote replica
        // — in one flush; mismatches recorded afterwards in sample order
        // (recording never touches the oracle).
        std::vector<BitVec> yos;
        const std::size_t got = ctx.resilient_query_batch(xrs, &yos);
        for (std::size_t q = 0; q < got; ++q) {
          if (yos[q] != ycs[q]) {
            ++mismatches;
            if (ctx.record_pair(xrs[q], yos[q]) ==
                AttackContext::RecordStatus::kInconsistent) {
              result.status = SatAttackResult::Status::kInconsistentOracle;
              finish();
              return result;
            }
          }
        }
        if (got < xrs.size()) {
          result.status = SatAttackResult::Status::kOracleError;
          finish();
          return result;
        }
      } else {
        for (std::size_t q = 0; q < xrs.size(); ++q) {
          BitVec yo;
          if (!ctx.resilient_query(xrs[q], &yo)) {
            result.status = SatAttackResult::Status::kOracleError;
            finish();
            return result;
          }
          if (yo != ycs[q]) {
            ++mismatches;
            if (ctx.record_pair(xrs[q], yo) ==
                AttackContext::RecordStatus::kInconsistent) {
              result.status = SatAttackResult::Status::kInconsistentOracle;
              finish();
              return result;
            }
          }
        }
      }
      if (mismatches == 0) {
        if (++clean_rounds >= opts.settle_rounds) {
          // Approximate key settled.
          result.status = SatAttackResult::Status::kKeyFound;
          result.key = candidate;
          finish();
          return result;
        }
      } else {
        clean_rounds = 0;
      }
    }
    if (!dip_space_empty &&
        static_cast<std::int64_t>(result.iterations) >= opts.max_iterations) {
      result.status = SatAttackResult::Status::kIterationLimit;
      finish();
      return result;
    }
    if (extract_or_repair(ctx, opts.conflict_budget, &repair_rounds,
                          &result) == ExtractOutcome::kDone) {
      finish();
      return result;
    }
  }
}

SatAttackResult double_dip_attack(const LockedCircuit& locked, Oracle& oracle,
                                  const SatAttackOptions& opts) {
  AttackContext ctx(locked, oracle, opts.portfolio_size, opts.cube_depth,
                    opts.resilience, opts.deadline_ms, opts.incremental);
  ctx.batch = opts.oracle_batch;
  ctx.dip_batch = opts.dip_batch < 1 ? 1 : opts.dip_batch;
  ctx.x = fresh_vars(ctx.solver, ctx.nd());
  ctx.k1 = fresh_vars(ctx.solver, ctx.nk());
  ctx.k2 = fresh_vars(ctx.solver, ctx.nk());
  auto k3 = fresh_vars(ctx.solver, ctx.nk());
  auto k4 = fresh_vars(ctx.solver, ctx.nk());
  ctx.act = ctx.solver.new_var();
  ctx.key_sets = {ctx.k1, ctx.k2, k3, k4};
  CubeSolver& s = ctx.solver;
  Encoder& e = ctx.enc();

  const auto a = ctx.lenc.encode_full(ctx.x, ctx.k1);
  const auto b = ctx.lenc.encode_key_variant(a, ctx.k2);
  const auto c = ctx.lenc.encode_key_variant(a, k3);
  const auto d = ctx.lenc.encode_key_variant(a, k4);

  // act -> Y(a)==Y(b), Y(c)==Y(d), Y(a)!=Y(c), k1!=k2, k3!=k4.
  // Whichever side the oracle contradicts loses two keys at once.
  const Lit noact = sat::neg(ctx.act);
  for (std::size_t o = 0; o < a.outputs.size(); ++o) {
    s.add_clause({noact, sat::neg(a.outputs[o]), sat::pos(b.outputs[o])});
    s.add_clause({noact, sat::pos(a.outputs[o]), sat::neg(b.outputs[o])});
    s.add_clause({noact, sat::neg(c.outputs[o]), sat::pos(d.outputs[o])});
    s.add_clause({noact, sat::pos(c.outputs[o]), sat::neg(d.outputs[o])});
  }
  auto add_neq = [&](const std::vector<Var>& u, const std::vector<Var>& v) {
    std::vector<Lit> any{noact};
    for (std::size_t i = 0; i < u.size(); ++i)
      any.push_back(sat::pos(e.encode_xor2(u[i], v[i])));
    s.add_clause(any);
  };
  {
    std::vector<Lit> any{noact};
    for (std::size_t o = 0; o < a.outputs.size(); ++o)
      any.push_back(sat::pos(e.encode_xor2(a.outputs[o], c.outputs[o])));
    s.add_clause(any);
  }
  add_neq(ctx.k1, ctx.k2);
  add_neq(k3, k4);
  if (opts.preprocess)
    ctx.preprocess_miter({&ctx.x, &ctx.k1, &ctx.k2, &k3, &k4, &a.outputs,
                          &b.outputs, &c.outputs, &d.outputs});
  ctx.snapshot_miter_size();

  SatAttackResult result;
  const auto finish = [&ctx, &result, &oracle] {
    result.oracle_queries = oracle.query_count();
    result.solver_wall_ms = ctx.solver.cube_stats().solve_wall_ms;
    ctx.fill_solver_stats(&result);
  };
  std::size_t repair_rounds = 0;
  while (true) {
    while (static_cast<std::int64_t>(result.iterations) <
           opts.max_iterations) {
      if (ctx.deadline_expired()) {
        result.status = SatAttackResult::Status::kSolverBudget;
        finish();
        return result;
      }
      const auto res = s.solve(ctx.assumps(sat::pos(ctx.act)),
                               opts.conflict_budget);
      if (res == Solver::Result::kUnknown) {
        result.status = SatAttackResult::Status::kSolverBudget;
        finish();
        return result;
      }
      if (res == Solver::Result::kUnsat) break;
      // Same k-DIP harvesting as sat_attack: each harvested input is a
      // genuine double-DIP of the current constraint set.
      const std::size_t want = std::min(
          ctx.dip_batch,
          static_cast<std::size_t>(opts.max_iterations) - result.iterations);
      const std::vector<BitVec> xds =
          ctx.harvest_dips(want, opts.conflict_budget);
      result.iterations += xds.size();
      const auto round = ctx.query_and_record(xds);
      if (round == AttackContext::DipRound::kOracleError) {
        result.status = SatAttackResult::Status::kOracleError;
        finish();
        return result;
      }
      if (round == AttackContext::DipRound::kInconsistent) {
        result.status = SatAttackResult::Status::kInconsistentOracle;
        finish();
        return result;
      }
    }
    if (static_cast<std::int64_t>(result.iterations) >= opts.max_iterations) {
      result.status = SatAttackResult::Status::kIterationLimit;
      finish();
      return result;
    }
    // No double-DIP remains: at most one equivalence class of the
    // "traditional" key part survives (point-function flips like SARLock's
    // cannot form a double-DIP, so they stay unresolved — the Double-DIP
    // paper's point is precisely that this part does not matter). Extract a
    // key from the surviving class; run sat_attack afterwards if exactness
    // on the point-function part is required.
    if (extract_or_repair(ctx, opts.conflict_budget, &repair_rounds,
                          &result) == ExtractOutcome::kDone) {
      finish();
      return result;
    }
  }
}

std::size_t verify_key_against_oracle(const LockedCircuit& locked,
                                      const BitVec& key, Oracle& oracle,
                                      std::size_t samples,
                                      std::uint64_t seed) {
  // The sample draws are response-independent, so the whole probe set is
  // drawn up front and shipped as one Oracle::query_batch flush (a single
  // round trip over a served oracle). Decorators apply their per-query
  // randomness in element order, so the responses — and therefore the
  // mismatch count — are byte-identical to the old serial loop.
  Rng rng(seed);
  std::vector<BitVec> draws;
  draws.reserve(samples);
  for (std::size_t q = 0; q < samples; ++q)
    draws.push_back(BitVec::random(locked.num_data_inputs, rng));
  std::vector<OracleResult> rs;
  oracle.query_batch(draws, &rs);
  std::vector<BitVec> xs;
  std::vector<BitVec> ys;
  xs.reserve(samples);
  ys.reserve(samples);
  for (std::size_t q = 0; q < draws.size(); ++q) {
    if (!rs[q].ok()) continue;  // unanswered samples cannot witness a mismatch
    xs.push_back(std::move(draws[q]));
    ys.push_back(rs[q].response());
  }

  // Candidate simulation: 64 * kBlockWords samples per wide pass, wide
  // passes sharded across the pool. A sample mismatches when any output
  // bit differs, so per pass the expected responses are packed into lane
  // words, XORed against the simulated output blocks, and the surviving
  // lane mask popcounted — the count is identical to comparing run_single
  // sample by sample.
  const std::size_t lanes = 64 * simd::kBlockWords;
  const std::size_t num_blocks = (xs.size() + lanes - 1) / lanes;
  std::vector<std::unique_ptr<Simulator>> sims(parallel_threads());
  return parallel_reduce(
      /*grain=*/1, num_blocks, std::size_t{0},
      [&](std::size_t bb, std::size_t be, std::size_t) {
        const std::size_t slot = parallel_slot();
        if (!sims[slot])
          sims[slot] =
              std::make_unique<Simulator>(locked.netlist, simd::kBlockWords);
        Simulator& sim = *sims[slot];
        const std::size_t w = sim.block_words();
        const std::size_t nd = locked.num_data_inputs;
        std::vector<std::uint64_t> block(w);
        std::size_t miss = 0;
        for (std::size_t blk = bb; blk < be; ++blk) {
          const std::size_t q0 = blk * lanes;
          const std::size_t q1 = std::min(xs.size(), q0 + lanes);
          for (std::size_t i = 0; i < nd; ++i) {
            for (std::size_t j = 0; j < w; ++j) {
              std::uint64_t word = 0;
              const std::size_t base = q0 + j * 64;
              const std::size_t nb =
                  base < q1 ? std::min<std::size_t>(64, q1 - base) : 0;
              for (std::size_t b = 0; b < nb; ++b)
                if (xs[base + b].get(i)) word |= std::uint64_t{1} << b;
              block[j] = word;
            }
            sim.set_input_block(i, block);
          }
          for (std::size_t i = 0; i < locked.num_key_inputs; ++i) {
            std::fill(block.begin(), block.end(),
                      key.get(i) ? ~std::uint64_t{0} : std::uint64_t{0});
            sim.set_input_block(nd + i, block);
          }
          sim.run();
          for (std::size_t j = 0; j < w; ++j) {
            const std::size_t base = q0 + j * 64;
            const std::size_t nb =
                base < q1 ? std::min<std::size_t>(64, q1 - base) : 0;
            if (nb == 0) break;
            std::uint64_t diff = 0;
            for (std::size_t o = 0; o < locked.netlist.num_outputs(); ++o) {
              std::uint64_t exp = 0;
              for (std::size_t b = 0; b < nb; ++b)
                if (ys[base + b].get(o)) exp |= std::uint64_t{1} << b;
              diff |= sim.output_block(o)[j] ^ exp;
            }
            const std::uint64_t valid =
                nb == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << nb) - 1;
            miss += static_cast<std::size_t>(
                std::popcount(diff & valid));
          }
        }
        return miss;
      },
      [](std::size_t acc, std::size_t part) { return acc + part; });
}

}  // namespace orap
