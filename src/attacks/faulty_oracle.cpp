#include "attacks/faulty_oracle.h"

namespace orap {

NoisyOracle::NoisyOracle(Oracle& inner, double flip_rate, std::uint64_t seed)
    : OracleDecorator(inner), flip_rate_(flip_rate), rng_(seed) {}

OracleResult NoisyOracle::do_query(const BitVec& data) {
  OracleResult r = inner().query(data);
  // A zero rate must not touch the RNG: the zero-rate decorator is the
  // byte-identity baseline of the determinism contract.
  if (!r.ok() || flip_rate_ <= 0.0) return r;
  BitVec y = r.response();
  std::size_t flips = 0;
  for (std::size_t o = 0; o < y.size(); ++o) {
    if (rng_.chance(flip_rate_)) {
      y.set(o, !y.get(o));
      ++flips;
    }
  }
  if (flips > 0) {
    flipped_bits_ += flips;
    ++corrupted_responses_;
  }
  return y;
}

IntermittentOracle::IntermittentOracle(Oracle& inner, double fail_rate,
                                       std::uint64_t seed,
                                       OracleErrorKind kind)
    : OracleDecorator(inner), fail_rate_(fail_rate), kind_(kind), rng_(seed) {}

OracleResult IntermittentOracle::do_query(const BitVec& data) {
  if (fail_rate_ > 0.0 && rng_.chance(fail_rate_)) {
    ++injected_failures_;
    return OracleResult::failure(kind_);
  }
  return inner().query(data);
}

StuckOracle::StuckOracle(Oracle& inner, double stick_rate, std::uint64_t seed)
    : OracleDecorator(inner), stick_rate_(stick_rate), rng_(seed) {}

OracleResult StuckOracle::do_query(const BitVec& data) {
  if (have_last_ && stick_rate_ > 0.0 && rng_.chance(stick_rate_)) {
    ++stale_responses_;
    return last_;
  }
  OracleResult r = inner().query(data);
  if (r.ok()) {
    last_ = r.response();
    have_last_ = true;
  }
  return r;
}

BudgetedOracle::BudgetedOracle(Oracle& inner, std::size_t max_queries)
    : OracleDecorator(inner), max_queries_(max_queries) {}

OracleResult BudgetedOracle::do_query(const BitVec& data) {
  if (attempts_ >= max_queries_)
    return OracleResult::failure(OracleErrorKind::kExhausted);
  ++attempts_;
  return inner().query(data);
}

}  // namespace orap
