#include "attacks/faulty_oracle.h"

#include <chrono>
#include <thread>

namespace orap {

namespace {

// State-blob framing shared by all decorators: a per-class tag byte (so a
// blob saved from one decorator stack cannot be silently loaded into a
// differently-shaped one) followed by the class's fixed-layout fields.
enum : std::uint8_t {
  kTagNoisy = 0xa1,
  kTagIntermittent = 0xa2,
  kTagStuck = 0xa3,
  kTagBudgeted = 0xa4,
  // 0xa5 is reserved: LatentOracle intentionally serializes no state
  // (latency config must not pin a checkpoint to one link speed).
};

void put_rng(std::vector<std::uint8_t>* out, const Rng& rng) {
  std::uint64_t s[4];
  rng.save_state(s);
  for (const std::uint64_t w : s) bytes::put_u64(out, w);
}

bool get_rng(bytes::Reader* in, Rng* rng) {
  std::uint64_t s[4];
  for (auto& w : s) w = in->u64();
  if (!in->ok()) return false;
  rng->restore_state(s);
  return true;
}

void put_bitvec(std::vector<std::uint8_t>* out, const BitVec& v) {
  bytes::put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const std::uint64_t w : v.words()) bytes::put_u64(out, w);
}

bool get_bitvec(bytes::Reader* in, BitVec* v) {
  const std::uint32_t nbits = in->u32();
  if (!in->ok()) return false;
  BitVec out(nbits);
  for (auto& w : out.words()) w = in->u64();
  if (!in->ok()) return false;
  // Reject blobs whose tail word carries bits beyond nbits (corruption).
  if (nbits % 64 != 0 && !out.words().empty() &&
      (out.words().back() >> (nbits % 64)) != 0)
    return false;
  *v = std::move(out);
  return true;
}

}  // namespace

NoisyOracle::NoisyOracle(Oracle& inner, double flip_rate, std::uint64_t seed)
    : OracleDecorator(inner), flip_rate_(flip_rate), rng_(seed) {}

OracleResult NoisyOracle::do_query(const BitVec& data) {
  OracleResult r = inner().query(data);
  // A zero rate must not touch the RNG: the zero-rate decorator is the
  // byte-identity baseline of the determinism contract.
  if (!r.ok() || flip_rate_ <= 0.0) return r;
  BitVec y = r.response();
  std::size_t flips = 0;
  for (std::size_t o = 0; o < y.size(); ++o) {
    if (rng_.chance(flip_rate_)) {
      y.set(o, !y.get(o));
      ++flips;
    }
  }
  if (flips > 0) {
    flipped_bits_ += flips;
    ++corrupted_responses_;
  }
  return y;
}

void NoisyOracle::do_query_batch(const std::vector<BitVec>& xs,
                                 std::vector<OracleResult>* out) {
  inner().query_batch(xs, out);
  // Flip draws happen per element in element order, exactly as the serial
  // loop would draw them; the inner layer's own draws live on independent
  // RNG streams, so batching the inner query first changes nothing.
  for (auto& r : *out) {
    if (!r.ok() || flip_rate_ <= 0.0) continue;
    BitVec y = r.response();
    std::size_t flips = 0;
    for (std::size_t o = 0; o < y.size(); ++o) {
      if (rng_.chance(flip_rate_)) {
        y.set(o, !y.get(o));
        ++flips;
      }
    }
    if (flips > 0) {
      flipped_bits_ += flips;
      ++corrupted_responses_;
      r = OracleResult(std::move(y));
    }
  }
}

IntermittentOracle::IntermittentOracle(Oracle& inner, double fail_rate,
                                       std::uint64_t seed,
                                       OracleErrorKind kind)
    : OracleDecorator(inner), fail_rate_(fail_rate), kind_(kind), rng_(seed) {}

OracleResult IntermittentOracle::do_query(const BitVec& data) {
  if (fail_rate_ > 0.0 && rng_.chance(fail_rate_)) {
    ++injected_failures_;
    return OracleResult::failure(kind_);
  }
  return inner().query(data);
}

void IntermittentOracle::do_query_batch(const std::vector<BitVec>& xs,
                                        std::vector<OracleResult>* out) {
  if (fail_rate_ <= 0.0) {  // zero-rate: no draws, straight pass-through
    inner().query_batch(xs, out);
    return;
  }
  // Serially, the drop decision for element i is drawn BEFORE the inner
  // query for element i, and dropped queries never reach the device. The
  // decisions do not depend on responses, so they can all be drawn first
  // (still in element order) and the surviving subset shipped as one
  // inner batch.
  std::vector<std::uint8_t> dropped(xs.size(), 0);
  std::vector<BitVec> pass;
  pass.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (rng_.chance(fail_rate_)) {
      dropped[i] = 1;
      ++injected_failures_;
    } else {
      pass.push_back(xs[i]);
    }
  }
  std::vector<OracleResult> sub;
  if (!pass.empty()) inner().query_batch(pass, &sub);
  out->reserve(xs.size());
  std::size_t j = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (dropped[i])
      out->push_back(OracleResult::failure(kind_));
    else
      out->push_back(std::move(sub[j++]));
  }
}

StuckOracle::StuckOracle(Oracle& inner, double stick_rate, std::uint64_t seed)
    : OracleDecorator(inner), stick_rate_(stick_rate), rng_(seed) {}

OracleResult StuckOracle::do_query(const BitVec& data) {
  if (have_last_ && stick_rate_ > 0.0 && rng_.chance(stick_rate_)) {
    ++stale_responses_;
    return last_;
  }
  OracleResult r = inner().query(data);
  if (r.ok()) {
    last_ = r.response();
    have_last_ = true;
  }
  return r;
}

void StuckOracle::do_query_batch(const std::vector<BitVec>& xs,
                                 std::vector<OracleResult>* out) {
  if (stick_rate_ <= 0.0) {  // zero-rate: no draws, straight pass-through
    inner().query_batch(xs, out);
    for (const auto& r : *out) {
      if (r.ok()) {
        last_ = r.response();
        have_last_ = true;
      }
    }
    return;
  }
  out->reserve(xs.size());
  // Pending run of fresh (non-stale) elements and where their results go.
  std::vector<BitVec> run;
  std::vector<std::size_t> run_at;
  const OracleResult placeholder =
      OracleResult::failure(OracleErrorKind::kTransient);
  auto flush_run = [&] {
    if (run.empty()) return;
    std::vector<OracleResult> sub;
    inner().query_batch(run, &sub);
    for (std::size_t j = 0; j < sub.size(); ++j) {
      if (sub[j].ok()) {
        last_ = sub[j].response();
        have_last_ = true;
      }
      (*out)[run_at[j]] = std::move(sub[j]);
    }
    run.clear();
    run_at.clear();
  };
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // Serially, the stick draw for element i only happens once a previous
    // response has been remembered. have_last_ can become true inside a
    // pending run (on its first OK response), so while it is still false
    // each element must be resolved before the next one's draw decision —
    // a singleton flush. After that the draw sequence is response-free and
    // runs can batch up.
    if (!have_last_) {
      out->push_back(placeholder);
      run.push_back(xs[i]);
      run_at.push_back(i);
      flush_run();
      continue;
    }
    if (rng_.chance(stick_rate_)) {
      flush_run();  // a stale element repeats last_ as of NOW, serially
      ++stale_responses_;
      out->push_back(last_);
      continue;
    }
    out->push_back(placeholder);
    run.push_back(xs[i]);
    run_at.push_back(i);
  }
  flush_run();
}

BudgetedOracle::BudgetedOracle(Oracle& inner, std::size_t max_queries)
    : OracleDecorator(inner), max_queries_(max_queries) {}

OracleResult BudgetedOracle::do_query(const BitVec& data) {
  if (attempts_ >= max_queries_)
    return OracleResult::failure(OracleErrorKind::kExhausted);
  ++attempts_;
  return inner().query(data);
}

void BudgetedOracle::do_query_batch(const std::vector<BitVec>& xs,
                                    std::vector<OracleResult>* out) {
  const std::size_t remaining =
      attempts_ >= max_queries_ ? 0 : max_queries_ - attempts_;
  const std::size_t fit = xs.size() < remaining ? xs.size() : remaining;
  out->reserve(xs.size());
  if (fit > 0) {
    std::vector<BitVec> head(xs.begin(),
                             xs.begin() + static_cast<std::ptrdiff_t>(fit));
    attempts_ += fit;
    inner().query_batch(head, out);
  }
  for (std::size_t i = fit; i < xs.size(); ++i)
    out->push_back(OracleResult::failure(OracleErrorKind::kExhausted));
}

LatentOracle::LatentOracle(Oracle& inner, std::uint64_t latency_us,
                           std::uint64_t jitter_us, std::uint64_t seed)
    : OracleDecorator(inner),
      latency_us_(latency_us),
      jitter_us_(jitter_us),
      rng_(seed) {}

OracleResult LatentOracle::do_query(const BitVec& data) {
  // Zero jitter must not touch the RNG (same contract as a zero-rate
  // fault decorator), and a fully-zero configuration must not sleep.
  std::uint64_t us = latency_us_;
  if (jitter_us_ > 0) us += rng_.below(jitter_us_ + 1);
  if (us > 0) {
    total_injected_us_ += us;
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  return inner().query(data);
}

void LatentOracle::do_query_batch(const std::vector<BitVec>& xs,
                                  std::vector<OracleResult>* out) {
  // One round trip, one latency charge: this is the saving batching buys.
  std::uint64_t us = latency_us_;
  if (jitter_us_ > 0) us += rng_.below(jitter_us_ + 1);
  if (us > 0) {
    total_injected_us_ += us;
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  inner().query_batch(xs, out);
}

// --- checkpoint/resume state blobs -----------------------------------------

void NoisyOracle::save_state(std::vector<std::uint8_t>* out) const {
  OracleDecorator::save_state(out);
  bytes::put_u8(out, kTagNoisy);
  put_rng(out, rng_);
  bytes::put_u64(out, flipped_bits_);
  bytes::put_u64(out, corrupted_responses_);
}

bool NoisyOracle::load_state(bytes::Reader* in) {
  if (!OracleDecorator::load_state(in)) return false;
  if (in->u8() != kTagNoisy || !get_rng(in, &rng_)) return false;
  flipped_bits_ = static_cast<std::size_t>(in->u64());
  corrupted_responses_ = static_cast<std::size_t>(in->u64());
  return in->ok();
}

void IntermittentOracle::save_state(std::vector<std::uint8_t>* out) const {
  OracleDecorator::save_state(out);
  bytes::put_u8(out, kTagIntermittent);
  put_rng(out, rng_);
  bytes::put_u64(out, injected_failures_);
}

bool IntermittentOracle::load_state(bytes::Reader* in) {
  if (!OracleDecorator::load_state(in)) return false;
  if (in->u8() != kTagIntermittent || !get_rng(in, &rng_)) return false;
  injected_failures_ = static_cast<std::size_t>(in->u64());
  return in->ok();
}

void StuckOracle::save_state(std::vector<std::uint8_t>* out) const {
  OracleDecorator::save_state(out);
  bytes::put_u8(out, kTagStuck);
  put_rng(out, rng_);
  bytes::put_u8(out, have_last_ ? 1 : 0);
  if (have_last_) put_bitvec(out, last_);
  bytes::put_u64(out, stale_responses_);
}

bool StuckOracle::load_state(bytes::Reader* in) {
  if (!OracleDecorator::load_state(in)) return false;
  if (in->u8() != kTagStuck || !get_rng(in, &rng_)) return false;
  const std::uint8_t have = in->u8();
  if (have > 1) return false;
  have_last_ = have == 1;
  if (have_last_ && !get_bitvec(in, &last_)) return false;
  stale_responses_ = static_cast<std::size_t>(in->u64());
  return in->ok();
}

void BudgetedOracle::save_state(std::vector<std::uint8_t>* out) const {
  OracleDecorator::save_state(out);
  bytes::put_u8(out, kTagBudgeted);
  bytes::put_u64(out, attempts_);
}

bool BudgetedOracle::load_state(bytes::Reader* in) {
  if (!OracleDecorator::load_state(in)) return false;
  if (in->u8() != kTagBudgeted) return false;
  attempts_ = static_cast<std::size_t>(in->u64());
  return in->ok();
}

}  // namespace orap
