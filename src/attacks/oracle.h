#pragma once
// The attacker's view of a functional chip: a black box mapping
// combinational-core data inputs to outputs. Every oracle-guided attack in
// src/attacks runs against this interface.
//
//  * GoldenOracle — a conventional chip: the key register holds the
//    correct key during scan, so scan in/capture/scan out yields golden
//    responses. (This is the attack surface the paper's Sec. I describes.)
//  * ChipScanOracle — an OraP chip driven through its scan interface; the
//    pulse generators clear the key register on scan entry, so responses
//    correspond to the locked circuit.

#include <cstddef>

#include "chip/chip.h"
#include "locking/locking.h"
#include "netlist/simulator.h"
#include "util/bitvec.h"

namespace orap {

class Oracle {
 public:
  virtual ~Oracle() = default;

  virtual std::size_t num_inputs() const = 0;
  virtual std::size_t num_outputs() const = 0;

  BitVec query(const BitVec& data) {
    ++queries_;
    return do_query(data);
  }
  std::size_t query_count() const { return queries_; }

 protected:
  virtual BitVec do_query(const BitVec& data) = 0;

 private:
  std::size_t queries_ = 0;
};

/// Conventional (unprotected) chip: scan access yields correct responses.
class GoldenOracle final : public Oracle {
 public:
  explicit GoldenOracle(const LockedCircuit& lc) : lc_(lc), sim_(lc.netlist) {}

  std::size_t num_inputs() const override { return lc_.num_data_inputs; }
  std::size_t num_outputs() const override {
    return lc_.netlist.num_outputs();
  }

 private:
  BitVec do_query(const BitVec& data) override {
    return sim_.run_single(lc_.assemble_input(data, lc_.correct_key));
  }

  const LockedCircuit& lc_;
  Simulator sim_;
};

/// OraP chip behind its real scan protocol. Data packs [pi | state] and
/// the response packs [po | next_state], exactly the locked core's I/O.
class ChipScanOracle final : public Oracle {
 public:
  explicit ChipScanOracle(OrapChip& chip) : chip_(chip) {}

  std::size_t num_inputs() const override {
    return chip_.num_pis() + chip_.num_state_ffs();
  }
  std::size_t num_outputs() const override {
    return chip_.num_pos() + chip_.num_state_ffs();
  }

 private:
  BitVec do_query(const BitVec& data) override {
    return scan_oracle_query(chip_, data);
  }

  OrapChip& chip_;
};

}  // namespace orap
