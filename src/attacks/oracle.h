#pragma once
// The attacker's view of a functional chip: a black box mapping
// combinational-core data inputs to outputs. Every oracle-guided attack in
// src/attacks runs against this interface.
//
//  * GoldenOracle — a conventional chip: the key register holds the
//    correct key during scan, so scan in/capture/scan out yields golden
//    responses. (This is the attack surface the paper's Sec. I describes.)
//  * ChipScanOracle — an OraP chip driven through its scan interface; the
//    pulse generators clear the key register on scan entry, so responses
//    correspond to the locked circuit.
//
// Real oracles are also *unreliable*: tester links drop (transients),
// sessions stall (timeouts), access runs out (query caps), and fault
// injection corrupts responses outright. `query` therefore returns an
// OracleResult — a response or a typed OracleError — and the seeded fault
// decorators in attacks/faulty_oracle.h compose over any oracle to model
// these failure modes reproducibly.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "chip/chip.h"
#include "locking/locking.h"
#include "netlist/simulator.h"
#include "util/bitvec.h"
#include "util/bytes.h"
#include "util/check.h"

namespace orap {

enum class OracleErrorKind {
  kTransient,  // momentary failure; retrying the same query may succeed
  kTimeout,    // the device did not answer in time; retryable
  kExhausted,  // query budget spent / access revoked; never retryable
};

inline const char* to_string(OracleErrorKind k) {
  switch (k) {
    case OracleErrorKind::kTransient: return "transient";
    case OracleErrorKind::kTimeout: return "timeout";
    case OracleErrorKind::kExhausted: return "exhausted";
  }
  return "?";
}

struct OracleError {
  OracleErrorKind kind = OracleErrorKind::kTransient;
  bool retryable() const { return kind != OracleErrorKind::kExhausted; }
};

/// Response-or-error sum type returned by Oracle::query. Implicitly
/// constructible from a BitVec so concrete oracles can keep returning
/// plain responses.
class OracleResult {
 public:
  OracleResult(BitVec response)  // NOLINT: implicit by design
      : ok_(true), response_(std::move(response)) {}
  OracleResult(OracleError error)  // NOLINT: implicit by design
      : ok_(false), error_(error) {}
  static OracleResult failure(OracleErrorKind kind) {
    return OracleResult(OracleError{kind});
  }

  bool ok() const { return ok_; }
  const BitVec& response() const {
    ORAP_CHECK_MSG(ok_, "OracleResult::response() on an error result");
    return response_;
  }
  const OracleError& error() const {
    ORAP_CHECK_MSG(!ok_, "OracleResult::error() on an ok result");
    return error_;
  }

 private:
  bool ok_;
  BitVec response_;
  OracleError error_;
};

class Oracle {
 public:
  virtual ~Oracle() = default;

  virtual std::size_t num_inputs() const = 0;
  virtual std::size_t num_outputs() const = 0;

  /// One logical query. Counters are bumped AFTER do_query returns, so a
  /// throwing oracle never inflates query_count (exception safety), and
  /// failed attempts are visible in error_count.
  OracleResult query(const BitVec& data) {
    OracleResult r = do_query(data);
    ++queries_;
    ++round_trips_;
    if (!r.ok()) ++errors_;
    return r;
  }

  /// A retry or extra majority-vote attempt for a query already counted by
  /// query(). Charged to retry_count, NOT query_count, so logical query
  /// counts stay comparable whether resilience is on or off.
  OracleResult requery(const BitVec& data) {
    OracleResult r = do_query(data);
    ++retries_;
    ++round_trips_;
    if (!r.ok()) ++errors_;
    return r;
  }

  /// Many queries in one flush (one round trip for oracles that can ship
  /// them together — RemoteOracle sends one wire frame, LatentOracle
  /// charges its link latency once). Always fills exactly xs.size()
  /// results, and each element is accounted exactly as the matching
  /// serial query()/requery() call would be: `logical` selects per
  /// element whether it is a fresh logical query (nonzero -> query_count)
  /// or a retry/vote attempt (zero -> retry_count); nullptr charges every
  /// element to query_count. Batch determinism contract: a batch is
  /// byte-identical to issuing its elements serially in order, because
  /// every decorator draws its per-query RNG state in element order
  /// (regression-tested in tests/batch_test.cpp).
  void query_batch(const std::vector<BitVec>& xs,
                   std::vector<OracleResult>* out,
                   const std::vector<std::uint8_t>* logical = nullptr) {
    out->clear();
    if (xs.empty()) return;  // no traffic, no round trip
    ORAP_CHECK_MSG(logical == nullptr || logical->size() == xs.size(),
                   "query_batch logical mask size mismatch");
    do_query_batch(xs, out);
    ORAP_CHECK_MSG(out->size() == xs.size(),
                   "do_query_batch returned a wrong-sized batch");
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (logical == nullptr || (*logical)[i] != 0)
        ++queries_;
      else
        ++retries_;
      if (!(*out)[i].ok()) ++errors_;
    }
    ++batches_;
    ++round_trips_;
  }

  /// Batch-element semantics: each batch element counts exactly once in
  /// query_count/retry_count (above); a whole batch counts once in
  /// batch_count and once in round_trip_count, while each serial
  /// query()/requery() counts one round trip — so round_trip_count is the
  /// number of device round trips the attack actually paid.
  std::size_t query_count() const { return queries_; }
  std::size_t retry_count() const { return retries_; }
  std::size_t error_count() const { return errors_; }
  std::size_t batch_count() const { return batches_; }
  std::size_t round_trip_count() const { return round_trips_; }

  /// Result-cache accounting (serve/result_cache.h). A cache hit is
  /// served without touching the device below the cache, so it counts
  /// zero device queries; the outermost layer reports the whole stack's
  /// hit/miss totals. Stacks without a cache report zero.
  virtual std::size_t cache_hits() const { return 0; }
  virtual std::size_t cache_misses() const { return 0; }

  /// Attack-side bookkeeping: a response from this oracle was identified
  /// as corrupted (quarantined / evicted).
  void note_corruption_suspected() { ++corrupted_suspected_; }
  std::size_t corrupted_suspected() const { return corrupted_suspected_; }

  // --- checkpoint/resume state (src/attacks/checkpoint.h) -----------------
  // A resumed attack replays its recorded oracle transcript, but the live
  // continuation afterwards must also match the uninterrupted run — which
  // means every stateful layer of the oracle stack (fault-injector RNG
  // stream positions, stale-response caches, access budgets) has to be
  // restored to where the interrupted run left it. save_state appends this
  // oracle's resume-relevant state to `out`; load_state consumes the same
  // bytes back. Decorators serialize the wrapped oracle FIRST, then their
  // own state, so one blob round-trips a whole decorator stack. Stateless
  // oracles (GoldenOracle, ChipScanOracle) keep the no-op default.

  virtual void save_state(std::vector<std::uint8_t>* out) const {
    (void)out;
  }
  virtual bool load_state(bytes::Reader* in) { return in->ok(); }

 protected:
  virtual OracleResult do_query(const BitVec& data) = 0;

  /// Batch hook behind query_batch. The default is the serial element-order
  /// loop, which keeps every oracle — including decorators that only
  /// override do_query — batch-correct by construction (the batch simply
  /// degrades to serial below that layer). Batch-aware oracles override
  /// this to ship the whole batch at once; an override MUST be
  /// byte-identical to this loop, which for fault decorators means drawing
  /// per-query RNG state in element order.
  virtual void do_query_batch(const std::vector<BitVec>& xs,
                              std::vector<OracleResult>* out) {
    out->reserve(xs.size());
    for (const BitVec& x : xs) out->push_back(do_query(x));
  }

 private:
  std::size_t queries_ = 0;
  std::size_t retries_ = 0;
  std::size_t errors_ = 0;
  std::size_t batches_ = 0;
  std::size_t round_trips_ = 0;
  std::size_t corrupted_suspected_ = 0;
};

/// Base for oracles that wrap another oracle (the fault injectors in
/// attacks/faulty_oracle.h). Forwards the interface shape; each layer
/// keeps its own counters, and the attack reads the outermost ones.
class OracleDecorator : public Oracle {
 public:
  explicit OracleDecorator(Oracle& inner) : inner_(inner) {}

  std::size_t num_inputs() const override { return inner_.num_inputs(); }
  std::size_t num_outputs() const override { return inner_.num_outputs(); }

  /// Cache accounting bubbles up through the stack so the attack can read
  /// it from the outermost oracle. (do_query_batch deliberately keeps the
  /// serial base default here: blanket-forwarding the batch to inner()
  /// would silently skip the do_query logic of decorators that are not
  /// batch-aware. Batch-aware decorators override do_query_batch
  /// themselves.)
  std::size_t cache_hits() const override { return inner_.cache_hits(); }
  std::size_t cache_misses() const override { return inner_.cache_misses(); }

  /// Inner-first so a decorator stack serializes bottom-up; overriding
  /// decorators call these and then handle their own state.
  void save_state(std::vector<std::uint8_t>* out) const override {
    inner_.save_state(out);
  }
  bool load_state(bytes::Reader* in) override {
    return inner_.load_state(in);
  }

  Oracle& inner() { return inner_; }
  const Oracle& inner() const { return inner_; }

 private:
  Oracle& inner_;
};

/// Conventional (unprotected) chip: scan access yields correct responses.
class GoldenOracle final : public Oracle {
 public:
  explicit GoldenOracle(const LockedCircuit& lc) : lc_(lc), sim_(lc.netlist) {}

  std::size_t num_inputs() const override { return lc_.num_data_inputs; }
  std::size_t num_outputs() const override {
    return lc_.netlist.num_outputs();
  }

 private:
  OracleResult do_query(const BitVec& data) override {
    return sim_.run_single(lc_.assemble_input(data, lc_.correct_key));
  }

  const LockedCircuit& lc_;
  Simulator sim_;
};

/// OraP chip behind its real scan protocol. Data packs [pi | state] and
/// the response packs [po | next_state], exactly the locked core's I/O.
class ChipScanOracle final : public Oracle {
 public:
  explicit ChipScanOracle(OrapChip& chip) : chip_(chip) {}

  std::size_t num_inputs() const override {
    return chip_.num_pis() + chip_.num_state_ffs();
  }
  std::size_t num_outputs() const override {
    return chip_.num_pos() + chip_.num_state_ffs();
  }

 private:
  OracleResult do_query(const BitVec& data) override {
    return scan_oracle_query(chip_, data);
  }

  OrapChip& chip_;
};

}  // namespace orap
