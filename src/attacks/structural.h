#pragma once
// Structural / semi-structural attacks from the paper's related-work
// battlefield (Sec. I): the signal-probability-skew (SPS) attack and the
// removal attack that defeat Anti-SAT, and the bypass attack that defeats
// SARLock-class point functions. The paper argues none of them apply to
// OraP ("neither has signals with high probability skew, nor by removing
// the LFSR ... the circuit will unlock") — these implementations make
// that argument testable.

#include <cstdint>
#include <optional>
#include <vector>

#include "attacks/oracle.h"
#include "locking/locking.h"
#include "netlist/netlist.h"
#include "util/bitvec.h"

namespace orap {

struct SpsCandidate {
  GateId gate = kNoGate;
  double prob_one = 0.5;  // estimated P(gate = 1) under random X and K
  double skew = 0.0;      // |P - 0.5|
};

/// Ranks internal gates by signal-probability skew under random inputs
/// *and* random keys (the attacker has no key). Anti-SAT's block output
/// tops the ranking with skew ~0.5; healthy locking has no such signal.
std::vector<SpsCandidate> sps_rank(const LockedCircuit& lc,
                                   std::size_t words, std::uint64_t seed,
                                   std::size_t top_k = 16);

struct RemovalResult {
  Netlist recovered;   // locked netlist with the suspect gate tied off
  GateId removed = kNoGate;
  double skew = 0.0;
};

/// SPS-guided removal attack: ties the highest-skew suspect to its
/// dominant constant value and drops the key logic it gated. Returns
/// nullopt when no candidate exceeds `min_skew` (the attack "does not
/// apply", the paper's claim for OraP + weighted locking).
std::optional<RemovalResult> removal_attack(const LockedCircuit& lc,
                                            std::size_t words,
                                            std::uint64_t seed,
                                            double min_skew = 0.45);

struct BypassResult {
  Netlist bypassed;                  // wrong-key circuit + correction unit
  BitVec wrong_key;                  // the key the attacker committed to
  std::size_t correction_points = 0; // comparator entries added
  bool complete = false;             // diff enumeration finished under cap
};

/// Bypass attack [Xu et al., CHES'17]: commit to an arbitrary wrong key,
/// SAT-enumerate the inputs where it can disagree with another key (for
/// point-function schemes this set is tiny), query the oracle there, and
/// wrap the wrong-key circuit with a comparator-driven correction unit.
/// Three outcomes:
///   - a result with complete=true: `bypassed` is a working unlocked
///     netlist with `correction_points` comparator cubes;
///   - a result with complete=false: the diff set exceeded
///     `max_corrections` (budget exhaustion — what high-corruptibility
///     schemes guarantee). `bypassed` is empty and MUST NOT be used;
///     callers report this as a failed/incomplete bypass, never success;
///   - nullopt: the attack does not apply structurally (diff region is not
///     cube-shaped, an unobservable cube, or the keys disagree
///     everywhere).
std::optional<BypassResult> bypass_attack(const LockedCircuit& lc,
                                          Oracle& oracle,
                                          std::size_t max_corrections,
                                          std::uint64_t seed);

}  // namespace orap
