#include "attacks/simple_attacks.h"

#include "netlist/simulator.h"
#include "sat/encode.h"
#include "util/rng.h"

namespace orap {

HillClimbResult hill_climb_attack(const LockedCircuit& locked, Oracle& oracle,
                                  const HillClimbOptions& opts) {
  Rng rng(opts.seed);
  Simulator sim(locked.netlist);

  // Fixed probe set. The draws are response-independent, so all probes
  // are drawn up front and flushed as one Oracle::query_batch (a single
  // round trip over a served oracle); decorators randomize in element
  // order, so the surviving probe/response set is byte-identical to the
  // old one-query-per-probe loop.
  std::vector<BitVec> draws;
  draws.reserve(opts.samples);
  for (std::size_t i = 0; i < opts.samples; ++i)
    draws.push_back(BitVec::random(locked.num_data_inputs, rng));
  std::vector<OracleResult> rs;
  oracle.query_batch(draws, &rs);
  std::vector<BitVec> probes;
  std::vector<BitVec> responses;
  for (std::size_t i = 0; i < draws.size(); ++i) {
    if (!rs[i].ok()) continue;  // failed probe: fit against the ones that landed
    probes.push_back(std::move(draws[i]));
    responses.push_back(rs[i].response());
  }

  // Fitness is the summed bit-level Hamming distance, not the count of
  // mismatching patterns: with strong locking most patterns stay wrong
  // until several bits are fixed, and the pattern count plateaus while
  // the bit distance still decreases monotonically per corrected bit.
  auto fitness = [&](const BitVec& key) {
    std::size_t distance = 0;
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const BitVec out = sim.run_single(locked.assemble_input(probes[i], key));
      distance += (out ^ responses[i]).count();
    }
    return distance;
  };

  HillClimbResult best;
  best.mismatches = static_cast<std::size_t>(-1);
  for (std::size_t restart = 0; restart < opts.max_restarts; ++restart) {
    BitVec key = BitVec::random(locked.num_key_inputs, rng);
    std::size_t cur = fitness(key);
    std::size_t plateau = 0;
    while (cur > 0 && plateau < opts.max_plateau) {
      bool improved = false;
      for (std::size_t bit = 0; bit < locked.num_key_inputs && cur > 0;
           ++bit) {
        key.flip(bit);
        const std::size_t f = fitness(key);
        if (f < cur) {
          cur = f;
          improved = true;
        } else {
          key.flip(bit);  // revert
        }
      }
      plateau = improved ? 0 : plateau + 1;
    }
    if (cur < best.mismatches) {
      best.mismatches = cur;
      best.key = key;
    }
    if (best.mismatches == 0) break;
  }
  best.oracle_queries = oracle.query_count();
  return best;
}

SensitizationResult sensitization_attack(const LockedCircuit& locked,
                                         Oracle& oracle, std::uint64_t seed,
                                         std::int64_t conflict_budget,
                                         bool incremental) {
  Rng rng(seed);
  Simulator sim(locked.netlist);
  const std::size_t nd = locked.num_data_inputs;
  const std::size_t nk = locked.num_key_inputs;

  SensitizationResult result;
  result.key_bits.assign(nk, -1);
  constexpr int kReferences = 4;  // independent other-key references

  // Incremental mode: the two-copy formula is bit- and
  // reference-independent (only the key pinning varies), so it is encoded
  // once and every round becomes an assumption set over the key vars of
  // both copies. Learnt clauses about the shared sensitization structure
  // carry across all nk * kReferences solves.
  sat::Solver inc_s;
  sat::CircuitVars ic0, ic1;
  if (incremental) {
    sat::Encoder e(inc_s);
    ic0 = e.encode(locked.netlist);
    std::vector<sat::Var> shared(nd + nk, sat::Encoder::kNoVar);
    for (std::size_t i = 0; i < nd; ++i) shared[i] = ic0.inputs[i];
    ic1 = e.encode(locked.netlist, shared);
    e.force_not_equal(ic0.outputs, ic1.outputs);
  }
  std::vector<sat::Lit> assume;

  for (std::size_t bit = 0; bit < nk; ++bit) {
    // A verdict from one reference key can be consistently wrong when the
    // sensitized path runs through another key gate (the interference
    // inverts the observation). Demand agreement across several
    // independent references; only non-interfering paths survive.
    int verdict = -1;
    bool consistent = true;
    for (int r = 0; r < kReferences && consistent; ++r) {
      const BitVec ref = BitVec::random(nk, rng);
      // SAT search: input X where flipping key bit `bit` (others at ref)
      // changes some output.
      BitVec x(nd);
      if (incremental) {
        assume.clear();
        for (std::size_t j = 0; j < nk; ++j) {
          const bool rv = ref.get(j);
          assume.push_back(sat::Lit(ic0.inputs[nd + j],
                                    !(j == bit ? false : rv)));
          assume.push_back(sat::Lit(ic1.inputs[nd + j],
                                    !(j == bit ? true : rv)));
        }
        if (inc_s.solve(assume, conflict_budget) !=
            sat::Solver::Result::kSat) {
          consistent = false;  // not sensitizable under this reference
          break;
        }
        for (std::size_t i = 0; i < nd; ++i)
          x.set(i, inc_s.model_value(ic0.inputs[i]));
      } else {
        sat::Solver s;
        sat::Encoder e(s);
        const auto c0 = e.encode(locked.netlist);
        std::vector<sat::Var> shared(nd + nk, sat::Encoder::kNoVar);
        for (std::size_t i = 0; i < nd; ++i) shared[i] = c0.inputs[i];
        const auto c1 = e.encode(locked.netlist, shared);
        for (std::size_t j = 0; j < nk; ++j) {
          const bool rv = ref.get(j);
          const bool v0 = j == bit ? false : rv;
          const bool v1 = j == bit ? true : rv;
          s.add_clause({sat::Lit(c0.inputs[nd + j], !v0)});
          s.add_clause({sat::Lit(c1.inputs[nd + j], !v1)});
        }
        e.force_not_equal(c0.outputs, c1.outputs);
        const bool is_sat =
            s.solve({}, conflict_budget) == sat::Solver::Result::kSat;
        result.solver_rounds += s.stats().incremental_rounds;
        result.clauses_carried += s.stats().clauses_carried;
        if (!is_sat) {
          consistent = false;  // not sensitizable under this reference
          break;
        }
        for (std::size_t i = 0; i < nd; ++i)
          x.set(i, s.model_value(c0.inputs[i]));
      }
      const OracleResult qr = oracle.query(x);
      if (!qr.ok()) {
        consistent = false;  // no observation: the bit stays unresolved
        break;
      }
      const BitVec& yo = qr.response();
      BitVec key0 = ref;
      key0.set(bit, false);
      BitVec key1 = ref;
      key1.set(bit, true);
      const BitVec y0 = sim.run_single(locked.assemble_input(x, key0));
      const BitVec y1 = sim.run_single(locked.assemble_input(x, key1));
      // Compare only on the sensitized outputs and require unanimity.
      int votes0 = 0, votes1 = 0;
      for (std::size_t o = 0; o < y0.size(); ++o) {
        if (y0.get(o) == y1.get(o)) continue;
        if (yo.get(o) == y0.get(o))
          ++votes0;
        else
          ++votes1;
      }
      if ((votes0 > 0) == (votes1 > 0)) {
        consistent = false;  // ambiguous under this reference
        break;
      }
      const int round_verdict = votes1 > 0 ? 1 : 0;
      if (verdict < 0)
        verdict = round_verdict;
      else if (verdict != round_verdict)
        consistent = false;
    }
    if (!consistent || verdict < 0) continue;
    result.key_bits[bit] = verdict;
    ++result.resolved;
  }
  if (incremental) {
    result.solver_rounds = inc_s.stats().incremental_rounds;
    result.clauses_carried = inc_s.stats().clauses_carried;
  }
  result.oracle_queries = oracle.query_count();
  return result;
}

}  // namespace orap
