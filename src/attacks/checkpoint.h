#pragma once
// Attack checkpoint/resume via oracle-transcript replay.
//
// Every oracle-guided attack in this repository is deterministic given the
// sequence of oracle responses (the determinism contract regression-tested
// across the threads x portfolio x cube grid). That makes the oracle I/O
// transcript a complete checkpoint of attack state: re-running the attack
// from scratch while serving the recorded responses for the prefix of
// queries reproduces the exact trajectory — the same DIPs, the same
// quarantine evictions, the same solver constraints — without touching the
// device, and the live continuation afterwards picks up byte-identically
// because the oracle stack's own state (fault-injector RNG stream
// positions, stale caches, budgets) is restored from the same file via the
// Oracle::save_state/load_state chain.
//
// CheckpointedOracle is a decorator implementing exactly that: it records
// every do_query (input, status, response — failures included, since the
// interrupted run consumed them and the replayed run must see them too)
// and serializes/deserializes the transcript plus the wrapped stack's
// state. The attack itself needs no changes; the job server
// (src/serve/job_server.h) wraps each job's oracle in one and snapshots it
// on an interval.
//
// File format (version 1, little-endian; helpers in util/bytes.h):
//
//   "ORAPCKPT"  8-byte magic
//   u32         version
//   u64         config_hash   (caller-defined; load rejects a mismatch so a
//                              checkpoint can never resume a different job)
//   u64 x 2     num_inputs, num_outputs of the wrapped oracle
//   u64 x 4     progress counters: dips, queries, retries, errors
//   blob        oracle-stack state (u32 length + Oracle::save_state bytes)
//   u32         transcript entry count
//   entries     u32 nbits + words of the input; u8 status (0 = ok,
//               else OracleErrorKind + 1); response bitvec when ok
//   u32         CRC-32 of everything above
//
// Writes are atomic (tmp file + rename), so a crash mid-write leaves the
// previous checkpoint intact; truncation and bit corruption are caught by
// the CRC plus the bounds-latched Reader, and load_file never half-applies
// a bad file.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "attacks/oracle.h"
#include "util/bitvec.h"

namespace orap {

/// Thrown out of a CheckpointedOracle live query when its stop flag goes
/// true (graceful drain): the checkpoint is flushed first, so the unwound
/// attack is resumable from exactly the query it stopped at. JobServer
/// catches this and reports the job as stopped, not failed.
class AttackStopped : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CheckpointedOracle final : public OracleDecorator {
 public:
  /// `config_hash` fingerprints the job configuration (circuit, attack
  /// options, decorator stack); serialize() embeds it and load rejects a
  /// file carrying a different one.
  explicit CheckpointedOracle(Oracle& inner, std::uint64_t config_hash = 0);

  enum class LoadStatus {
    kOk,        // transcript + oracle state restored; replay armed
    kMissing,   // no file at the path (a fresh run, not an error)
    kCorrupt,   // bad magic/version/CRC or truncated/oversized fields
    kMismatch,  // valid file for a different job (config hash or I/O shape)
  };

  /// Snapshot of the transcript and the wrapped stack's resume state.
  std::vector<std::uint8_t> serialize() const;
  /// Restores a serialize() blob. On success the next transcript_size()
  /// queries are served from the recording without touching the inner
  /// oracle. Never half-applies: on any failure the decorator is unchanged.
  LoadStatus deserialize(const std::vector<std::uint8_t>& blob);

  /// Atomic file write (tmp + rename). Returns false on any I/O failure,
  /// leaving a previous checkpoint at `path` intact.
  bool save_file(const std::string& path) const;
  LoadStatus load_file(const std::string& path);

  std::size_t transcript_size() const { return transcript_.size(); }
  /// Recorded entries not yet consumed by replay (0 once live).
  std::size_t replay_remaining() const {
    return transcript_.size() - replay_pos_;
  }
  /// True if a replayed query's input ever diverged from the recording
  /// (wrong job config slipped past the hash). Replay stops and the
  /// oracle goes live; the resumed result is then NOT byte-identical.
  bool diverged() const { return diverged_; }

  /// Attack-side progress (DIP count) stored in the file for job-server
  /// reporting; replay does not depend on it.
  void set_progress_dips(std::uint64_t dips) { progress_dips_ = dips; }
  std::uint64_t progress_dips() const { return progress_dips_; }

  /// Autosave: every `every_n` LIVE queries (replayed ones are free and
  /// already on disk), save_file(path). A kill at any point then loses at
  /// most every_n - 1 queries of progress.
  void enable_autosave(std::string path, std::size_t every_n);
  std::uint64_t autosaves() const { return autosaves_; }

  /// Graceful-drain hook: when *stop is true at the next LIVE query, the
  /// checkpoint is flushed to the autosave path (when one is set) and
  /// AttackStopped is thrown, unwinding the attack at a resumable point.
  /// Replayed queries never check — replay touches no device and racing a
  /// drain against free work would only lose progress. The flag must
  /// outlive the oracle; nullptr (the default) disables the check.
  void set_stop_flag(const std::atomic<bool>* stop) { stop_ = stop; }

 protected:
  OracleResult do_query(const BitVec& data) override;
  /// Batch-aware: the replayable prefix of the batch is served from the
  /// recording element by element (exactly as serial replay would), and
  /// the live remainder ships inward as one batch, each response recorded
  /// and autosave-checked per element — so transcripts and resume points
  /// are identical whether the attack batched or not. If the inner oracle
  /// throws mid-batch, the answered prefix it produced is recorded before
  /// the exception propagates: a kill mid-batch loses only the genuinely
  /// unanswered tail, and resume replays everything that was answered.
  void do_query_batch(const std::vector<BitVec>& xs,
                      std::vector<OracleResult>* out) override;

 private:
  struct Entry {
    BitVec x;
    std::uint8_t status = 0;  // 0 = ok, else OracleErrorKind + 1
    BitVec y;                 // valid when status == 0
  };

  /// Transcript append + replay_pos_ pinning + autosave check for one
  /// live response (shared by the serial and batch paths).
  void record_live(const BitVec& x, const OracleResult& r);

  /// Flush-and-throw when the stop flag is raised (live paths only).
  void check_stop();

  std::uint64_t config_hash_;
  std::vector<Entry> transcript_;
  std::size_t replay_pos_ = 0;
  bool diverged_ = false;
  std::uint64_t progress_dips_ = 0;
  std::string autosave_path_;
  std::size_t autosave_every_ = 0;
  std::size_t live_since_save_ = 0;
  std::uint64_t autosaves_ = 0;
  const std::atomic<bool>* stop_ = nullptr;
};

}  // namespace orap
