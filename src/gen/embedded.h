#pragma once
// Small, exactly-known circuits embedded in source form: the ISCAS c17
// benchmark (verbatim), a ripple-carry adder, and a tiny ALU. These have
// hand-checkable truth tables and anchor the unit tests (parser,
// simulator, SAT encoder, ATPG, attacks) on real netlists.

#include <cstddef>

#include "netlist/netlist.h"

namespace orap {

/// The ISCAS'85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND gates.
Netlist make_c17();

/// n-bit ripple-carry adder: inputs a[0..n-1], b[0..n-1], cin; outputs
/// s[0..n-1], cout.
Netlist make_ripple_adder(std::size_t bits);

/// 4-bit ALU with 2-bit opcode: op 0 = ADD, 1 = AND, 2 = OR, 3 = XOR.
/// Inputs: op[1:0], a[3:0], b[3:0]; outputs: y[3:0], carry.
Netlist make_alu4();

/// k-input parity tree (XOR reduction) — maximally sensitizing circuit,
/// useful as a property-test workload.
Netlist make_parity(std::size_t bits);

/// 2^sel-to-1 multiplexer tree built from MUX primitives.
Netlist make_mux_tree(std::size_t sel_bits);

}  // namespace orap
