#pragma once
// Seeded synthetic combinational circuit generator.
//
// The ISCAS'89 / ITC'99 netlists the paper evaluates are not
// redistributable here, so we regenerate circuits with the *published*
// interface statistics of each benchmark's combinational core (inputs
// incl. pseudo-PIs, outputs incl. pseudo-POs, gate count without
// inverters, depth band). Generation is level-structured: every gate takes
// at least one fanin from the previous level (exact depth control), the
// rest from earlier levels with a locality bias, and fanout-0 gates are
// preferentially consumed so almost all logic is observable — mirroring
// the high testability of the real benchmarks (Table II).

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "util/rng.h"

namespace orap {

struct GenSpec {
  std::string name = "synth";
  std::size_t num_inputs = 64;
  std::size_t num_outputs = 32;
  std::size_t num_gates = 1000;  // excluding inverters (paper's metric)
  std::uint32_t depth = 24;      // target logic depth
  double xor_fraction = 0.12;    // fraction of XOR/XNOR gates
  double inverter_rate = 0.25;   // probability a fanin is driven inverted
  std::uint64_t seed = 1;
};

/// Generates a circuit matching `spec`. The result has exactly
/// spec.num_inputs inputs, spec.num_outputs outputs, and a gate count
/// (without inverters) within a few gates of spec.num_gates.
Netlist generate_circuit(const GenSpec& spec);

/// Published profile of a paper benchmark's combinational core.
struct BenchmarkProfile {
  std::string name;
  std::size_t inputs;         // PIs + DFFs (pseudo-PIs)
  std::size_t outputs;        // POs + DFFs (pseudo-POs) — Table I col. 3
  std::size_t gates_no_inv;   // Table I col. 2
  std::uint32_t depth;
  std::size_t lfsr_size;      // Table I col. 4 (key size)
  std::size_t ctrl_gate_inputs;  // Table I col. 5 (weighted-locking k)
};

/// The eight circuits of Table I / Table II, in paper order.
const std::vector<BenchmarkProfile>& paper_benchmarks();

/// Profile by name ("s38417", ..., "b22"). Throws if unknown.
const BenchmarkProfile& benchmark_profile(const std::string& name);

/// Instantiates the synthetic stand-in for a paper benchmark. `scale` in
/// (0,1] shrinks gate/IO counts proportionally (reduced-cost bench mode);
/// LFSR size and control-gate size are not scaled.
Netlist make_benchmark(const BenchmarkProfile& profile, double scale = 1.0,
                       std::uint64_t seed = 0);

}  // namespace orap
