#include "gen/embedded.h"

#include "netlist/bench_io.h"

namespace orap {

Netlist make_c17() {
  static const char* kC17 = R"(
# c17 — ISCAS'85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
  return read_bench_string(kC17, "c17");
}

Netlist make_ripple_adder(std::size_t bits) {
  ORAP_CHECK(bits >= 1);
  Netlist n;
  n.set_name("rca" + std::to_string(bits));
  std::vector<GateId> a(bits), b(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = n.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) b[i] = n.add_input("b" + std::to_string(i));
  GateId carry = n.add_input("cin");
  for (std::size_t i = 0; i < bits; ++i) {
    const GateId axb = n.add_xor2(a[i], b[i]);
    const GateId sum = n.add_xor2(axb, carry);
    const GateId and1 = n.add_and2(a[i], b[i]);
    const GateId and2 = n.add_and2(axb, carry);
    carry = n.add_or2(and1, and2);
    n.rename(sum, "s" + std::to_string(i));
    n.mark_output(sum, "s" + std::to_string(i));
  }
  n.rename(carry, "cout");
  n.mark_output(carry, "cout");
  n.validate();
  return n;
}

Netlist make_alu4() {
  Netlist n;
  n.set_name("alu4");
  const GateId op0 = n.add_input("op0");
  const GateId op1 = n.add_input("op1");
  std::vector<GateId> a(4), b(4);
  for (std::size_t i = 0; i < 4; ++i) a[i] = n.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < 4; ++i) b[i] = n.add_input("b" + std::to_string(i));

  // ADD datapath.
  std::vector<GateId> add(4);
  GateId carry = n.add_gate(GateType::kXor, {op0, op0});  // const 0 via x^x
  for (std::size_t i = 0; i < 4; ++i) {
    const GateId axb = n.add_xor2(a[i], b[i]);
    add[i] = n.add_xor2(axb, carry);
    const GateId g1 = n.add_and2(a[i], b[i]);
    const GateId g2 = n.add_and2(axb, carry);
    carry = n.add_or2(g1, g2);
  }

  for (std::size_t i = 0; i < 4; ++i) {
    const GateId band = n.add_and2(a[i], b[i]);
    const GateId bor = n.add_or2(a[i], b[i]);
    const GateId bxor = n.add_xor2(a[i], b[i]);
    // y = op1 ? (op0 ? bxor : bor) : (op0 ? band : add)
    const GateId lo = n.add_gate(GateType::kMux, {op0, add[i], band});
    const GateId hi = n.add_gate(GateType::kMux, {op0, bor, bxor});
    const GateId y = n.add_gate(GateType::kMux, {op1, lo, hi},
                                "y" + std::to_string(i));
    n.mark_output(y, "y" + std::to_string(i));
  }
  // Carry out is only meaningful for ADD; mask it with !op0 & !op1.
  const GateId nop0 = n.add_not(op0);
  const GateId nop1 = n.add_not(op1);
  const GateId is_add = n.add_and2(nop0, nop1);
  const GateId cout = n.add_and2(carry, is_add);
  n.rename(cout, "carry");
  n.mark_output(cout, "carry");
  n.validate();
  return n;
}

Netlist make_parity(std::size_t bits) {
  ORAP_CHECK(bits >= 2);
  Netlist n;
  n.set_name("parity" + std::to_string(bits));
  std::vector<GateId> layer;
  for (std::size_t i = 0; i < bits; ++i)
    layer.push_back(n.add_input("x" + std::to_string(i)));
  while (layer.size() > 1) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(n.add_xor2(layer[i], layer[i + 1]));
    if (layer.size() % 2 != 0) next.push_back(layer.back());
    layer = std::move(next);
  }
  n.rename(layer[0], "p");
  n.mark_output(layer[0], "p");
  n.validate();
  return n;
}

Netlist make_mux_tree(std::size_t sel_bits) {
  ORAP_CHECK(sel_bits >= 1 && sel_bits <= 8);
  Netlist n;
  n.set_name("muxtree" + std::to_string(sel_bits));
  std::vector<GateId> sel(sel_bits);
  for (std::size_t i = 0; i < sel_bits; ++i)
    sel[i] = n.add_input("s" + std::to_string(i));
  const std::size_t leaves = std::size_t{1} << sel_bits;
  std::vector<GateId> layer(leaves);
  for (std::size_t i = 0; i < leaves; ++i)
    layer[i] = n.add_input("d" + std::to_string(i));
  for (std::size_t level = 0; level < sel_bits; ++level) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(
          n.add_gate(GateType::kMux, {sel[level], layer[i], layer[i + 1]}));
    layer = std::move(next);
  }
  n.rename(layer[0], "y");
  n.mark_output(layer[0], "y");
  n.validate();
  return n;
}

}  // namespace orap
