#include "gen/circuit_gen.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "netlist/analysis.h"

namespace orap {

namespace {

/// Picks a gate type keeping the output's signal probability near 0.5.
/// Unmanaged random AND/OR logic saturates signal probabilities toward
/// 0/1 with depth, destroying random-pattern observability; real ISCAS/
/// ITC circuits are 95-99% random-testable (Table II), so the generator
/// balances probabilities the way human-designed logic does.
GateType pick_gate_type(Rng& rng, double xor_fraction,
                        std::span<const double> fanin_probs, double& out_prob) {
  if (rng.chance(xor_fraction)) {
    // Parity of independent signals: p = 1/2 (1 - prod(1 - 2 p_i)).
    double prod = 1.0;
    for (const double p : fanin_probs) prod *= 1.0 - 2.0 * p;
    const bool xnor = rng.bit();
    out_prob = 0.5 * (1.0 - (xnor ? -prod : prod));
    return xnor ? GateType::kXnor : GateType::kXor;
  }
  double p_and = 1.0, p_nor = 1.0;
  for (const double p : fanin_probs) {
    p_and *= p;
    p_nor *= 1.0 - p;
  }
  struct Option {
    GateType t;
    double p;
  };
  const Option options[4] = {{GateType::kAnd, p_and},
                             {GateType::kNand, 1.0 - p_and},
                             {GateType::kOr, 1.0 - p_nor},
                             {GateType::kNor, p_nor}};
  // Among the two complementary pairs, keep the variant closer to 0.5.
  // Between the AND-ish and OR-ish survivors prefer the better-balanced
  // one (random choice only on near-ties): probability drift compounds
  // through reconvergent fanout and ends in *exactly* constant gates,
  // which show up as large redundant-fault populations.
  const Option& and_side =
      std::abs(options[0].p - 0.5) < std::abs(options[1].p - 0.5) ? options[0]
                                                                  : options[1];
  const Option& or_side =
      std::abs(options[2].p - 0.5) < std::abs(options[3].p - 0.5) ? options[2]
                                                                  : options[3];
  const double da = std::abs(and_side.p - 0.5);
  const double dor = std::abs(or_side.p - 0.5);
  const Option& chosen = std::abs(da - dor) < 0.05
                             ? (rng.bit() ? and_side : or_side)
                             : (da < dor ? and_side : or_side);
  out_prob = chosen.p;
  return chosen.t;
}

std::size_t pick_fanin_count(Rng& rng) {
  // 2-input dominant, occasional 3- and 4-input gates (ISCAS-like mix).
  static constexpr std::size_t kChoices[] = {2, 2, 2, 2, 3, 3, 4};
  return kChoices[rng.below(std::size(kChoices))];
}

}  // namespace

Netlist generate_circuit(const GenSpec& spec) {
  ORAP_CHECK(spec.num_inputs >= 2);
  ORAP_CHECK(spec.num_outputs >= 1);
  ORAP_CHECK(spec.depth >= 2);
  ORAP_CHECK_MSG(spec.num_gates > spec.num_outputs,
                 "gate budget must exceed output count");

  Rng rng(spec.seed);
  Netlist n;
  n.set_name(spec.name);

  for (std::size_t i = 0; i < spec.num_inputs; ++i)
    n.add_input("pi" + std::to_string(i));

  const std::size_t n_internal = spec.num_gates - spec.num_outputs;
  const std::uint32_t levels = spec.depth - 1;  // internal levels 1..levels

  // Trapezoid level-size profile: ramp up over the first quarter, flat
  // middle, taper at the end. Gives wide mid-cone structure like the real
  // benchmarks.
  std::vector<std::size_t> level_size(levels + 1, 0);
  {
    std::vector<double> weight(levels + 1, 0.0);
    double total = 0;
    for (std::uint32_t l = 1; l <= levels; ++l) {
      const double x = static_cast<double>(l) / levels;
      weight[l] = x < 0.25 ? 0.4 + 2.4 * x : (x > 0.8 ? 1.0 - (x - 0.8) : 1.0);
      total += weight[l];
    }
    std::size_t assigned = 0;
    for (std::uint32_t l = 1; l <= levels; ++l) {
      level_size[l] = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::floor(
                 static_cast<double>(n_internal) * weight[l] / total)));
      assigned += level_size[l];
    }
    // Distribute the rounding remainder over the middle levels.
    std::uint32_t l = std::max<std::uint32_t>(1, levels / 2);
    while (assigned < n_internal) {
      ++level_size[l];
      ++assigned;
      l = l == levels ? 1 : l + 1;
    }
    while (assigned > n_internal) {
      if (level_size[l] > 1) {
        --level_size[l];
        --assigned;
      }
      l = l == levels ? 1 : l + 1;
    }
  }

  // Per-level gate id lists; level 0 = the inputs.
  std::vector<std::vector<GateId>> by_level(levels + 1);
  by_level[0] = n.inputs();

  std::vector<std::uint32_t> fanout(
      spec.num_inputs + spec.num_gates * 3 + 16, 0);
  std::vector<double> prob(fanout.size(), 0.5);  // estimated P(signal = 1)
  std::vector<GateId> pool;   // fanout-0 candidates from *previous* levels
  std::vector<GateId> fresh;  // gates created in the current level
  std::vector<GateId> unused_inputs(n.inputs().rbegin(), n.inputs().rend());

  // Gates from strictly earlier levels (candidates for "other" fanins).
  std::vector<GateId> all_earlier(n.inputs());

  // Memoized inverters: one NOT per driver.
  std::unordered_map<GateId, GateId> inv_of;
  auto maybe_invert = [&](GateId g) -> GateId {
    if (!rng.chance(spec.inverter_rate)) return g;
    auto it = inv_of.find(g);
    if (it != inv_of.end()) return it->second;
    const GateId inv = n.add_not(g);
    if (inv >= fanout.size()) {
      fanout.resize(inv * 2 + 1, 0);
      prob.resize(fanout.size(), 0.5);
    }
    prob[inv] = 1.0 - prob[g];
    ++fanout[g];
    inv_of.emplace(g, inv);
    return inv;
  };

  auto pop_pool = [&]() -> GateId {
    while (!pool.empty()) {
      const std::size_t i = rng.below(pool.size());
      const GateId g = pool[i];
      pool[i] = pool.back();
      pool.pop_back();
      if (fanout[g] == 0) return g;
    }
    return kNoGate;
  };

  // Each gate's fanins tracked by their *underlying* driver (pre-NOT):
  // wiring both x and NOT(x) into one gate creates cancelling/constant
  // pairs (fatal inside the XOR output combiners), so duplicates are
  // rejected on the raw driver id.
  std::vector<GateId> raw_drivers;
  auto already_used = [&](GateId driver) {
    return std::find(raw_drivers.begin(), raw_drivers.end(), driver) !=
           raw_drivers.end();
  };
  auto connect = [&](GateId driver, std::vector<GateId>& fi) {
    const GateId wired = maybe_invert(driver);
    ++fanout[wired];
    raw_drivers.push_back(driver);
    fi.push_back(wired);
  };

  auto draw_other_fanin = [&](std::uint32_t level) -> GateId {
    // Priority 1: unconsumed primary inputs (guarantees full input usage).
    if (!unused_inputs.empty() && rng.chance(0.5)) {
      while (!unused_inputs.empty()) {
        const GateId g = unused_inputs.back();
        unused_inputs.pop_back();
        if (fanout[g] == 0) return g;
      }
    }
    // Priority 2: fanout-0 pool (keeps logic observable).
    if (rng.chance(0.75)) {
      const GateId g = pop_pool();
      if (g != kNoGate) return g;
    }
    // Fallback: any earlier gate, biased toward recent levels.
    const std::size_t total = all_earlier.size();
    std::size_t idx;
    if (rng.chance(0.7) && level > 1) {
      // Recent window: last two levels' worth of gates.
      const std::size_t window = std::min<std::size_t>(
          total, std::max<std::size_t>(
                     16, by_level[level - 1].size() * 3));
      idx = total - 1 - rng.below(window);
    } else {
      idx = rng.below(total);
    }
    return all_earlier[idx];
  };

  for (std::uint32_t level = 1; level <= levels; ++level) {
    // Gates created at level-1 become fanin candidates only now, keeping
    // the constructed level exact.
    all_earlier.insert(all_earlier.end(), fresh.begin(), fresh.end());
    pool.insert(pool.end(), fresh.begin(), fresh.end());
    fresh.clear();
    for (std::size_t gi = 0; gi < level_size[level]; ++gi) {
      const std::size_t k = pick_fanin_count(rng);
      std::vector<GateId> fi;
      fi.reserve(k);
      raw_drivers.clear();
      // One fanin forced from the previous level (exact depth control).
      const auto& prev = by_level[level - 1];
      connect(prev[rng.below(prev.size())], fi);
      while (fi.size() < k) {
        const GateId cand = draw_other_fanin(level);
        if (already_used(cand)) {
          // Avoid duplicate drivers on small candidate sets.
          if (fi.size() >= 2) break;
          continue;
        }
        connect(cand, fi);
      }
      std::vector<double> fprobs;
      fprobs.reserve(fi.size());
      for (const GateId f : fi) fprobs.push_back(prob[f]);
      double gp = 0.5;
      const GateType gt = pick_gate_type(rng, spec.xor_fraction, fprobs, gp);
      const GateId g = n.add_gate(gt, fi);
      if (g >= fanout.size()) {
        fanout.resize(g * 2 + 1, 0);
        prob.resize(fanout.size(), 0.5);
      }
      prob[g] = gp;
      by_level[level].push_back(g);
      fresh.push_back(g);
    }
  }
  pool.insert(pool.end(), fresh.begin(), fresh.end());
  fresh.clear();

  // Output gates: consume the remaining fanout-0 pool and any stray
  // unused inputs, one forced fanin from the deepest level each.
  std::vector<GateId> leftovers;
  for (GateId g : unused_inputs)
    if (fanout[g] == 0) leftovers.push_back(g);
  for (GateId g;(g = pop_pool()) != kNoGate;) leftovers.push_back(g);
  std::shuffle(leftovers.begin(), leftovers.end(), rng);

  const auto& deepest = by_level[levels];
  for (std::size_t o = 0; o < spec.num_outputs; ++o) {
    const std::size_t remaining_outputs = spec.num_outputs - o;
    // Ceil split of the leftovers, uncapped: every fanout-0 gate must be
    // absorbed or the tail of the circuit is untestable (the XOR output
    // combiners keep arbitrary-arity absorption observable).
    const std::size_t take = (leftovers.size() + remaining_outputs - 1) /
                             remaining_outputs;
    std::vector<GateId> fi;
    raw_drivers.clear();
    connect(deepest[rng.below(deepest.size())], fi);
    for (std::size_t t = 0; t < take && !leftovers.empty(); ++t) {
      const GateId cand = leftovers.back();
      leftovers.pop_back();
      if (already_used(cand)) continue;
      connect(cand, fi);
    }
    while (fi.size() < 2) {
      const GateId cand = draw_other_fanin(levels);
      if (already_used(cand)) continue;
      connect(cand, fi);
    }
    // Output combiners are parity gates: an AND/NOR of many leftovers would
    // be near-constant, destroying observability of the folded logic.
    const GateId g =
        n.add_gate(rng.bit() ? GateType::kXor : GateType::kXnor, fi,
                   "po_g" + std::to_string(o));
    if (g >= fanout.size()) {
      fanout.resize(g * 2 + 1, 0);
      prob.resize(fanout.size(), 0.5);
    }
    n.mark_output(g, "po" + std::to_string(o));
  }

  n.validate();
  return n;
}

const std::vector<BenchmarkProfile>& paper_benchmarks() {
  // inputs/outputs are the combinational-core interface (PIs+FFs / POs+FFs);
  // gates and outputs match Table I columns 2-3, lfsr_size column 4,
  // ctrl_gate_inputs column 5.
  static const std::vector<BenchmarkProfile> kProfiles = {
      {"s38417", 1664, 1742, 8709, 33, 256, 3},
      {"s38584", 1464, 1730, 11448, 40, 186, 3},
      {"b17", 1452, 1512, 29267, 45, 256, 3},
      {"b18", 3356, 3343, 97569, 60, 97, 5},
      {"b19", 6666, 6672, 196855, 60, 208, 5},
      {"b20", 522, 512, 17648, 50, 236, 3},
      {"b21", 522, 512, 17972, 50, 229, 3},
      {"b22", 767, 757, 26195, 50, 243, 3},
  };
  return kProfiles;
}

const BenchmarkProfile& benchmark_profile(const std::string& name) {
  for (const auto& p : paper_benchmarks())
    if (p.name == name) return p;
  ORAP_CHECK_MSG(false, "unknown benchmark '" << name << "'");
  return paper_benchmarks().front();
}

Netlist make_benchmark(const BenchmarkProfile& profile, double scale,
                       std::uint64_t seed) {
  ORAP_CHECK(scale > 0.0 && scale <= 1.0);
  GenSpec spec;
  spec.name = profile.name;
  auto scaled = [&](std::size_t v, std::size_t min) {
    return std::max<std::size_t>(
        min, static_cast<std::size_t>(std::llround(v * scale)));
  };
  spec.num_inputs = scaled(profile.inputs, 16);
  spec.num_outputs = scaled(profile.outputs, 8);
  spec.num_gates = scaled(profile.gates_no_inv, 64);
  spec.depth =
      std::max<std::uint32_t>(8, static_cast<std::uint32_t>(std::llround(
                                     profile.depth * std::sqrt(scale))));
  // Stable per-benchmark seed so every run regenerates identical circuits.
  std::uint64_t s = seed;
  for (char c : profile.name) s = s * 131 + static_cast<unsigned char>(c);
  spec.seed = s;
  return generate_circuit(spec);
}

}  // namespace orap
