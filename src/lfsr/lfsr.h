#pragma once
// The OraP key register: an LFSR with multi-point reseeding (Fig. 1).
//
// Unlocking is a multi-cycle process: the key sequence stored in
// tamper-proof memory is injected through XOR reseeding points over many
// cycles (with optional free-run gaps); the final LFSR state is the key of
// the locked combinational circuit. Because the LFSR is linear over
// GF(2), the whole process is a matrix: key = M * seq. The symbolic
// engine exposes M, which serves two purposes:
//   * the designer synthesizes a key sequence for a chosen key by solving
//     M x = key (gf2_solve), and
//   * attack scenario (d) of Sec. III — replacing the LFSR with XOR trees
//     — has hardware cost equal to the density of M's rows, which is the
//     quantity the "LFSR mixes seeds" design decision maximizes (E5).

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bitvec.h"
#include "util/gf2.h"
#include "util/rng.h"

namespace orap {

struct LfsrConfig {
  std::size_t size = 0;                     // number of cells
  std::vector<std::size_t> feedback_taps;   // cell indices XORed into cell 0
  std::vector<std::size_t> reseed_points;   // cells with injection XORs

  /// The paper's configuration: a feedback tap after every eight cells
  /// ("high controllability with relatively low hardware cost") and
  /// reseeding points at every cell (the most general case of Fig. 1).
  static LfsrConfig standard(std::size_t n);

  /// Plain shift register (no feedback) — the strawman scenario (d)
  /// compares against; reseeding still at every cell.
  static LfsrConfig shift_register(std::size_t n);

  std::size_t num_reseed_points() const { return reseed_points.size(); }

  /// Gate cost of the LFSR support hardware as counted in Table I:
  /// one reseeding XOR per reseed point, one XOR per feedback tap, and
  /// one pulse-generator NAND per cell (inverter chains are excluded,
  /// matching the inverter-less gate metric).
  std::size_t support_gate_count() const;
};

/// Concrete bit-level LFSR.
class Lfsr {
 public:
  explicit Lfsr(LfsrConfig cfg);

  const LfsrConfig& config() const { return cfg_; }
  const BitVec& state() const { return state_; }
  void set_state(BitVec s);

  /// Pulse-generator clear: all cells reset to 0 (Fig. 2 behaviour on a
  /// 0->1 scan-enable transition).
  void reset();

  /// One clock: shift, feedback into cell 0, then XOR `injection` (one
  /// bit per reseed point) into the reseed cells.
  void step(const BitVec& injection);

  /// `cycles` clocks with all-zero injection.
  void free_run(std::size_t cycles);

 private:
  LfsrConfig cfg_;
  BitVec state_;
};

/// A reseeding schedule: seeds[i] is injected on one cycle (width =
/// num_reseed_points), followed by gaps[i] free-run cycles.
struct KeySequence {
  std::vector<BitVec> seeds;
  std::vector<std::size_t> gaps;  // same length as seeds

  std::size_t total_cycles() const {
    std::size_t t = seeds.size();
    for (const std::size_t g : gaps) t += g;
    return t;
  }
  /// All seed bits flattened (seed 0 first) — the "x" of key = M x.
  BitVec flatten() const;
  static KeySequence unflatten(const BitVec& bits, std::size_t width,
                               const std::vector<std::size_t>& gaps);
};

/// Runs the unlock process from the reset state; returns the final state
/// (the circuit key).
BitVec run_key_sequence(Lfsr& lfsr, const KeySequence& seq);

/// Transfer matrix M (size x seeds*width) with key = M * flatten(seq),
/// starting from the all-zero state, for the given gap schedule.
Gf2Matrix key_transfer_matrix(const LfsrConfig& cfg, std::size_t num_seeds,
                              const std::vector<std::size_t>& gaps);

/// Designer-side synthesis: find a key sequence whose final LFSR state is
/// `target_key`, randomizing free variables with `rng`. Returns nullopt if
/// the schedule cannot reach the key (rank deficiency — use more seeds).
std::optional<KeySequence> synthesize_key_sequence(
    const LfsrConfig& cfg, std::size_t num_seeds,
    const std::vector<std::size_t>& gaps, const BitVec& target_key, Rng& rng);

/// XOR-tree payload cost of attack scenario (d): implementing each key
/// bit as an XOR tree over the stored seed bits takes (density-1) XOR2
/// gates per row of M (rows of density 0/1 are free wires).
std::size_t xor_tree_cost(const Gf2Matrix& transfer);

}  // namespace orap
