#include "lfsr/lfsr.h"

#include "util/check.h"

namespace orap {

LfsrConfig LfsrConfig::standard(std::size_t n) {
  ORAP_CHECK(n >= 2);
  LfsrConfig cfg;
  cfg.size = n;
  // A tap after every eight cells, and always the last cell (so the
  // register is a proper feedback shift register of full length).
  for (std::size_t i = 7; i < n; i += 8) cfg.feedback_taps.push_back(i);
  if (cfg.feedback_taps.empty() || cfg.feedback_taps.back() != n - 1)
    cfg.feedback_taps.push_back(n - 1);
  for (std::size_t i = 0; i < n; ++i) cfg.reseed_points.push_back(i);
  return cfg;
}

LfsrConfig LfsrConfig::shift_register(std::size_t n) {
  ORAP_CHECK(n >= 2);
  LfsrConfig cfg;
  cfg.size = n;
  for (std::size_t i = 0; i < n; ++i) cfg.reseed_points.push_back(i);
  return cfg;
}

std::size_t LfsrConfig::support_gate_count() const {
  return reseed_points.size() + feedback_taps.size() + size;
}

Lfsr::Lfsr(LfsrConfig cfg) : cfg_(std::move(cfg)), state_(cfg_.size) {
  ORAP_CHECK(cfg_.size >= 2);
  for (const std::size_t t : cfg_.feedback_taps) ORAP_CHECK(t < cfg_.size);
  for (const std::size_t p : cfg_.reseed_points) ORAP_CHECK(p < cfg_.size);
}

void Lfsr::set_state(BitVec s) {
  ORAP_CHECK(s.size() == cfg_.size);
  state_ = std::move(s);
}

void Lfsr::reset() { state_.clear(); }

void Lfsr::step(const BitVec& injection) {
  ORAP_CHECK(injection.size() == cfg_.num_reseed_points());
  bool fb = false;
  for (const std::size_t t : cfg_.feedback_taps) fb ^= state_.get(t);
  BitVec next(cfg_.size);
  next.set(0, fb);
  for (std::size_t i = 1; i < cfg_.size; ++i) next.set(i, state_.get(i - 1));
  for (std::size_t j = 0; j < cfg_.reseed_points.size(); ++j)
    if (injection.get(j)) next.flip(cfg_.reseed_points[j]);
  state_ = std::move(next);
}

void Lfsr::free_run(std::size_t cycles) {
  const BitVec zero(cfg_.num_reseed_points());
  for (std::size_t c = 0; c < cycles; ++c) step(zero);
}

BitVec KeySequence::flatten() const {
  const std::size_t width = seeds.empty() ? 0 : seeds[0].size();
  BitVec out(width * seeds.size());
  for (std::size_t s = 0; s < seeds.size(); ++s)
    for (std::size_t b = 0; b < width; ++b)
      out.set(s * width + b, seeds[s].get(b));
  return out;
}

KeySequence KeySequence::unflatten(const BitVec& bits, std::size_t width,
                                   const std::vector<std::size_t>& gaps) {
  ORAP_CHECK(width > 0 && bits.size() % width == 0);
  const std::size_t num_seeds = bits.size() / width;
  ORAP_CHECK(gaps.size() == num_seeds);
  KeySequence seq;
  seq.gaps = gaps;
  for (std::size_t s = 0; s < num_seeds; ++s) {
    BitVec seed(width);
    for (std::size_t b = 0; b < width; ++b)
      seed.set(b, bits.get(s * width + b));
    seq.seeds.push_back(std::move(seed));
  }
  return seq;
}

BitVec run_key_sequence(Lfsr& lfsr, const KeySequence& seq) {
  ORAP_CHECK(seq.gaps.size() == seq.seeds.size());
  lfsr.reset();
  for (std::size_t s = 0; s < seq.seeds.size(); ++s) {
    lfsr.step(seq.seeds[s]);
    lfsr.free_run(seq.gaps[s]);
  }
  return lfsr.state();
}

Gf2Matrix key_transfer_matrix(const LfsrConfig& cfg, std::size_t num_seeds,
                              const std::vector<std::size_t>& gaps) {
  ORAP_CHECK(gaps.size() == num_seeds);
  const std::size_t width = cfg.num_reseed_points();
  const std::size_t nvars = num_seeds * width;

  // Symbolic state: one linear expression (over the seq vars) per cell.
  std::vector<BitVec> expr(cfg.size, BitVec(nvars));
  auto sym_step = [&](std::size_t seed_idx_or_npos) {
    BitVec fb(nvars);
    for (const std::size_t t : cfg.feedback_taps) fb ^= expr[t];
    std::vector<BitVec> next(cfg.size, BitVec(nvars));
    next[0] = std::move(fb);
    for (std::size_t i = 1; i < cfg.size; ++i) next[i] = expr[i - 1];
    if (seed_idx_or_npos != static_cast<std::size_t>(-1)) {
      for (std::size_t j = 0; j < width; ++j)
        next[cfg.reseed_points[j]].flip(seed_idx_or_npos * width + j);
    }
    expr = std::move(next);
  };

  for (std::size_t s = 0; s < num_seeds; ++s) {
    sym_step(s);
    for (std::size_t g = 0; g < gaps[s]; ++g)
      sym_step(static_cast<std::size_t>(-1));
  }

  Gf2Matrix m(cfg.size, nvars);
  for (std::size_t i = 0; i < cfg.size; ++i) m.row(i) = expr[i];
  return m;
}

std::optional<KeySequence> synthesize_key_sequence(
    const LfsrConfig& cfg, std::size_t num_seeds,
    const std::vector<std::size_t>& gaps, const BitVec& target_key, Rng& rng) {
  ORAP_CHECK(target_key.size() == cfg.size);
  const Gf2Matrix m = key_transfer_matrix(cfg, num_seeds, gaps);
  // Randomize free variables: pick random x0 and solve M y = key ^ M x0;
  // then x = y ^ x0 is a uniformly-shifted solution.
  const BitVec x0 = BitVec::random(m.cols(), rng);
  const BitVec rhs = target_key ^ m.apply(x0);
  const auto y = gf2_solve(m, rhs);
  if (!y.has_value()) return std::nullopt;
  const BitVec x = *y ^ x0;
  return KeySequence::unflatten(x, cfg.num_reseed_points(), gaps);
}

std::size_t xor_tree_cost(const Gf2Matrix& transfer) {
  std::size_t gates = 0;
  for (std::size_t r = 0; r < transfer.rows(); ++r) {
    const std::size_t density = transfer.row(r).count();
    if (density > 1) gates += density - 1;
  }
  return gates;
}

}  // namespace orap
