#pragma once
// Lightweight run-time checking macros used across the library.
//
// ORAP_CHECK is always on (library invariants and user-input validation);
// ORAP_DCHECK compiles out in NDEBUG builds (hot-loop assertions).

#include <sstream>
#include <stdexcept>
#include <string>

namespace orap {

/// Thrown when a checked invariant or precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "ORAP_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace orap

#define ORAP_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr)) ::orap::detail::check_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define ORAP_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream orap_check_os_;                              \
      orap_check_os_ << msg;                                          \
      ::orap::detail::check_fail(#expr, __FILE__, __LINE__,           \
                                 orap_check_os_.str());               \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
#define ORAP_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define ORAP_DCHECK(expr) ORAP_CHECK(expr)
#endif
