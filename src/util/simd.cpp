#include "util/simd.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define ORAP_SIMD_X86 1
#include <immintrin.h>
#else
#define ORAP_SIMD_X86 0
#endif

namespace orap::simd {

namespace {

// --- scalar reference kernels ----------------------------------------------
// Plain word loops; the compiler is free to auto-vectorize them within the
// baseline ISA. These are also the semantics contract for the AVX2 path.

void s_vand(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & b[i];
}
void s_vor(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] | b[i];
}
void s_vxor(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] ^ b[i];
}
void s_vnot(std::uint64_t* dst, const std::uint64_t* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = ~a[i];
}
void s_vmux(std::uint64_t* dst, const std::uint64_t* s, const std::uint64_t* d0,
            const std::uint64_t* d1, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = (s[i] & d1[i]) | (~s[i] & d0[i]);
}
void s_vxor_and(std::uint64_t* dst, const std::uint64_t* a,
                const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= a[i] & b[i];
}
std::uint64_t s_popcount(const std::uint64_t* a, std::size_t n) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < n; ++i)
    c += static_cast<std::uint64_t>(__builtin_popcountll(a[i]));
  return c;
}
bool s_any(const std::uint64_t* a, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc |= a[i];
  return acc != 0;
}
bool s_eq(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::uint64_t diff = 0;
  for (std::size_t i = 0; i < n; ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

constexpr Kernels kScalarKernels = {s_vand,     s_vor, s_vxor, s_vnot, s_vmux,
                                    s_vxor_and, s_popcount, s_any, s_eq};

#if ORAP_SIMD_X86

// --- AVX2 kernels -----------------------------------------------------------
// 256-bit (4-word) steps with a scalar tail. Unaligned loads/stores: the
// value buffers are plain std::vector allocations with no alignment
// guarantee, and vmovdqu on aligned data costs nothing on every AVX2 part.

__attribute__((target("avx2"))) void a_vand(std::uint64_t* dst,
                                            const std::uint64_t* a,
                                            const std::uint64_t* b,
                                            std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

__attribute__((target("avx2"))) void a_vor(std::uint64_t* dst,
                                           const std::uint64_t* a,
                                           const std::uint64_t* b,
                                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

__attribute__((target("avx2"))) void a_vxor(std::uint64_t* dst,
                                            const std::uint64_t* a,
                                            const std::uint64_t* b,
                                            std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] ^ b[i];
}

__attribute__((target("avx2"))) void a_vnot(std::uint64_t* dst,
                                            const std::uint64_t* a,
                                            std::size_t n) {
  std::size_t i = 0;
  const __m256i ones = _mm256_set1_epi64x(-1);
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(va, ones));
  }
  for (; i < n; ++i) dst[i] = ~a[i];
}

__attribute__((target("avx2"))) void a_vmux(std::uint64_t* dst,
                                            const std::uint64_t* s,
                                            const std::uint64_t* d0,
                                            const std::uint64_t* d1,
                                            std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vs = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d0 + i));
    const __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d1 + i));
    // (s & d1) | (~s & d0) == d0 ^ (s & (d0 ^ d1))
    const __m256i r =
        _mm256_xor_si256(v0, _mm256_and_si256(vs, _mm256_xor_si256(v0, v1)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
  }
  for (; i < n; ++i) dst[i] = (s[i] & d1[i]) | (~s[i] & d0[i]);
}

__attribute__((target("avx2"))) void a_vxor_and(std::uint64_t* dst,
                                                const std::uint64_t* a,
                                                const std::uint64_t* b,
                                                std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(vd, _mm256_and_si256(va, vb)));
  }
  for (; i < n; ++i) dst[i] ^= a[i] & b[i];
}

// popcount has no AVX2 single instruction; the scalar 64-bit popcnt loop
// is already throughput-bound on the popcnt unit, so reuse it.
__attribute__((target("avx2"))) bool a_any(const std::uint64_t* a,
                                           std::size_t n) {
  std::size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4)
    acc = _mm256_or_si256(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
  std::uint64_t tail = 0;
  for (; i < n; ++i) tail |= a[i];
  return !_mm256_testz_si256(acc, acc) || tail != 0;
}

__attribute__((target("avx2"))) bool a_eq(const std::uint64_t* a,
                                          const std::uint64_t* b,
                                          std::size_t n) {
  std::size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_or_si256(acc, _mm256_xor_si256(va, vb));
  }
  std::uint64_t tail = 0;
  for (; i < n; ++i) tail |= a[i] ^ b[i];
  return _mm256_testz_si256(acc, acc) && tail == 0;
}

constexpr Kernels kAvx2Kernels = {a_vand,     a_vor, a_vxor, a_vnot, a_vmux,
                                  a_vxor_and, s_popcount, a_any, a_eq};

#endif  // ORAP_SIMD_X86

struct Dispatch {
  Isa isa;
  const Kernels* k;
};

Dispatch resolve() {
  const char* env = std::getenv("ORAP_SIMD");
  const bool force_scalar =
      env != nullptr && std::strcmp(env, "scalar") == 0;
#if ORAP_SIMD_X86
  if (!force_scalar && __builtin_cpu_supports("avx2"))
    return {Isa::kAvx2, &kAvx2Kernels};
#else
  (void)force_scalar;
#endif
  return {Isa::kScalar, &kScalarKernels};
}

const Dispatch& dispatch() {
  static const Dispatch d = resolve();  // magic static: resolved once
  return d;
}

}  // namespace

Isa active_isa() { return dispatch().isa; }

const char* isa_name() {
  return dispatch().isa == Isa::kAvx2 ? "avx2" : "scalar";
}

const Kernels& kernels() { return *dispatch().k; }

const Kernels& scalar_kernels() { return kScalarKernels; }

}  // namespace orap::simd
