#pragma once
// Little-endian byte (de)serialization helpers shared by the wire protocol
// (src/serve/wire.h), the attack checkpoint format
// (src/attacks/checkpoint.h), and oracle resume-state blobs
// (attacks/oracle.h). Writers append to a std::vector<uint8_t>; the Reader
// is a bounds-checked cursor that latches failure instead of throwing, so
// deserializers can parse optimistically and check ok() once — a
// truncated or corrupted input can never read out of bounds.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace orap::bytes {

inline void put_u8(std::vector<std::uint8_t>* out, std::uint8_t v) {
  out->push_back(v);
}

inline void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_u64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_bytes(std::vector<std::uint8_t>* out, const void* data,
                      std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out->insert(out->end(), p, p + n);
}

/// Length-prefixed string/blob (u32 length + raw bytes).
inline void put_blob(std::vector<std::uint8_t>* out, const void* data,
                     std::size_t n) {
  put_u32(out, static_cast<std::uint32_t>(n));
  put_bytes(out, data, n);
}

inline void put_string(std::vector<std::uint8_t>* out, const std::string& s) {
  put_blob(out, s.data(), s.size());
}

/// Bounds-checked deserialization cursor. Any read past the end latches
/// !ok() and yields zeros; callers check ok() after parsing.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const {
    return ok_ ? static_cast<std::size_t>(end_ - p_) : 0;
  }
  const std::uint8_t* cursor() const { return p_; }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return p_[-1];
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(p_[i - 4]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(p_[i - 8]) << (8 * i);
    return v;
  }
  bool raw(void* out, std::size_t n) {
    if (!take(n)) return false;
    std::memcpy(out, p_ - n, n);
    return true;
  }
  /// u32-length-prefixed blob; returns false (and latches !ok) when the
  /// declared length overruns the buffer.
  bool blob(std::vector<std::uint8_t>* out) {
    const std::uint32_t n = u32();
    if (!take(n)) return false;
    out->assign(p_ - n, p_);
    return true;
  }
  bool str(std::string* out) {
    const std::uint32_t n = u32();
    if (!take(n)) return false;
    out->assign(reinterpret_cast<const char*>(p_ - n), n);
    return true;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || static_cast<std::size_t>(end_ - p_) < n) {
      ok_ = false;
      return false;
    }
    p_ += n;
    return true;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool ok_ = true;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xedb88320) over a byte range.
/// Used as the checkpoint-file integrity check: cheap, and any truncation
/// or bit corruption of a record is overwhelmingly likely to be caught.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  static const std::uint32_t* table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  return ~crc;
}

}  // namespace orap::bytes
