#pragma once
// Console table printing for bench harnesses: aligned columns, a header
// row, and a Markdown-ish look so bench output can be pasted into
// EXPERIMENTS.md directly.

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace orap {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  Table& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Formats a double with `prec` decimals.
  static std::string num(double v, int prec = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    auto line = [&](const std::vector<std::string>& cells) {
      os << "|";
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : std::string();
        os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
      }
      os << '\n';
    };
    line(header_);
    os << "|";
    for (std::size_t c = 0; c < width.size(); ++c)
      os << std::string(width[c] + 2, '-') << "|";
    os << '\n';
    for (const auto& row : rows_) line(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace orap
