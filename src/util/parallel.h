#pragma once
// Deterministic work-stealing parallel execution layer.
//
// A lazily-initialized pool of worker threads (sized by the ORAP_THREADS
// environment variable, set_parallel_threads(), or hardware concurrency)
// executes chunked loops. Each worker owns a deque: it pops its own work
// LIFO and steals FIFO from siblings when it runs dry; the submitting
// thread participates in the same way while it waits.
//
// Determinism contract: the chunk layout of parallel_for / parallel_reduce
// depends only on (range, grain) — never on the thread count — and
// parallel_reduce folds per-chunk results in ascending chunk order on the
// calling thread. A workload whose chunks are pure functions of their
// chunk id (use chunk_rng() for randomness) therefore produces bit-identical
// results at any thread count, including 1.
//
// Nesting: a parallel region entered from inside a pool task runs inline
// on the calling worker (no deadlock, same deterministic chunk layout).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace orap {

/// Configured concurrency (>= 1). Resolved from, in priority order:
/// set_parallel_threads(), the ORAP_THREADS environment variable, and
/// std::thread::hardware_concurrency().
std::size_t parallel_threads();

/// Reconfigures the pool size; 0 restores the automatic default
/// (ORAP_THREADS / hardware concurrency). Must not be called from inside
/// a parallel region. Existing workers are joined and respawned lazily.
void set_parallel_threads(std::size_t n);

/// Stable slot of the current thread in [0, parallel_threads()): 0 for the
/// submitting thread, 1.. for pool workers. Use it to index per-thread
/// scratch arrays sized parallel_threads().
std::size_t parallel_slot();

/// True while executing inside a pool task (nested regions run inline).
bool in_parallel_region();

namespace detail {
/// Runs tasks [0, num_tasks) on the pool; blocks until all complete.
/// Exceptions thrown by tasks are rethrown on the calling thread (first
/// one wins). Not reentrant — gate on in_parallel_region() first.
void pool_run(std::size_t num_tasks,
              const std::function<void(std::size_t)>& task);
}  // namespace detail

/// Splittable stream derivation (splitmix64 over seed and stream id):
/// decorrelated RNG streams for per-chunk randomness that do not depend
/// on which thread executes the chunk.
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Per-chunk RNG: Rng(seed, chunk_id) derivation for reproducible
/// randomized workloads under any thread count.
inline Rng chunk_rng(std::uint64_t seed, std::uint64_t chunk_id) {
  return Rng(derive_seed(seed, chunk_id));
}

/// Fixed chunk layout over [0, n): ceil(n / grain) chunks of `grain`
/// elements (last one short). Thread-count independent by construction.
struct ChunkPlan {
  std::size_t n = 0;
  std::size_t grain = 1;

  static ChunkPlan over(std::size_t n, std::size_t grain) {
    ChunkPlan p;
    p.n = n;
    p.grain = grain == 0 ? 1 : grain;
    return p;
  }
  std::size_t chunks() const { return n == 0 ? 0 : (n + grain - 1) / grain; }
  std::size_t begin(std::size_t c) const { return c * grain; }
  std::size_t end(std::size_t c) const {
    const std::size_t e = (c + 1) * grain;
    return e < n ? e : n;
  }
};

/// Runs fn(begin, end, chunk_id) over the fixed chunk layout of [0, n).
template <typename Fn>
void parallel_for_chunks(std::size_t grain, std::size_t n, Fn&& fn) {
  const ChunkPlan plan = ChunkPlan::over(n, grain);
  const std::size_t chunks = plan.chunks();
  if (chunks == 0) return;
  if (chunks == 1 || parallel_threads() == 1 || in_parallel_region()) {
    for (std::size_t c = 0; c < chunks; ++c) fn(plan.begin(c), plan.end(c), c);
    return;
  }
  detail::pool_run(chunks, [&](std::size_t c) {
    fn(plan.begin(c), plan.end(c), c);
  });
}

/// Runs fn(i) for every i in [0, n), `grain` indices per task.
template <typename Fn>
void parallel_for(std::size_t grain, std::size_t n, Fn&& fn) {
  parallel_for_chunks(grain, n,
                      [&](std::size_t b, std::size_t e, std::size_t) {
                        for (std::size_t i = b; i < e; ++i) fn(i);
                      });
}

/// Deterministic chunked reduction: map(begin, end, chunk_id) -> T per
/// chunk, then combine(acc, part) folded in ascending chunk order starting
/// from `init` — bit-identical for any thread count (combine need not be
/// commutative or associative).
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t grain, std::size_t n, T init, Map&& map,
                  Combine&& combine) {
  const ChunkPlan plan = ChunkPlan::over(n, grain);
  const std::size_t chunks = plan.chunks();
  if (chunks == 0) return init;
  std::vector<T> parts(chunks);
  parallel_for_chunks(grain, n,
                      [&](std::size_t b, std::size_t e, std::size_t c) {
                        parts[c] = map(b, e, c);
                      });
  T acc = std::move(init);
  for (std::size_t c = 0; c < chunks; ++c)
    acc = combine(std::move(acc), std::move(parts[c]));
  return acc;
}

}  // namespace orap
