#pragma once
// Deterministic, fast PRNG (xoshiro256**) used everywhere randomness is
// needed so that every experiment in the repository is reproducible from a
// single seed. Satisfies std::uniform_random_bit_generator.

#include <cstdint>
#include <limits>

namespace orap {

/// xoshiro256** 1.0 (Blackman & Vigna). Seeded via splitmix64 so that any
/// 64-bit seed (including 0) yields a well-mixed state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to expand the seed into 4 state words.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& w : s_) w = next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform word of 64 random bits.
  std::uint64_t word() { return (*this)(); }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    constexpr double kInv = 1.0 / 18446744073709551616.0;  // 2^-64
    return static_cast<double>((*this)()) * kInv < p;
  }

  /// Single uniform bit.
  bool bit() { return ((*this)() >> 63) != 0; }

  /// Stream-position capture for checkpoint/resume: the four state words
  /// fully determine every future draw, so saving and restoring them makes
  /// a resumed consumer continue the exact sequence the interrupted run
  /// would have produced.
  void save_state(std::uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = s_[i];
  }
  void restore_state(const std::uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) s_[i] = in[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace orap
