#pragma once
// Dynamic bit vector over 64-bit words.
//
// Used as (1) a pattern container for bit-parallel simulation (bit i of a
// signal's BitVec is the signal's value under pattern i), and (2) the row
// type of GF(2) matrices in the LFSR symbolic engine.

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/rng.h"
#include "util/simd.h"

namespace orap {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits, bool value = false)
      : nbits_(nbits),
        words_(word_count(nbits), value ? ~0ULL : 0ULL) {
    trim();
  }

  static std::size_t word_count(std::size_t nbits) { return (nbits + 63) / 64; }

  static BitVec random(std::size_t nbits, Rng& rng) {
    BitVec v(nbits);
    for (auto& w : v.words_) w = rng.word();
    v.trim();
    return v;
  }

  /// Single set bit at `pos` in a vector of `nbits` bits.
  static BitVec unit(std::size_t nbits, std::size_t pos) {
    BitVec v(nbits);
    v.set(pos, true);
    return v;
  }

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool get(std::size_t i) const {
    ORAP_DCHECK(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool v) {
    ORAP_DCHECK(i < nbits_);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void flip(std::size_t i) {
    ORAP_DCHECK(i < nbits_);
    words_[i >> 6] ^= 1ULL << (i & 63);
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  void resize(std::size_t nbits, bool value = false) {
    const std::size_t old_bits = nbits_;
    nbits_ = nbits;
    words_.resize(word_count(nbits), value ? ~0ULL : 0ULL);
    if (value && nbits > old_bits && old_bits % 64 != 0) {
      // Fill the tail of the previously-partial word.
      words_[old_bits >> 6] |= ~0ULL << (old_bits & 63);
    }
    trim();
  }

  std::size_t count() const {
    return static_cast<std::size_t>(
        simd::popcount(words_.data(), words_.size()));
  }

  bool any() const { return simd::any(words_.data(), words_.size()); }
  bool none() const { return !any(); }

  /// Index of the lowest set bit, or size() if none.
  std::size_t first_set() const {
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i])
        return i * 64 + static_cast<std::size_t>(__builtin_ctzll(words_[i]));
    return nbits_;
  }

  BitVec& operator^=(const BitVec& o) {
    ORAP_DCHECK(nbits_ == o.nbits_);
    simd::vxor(words_.data(), words_.data(), o.words_.data(), words_.size());
    return *this;
  }
  BitVec& operator&=(const BitVec& o) {
    ORAP_DCHECK(nbits_ == o.nbits_);
    simd::vand(words_.data(), words_.data(), o.words_.data(), words_.size());
    return *this;
  }
  BitVec& operator|=(const BitVec& o) {
    ORAP_DCHECK(nbits_ == o.nbits_);
    simd::vor(words_.data(), words_.data(), o.words_.data(), words_.size());
    return *this;
  }

  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }
  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }

  bool operator==(const BitVec& o) const {
    return nbits_ == o.nbits_ &&
           simd::eq(words_.data(), o.words_.data(), words_.size());
  }

  /// GF(2) dot product (parity of AND).
  bool dot(const BitVec& o) const {
    ORAP_DCHECK(nbits_ == o.nbits_);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
      acc ^= words_[i] & o.words_[i];
    return (__builtin_popcountll(acc) & 1) != 0;
  }

  const std::vector<std::uint64_t>& words() const { return words_; }
  std::vector<std::uint64_t>& words() { return words_; }

 private:
  void trim() {
    if (nbits_ % 64 != 0 && !words_.empty())
      words_.back() &= ~0ULL >> (64 - nbits_ % 64);
  }

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace orap
