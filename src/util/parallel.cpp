#include "util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace orap {

namespace {

std::size_t resolve_auto_threads() {
  if (const char* env = std::getenv("ORAP_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

thread_local std::size_t t_slot = 0;
thread_local bool t_in_task = false;

struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> remaining{0};
  std::mutex error_m;
  std::exception_ptr error;  // first task exception, rethrown by the caller

  void record_error(std::exception_ptr e) {
    std::lock_guard<std::mutex> lk(error_m);
    if (!error) error = std::move(e);
  }
};

struct Task {
  Job* job = nullptr;
  std::size_t index = 0;
};

/// One work-stealing deque per worker. The owner pops LIFO from the back;
/// thieves (other workers and the submitting thread) take FIFO from the
/// front, which hands them the oldest — typically largest-remaining —
/// stretch of the submission order.
struct WorkDeque {
  std::mutex m;
  std::deque<Task> q;

  bool pop_back(Task* out) {
    std::lock_guard<std::mutex> lk(m);
    if (q.empty()) return false;
    *out = q.back();
    q.pop_back();
    return true;
  }
  bool pop_front(Task* out) {
    std::lock_guard<std::mutex> lk(m);
    if (q.empty()) return false;
    *out = q.front();
    q.pop_front();
    return true;
  }
};

class Pool {
 public:
  static Pool& get() {
    static Pool* p = new Pool();  // leaked: workers may outlive main()'s locals
    return *p;
  }

  std::size_t threads() {
    std::lock_guard<std::mutex> lk(config_m_);
    return target_;
  }

  void set_threads(std::size_t n) {
    ORAP_CHECK_MSG(!t_in_task,
                   "set_parallel_threads() called inside a parallel region");
    std::lock_guard<std::mutex> lk(config_m_);
    shutdown_workers();
    target_ = n == 0 ? resolve_auto_threads() : n;
  }

  void run(std::size_t num_tasks, const std::function<void(std::size_t)>& fn) {
    ORAP_CHECK_MSG(!t_in_task, "pool_run() is not reentrant");
    if (num_tasks == 0) return;

    std::unique_lock<std::mutex> cfg(config_m_);
    if (target_ == 1 || num_tasks == 1) {
      cfg.unlock();
      for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
      return;
    }
    ensure_workers();
    const std::size_t nworkers = workers_.size();
    cfg.unlock();

    Job job;
    job.fn = &fn;
    job.remaining.store(num_tasks, std::memory_order_relaxed);

    // Round-robin the tasks across the worker deques. Index order is
    // irrelevant to results (the chunk layout is fixed by the caller);
    // spreading them seeds every deque so stealing starts balanced.
    for (std::size_t w = 0; w < nworkers; ++w) {
      std::lock_guard<std::mutex> lk(deques_[w].m);
      for (std::size_t i = w; i < num_tasks; i += nworkers)
        deques_[w].q.push_back(Task{&job, i});
    }
    {
      std::lock_guard<std::mutex> lk(sleep_m_);
      pending_.fetch_add(num_tasks, std::memory_order_relaxed);
    }
    work_cv_.notify_all();

    // The submitting thread helps: steal from the front of any deque.
    Task t;
    while (job.remaining.load(std::memory_order_acquire) > 0) {
      if (steal(nworkers, &t)) {
        execute(t, /*slot=*/0);
        continue;
      }
      std::unique_lock<std::mutex> lk(done_m_);
      done_cv_.wait(lk, [&] {
        return job.remaining.load(std::memory_order_acquire) == 0 ||
               pending_.load(std::memory_order_acquire) > 0;
      });
    }
    if (job.error) std::rethrow_exception(job.error);
  }

 private:
  Pool() : target_(resolve_auto_threads()) {}

  void ensure_workers() {  // requires config_m_
    const std::size_t want = target_ - 1;
    if (workers_.size() == want) return;
    shutdown_workers();
    stop_ = false;
    deques_ = std::vector<WorkDeque>(want);
    workers_.reserve(want);
    for (std::size_t w = 0; w < want; ++w)
      workers_.emplace_back([this, w] { worker_main(w); });
  }

  void shutdown_workers() {  // requires config_m_
    if (workers_.empty()) return;
    {
      std::lock_guard<std::mutex> lk(sleep_m_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& th : workers_) th.join();
    workers_.clear();
    deques_.clear();
  }

  void execute(const Task& t, std::size_t slot) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    const std::size_t prev_slot = t_slot;
    t_slot = slot;
    t_in_task = true;
    try {
      (*t.job->fn)(t.index);
    } catch (...) {
      t.job->record_error(std::current_exception());
    }
    t_in_task = false;
    t_slot = prev_slot;
    if (t.job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(done_m_);
      done_cv_.notify_all();
    }
  }

  bool steal(std::size_t nworkers, Task* out) {
    for (std::size_t w = 0; w < nworkers; ++w)
      if (deques_[w].pop_front(out)) return true;
    return false;
  }

  void worker_main(std::size_t id) {
    t_slot = id + 1;
    while (true) {
      Task t;
      bool got = deques_[id].pop_back(&t);  // own work, LIFO
      if (!got) {                           // steal FIFO, nearest first
        const std::size_t n = deques_.size();
        for (std::size_t d = 1; d < n && !got; ++d)
          got = deques_[(id + d) % n].pop_front(&t);
      }
      if (got) {
        execute(t, id + 1);
        continue;
      }
      std::unique_lock<std::mutex> lk(sleep_m_);
      if (stop_) return;
      work_cv_.wait(lk, [&] {
        return stop_ || pending_.load(std::memory_order_acquire) > 0;
      });
      if (stop_) return;
    }
  }

  std::mutex config_m_;  // pool (re)configuration and lazy start
  std::size_t target_;
  std::vector<std::thread> workers_;
  std::vector<WorkDeque> deques_;

  std::mutex sleep_m_;  // worker sleep/wake + stop flag
  std::condition_variable work_cv_;
  bool stop_ = false;
  std::atomic<std::size_t> pending_{0};  // queued, not-yet-executed tasks

  std::mutex done_m_;  // caller sleep/wake on job completion
  std::condition_variable done_cv_;
};

}  // namespace

std::size_t parallel_threads() { return Pool::get().threads(); }

void set_parallel_threads(std::size_t n) { Pool::get().set_threads(n); }

std::size_t parallel_slot() { return t_slot; }

bool in_parallel_region() { return t_in_task; }

namespace detail {
void pool_run(std::size_t num_tasks,
              const std::function<void(std::size_t)>& task) {
  Pool::get().run(num_tasks, task);
}
}  // namespace detail

}  // namespace orap
