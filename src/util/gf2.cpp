#include "util/gf2.h"

#include <algorithm>

#include "util/check.h"

namespace orap {

Gf2Matrix Gf2Matrix::identity(std::size_t n) {
  Gf2Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, true);
  return m;
}

Gf2Matrix Gf2Matrix::random(std::size_t rows, std::size_t cols, Rng& rng) {
  Gf2Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) m.row(r) = BitVec::random(cols, rng);
  return m;
}

BitVec Gf2Matrix::apply(const BitVec& x) const {
  ORAP_CHECK(x.size() == cols_);
  BitVec y(rows());
  for (std::size_t r = 0; r < rows(); ++r) y.set(r, rows_[r].dot(x));
  return y;
}

Gf2Matrix Gf2Matrix::multiply(const Gf2Matrix& o) const {
  ORAP_CHECK(cols_ == o.rows());
  Gf2Matrix out(rows(), o.cols());
  for (std::size_t r = 0; r < rows(); ++r) {
    // Row r of the product is the XOR of o's rows selected by this row.
    for (std::size_t k = 0; k < cols_; ++k)
      if (rows_[r].get(k)) out.row(r) ^= o.row(k);
  }
  return out;
}

std::size_t Gf2Matrix::rank() const {
  std::vector<BitVec> work(rows_);
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < work.size(); ++col) {
    std::size_t pivot = rank;
    while (pivot < work.size() && !work[pivot].get(col)) ++pivot;
    if (pivot == work.size()) continue;
    std::swap(work[rank], work[pivot]);
    for (std::size_t r = 0; r < work.size(); ++r)
      if (r != rank && work[r].get(col)) work[r] ^= work[rank];
    ++rank;
  }
  return rank;
}

namespace {

// Reduced row echelon form of [A | b] (or just A when b == nullptr).
// Returns, per eliminated row, its pivot column.
struct Rref {
  std::vector<BitVec> rows;       // A rows after elimination
  std::vector<bool> rhs;          // b entries after elimination (if tracked)
  std::vector<std::size_t> pivot_col;  // pivot column of row i (i < rank)
};

Rref rref(const Gf2Matrix& a, const BitVec* b) {
  Rref out;
  out.rows.reserve(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) out.rows.push_back(a.row(r));
  if (b != nullptr) {
    ORAP_CHECK(b->size() == a.rows());
    out.rhs.resize(a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r) out.rhs[r] = b->get(r);
  }
  std::size_t rank = 0;
  for (std::size_t col = 0; col < a.cols() && rank < out.rows.size(); ++col) {
    std::size_t pivot = rank;
    while (pivot < out.rows.size() && !out.rows[pivot].get(col)) ++pivot;
    if (pivot == out.rows.size()) continue;
    std::swap(out.rows[rank], out.rows[pivot]);
    if (b != nullptr) {
      const bool tmp = out.rhs[rank];
      out.rhs[rank] = out.rhs[pivot];
      out.rhs[pivot] = tmp;
    }
    for (std::size_t r = 0; r < out.rows.size(); ++r) {
      if (r != rank && out.rows[r].get(col)) {
        out.rows[r] ^= out.rows[rank];
        if (b != nullptr) out.rhs[r] = out.rhs[r] != out.rhs[rank];
      }
    }
    out.pivot_col.push_back(col);
    ++rank;
  }
  return out;
}

}  // namespace

std::optional<BitVec> gf2_solve(const Gf2Matrix& a, const BitVec& b) {
  const Rref rr = rref(a, &b);
  const std::size_t rank = rr.pivot_col.size();
  // Inconsistent if any zero row has rhs 1.
  for (std::size_t r = rank; r < rr.rows.size(); ++r)
    if (rr.rhs[r]) return std::nullopt;
  BitVec x(a.cols());
  for (std::size_t r = 0; r < rank; ++r)
    if (rr.rhs[r]) x.set(rr.pivot_col[r], true);
  return x;
}

std::vector<BitVec> gf2_nullspace(const Gf2Matrix& a) {
  const Rref rr = rref(a, nullptr);
  const std::size_t rank = rr.pivot_col.size();
  std::vector<bool> is_pivot(a.cols(), false);
  for (auto c : rr.pivot_col) is_pivot[c] = true;
  std::vector<BitVec> basis;
  for (std::size_t free_col = 0; free_col < a.cols(); ++free_col) {
    if (is_pivot[free_col]) continue;
    BitVec v(a.cols());
    v.set(free_col, true);
    // Pivot variables are determined by the free column's coefficients.
    for (std::size_t r = 0; r < rank; ++r)
      if (rr.rows[r].get(free_col)) v.set(rr.pivot_col[r], true);
    basis.push_back(std::move(v));
  }
  return basis;
}

}  // namespace orap
