#pragma once
// Dense GF(2) linear algebra: matrices as vectors of BitVec rows, Gaussian
// elimination, rank, and linear-system solving.
//
// The LFSR symbolic engine expresses every key-register cell as a linear
// combination of key-sequence bits; synthesizing a key sequence for a target
// key is then `solve(A, b)` over GF(2).

#include <cstddef>
#include <optional>
#include <vector>

#include "util/bitvec.h"

namespace orap {

/// Row-major dense matrix over GF(2). rows() x cols().
class Gf2Matrix {
 public:
  Gf2Matrix() = default;
  Gf2Matrix(std::size_t rows, std::size_t cols)
      : cols_(cols), rows_(rows, BitVec(cols)) {}

  static Gf2Matrix identity(std::size_t n);
  static Gf2Matrix random(std::size_t rows, std::size_t cols, Rng& rng);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return cols_; }

  bool get(std::size_t r, std::size_t c) const { return rows_[r].get(c); }
  void set(std::size_t r, std::size_t c, bool v) { rows_[r].set(c, v); }

  BitVec& row(std::size_t r) { return rows_[r]; }
  const BitVec& row(std::size_t r) const { return rows_[r]; }

  /// y = M * x  (x has cols() bits, result has rows() bits).
  BitVec apply(const BitVec& x) const;

  /// Matrix product (this * o); cols() must equal o.rows().
  Gf2Matrix multiply(const Gf2Matrix& o) const;

  std::size_t rank() const;

  bool operator==(const Gf2Matrix& o) const {
    return cols_ == o.cols_ && rows_ == o.rows_;
  }

 private:
  std::size_t cols_ = 0;
  std::vector<BitVec> rows_;
};

/// Solve A x = b over GF(2). Returns one solution if the system is
/// consistent (free variables fixed to 0), std::nullopt otherwise.
std::optional<BitVec> gf2_solve(const Gf2Matrix& a, const BitVec& b);

/// Nullspace basis of A (vectors x with A x = 0), one BitVec per basis vector.
std::vector<BitVec> gf2_nullspace(const Gf2Matrix& a);

}  // namespace orap
