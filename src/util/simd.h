#pragma once
// Multi-word bitwise kernels behind a runtime ISA dispatch.
//
// The simulation hot paths (bit-parallel Simulator, HOPE-style fault
// simulator, BitVec algebra) all reduce to bulk AND/OR/XOR/NOT/popcount
// over arrays of 64-bit words. This header routes them through one kernel
// table resolved once per process: an AVX2 implementation when the CPU
// supports it, a portable scalar loop otherwise. Both paths compute the
// same pure bitwise functions, so results are bit-identical regardless of
// which one runs — the dispatch affects throughput only, never output.
//
// ORAP_SIMD=scalar forces the scalar path (read once, at first use). CI
// uses it to A/B the two implementations against each other.

#include <cstddef>
#include <cstdint>

namespace orap::simd {

/// Words per simulation block in the wide simulator / fault simulator
/// (4 x 64 = 256 patterns per block, one AVX2 register per gate step).
inline constexpr std::size_t kBlockWords = 4;

enum class Isa { kScalar, kAvx2 };

/// The ISA the kernel table resolved to (after the ORAP_SIMD override).
Isa active_isa();
const char* isa_name();

/// Kernel table: every entry operates on `n` 64-bit words. dst may alias
/// a or b (the kernels are element-wise, never overlapping-shifted).
struct Kernels {
  void (*vand)(std::uint64_t* dst, const std::uint64_t* a,
               const std::uint64_t* b, std::size_t n);
  void (*vor)(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, std::size_t n);
  void (*vxor)(std::uint64_t* dst, const std::uint64_t* a,
               const std::uint64_t* b, std::size_t n);
  void (*vnot)(std::uint64_t* dst, const std::uint64_t* a, std::size_t n);
  /// dst = (s & d1) | (~s & d0), the word-wise 2:1 mux.
  void (*vmux)(std::uint64_t* dst, const std::uint64_t* s,
               const std::uint64_t* d0, const std::uint64_t* d1,
               std::size_t n);
  /// dst ^= a & b (the GF(2) dot-product inner step).
  void (*vxor_and)(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t n);
  std::uint64_t (*popcount)(const std::uint64_t* a, std::size_t n);
  bool (*any)(const std::uint64_t* a, std::size_t n);
  bool (*eq)(const std::uint64_t* a, const std::uint64_t* b, std::size_t n);
};

/// The resolved kernel table (dispatch decided on first call, thread-safe).
const Kernels& kernels();

// Convenience wrappers.
inline void vand(std::uint64_t* dst, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t n) {
  kernels().vand(dst, a, b, n);
}
inline void vor(std::uint64_t* dst, const std::uint64_t* a,
                const std::uint64_t* b, std::size_t n) {
  kernels().vor(dst, a, b, n);
}
inline void vxor(std::uint64_t* dst, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t n) {
  kernels().vxor(dst, a, b, n);
}
inline void vnot(std::uint64_t* dst, const std::uint64_t* a, std::size_t n) {
  kernels().vnot(dst, a, n);
}
inline void vmux(std::uint64_t* dst, const std::uint64_t* s,
                 const std::uint64_t* d0, const std::uint64_t* d1,
                 std::size_t n) {
  kernels().vmux(dst, s, d0, d1, n);
}
inline void vxor_and(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n) {
  kernels().vxor_and(dst, a, b, n);
}
inline std::uint64_t popcount(const std::uint64_t* a, std::size_t n) {
  return kernels().popcount(a, n);
}
inline bool any(const std::uint64_t* a, std::size_t n) {
  return kernels().any(a, n);
}
inline bool eq(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  return kernels().eq(a, b, n);
}

/// The scalar kernel table, always available — the reference the SIMD path
/// is cross-checked against in tests regardless of the dispatch decision.
const Kernels& scalar_kernels();

}  // namespace orap::simd
