#pragma once
// Cycle-accurate model of an OraP-protected chip (the paper's Figs. 1-3).
//
// The chip wraps a locked combinational core in a sequential shell:
//
//   comb core inputs  = [ primary inputs | state FFs | key inputs ]
//   comb core outputs = [ primary outputs | next-state ]
//
// The key inputs are driven by the OraP key register — an LFSR that is
// unlocked by a multi-cycle key sequence from tamper-proof memory and is
// cleared by per-cell pulse generators whenever scan-enable rises (Fig. 2).
// The LFSR cells participate in the scan chains, placed before / interleaved
// with normal state FFs (the Sec. III-b countermeasure).
//
// Two variants:
//  * kBasic    (Fig. 1): the key sequence alone determines the key.
//  * kModified (Fig. 3): a first unlock phase feeds *locked-circuit
//    responses* (state-FF values) into half the reseeding points; a second
//    memory-driven phase steers the register onto the key. Freezing the
//    state FFs (attack (e)) therefore corrupts the key.
//
// The five Trojan scenarios of Sec. III are modeled as chip mutations with
// gate-equivalent payload accounting, so the security argument ("every
// bypass costs enough hardware to be side-channel visible") is measurable.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lfsr/lfsr.h"
#include "locking/locking.h"
#include "netlist/simulator.h"
#include "util/bitvec.h"

namespace orap {

enum class OrapVariant { kBasic, kModified };

enum class TrojanKind {
  kNone,
  kSuppressPulsePerCell,  // (a) NAND2->NAND3 in every pulse generator
  kBypassLfsrInScan,      // (b) stem suppression + per-cell scan bypass MUX
  kShadowRegister,        // (c) shadow FF per cell + MUX onto key inputs
  kXorTrees,              // (d) seed registers + XOR trees + MUX
  kFreezeStateFfs,        // (e) freeze normal FFs during unlock
  kReplayResponses,       // (e') freeze FFs + record-and-replay the
                          //      phase-1 response injections (the
                          //      escalation that re-breaks kModified, at
                          //      a storage cost the designer controls
                          //      via response_cycles)
};

/// Gate-equivalent payload of a Trojan (the paper's Sec. III arithmetic):
/// NAND2 = 1 GE, a NAND2->NAND3 swap = 0.5 GE, MUX2 = 3 GE, FF = 6 GE,
/// XOR2 = 3 GE.
struct TrojanCost {
  double gate_equivalents = 0.0;
  std::string description;
};

struct OrapOptions {
  OrapVariant variant = OrapVariant::kBasic;
  std::size_t num_scan_chains = 1;
  std::size_t mem_seeds = 4;               // memory-driven reseed count
  std::vector<std::size_t> mem_gaps;       // defaults to {2,2,...}
  std::size_t response_cycles = 16;        // kModified phase-1 length
  TrojanKind trojan = TrojanKind::kNone;
};

/// One scan cell: either a normal state FF or an LFSR (key register) cell.
struct ScanCell {
  enum class Kind { kStateFf, kLfsr } kind = Kind::kStateFf;
  std::size_t index = 0;  // FF index or LFSR cell index
};

class OrapChip {
 public:
  /// `locked` is the locked combinational core; its first `num_pis` data
  /// inputs are chip pins, the remaining data inputs are state FFs fed by
  /// the *last* ns comb outputs (ns = data inputs - num_pis). The LFSR
  /// size equals the core's key width. The constructor plays the designer:
  /// it picks the unlock schedule and synthesizes the tamper-proof-memory
  /// key sequence so that the unlock process lands exactly on the correct
  /// key (for kModified this accounts for the locked responses fed back
  /// during phase 1).
  OrapChip(LockedCircuit locked, std::size_t num_pis, OrapOptions opt,
           std::uint64_t seed);

  // --- structure ---------------------------------------------------------
  std::size_t num_pis() const { return num_pis_; }
  std::size_t num_pos() const { return num_pos_; }
  std::size_t num_state_ffs() const { return num_state_; }
  std::size_t lfsr_size() const { return lfsr_.config().size; }
  const LockedCircuit& locked_circuit() const { return locked_; }
  const OrapOptions& options() const { return opt_; }

  /// Scan layout: chains()[c] lists the cells of chain c, scan-in side
  /// first. LFSR cells come first / interleaved per Sec. III-b.
  const std::vector<std::vector<ScanCell>>& chains() const { return chains_; }
  std::size_t max_chain_length() const;

  // --- lifecycle / functional mode ----------------------------------------
  /// Power-on activation: clears FFs and key register, then runs the
  /// multi-cycle unlock protocol (PIs held at 0, as the designer assumed).
  void power_on();

  /// True when the key register currently holds the correct key.
  bool is_unlocked() const;

  /// One functional clock: state FFs capture next-state.
  void clock(const BitVec& pi);

  /// Combinational read of the primary-output pins for the current state.
  BitVec read_outputs(const BitVec& pi);

  const BitVec& state_ffs() const { return state_; }
  const BitVec& key_register_state() const { return lfsr_.state(); }

  // --- test mode (the attacker's interface) --------------------------------
  /// Raising scan-enable fires the pulse generators: the key register
  /// self-clears (unless Trojan (a)/(b) suppresses it).
  void set_scan_enable(bool enable);
  bool scan_enable() const { return scan_enable_; }

  /// One scan clock: every chain shifts one position; head_bits has one
  /// bit per chain (new scan-in values). Requires scan-enable high.
  void scan_shift(const BitVec& head_bits);

  /// Scan-out bits currently visible at each chain tail.
  BitVec scan_tail_bits() const;

  /// Capture clock in test mode (scan-enable low for one cycle): state FFs
  /// load next-state; the key inputs see the current key-register state.
  /// Returns the PO pin values observed during the capture.
  BitVec capture(const BitVec& pi);

  /// Convenience: full serial load of all scan cells. `image` is indexed
  /// by scan position (see scan_image_position). Destroys prior content.
  void scan_load(const BitVec& image);
  /// Convenience: full serial unload (destructive, shifts in zeros).
  BitVec scan_unload();
  std::size_t scan_image_size() const;
  /// Position of a cell in the full-load image, or nullopt if the cell is
  /// not scannable (e.g. LFSR cells under Trojan (b) bypass).
  std::optional<std::size_t> scan_image_position(ScanCell::Kind kind,
                                                 std::size_t index) const;

  /// Re-entry to functional mode: the lock controller resets the state FFs
  /// and replays the unlock protocol, exactly as at power-on. Trojan (e)
  /// suppresses the FF reset/updates during the replayed unlock.
  void exit_test_mode();

  // --- trojan --------------------------------------------------------------
  void trigger_trojan() { trojan_active_ = true; }
  bool trojan_triggered() const { return trojan_active_; }
  TrojanCost trojan_cost() const;

  /// Designer-side introspection for tests/benches.
  const KeySequence& memory_key_sequence() const { return mem_sequence_; }
  const BitVec& correct_key() const { return locked_.correct_key; }

  /// Unlock latency in clock cycles: response-mixing phase (kModified)
  /// plus one cycle per seed and per free-run gap.
  std::size_t unlock_cycles() const;

  /// Tamper-proof-memory footprint in bits (the stored key sequence).
  std::size_t tamper_memory_bits() const;

 private:
  void run_unlock_protocol();
  void comb_eval(const BitVec& pi, const BitVec& key, BitVec* po,
                 BitVec* next_state);
  static void comb_eval_static(const LockedCircuit& lc, Simulator& sim,
                               const BitVec& pi, const BitVec& state,
                               const BitVec& key, BitVec* po, BitVec* next,
                               std::size_t num_pis, std::size_t num_pos,
                               std::size_t num_state);
  BitVec effective_key() const;  // key inputs as seen by the comb core
  BitVec phase1_injection() const;

  LockedCircuit locked_;
  Simulator sim_;
  std::size_t num_pis_ = 0;
  std::size_t num_pos_ = 0;
  std::size_t num_state_ = 0;
  OrapOptions opt_;

  Lfsr lfsr_;
  BitVec state_;
  bool scan_enable_ = false;
  bool trojan_active_ = false;

  // Designer secrets (tamper-proof memory).
  KeySequence mem_sequence_;
  LfsrConfig mem_cfg_;  // reseed view restricted to memory-driven points
  std::vector<std::size_t> response_points_;  // reseed indices fed by FFs
  std::vector<std::size_t> response_ffs_;     // FF index per response point

  // Trojan (c)/(d) payload state: latched copy of the unlocked key.
  BitVec shadow_key_;
  bool shadow_valid_ = false;
  // Trojan (e') payload state: recorded phase-1 response injections.
  std::vector<BitVec> replay_log_;
  bool replay_valid_ = false;

  std::vector<std::vector<ScanCell>> chains_;
};

/// The oracle-protection claim, as a predicate the attack suite uses: a
/// scan-based combinational oracle query against this chip. `data` packs
/// [pi | state] for the locked core; the return packs [po | next_state].
/// On an unprotected chip this is the golden oracle; on an OraP chip the
/// responses correspond to the cleared (locked) key register.
BitVec scan_oracle_query(OrapChip& chip, const BitVec& data);

}  // namespace orap
