#include "chip/chip.h"

#include <algorithm>

namespace orap {

namespace {

// Gate-equivalent constants used by the Sec. III payload arithmetic.
constexpr double kGeNandSwap = 0.5;  // NAND2 -> NAND3 upgrade
constexpr double kGeMux2 = 3.0;
constexpr double kGeFf = 6.0;
constexpr double kGeXor2 = 3.0;

}  // namespace

OrapChip::OrapChip(LockedCircuit locked, std::size_t num_pis, OrapOptions opt,
                   std::uint64_t seed)
    : locked_(std::move(locked)),
      sim_(locked_.netlist),
      num_pis_(num_pis),
      opt_(std::move(opt)),
      lfsr_(LfsrConfig::standard(locked_.num_key_inputs)) {
  ORAP_CHECK(num_pis_ <= locked_.num_data_inputs);
  num_state_ = locked_.num_data_inputs - num_pis_;
  ORAP_CHECK_MSG(num_state_ >= 1, "chip needs at least one state FF");
  ORAP_CHECK_MSG(locked_.netlist.num_outputs() > num_state_,
                 "comb core must have PO outputs beyond the next-state bits");
  num_pos_ = locked_.netlist.num_outputs() - num_state_;
  state_ = BitVec(num_state_);
  ORAP_CHECK_MSG(locked_.correct_key.any(),
                 "all-zero key is indistinguishable from the cleared register");

  Rng rng(seed);
  const LfsrConfig& cfg = lfsr_.config();

  // Split the reseeding points: kModified interleaves response-driven and
  // memory-driven points (even = memory, odd = response), per Sec. III-e.
  mem_cfg_ = cfg;
  if (opt_.variant == OrapVariant::kModified) {
    mem_cfg_.reseed_points.clear();
    for (std::size_t j = 0; j < cfg.reseed_points.size(); ++j) {
      if (j % 2 == 0) {
        mem_cfg_.reseed_points.push_back(cfg.reseed_points[j]);
      } else {
        response_points_.push_back(j);
        response_ffs_.push_back(response_points_.size() % num_state_);
      }
    }
    ORAP_CHECK(opt_.response_cycles >= 1);
  }

  if (opt_.mem_gaps.empty()) opt_.mem_gaps.assign(opt_.mem_seeds, 2);
  ORAP_CHECK(opt_.mem_gaps.size() == opt_.mem_seeds);

  // Designer-side: synthesize the tamper-proof-memory key sequence.
  // For kModified, first simulate phase 1 (deterministic: FFs and LFSR
  // from reset, PIs at 0) to find the register state the memory-driven
  // phase must steer from.
  BitVec phase2_start(cfg.size);
  if (opt_.variant == OrapVariant::kModified) {
    Lfsr probe(cfg);
    BitVec st(num_state_);
    const BitVec zero_pi(num_pis_);
    for (std::size_t t = 0; t < opt_.response_cycles; ++t) {
      BitVec po, next;
      comb_eval_static(locked_, sim_, zero_pi, st, probe.state(), &po, &next,
                       num_pis_, num_pos_, num_state_);
      BitVec inj(cfg.num_reseed_points());
      for (std::size_t j = 0; j < response_points_.size(); ++j)
        inj.set(response_points_[j], st.get(response_ffs_[j]));
      probe.step(inj);
      st = std::move(next);
    }
    phase2_start = probe.state();
  }

  // Free-running the register through phase 2 gives the affine term the
  // memory bits must cancel: solve M2 * mem = key ^ drift(phase2_start).
  for (int attempt = 0;; ++attempt) {
    ORAP_CHECK_MSG(attempt < 6, "cannot synthesize key sequence (rank)");
    Lfsr drift(cfg);
    drift.set_state(phase2_start);
    std::size_t cycles = opt_.mem_seeds;
    for (const std::size_t g : opt_.mem_gaps) cycles += g;
    drift.free_run(cycles);
    const Gf2Matrix m2 =
        key_transfer_matrix(mem_cfg_, opt_.mem_seeds, opt_.mem_gaps);
    const BitVec target = locked_.correct_key ^ drift.state();
    // Randomized solve (see synthesize_key_sequence).
    const BitVec x0 = BitVec::random(m2.cols(), rng);
    const auto y = gf2_solve(m2, target ^ m2.apply(x0));
    if (y.has_value()) {
      mem_sequence_ = KeySequence::unflatten(
          *y ^ x0, mem_cfg_.num_reseed_points(), opt_.mem_gaps);
      break;
    }
    // Rank-deficient schedule: add seeds and stagger the gaps.
    opt_.mem_seeds += 2;
    opt_.mem_gaps.clear();
    for (std::size_t s = 0; s < opt_.mem_seeds; ++s)
      opt_.mem_gaps.push_back(2 + s % 2);
  }

  // Scan-chain layout: LFSR cells round-robin across chains, interleaved
  // ahead of the normal FFs (Sec. III-b countermeasure).
  ORAP_CHECK(opt_.num_scan_chains >= 1);
  chains_.resize(opt_.num_scan_chains);
  std::vector<std::vector<ScanCell>> lfsr_part(opt_.num_scan_chains);
  std::vector<std::vector<ScanCell>> ff_part(opt_.num_scan_chains);
  for (std::size_t i = 0; i < cfg.size; ++i)
    lfsr_part[i % opt_.num_scan_chains].push_back(
        {ScanCell::Kind::kLfsr, i});
  for (std::size_t j = 0; j < num_state_; ++j)
    ff_part[j % opt_.num_scan_chains].push_back(
        {ScanCell::Kind::kStateFf, j});
  for (std::size_t c = 0; c < opt_.num_scan_chains; ++c) {
    auto& chain = chains_[c];
    std::size_t li = 0, fi = 0;
    while (li < lfsr_part[c].size() || fi < ff_part[c].size()) {
      if (li < lfsr_part[c].size()) chain.push_back(lfsr_part[c][li++]);
      if (fi < ff_part[c].size()) chain.push_back(ff_part[c][fi++]);
    }
  }

  power_on();
}

// Static comb evaluation helper shared with the constructor's phase-1
// probe (defined as a free function so the constructor can use it before
// the object is fully set up).
void OrapChip::comb_eval_static(const LockedCircuit& lc, Simulator& sim,
                                const BitVec& pi, const BitVec& state,
                                const BitVec& key, BitVec* po, BitVec* next,
                                std::size_t num_pis, std::size_t num_pos,
                                std::size_t num_state) {
  BitVec data(lc.num_data_inputs);
  for (std::size_t i = 0; i < num_pis; ++i) data.set(i, pi.get(i));
  for (std::size_t j = 0; j < num_state; ++j)
    data.set(num_pis + j, state.get(j));
  const BitVec out = sim.run_single(lc.assemble_input(data, key));
  if (po != nullptr) {
    *po = BitVec(num_pos);
    for (std::size_t o = 0; o < num_pos; ++o) po->set(o, out.get(o));
  }
  if (next != nullptr) {
    *next = BitVec(num_state);
    for (std::size_t j = 0; j < num_state; ++j)
      next->set(j, out.get(num_pos + j));
  }
}

void OrapChip::comb_eval(const BitVec& pi, const BitVec& key, BitVec* po,
                         BitVec* next_state) {
  comb_eval_static(locked_, sim_, pi, state_, key, po, next_state, num_pis_,
                   num_pos_, num_state_);
}

BitVec OrapChip::effective_key() const {
  if (trojan_active_ && shadow_valid_ &&
      (opt_.trojan == TrojanKind::kShadowRegister ||
       opt_.trojan == TrojanKind::kXorTrees)) {
    return shadow_key_;
  }
  return lfsr_.state();
}

void OrapChip::run_unlock_protocol() {
  const bool replay = trojan_active_ &&
                      opt_.trojan == TrojanKind::kReplayResponses &&
                      replay_valid_;
  // (e') must let the first (recording) unlock run untouched; it freezes
  // the FFs only once it has a trajectory to replay.
  const bool freeze =
      trojan_active_ &&
      (opt_.trojan == TrojanKind::kFreezeStateFfs || replay);
  if (!freeze) state_.clear();
  lfsr_.reset();
  const BitVec zero_pi(num_pis_);
  const LfsrConfig& cfg = lfsr_.config();

  // Phase 1 (kModified): locked-circuit responses feed the odd reseeding
  // points while the controller withholds memory seeds.
  if (opt_.variant == OrapVariant::kModified) {
    const bool record = trojan_active_ &&
                        opt_.trojan == TrojanKind::kReplayResponses &&
                        !replay_valid_;
    if (record) replay_log_.clear();
    for (std::size_t t = 0; t < opt_.response_cycles; ++t) {
      BitVec next;
      comb_eval(zero_pi, lfsr_.state(), nullptr, &next);
      BitVec inj(cfg.num_reseed_points());
      if (replay) {
        // (e'): the Trojan's replay registers drive the response points
        // with the recorded legitimate trajectory, so the frozen FFs no
        // longer matter.
        inj = replay_log_[t];
      } else {
        for (std::size_t j = 0; j < response_points_.size(); ++j)
          inj.set(response_points_[j], state_.get(response_ffs_[j]));
        if (record) replay_log_.push_back(inj);
      }
      lfsr_.step(inj);
      if (!freeze) state_ = std::move(next);
    }
    if (record && replay_log_.size() == opt_.response_cycles)
      replay_valid_ = true;
  }

  // Phase 2: memory-driven seeds (response injection gated off by the
  // controller schedule); state FFs keep clocking functionally.
  auto functional_tick = [&]() {
    BitVec next;
    comb_eval(zero_pi, lfsr_.state(), nullptr, &next);
    if (!freeze) state_ = std::move(next);
  };
  for (std::size_t s = 0; s < mem_sequence_.seeds.size(); ++s) {
    BitVec inj(cfg.num_reseed_points());
    for (std::size_t j = 0; j < mem_cfg_.reseed_points.size(); ++j) {
      if (mem_sequence_.seeds[s].get(j)) {
        // Map the memory point back to its slot in the full config.
        const std::size_t cell = mem_cfg_.reseed_points[j];
        for (std::size_t slot = 0; slot < cfg.reseed_points.size(); ++slot) {
          if (cfg.reseed_points[slot] == cell) {
            inj.set(slot, true);
            break;
          }
        }
      }
    }
    functional_tick();
    lfsr_.step(inj);
    for (std::size_t g = 0; g < opt_.mem_gaps[s]; ++g) {
      functional_tick();
      lfsr_.free_run(1);
    }
  }

  // Trojan (c)/(d) payload latches the unlocked key for later replay.
  if (trojan_active_ && (opt_.trojan == TrojanKind::kShadowRegister ||
                         opt_.trojan == TrojanKind::kXorTrees)) {
    shadow_key_ = lfsr_.state();
    shadow_valid_ = true;
  }
}

void OrapChip::power_on() {
  scan_enable_ = false;
  state_.clear();
  run_unlock_protocol();
}

bool OrapChip::is_unlocked() const {
  return lfsr_.state() == locked_.correct_key;
}

void OrapChip::clock(const BitVec& pi) {
  ORAP_CHECK(!scan_enable_);
  BitVec next;
  comb_eval(pi, effective_key(), nullptr, &next);
  state_ = std::move(next);
}

BitVec OrapChip::read_outputs(const BitVec& pi) {
  BitVec po;
  comb_eval(pi, effective_key(), &po, nullptr);
  return po;
}

void OrapChip::set_scan_enable(bool enable) {
  const bool rising = enable && !scan_enable_;
  scan_enable_ = enable;
  if (!rising) return;
  // Pulse generators fire on the 0->1 transition and clear the key
  // register (Fig. 2) — unless a triggered Trojan suppresses them.
  const bool suppressed =
      trojan_active_ && (opt_.trojan == TrojanKind::kSuppressPulsePerCell ||
                         opt_.trojan == TrojanKind::kBypassLfsrInScan);
  if (!suppressed) lfsr_.reset();
}

std::size_t OrapChip::max_chain_length() const {
  std::size_t m = 0;
  for (const auto& c : chains_) m = std::max(m, c.size());
  return m;
}

namespace {
bool cell_bypassed(const ScanCell& cell, bool trojan_active, TrojanKind kind,
                   bool oracle_protection_off) {
  if (cell.kind != ScanCell::Kind::kLfsr) return false;
  if (oracle_protection_off) return true;  // conventional design: key
                                           // register is not scannable
  return trojan_active && kind == TrojanKind::kBypassLfsrInScan;
}
}  // namespace

void OrapChip::scan_shift(const BitVec& head_bits) {
  ORAP_CHECK_MSG(scan_enable_, "scan_shift requires scan-enable high");
  ORAP_CHECK(head_bits.size() == chains_.size());
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    bool carry = head_bits.get(c);
    for (const ScanCell& cell : chains_[c]) {
      if (cell_bypassed(cell, trojan_active_, opt_.trojan, false)) continue;
      bool cur;
      if (cell.kind == ScanCell::Kind::kStateFf) {
        cur = state_.get(cell.index);
        state_.set(cell.index, carry);
      } else {
        BitVec s = lfsr_.state();
        cur = s.get(cell.index);
        s.set(cell.index, carry);
        lfsr_.set_state(std::move(s));
      }
      carry = cur;
    }
  }
}

BitVec OrapChip::scan_tail_bits() const {
  BitVec out(chains_.size());
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    // Tail = last non-bypassed cell.
    for (auto it = chains_[c].rbegin(); it != chains_[c].rend(); ++it) {
      if (cell_bypassed(*it, trojan_active_, opt_.trojan, false)) continue;
      out.set(c, it->kind == ScanCell::Kind::kStateFf
                     ? state_.get(it->index)
                     : lfsr_.state().get(it->index));
      break;
    }
  }
  return out;
}

BitVec OrapChip::capture(const BitVec& pi) {
  ORAP_CHECK_MSG(!scan_enable_, "capture requires scan-enable low");
  BitVec po, next;
  comb_eval(pi, effective_key(), &po, &next);
  state_ = std::move(next);
  return po;
}

std::size_t OrapChip::scan_image_size() const {
  std::size_t n = 0;
  for (const auto& chain : chains_)
    for (const ScanCell& cell : chain)
      if (!cell_bypassed(cell, trojan_active_, opt_.trojan, false)) ++n;
  return n;
}

std::optional<std::size_t> OrapChip::scan_image_position(
    ScanCell::Kind kind, std::size_t index) const {
  std::size_t pos = 0;
  for (const auto& chain : chains_) {
    for (const ScanCell& cell : chain) {
      if (cell_bypassed(cell, trojan_active_, opt_.trojan, false)) continue;
      if (cell.kind == kind && cell.index == index) return pos;
      ++pos;
    }
  }
  return std::nullopt;
}

void OrapChip::scan_load(const BitVec& image) {
  ORAP_CHECK_MSG(scan_enable_, "scan_load requires scan-enable high");
  ORAP_CHECK(image.size() == scan_image_size());
  // Semantically a full serial shift: every scannable cell takes its image
  // value (LFSR cells included — shifting clobbers them regardless of the
  // pulse-generator reset).
  std::size_t pos = 0;
  for (const auto& chain : chains_) {
    for (const ScanCell& cell : chain) {
      if (cell_bypassed(cell, trojan_active_, opt_.trojan, false)) continue;
      const bool v = image.get(pos++);
      if (cell.kind == ScanCell::Kind::kStateFf) {
        state_.set(cell.index, v);
      } else {
        BitVec s = lfsr_.state();
        s.set(cell.index, v);
        lfsr_.set_state(std::move(s));
      }
    }
  }
}

BitVec OrapChip::scan_unload() {
  ORAP_CHECK_MSG(scan_enable_, "scan_unload requires scan-enable high");
  BitVec image(scan_image_size());
  std::size_t pos = 0;
  for (const auto& chain : chains_) {
    for (const ScanCell& cell : chain) {
      if (cell_bypassed(cell, trojan_active_, opt_.trojan, false)) continue;
      const bool v = cell.kind == ScanCell::Kind::kStateFf
                         ? state_.get(cell.index)
                         : lfsr_.state().get(cell.index);
      image.set(pos++, v);
      // Serial unload shifts zeros in behind.
      if (cell.kind == ScanCell::Kind::kStateFf) {
        state_.set(cell.index, false);
      } else {
        BitVec s = lfsr_.state();
        s.set(cell.index, false);
        lfsr_.set_state(std::move(s));
      }
    }
  }
  return image;
}

void OrapChip::exit_test_mode() {
  scan_enable_ = false;
  run_unlock_protocol();
}

std::size_t OrapChip::unlock_cycles() const {
  std::size_t cycles = mem_sequence_.total_cycles();
  if (opt_.variant == OrapVariant::kModified) cycles += opt_.response_cycles;
  return cycles;
}

std::size_t OrapChip::tamper_memory_bits() const {
  return mem_sequence_.seeds.size() * mem_cfg_.num_reseed_points();
}

TrojanCost OrapChip::trojan_cost() const {
  const double n = static_cast<double>(lfsr_.config().size);
  TrojanCost tc;
  switch (opt_.trojan) {
    case TrojanKind::kNone:
      tc.description = "no trojan";
      break;
    case TrojanKind::kSuppressPulsePerCell:
      tc.gate_equivalents = kGeNandSwap * n;
      tc.description = "NAND2->NAND3 in every pulse generator";
      break;
    case TrojanKind::kBypassLfsrInScan:
      tc.gate_equivalents = 1.0 + kGeMux2 * n;
      tc.description = "scan-enable stem suppression + bypass MUX per cell";
      break;
    case TrojanKind::kShadowRegister:
      tc.gate_equivalents = (kGeFf + kGeMux2) * n;
      tc.description = "shadow FF + key MUX per cell";
      break;
    case TrojanKind::kXorTrees: {
      const Gf2Matrix m2 =
          key_transfer_matrix(mem_cfg_, mem_sequence_.seeds.size(),
                              mem_sequence_.gaps);
      const double seed_ffs = static_cast<double>(
          mem_sequence_.seeds.size() * mem_cfg_.num_reseed_points());
      tc.gate_equivalents = kGeFf * seed_ffs +
                            kGeXor2 * static_cast<double>(xor_tree_cost(m2)) +
                            kGeMux2 * n;
      tc.description =
          "per-seed registers + XOR trees from the LFSR transfer matrix + "
          "key MUX per cell";
      break;
    }
    case TrojanKind::kFreezeStateFfs:
      tc.gate_equivalents = 4.0;
      tc.description = "gate reset/enable of the state FFs during unlock";
      break;
    case TrojanKind::kReplayResponses: {
      // Record/replay storage: response_cycles x (response points) bits,
      // plus the freeze gating and per-point injection MUXes.
      const double bits = static_cast<double>(opt_.response_cycles) *
                          static_cast<double>(response_points_.size());
      tc.gate_equivalents =
          kGeFf * bits + kGeMux2 * static_cast<double>(response_points_.size()) +
          4.0;
      tc.description =
          "replay registers for the phase-1 response trajectory + "
          "injection MUXes + FF freeze";
      break;
    }
  }
  return tc;
}

BitVec scan_oracle_query(OrapChip& chip, const BitVec& data) {
  ORAP_CHECK(data.size() ==
             chip.num_pis() + chip.num_state_ffs());
  BitVec pi(chip.num_pis());
  for (std::size_t i = 0; i < chip.num_pis(); ++i) pi.set(i, data.get(i));

  chip.set_scan_enable(true);  // pulse: OraP clears the key register here
  BitVec image(chip.scan_image_size());
  for (std::size_t j = 0; j < chip.num_state_ffs(); ++j) {
    const auto pos = chip.scan_image_position(ScanCell::Kind::kStateFf, j);
    ORAP_CHECK(pos.has_value());
    image.set(*pos, data.get(chip.num_pis() + j));
  }
  chip.scan_load(image);

  chip.set_scan_enable(false);
  const BitVec po = chip.capture(pi);
  chip.set_scan_enable(true);
  const BitVec out_image = chip.scan_unload();

  BitVec result(chip.num_pos() + chip.num_state_ffs());
  for (std::size_t o = 0; o < chip.num_pos(); ++o) result.set(o, po.get(o));
  for (std::size_t j = 0; j < chip.num_state_ffs(); ++j) {
    const auto pos = chip.scan_image_position(ScanCell::Kind::kStateFf, j);
    ORAP_CHECK(pos.has_value());
    result.set(chip.num_pos() + j, out_image.get(*pos));
  }
  return result;
}

}  // namespace orap
