#include "netlist/netlist.h"

#include <algorithm>

namespace orap {

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::kConst0: return "CONST0";
    case GateType::kConst1: return "CONST1";
    case GateType::kInput: return "INPUT";
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kMux: return "MUX";
  }
  return "?";
}

bool gate_type_is_logic(GateType t) {
  return t != GateType::kConst0 && t != GateType::kConst1 &&
         t != GateType::kInput;
}

std::size_t gate_type_min_fanins(GateType t) {
  switch (t) {
    case GateType::kConst0:
    case GateType::kConst1:
    case GateType::kInput:
      return 0;
    case GateType::kBuf:
    case GateType::kNot:
      return 1;
    case GateType::kMux:
      return 3;
    default:
      return 2;
  }
}

GateId Netlist::push_gate(GateType type, std::span<const GateId> fanins,
                          std::string name) {
  const GateId id = static_cast<GateId>(types_.size());
  for (GateId f : fanins)
    ORAP_CHECK_MSG(f < id, "fanin " << f << " of gate " << id
                                    << " violates topological order");
  types_.push_back(type);
  if (fanin_off_.empty()) fanin_off_.push_back(0);
  fanin_pool_.insert(fanin_pool_.end(), fanins.begin(), fanins.end());
  fanin_off_.push_back(static_cast<std::uint32_t>(fanin_pool_.size()));
  names_.push_back(std::move(name));
  if (!names_.back().empty()) {
    auto [it, inserted] = by_name_.emplace(names_.back(), id);
    ORAP_CHECK_MSG(inserted, "duplicate gate name '" << names_.back() << "'");
    (void)it;
  }
  return id;
}

GateId Netlist::add_input(std::string name) {
  const GateId id = push_gate(GateType::kInput, {}, std::move(name));
  inputs_.push_back(id);
  return id;
}

GateId Netlist::add_const(bool value) {
  return push_gate(value ? GateType::kConst1 : GateType::kConst0, {}, {});
}

GateId Netlist::add_gate(GateType type, std::span<const GateId> fanins,
                         std::string name) {
  ORAP_CHECK_MSG(gate_type_is_logic(type),
                 "use add_input/add_const for non-logic gates");
  if (type == GateType::kMux)
    ORAP_CHECK_MSG(fanins.size() == 3, "MUX takes exactly 3 fanins");
  else
    ORAP_CHECK_MSG(fanins.size() >= gate_type_min_fanins(type),
                   gate_type_name(type) << " needs >= "
                                        << gate_type_min_fanins(type)
                                        << " fanins, got " << fanins.size());
  if (type == GateType::kBuf || type == GateType::kNot)
    ORAP_CHECK(fanins.size() == 1);
  return push_gate(type, fanins, std::move(name));
}

void Netlist::mark_output(GateId gate, std::string name) {
  ORAP_CHECK(gate < num_gates());
  if (name.empty()) {
    name = names_[gate].empty() ? ("po" + std::to_string(outputs_.size()))
                                : names_[gate];
  }
  outputs_.push_back(OutputPort{gate, std::move(name)});
}

void Netlist::set_output_gate(std::size_t output_idx, GateId gate) {
  ORAP_CHECK(output_idx < outputs_.size());
  ORAP_CHECK(gate < num_gates());
  outputs_[output_idx].gate = gate;
}

void Netlist::rename(GateId g, std::string name) {
  ORAP_CHECK(g < num_gates());
  if (!names_[g].empty()) by_name_.erase(names_[g]);
  names_[g] = std::move(name);
  if (!names_[g].empty()) {
    auto [it, inserted] = by_name_.emplace(names_[g], g);
    ORAP_CHECK_MSG(inserted, "duplicate gate name '" << names_[g] << "'");
    (void)it;
  }
}

std::size_t Netlist::input_index(GateId g) const {
  auto it = std::find(inputs_.begin(), inputs_.end(), g);
  return it == inputs_.end() ? static_cast<std::size_t>(-1)
                             : static_cast<std::size_t>(it - inputs_.begin());
}

GateId Netlist::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoGate : it->second;
}

std::size_t Netlist::gate_count_no_inverters() const {
  std::size_t n = 0;
  for (GateId g = 0; g < num_gates(); ++g) {
    const GateType t = types_[g];
    if (gate_type_is_logic(t) && t != GateType::kNot && t != GateType::kBuf)
      ++n;
  }
  return n;
}

std::size_t Netlist::logic_gate_count() const {
  std::size_t n = 0;
  for (GateId g = 0; g < num_gates(); ++g)
    if (gate_type_is_logic(types_[g])) ++n;
  return n;
}

void Netlist::validate() const {
  ORAP_CHECK(fanin_off_.empty() ? types_.empty()
                                : fanin_off_.size() == types_.size() + 1);
  for (GateId g = 0; g < num_gates(); ++g) {
    const auto fi = fanins(g);
    if (type(g) == GateType::kMux)
      ORAP_CHECK(fi.size() == 3);
    else
      ORAP_CHECK(fi.size() >= gate_type_min_fanins(type(g)));
    for (GateId f : fi) ORAP_CHECK(f < g);
  }
  for (const auto& po : outputs_) ORAP_CHECK(po.gate < num_gates());
  for (GateId in : inputs_) ORAP_CHECK(type(in) == GateType::kInput);
}

}  // namespace orap
