#pragma once
// Structural analyses over a Netlist: levelization (logic depth, the
// paper's delay metric), fanout counts, transitive-fanin cones, and summary
// statistics used by the benchmark generator and the evaluation pipeline.

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace orap {

/// Logic level of every gate. Inputs/constants are level 0; a gate is
/// 1 + max(fanin levels). Inverters and buffers are "free" (do not add a
/// level) to match the paper's level-count delay metric after resynthesis.
std::vector<std::uint32_t> compute_levels(const Netlist& n,
                                          bool inverters_free = true);

/// Depth of the whole circuit = max level over primary outputs.
std::uint32_t circuit_depth(const Netlist& n, bool inverters_free = true);

/// Fanout count per gate (number of gate fanin references + PO references).
std::vector<std::uint32_t> fanout_counts(const Netlist& n);

/// Marks the transitive fanin cone of `roots` (including the roots).
std::vector<bool> fanin_cone(const Netlist& n, std::span<const GateId> roots);

/// Extracts the cone of `roots` as a standalone netlist. Inputs of the
/// original that feed the cone become inputs of the extract; each root
/// becomes an output. `gate_map` (optional out) maps old id -> new id
/// (kNoGate when outside the cone).
Netlist extract_cone(const Netlist& n, std::span<const GateId> roots,
                     std::vector<GateId>* gate_map = nullptr);

struct NetlistStats {
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t gates_no_inv = 0;
  std::size_t gates_total = 0;
  std::uint32_t depth = 0;
  double avg_fanout = 0.0;
};

NetlistStats netlist_stats(const Netlist& n);

}  // namespace orap
