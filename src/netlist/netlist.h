#pragma once
// Gate-level combinational netlist IR.
//
// Gates are stored in topological order by construction (every fanin id is
// smaller than the gate's own id), which makes simulation, levelization and
// Tseitin encoding single linear passes. Multi-input AND/OR/NAND/NOR/XOR/
// XNOR are supported, matching the ISCAS .bench format; XOR/XNOR with k
// inputs compute (negated) parity.

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace orap {

using GateId = std::uint32_t;
inline constexpr GateId kNoGate = 0xffffffffu;

enum class GateType : std::uint8_t {
  kConst0,
  kConst1,
  kInput,
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kMux,  // fanins {s, d0, d1}: s ? d1 : d0
};

/// Gate-type helpers.
const char* gate_type_name(GateType t);
bool gate_type_is_logic(GateType t);  // false for const/input
std::size_t gate_type_min_fanins(GateType t);

/// A primary output: a reference to a driving gate plus a port name.
struct OutputPort {
  GateId gate = kNoGate;
  std::string name;
};

class Netlist {
 public:
  Netlist() = default;

  /// Module-level name (benchmark circuit name).
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // --- construction ------------------------------------------------------

  GateId add_input(std::string name);
  GateId add_const(bool value);
  GateId add_gate(GateType type, std::span<const GateId> fanins,
                  std::string name = {});
  GateId add_gate(GateType type, std::initializer_list<GateId> fanins,
                  std::string name = {}) {
    return add_gate(type, std::span<const GateId>(fanins.begin(), fanins.size()),
                    std::move(name));
  }
  /// Convenience two-input / one-input builders.
  GateId add_not(GateId a, std::string name = {}) {
    return add_gate(GateType::kNot, {a}, std::move(name));
  }
  GateId add_and2(GateId a, GateId b) { return add_gate(GateType::kAnd, {a, b}); }
  GateId add_or2(GateId a, GateId b) { return add_gate(GateType::kOr, {a, b}); }
  GateId add_xor2(GateId a, GateId b) { return add_gate(GateType::kXor, {a, b}); }

  void mark_output(GateId gate, std::string name = {});

  /// Redirects an existing output port to a different driving gate
  /// (used by locking schemes that XOR corruption logic into a PO).
  void set_output_gate(std::size_t output_idx, GateId gate);

  /// Renames a gate (updates the name->id index).
  void rename(GateId g, std::string name);

  // --- structure ---------------------------------------------------------

  std::size_t num_gates() const { return types_.size(); }
  GateType type(GateId g) const { return types_[g]; }
  std::span<const GateId> fanins(GateId g) const {
    return {fanin_pool_.data() + fanin_off_[g], fanin_off_[g + 1] - fanin_off_[g]};
  }
  std::size_t num_fanins(GateId g) const {
    return fanin_off_[g + 1] - fanin_off_[g];
  }
  const std::string& gate_name(GateId g) const { return names_[g]; }

  const std::vector<GateId>& inputs() const { return inputs_; }
  const std::vector<OutputPort>& outputs() const { return outputs_; }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }

  /// Index of an input gate within inputs(), or SIZE_MAX.
  std::size_t input_index(GateId g) const;

  /// Gate id by name; kNoGate if absent.
  GateId find(const std::string& name) const;

  /// Number of logic gates excluding inverters and buffers — the gate-count
  /// metric used by the paper's Table I ("# Gates" column counts gates
  /// without inverters).
  std::size_t gate_count_no_inverters() const;

  /// Total logic gates (excluding inputs/constants), including inverters.
  std::size_t logic_gate_count() const;

  /// Validates all internal invariants (topological fanins, arity, output
  /// references). Throws CheckError on violation.
  void validate() const;

 private:
  GateId push_gate(GateType type, std::span<const GateId> fanins,
                   std::string name);

  std::string name_;
  std::vector<GateType> types_;
  std::vector<std::uint32_t> fanin_off_;  // size num_gates()+1
  std::vector<GateId> fanin_pool_;
  std::vector<std::string> names_;
  std::vector<GateId> inputs_;
  std::vector<OutputPort> outputs_;
  std::unordered_map<std::string, GateId> by_name_;
};

}  // namespace orap
