#include "netlist/simulator.h"

namespace orap {

std::uint64_t eval_gate_word(GateType type, std::span<const std::uint64_t> in) {
  switch (type) {
    case GateType::kConst0:
      return 0;
    case GateType::kConst1:
      return ~0ULL;
    case GateType::kInput:
      return 0;  // inputs are set externally; reached only if unset
    case GateType::kBuf:
      return in[0];
    case GateType::kNot:
      return ~in[0];
    case GateType::kAnd: {
      std::uint64_t v = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) v &= in[i];
      return v;
    }
    case GateType::kNand: {
      std::uint64_t v = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) v &= in[i];
      return ~v;
    }
    case GateType::kOr: {
      std::uint64_t v = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) v |= in[i];
      return v;
    }
    case GateType::kNor: {
      std::uint64_t v = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) v |= in[i];
      return ~v;
    }
    case GateType::kXor: {
      std::uint64_t v = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) v ^= in[i];
      return v;
    }
    case GateType::kXnor: {
      std::uint64_t v = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) v ^= in[i];
      return ~v;
    }
    case GateType::kMux:
      return (in[0] & in[2]) | (~in[0] & in[1]);
  }
  return 0;
}

void Simulator::broadcast_inputs(const BitVec& pattern) {
  ORAP_CHECK(pattern.size() == n_.num_inputs());
  for (std::size_t i = 0; i < n_.num_inputs(); ++i)
    values_[n_.inputs()[i]] = pattern.get(i) ? ~0ULL : 0ULL;
}

void Simulator::run() {
  std::uint64_t buf[64];
  for (GateId g = 0; g < n_.num_gates(); ++g) {
    const GateType t = n_.type(g);
    if (t == GateType::kInput) continue;
    const auto fi = n_.fanins(g);
    if (fi.size() <= 64) {
      for (std::size_t i = 0; i < fi.size(); ++i) buf[i] = values_[fi[i]];
      values_[g] = eval_gate_word(t, {buf, fi.size()});
    } else {
      wide_buf_.resize(fi.size());
      for (std::size_t i = 0; i < fi.size(); ++i) wide_buf_[i] = values_[fi[i]];
      values_[g] = eval_gate_word(t, {wide_buf_.data(), fi.size()});
    }
  }
}

BitVec Simulator::run_single(const BitVec& pattern) {
  broadcast_inputs(pattern);
  run();
  BitVec out(n_.num_outputs());
  for (std::size_t o = 0; o < n_.num_outputs(); ++o)
    out.set(o, (output_word(o) & 1ULL) != 0);
  return out;
}

}  // namespace orap
