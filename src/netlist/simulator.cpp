#include "netlist/simulator.h"

#include "util/simd.h"

namespace orap {

std::uint64_t eval_gate_word(GateType type, std::span<const std::uint64_t> in) {
  switch (type) {
    case GateType::kConst0:
      return 0;
    case GateType::kConst1:
      return ~0ULL;
    case GateType::kInput:
      return 0;  // inputs are set externally; reached only if unset
    case GateType::kBuf:
      return in[0];
    case GateType::kNot:
      return ~in[0];
    case GateType::kAnd: {
      std::uint64_t v = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) v &= in[i];
      return v;
    }
    case GateType::kNand: {
      std::uint64_t v = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) v &= in[i];
      return ~v;
    }
    case GateType::kOr: {
      std::uint64_t v = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) v |= in[i];
      return v;
    }
    case GateType::kNor: {
      std::uint64_t v = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) v |= in[i];
      return ~v;
    }
    case GateType::kXor: {
      std::uint64_t v = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) v ^= in[i];
      return v;
    }
    case GateType::kXnor: {
      std::uint64_t v = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) v ^= in[i];
      return ~v;
    }
    case GateType::kMux:
      return (in[0] & in[2]) | (~in[0] & in[1]);
  }
  return 0;
}

void eval_gate_block(GateType type, const std::uint64_t* const* in,
                     std::size_t nf, std::uint64_t* dst, std::size_t w) {
  switch (type) {
    case GateType::kConst0:
    case GateType::kInput:
      for (std::size_t j = 0; j < w; ++j) dst[j] = 0;
      return;
    case GateType::kConst1:
      for (std::size_t j = 0; j < w; ++j) dst[j] = ~0ULL;
      return;
    case GateType::kBuf:
      for (std::size_t j = 0; j < w; ++j) dst[j] = in[0][j];
      return;
    case GateType::kNot:
      simd::vnot(dst, in[0], w);
      return;
    case GateType::kAnd:
    case GateType::kNand:
      for (std::size_t j = 0; j < w; ++j) dst[j] = in[0][j];
      for (std::size_t i = 1; i < nf; ++i) simd::vand(dst, dst, in[i], w);
      if (type == GateType::kNand) simd::vnot(dst, dst, w);
      return;
    case GateType::kOr:
    case GateType::kNor:
      for (std::size_t j = 0; j < w; ++j) dst[j] = in[0][j];
      for (std::size_t i = 1; i < nf; ++i) simd::vor(dst, dst, in[i], w);
      if (type == GateType::kNor) simd::vnot(dst, dst, w);
      return;
    case GateType::kXor:
    case GateType::kXnor:
      for (std::size_t j = 0; j < w; ++j) dst[j] = in[0][j];
      for (std::size_t i = 1; i < nf; ++i) simd::vxor(dst, dst, in[i], w);
      if (type == GateType::kXnor) simd::vnot(dst, dst, w);
      return;
    case GateType::kMux:
      simd::vmux(dst, in[0], in[1], in[2], w);
      return;
  }
}

void Simulator::broadcast_inputs(const BitVec& pattern) {
  ORAP_CHECK(pattern.size() == n_.num_inputs());
  for (std::size_t i = 0; i < n_.num_inputs(); ++i) {
    const std::uint64_t v = pattern.get(i) ? ~0ULL : 0ULL;
    std::uint64_t* dst = &values_[n_.inputs()[i] * w_];
    for (std::size_t j = 0; j < w_; ++j) dst[j] = v;
  }
}

void Simulator::run() {
  if (w_ == 1) {
    // Single-word mode: the historical hot loop, untouched.
    std::uint64_t buf[64];
    for (GateId g = 0; g < n_.num_gates(); ++g) {
      const GateType t = n_.type(g);
      if (t == GateType::kInput) continue;
      const auto fi = n_.fanins(g);
      if (fi.size() <= 64) {
        for (std::size_t i = 0; i < fi.size(); ++i) buf[i] = values_[fi[i]];
        values_[g] = eval_gate_word(t, {buf, fi.size()});
      } else {
        wide_buf_.resize(fi.size());
        for (std::size_t i = 0; i < fi.size(); ++i)
          wide_buf_[i] = values_[fi[i]];
        values_[g] = eval_gate_word(t, {wide_buf_.data(), fi.size()});
      }
    }
    return;
  }
  // Block mode: one multi-word step per gate. A gate's block never
  // aliases a fanin block (fanins have strictly smaller gate ids).
  const std::uint64_t* ptrs[64];
  for (GateId g = 0; g < n_.num_gates(); ++g) {
    const GateType t = n_.type(g);
    if (t == GateType::kInput) continue;
    const auto fi = n_.fanins(g);
    std::uint64_t* dst = &values_[g * w_];
    if (fi.size() <= 64) {
      for (std::size_t i = 0; i < fi.size(); ++i)
        ptrs[i] = &values_[fi[i] * w_];
      eval_gate_block(t, ptrs, fi.size(), dst, w_);
    } else {
      ptr_buf_.resize(fi.size());
      for (std::size_t i = 0; i < fi.size(); ++i)
        ptr_buf_[i] = &values_[fi[i] * w_];
      eval_gate_block(t, ptr_buf_.data(), fi.size(), dst, w_);
    }
  }
}

BitVec Simulator::run_single(const BitVec& pattern) {
  broadcast_inputs(pattern);
  run();
  BitVec out(n_.num_outputs());
  for (std::size_t o = 0; o < n_.num_outputs(); ++o)
    out.set(o, (output_word(o) & 1ULL) != 0);
  return out;
}

}  // namespace orap
