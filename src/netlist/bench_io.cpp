#include "netlist/bench_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace orap {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

struct Decl {
  std::string op;                   // AND, DFF, ...
  std::vector<std::string> args;    // fanin signal names
};

GateType op_to_type(const std::string& op) {
  if (op == "AND") return GateType::kAnd;
  if (op == "NAND") return GateType::kNand;
  if (op == "OR") return GateType::kOr;
  if (op == "NOR") return GateType::kNor;
  if (op == "XOR") return GateType::kXor;
  if (op == "XNOR") return GateType::kXnor;
  if (op == "NOT" || op == "INV") return GateType::kNot;
  if (op == "BUF" || op == "BUFF") return GateType::kBuf;
  if (op == "MUX") return GateType::kMux;
  ORAP_CHECK_MSG(false, "unknown .bench gate type '" << op << "'");
  return GateType::kBuf;
}

}  // namespace

Netlist read_bench(std::istream& is, std::string circuit_name) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::unordered_map<std::string, Decl> decls;
  std::vector<std::string> decl_order;

  std::string line;
  while (std::getline(is, line)) {
    if (auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;

    const auto lpar = line.find('(');
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      ORAP_CHECK_MSG(lpar != std::string::npos && line.back() == ')',
                     "malformed .bench line: " << line);
      const std::string kw = upper(trim(line.substr(0, lpar)));
      const std::string sig = trim(line.substr(lpar + 1, line.size() - lpar - 2));
      if (kw == "INPUT")
        input_names.push_back(sig);
      else if (kw == "OUTPUT")
        output_names.push_back(sig);
      else
        ORAP_CHECK_MSG(false, "unknown .bench directive: " << line);
      continue;
    }

    // name = OP(a, b, ...)
    const std::string lhs = trim(line.substr(0, eq));
    std::string rhs = trim(line.substr(eq + 1));
    const auto rlpar = rhs.find('(');
    ORAP_CHECK_MSG(rlpar != std::string::npos && rhs.back() == ')',
                   "malformed .bench line: " << line);
    Decl d;
    d.op = upper(trim(rhs.substr(0, rlpar)));
    std::string args = rhs.substr(rlpar + 1, rhs.size() - rlpar - 2);
    std::stringstream as(args);
    std::string tok;
    while (std::getline(as, tok, ',')) {
      tok = trim(tok);
      if (!tok.empty()) d.args.push_back(tok);
    }
    ORAP_CHECK_MSG(!decls.count(lhs), "signal '" << lhs << "' driven twice");
    decls.emplace(lhs, std::move(d));
    decl_order.push_back(lhs);
  }

  Netlist n;
  n.set_name(std::move(circuit_name));

  std::unordered_map<std::string, GateId> id_of;
  // Primary inputs first, then DFF outputs as pseudo-PIs (stable order).
  for (const auto& in : input_names) id_of[in] = n.add_input(in);
  std::vector<std::string> dff_signals;
  for (const auto& sig : decl_order)
    if (decls.at(sig).op == "DFF") dff_signals.push_back(sig);
  for (const auto& sig : dff_signals) {
    ORAP_CHECK_MSG(!id_of.count(sig), "DFF output '" << sig << "' also a PI");
    id_of[sig] = n.add_input(sig);
  }

  // Iterative topological elaboration of combinational gates.
  std::vector<std::pair<std::string, std::size_t>> stack;  // (signal, next fanin)
  auto elaborate = [&](const std::string& root) {
    if (id_of.count(root)) return;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [sig, next] = stack.back();
      auto dit = decls.find(sig);
      ORAP_CHECK_MSG(dit != decls.end(), "undriven signal '" << sig << "'");
      const Decl& d = dit->second;
      ORAP_CHECK_MSG(d.op != "DFF", "DFF reached in elaboration");
      if (next < d.args.size()) {
        const std::string& fan = d.args[next];
        ++next;
        if (!id_of.count(fan)) {
          ORAP_CHECK_MSG(stack.size() < decls.size() + 2,
                         "combinational cycle near '" << fan << "'");
          stack.emplace_back(fan, 0);
        }
        continue;
      }
      std::vector<GateId> fi;
      fi.reserve(d.args.size());
      for (const auto& a : d.args) fi.push_back(id_of.at(a));
      id_of[sig] = n.add_gate(op_to_type(d.op), fi, sig);
      stack.pop_back();
    }
  };

  for (const auto& out : output_names) elaborate(out);
  for (const auto& sig : dff_signals) {
    const Decl& d = decls.at(sig);
    ORAP_CHECK_MSG(d.args.size() == 1, "DFF takes exactly one data input");
    elaborate(d.args[0]);
  }

  // Real POs first, then DFF data inputs as pseudo-POs.
  for (const auto& out : output_names) {
    ORAP_CHECK_MSG(id_of.count(out), "undriven primary output '" << out << "'");
    n.mark_output(id_of.at(out), out);
  }
  for (const auto& sig : dff_signals)
    n.mark_output(id_of.at(decls.at(sig).args[0]), sig + "_next");

  n.validate();
  return n;
}

Netlist read_bench_string(const std::string& text, std::string circuit_name) {
  std::istringstream is(text);
  return read_bench(is, std::move(circuit_name));
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream is(path);
  ORAP_CHECK_MSG(is.good(), "cannot open .bench file: " << path);
  std::string name = path;
  if (auto slash = name.find_last_of('/'); slash != std::string::npos)
    name.erase(0, slash + 1);
  if (auto dot = name.find_last_of('.'); dot != std::string::npos)
    name.erase(dot);
  return read_bench(is, name);
}

void write_bench(const Netlist& n, std::ostream& os) {
  os << "# " << n.name() << " — written by orap\n";
  auto sig = [&](GateId g) {
    const std::string& nm = n.gate_name(g);
    return nm.empty() ? ("g" + std::to_string(g)) : nm;
  };
  for (GateId in : n.inputs()) os << "INPUT(" << sig(in) << ")\n";
  // A PO whose name differs from its driver needs a BUF alias.
  std::vector<std::pair<std::string, std::string>> aliases;
  for (const auto& po : n.outputs()) {
    if (po.name == sig(po.gate)) {
      os << "OUTPUT(" << po.name << ")\n";
    } else {
      os << "OUTPUT(" << po.name << ")\n";
      aliases.emplace_back(po.name, sig(po.gate));
    }
  }
  for (GateId g = 0; g < n.num_gates(); ++g) {
    const GateType t = n.type(g);
    if (!gate_type_is_logic(t)) {
      if (t == GateType::kConst0 || t == GateType::kConst1) {
        // .bench has no constants; derive one from the first PI.
        ORAP_CHECK_MSG(!n.inputs().empty(),
                       "cannot serialize constants without any input");
        const std::string in0 = sig(n.inputs()[0]);
        const std::string s = sig(g);
        os << s << "_n = NOT(" << in0 << ")\n";
        if (t == GateType::kConst0)
          os << s << " = AND(" << in0 << ", " << s << "_n)\n";
        else
          os << s << " = OR(" << in0 << ", " << s << "_n)\n";
      }
      continue;
    }
    const auto fi = n.fanins(g);
    if (t == GateType::kMux) {
      // MUX(s,d0,d1) = OR(AND(NOT(s),d0), AND(s,d1))
      const std::string s = sig(g);
      os << s << "_ns = NOT(" << sig(fi[0]) << ")\n";
      os << s << "_a0 = AND(" << s << "_ns, " << sig(fi[1]) << ")\n";
      os << s << "_a1 = AND(" << sig(fi[0]) << ", " << sig(fi[2]) << ")\n";
      os << s << " = OR(" << s << "_a0, " << s << "_a1)\n";
      continue;
    }
    os << sig(g) << " = " << gate_type_name(t) << "(";
    for (std::size_t i = 0; i < fi.size(); ++i)
      os << (i ? ", " : "") << sig(fi[i]);
    os << ")\n";
  }
  for (const auto& [alias, driver] : aliases)
    os << alias << " = BUF(" << driver << ")\n";
}

std::string write_bench_string(const Netlist& n) {
  std::ostringstream os;
  write_bench(n, os);
  return os.str();
}

}  // namespace orap
