#pragma once
// Structural Verilog writer: exports a combinational netlist as a
// gate-primitive module (and/or/nand/nor/xor/xnor/not/buf + assign-based
// MUX), so locked designs can flow into external synthesis/PD tools.

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace orap {

/// Writes `n` as a synthesizable structural Verilog module named after
/// the netlist (sanitized to a legal identifier).
void write_verilog(const Netlist& n, std::ostream& os);
std::string write_verilog_string(const Netlist& n);

}  // namespace orap
