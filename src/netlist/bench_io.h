#pragma once
// ISCAS/ITC ".bench" format reader and writer.
//
// The reader accepts sequential benchmarks (DFF cells): following standard
// practice for combinational logic locking (and the paper, which locks "the
// combinational part" of the benchmarks), every DFF output becomes a
// pseudo primary input and every DFF data input becomes a pseudo primary
// output, yielding the combinational core.

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace orap {

/// Parses a .bench description. Throws CheckError on malformed input.
Netlist read_bench(std::istream& is, std::string circuit_name = "bench");
Netlist read_bench_string(const std::string& text,
                          std::string circuit_name = "bench");
Netlist read_bench_file(const std::string& path);

/// Serializes a combinational netlist to .bench. Gates without names get
/// synthetic ones (g<N>). MUX gates are expanded to AND/OR/NOT.
void write_bench(const Netlist& n, std::ostream& os);
std::string write_bench_string(const Netlist& n);

}  // namespace orap
