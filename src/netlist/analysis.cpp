#include "netlist/analysis.h"

#include <algorithm>

namespace orap {

std::vector<std::uint32_t> compute_levels(const Netlist& n, bool inverters_free) {
  std::vector<std::uint32_t> level(n.num_gates(), 0);
  for (GateId g = 0; g < n.num_gates(); ++g) {
    const GateType t = n.type(g);
    if (!gate_type_is_logic(t)) continue;
    std::uint32_t m = 0;
    for (GateId f : n.fanins(g)) m = std::max(m, level[f]);
    const bool free_gate =
        inverters_free && (t == GateType::kNot || t == GateType::kBuf);
    level[g] = m + (free_gate ? 0u : 1u);
  }
  return level;
}

std::uint32_t circuit_depth(const Netlist& n, bool inverters_free) {
  const auto level = compute_levels(n, inverters_free);
  std::uint32_t d = 0;
  for (const auto& po : n.outputs()) d = std::max(d, level[po.gate]);
  return d;
}

std::vector<std::uint32_t> fanout_counts(const Netlist& n) {
  std::vector<std::uint32_t> fo(n.num_gates(), 0);
  for (GateId g = 0; g < n.num_gates(); ++g)
    for (GateId f : n.fanins(g)) ++fo[f];
  for (const auto& po : n.outputs()) ++fo[po.gate];
  return fo;
}

std::vector<bool> fanin_cone(const Netlist& n, std::span<const GateId> roots) {
  std::vector<bool> in_cone(n.num_gates(), false);
  std::vector<GateId> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    if (in_cone[g]) continue;
    in_cone[g] = true;
    for (GateId f : n.fanins(g))
      if (!in_cone[f]) stack.push_back(f);
  }
  return in_cone;
}

Netlist extract_cone(const Netlist& n, std::span<const GateId> roots,
                     std::vector<GateId>* gate_map) {
  const auto in_cone = fanin_cone(n, roots);
  Netlist out;
  out.set_name(n.name() + "_cone");
  std::vector<GateId> map(n.num_gates(), kNoGate);
  for (GateId g = 0; g < n.num_gates(); ++g) {
    if (!in_cone[g]) continue;
    const GateType t = n.type(g);
    if (t == GateType::kInput) {
      map[g] = out.add_input(n.gate_name(g));
    } else if (t == GateType::kConst0 || t == GateType::kConst1) {
      map[g] = out.add_const(t == GateType::kConst1);
    } else {
      std::vector<GateId> fi;
      fi.reserve(n.num_fanins(g));
      for (GateId f : n.fanins(g)) {
        ORAP_DCHECK(map[f] != kNoGate);
        fi.push_back(map[f]);
      }
      map[g] = out.add_gate(t, fi, n.gate_name(g));
    }
  }
  for (GateId r : roots) out.mark_output(map[r]);
  if (gate_map != nullptr) *gate_map = std::move(map);
  return out;
}

NetlistStats netlist_stats(const Netlist& n) {
  NetlistStats s;
  s.inputs = n.num_inputs();
  s.outputs = n.num_outputs();
  s.gates_no_inv = n.gate_count_no_inverters();
  s.gates_total = n.logic_gate_count();
  s.depth = circuit_depth(n);
  const auto fo = fanout_counts(n);
  std::uint64_t total = 0;
  std::size_t cnt = 0;
  for (GateId g = 0; g < n.num_gates(); ++g) {
    if (!gate_type_is_logic(n.type(g)) && n.type(g) != GateType::kInput)
      continue;
    total += fo[g];
    ++cnt;
  }
  s.avg_fanout = cnt == 0 ? 0.0 : static_cast<double>(total) / cnt;
  return s;
}

}  // namespace orap
