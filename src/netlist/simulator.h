#pragma once
// 64-way bit-parallel combinational simulator.
//
// A "word" carries 64 independent patterns; the simulator evaluates the
// whole netlist with one pass of word-wide boolean ops. This is the engine
// behind the Hamming-distance corruptibility measurements of Table I and
// the pseudorandom phase of the Table II fault-simulation flow.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace orap {

/// Evaluates one gate given already-computed fanin words.
std::uint64_t eval_gate_word(GateType type, std::span<const std::uint64_t> in);

class Simulator {
 public:
  explicit Simulator(const Netlist& n) : n_(n), values_(n.num_gates()) {}

  /// Sets the 64-pattern word of input #i (position in netlist.inputs()).
  void set_input_word(std::size_t input_idx, std::uint64_t w) {
    values_[n_.inputs()[input_idx]] = w;
  }

  /// Random words on all inputs.
  void randomize_inputs(Rng& rng) {
    for (GateId in : n_.inputs()) values_[in] = rng.word();
  }

  /// Broadcast a single pattern (bit b of input i = pattern[i]) to all lanes.
  void broadcast_inputs(const BitVec& pattern);

  /// Evaluates every gate in topological order.
  void run();

  std::uint64_t value(GateId g) const { return values_[g]; }
  std::uint64_t output_word(std::size_t out_idx) const {
    return values_[n_.outputs()[out_idx].gate];
  }

  /// Single-pattern convenience: applies `pattern` (one bit per input) and
  /// returns one bit per output.
  BitVec run_single(const BitVec& pattern);

  std::span<const std::uint64_t> values() const { return values_; }
  std::span<std::uint64_t> mutable_values() { return values_; }

  const Netlist& netlist() const { return n_; }

 private:
  const Netlist& n_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> wide_buf_;  // scratch for >64-fanin gates
};

}  // namespace orap
