#pragma once
// Bit-parallel combinational simulator.
//
// A "word" carries 64 independent patterns; the simulator evaluates the
// whole netlist with one pass of word-wide boolean ops. This is the engine
// behind the Hamming-distance corruptibility measurements of Table I and
// the pseudorandom phase of the Table II fault-simulation flow.
//
// Block mode: constructed with block_words = W > 1 the simulator carries
// W words (64*W patterns) per gate and evaluates each gate over the whole
// block in one step — a contiguous multi-word loop the compiler can
// vectorize, routed through the util/simd.h kernels (AVX2 when available,
// scalar otherwise; both bit-identical). W = 1 is the historical layout
// and behavior, bit for bit.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace orap {

/// Evaluates one gate given already-computed fanin words.
std::uint64_t eval_gate_word(GateType type, std::span<const std::uint64_t> in);

/// Block-wise gate evaluation: `in` holds `nf` fanin block pointers, each
/// a `w`-word lane bundle; `dst` (w words) receives the gate's output
/// block. dst must not alias any fanin block.
void eval_gate_block(GateType type, const std::uint64_t* const* in,
                     std::size_t nf, std::uint64_t* dst, std::size_t w);

class Simulator {
 public:
  explicit Simulator(const Netlist& n, std::size_t block_words = 1)
      : n_(n),
        w_(block_words == 0 ? 1 : block_words),
        values_(n.num_gates() * (block_words == 0 ? 1 : block_words)) {}

  /// Words per gate block (1 = classic single-word mode).
  std::size_t block_words() const { return w_; }

  /// Sets the first 64-pattern word of input #i (position in
  /// netlist.inputs()). In block mode the other lanes are untouched.
  void set_input_word(std::size_t input_idx, std::uint64_t w) {
    values_[n_.inputs()[input_idx] * w_] = w;
  }

  /// Sets the whole block (w_ words) of input #i.
  void set_input_block(std::size_t input_idx,
                       std::span<const std::uint64_t> block) {
    ORAP_DCHECK(block.size() == w_);
    std::uint64_t* dst = &values_[n_.inputs()[input_idx] * w_];
    for (std::size_t j = 0; j < w_; ++j) dst[j] = block[j];
  }

  /// Random words on all inputs (every lane of every block).
  void randomize_inputs(Rng& rng) {
    for (GateId in : n_.inputs())
      for (std::size_t j = 0; j < w_; ++j) values_[in * w_ + j] = rng.word();
  }

  /// Broadcast a single pattern (bit b of input i = pattern[i]) to all
  /// lanes of all blocks.
  void broadcast_inputs(const BitVec& pattern);

  /// Evaluates every gate in topological order.
  void run();

  std::uint64_t value(GateId g) const { return values_[g * w_]; }
  std::span<const std::uint64_t> value_block(GateId g) const {
    return {&values_[g * w_], w_};
  }
  std::uint64_t output_word(std::size_t out_idx) const {
    return values_[n_.outputs()[out_idx].gate * w_];
  }
  std::span<const std::uint64_t> output_block(std::size_t out_idx) const {
    return value_block(n_.outputs()[out_idx].gate);
  }

  /// Single-pattern convenience: applies `pattern` (one bit per input) and
  /// returns one bit per output.
  BitVec run_single(const BitVec& pattern);

  /// Raw value buffer: gate g's block occupies [g * block_words(),
  /// (g+1) * block_words()).
  std::span<const std::uint64_t> values() const { return values_; }
  std::span<std::uint64_t> mutable_values() { return values_; }

  const Netlist& netlist() const { return n_; }

 private:
  const Netlist& n_;
  std::size_t w_ = 1;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> wide_buf_;  // scratch for >64-fanin gates
  std::vector<const std::uint64_t*> ptr_buf_;  // block-mode fanin pointers
};

}  // namespace orap
