#pragma once
// Tseitin encoding of a Netlist into a ClauseSink (a sat::Solver or a
// PortfolioSolver fanning out to N diversified instances).
//
// Every gate gets one variable; gate semantics become clauses. Multiple
// independent copies of the same circuit can be encoded into one solver
// (the SAT attack's two-key miter), optionally sharing the input variables.

#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "sat/solver.h"

namespace orap::sat {

/// Variable map for one encoded circuit copy.
struct CircuitVars {
  std::vector<Var> gate;     // indexed by GateId
  std::vector<Var> inputs;   // convenience: vars of netlist.inputs()
  std::vector<Var> outputs;  // convenience: vars of netlist.outputs()
};

class Encoder {
 public:
  explicit Encoder(ClauseSink& s) : s_(s) {}

  /// Encodes a full copy of `n`. If `shared_inputs` is non-empty it must
  /// have one entry per netlist input; kNoVar entries get fresh variables.
  static constexpr Var kNoVar = -1;
  CircuitVars encode(const Netlist& n,
                     const std::vector<Var>& shared_inputs = {});

  /// Encodes one gate's function onto existing fanin vars; returns the
  /// gate's output var (fresh).
  Var encode_gate(GateType type, const std::vector<Var>& fanins);

  /// XOR constraint out = a ^ b on existing vars.
  Var encode_xor2(Var a, Var b);

  // --- literal-level variants ----------------------------------------------
  // Same Tseitin shapes as encode_gate / encode_xor2, but the fanins are
  // literals: the constant-folding incremental encoder
  // (attacks/encode_util.h) resolves buffers, inverters and controlling
  // constants to (possibly negated) existing literals and only encodes the
  // residual gates. Each returns pos(v) of a fresh variable v equal to the
  // gate's output (`invert` selects the NAND/NOR sense of that output).

  Lit encode_and_lits(std::span<const Lit> fanins, bool invert = false);
  Lit encode_or_lits(std::span<const Lit> fanins, bool invert = false);
  Lit encode_xor2_lit(Lit a, Lit b);
  Lit encode_mux_lit(Lit s, Lit d0, Lit d1);

  /// Adds clauses forcing vector equality / inequality of two var vectors.
  void force_equal(const std::vector<Var>& a, const std::vector<Var>& b);
  /// out-difference: at least one position differs (adds a miter).
  void force_not_equal(const std::vector<Var>& a, const std::vector<Var>& b);

  ClauseSink& sink() { return s_; }

 private:
  ClauseSink& s_;
  std::vector<Lit> big_;  // encode_gate scratch (no per-gate allocation)
};

}  // namespace orap::sat
