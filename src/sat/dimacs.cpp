#include "sat/dimacs.h"

#include <ostream>
#include <sstream>

#include "util/check.h"

namespace orap::sat {

bool Cnf::load_into(ClauseSink& s) const {
  while (s.num_vars() < num_vars) s.new_var();
  bool ok = true;
  for (const auto& cl : clauses) ok &= s.add_clause(cl);
  return ok;
}

Cnf read_dimacs(std::istream& is) {
  Cnf cnf;
  bool header_seen = false;
  std::size_t expected_clauses = 0;
  std::vector<Lit> current;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream hs(line);
      std::string p, fmt;
      long long v = 0, c = 0;
      hs >> p >> fmt >> v >> c;
      ORAP_CHECK_MSG(fmt == "cnf" && v >= 0 && c >= 0,
                     "malformed DIMACS header: " << line);
      cnf.num_vars = static_cast<std::size_t>(v);
      expected_clauses = static_cast<std::size_t>(c);
      header_seen = true;
      continue;
    }
    ORAP_CHECK_MSG(header_seen, "clause before DIMACS header");
    std::istringstream ls(line);
    long long x;
    while (ls >> x) {
      if (x == 0) {
        cnf.clauses.push_back(current);
        current.clear();
        continue;
      }
      const auto v = static_cast<Var>(std::llabs(x) - 1);
      ORAP_CHECK_MSG(static_cast<std::size_t>(v) < cnf.num_vars,
                     "literal " << x << " exceeds declared variable count");
      current.push_back(Lit(v, x < 0));
    }
  }
  ORAP_CHECK_MSG(current.empty(), "unterminated clause at end of DIMACS");
  ORAP_CHECK_MSG(expected_clauses == 0 ||
                     cnf.clauses.size() == expected_clauses,
                 "clause count mismatch: header says "
                     << expected_clauses << ", found " << cnf.clauses.size());
  return cnf;
}

Cnf read_dimacs_string(const std::string& text) {
  std::istringstream is(text);
  return read_dimacs(is);
}

void write_dimacs(const Cnf& cnf, std::ostream& os) {
  os << "p cnf " << cnf.num_vars << ' ' << cnf.clauses.size() << '\n';
  for (const auto& cl : cnf.clauses) {
    for (const Lit l : cl)
      os << (l.sign() ? -(static_cast<long long>(l.var()) + 1)
                      : static_cast<long long>(l.var()) + 1)
         << ' ';
    os << "0\n";
  }
}

std::string write_dimacs_string(const Cnf& cnf) {
  std::ostringstream os;
  write_dimacs(cnf, os);
  return os.str();
}

}  // namespace orap::sat
