#pragma once
// CDCL SAT solver (MiniSat lineage), built from scratch for this project.
//
// Features: two-watched-literal propagation, VSIDS decision heuristic with
// phase saving, first-UIP conflict analysis with recursive clause
// minimization, Luby restarts, activity-driven learnt-clause reduction,
// solving under assumptions, and a conflict budget (the ATPG "aborted
// fault" mechanism and the SAT-attack iteration cap).

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace orap::sat {

using Var = std::int32_t;

/// Literal: variable + polarity, encoded as 2*var+sign (sign=1 negated).
class Lit {
 public:
  Lit() : x_(-2) {}
  Lit(Var v, bool negated) : x_(2 * v + (negated ? 1 : 0)) {}

  static Lit from_index(std::int32_t idx) {
    Lit l;
    l.x_ = idx;
    return l;
  }

  Var var() const { return x_ >> 1; }
  bool sign() const { return (x_ & 1) != 0; }  // true = negated
  std::int32_t index() const { return x_; }

  Lit operator~() const { return from_index(x_ ^ 1); }
  bool operator==(const Lit& o) const = default;

 private:
  std::int32_t x_;
};

inline Lit pos(Var v) { return Lit(v, false); }
inline Lit neg(Var v) { return Lit(v, true); }

enum class LBool : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };
inline LBool lbool_not(LBool b) {
  return b == LBool::kUndef
             ? LBool::kUndef
             : (b == LBool::kTrue ? LBool::kFalse : LBool::kTrue);
}

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_literals = 0;
  std::uint64_t minimized_literals = 0;
  std::uint64_t reduce_dbs = 0;

  // Preprocessing (Solver::simplify) counters.
  std::uint64_t eliminated_vars = 0;
  std::uint64_t simplify_removed_clauses = 0;
  std::uint64_t simplify_subsumed = 0;
  std::uint64_t simplify_strengthened = 0;
  double simplify_ms = 0.0;

  // Cube-and-conquer (sat/cube.h) counters — a plain Solver never fills
  // these; CubeSolver::stats() merges them in so every consumer reports
  // splitting effort alongside the search counters.
  std::uint64_t cubes = 0;          ///< cubes enumerated by split solves
  std::uint64_t cubes_refuted = 0;  ///< cubes individually proven UNSAT
  double cube_wall_ms = 0.0;        ///< wall time inside split solves

  // Incremental-solving counters. Learnt clauses persist across solve()
  // calls on the same instance (only simplify() and
  // adopt_simplification_from() drop them), so clauses_carried — the
  // learnt count alive at each solve() entry, summed — measures how much
  // derived knowledge later rounds start from, and incremental_rounds
  // counts the solve() calls answered by one instance. encode_reused is
  // filled by the encoding layer (attacks/encode_util.h, atpg): gates
  // resolved against the persistent formula without fresh clauses.
  std::uint64_t clauses_carried = 0;
  std::uint64_t incremental_rounds = 0;
  std::uint64_t encode_reused = 0;
};

struct SimplifyOptions;  // sat/simplify.h

/// Anything that accepts fresh variables and clauses: a single Solver or a
/// PortfolioSolver fanning the same clause database out to N instances.
/// The encoders (sat::Encoder, LockedEncoder, Cnf::load_into) build
/// against this interface so every consumer can swap in a portfolio.
class ClauseSink {
 public:
  virtual ~ClauseSink() = default;

  virtual Var new_var() = 0;
  virtual std::size_t num_vars() const = 0;

  /// Adds a clause. Returns false if the formula became trivially UNSAT.
  /// Literals are deduplicated; tautologies are dropped. The span is only
  /// read during the call, so callers may reuse a scratch buffer.
  virtual bool add_clause(std::span<const Lit> lits) = 0;
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// Protects a variable from preprocessing (see Solver::simplify): any
  /// variable that later add_clause() calls or solve() assumptions will
  /// mention must be frozen before simplify() runs, because eliminated
  /// variables leave the formula for good. No-ops on sinks that never
  /// simplify.
  virtual void freeze(Var) {}
  virtual void thaw(Var) {}
};

class Solver : public ClauseSink {
 public:
  enum class Result { kSat, kUnsat, kUnknown };

  Solver();

  Var new_var() override;
  std::size_t num_vars() const override { return assigns_.size(); }

  bool add_clause(std::span<const Lit> lits) override;
  using ClauseSink::add_clause;

  /// Solves under assumptions. conflict_budget < 0 means unlimited;
  /// exceeding the budget yields kUnknown (an "aborted" query).
  Result solve(std::span<const Lit> assumptions = {},
               std::int64_t conflict_budget = -1);

  /// Wall-clock deadline: solve() returns kUnknown once the deadline has
  /// passed. Checked at solve() entry and periodically at decision
  /// boundaries (the clock is polled once per ~1k decisions, so overshoot
  /// is bounded). Persists across solve() calls until cleared. A hit
  /// deadline is inherently timing-dependent — it waives the bit-identity
  /// contract for that call, which is why it defaults off.
  void set_deadline(std::chrono::steady_clock::time_point tp) {
    deadline_ = tp;
    has_deadline_ = true;
  }
  void clear_deadline() { has_deadline_ = false; }
  bool has_deadline() const { return has_deadline_; }
  bool deadline_expired() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  // --- SatELite-style preprocessing (sat/simplify.h) ----------------------

  void freeze(Var v) override { frozen_[v] = true; }
  void thaw(Var v) override { frozen_[v] = false; }

  /// Runs one in-place simplification pass (bounded variable elimination +
  /// subsumption) over the problem clauses at decision level 0. Frozen and
  /// root-assigned variables are never eliminated; learnt clauses are
  /// dropped (they are implied). Eliminated variables may no longer appear
  /// in clauses or assumptions; models are reconstructed over them after
  /// kSat. Returns false if the formula was proven UNSAT.
  bool simplify();
  bool simplify(const SimplifyOptions& opts);

  /// True once v has been resolved out by simplify().
  bool is_eliminated(Var v) const { return eliminated_[v] != 0; }

  // --- cube-and-conquer splitting (sat/cube.cpp) --------------------------

  /// Lookahead-style cube splitting: picks up to `count` branching
  /// variables for a 2^count-way case split of the current formula.
  /// Candidates are ranked by clause-length-weighted occurrence counts,
  /// then the top `candidates` are probed (propagate each polarity at a
  /// fresh decision level, march-style) and the `count` best propagators
  /// win. Variables that are assigned, eliminated by simplify(), or whose
  /// var appears in `avoid` (the caller's assumptions) are never picked,
  /// so the split composes with preprocessing and assumption solving.
  /// Ties break on ascending index — the choice is fully deterministic.
  /// Returns fewer than `count` vars (possibly none) when the formula has
  /// too few splittable variables.
  std::vector<Var> pick_cube_vars(std::size_t count, std::span<const Lit> avoid,
                                  std::uint32_t candidates = 32);

  /// Copies the simplified clause database (and everything needed to keep
  /// searching + reconstructing models) from `src`, which must have the
  /// same variable count. Own diversification state (activity, phases,
  /// restart unit) is preserved — this is how a portfolio simplifies once
  /// and fans out.
  void adopt_simplification_from(const Solver& src);

  /// Model access after kSat.
  bool model_value(Var v) const {
    ORAP_CHECK(v >= 0 && static_cast<std::size_t>(v) < model_.size());
    return model_[v] == LBool::kTrue;
  }

  /// After kUnsat under assumptions: the subset of assumptions that
  /// participated in the final conflict (in no particular order).
  const std::vector<Lit>& unsat_core() const { return conflict_core_; }

  bool ok() const { return ok_; }
  const SolverStats& stats() const { return stats_; }

  // Tuning knobs (defaults are fine for all in-repo workloads).
  void set_var_decay(double d) { var_decay_ = d; }
  void set_clause_decay(double d) { clause_decay_ = d; }
  /// Learnt-clause cap before reduce_db triggers (test knob).
  void set_max_learnts(std::size_t n) { max_learnts_ = n < 8 ? 8 : n; }

  // --- portfolio diversification & sharing hooks --------------------------
  // A PortfolioSolver runs N instances over the same clause database; the
  // knobs below give each instance a distinct search trajectory, and the
  // export hooks let the barrier move root units / glue clauses between
  // instances. All of them are safe no-ops for plain single-solver use.

  /// Luby restart unit in conflicts (default 100).
  void set_restart_unit(std::int64_t unit) {
    restart_unit_ = unit < 1 ? 1 : unit;
  }

  /// Overrides the saved phase (initial branching polarity) of a variable.
  void set_phase(Var v, bool value);

  /// Adds `amount` to a variable's VSIDS activity — a deterministic way to
  /// pre-seed distinct decision orders across portfolio instances.
  void nudge_activity(Var v, double amount);

  /// Enables export of learnt clauses with LBD <= max_lbd (0 = disabled,
  /// the default). Exported clauses accumulate until clear_exported().
  void set_export_max_lbd(std::uint32_t max_lbd) { export_max_lbd_ = max_lbd; }
  const std::vector<std::vector<Lit>>& exported_learnts() const {
    return export_buf_;
  }
  void clear_exported_learnts() { export_buf_.clear(); }

  /// Root-level (decision level 0) assignments — formula-implied unit
  /// facts, never assumption-dependent. Only valid between solve() calls
  /// (the solver always returns at level 0).
  std::span<const Lit> root_trail() const {
    ORAP_DCHECK(trail_lim_.empty());
    return {trail_.data(), trail_.size()};
  }

 private:
  // --- clause arena -------------------------------------------------------
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNullClause = 0xffffffffu;

  struct ClauseHeader {
    std::uint32_t size;
    std::uint32_t learnt : 1;
    std::uint32_t lbd : 31;  // literal-block distance (glue) of learnts
    float activity;
  };
  static_assert(sizeof(ClauseHeader) == 12);

  // Arena layout per clause: header (3 words) followed by `size` literal
  // indices.
  std::vector<std::uint32_t> arena_;

  ClauseRef alloc_clause(std::span<const Lit> lits, bool learnt);
  ClauseHeader& header(ClauseRef c) {
    return *reinterpret_cast<ClauseHeader*>(&arena_[c]);
  }
  const ClauseHeader& header(ClauseRef c) const {
    return *reinterpret_cast<const ClauseHeader*>(&arena_[c]);
  }
  Lit* lits(ClauseRef c) { return reinterpret_cast<Lit*>(&arena_[c + 3]); }
  const Lit* lits(ClauseRef c) const {
    return reinterpret_cast<const Lit*>(&arena_[c + 3]);
  }

  // --- assignment trail ---------------------------------------------------
  struct VarData {
    ClauseRef reason = kNullClause;
    std::int32_t level = 0;
  };

  LBool value(Var v) const { return assigns_[v]; }
  LBool value(Lit l) const {
    const LBool b = assigns_[l.var()];
    return l.sign() ? lbool_not(b) : b;
  }

  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void cancel_until(std::int32_t level);
  std::int32_t decision_level() const {
    return static_cast<std::int32_t>(trail_lim_.size());
  }

  // --- conflict analysis --------------------------------------------------
  void analyze(ClauseRef conflict, std::vector<Lit>& out_learnt,
               std::int32_t& out_btlevel);
  bool lit_redundant(Lit l, std::uint32_t abstract_levels);
  void analyze_final(Lit p);

  // --- heuristics ---------------------------------------------------------
  void var_bump(Var v);
  void var_decay_all();
  void clause_bump(ClauseRef c);
  void clause_decay_all();
  Lit pick_branch();
  void reduce_db();
  void attach_clause(ClauseRef c);
  void detach_clause(ClauseRef c);
  std::uint32_t compute_lbd(const std::vector<Lit>& lits);
  void extend_model();

  struct Watcher {
    ClauseRef clause;
    Lit blocker;
  };

  bool ok_ = true;
  std::vector<LBool> assigns_;
  std::vector<LBool> model_;
  std::vector<VarData> var_data_;
  std::vector<LBool> saved_phase_;
  std::vector<double> activity_;
  std::vector<bool> seen_;

  std::vector<std::vector<Watcher>> watches_;  // indexed by lit index
  std::vector<ClauseRef> clauses_;
  std::vector<ClauseRef> learnts_;

  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<Lit> conflict_core_;

  // Preprocessing state: frozen flags, eliminated flags, and the model-
  // reconstruction stack (see SimplifyResult::elim_lits for the layout).
  std::vector<char> frozen_;
  std::vector<char> eliminated_;
  std::vector<Lit> elim_lits_;
  std::vector<std::uint32_t> elim_block_size_;

  std::vector<Lit> add_tmp_;  // add_clause scratch (no per-clause alloc)

  // Order heap (binary max-heap on activity) for VSIDS.
  std::vector<Var> heap_;
  std::vector<std::int32_t> heap_pos_;
  void heap_insert(Var v);
  void heap_percolate_up(std::size_t i);
  void heap_percolate_down(std::size_t i);
  Var heap_pop();
  bool heap_contains(Var v) const {
    return static_cast<std::size_t>(v) < heap_pos_.size() && heap_pos_[v] >= 0;
  }

  double var_inc_ = 1.0;
  double var_decay_ = 0.95;
  double clause_inc_ = 1.0;
  double clause_decay_ = 0.999;
  std::size_t max_learnts_ = 8000;       // grows after every reduction
  std::vector<std::uint32_t> lbd_stamp_;  // per-level marker for LBD calc
  std::uint32_t lbd_epoch_ = 0;

  std::int64_t restart_unit_ = 100;  // Luby unit, in conflicts
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::uint32_t deadline_poll_ = 0;  // throttles clock reads in solve()
  std::uint32_t export_max_lbd_ = 0;
  static constexpr std::size_t kMaxExportBuffer = 4096;
  std::vector<std::vector<Lit>> export_buf_;

  SolverStats stats_;
};

}  // namespace orap::sat
