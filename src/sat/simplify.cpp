#include "sat/simplify.h"

#include <algorithm>

namespace orap::sat {

namespace {

constexpr std::int32_t kSentinelIndex = 0x7fffffff;

/// One clause under simplification: sorted literal list + a 64-bit
/// variable signature (bit v&63 set for every variable) used to rule out
/// subsumption candidates without walking the literals.
std::uint64_t signature_of(const std::vector<Lit>& lits) {
  std::uint64_t sig = 0;
  for (const Lit l : lits) sig |= std::uint64_t{1} << (l.var() & 63);
  return sig;
}

class Simplifier {
 public:
  Simplifier(std::size_t num_vars, const std::vector<bool>& frozen,
             const SimplifyOptions& opts, SimplifyResult& res)
      : opts_(opts),
        res_(res),
        value_(num_vars, LBool::kUndef),
        frozen_(num_vars, false),
        eliminated_(num_vars, false),
        occ_(num_vars) {
    for (std::size_t v = 0; v < frozen.size() && v < num_vars; ++v)
      frozen_[v] = frozen[v];
  }

  void run(std::vector<std::vector<Lit>> input) {
    const std::size_t clauses_in = input.size();
    for (auto& cl : input) {
      if (!ok_) break;
      load_clause(std::move(cl));
    }
    drain();
    // BVE to fixpoint: removing a variable shrinks its neighbours'
    // occurrence lists, which can push them under the growth bound on the
    // next sweep. Sweeps are in ascending variable order, so the result is
    // a pure function of the input formula (determinism contract).
    for (bool progress = true; progress && ok_;) {
      const std::size_t before = res_.eliminated.size();
      for (Var v = 0; ok_ && static_cast<std::size_t>(v) < value_.size(); ++v)
        try_eliminate(v);
      progress = res_.eliminated.size() != before;
    }

    res_.ok = ok_;
    if (!ok_) return;
    for (std::size_t ci = 0; ci < cls_.size(); ++ci)
      if (alive_[ci]) res_.clauses.push_back(std::move(cls_[ci]));
    res_.units.assign(unit_queue_.begin(), unit_queue_.end());
    if (clauses_in > res_.clauses.size())
      res_.removed_clauses = clauses_in - res_.clauses.size();
  }

 private:
  LBool value_of(Lit l) const {
    const LBool b = value_[l.var()];
    return l.sign() ? lbool_not(b) : b;
  }

  /// Normalizes and registers one input clause (the Solver hands over a
  /// clean database, but direct callers may not): sorts, deduplicates,
  /// drops tautologies, routes units through the assignment.
  void load_clause(std::vector<Lit> cl) {
    std::sort(cl.begin(), cl.end(),
              [](Lit a, Lit b) { return a.index() < b.index(); });
    std::vector<Lit> out;
    Lit prev = Lit::from_index(-2);
    for (const Lit l : cl) {
      ORAP_CHECK(l.var() >= 0 &&
                 static_cast<std::size_t>(l.var()) < value_.size());
      if (l == ~prev || value_of(l) == LBool::kTrue) return;  // taut/satisfied
      if (l == prev || value_of(l) == LBool::kFalse) continue;
      out.push_back(l);
      prev = l;
    }
    if (out.empty()) {
      ok_ = false;
      return;
    }
    if (out.size() == 1) {
      assign(out[0]);
      return;
    }
    add_clause(std::move(out));
  }

  std::uint32_t add_clause(std::vector<Lit> lits) {
    const auto ci = static_cast<std::uint32_t>(cls_.size());
    sig_.push_back(signature_of(lits));
    alive_.push_back(true);
    in_queue_.push_back(false);
    for (const Lit l : lits) occ_[l.var()].push_back(ci);
    cls_.push_back(std::move(lits));
    enqueue_sub(ci);
    return ci;
  }

  void kill(std::uint32_t ci) { alive_[ci] = false; }

  void enqueue_sub(std::uint32_t ci) {
    if (in_queue_[ci]) return;
    in_queue_[ci] = true;
    queue_.push_back(ci);
  }

  void assign(Lit l) {
    LBool& slot = value_[l.var()];
    const LBool want = l.sign() ? LBool::kFalse : LBool::kTrue;
    if (slot != LBool::kUndef) {
      if (slot != want) ok_ = false;
      return;
    }
    slot = want;
    unit_queue_.push_back(l);
  }

  /// -1: no literal of v. Otherwise the position of v's literal in `cl`.
  static std::int32_t find_var(const std::vector<Lit>& cl, Var v) {
    const auto it = std::lower_bound(
        cl.begin(), cl.end(), pos(v),
        [](Lit a, Lit b) { return a.index() < b.index(); });
    if (it != cl.end() && it->var() == v)
      return static_cast<std::int32_t>(it - cl.begin());
    return -1;
  }

  /// Removes `m` from clause ci after a self-subsuming resolution or a
  /// falsified-literal propagation step.
  void strengthen(std::uint32_t ci, Lit m) {
    auto& cl = cls_[ci];
    const std::int32_t at = find_var(cl, m.var());
    ORAP_DCHECK(at >= 0 && cl[at] == m);
    cl.erase(cl.begin() + at);
    sig_[ci] = signature_of(cl);
    if (cl.empty()) {
      ok_ = false;
      return;
    }
    if (cl.size() == 1) {
      assign(cl[0]);
      kill(ci);
      return;
    }
    enqueue_sub(ci);
  }

  /// Applies one assignment to every clause still referencing its var.
  void process_unit(Lit l) {
    std::vector<std::uint32_t> ids = std::move(occ_[l.var()]);
    occ_[l.var()].clear();
    for (const std::uint32_t ci : ids) {
      if (!ok_) return;
      if (!alive_[ci]) continue;
      const std::int32_t at = find_var(cls_[ci], l.var());
      if (at < 0) continue;  // stale occurrence
      if (cls_[ci][at] == l)
        kill(ci);  // satisfied
      else
        strengthen(ci, ~l);
    }
  }

  /// Does c subsume d (returns 0), subsume it modulo one flipped literal
  /// (returns 1, the flipped literal of d in *flipped), or neither (-1)?
  static int subsumes(const std::vector<Lit>& c, const std::vector<Lit>& d,
                      Lit* flipped) {
    std::size_t i = 0, j = 0;
    bool flip = false;
    while (i < c.size()) {
      if (j == d.size()) return -1;
      const Lit a = c[i], b = d[j];
      if (a == b) {
        ++i;
        ++j;
      } else if (a.var() == b.var()) {
        if (flip) return -1;
        flip = true;
        *flipped = b;
        ++i;
        ++j;
      } else if (a.index() > b.index()) {
        ++j;
      } else {
        return -1;  // c has a variable d lacks
      }
    }
    return flip ? 1 : 0;
  }

  /// Backward subsumption + self-subsuming resolution with clause ci
  /// against everything sharing its rarest variable.
  void backward_subsume(std::uint32_t ci) {
    if (!alive_[ci]) return;
    const auto& c = cls_[ci];
    Var best = c[0].var();
    for (const Lit l : c)
      if (occ_[l.var()].size() < occ_[best].size()) best = l.var();
    auto& list = occ_[best];
    std::size_t out = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      const std::uint32_t di = list[i];
      if (!alive_[di]) continue;  // compact dead entries away
      if (di != ci && alive_[ci] && cls_[di].size() >= c.size() &&
          (sig_[ci] & ~sig_[di]) == 0) {
        Lit flip;
        const int r = subsumes(c, cls_[di], &flip);
        if (r == 0) {
          kill(di);
          ++res_.subsumed_clauses;
          continue;
        }
        if (r == 1) {
          strengthen(di, flip);
          ++res_.strengthened_literals;
          if (!ok_) return;
          if (!alive_[di] || find_var(cls_[di], best) < 0) continue;
        }
      }
      if (find_var(cls_[di], best) < 0) continue;
      list[out++] = di;
    }
    list.resize(out);
  }

  /// Units first (they shrink everything), then the subsumption queue.
  void drain() {
    while (ok_ && (uhead_ < unit_queue_.size() || qhead_ < queue_.size())) {
      if (uhead_ < unit_queue_.size()) {
        process_unit(unit_queue_[uhead_++]);
        continue;
      }
      const std::uint32_t ci = queue_[qhead_++];
      in_queue_[ci] = false;
      backward_subsume(ci);
    }
  }

  /// Resolvent of p (contains v) and n (contains ~v); false on tautology.
  static bool resolve(const std::vector<Lit>& p, const std::vector<Lit>& n,
                      Var v, std::vector<Lit>& out) {
    out.clear();
    std::size_t i = 0, j = 0;
    while (i < p.size() || j < n.size()) {
      const Lit a =
          i < p.size() ? p[i] : Lit::from_index(kSentinelIndex);
      const Lit b =
          j < n.size() ? n[j] : Lit::from_index(kSentinelIndex);
      if (a.var() == v) {
        ++i;
        continue;
      }
      if (b.var() == v) {
        ++j;
        continue;
      }
      if (a == b) {
        out.push_back(a);
        ++i;
        ++j;
      } else if (a.var() == b.var()) {
        return false;  // opposite polarities: tautological resolvent
      } else if (a.index() < b.index()) {
        out.push_back(a);
        ++i;
      } else {
        out.push_back(b);
        ++j;
      }
    }
    return true;
  }

  void record_block(const std::vector<Lit>& cl, Lit pivot) {
    for (const Lit l : cl)
      if (l != pivot) res_.elim_lits.push_back(l);
    res_.elim_lits.push_back(pivot);
    res_.elim_block_size.push_back(static_cast<std::uint32_t>(cl.size()));
  }

  void record_unit_block(Lit pivot) {
    res_.elim_lits.push_back(pivot);
    res_.elim_block_size.push_back(1);
  }

  void mark_eliminated(Var v) {
    eliminated_[v] = true;
    res_.eliminated.push_back(v);
    occ_[v].clear();
  }

  /// Bounded variable elimination of v: resolve every pos-occurrence
  /// against every neg-occurrence and keep the resolvents iff their count
  /// does not grow the formula (SatELite's rule) and none exceeds the
  /// clause-size cap. Pure and unused variables are eliminated for free.
  void try_eliminate(Var v) {
    if (frozen_[v] || eliminated_[v] || value_[v] != LBool::kUndef) return;
    std::vector<std::uint32_t> posc, negc;
    {
      auto& list = occ_[v];
      std::size_t out = 0;
      for (const std::uint32_t ci : list) {
        if (!alive_[ci]) continue;
        const std::int32_t at = find_var(cls_[ci], v);
        if (at < 0) continue;
        (cls_[ci][at].sign() ? negc : posc).push_back(ci);
        list[out++] = ci;
      }
      list.resize(out);
    }

    if (posc.empty() && negc.empty()) {
      // Unused variable: pin it via the reconstruction stack so the
      // search never branches on it.
      record_unit_block(pos(v));
      mark_eliminated(v);
      return;
    }
    if (posc.empty() || negc.empty()) {
      // Pure literal: the occurring polarity satisfies every clause.
      const bool positive = !posc.empty();
      for (const std::uint32_t ci : positive ? posc : negc) kill(ci);
      record_unit_block(Lit(v, !positive));
      mark_eliminated(v);
      return;
    }
    if (posc.size() + negc.size() > opts_.occurrence_cap) return;

    const std::size_t limit =
        posc.size() + negc.size() +
        static_cast<std::size_t>(opts_.grow < 0 ? 0 : opts_.grow);
    std::vector<std::vector<Lit>> resolvents;
    std::vector<Lit> r;
    for (const std::uint32_t pi : posc) {
      for (const std::uint32_t ni : negc) {
        if (!resolve(cls_[pi], cls_[ni], v, r)) continue;  // tautology
        if (r.size() > opts_.clause_size_cap) return;      // too long: abort
        resolvents.push_back(r);
        if (resolvents.size() > limit) return;  // would grow: abort
      }
    }

    // Commit. Record the smaller occurrence side plus a unit of the other
    // side's literal (MiniSat's scheme): walking the stack backwards, the
    // unit first gives v a default that satisfies the unstored side, then
    // any unsatisfied stored clause flips v — the resolvents guarantee at
    // most one side can be unsatisfied.
    const bool store_pos = posc.size() <= negc.size();
    for (const std::uint32_t ci : store_pos ? posc : negc)
      record_block(cls_[ci], Lit(v, !store_pos));
    record_unit_block(Lit(v, store_pos));
    for (const std::uint32_t ci : posc) kill(ci);
    for (const std::uint32_t ci : negc) kill(ci);
    mark_eliminated(v);

    for (auto& res_cl : resolvents) {
      if (res_cl.size() == 1) {
        assign(res_cl[0]);
      } else {
        add_clause(std::move(res_cl));
      }
      if (!ok_) return;
    }
    drain();
  }

  const SimplifyOptions& opts_;
  SimplifyResult& res_;
  bool ok_ = true;

  std::vector<std::vector<Lit>> cls_;
  std::vector<std::uint64_t> sig_;
  std::vector<char> alive_;
  std::vector<char> in_queue_;
  std::vector<LBool> value_;
  std::vector<char> frozen_;
  std::vector<char> eliminated_;
  std::vector<std::vector<std::uint32_t>> occ_;  // per variable, lazy-compacted

  std::vector<std::uint32_t> queue_;  // subsumption work list
  std::size_t qhead_ = 0;
  std::vector<Lit> unit_queue_;
  std::size_t uhead_ = 0;
};

}  // namespace

SimplifyResult simplify_cnf(std::size_t num_vars,
                            std::vector<std::vector<Lit>> clauses,
                            const std::vector<bool>& frozen,
                            const SimplifyOptions& opts) {
  SimplifyResult res;
  Simplifier s(num_vars, frozen, opts, res);
  s.run(std::move(clauses));
  return res;
}

}  // namespace orap::sat
