#include "sat/portfolio.h"

#include <chrono>

#include "sat/simplify.h"
#include "util/parallel.h"

namespace orap::sat {

namespace {

// Restart units for instances > 0 (instance 0 keeps the stock 100 so it
// replays the plain single-solver search exactly).
constexpr std::int64_t kRestartUnits[] = {150, 50, 200, 80, 120, 60, 250, 40};

}  // namespace

PortfolioSolver::PortfolioSolver(const PortfolioOptions& opts) : opts_(opts) {
  if (opts_.size == 0) opts_.size = 1;
  if (opts_.epoch_budget < 1) opts_.epoch_budget = 1;
  if (opts_.epoch_growth < 1.0) opts_.epoch_growth = 1.0;
  solvers_.reserve(opts_.size);
  for (std::size_t i = 0; i < opts_.size; ++i) {
    solvers_.push_back(std::make_unique<Solver>());
    rngs_.emplace_back(derive_seed(opts_.seed, i));
    if (i > 0) {
      solvers_[i]->set_restart_unit(
          kRestartUnits[(i - 1) % std::size(kRestartUnits)]);
    }
    if (opts_.size > 1 && opts_.share_max_lbd > 0)
      solvers_[i]->set_export_max_lbd(opts_.share_max_lbd);
  }
  unit_cursor_.assign(opts_.size, 0);
}

Var PortfolioSolver::new_var() {
  const Var v = solvers_[0]->new_var();
  for (std::size_t i = 1; i < solvers_.size(); ++i) {
    const Var w = solvers_[i]->new_var();
    ORAP_DCHECK(w == v);
    (void)w;
    // Diversify: random initial polarity and a small VSIDS activity
    // nudge, drawn from the instance's private deterministic stream.
    solvers_[i]->set_phase(v, rngs_[i].bit());
    solvers_[i]->nudge_activity(
        v, static_cast<double>(rngs_[i].below(1024)) * 1e-6);
  }
  return v;
}

bool PortfolioSolver::add_clause(std::span<const Lit> lits) {
  bool ok = true;
  for (auto& s : solvers_) ok &= s->add_clause(lits);
  return ok;
}

bool PortfolioSolver::simplify() { return simplify(SimplifyOptions{}); }

bool PortfolioSolver::simplify(const SimplifyOptions& opts) {
  // Simplification is deterministic, so running it once and copying beats
  // running the identical pass N times.
  const bool ok0 = solvers_[0]->simplify(opts);
  for (std::size_t i = 1; i < solvers_.size(); ++i)
    solvers_[i]->adopt_simplification_from(*solvers_[0]);
  // The rebuilt root trails are identical everywhere: nothing before this
  // point is worth exporting at the next barrier.
  for (std::size_t i = 0; i < solvers_.size(); ++i)
    unit_cursor_[i] = solvers_[i]->root_trail().size();
  return ok0;
}

void PortfolioSolver::adopt_simplification_from(const Solver& src) {
  for (auto& s : solvers_) s->adopt_simplification_from(src);
  for (std::size_t i = 0; i < solvers_.size(); ++i)
    unit_cursor_[i] = solvers_[i]->root_trail().size();
}

void PortfolioSolver::set_deadline(std::chrono::steady_clock::time_point tp) {
  has_deadline_ = true;
  deadline_ = tp;
  for (auto& s : solvers_) s->set_deadline(tp);
}

void PortfolioSolver::clear_deadline() {
  has_deadline_ = false;
  for (auto& s : solvers_) s->clear_deadline();
}

bool PortfolioSolver::ok() const {
  for (const auto& s : solvers_)
    if (!s->ok()) return false;
  return true;
}

SolverStats PortfolioSolver::total_stats() const {
  SolverStats t;
  for (const auto& s : solvers_) {
    const SolverStats& st = s->stats();
    t.decisions += st.decisions;
    t.propagations += st.propagations;
    t.conflicts += st.conflicts;
    t.restarts += st.restarts;
    t.learnt_literals += st.learnt_literals;
    t.minimized_literals += st.minimized_literals;
    t.reduce_dbs += st.reduce_dbs;
    t.clauses_carried += st.clauses_carried;
    t.incremental_rounds += st.incremental_rounds;
  }
  // Preprocessing runs once and is copied everywhere — report it once.
  const SolverStats& s0 = solvers_[0]->stats();
  t.eliminated_vars = s0.eliminated_vars;
  t.simplify_removed_clauses = s0.simplify_removed_clauses;
  t.simplify_subsumed = s0.simplify_subsumed;
  t.simplify_strengthened = s0.simplify_strengthened;
  t.simplify_ms = s0.simplify_ms;
  return t;
}

void PortfolioSolver::share_at_barrier(std::span<const Result> results) {
  // Phase 1 (collect, instance order): snapshot each instance's new root
  // units and its exported glue clauses. Collecting everything before
  // applying anything keeps imports out of the same barrier's exports.
  const std::size_t n = solvers_.size();
  std::vector<std::vector<Lit>> units(n);
  std::vector<std::vector<std::vector<Lit>>> clauses(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (results[i] != Result::kUnknown) continue;
    const auto rt = solvers_[i]->root_trail();
    for (std::size_t k = unit_cursor_[i]; k < rt.size(); ++k)
      units[i].push_back(rt[k]);
    unit_cursor_[i] = rt.size();
    clauses[i] = solvers_[i]->exported_learnts();
    solvers_[i]->clear_exported_learnts();
  }
  // Phase 2 (apply, instance order): every instance imports every other
  // instance's batch. All shared clauses are resolvents of the common
  // database, so imports preserve equivalence; add_clause drops the ones
  // an importer already knows to be satisfied.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j) continue;
      for (const Lit u : units[i]) {
        solvers_[j]->add_clause({u});
        ++pstats_.shared_units;
      }
      for (const auto& cl : clauses[i]) {
        solvers_[j]->add_clause(cl);
        ++pstats_.shared_clauses;
      }
    }
  }
}

PortfolioSolver::Result PortfolioSolver::solve(
    std::span<const Lit> assumptions, std::int64_t conflict_budget) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto record_wall = [&] {
    pstats_.solve_wall_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  };

  const std::size_t n = solvers_.size();
  if (n == 1) {
    // Pass-through: identical to driving the single instance directly.
    pstats_.winner = 0;
    pstats_.epochs = 0;
    const Result r = solvers_[0]->solve(assumptions, conflict_budget);
    record_wall();
    return r;
  }

  pstats_.epochs = 0;
  std::vector<Result> results(n, Result::kUnknown);
  std::vector<std::int64_t> spent(n, 0);
  std::int64_t epoch_budget = opts_.epoch_budget;

  while (true) {
    // Lockstep epoch: every live instance gets the same conflict budget.
    // Instances are independent sequential searches writing to disjoint
    // slots, so the pool placement cannot affect any result.
    parallel_for(1, n, [&](std::size_t i) {
      if (!solvers_[i]->ok()) {
        // A barrier import root-conflicted this instance: the formula is
        // UNSAT. solve() reports it with the documented empty core.
        results[i] = solvers_[i]->solve(assumptions, 0);
        return;
      }
      std::int64_t budget = epoch_budget;
      if (conflict_budget >= 0) {
        const std::int64_t left = conflict_budget - spent[i];
        if (left <= 0) return;  // this instance's call budget is used up
        if (budget > left) budget = left;
      }
      // Charge the ACTUAL conflicts of the call, not the grant: instances
      // that decide (or abort past the budget on a conflict chain) rarely
      // use exactly `budget`, and charging grants made --portfolio=N runs
      // abort earlier than a single solver under the same call budget.
      const std::uint64_t before = solvers_[i]->stats().conflicts;
      results[i] = solvers_[i]->solve(assumptions, budget);
      spent[i] +=
          static_cast<std::int64_t>(solvers_[i]->stats().conflicts - before);
    });
    ++pstats_.epochs;

    // Barrier arbitration: lowest decided index wins, for every thread
    // count and every portfolio size.
    for (std::size_t i = 0; i < n; ++i) {
      if (results[i] != Result::kUnknown) {
        pstats_.winner = i;
        record_wall();
        return results[i];
      }
    }
    if (conflict_budget >= 0) {
      bool all_exhausted = true;
      for (std::size_t i = 0; i < n; ++i)
        all_exhausted &= spent[i] >= conflict_budget;
      if (all_exhausted) {
        pstats_.winner = 0;
        record_wall();
        return Result::kUnknown;
      }
    }
    // Deadline check at the barrier: once expired, every instance returns
    // kUnknown instantly, so without this the unlimited-budget race would
    // spin through empty epochs forever.
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      pstats_.winner = 0;
      record_wall();
      return Result::kUnknown;
    }

    if (opts_.share_max_lbd > 0) share_at_barrier(results);
    constexpr std::int64_t kMaxEpochBudget = std::int64_t{1} << 40;
    if (epoch_budget < kMaxEpochBudget) {
      epoch_budget = static_cast<std::int64_t>(
          static_cast<double>(epoch_budget) * opts_.epoch_growth);
      if (epoch_budget < opts_.epoch_budget) epoch_budget = opts_.epoch_budget;
      if (epoch_budget > kMaxEpochBudget) epoch_budget = kMaxEpochBudget;
    }
  }
}

}  // namespace orap::sat
