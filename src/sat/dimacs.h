#pragma once
// DIMACS CNF import/export, making the solver usable as a standalone tool
// and letting attack instances be shipped to external solvers for
// cross-checking.

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/solver.h"

namespace orap::sat {

/// A raw CNF: clauses over 0-based variables.
struct Cnf {
  std::size_t num_vars = 0;
  std::vector<std::vector<Lit>> clauses;

  /// Loads the CNF into a solver or portfolio (creating num_vars
  /// variables). Returns false if the formula is trivially UNSAT at root.
  bool load_into(ClauseSink& s) const;
};

/// Parses DIMACS text ("p cnf V C" header, clauses terminated by 0,
/// 'c' comment lines). Throws CheckError on malformed input.
Cnf read_dimacs(std::istream& is);
Cnf read_dimacs_string(const std::string& text);

/// Serializes to DIMACS.
void write_dimacs(const Cnf& cnf, std::ostream& os);
std::string write_dimacs_string(const Cnf& cnf);

}  // namespace orap::sat
