#include "sat/solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "sat/simplify.h"

namespace orap::sat {

namespace {

// Luby restart sequence (finite-subsequence doubling); the conflict unit
// is Solver::restart_unit_ (default 100, diversified across a portfolio).
double luby(double y, int x) {
  int size, seq;
  for (size = 1, seq = 0; size < x + 1; seq++, size = 2 * size + 1) {
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    seq--;
    x = x % size;
  }
  return std::pow(y, seq);
}

}  // namespace

Solver::Solver() = default;

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  var_data_.push_back({});
  saved_phase_.push_back(LBool::kFalse);
  activity_.push_back(0.0);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  frozen_.push_back(0);
  eliminated_.push_back(0);
  heap_pos_.push_back(-1);
  heap_insert(v);
  return v;
}

Solver::ClauseRef Solver::alloc_clause(std::span<const Lit> ls, bool learnt) {
  const ClauseRef c = static_cast<ClauseRef>(arena_.size());
  arena_.resize(arena_.size() + 3 + ls.size());
  ClauseHeader& h = header(c);
  h.size = static_cast<std::uint32_t>(ls.size());
  h.learnt = learnt ? 1 : 0;
  h.lbd = h.size;
  h.activity = 0.0f;
  Lit* out = lits(c);
  for (std::size_t i = 0; i < ls.size(); ++i) out[i] = ls[i];
  return c;
}

void Solver::attach_clause(ClauseRef c) {
  const Lit* ls = lits(c);
  ORAP_DCHECK(header(c).size >= 2);
  auto& w0 = watches_[(~ls[0]).index()];
  auto& w1 = watches_[(~ls[1]).index()];
  if (w0.capacity() == 0) w0.reserve(4);
  if (w1.capacity() == 0) w1.reserve(4);
  w0.push_back({c, ls[1]});
  w1.push_back({c, ls[0]});
}

void Solver::detach_clause(ClauseRef c) {
  const Lit* ls = lits(c);
  for (int w = 0; w < 2; ++w) {
    auto& list = watches_[(~ls[w]).index()];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].clause == c) {
        list.erase(list.begin() + i);  // keep order: propagation stays stable
        break;
      }
    }
  }
}

bool Solver::add_clause(std::span<const Lit> ls) {
  ORAP_CHECK_MSG(decision_level() == 0, "add_clause only at root level");
  if (!ok_) return false;
  // Sort, dedupe, drop false literals, detect tautology / satisfied clause.
  add_tmp_.assign(ls.begin(), ls.end());
  std::sort(add_tmp_.begin(), add_tmp_.end(),
            [](Lit a, Lit b) { return a.index() < b.index(); });
  std::size_t out = 0;
  Lit prev = Lit::from_index(-2);
  for (const Lit l : add_tmp_) {
    ORAP_CHECK(l.var() >= 0 &&
               static_cast<std::size_t>(l.var()) < assigns_.size());
    ORAP_CHECK_MSG(!eliminated_[l.var()],
                   "clause references a variable removed by simplify() — "
                   "freeze() it before preprocessing");
    if (value(l) == LBool::kTrue || l == ~prev) return true;  // satisfied/taut
    if (value(l) == LBool::kFalse || l == prev) continue;     // drop
    add_tmp_[out++] = l;
    prev = l;
  }
  add_tmp_.resize(out);
  if (add_tmp_.empty()) {
    ok_ = false;
    return false;
  }
  if (add_tmp_.size() == 1) {
    enqueue(add_tmp_[0], kNullClause);
    if (propagate() != kNullClause) {
      ok_ = false;
      return false;
    }
    return true;
  }
  const ClauseRef c = alloc_clause(add_tmp_, /*learnt=*/false);
  clauses_.push_back(c);
  attach_clause(c);
  return true;
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  ORAP_DCHECK(value(l) == LBool::kUndef);
  assigns_[l.var()] = l.sign() ? LBool::kFalse : LBool::kTrue;
  var_data_[l.var()] = {reason, decision_level()};
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  ClauseRef conflict = kNullClause;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p.index()];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      const ClauseRef c = w.clause;
      Lit* ls = lits(c);
      const std::uint32_t size = header(c).size;
      // Ensure the falsified literal is ls[1].
      const Lit not_p = ~p;
      if (ls[0] == not_p) std::swap(ls[0], ls[1]);
      ORAP_DCHECK(ls[1] == not_p);
      ++i;
      // If first watch is true, keep the watcher (with updated blocker).
      if (value(ls[0]) == LBool::kTrue) {
        ws[j++] = {c, ls[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        if (value(ls[k]) != LBool::kFalse) {
          std::swap(ls[1], ls[k]);
          watches_[(~ls[1]).index()].push_back({c, ls[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      ws[j++] = {c, ls[0]};
      if (value(ls[0]) == LBool::kFalse) {
        conflict = c;
        qhead_ = trail_.size();
        while (i < ws.size()) ws[j++] = ws[i++];
      } else {
        enqueue(ls[0], c);
      }
    }
    ws.resize(j);
    if (conflict != kNullClause) break;
  }
  return conflict;
}

void Solver::cancel_until(std::int32_t level) {
  if (decision_level() <= level) return;
  for (std::size_t k = trail_.size();
       k > static_cast<std::size_t>(trail_lim_[level]);) {
    --k;
    const Var v = trail_[k].var();
    saved_phase_[v] = assigns_[v];
    assigns_[v] = LBool::kUndef;
    if (!heap_contains(v)) heap_insert(v);
  }
  trail_.resize(trail_lim_[level]);
  trail_lim_.resize(level);
  qhead_ = trail_.size();
}

void Solver::var_bump(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_contains(v)) heap_percolate_up(heap_pos_[v]);
}

void Solver::var_decay_all() { var_inc_ /= var_decay_; }

void Solver::set_phase(Var v, bool value) {
  ORAP_CHECK(v >= 0 && static_cast<std::size_t>(v) < saved_phase_.size());
  saved_phase_[v] = value ? LBool::kTrue : LBool::kFalse;
}

void Solver::nudge_activity(Var v, double amount) {
  ORAP_CHECK(v >= 0 && static_cast<std::size_t>(v) < activity_.size());
  activity_[v] += amount;
  if (heap_contains(v)) heap_percolate_up(heap_pos_[v]);
}

void Solver::clause_bump(ClauseRef c) {
  ClauseHeader& h = header(c);
  h.activity += static_cast<float>(clause_inc_);
  if (h.activity > 1e20f) {
    for (ClauseRef lc : learnts_)
      header(lc).activity *= 1e-20f;
    clause_inc_ *= 1e-20;
  }
}

void Solver::clause_decay_all() { clause_inc_ /= clause_decay_; }

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& out_learnt,
                     std::int32_t& out_btlevel) {
  out_learnt.clear();
  out_learnt.push_back(Lit());  // slot for the asserting literal
  std::vector<Var> to_clear;   // every var marked seen in this analysis
  std::int32_t counter = 0;
  Lit p = Lit();
  std::size_t index = trail_.size();
  ClauseRef reason = conflict;

  do {
    ORAP_DCHECK(reason != kNullClause);
    if (header(reason).learnt) clause_bump(reason);
    const Lit* ls = lits(reason);
    const std::uint32_t size = header(reason).size;
    for (std::uint32_t k = (p == Lit()) ? 0 : 1; k < size; ++k) {
      const Lit q = ls[k];
      const Var v = q.var();
      if (seen_[v] || var_data_[v].level == 0) continue;
      seen_[v] = true;
      to_clear.push_back(v);
      var_bump(v);
      if (var_data_[v].level >= decision_level())
        ++counter;
      else
        out_learnt.push_back(q);
    }
    // Walk the trail backwards to the next marked literal.
    while (!seen_[trail_[--index].var()]) {
    }
    p = trail_[index];
    reason = var_data_[p.var()].reason;
    seen_[p.var()] = false;
    --counter;
  } while (counter > 0);
  out_learnt[0] = ~p;

  // Recursive minimization: drop literals implied by the rest.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learnt.size(); ++i)
    abstract_levels |= 1u << (var_data_[out_learnt[i].var()].level & 31);
  std::vector<Lit> minimized;
  minimized.push_back(out_learnt[0]);
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    const Lit l = out_learnt[i];
    if (var_data_[l.var()].reason == kNullClause ||
        !lit_redundant(l, abstract_levels)) {
      minimized.push_back(l);
    } else {
      ++stats_.minimized_literals;
    }
  }
  out_learnt = std::move(minimized);
  stats_.learnt_literals += out_learnt.size();

  // Backtrack level = second-highest level in the learnt clause.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i)
      if (var_data_[out_learnt[i].var()].level >
          var_data_[out_learnt[max_i].var()].level)
        max_i = i;
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = var_data_[out_learnt[1].var()].level;
  }

  // Clear every mark set in this analysis (including literals dropped by
  // minimization — stale marks would corrupt later analyses).
  for (const Var v : to_clear) seen_[v] = false;
}

bool Solver::lit_redundant(Lit l, std::uint32_t abstract_levels) {
  // DFS through the implication graph; l is redundant if every path
  // terminates in literals already in the learnt clause (seen_) or level 0.
  std::vector<Lit> stack{l};
  std::vector<Var> cleared;
  bool redundant = true;
  while (!stack.empty() && redundant) {
    const Lit cur = stack.back();
    stack.pop_back();
    const ClauseRef reason = var_data_[cur.var()].reason;
    if (reason == kNullClause) {
      redundant = false;
      break;
    }
    const Lit* ls = lits(reason);
    const std::uint32_t size = header(reason).size;
    for (std::uint32_t k = 1; k < size; ++k) {
      const Lit q = ls[k];
      const Var v = q.var();
      if (seen_[v] || var_data_[v].level == 0) continue;
      if (var_data_[v].reason == kNullClause ||
          ((1u << (var_data_[v].level & 31)) & abstract_levels) == 0) {
        redundant = false;
        break;
      }
      seen_[v] = true;
      cleared.push_back(v);
      stack.push_back(q);
    }
  }
  for (const Var v : cleared) seen_[v] = false;
  return redundant;
}

void Solver::analyze_final(Lit p) {
  conflict_core_.clear();
  conflict_core_.push_back(p);
  if (decision_level() == 0) return;
  seen_[p.var()] = true;
  for (std::size_t i = trail_.size(); i > static_cast<std::size_t>(trail_lim_[0]);) {
    --i;
    const Var v = trail_[i].var();
    if (!seen_[v]) continue;
    const ClauseRef reason = var_data_[v].reason;
    if (reason == kNullClause) {
      if (var_data_[v].level > 0 && trail_[i] != p)
        conflict_core_.push_back(~trail_[i]);
    } else {
      const Lit* ls = lits(reason);
      const std::uint32_t size = header(reason).size;
      for (std::uint32_t k = 1; k < size; ++k)
        if (var_data_[ls[k].var()].level > 0) seen_[ls[k].var()] = true;
    }
    seen_[v] = false;
  }
  seen_[p.var()] = false;
}

Lit Solver::pick_branch() {
  Var next = -1;
  while (next == -1 || value(next) != LBool::kUndef || eliminated_[next]) {
    if (heap_.empty()) return Lit();
    next = heap_pop();
  }
  ++stats_.decisions;
  const LBool phase = saved_phase_[next];
  return Lit(next, phase != LBool::kTrue);
}

std::uint32_t Solver::compute_lbd(const std::vector<Lit>& lits) {
  // Number of distinct decision levels in the clause — the "glue" metric
  // of Glucose; low-LBD clauses are the ones worth keeping forever.
  ++lbd_epoch_;
  if (lbd_stamp_.size() < trail_lim_.size() + 2)
    lbd_stamp_.resize(trail_lim_.size() + 2, 0);
  std::uint32_t lbd = 0;
  for (const Lit l : lits) {
    const auto lvl = static_cast<std::uint32_t>(var_data_[l.var()].level);
    if (lvl < lbd_stamp_.size() && lbd_stamp_[lvl] != lbd_epoch_) {
      lbd_stamp_[lvl] = lbd_epoch_;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::reduce_db() {
  ++stats_.reduce_dbs;
  // Glucose-style ordering: high LBD (least useful) first; ties by low
  // activity. Glue clauses (lbd <= 3) and binaries are never dropped.
  std::sort(learnts_.begin(), learnts_.end(), [this](ClauseRef a, ClauseRef b) {
    const auto& ha = header(a);
    const auto& hb = header(b);
    if (ha.lbd != hb.lbd) return ha.lbd > hb.lbd;
    return ha.activity < hb.activity;
  });
  auto locked = [this](ClauseRef c) {
    const Lit l = lits(c)[0];
    return value(l) == LBool::kTrue && var_data_[l.var()].reason == c;
  };
  std::vector<ClauseRef> kept;
  kept.reserve(learnts_.size());
  const std::size_t drop_target = learnts_.size() / 2;
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    const ClauseRef c = learnts_[i];
    if (dropped < drop_target && header(c).size > 2 && header(c).lbd > 3 &&
        !locked(c)) {
      // Detach only this clause's two watchers in place — O(watch-list
      // scan) per drop instead of rebuilding every watch list.
      detach_clause(c);
      ++dropped;
    } else {
      kept.push_back(c);
    }
  }
  learnts_ = std::move(kept);
  // Let the database grow: each reduction raises the ceiling so long
  // UNSAT proofs keep enough context.
  max_learnts_ += max_learnts_ / 10;
}

Solver::Result Solver::solve(std::span<const Lit> assumptions,
                             std::int64_t conflict_budget) {
  // Clear previous results before the root-conflict early-out: a formula
  // that is UNSAT at root has the documented *empty* conflict core, not a
  // stale one from an earlier assumption-driven call.
  model_.clear();
  conflict_core_.clear();
  if (!ok_) return Result::kUnsat;

  for (const Lit a : assumptions) {
    ORAP_CHECK(a.var() >= 0 &&
               static_cast<std::size_t>(a.var()) < assigns_.size());
    ORAP_CHECK_MSG(!eliminated_[a.var()],
                   "assumption on a variable removed by simplify() — "
                   "freeze() it before preprocessing");
  }

  if (deadline_expired()) return Result::kUnknown;

  // Incremental accounting: how many learnt clauses this round starts
  // from (all of them are formula-implied, so carrying them across
  // assumption sets is sound) and how many rounds this instance answered.
  ++stats_.incremental_rounds;
  stats_.clauses_carried += learnts_.size();

  const std::uint64_t conflicts_at_start = stats_.conflicts;
  int restart_count = 0;
  std::int64_t restart_limit =
      static_cast<std::int64_t>(luby(2.0, restart_count) *
                                static_cast<double>(restart_unit_));
  std::int64_t conflicts_this_restart = 0;

  std::vector<Lit> learnt;
  while (true) {
    const ClauseRef conflict = propagate();
    if (conflict != kNullClause) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (decision_level() == 0) {
        ok_ = false;
        return Result::kUnsat;
      }
      std::int32_t bt = 0;
      analyze(conflict, learnt, bt);
      cancel_until(bt);
      if (learnt.size() == 1) {
        if (value(learnt[0]) == LBool::kUndef) {
          enqueue(learnt[0], kNullClause);
        } else if (value(learnt[0]) == LBool::kFalse) {
          ok_ = false;
          return Result::kUnsat;
        }
      } else {
        const ClauseRef c = alloc_clause(learnt, /*learnt=*/true);
        header(c).lbd = compute_lbd(learnt);
        if (export_max_lbd_ != 0 && header(c).lbd <= export_max_lbd_ &&
            export_buf_.size() < kMaxExportBuffer) {
          export_buf_.push_back(learnt);
        }
        learnts_.push_back(c);
        attach_clause(c);
        clause_bump(c);
        enqueue(learnt[0], c);
      }
      var_decay_all();
      clause_decay_all();
      continue;
    }

    // No conflict.
    if (conflict_budget >= 0 &&
        static_cast<std::int64_t>(stats_.conflicts - conflicts_at_start) >=
            conflict_budget) {
      cancel_until(0);
      return Result::kUnknown;
    }
    // Wall-clock deadline: poll the clock once per ~1k decisions (a clock
    // read per decision would dominate propagation on easy formulas).
    if (has_deadline_ && (++deadline_poll_ & 1023u) == 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      cancel_until(0);
      return Result::kUnknown;
    }
    if (conflicts_this_restart >= restart_limit) {
      ++stats_.restarts;
      ++restart_count;
      restart_limit =
          static_cast<std::int64_t>(luby(2.0, restart_count) *
                                    static_cast<double>(restart_unit_));
      conflicts_this_restart = 0;
      cancel_until(0);
      continue;
    }
    if (learnts_.size() > max_learnts_ + clauses_.size() / 2) {
      reduce_db();
    }

    // Assumption-directed decisions first.
    Lit next = Lit();
    while (static_cast<std::size_t>(decision_level()) < assumptions.size()) {
      const Lit a = assumptions[decision_level()];
      if (value(a) == LBool::kTrue) {
        trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
      } else if (value(a) == LBool::kFalse) {
        analyze_final(~a);
        cancel_until(0);
        return Result::kUnsat;
      } else {
        next = a;
        break;
      }
    }
    if (next == Lit()) {
      next = pick_branch();
      if (next == Lit()) {
        // All variables assigned: SAT. Extend the model over variables
        // the preprocessor resolved out.
        model_.assign(assigns_.begin(), assigns_.end());
        extend_model();
        cancel_until(0);
        return Result::kSat;
      }
    }
    trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
    enqueue(next, kNullClause);
  }
}

// --- preprocessing ---------------------------------------------------------

bool Solver::simplify() { return simplify(SimplifyOptions{}); }

bool Solver::simplify(const SimplifyOptions& opts) {
  ORAP_CHECK_MSG(decision_level() == 0, "simplify only at root level");
  const auto t0 = std::chrono::steady_clock::now();
  const bool result = [&]() -> bool {
    if (!ok_) return false;
    if (propagate() != kNullClause) {
      ok_ = false;
      return false;
    }

    // Extract the problem clauses reduced modulo the root trail; learnt
    // clauses are implied by them and are simply dropped. After a full
    // propagation an unsatisfied clause has >= 2 unassigned literals.
    std::vector<std::vector<Lit>> db;
    db.reserve(clauses_.size());
    std::vector<Lit> cl;
    for (const ClauseRef c : clauses_) {
      const Lit* ls = lits(c);
      const std::uint32_t size = header(c).size;
      cl.clear();
      bool satisfied = false;
      for (std::uint32_t k = 0; k < size && !satisfied; ++k) {
        if (value(ls[k]) == LBool::kTrue)
          satisfied = true;
        else if (value(ls[k]) == LBool::kUndef)
          cl.push_back(ls[k]);
      }
      if (satisfied) continue;
      ORAP_DCHECK(cl.size() >= 2);
      db.push_back(cl);
    }

    // Root-assigned and already-eliminated variables are off limits too:
    // the former stay as trail facts, the latter must not be re-recorded.
    std::vector<bool> fr(num_vars(), false);
    for (std::size_t v = 0; v < num_vars(); ++v)
      fr[v] = frozen_[v] != 0 || eliminated_[v] != 0 ||
              assigns_[v] != LBool::kUndef;

    SimplifyResult res = simplify_cnf(num_vars(), std::move(db), fr, opts);
    if (!res.ok) {
      ok_ = false;
      return false;
    }

    // Rebuild the clause database from the simplified form.
    arena_.clear();
    clauses_.clear();
    learnts_.clear();
    for (auto& w : watches_) w.clear();
    for (const auto& c : res.clauses) {
      const ClauseRef cr = alloc_clause(c, /*learnt=*/false);
      clauses_.push_back(cr);
      attach_clause(cr);
    }
    // Root-trail reasons may point into the discarded arena.
    for (const Lit l : trail_) var_data_[l.var()].reason = kNullClause;

    for (const Var v : res.eliminated) eliminated_[v] = 1;
    elim_lits_.insert(elim_lits_.end(), res.elim_lits.begin(),
                      res.elim_lits.end());
    elim_block_size_.insert(elim_block_size_.end(),
                            res.elim_block_size.begin(),
                            res.elim_block_size.end());

    for (const Lit u : res.units) {
      if (value(u) == LBool::kTrue) continue;
      if (value(u) == LBool::kFalse) {
        ok_ = false;
        return false;
      }
      enqueue(u, kNullClause);
    }
    if (propagate() != kNullClause) {
      ok_ = false;
      return false;
    }

    stats_.eliminated_vars += res.eliminated.size();
    stats_.simplify_removed_clauses += res.removed_clauses;
    stats_.simplify_subsumed += res.subsumed_clauses;
    stats_.simplify_strengthened += res.strengthened_literals;
    return true;
  }();
  stats_.simplify_ms += std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  return result;
}

void Solver::extend_model() {
  // Walk the elimination blocks backwards (see SimplifyResult::elim_lits);
  // a block whose literals are all unsatisfied gets its pivot flipped.
  std::size_t end = elim_lits_.size();
  for (std::size_t b = elim_block_size_.size(); b-- > 0;) {
    const std::size_t begin = end - elim_block_size_[b];
    bool satisfied = false;
    for (std::size_t k = begin; k < end && !satisfied; ++k) {
      const Lit l = elim_lits_[k];
      satisfied = model_[l.var()] == (l.sign() ? LBool::kFalse : LBool::kTrue);
    }
    if (!satisfied) {
      const Lit pivot = elim_lits_[end - 1];
      model_[pivot.var()] = pivot.sign() ? LBool::kFalse : LBool::kTrue;
    }
    end = begin;
  }
}

void Solver::adopt_simplification_from(const Solver& src) {
  ORAP_CHECK(num_vars() == src.num_vars());
  ORAP_CHECK_MSG(decision_level() == 0 && src.trail_lim_.empty(),
                 "adopt_simplification_from only at root level");
  ok_ = src.ok_;
  arena_ = src.arena_;
  clauses_ = src.clauses_;
  learnts_.clear();
  watches_ = src.watches_;
  assigns_ = src.assigns_;
  var_data_ = src.var_data_;
  trail_ = src.trail_;
  qhead_ = src.qhead_;
  frozen_ = src.frozen_;
  eliminated_ = src.eliminated_;
  elim_lits_ = src.elim_lits_;
  elim_block_size_ = src.elim_block_size_;
  model_.clear();
  conflict_core_.clear();
  export_buf_.clear();
  stats_.eliminated_vars = src.stats_.eliminated_vars;
  stats_.simplify_removed_clauses = src.stats_.simplify_removed_clauses;
  stats_.simplify_subsumed = src.stats_.simplify_subsumed;
  stats_.simplify_strengthened = src.stats_.simplify_strengthened;
  stats_.simplify_ms = src.stats_.simplify_ms;
  // Diversification state (activity, saved phases, restart unit) is
  // deliberately untouched — each instance keeps its own trajectory.
}

// --- binary max-heap on activity -------------------------------------------

void Solver::heap_insert(Var v) {
  heap_pos_[v] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_percolate_up(heap_.size() - 1);
}

void Solver::heap_percolate_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_percolate_down(std::size_t i) {
  const Var v = heap_[i];
  while (2 * i + 1 < heap_.size()) {
    std::size_t child = 2 * i + 1;
    if (child + 1 < heap_.size() &&
        activity_[heap_[child + 1]] > activity_[heap_[child]])
      ++child;
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_percolate_down(0);
  }
  return top;
}

}  // namespace orap::sat
