#include "sat/encode.h"

namespace orap::sat {

Var Encoder::encode_gate(GateType type, const std::vector<Var>& fi) {
  const Var out = s_.new_var();
  switch (type) {
    case GateType::kConst0:
      s_.add_clause({neg(out)});
      break;
    case GateType::kConst1:
      s_.add_clause({pos(out)});
      break;
    case GateType::kInput:
      ORAP_CHECK_MSG(false, "inputs have no gate function");
      break;
    case GateType::kBuf:
      s_.add_clause({neg(out), pos(fi[0])});
      s_.add_clause({pos(out), neg(fi[0])});
      break;
    case GateType::kNot:
      s_.add_clause({neg(out), neg(fi[0])});
      s_.add_clause({pos(out), pos(fi[0])});
      break;
    case GateType::kAnd:
    case GateType::kNand: {
      const bool inv = type == GateType::kNand;
      auto o = [&](bool straight) {
        return Lit(out, straight == inv);  // straight output literal
      };
      // out -> every fanin; all fanins -> out.
      big_.assign(1, o(true));
      for (const Var f : fi) {
        s_.add_clause({~o(true), pos(f)});
        big_.push_back(neg(f));
      }
      s_.add_clause(big_);
      break;
    }
    case GateType::kOr:
    case GateType::kNor: {
      const bool inv = type == GateType::kNor;
      auto o = [&](bool straight) { return Lit(out, straight == inv); };
      big_.assign(1, ~o(true));
      for (const Var f : fi) {
        s_.add_clause({o(true), neg(f)});
        big_.push_back(pos(f));
      }
      s_.add_clause(big_);
      break;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      // Chain of 2-input XORs, then flip for XNOR.
      Var acc = fi[0];
      for (std::size_t i = 1; i < fi.size(); ++i) acc = encode_xor2(acc, fi[i]);
      const bool inv = type == GateType::kXnor;
      s_.add_clause({Lit(out, true), Lit(acc, inv)});
      s_.add_clause({Lit(out, false), Lit(acc, !inv)});
      break;
    }
    case GateType::kMux: {
      const Var s = fi[0], d0 = fi[1], d1 = fi[2];
      // s=0 -> out=d0 ; s=1 -> out=d1 (plus redundant strengthening).
      s_.add_clause({pos(s), neg(out), pos(d0)});
      s_.add_clause({pos(s), pos(out), neg(d0)});
      s_.add_clause({neg(s), neg(out), pos(d1)});
      s_.add_clause({neg(s), pos(out), neg(d1)});
      s_.add_clause({neg(d0), neg(d1), pos(out)});
      s_.add_clause({pos(d0), pos(d1), neg(out)});
      break;
    }
  }
  return out;
}

Var Encoder::encode_xor2(Var a, Var b) {
  const Var out = s_.new_var();
  s_.add_clause({neg(out), pos(a), pos(b)});
  s_.add_clause({neg(out), neg(a), neg(b)});
  s_.add_clause({pos(out), neg(a), pos(b)});
  s_.add_clause({pos(out), pos(a), neg(b)});
  return out;
}

Lit Encoder::encode_and_lits(std::span<const Lit> fi, bool invert) {
  const Var out = s_.new_var();
  // o <-> AND(fi); with invert the fresh var itself is the NAND, so the
  // gate's output literal is always pos(out).
  const Lit o = Lit(out, invert);
  big_.assign(1, o);
  for (const Lit f : fi) {
    s_.add_clause({~o, f});
    big_.push_back(~f);
  }
  s_.add_clause(big_);
  return pos(out);
}

Lit Encoder::encode_or_lits(std::span<const Lit> fi, bool invert) {
  const Var out = s_.new_var();
  const Lit o = Lit(out, invert);  // o <-> OR(fi); pos(out) is the NOR
  big_.assign(1, ~o);
  for (const Lit f : fi) {
    s_.add_clause({o, ~f});
    big_.push_back(f);
  }
  s_.add_clause(big_);
  return pos(out);
}

Lit Encoder::encode_xor2_lit(Lit a, Lit b) {
  const Var out = s_.new_var();
  s_.add_clause({neg(out), a, b});
  s_.add_clause({neg(out), ~a, ~b});
  s_.add_clause({pos(out), ~a, b});
  s_.add_clause({pos(out), a, ~b});
  return pos(out);
}

Lit Encoder::encode_mux_lit(Lit s, Lit d0, Lit d1) {
  const Var out = s_.new_var();
  s_.add_clause({s, neg(out), d0});
  s_.add_clause({s, pos(out), ~d0});
  s_.add_clause({~s, neg(out), d1});
  s_.add_clause({~s, pos(out), ~d1});
  s_.add_clause({~d0, ~d1, pos(out)});
  s_.add_clause({d0, d1, neg(out)});
  return pos(out);
}

CircuitVars Encoder::encode(const Netlist& n,
                            const std::vector<Var>& shared_inputs) {
  if (!shared_inputs.empty())
    ORAP_CHECK(shared_inputs.size() == n.num_inputs());
  CircuitVars cv;
  cv.gate.assign(n.num_gates(), kNoVar);

  for (std::size_t i = 0; i < n.num_inputs(); ++i) {
    const GateId g = n.inputs()[i];
    Var v = shared_inputs.empty() ? kNoVar : shared_inputs[i];
    if (v == kNoVar) v = s_.new_var();
    cv.gate[g] = v;
    cv.inputs.push_back(v);
  }

  std::vector<Var> fi;
  for (GateId g = 0; g < n.num_gates(); ++g) {
    if (cv.gate[g] != kNoVar) continue;  // input already placed
    const GateType t = n.type(g);
    if (t == GateType::kConst0 || t == GateType::kConst1) {
      cv.gate[g] = encode_gate(t, {});
      continue;
    }
    fi.clear();
    for (const GateId f : n.fanins(g)) fi.push_back(cv.gate[f]);
    cv.gate[g] = encode_gate(t, fi);
  }

  for (const auto& po : n.outputs()) cv.outputs.push_back(cv.gate[po.gate]);
  return cv;
}

void Encoder::force_equal(const std::vector<Var>& a, const std::vector<Var>& b) {
  ORAP_CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    s_.add_clause({neg(a[i]), pos(b[i])});
    s_.add_clause({pos(a[i]), neg(b[i])});
  }
}

void Encoder::force_not_equal(const std::vector<Var>& a,
                              const std::vector<Var>& b) {
  ORAP_CHECK(a.size() == b.size() && !a.empty());
  std::vector<Lit> any;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Var d = encode_xor2(a[i], b[i]);
    any.push_back(pos(d));
  }
  s_.add_clause(any);
}

}  // namespace orap::sat
