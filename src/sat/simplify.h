#pragma once
// SatELite-style CNF simplification [Eén & Biere, SAT'05]: bounded
// variable elimination, signature-based forward/backward subsumption, and
// self-subsuming resolution, over explicit occurrence lists.
//
// Tseitin encodings are the textbook best case: most variables are
// internal gate outputs with a handful of occurrences, and resolving them
// out shrinks the formula without growing it. The simplifier is a pure
// function from a clause database to a smaller equisatisfiable one plus a
// model-reconstruction stack (so eliminated variables still get correct
// values after a SAT verdict) — the Solver owns the stack and runs the
// reconstruction; see Solver::simplify().
//
// Determinism: elimination sweeps variables in ascending index order
// (repeated to fixpoint), occurrence lists and the subsumption queue are
// processed in insertion order, and no randomness or timing enters any
// decision. The same input produces byte-identical output everywhere.

#include <cstdint>
#include <vector>

#include "sat/solver.h"

namespace orap::sat {

struct SimplifyOptions {
  /// Do not create resolvents longer than this many literals (an
  /// elimination producing one is abandoned). SatELite's clause_lim.
  std::uint32_t clause_size_cap = 24;
  /// Skip elimination of variables with more than this many total
  /// occurrences (bounds the |pos|*|neg| resolvent scan).
  std::uint32_t occurrence_cap = 300;
  /// Allowed growth in clause count per eliminated variable: eliminate v
  /// only when #resolvents <= #clauses-on-v + grow.
  std::int32_t grow = 0;
};

/// Output of one simplification pass.
struct SimplifyResult {
  bool ok = true;  ///< false: the formula was proven UNSAT.

  std::vector<std::vector<Lit>> clauses;  ///< simplified database (size >= 2)
  std::vector<Lit> units;                 ///< derived root-level facts
  std::vector<Var> eliminated;            ///< vars removed by BVE, in order

  /// Model-reconstruction stack, flat blocks in elimination order: block i
  /// spans elim_block_size[i] literals of elim_lits with the pivot literal
  /// (the one on the eliminated variable) stored LAST. Walk the blocks
  /// backwards over a model of `clauses`; whenever a block's literals are
  /// all false, flip its pivot variable to satisfy it.
  std::vector<Lit> elim_lits;
  std::vector<std::uint32_t> elim_block_size;

  // Counters (also accumulated into SolverStats by Solver::simplify).
  std::uint64_t removed_clauses = 0;      ///< dropped minus resolvents added
  std::uint64_t subsumed_clauses = 0;
  std::uint64_t strengthened_literals = 0;  ///< via self-subsuming resolution
};

/// Runs one simplification pass over `clauses` (literals over variables
/// [0, num_vars)). `frozen[v]` protects v from elimination — callers must
/// freeze every variable that later solve() assumptions or add_clause()
/// calls will mention, since eliminated variables leave the formula for
/// good. Input clauses must be non-trivial: no duplicate or contradictory
/// literals, no literals on frozen-and-assigned variables (the Solver
/// extracts its database reduced modulo the root trail).
SimplifyResult simplify_cnf(std::size_t num_vars,
                            std::vector<std::vector<Lit>> clauses,
                            const std::vector<bool>& frozen,
                            const SimplifyOptions& opts = {});

}  // namespace orap::sat
