#pragma once
// Deterministic portfolio CDCL: N diversified sat::Solver instances over
// the same clause database, raced in lockstep conflict-budget epochs on
// the work-stealing pool.
//
// Every epoch each undecided instance runs solve(assumptions, budget) with
// the SAME conflict budget (the kUnknown "aborted query" mechanism), then
// a barrier arbitration scans instances in ascending index and the lowest
// index that decided (SAT/UNSAT) wins the call. Because each instance is a
// deterministic sequential search and both arbitration and learnt sharing
// happen in instance order on the calling thread, the verdict, model and
// conflict core are bit-identical for any pool thread count.
//
// Instance 0 runs the stock configuration, so any query it decides within
// the first epoch returns exactly the single-solver answer — which makes
// portfolio sizes interchangeable on easy queries (the common case at
// paper scale) and turns the extra instances into pure upside on hard
// ones. Optional sharing moves root-level units and glue (LBD <= 2)
// learnt clauses between instances at each barrier, in instance order.
//
// size == 1 is a zero-overhead pass-through to the single-instance path.

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sat/solver.h"
#include "util/rng.h"

namespace orap::sat {

struct PortfolioOptions {
  std::size_t size = 1;              // number of diversified instances
  std::int64_t epoch_budget = 2000;  // conflicts per instance per epoch
  double epoch_growth = 2.0;         // epoch budget multiplier (>= 1)
  std::uint32_t share_max_lbd = 2;   // share learnts with LBD <= this; 0 off
  std::uint64_t seed = 0x0fa57a11u;  // diversification base seed
};

struct PortfolioStats {
  std::uint64_t epochs = 0;          // epochs of the last solve() call
  std::size_t winner = 0;            // instance that decided the last call
  std::uint64_t shared_units = 0;    // cumulative root units moved
  std::uint64_t shared_clauses = 0;  // cumulative glue clauses moved
  double solve_wall_ms = 0.0;        // cumulative wall time inside solve()
};

/// Drop-in solving front end mirroring sat::Solver's public surface.
/// Building (new_var / add_clause) fans out to every instance, so all N
/// search the identical formula.
class PortfolioSolver : public ClauseSink {
 public:
  using Result = Solver::Result;

  explicit PortfolioSolver(const PortfolioOptions& opts = {});

  Var new_var() override;
  std::size_t num_vars() const override { return solvers_[0]->num_vars(); }
  bool add_clause(std::span<const Lit> lits) override;
  using ClauseSink::add_clause;

  void freeze(Var v) override {
    for (auto& s : solvers_) s->freeze(v);
  }
  void thaw(Var v) override {
    for (auto& s : solvers_) s->thaw(v);
  }

  /// Preprocesses the shared clause database ONCE (on instance 0) and
  /// copies the simplified formula into the other instances, which keep
  /// their diversified activities/phases. Returns false on UNSAT.
  bool simplify();
  bool simplify(const SimplifyOptions& opts);

  /// Copies an externally simplified database into EVERY instance (the
  /// cube layer simplifies lane 0 once and fans the result out to its
  /// sibling lanes). `src` must have the same variable count.
  void adopt_simplification_from(const Solver& src);

  /// Lookahead cube splitting on instance 0 (see Solver::pick_cube_vars);
  /// all instances hold the same formula, so one answer fits all.
  std::vector<Var> pick_cube_vars(std::size_t count, std::span<const Lit> avoid,
                                  std::uint32_t candidates = 32) {
    return solvers_[0]->pick_cube_vars(count, avoid, candidates);
  }

  /// Races the instances in lockstep epochs. conflict_budget < 0 means
  /// unlimited; otherwise it caps the conflicts of EACH instance for this
  /// call, and kUnknown is returned once every instance has exhausted it
  /// without a verdict (matching single-solver semantics at size 1).
  Result solve(std::span<const Lit> assumptions = {},
               std::int64_t conflict_budget = -1);

  /// Wall-clock deadline, forwarded to every instance and re-checked at
  /// each lockstep barrier (so an unlimited-budget race cannot spin after
  /// every instance starts refusing work). Expiry surfaces as kUnknown.
  void set_deadline(std::chrono::steady_clock::time_point tp);
  void clear_deadline();

  /// Model / core access after solve(), served by the winning instance.
  bool model_value(Var v) const { return winner().model_value(v); }
  const std::vector<Lit>& unsat_core() const { return winner().unsat_core(); }

  bool ok() const;
  std::size_t size() const { return solvers_.size(); }
  const Solver& instance(std::size_t i) const { return *solvers_[i]; }
  const SolverStats& stats() const { return winner().stats(); }
  SolverStats total_stats() const;  // summed over all instances
  const PortfolioStats& portfolio_stats() const { return pstats_; }
  const PortfolioOptions& options() const { return opts_; }

 private:
  const Solver& winner() const { return *solvers_[pstats_.winner]; }
  void share_at_barrier(std::span<const Result> results);

  PortfolioOptions opts_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::vector<std::unique_ptr<Solver>> solvers_;
  std::vector<Rng> rngs_;                 // per-instance diversify streams
  std::vector<std::size_t> unit_cursor_;  // root-trail export positions
  PortfolioStats pstats_;
};

}  // namespace orap::sat
