#pragma once
// Deterministic cube-and-conquer [Heule et al., HVC'11]: one SAT query is
// split into 2^depth cubes — assumption prefixes over `depth` branching
// variables chosen by a march-style lookahead — and the cubes are
// conquered in parallel on the work-stealing pool, one PortfolioSolver
// lane per cube.
//
// Split: Solver::pick_cube_vars ranks variables by clause-length-weighted
// occurrence counts, probes the top candidates (propagate each polarity at
// a fresh decision level, score by trail growth), and returns the best
// `depth` propagators. Assigned variables, variables eliminated by
// simplify(), and the caller's assumption variables are never picked, so
// splitting composes with --preprocess (frozen-interface simplification)
// and with assumption-driven incremental use.
//
// Conquer: all live cubes run in lockstep conflict-budget epochs, exactly
// like the portfolio layer one level down. At each barrier the calling
// thread scans cubes in ascending index: the SMALLEST satisfied cube index
// wins a kSat verdict; a cube whose refutation does not involve its cube
// literals proves the whole query kUnsat on the spot; otherwise refuted
// cubes leave the live set and kUnsat is returned once every cube is
// refuted (the union of the per-cube cores, minus cube literals, is the
// reported core). Every lane is a deterministic sequential search and all
// arbitration happens in cube order on the calling thread, so statuses,
// models and cores are bit-identical at any thread count — the PR 1/2
// determinism contract.
//
// Budgets: a finite conflict_budget is a TOTAL for the query, split
// across cubes and charged by actual conflict deltas (not by grants), so
// --cube=D with the same budget aborts on comparable effort to a single
// solver. depth == 0 is a zero-overhead pass-through to the portfolio.

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sat/portfolio.h"
#include "sat/solver.h"

namespace orap::sat {

struct CubeOptions {
  std::uint32_t depth = 0;  ///< split into 2^depth cubes; 0 = no splitting
  std::int64_t epoch_budget = 2000;  ///< conflicts per cube per epoch
  double epoch_growth = 2.0;         ///< epoch budget multiplier (>= 1)
  std::uint32_t lookahead_candidates = 32;  ///< vars probed by the splitter
  PortfolioOptions portfolio;  ///< per-lane portfolio configuration

  /// 2^6 = 64 lanes is already far past the useful split for in-repo
  /// problem sizes; deeper requests are clamped, not rejected.
  static constexpr std::uint32_t kMaxDepth = 6;
};

struct CubeStats {
  std::uint64_t split_calls = 0;    ///< solve() calls that actually split
  std::uint64_t cubes = 0;          ///< cumulative cubes enumerated
  std::uint64_t cubes_refuted = 0;  ///< cumulative cubes proven UNSAT
  std::uint64_t epochs = 0;         ///< epochs of the last split solve
  std::size_t winner_cube = 0;      ///< cube that decided the last split
  double cube_wall_ms = 0.0;        ///< cumulative wall inside split solves
  double solve_wall_ms = 0.0;       ///< cumulative wall inside all solves
};

/// Drop-in solving front end mirroring PortfolioSolver's public surface.
/// Building (new_var / add_clause / freeze) fans out to every lane, so all
/// 2^depth lanes hold the identical formula and differ only by the cube
/// literals they assume during a split solve.
class CubeSolver : public ClauseSink {
 public:
  using Result = Solver::Result;

  explicit CubeSolver(const CubeOptions& opts = {});

  Var new_var() override;
  std::size_t num_vars() const override { return lanes_[0]->num_vars(); }
  bool add_clause(std::span<const Lit> lits) override;
  using ClauseSink::add_clause;

  void freeze(Var v) override {
    for (auto& l : lanes_) l->freeze(v);
  }
  void thaw(Var v) override {
    for (auto& l : lanes_) l->thaw(v);
  }

  /// Preprocesses ONCE (lane 0 simplifies; every other lane adopts the
  /// simplified database). Returns false on UNSAT.
  bool simplify();
  bool simplify(const SimplifyOptions& opts);

  /// Splits the query into cubes and conquers them (see file comment).
  /// conflict_budget < 0 means unlimited; otherwise it is a TOTAL budget
  /// for the call, charged by actual conflict deltas across all cubes, and
  /// kUnknown is returned once it is exhausted without a verdict.
  Result solve(std::span<const Lit> assumptions = {},
               std::int64_t conflict_budget = -1);

  /// Wall-clock deadline, forwarded to every lane and re-checked at each
  /// conquer barrier (an expired deadline makes every lane return kUnknown
  /// instantly, which would otherwise spin the unlimited-budget loop).
  /// Expiry surfaces as kUnknown.
  void set_deadline(std::chrono::steady_clock::time_point tp);
  void clear_deadline();

  /// Model / core access after solve(), served by the deciding lane (for a
  /// cubed UNSAT: the deduplicated union of per-cube cores, cube literals
  /// excluded — a valid core since the cubes partition the search space).
  bool model_value(Var v) const { return lanes_[winner_lane_]->model_value(v); }
  const std::vector<Lit>& unsat_core() const {
    return cubed_core_ ? core_ : lanes_[winner_lane_]->unsat_core();
  }

  bool ok() const;
  std::size_t num_lanes() const { return lanes_.size(); }
  const PortfolioSolver& lane(std::size_t i) const { return *lanes_[i]; }
  const CubeOptions& options() const { return opts_; }
  const CubeStats& cube_stats() const { return cstats_; }
  /// Branching variables of the last split solve (empty: no split).
  const std::vector<Var>& last_cube_vars() const { return last_cube_vars_; }

  /// Deciding lane's solver stats with the cube counters merged in (the
  /// SolverStats cube fields are only ever filled here).
  SolverStats stats() const;
  /// Summed over every lane (simplification reported once), plus the cube
  /// counters.
  SolverStats total_stats() const;

 private:
  Result conquer(std::span<const Lit> assumptions, std::int64_t budget,
                 const std::vector<Var>& vars);

  CubeOptions opts_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::vector<std::unique_ptr<PortfolioSolver>> lanes_;
  std::vector<Lit> core_;            // merged core of a cubed UNSAT
  std::vector<Var> last_cube_vars_;  // split of the last solve() call
  std::size_t winner_lane_ = 0;
  bool cubed_core_ = false;  // last verdict came with a merged core
  CubeStats cstats_;
};

}  // namespace orap::sat
