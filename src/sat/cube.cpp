#include "sat/cube.h"

#include <algorithm>
#include <chrono>

#include "sat/simplify.h"
#include "util/parallel.h"

namespace orap::sat {

// --- lookahead splitter (a Solver member: it probes the internal trail) ----

std::vector<Var> Solver::pick_cube_vars(std::size_t count,
                                        std::span<const Lit> avoid,
                                        std::uint32_t candidates) {
  std::vector<Var> out;
  if (count == 0 || !ok_) return out;
  ORAP_CHECK_MSG(decision_level() == 0, "pick_cube_vars only at root level");
  if (propagate() != kNullClause) {
    ok_ = false;
    return out;
  }

  // Rank variables by clause-length-weighted occurrences over the live
  // (unsatisfied) problem clauses: short clauses constrain hardest, so
  // their variables make the strongest split candidates.
  std::vector<double> occ(num_vars(), 0.0);
  for (const ClauseRef c : clauses_) {
    const Lit* ls = lits(c);
    const std::uint32_t size = header(c).size;
    std::uint32_t free_lits = 0;
    bool satisfied = false;
    for (std::uint32_t k = 0; k < size && !satisfied; ++k) {
      if (value(ls[k]) == LBool::kTrue)
        satisfied = true;
      else if (value(ls[k]) == LBool::kUndef)
        ++free_lits;
    }
    if (satisfied || free_lits == 0) continue;
    const double w =
        1.0 / static_cast<double>(1u << (free_lits < 12 ? free_lits : 12));
    for (std::uint32_t k = 0; k < size; ++k)
      if (value(ls[k]) == LBool::kUndef) occ[ls[k].var()] += w;
  }

  std::vector<char> blocked(num_vars(), 0);
  for (const Lit a : avoid) {
    ORAP_DCHECK(a.var() >= 0 &&
                static_cast<std::size_t>(a.var()) < blocked.size());
    blocked[a.var()] = 1;
  }
  std::vector<Var> cand;
  for (std::size_t v = 0; v < num_vars(); ++v) {
    if (occ[v] <= 0.0 || blocked[v] || eliminated_[v] ||
        assigns_[v] != LBool::kUndef)
      continue;
    cand.push_back(static_cast<Var>(v));
  }
  if (cand.empty()) return out;
  const std::size_t pool = std::min<std::size_t>(
      cand.size(), std::max<std::size_t>(candidates, count));
  std::partial_sort(cand.begin(), cand.begin() + static_cast<std::ptrdiff_t>(pool),
                    cand.end(), [&occ](Var a, Var b) {
                      if (occ[a] != occ[b]) return occ[a] > occ[b];
                      return a < b;
                    });
  cand.resize(pool);

  // March-style probing: propagate each polarity at a throwaway decision
  // level and score by how much of the formula each side forces. A
  // conflicting polarity is a failed literal — the best possible split,
  // since one of its cubes refutes by propagation alone.
  constexpr double kFailedScore = 1e12;
  struct Scored {
    double score;
    Var v;
  };
  std::vector<Scored> scored;
  scored.reserve(cand.size());
  for (const Var v : cand) {
    double growth[2];
    for (int s = 0; s < 2; ++s) {
      trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
      enqueue(Lit(v, s == 1), kNullClause);
      const std::size_t base = trail_.size();
      const ClauseRef confl = propagate();
      growth[s] = confl != kNullClause
                      ? kFailedScore
                      : static_cast<double>(trail_.size() - base);
      cancel_until(0);
    }
    scored.push_back(
        {(growth[0] + 1.0) * (growth[1] + 1.0) + growth[0] + growth[1], v});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.v < b.v;
            });
  const std::size_t n = std::min(count, scored.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(scored[i].v);
  return out;
}

// --- CubeSolver ------------------------------------------------------------

CubeSolver::CubeSolver(const CubeOptions& opts) : opts_(opts) {
  if (opts_.depth > CubeOptions::kMaxDepth) opts_.depth = CubeOptions::kMaxDepth;
  if (opts_.epoch_budget < 1) opts_.epoch_budget = 1;
  if (opts_.epoch_growth < 1.0) opts_.epoch_growth = 1.0;
  const std::size_t n = std::size_t{1} << opts_.depth;
  lanes_.reserve(n);
  // Every lane gets the identical portfolio configuration (same seed):
  // lanes must differ only by the cube literals they assume, so a verdict
  // never depends on which lane found it first.
  for (std::size_t i = 0; i < n; ++i)
    lanes_.push_back(std::make_unique<PortfolioSolver>(opts_.portfolio));
}

Var CubeSolver::new_var() {
  const Var v = lanes_[0]->new_var();
  for (std::size_t i = 1; i < lanes_.size(); ++i) {
    const Var w = lanes_[i]->new_var();
    ORAP_DCHECK(w == v);
    (void)w;
  }
  return v;
}

bool CubeSolver::add_clause(std::span<const Lit> lits) {
  bool ok = true;
  for (auto& l : lanes_) ok &= l->add_clause(lits);
  return ok;
}

bool CubeSolver::simplify() { return simplify(SimplifyOptions{}); }

bool CubeSolver::simplify(const SimplifyOptions& opts) {
  // Lane 0 simplifies (once, on its instance 0); everyone else adopts the
  // simplified database, mirroring PortfolioSolver::simplify one level up.
  const bool ok0 = lanes_[0]->simplify(opts);
  for (std::size_t i = 1; i < lanes_.size(); ++i)
    lanes_[i]->adopt_simplification_from(lanes_[0]->instance(0));
  return ok0;
}

void CubeSolver::set_deadline(std::chrono::steady_clock::time_point tp) {
  has_deadline_ = true;
  deadline_ = tp;
  for (auto& l : lanes_) l->set_deadline(tp);
}

void CubeSolver::clear_deadline() {
  has_deadline_ = false;
  for (auto& l : lanes_) l->clear_deadline();
}

bool CubeSolver::ok() const {
  for (const auto& l : lanes_)
    if (!l->ok()) return false;
  return true;
}

SolverStats CubeSolver::stats() const {
  SolverStats st = lanes_[winner_lane_]->stats();
  st.cubes = cstats_.cubes;
  st.cubes_refuted = cstats_.cubes_refuted;
  st.cube_wall_ms = cstats_.cube_wall_ms;
  return st;
}

SolverStats CubeSolver::total_stats() const {
  SolverStats t = lanes_[0]->total_stats();
  for (std::size_t i = 1; i < lanes_.size(); ++i) {
    const SolverStats s = lanes_[i]->total_stats();
    t.decisions += s.decisions;
    t.propagations += s.propagations;
    t.conflicts += s.conflicts;
    t.restarts += s.restarts;
    t.learnt_literals += s.learnt_literals;
    t.minimized_literals += s.minimized_literals;
    t.reduce_dbs += s.reduce_dbs;
    t.clauses_carried += s.clauses_carried;
    t.incremental_rounds += s.incremental_rounds;
    // Simplification runs once and is adopted everywhere: lane 0's copy
    // already accounts for it.
  }
  t.cubes = cstats_.cubes;
  t.cubes_refuted = cstats_.cubes_refuted;
  t.cube_wall_ms = cstats_.cube_wall_ms;
  return t;
}

CubeSolver::Result CubeSolver::solve(std::span<const Lit> assumptions,
                                     std::int64_t conflict_budget) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto wall = [&t0] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  cubed_core_ = false;
  winner_lane_ = 0;
  last_cube_vars_.clear();

  // Paths that never split: no splitting configured, a formula already
  // proven UNSAT at root (identical in every lane), or a zero budget —
  // match the single solver's immediate "aborted query" without paying
  // for a lookahead.
  if (lanes_.size() == 1 || !lanes_[0]->ok() || conflict_budget == 0) {
    const Result r = lanes_[0]->solve(assumptions, conflict_budget);
    cstats_.solve_wall_ms += wall();
    return r;
  }

  const std::vector<Var> vars = lanes_[0]->pick_cube_vars(
      opts_.depth, assumptions, opts_.lookahead_candidates);
  if (vars.empty()) {
    // Too few splittable variables (or the lookahead hit a root
    // conflict): fall back to a plain solve on lane 0.
    const Result r = lanes_[0]->solve(assumptions, conflict_budget);
    cstats_.solve_wall_ms += wall();
    return r;
  }
  last_cube_vars_ = vars;
  const Result r = conquer(assumptions, conflict_budget, vars);
  const double w = wall();
  cstats_.solve_wall_ms += w;
  cstats_.cube_wall_ms += w;
  return r;
}

CubeSolver::Result CubeSolver::conquer(std::span<const Lit> assumptions,
                                       std::int64_t budget,
                                       const std::vector<Var>& vars) {
  const std::size_t ncubes = std::size_t{1} << vars.size();
  ++cstats_.split_calls;
  cstats_.cubes += ncubes;
  cstats_.epochs = 0;
  cstats_.winner_cube = 0;

  // Cube c assumes the caller's assumptions first (so lane cores keep
  // referring to them), then one literal per branching variable — bit j
  // of c picks the polarity of vars[j].
  std::vector<std::vector<Lit>> cube_assum(ncubes);
  for (std::size_t c = 0; c < ncubes; ++c) {
    auto& as = cube_assum[c];
    as.reserve(assumptions.size() + vars.size());
    as.assign(assumptions.begin(), assumptions.end());
    for (std::size_t j = 0; j < vars.size(); ++j)
      as.push_back(Lit(vars[j], ((c >> j) & 1) != 0));
  }
  std::vector<char> is_cube_var(num_vars(), 0);
  for (const Var v : vars) is_cube_var[static_cast<std::size_t>(v)] = 1;

  std::vector<Result> results(ncubes, Result::kUnknown);
  std::vector<char> refuted(ncubes, 0);
  std::vector<std::uint64_t> before(ncubes, 0);
  std::vector<Lit> merged_core;
  std::size_t live = ncubes;
  std::int64_t total_spent = 0;
  std::int64_t epoch_budget = opts_.epoch_budget;

  while (true) {
    if (budget >= 0 && total_spent >= budget) return Result::kUnknown;
    // Deadline check at the barrier (see set_deadline): expired lanes all
    // answer kUnknown, so the loop must stop here, not spin.
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_)
      return Result::kUnknown;
    // Deterministic per-cube grant: the epoch budget, capped by an equal
    // share of whatever remains of the call's total budget. Charging the
    // ACTUAL post-epoch conflict deltas (not the grants) keeps --cube=D
    // runs comparable to a single solver under the same budget.
    std::int64_t grant = epoch_budget;
    if (budget >= 0) {
      std::int64_t share =
          (budget - total_spent) / static_cast<std::int64_t>(live);
      if (share < 1) share = 1;
      if (grant > share) grant = share;
    }
    // Lockstep epoch: lanes are independent sequential searches writing
    // to disjoint slots, so pool placement cannot affect any result.
    parallel_for(1, ncubes, [&](std::size_t c) {
      if (refuted[c]) return;
      before[c] = lanes_[c]->total_stats().conflicts;
      results[c] = lanes_[c]->solve(cube_assum[c], grant);
    });
    ++cstats_.epochs;
    for (std::size_t c = 0; c < ncubes; ++c)
      if (!refuted[c])
        total_spent += static_cast<std::int64_t>(
            lanes_[c]->total_stats().conflicts - before[c]);

    // Barrier arbitration in ascending cube index on the calling thread:
    // the smallest satisfied cube wins kSat.
    for (std::size_t c = 0; c < ncubes; ++c) {
      if (refuted[c] || results[c] != Result::kSat) continue;
      winner_lane_ = c;
      cstats_.winner_cube = c;
      return Result::kSat;
    }
    for (std::size_t c = 0; c < ncubes; ++c) {
      if (refuted[c] || results[c] != Result::kUnsat) continue;
      const std::vector<Lit>& core = lanes_[c]->unsat_core();
      bool uses_cube_lit = false;
      for (const Lit l : core) {
        if (is_cube_var[static_cast<std::size_t>(l.var())]) {
          uses_cube_lit = true;
          break;
        }
      }
      if (!uses_cube_lit) {
        // The refutation never touched this cube's literals, so it holds
        // for the whole query; lane c's core is already the answer.
        winner_lane_ = c;
        cstats_.winner_cube = c;
        return Result::kUnsat;
      }
      refuted[c] = 1;
      --live;
      ++cstats_.cubes_refuted;
      for (const Lit l : core)
        if (!is_cube_var[static_cast<std::size_t>(l.var())])
          merged_core.push_back(l);
    }
    if (live == 0) {
      // Every cube refuted: the union of the per-cube cores (cube
      // literals excluded) is a valid core, because the cubes cover the
      // whole assignment space of the branching variables.
      std::sort(merged_core.begin(), merged_core.end(),
                [](Lit a, Lit b) { return a.index() < b.index(); });
      merged_core.erase(std::unique(merged_core.begin(), merged_core.end()),
                        merged_core.end());
      core_ = std::move(merged_core);
      cubed_core_ = true;
      winner_lane_ = 0;
      cstats_.winner_cube = 0;
      return Result::kUnsat;
    }

    constexpr std::int64_t kMaxEpochBudget = std::int64_t{1} << 40;
    if (epoch_budget < kMaxEpochBudget) {
      epoch_budget = static_cast<std::int64_t>(
          static_cast<double>(epoch_budget) * opts_.epoch_growth);
      if (epoch_budget < opts_.epoch_budget) epoch_budget = opts_.epoch_budget;
      if (epoch_budget > kMaxEpochBudget) epoch_budget = kMaxEpochBudget;
    }
  }
}

}  // namespace orap::sat
