#include "eval/metrics.h"

#include "netlist/simulator.h"

namespace orap {

HdResult hamming_corruptibility(const LockedCircuit& lc, std::size_t num_words,
                                std::size_t num_keys, std::uint64_t seed) {
  ORAP_CHECK(num_words > 0 && num_keys > 0);
  Rng rng(seed);
  const Netlist& n = lc.netlist;
  Simulator sim(n);

  // Wrong keys, sampled up front (re-draw on the vanishing chance of
  // hitting the correct key).
  std::vector<BitVec> wrong_keys;
  while (wrong_keys.size() < num_keys) {
    BitVec k = BitVec::random(lc.num_key_inputs, rng);
    if (k == lc.correct_key) continue;
    wrong_keys.push_back(std::move(k));
  }

  auto set_key = [&](const BitVec& key) {
    for (std::size_t i = 0; i < lc.num_key_inputs; ++i)
      sim.set_input_word(lc.num_data_inputs + i, key.get(i) ? ~0ULL : 0ULL);
  };

  std::uint64_t diff_bits = 0;
  std::uint64_t total_bits = 0;
  std::vector<std::uint64_t> golden(n.num_outputs());
  std::vector<std::uint64_t> data_words(lc.num_data_inputs);

  for (std::size_t w = 0; w < num_words; ++w) {
    for (auto& dw : data_words) dw = rng.word();
    for (std::size_t i = 0; i < lc.num_data_inputs; ++i)
      sim.set_input_word(i, data_words[i]);
    set_key(lc.correct_key);
    sim.run();
    for (std::size_t o = 0; o < n.num_outputs(); ++o)
      golden[o] = sim.output_word(o);

    for (const BitVec& key : wrong_keys) {
      for (std::size_t i = 0; i < lc.num_data_inputs; ++i)
        sim.set_input_word(i, data_words[i]);
      set_key(key);
      sim.run();
      for (std::size_t o = 0; o < n.num_outputs(); ++o)
        diff_bits += static_cast<std::uint64_t>(
            __builtin_popcountll(golden[o] ^ sim.output_word(o)));
      total_bits += n.num_outputs() * 64;
    }
  }

  HdResult r;
  r.hd_percent = 100.0 * static_cast<double>(diff_bits) /
                 static_cast<double>(total_bits);
  r.patterns = num_words * 64;
  r.keys = num_keys;
  return r;
}

OverheadResult measure_overhead(const Netlist& original,
                                const Netlist& protected_netlist,
                                std::size_t extra_protected_gates,
                                const aig::RewriteOptions& opts) {
  const aig::AigStats so = aig::resynthesized_stats(original, opts);
  const aig::AigStats sp = aig::resynthesized_stats(protected_netlist, opts);
  OverheadResult r;
  r.area_original = so.ands;
  r.area_protected = sp.ands + extra_protected_gates;
  r.delay_original = so.depth;
  r.delay_protected = sp.depth;
  r.area_overhead_pct =
      100.0 *
      (static_cast<double>(r.area_protected) - static_cast<double>(so.ands)) /
      static_cast<double>(so.ands);
  r.delay_overhead_pct =
      so.depth == 0
          ? 0.0
          : 100.0 *
                (static_cast<double>(sp.depth) - static_cast<double>(so.depth)) /
                static_cast<double>(so.depth);
  return r;
}

}  // namespace orap
