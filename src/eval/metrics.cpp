#include "eval/metrics.h"

#include <memory>

#include "netlist/simulator.h"
#include "util/parallel.h"

namespace orap {

namespace {

/// Per-chunk tally of the (word-block x wrong-key) grid.
struct HdTally {
  std::uint64_t diff_bits = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t err_patterns = 0;    // patterns with >= 1 corrupted output
  std::uint64_t total_patterns = 0;  // (pattern, wrong key) pairs
};

}  // namespace

HdResult hamming_corruptibility(const LockedCircuit& lc, std::size_t num_words,
                                std::size_t num_keys, std::uint64_t seed) {
  ORAP_CHECK(num_words > 0 && num_keys > 0);
  Rng rng(seed);
  const Netlist& n = lc.netlist;

  // Wrong keys, sampled up front (re-draw on the vanishing chance of
  // hitting the correct key).
  std::vector<BitVec> wrong_keys;
  while (wrong_keys.size() < num_keys) {
    BitVec k = BitVec::random(lc.num_key_inputs, rng);
    if (k == lc.correct_key) continue;
    wrong_keys.push_back(std::move(k));
  }

  // All pseudorandom data words drawn up front, in the same sequence the
  // serial loop used — the draws are what fix the result, so sharding the
  // simulation afterwards cannot change it.
  std::vector<std::uint64_t> data_words(num_words * lc.num_data_inputs);
  for (auto& dw : data_words) dw = rng.word();

  // Shard the word-block axis: each block = 1 golden run + num_keys wrong
  // runs on a thread-local simulator; diff/total counts merge in chunk
  // order (exact integer sums, so the total is thread-count invariant).
  std::vector<std::unique_ptr<Simulator>> sims(parallel_threads());
  const HdTally tally = parallel_reduce(
      /*grain=*/1, num_words, HdTally{},
      [&](std::size_t wb, std::size_t we, std::size_t) {
        const std::size_t slot = parallel_slot();
        if (!sims[slot]) sims[slot] = std::make_unique<Simulator>(n);
        Simulator& sim = *sims[slot];
        auto set_key = [&](const BitVec& key) {
          for (std::size_t i = 0; i < lc.num_key_inputs; ++i)
            sim.set_input_word(lc.num_data_inputs + i,
                               key.get(i) ? ~0ULL : 0ULL);
        };
        HdTally t;
        std::vector<std::uint64_t> golden(n.num_outputs());
        for (std::size_t w = wb; w < we; ++w) {
          const std::uint64_t* words = &data_words[w * lc.num_data_inputs];
          for (std::size_t i = 0; i < lc.num_data_inputs; ++i)
            sim.set_input_word(i, words[i]);
          set_key(lc.correct_key);
          sim.run();
          for (std::size_t o = 0; o < n.num_outputs(); ++o)
            golden[o] = sim.output_word(o);

          for (const BitVec& key : wrong_keys) {
            for (std::size_t i = 0; i < lc.num_data_inputs; ++i)
              sim.set_input_word(i, words[i]);
            set_key(key);
            sim.run();
            std::uint64_t diff_any = 0;
            for (std::size_t o = 0; o < n.num_outputs(); ++o) {
              const std::uint64_t d = golden[o] ^ sim.output_word(o);
              t.diff_bits += static_cast<std::uint64_t>(
                  __builtin_popcountll(d));
              diff_any |= d;
            }
            t.err_patterns +=
                static_cast<std::uint64_t>(__builtin_popcountll(diff_any));
            t.total_bits += n.num_outputs() * 64;
            t.total_patterns += 64;
          }
        }
        return t;
      },
      [](HdTally acc, HdTally part) {
        acc.diff_bits += part.diff_bits;
        acc.total_bits += part.total_bits;
        acc.err_patterns += part.err_patterns;
        acc.total_patterns += part.total_patterns;
        return acc;
      });

  HdResult r;
  r.hd_percent = 100.0 * static_cast<double>(tally.diff_bits) /
                 static_cast<double>(tally.total_bits);
  r.error_rate_pct = 100.0 * static_cast<double>(tally.err_patterns) /
                     static_cast<double>(tally.total_patterns);
  r.patterns = num_words * 64;
  r.keys = num_keys;
  return r;
}

OverheadResult measure_overhead(const Netlist& original,
                                const Netlist& protected_netlist,
                                std::size_t extra_protected_gates,
                                const aig::RewriteOptions& opts) {
  const aig::AigStats so = aig::resynthesized_stats(original, opts);
  const aig::AigStats sp = aig::resynthesized_stats(protected_netlist, opts);
  OverheadResult r;
  r.area_original = so.ands;
  r.area_protected = sp.ands + extra_protected_gates;
  r.delay_original = so.depth;
  r.delay_protected = sp.depth;
  r.area_overhead_pct =
      100.0 *
      (static_cast<double>(r.area_protected) - static_cast<double>(so.ands)) /
      static_cast<double>(so.ands);
  r.delay_overhead_pct =
      so.depth == 0
          ? 0.0
          : 100.0 *
                (static_cast<double>(sp.depth) - static_cast<double>(so.depth)) /
                static_cast<double>(so.depth);
  return r;
}

}  // namespace orap
