#pragma once
// Evaluation metrics behind Table I: Hamming-distance output
// corruptibility under wrong keys, and area/delay overhead after
// resynthesis of the original vs. protected circuit.

#include <cstdint>

#include "aig/rewrite.h"
#include "locking/locking.h"

namespace orap {

struct HdResult {
  double hd_percent = 0.0;  // avg % of output bits differing from correct
  // % of (pattern, wrong key) pairs with at least one corrupted output —
  // the "error rate" corruptibility measure from the SFLL literature.
  // Point-function schemes (SARLock, SFLL-HD at small h) have a near-zero
  // error rate even when individual errors exist; XOR/weighted locking
  // corrupts nearly every pattern.
  double error_rate_pct = 0.0;
  std::size_t patterns = 0;  // total input patterns simulated
  std::size_t keys = 0;      // wrong keys sampled
};

/// Paper methodology: apply the valid key and `num_keys` random (wrong)
/// keys over `num_words`*64 pseudorandom input patterns; HD% is the mean
/// fraction of corrupted output bits.
HdResult hamming_corruptibility(const LockedCircuit& lc, std::size_t num_words,
                                std::size_t num_keys, std::uint64_t seed);

struct OverheadResult {
  std::size_t area_original = 0;   // resynthesized AND count
  std::size_t area_protected = 0;  // resynthesized AND count + extra gates
  std::uint32_t delay_original = 0;
  std::uint32_t delay_protected = 0;
  double area_overhead_pct = 0.0;
  double delay_overhead_pct = 0.0;
};

/// Resynthesizes both circuits (the ABC strash→refactor→rewrite stand-in)
/// and reports relative overheads. `extra_protected_gates` accounts for
/// locking hardware that is not part of the combinational netlist (the
/// OraP pulse generators and LFSR reseeding/feedback XORs, per Sec. IV).
OverheadResult measure_overhead(const Netlist& original,
                                const Netlist& protected_netlist,
                                std::size_t extra_protected_gates = 0,
                                const aig::RewriteOptions& opts = {});

}  // namespace orap
