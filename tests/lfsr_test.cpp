// Tests for the LFSR key engine: bit-level semantics, linearity, the
// symbolic transfer matrix, key-sequence synthesis, and the XOR-tree cost
// metric behind design decision E5 (LFSR vs. plain shift register).

#include <gtest/gtest.h>

#include "lfsr/lfsr.h"
#include "util/rng.h"

namespace orap {
namespace {

TEST(LfsrConfig, StandardTapsEveryEight) {
  const LfsrConfig cfg = LfsrConfig::standard(32);
  EXPECT_EQ(cfg.size, 32u);
  // Taps at 7, 15, 23, 31.
  EXPECT_EQ(cfg.feedback_taps, (std::vector<std::size_t>{7, 15, 23, 31}));
  EXPECT_EQ(cfg.num_reseed_points(), 32u);
}

TEST(LfsrConfig, StandardAlwaysTapsLastCell) {
  const LfsrConfig cfg = LfsrConfig::standard(20);
  EXPECT_EQ(cfg.feedback_taps.back(), 19u);
}

TEST(LfsrConfig, SupportGateCount) {
  const LfsrConfig cfg = LfsrConfig::standard(128);
  // 128 reseed XORs + 16 feedback XORs + 128 pulse-gen NANDs.
  EXPECT_EQ(cfg.support_gate_count(), 128u + 16u + 128u);
}

TEST(Lfsr, ShiftMovesBitsRight) {
  LfsrConfig cfg = LfsrConfig::shift_register(8);
  Lfsr l(cfg);
  BitVec inj(8);
  inj.set(0, true);  // inject into cell 0 on first cycle
  l.step(inj);
  EXPECT_TRUE(l.state().get(0));
  l.free_run(3);
  EXPECT_TRUE(l.state().get(3));
  EXPECT_EQ(l.state().count(), 1u);
}

TEST(Lfsr, FeedbackWraps) {
  LfsrConfig cfg;
  cfg.size = 4;
  cfg.feedback_taps = {3};
  cfg.reseed_points = {0, 1, 2, 3};
  Lfsr l(cfg);
  BitVec inj(4);
  inj.set(3, true);
  l.step(inj);  // state 0001 (bit3)
  l.free_run(1);
  // bit3 fed back into cell 0; bit3 shifted out.
  EXPECT_TRUE(l.state().get(0));
  EXPECT_EQ(l.state().count(), 1u);
}

TEST(Lfsr, ResetClears) {
  Lfsr l(LfsrConfig::standard(16));
  Rng rng(1);
  l.set_state(BitVec::random(16, rng));
  l.reset();
  EXPECT_TRUE(l.state().none());
}

TEST(Lfsr, MaxLengthPolynomialCycles) {
  // x^4 + x^3 + 1 (taps 3,2 in our indexing? verify a full 15-cycle period
  // for the classic 4-bit maximal LFSR: feedback from cells 3 and 2).
  LfsrConfig cfg;
  cfg.size = 4;
  cfg.feedback_taps = {2, 3};
  cfg.reseed_points = {0};
  Lfsr l(cfg);
  BitVec seed(1);
  seed.set(0, true);
  l.step(seed);  // state = 0001 shifted? cell0 = 1
  const BitVec start = l.state();
  int period = 0;
  do {
    l.free_run(1);
    ++period;
  } while (!(l.state() == start) && period < 100);
  EXPECT_EQ(period, 15);
}

TEST(Lfsr, LinearityOfStep) {
  // step(a ^ b) from state s equals step(a) from s XOR step(b) from 0.
  const LfsrConfig cfg = LfsrConfig::standard(24);
  Rng rng(9);
  for (int t = 0; t < 20; ++t) {
    const BitVec s = BitVec::random(24, rng);
    const BitVec a = BitVec::random(24, rng);
    const BitVec b = BitVec::random(24, rng);
    Lfsr l1(cfg), l2(cfg), l3(cfg);
    l1.set_state(s);
    l1.step(a ^ b);
    l2.set_state(s);
    l2.step(a);
    l3.set_state(BitVec(24));
    l3.step(b);
    EXPECT_EQ(l1.state(), l2.state() ^ l3.state());
  }
}

TEST(KeySequence, FlattenRoundTrip) {
  Rng rng(4);
  KeySequence seq;
  seq.seeds = {BitVec::random(16, rng), BitVec::random(16, rng),
               BitVec::random(16, rng)};
  seq.gaps = {0, 2, 5};
  const BitVec flat = seq.flatten();
  EXPECT_EQ(flat.size(), 48u);
  const KeySequence back = KeySequence::unflatten(flat, 16, seq.gaps);
  for (int s = 0; s < 3; ++s) EXPECT_EQ(back.seeds[s], seq.seeds[s]);
  EXPECT_EQ(back.total_cycles(), 3u + 7u);
}

class TransferMatrixProperty : public ::testing::TestWithParam<int> {};

TEST_P(TransferMatrixProperty, MatrixPredictsConcreteLfsr) {
  // key_transfer_matrix must agree with the bit-level LFSR for random
  // schedules and random seeds — the linear-algebra core of OraP.
  Rng rng(300 + GetParam());
  const std::size_t n = 8 + rng.below(40);
  const LfsrConfig cfg = LfsrConfig::standard(n);
  const std::size_t num_seeds = 1 + rng.below(4);
  std::vector<std::size_t> gaps;
  for (std::size_t s = 0; s < num_seeds; ++s) gaps.push_back(rng.below(6));
  const Gf2Matrix m = key_transfer_matrix(cfg, num_seeds, gaps);

  KeySequence seq;
  seq.gaps = gaps;
  for (std::size_t s = 0; s < num_seeds; ++s)
    seq.seeds.push_back(BitVec::random(cfg.num_reseed_points(), rng));
  Lfsr l(cfg);
  const BitVec concrete = run_key_sequence(l, seq);
  EXPECT_EQ(m.apply(seq.flatten()), concrete);
}

TEST_P(TransferMatrixProperty, SynthesisHitsTargetKey) {
  Rng rng(800 + GetParam());
  const std::size_t n = 16 + rng.below(48);
  const LfsrConfig cfg = LfsrConfig::standard(n);
  const std::size_t num_seeds = 2;
  const std::vector<std::size_t> gaps{rng.below(4), rng.below(4)};
  const BitVec target = BitVec::random(n, rng);
  const auto seq = synthesize_key_sequence(cfg, num_seeds, gaps, target, rng);
  ASSERT_TRUE(seq.has_value());
  Lfsr l(cfg);
  EXPECT_EQ(run_key_sequence(l, *seq), target);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TransferMatrixProperty, ::testing::Range(0, 10));

TEST(Synthesis, RandomizedSolutionsDiffer) {
  // Free variables must be randomized: two syntheses of the same key give
  // different sequences (overwhelming probability with 2x oversampling).
  Rng rng(5);
  const LfsrConfig cfg = LfsrConfig::standard(32);
  const BitVec target = BitVec::random(32, rng);
  const auto s1 = synthesize_key_sequence(cfg, 2, {1, 1}, target, rng);
  const auto s2 = synthesize_key_sequence(cfg, 2, {1, 1}, target, rng);
  ASSERT_TRUE(s1 && s2);
  EXPECT_NE(s1->flatten(), s2->flatten());
  Lfsr l(cfg);
  EXPECT_EQ(run_key_sequence(l, *s1), run_key_sequence(l, *s2));
}

TEST(Synthesis, SingleSeedFullWidthIsExact) {
  // One seed with reseed points everywhere and no free-run = direct load.
  Rng rng(6);
  const LfsrConfig cfg = LfsrConfig::standard(24);
  const BitVec target = BitVec::random(24, rng);
  const auto seq = synthesize_key_sequence(cfg, 1, {0}, target, rng);
  ASSERT_TRUE(seq.has_value());
  Lfsr l(cfg);
  EXPECT_EQ(run_key_sequence(l, *seq), target);
}

TEST(Synthesis, SparseReseedPointsNeedMoreSeeds) {
  // With only 4 reseed points on a 32-cell LFSR, one seed (4 vars) cannot
  // reach a generic 32-bit key; eight+ seeds with gaps can.
  Rng rng(7);
  LfsrConfig cfg = LfsrConfig::standard(32);
  cfg.reseed_points = {0, 8, 16, 24};
  const BitVec target = BitVec::random(32, rng);
  EXPECT_FALSE(synthesize_key_sequence(cfg, 1, {0}, target, rng).has_value());
  // Gap choice matters: per-seed period 2 (gap 1) only reaches the even
  // shift offsets of the 8-spaced reseed points (rank 16); period 3
  // (gap 2) is coprime with the spacing and reaches full rank.
  std::vector<std::size_t> gaps1(8, 1);
  EXPECT_FALSE(synthesize_key_sequence(cfg, 8, gaps1, target, rng).has_value());
  std::vector<std::size_t> gaps(8, 2);
  const auto seq = synthesize_key_sequence(cfg, 8, gaps, target, rng);
  ASSERT_TRUE(seq.has_value());
  Lfsr l(cfg);
  EXPECT_EQ(run_key_sequence(l, *seq), target);
}

TEST(XorTreeCost, LfsrMixingBeatsShiftRegister) {
  // E5 / Sec. III-d: with free-run cycles, the LFSR feedback spreads every
  // seed bit across many cells, so the attack-(d) XOR trees are much
  // larger than for a plain shift register.
  const std::size_t n = 64;
  const std::vector<std::size_t> gaps{8, 8, 8};
  const Gf2Matrix lfsr_m =
      key_transfer_matrix(LfsrConfig::standard(n), 3, gaps);
  const Gf2Matrix sr_m =
      key_transfer_matrix(LfsrConfig::shift_register(n), 3, gaps);
  EXPECT_GT(xor_tree_cost(lfsr_m), 2 * xor_tree_cost(sr_m));
}

TEST(XorTreeCost, DirectLoadIsFree) {
  // One full-width seed, no free-run: every key bit is one seed bit.
  const Gf2Matrix m = key_transfer_matrix(LfsrConfig::shift_register(16), 1, {0});
  EXPECT_EQ(xor_tree_cost(m), 0u);
}

TEST(XorTreeCost, GrowsWithFreeRunCycles) {
  const LfsrConfig cfg = LfsrConfig::standard(48);
  std::size_t prev = 0;
  for (const std::size_t gap : {0u, 4u, 12u}) {
    const std::size_t cost =
        xor_tree_cost(key_transfer_matrix(cfg, 2, {gap, gap}));
    EXPECT_GE(cost, prev);
    prev = cost;
  }
  EXPECT_GT(prev, 0u);
}

}  // namespace
}  // namespace orap
