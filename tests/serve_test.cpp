// Oracle-as-a-service suite: the wire protocol (serve/wire.h) including
// malformed-input rejection, OracleServer + RemoteOracle over a real fd
// transport (attacks recover the identical key through the wire), and the
// checkpoint/resume layer (attacks/checkpoint.h): interrupting an attack
// at several DIP counts across the threads x portfolio x cube grid and
// resuming to a byte-identical final key, status, and counters, plus
// rejection of corrupted, truncated, and foreign checkpoint files.
// Every test is named Serve.* or Checkpoint.* so CI's sanitizer legs can
// select the suites wholesale.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "attacks/checkpoint.h"
#include "attacks/faulty_oracle.h"
#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "serve/oracle_server.h"
#include "serve/remote_oracle.h"
#include "serve/transport.h"
#include "serve/wire.h"
#include "util/bitvec.h"
#include "util/bytes.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace orap {
namespace {

using serve::Frame;
using serve::FrameType;

Netlist serve_circuit(std::uint64_t seed) {
  GenSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 16;
  spec.num_gates = 300;
  spec.depth = 8;
  spec.seed = seed;
  return generate_circuit(spec);
}

/// XOR locking on this circuit takes a multi-DIP attack (the same
/// configuration the resilience suite uses), which the resume tests need:
/// a 1-DIP attack has no interior to interrupt.
LockedCircuit multi_dip_lock() {
  GenSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 16;
  spec.num_gates = 400;
  spec.depth = 8;
  spec.seed = 77;
  return lock_random_xor(generate_circuit(spec), 32, 5);
}

/// In-memory Transport for wire-format tests: writes append to a buffer,
/// reads consume it; short reads fail like a truncated stream.
class MemTransport final : public serve::Transport {
 public:
  bool read_full(void* buf, std::size_t n) override {
    if (buf_.size() - pos_ < n) return false;
    std::memcpy(buf, buf_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool write_full(const void* buf, std::size_t n) override {
    const auto* p = static_cast<const std::uint8_t*>(buf);
    buf_.insert(buf_.end(), p, p + n);
    return true;
  }

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

/// Connected FdTransport pair over two pipes (client/server ends), the
/// same code path the subprocess transport exercises.
struct PipePair {
  std::unique_ptr<serve::FdTransport> client;
  std::unique_ptr<serve::FdTransport> server;
};

PipePair make_pipe_pair() {
  int c2s[2], s2c[2];
  EXPECT_EQ(::pipe(c2s), 0);
  EXPECT_EQ(::pipe(s2c), 0);
  PipePair p;
  p.client = std::make_unique<serve::FdTransport>(s2c[0], c2s[1],
                                                  /*timeout_ms=*/10000);
  p.server = std::make_unique<serve::FdTransport>(c2s[0], s2c[1],
                                                  /*timeout_ms=*/10000);
  return p;
}

/// Oracle decorator simulating a kill: passes through `allow` queries,
/// then throws out of the attack the way SIGKILL lands mid-query.
class KillSwitch final : public OracleDecorator {
 public:
  KillSwitch(Oracle& inner, std::size_t allow)
      : OracleDecorator(inner), allow_(allow) {}

 protected:
  OracleResult do_query(const BitVec& data) override {
    if (used_ >= allow_) throw std::runtime_error("killed");
    ++used_;
    return inner().query(data);
  }

 private:
  std::size_t allow_;
  std::size_t used_ = 0;
};

void expect_same_result(const SatAttackResult& got,
                        const SatAttackResult& want) {
  EXPECT_EQ(got.status, want.status);
  EXPECT_EQ(got.key.size(), want.key.size());
  EXPECT_EQ(got.key.words(), want.key.words());
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.oracle_queries, want.oracle_queries);
  EXPECT_EQ(got.oracle_retries, want.oracle_retries);
  EXPECT_EQ(got.vote_queries, want.vote_queries);
  EXPECT_EQ(got.evicted_pairs, want.evicted_pairs);
  EXPECT_EQ(got.requeried_pairs, want.requeried_pairs);
}

// --- wire format ----------------------------------------------------------

TEST(Serve, PackBitsRoundTrip) {
  Rng rng(11);
  for (const std::size_t nbits : {1u, 20u, 63u, 64u, 65u, 127u, 200u}) {
    const BitVec v = BitVec::random(nbits, rng);
    std::vector<std::uint8_t> buf;
    serve::pack_bits(&buf, v);
    EXPECT_EQ(buf.size(), serve::packed_words(nbits) * 8);
    bytes::Reader in(buf);
    BitVec back;
    ASSERT_TRUE(serve::unpack_bits(&in, nbits, &back));
    EXPECT_EQ(back.words(), v.words());
    EXPECT_EQ(back.size(), nbits);
  }
}

TEST(Serve, UnpackBitsRejectsTailGarbage) {
  // 20 bits but the packed word carries a bit above position 19.
  std::vector<std::uint8_t> buf;
  bytes::put_u64(&buf, 1ULL << 20);
  bytes::Reader in(buf);
  BitVec v;
  EXPECT_FALSE(serve::unpack_bits(&in, 20, &v));
}

TEST(Serve, QueryBatchRoundTrip) {
  Rng rng(12);
  std::vector<BitVec> xs;
  for (int i = 0; i < 7; ++i) xs.push_back(BitVec::random(70, rng));
  const std::vector<std::uint8_t> body = serve::encode_query_batch(xs, true);
  bool requery = false;
  std::vector<BitVec> back;
  ASSERT_TRUE(serve::decode_query_batch(body, 70, &requery, &back));
  EXPECT_TRUE(requery);
  ASSERT_EQ(back.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_EQ(back[i].words(), xs[i].words());
}

TEST(Serve, QueryBatchRejectsMalformedBodies) {
  Rng rng(13);
  const std::vector<BitVec> xs = {BitVec::random(70, rng)};
  std::vector<std::uint8_t> body = serve::encode_query_batch(xs, false);
  bool requery;
  std::vector<BitVec> back;
  // Trailing garbage.
  std::vector<std::uint8_t> longer = body;
  longer.push_back(0);
  EXPECT_FALSE(serve::decode_query_batch(longer, 70, &requery, &back));
  // Truncated payload.
  std::vector<std::uint8_t> shorter(body.begin(), body.end() - 1);
  EXPECT_FALSE(serve::decode_query_batch(shorter, 70, &requery, &back));
  // Count that does not match the payload size.
  std::vector<std::uint8_t> lying = body;
  lying[1] = 9;
  EXPECT_FALSE(serve::decode_query_batch(lying, 70, &requery, &back));
  // Shape the batch was not encoded for.
  EXPECT_FALSE(serve::decode_query_batch(body, 130, &requery, &back));
  // Empty body.
  EXPECT_FALSE(serve::decode_query_batch({}, 70, &requery, &back));
}

TEST(Serve, BatchReplyRoundTripWithErrors) {
  Rng rng(14);
  std::vector<OracleResult> rs;
  rs.push_back(OracleResult(BitVec::random(33, rng)));
  rs.push_back(OracleResult::failure(OracleErrorKind::kTransient));
  rs.push_back(OracleResult(BitVec::random(33, rng)));
  rs.push_back(OracleResult::failure(OracleErrorKind::kExhausted));
  const std::vector<std::uint8_t> body = serve::encode_batch_reply(rs);
  std::vector<OracleResult> back;
  ASSERT_TRUE(serve::decode_batch_reply(body, 33, &back));
  ASSERT_EQ(back.size(), rs.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    ASSERT_EQ(back[i].ok(), rs[i].ok());
    if (rs[i].ok())
      EXPECT_EQ(back[i].response().words(), rs[i].response().words());
    else
      EXPECT_EQ(back[i].error().kind, rs[i].error().kind);
  }
  // Truncation anywhere in the body must be rejected.
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    std::vector<std::uint8_t> t(body.begin(), body.begin() + cut);
    EXPECT_FALSE(serve::decode_batch_reply(t, 33, &back)) << "cut=" << cut;
  }
}

TEST(Serve, HelloAckErrorRoundTrip) {
  std::uint32_t version = 0;
  ASSERT_TRUE(serve::decode_hello(serve::encode_hello(), &version));
  EXPECT_EQ(version, serve::kProtoVersion);

  serve::HelloReply r;
  r.version = serve::kProtoVersion;
  r.num_inputs = 36;
  r.num_outputs = 16;
  serve::HelloReply back;
  ASSERT_TRUE(serve::decode_hello_reply(serve::encode_hello_reply(r), &back));
  EXPECT_EQ(back.num_inputs, 36u);
  EXPECT_EQ(back.num_outputs, 16u);

  bool ok = false;
  ASSERT_TRUE(serve::decode_ack(serve::encode_ack(true), &ok));
  EXPECT_TRUE(ok);
  EXPECT_FALSE(serve::decode_ack({}, &ok));

  std::string msg;
  ASSERT_TRUE(serve::decode_error(serve::encode_error("boom"), &msg));
  EXPECT_EQ(msg, "boom");
}

TEST(Serve, FrameRoundTripAndRejection) {
  MemTransport t;
  const std::vector<std::uint8_t> body = {1, 2, 3, 4};
  ASSERT_TRUE(serve::write_frame(t, FrameType::kQueryBatch, body));
  Frame f;
  ASSERT_TRUE(serve::read_frame(t, &f));
  EXPECT_EQ(f.type, FrameType::kQueryBatch);
  EXPECT_EQ(f.body, body);

  // Truncated header / truncated body: torn, not EOF.
  MemTransport t2;
  t2.buf_ = {0x04, 0x00};
  EXPECT_EQ(serve::read_frame_ex(t2, &f), serve::FrameRead::kTorn);
  MemTransport t3;
  bytes::put_u32(&t3.buf_, 100);
  bytes::put_u8(&t3.buf_, static_cast<std::uint8_t>(FrameType::kAck));
  bytes::put_u32(&t3.buf_, 0);  // crc field; body never arrives
  EXPECT_EQ(serve::read_frame_ex(t3, &f), serve::FrameRead::kTorn);

  // A clean hangup (zero bytes) is EOF, distinguishable from torn.
  MemTransport t_eof;
  EXPECT_EQ(serve::read_frame_ex(t_eof, &f), serve::FrameRead::kEof);

  // Oversized body length: rejected before any allocation.
  MemTransport t4;
  bytes::put_u32(&t4.buf_, serve::kMaxFrameBody + 1);
  bytes::put_u8(&t4.buf_, static_cast<std::uint8_t>(FrameType::kQueryBatch));
  bytes::put_u32(&t4.buf_, 0);
  EXPECT_EQ(serve::read_frame_ex(t4, &f), serve::FrameRead::kBad);

  // Unknown frame type byte.
  MemTransport t5;
  bytes::put_u32(&t5.buf_, 0);
  bytes::put_u8(&t5.buf_, 200);
  bytes::put_u32(&t5.buf_, 0);
  EXPECT_EQ(serve::read_frame_ex(t5, &f), serve::FrameRead::kBad);
}

TEST(Serve, FrameCrcCatchesCorruption) {
  const std::vector<std::uint8_t> body = {9, 8, 7, 6, 5};
  Frame f;
  // Flip each bit of the frame in turn: every corruption must surface as
  // a protocol error (kBad) or a structurally impossible frame — never as
  // a successfully decoded frame with different bytes.
  MemTransport ref;
  ASSERT_TRUE(serve::write_frame(ref, FrameType::kStateSet, body));
  const std::vector<std::uint8_t> wire = ref.buf_;
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    MemTransport t;
    t.buf_ = wire;
    t.buf_[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
    const serve::FrameRead r = serve::read_frame_ex(t, &f);
    EXPECT_NE(r, serve::FrameRead::kFrame) << "bit=" << bit;
  }
  // And the pristine frame still reads back.
  MemTransport t;
  t.buf_ = wire;
  ASSERT_EQ(serve::read_frame_ex(t, &f), serve::FrameRead::kFrame);
  EXPECT_EQ(f.type, FrameType::kStateSet);
  EXPECT_EQ(f.body, body);
}

// --- server + client over a real transport --------------------------------

TEST(Serve, RemoteOracleMatchesGoldenAndRoundTripsState) {
  const Netlist n = serve_circuit(21);
  const LockedCircuit lc = lock_weighted(n, 12, 3, 22);
  GoldenOracle served_base(lc);
  NoisyOracle served(served_base, 0.05, 0xfeedULL);
  serve::OracleServer server(served);

  PipePair pipes = make_pipe_pair();
  std::thread st([&] { server.serve(*pipes.server); });

  std::string err;
  auto remote = serve::RemoteOracle::connect(std::move(pipes.client), &err);
  ASSERT_NE(remote, nullptr) << err;
  EXPECT_EQ(remote->num_inputs(), lc.num_data_inputs);
  EXPECT_EQ(remote->num_outputs(), lc.netlist.num_outputs());

  // The served stack is stateful (noise RNG): snapshot it, drain queries,
  // restore, and the same queries must replay the same corruptions.
  std::vector<std::uint8_t> state;
  remote->save_state(&state);
  EXPECT_FALSE(state.empty());

  Rng rng(23);
  std::vector<BitVec> xs;
  for (int i = 0; i < 40; ++i)
    xs.push_back(BitVec::random(lc.num_data_inputs, rng));
  std::vector<OracleResult> first;
  remote->query_batch(xs, &first);
  ASSERT_FALSE(remote->transport_failed());
  ASSERT_EQ(first.size(), xs.size());

  bytes::Reader in(state);
  ASSERT_TRUE(remote->load_state(&in));
  std::vector<OracleResult> second;
  remote->query_batch(xs, &second);
  ASSERT_FALSE(remote->transport_failed());
  ASSERT_EQ(second.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_TRUE(first[i].ok());
    ASSERT_TRUE(second[i].ok());
    EXPECT_EQ(first[i].response().words(), second[i].response().words());
  }

  // And a single query agrees with the batch path.
  bytes::Reader in2(state);
  ASSERT_TRUE(remote->load_state(&in2));
  const OracleResult one = remote->query(xs[0]);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.response().words(), first[0].response().words());

  EXPECT_TRUE(remote->shutdown());
  st.join();
  EXPECT_GT(server.queries_served(), 0u);
}

TEST(Serve, SatAttackOverTransportMatchesInProcess) {
  const Netlist n = serve_circuit(31);
  const LockedCircuit lc = lock_random_xor(n, 16, 32);

  GoldenOracle local(lc);
  SatAttackOptions opts;
  const SatAttackResult want = sat_attack(lc, local, opts);
  ASSERT_EQ(want.status, SatAttackResult::Status::kKeyFound);

  GoldenOracle served(lc);
  serve::OracleServer server(served);
  PipePair pipes = make_pipe_pair();
  std::thread st([&] { server.serve(*pipes.server); });

  std::string err;
  auto remote = serve::RemoteOracle::connect(std::move(pipes.client), &err);
  ASSERT_NE(remote, nullptr) << err;
  const SatAttackResult got = sat_attack(lc, *remote, opts);
  EXPECT_TRUE(remote->shutdown());
  st.join();

  expect_same_result(got, want);
  EXPECT_FALSE(remote->transport_failed());
}

TEST(Serve, ServerRejectsMalformedFrameWithError) {
  const Netlist n = serve_circuit(41);
  const LockedCircuit lc = lock_weighted(n, 10, 3, 42);
  GoldenOracle served(lc);
  serve::OracleServer server(served);
  PipePair pipes = make_pipe_pair();
  bool orderly = true;
  std::thread st([&] { orderly = server.serve(*pipes.server); });

  // A kHelloReply is a server->client frame; sending it as a request is a
  // protocol violation the server must answer with kError and drop.
  ASSERT_TRUE(serve::write_frame(*pipes.client, FrameType::kHelloReply, {}));
  Frame f;
  ASSERT_TRUE(serve::read_frame(*pipes.client, &f));
  EXPECT_EQ(f.type, FrameType::kError);
  std::string msg;
  EXPECT_TRUE(serve::decode_error(f.body, &msg));
  st.join();
  EXPECT_FALSE(orderly);
}

TEST(Serve, ServerSurvivesHostileClientsAndKeepsServing) {
  const Netlist n = serve_circuit(43);
  const LockedCircuit lc = lock_weighted(n, 10, 3, 44);
  GoldenOracle served(lc);
  serve::OracleServer server(served);

  // Hostile client 1: garbage handshake (structurally valid frame, junk
  // hello body). The server must answer kError and drop the connection.
  {
    PipePair pipes = make_pipe_pair();
    bool orderly = true;
    std::thread st([&] { orderly = server.serve(*pipes.server); });
    ASSERT_TRUE(serve::write_frame(*pipes.client, FrameType::kHello,
                                   {0xde, 0xad, 0xbe, 0xef, 0x00}));
    Frame f;
    ASSERT_TRUE(serve::read_frame(*pipes.client, &f));
    EXPECT_EQ(f.type, FrameType::kError);
    st.join();
    EXPECT_FALSE(orderly);
  }

  // Hostile client 2: a torn frame — half a header, then the peer dies.
  // Nothing can be sent back; the connection is torn down, not the server.
  {
    PipePair pipes = make_pipe_pair();
    bool orderly = true;
    std::thread st([&] { orderly = server.serve(*pipes.server); });
    const std::uint8_t partial[3] = {0x10, 0x00, 0x00};
    ASSERT_TRUE(pipes.client->write_full(partial, sizeof(partial)));
    pipes.client.reset();  // hang up mid-frame
    st.join();
    EXPECT_FALSE(orderly);
  }

  // Hostile client 3: an oversized body length. Rejected before any
  // allocation, answered with kError.
  {
    PipePair pipes = make_pipe_pair();
    bool orderly = true;
    std::thread st([&] { orderly = server.serve(*pipes.server); });
    std::vector<std::uint8_t> head;
    bytes::put_u32(&head, serve::kMaxFrameBody + 1);
    bytes::put_u8(&head, static_cast<std::uint8_t>(FrameType::kQueryBatch));
    bytes::put_u32(&head, 0);
    ASSERT_TRUE(pipes.client->write_full(head.data(), head.size()));
    Frame f;
    ASSERT_TRUE(serve::read_frame(*pipes.client, &f));
    EXPECT_EQ(f.type, FrameType::kError);
    st.join();
    EXPECT_FALSE(orderly);
  }

  EXPECT_EQ(server.protocol_errors(), 3u);
  EXPECT_EQ(server.connections_served(), 3u);

  // After all that abuse, the SAME server object serves a well-behaved
  // client a complete attack with the exact key.
  {
    PipePair pipes = make_pipe_pair();
    std::thread st([&] { server.serve(*pipes.server); });
    std::string err;
    auto remote = serve::RemoteOracle::connect(std::move(pipes.client), &err);
    ASSERT_NE(remote, nullptr) << err;
    SatAttackOptions opts;
    const SatAttackResult got = sat_attack(lc, *remote, opts);
    GoldenOracle local(lc);
    const SatAttackResult want = sat_attack(lc, local, opts);
    expect_same_result(got, want);
    EXPECT_TRUE(remote->shutdown());
    st.join();
  }
  EXPECT_EQ(server.protocol_errors(), 3u);
  EXPECT_EQ(server.connections_served(), 4u);
}

TEST(Serve, ClientSurfacesDeadTransportAsExhausted) {
  const Netlist n = serve_circuit(51);
  const LockedCircuit lc = lock_weighted(n, 10, 3, 52);
  GoldenOracle served(lc);
  serve::OracleServer server(served);
  PipePair pipes = make_pipe_pair();
  std::thread st([&] { server.serve(*pipes.server); });

  std::string err;
  auto remote = serve::RemoteOracle::connect(std::move(pipes.client), &err);
  ASSERT_NE(remote, nullptr) << err;
  EXPECT_TRUE(remote->shutdown());
  st.join();

  // The server is gone; the stream is dead, which is terminal — the
  // resilient retry loop must not spin on it.
  const OracleResult r = remote->query(BitVec(lc.num_data_inputs));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, OracleErrorKind::kExhausted);
  EXPECT_TRUE(remote->transport_failed());
}

// --- checkpoint/resume ----------------------------------------------------

TEST(Checkpoint, ResumesByteIdenticalAcrossGridAndDipCounts) {
  const LockedCircuit lc = multi_dip_lock();

  struct Config {
    std::size_t threads, portfolio;
    std::uint32_t cube;
  };
  const Config grid[] = {{1, 1, 0}, {3, 2, 0}, {3, 1, 2}};
  for (const Config& cfg : grid) {
    set_parallel_threads(cfg.threads);
    SatAttackOptions opts;
    opts.portfolio_size = cfg.portfolio;
    opts.cube_depth = cfg.cube;

    GoldenOracle g_ref(lc);
    CheckpointedOracle ref(g_ref, /*config_hash=*/77);
    const SatAttackResult want = sat_attack(lc, ref, opts);
    ASSERT_EQ(want.status, SatAttackResult::Status::kKeyFound);
    const std::size_t total = ref.transcript_size();
    ASSERT_GE(total, 3u) << "circuit too easy to exercise resume";

    for (const std::size_t kill_at :
         {std::size_t{1}, total / 2, total - 1}) {
      // Interrupted run: the kill lands mid-query, past `kill_at` answers.
      GoldenOracle g_part(lc);
      KillSwitch kill(g_part, kill_at);
      CheckpointedOracle part(kill, 77);
      bool killed = false;
      try {
        sat_attack(lc, part, opts);
      } catch (const std::runtime_error&) {
        killed = true;
      }
      ASSERT_TRUE(killed);
      EXPECT_EQ(part.transcript_size(), kill_at);
      const std::vector<std::uint8_t> blob = part.serialize();

      // Resumed run on a fresh oracle stack.
      GoldenOracle g_res(lc);
      CheckpointedOracle res(g_res, 77);
      ASSERT_EQ(res.deserialize(blob), CheckpointedOracle::LoadStatus::kOk);
      EXPECT_EQ(res.replay_remaining(), kill_at);
      const SatAttackResult got = sat_attack(lc, res, opts);
      expect_same_result(got, want);
      EXPECT_FALSE(res.diverged());
      EXPECT_EQ(res.transcript_size(), total)
          << "threads=" << cfg.threads << " portfolio=" << cfg.portfolio
          << " cube=" << cfg.cube << " kill_at=" << kill_at;
    }
  }
  set_parallel_threads(0);
}

TEST(Checkpoint, ResumesFaultInjectedStackWithResiliencePolicy) {
  const LockedCircuit lc = multi_dip_lock();
  SatAttackOptions opts;
  opts.resilience.retries = 2;
  opts.resilience.votes = 3;
  opts.resilience.quarantine = true;

  const auto build = [&](GoldenOracle& g, auto& noisy_out, auto& flaky_out) {
    noisy_out = std::make_unique<NoisyOracle>(g, 0.002, 0x600dULL);
    flaky_out =
        std::make_unique<IntermittentOracle>(*noisy_out, 0.01, 0xbad5ULL);
  };

  GoldenOracle g_ref(lc);
  std::unique_ptr<NoisyOracle> noisy_ref;
  std::unique_ptr<IntermittentOracle> flaky_ref;
  build(g_ref, noisy_ref, flaky_ref);
  CheckpointedOracle ref(*flaky_ref, 88);
  const SatAttackResult want = sat_attack(lc, ref, opts);
  const std::size_t total = ref.transcript_size();
  ASSERT_GE(total, 6u);

  // Interrupt late enough that fault-injector RNG streams have advanced:
  // resuming byte-identically then requires their positions to round-trip
  // through the checkpoint, not just the transcript.
  const std::size_t kill_at = total - 2;
  GoldenOracle g_part(lc);
  std::unique_ptr<NoisyOracle> noisy_part;
  std::unique_ptr<IntermittentOracle> flaky_part;
  build(g_part, noisy_part, flaky_part);
  KillSwitch kill(*flaky_part, kill_at);
  CheckpointedOracle part(kill, 88);
  bool killed = false;
  try {
    sat_attack(lc, part, opts);
  } catch (const std::runtime_error&) {
    killed = true;
  }
  ASSERT_TRUE(killed);
  const std::vector<std::uint8_t> blob = part.serialize();

  GoldenOracle g_res(lc);
  std::unique_ptr<NoisyOracle> noisy_res;
  std::unique_ptr<IntermittentOracle> flaky_res;
  build(g_res, noisy_res, flaky_res);
  CheckpointedOracle res(*flaky_res, 88);
  ASSERT_EQ(res.deserialize(blob), CheckpointedOracle::LoadStatus::kOk);
  const SatAttackResult got = sat_attack(lc, res, opts);
  expect_same_result(got, want);
  EXPECT_FALSE(res.diverged());
}

TEST(Checkpoint, RejectsCorruptTruncatedAndForeignFiles) {
  const Netlist n = serve_circuit(81);
  const LockedCircuit lc = lock_weighted(n, 12, 3, 82);
  GoldenOracle g(lc);
  CheckpointedOracle src(g, 99);
  Rng rng(83);
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(src.query(BitVec::random(lc.num_data_inputs, rng)).ok());
  const std::vector<std::uint8_t> blob = src.serialize();

  // Any single flipped byte fails the CRC.
  for (const std::size_t pos :
       {std::size_t{0}, blob.size() / 2, blob.size() - 1}) {
    std::vector<std::uint8_t> bad = blob;
    bad[pos] ^= 0x40;
    GoldenOracle g2(lc);
    CheckpointedOracle dst(g2, 99);
    EXPECT_EQ(dst.deserialize(bad), CheckpointedOracle::LoadStatus::kCorrupt);
    EXPECT_EQ(dst.transcript_size(), 0u);  // rejected loads change nothing
  }
  // Truncation at every prefix length.
  for (std::size_t len = 0; len < blob.size(); len += 7) {
    std::vector<std::uint8_t> bad(blob.begin(), blob.begin() + len);
    GoldenOracle g2(lc);
    CheckpointedOracle dst(g2, 99);
    EXPECT_EQ(dst.deserialize(bad), CheckpointedOracle::LoadStatus::kCorrupt);
  }
  // Valid file, different job configuration.
  {
    GoldenOracle g2(lc);
    CheckpointedOracle dst(g2, 100);
    EXPECT_EQ(dst.deserialize(blob),
              CheckpointedOracle::LoadStatus::kMismatch);
  }
  // Valid file, different oracle shape.
  {
    GenSpec spec;
    spec.num_inputs = 24;  // shape differs from serve_circuit's 20
    spec.num_outputs = 16;
    spec.num_gates = 300;
    spec.depth = 8;
    spec.seed = 84;
    const LockedCircuit other =
        lock_weighted(generate_circuit(spec), 12, 3, 85);
    GoldenOracle g2(other);
    CheckpointedOracle dst(g2, 99);
    EXPECT_EQ(dst.deserialize(blob),
              CheckpointedOracle::LoadStatus::kMismatch);
  }
}

TEST(Checkpoint, FileRoundTripAndAutosave) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/orap_ckpt_test.ckpt";
  std::remove(path.c_str());

  const Netlist n = serve_circuit(91);
  const LockedCircuit lc = lock_weighted(n, 12, 3, 92);
  GoldenOracle g(lc);
  CheckpointedOracle src(g, 7);
  EXPECT_EQ(src.load_file(path), CheckpointedOracle::LoadStatus::kMissing);

  src.enable_autosave(path, 4);
  Rng rng(93);
  std::vector<BitVec> xs;
  for (int i = 0; i < 10; ++i)
    xs.push_back(BitVec::random(lc.num_data_inputs, rng));
  for (const BitVec& x : xs) ASSERT_TRUE(src.query(x).ok());
  // 10 live queries at every-4 = 2 autosaves; the file holds the first 8.
  EXPECT_EQ(src.autosaves(), 2u);
  src.set_progress_dips(5);
  ASSERT_TRUE(src.save_file(path));

  GoldenOracle g2(lc);
  CheckpointedOracle dst(g2, 7);
  ASSERT_EQ(dst.load_file(path), CheckpointedOracle::LoadStatus::kOk);
  EXPECT_EQ(dst.transcript_size(), xs.size());
  EXPECT_EQ(dst.progress_dips(), 5u);
  // Replay serves the recorded responses without touching the inner oracle.
  for (const BitVec& x : xs) {
    const OracleResult r = dst.query(x);
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(g2.query_count(), 0u);
  EXPECT_EQ(dst.replay_remaining(), 0u);
  EXPECT_FALSE(dst.diverged());
  std::remove(path.c_str());
}

TEST(Serve, BatchedSatAttackOverTransportMatchesLocal) {
  // End-to-end batch parity: the batched attack (--oracle-batch with
  // dip-batch harvesting and votes) over the wire protocol must land the
  // identical result the same attack produces in-process, while paying
  // one round trip per flush rather than per query.
  const LockedCircuit lc = multi_dip_lock();
  SatAttackOptions opts;
  opts.oracle_batch = true;
  opts.dip_batch = 4;
  opts.resilience.votes = 3;

  GoldenOracle local(lc);
  const SatAttackResult want = sat_attack(lc, local, opts);
  ASSERT_EQ(want.status, SatAttackResult::Status::kKeyFound);

  GoldenOracle served(lc);
  serve::OracleServer server(served);
  PipePair pipes = make_pipe_pair();
  std::thread st([&] { server.serve(*pipes.server); });

  std::string err;
  auto remote = serve::RemoteOracle::connect(std::move(pipes.client), &err);
  ASSERT_NE(remote, nullptr) << err;
  const SatAttackResult got = sat_attack(lc, *remote, opts);
  const std::size_t frames_before_shutdown = server.frames_served();
  EXPECT_TRUE(remote->shutdown());
  st.join();

  expect_same_result(got, want);
  EXPECT_FALSE(remote->transport_failed());
  EXPECT_EQ(got.oracle_round_trips, want.oracle_round_trips);
  EXPECT_LT(got.oracle_round_trips, got.oracle_queries);
  // Each client-side round trip is exactly one wire frame (+1 hello).
  EXPECT_EQ(frames_before_shutdown, got.oracle_round_trips + 1);
}

TEST(Checkpoint, KillMidBatchResumesByteIdentical) {
  // The kill lands inside a batch flush: the KillSwitch only implements
  // do_query, so the base serial fallback walks the batch element by
  // element and throws partway through. The responses already produced
  // inside the interrupted flush must survive into the transcript (the
  // checkpoint layer records the answered prefix before re-throwing), so
  // the transcript holds *exactly* the kill_at answered queries — and the
  // resumed batched attack must still finish byte-identical.
  const LockedCircuit lc = multi_dip_lock();
  SatAttackOptions opts;
  opts.oracle_batch = true;
  opts.dip_batch = 4;
  opts.resilience.votes = 3;

  GoldenOracle g_ref(lc);
  CheckpointedOracle ref(g_ref, 99);
  const SatAttackResult want = sat_attack(lc, ref, opts);
  ASSERT_EQ(want.status, SatAttackResult::Status::kKeyFound);
  const std::size_t total = ref.transcript_size();
  ASSERT_GE(total, 8u) << "circuit too easy to interrupt mid-batch";

  for (const std::size_t kill_at : {std::size_t{2}, total / 2, total - 1}) {
    GoldenOracle g_part(lc);
    KillSwitch kill(g_part, kill_at);
    CheckpointedOracle part(kill, 99);
    bool killed = false;
    try {
      sat_attack(lc, part, opts);
    } catch (const std::runtime_error&) {
      killed = true;
    }
    ASSERT_TRUE(killed);
    // Every query the inner oracle answered before the kill — including
    // the prefix of the interrupted flush — is in the transcript.
    EXPECT_EQ(part.transcript_size(), kill_at) << "kill_at=" << kill_at;
    const std::vector<std::uint8_t> blob = part.serialize();

    GoldenOracle g_res(lc);
    CheckpointedOracle res(g_res, 99);
    ASSERT_EQ(res.deserialize(blob), CheckpointedOracle::LoadStatus::kOk);
    const SatAttackResult got = sat_attack(lc, res, opts);
    expect_same_result(got, want);
    EXPECT_FALSE(res.diverged());
    EXPECT_EQ(res.transcript_size(), total) << "kill_at=" << kill_at;
  }
}

TEST(Checkpoint, MidBatchKillRecordsAnsweredPrefix) {
  // Oracle-level version of the kill-mid-batch contract: one batch of 8,
  // killed after 5 answers. The 5 answered elements must be recorded and
  // served from replay on resume — only the 3 unanswered ones go live.
  const Netlist n = serve_circuit(98);
  const LockedCircuit lc = lock_weighted(n, 12, 3, 99);
  Rng rng(101);
  std::vector<BitVec> xs;
  for (int i = 0; i < 8; ++i)
    xs.push_back(BitVec::random(lc.num_data_inputs, rng));

  GoldenOracle g(lc);
  KillSwitch kill(g, 5);
  CheckpointedOracle part(kill, 7);
  std::vector<OracleResult> out;
  EXPECT_THROW(part.query_batch(xs, &out), std::runtime_error);
  ASSERT_EQ(part.transcript_size(), 5u);
  const std::vector<std::uint8_t> blob = part.serialize();

  GoldenOracle g2(lc);
  CheckpointedOracle res(g2, 7);
  ASSERT_EQ(res.deserialize(blob), CheckpointedOracle::LoadStatus::kOk);
  std::vector<OracleResult> got;
  res.query_batch(xs, &got);
  ASSERT_EQ(got.size(), xs.size());
  EXPECT_EQ(g2.query_count(), 3u);  // answered prefix came from replay
  EXPECT_FALSE(res.diverged());
  GoldenOracle check(lc);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_TRUE(got[i].ok());
    EXPECT_EQ(got[i].response().words(),
              check.query(xs[i]).response().words());
  }
}

TEST(Checkpoint, ReplayDivergenceGoesLiveAndIsFlagged) {
  const Netlist n = serve_circuit(95);
  const LockedCircuit lc = lock_weighted(n, 12, 3, 96);
  GoldenOracle g(lc);
  CheckpointedOracle src(g, 5);
  Rng rng(97);
  const BitVec a = BitVec::random(lc.num_data_inputs, rng);
  const BitVec b = BitVec::random(lc.num_data_inputs, rng);
  ASSERT_TRUE(src.query(a).ok());
  const std::vector<std::uint8_t> blob = src.serialize();

  GoldenOracle g2(lc);
  CheckpointedOracle dst(g2, 5);
  ASSERT_EQ(dst.deserialize(blob), CheckpointedOracle::LoadStatus::kOk);
  // The resumed attack asks a different first query: replay must not serve
  // the recorded answer for it.
  const OracleResult r = dst.query(b);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(dst.diverged());
  EXPECT_EQ(g2.query_count(), 1u);  // went live
  GoldenOracle check(lc);
  EXPECT_EQ(r.response().words(), check.query(b).response().words());
}

}  // namespace
}  // namespace orap
