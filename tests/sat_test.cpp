// Tests for the CDCL solver and the Tseitin encoder: hand cases,
// brute-force cross-checking on random formulas, pigeonhole UNSAT,
// assumptions/cores, conflict budgets, and circuit-equivalence miters.

#include <gtest/gtest.h>

#include "gen/circuit_gen.h"
#include "gen/embedded.h"
#include "netlist/simulator.h"
#include "sat/encode.h"
#include "sat/solver.h"
#include "util/rng.h"

namespace orap::sat {
namespace {

TEST(Lit, Encoding) {
  const Lit l = pos(5);
  EXPECT_EQ(l.var(), 5);
  EXPECT_FALSE(l.sign());
  EXPECT_TRUE((~l).sign());
  EXPECT_EQ((~l).var(), 5);
  EXPECT_EQ(~~l, l);
}

TEST(Solver, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({pos(a)});
  EXPECT_EQ(s.solve(), Solver::Result::kSat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({pos(a)});
  EXPECT_FALSE(s.add_clause({neg(a)}));
  EXPECT_EQ(s.solve(), Solver::Result::kUnsat);
}

TEST(Solver, EmptyClauseUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({pos(a)});
  // neg(a) simplifies to the empty clause at root.
  EXPECT_FALSE(s.add_clause(std::vector<Lit>{neg(a)}));
  EXPECT_FALSE(s.ok());
}

TEST(Solver, TautologyIgnored) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));
  EXPECT_EQ(s.solve(), Solver::Result::kSat);
}

TEST(Solver, UnitPropagationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 20; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 20; ++i) s.add_clause({neg(v[i]), pos(v[i + 1])});
  s.add_clause({pos(v[0])});
  EXPECT_EQ(s.solve(), Solver::Result::kSat);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(s.model_value(v[i]));
}

TEST(Solver, XorChainForcesParity) {
  Solver s;
  Encoder e(s);
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  Var x = e.encode_xor2(a, b);
  x = e.encode_xor2(x, c);
  s.add_clause({pos(x)});   // a^b^c = 1
  s.add_clause({pos(a)});
  s.add_clause({pos(b)});
  ASSERT_EQ(s.solve(), Solver::Result::kSat);
  EXPECT_TRUE(s.model_value(c));
}

// Pigeonhole principle PHP(n+1, n): classic hard UNSAT family.
void add_php(Solver& s, int pigeons, int holes) {
  std::vector<std::vector<Var>> x(pigeons, std::vector<Var>(holes));
  for (auto& row : x)
    for (auto& v : row) v = s.new_var();
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> some;
    for (int h = 0; h < holes; ++h) some.push_back(pos(x[p][h]));
    s.add_clause(some);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_clause({neg(x[p1][h]), neg(x[p2][h])});
}

TEST(Solver, PigeonholeUnsat) {
  for (int n : {3, 4, 5, 6, 7}) {
    Solver s;
    add_php(s, n + 1, n);
    EXPECT_EQ(s.solve(), Solver::Result::kUnsat) << "PHP(" << n + 1 << "," << n << ")";
  }
}

TEST(Solver, PigeonholeSatWhenEnoughHoles) {
  Solver s;
  add_php(s, 5, 5);
  EXPECT_EQ(s.solve(), Solver::Result::kSat);
}

TEST(Solver, ConflictBudgetAborts) {
  Solver s;
  add_php(s, 8, 7);  // too hard for a 20-conflict budget
  EXPECT_EQ(s.solve({}, 20), Solver::Result::kUnknown);
  // And the solver remains usable afterwards.
  EXPECT_EQ(s.solve({}, -1), Solver::Result::kUnsat);
}

TEST(Solver, AssumptionsSatAndUnsat) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({neg(a), pos(b)});  // a -> b
  const std::vector<Lit> good{pos(a)};
  EXPECT_EQ(s.solve(good), Solver::Result::kSat);
  EXPECT_TRUE(s.model_value(b));
  const std::vector<Lit> bad{pos(a), neg(b)};
  EXPECT_EQ(s.solve(bad), Solver::Result::kUnsat);
  EXPECT_FALSE(s.unsat_core().empty());
  // Solver not permanently poisoned by failing assumptions.
  EXPECT_EQ(s.solve(good), Solver::Result::kSat);
}

TEST(Solver, UnsatCoreMentionsRelevantAssumption) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_clause({neg(a), neg(b)});  // a,b incompatible; c irrelevant
  const std::vector<Lit> assumptions{pos(c), pos(a), pos(b)};
  ASSERT_EQ(s.solve(assumptions), Solver::Result::kUnsat);
  bool mentions_ab = false, mentions_c = false;
  for (const Lit l : s.unsat_core()) {
    if (l.var() == a || l.var() == b) mentions_ab = true;
    if (l.var() == c) mentions_c = true;
  }
  EXPECT_TRUE(mentions_ab);
  EXPECT_FALSE(mentions_c);
}

// Random 3-SAT cross-check against brute force.
class RandomCnfProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnfProperty, MatchesBruteForce) {
  Rng rng(1000 + GetParam());
  const int nvars = 8 + static_cast<int>(rng.below(5));
  const int nclauses = 20 + static_cast<int>(rng.below(40));
  std::vector<std::vector<Lit>> cnf;
  for (int i = 0; i < nclauses; ++i) {
    std::vector<Lit> cl;
    for (int k = 0; k < 3; ++k)
      cl.push_back(Lit(static_cast<Var>(rng.below(nvars)), rng.bit()));
    cnf.push_back(cl);
  }
  bool brute_sat = false;
  for (std::uint32_t m = 0; m < (1u << nvars) && !brute_sat; ++m) {
    bool all = true;
    for (const auto& cl : cnf) {
      bool any = false;
      for (const Lit l : cl)
        any |= (((m >> l.var()) & 1) != 0) != l.sign();
      if (!any) {
        all = false;
        break;
      }
    }
    brute_sat = all;
  }
  Solver s;
  for (int v = 0; v < nvars; ++v) s.new_var();
  bool root_ok = true;
  for (auto& cl : cnf) root_ok &= s.add_clause(cl);
  const auto result = root_ok ? s.solve() : Solver::Result::kUnsat;
  EXPECT_EQ(result == Solver::Result::kSat, brute_sat);
  if (result == Solver::Result::kSat) {
    // Verify the model actually satisfies the formula.
    for (const auto& cl : cnf) {
      bool any = false;
      for (const Lit l : cl) any |= s.model_value(l.var()) != l.sign();
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomCnfProperty, ::testing::Range(0, 30));

TEST(Encoder, GateFunctionsMatchSimulator) {
  // For each gate type, encode a 3-input instance and compare against the
  // simulator over all input combinations.
  for (const GateType t :
       {GateType::kAnd, GateType::kNand, GateType::kOr, GateType::kNor,
        GateType::kXor, GateType::kXnor}) {
    Netlist n;
    const GateId a = n.add_input("a");
    const GateId b = n.add_input("b");
    const GateId c = n.add_input("c");
    const GateId g = n.add_gate(t, {a, b, c});
    n.mark_output(g);
    Simulator sim(n);
    for (unsigned m = 0; m < 8; ++m) {
      BitVec p(3);
      for (int i = 0; i < 3; ++i) p.set(i, (m >> i) & 1);
      const bool expect = sim.run_single(p).get(0);
      Solver s;
      Encoder e(s);
      const auto cv = e.encode(n);
      std::vector<Lit> assume;
      for (int i = 0; i < 3; ++i)
        assume.push_back(Lit(cv.inputs[i], !p.get(i)));
      assume.push_back(Lit(cv.outputs[0], !expect));
      EXPECT_EQ(s.solve(assume), Solver::Result::kSat)
          << gate_type_name(t) << " m=" << m;
      std::vector<Lit> wrong = assume;
      wrong.back() = ~wrong.back();
      EXPECT_EQ(s.solve(wrong), Solver::Result::kUnsat)
          << gate_type_name(t) << " m=" << m;
    }
  }
}

TEST(Encoder, MiterProvesSelfEquivalence) {
  // alu4 vs itself with shared inputs: outputs can never differ.
  const Netlist n = make_alu4();
  Solver s;
  Encoder e(s);
  const auto a = e.encode(n);
  const auto b = e.encode(n, a.inputs);
  e.force_not_equal(a.outputs, b.outputs);
  EXPECT_EQ(s.solve(), Solver::Result::kUnsat);
}

TEST(Encoder, MiterFindsInjectedBug) {
  // Flip one gate type; the miter must find a distinguishing input, and
  // that input must actually distinguish the two circuits in simulation.
  const Netlist good = make_alu4();
  Netlist bad;
  for (GateId g = 0; g < good.num_gates(); ++g) {
    const GateType t = good.type(g);
    if (t == GateType::kInput) {
      bad.add_input(good.gate_name(g));
      continue;
    }
    std::vector<GateId> fi(good.fanins(g).begin(), good.fanins(g).end());
    GateType nt = t;
    if (g == good.outputs()[2].gate) nt = GateType::kNor;  // inject bug
    bad.add_gate(nt, fi, good.gate_name(g));
  }
  for (const auto& po : good.outputs()) bad.mark_output(po.gate, po.name);

  Solver s;
  Encoder e(s);
  const auto a = e.encode(good);
  const auto b = e.encode(bad, a.inputs);
  e.force_not_equal(a.outputs, b.outputs);
  ASSERT_EQ(s.solve(), Solver::Result::kSat);

  BitVec p(good.num_inputs());
  for (std::size_t i = 0; i < good.num_inputs(); ++i)
    p.set(i, s.model_value(a.inputs[i]));
  Simulator sg(good), sb(bad);
  EXPECT_NE(sg.run_single(p), sb.run_single(p));
}

TEST(Encoder, RandomCircuitSatModelMatchesSimulation) {
  // SAT model of (inputs, outputs) must be a consistent simulation result.
  GenSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 10;
  spec.num_gates = 300;
  spec.depth = 10;
  spec.seed = 99;
  const Netlist n = generate_circuit(spec);
  Solver s;
  Encoder e(s);
  const auto cv = e.encode(n);
  // Pin output 0 to 1 (satisfiable for a non-constant circuit).
  s.add_clause({pos(cv.outputs[0])});
  ASSERT_EQ(s.solve(), Solver::Result::kSat);
  BitVec p(n.num_inputs());
  for (std::size_t i = 0; i < n.num_inputs(); ++i)
    p.set(i, s.model_value(cv.inputs[i]));
  Simulator sim(n);
  const BitVec out = sim.run_single(p);
  EXPECT_TRUE(out.get(0));
  for (std::size_t o = 0; o < n.num_outputs(); ++o)
    EXPECT_EQ(out.get(o), s.model_value(cv.outputs[o]));
}

TEST(Solver, RootConflictUnderAssumptionsGivesEmptyCore) {
  // Once the clause database is contradictory at root (ok() == false),
  // solve() must report kUnsat with an EMPTY core regardless of the
  // assumptions: the conflict does not depend on them.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({pos(a)});
  EXPECT_FALSE(s.add_clause({neg(a)}));
  ASSERT_FALSE(s.ok());
  const std::vector<Lit> assumptions{pos(b)};
  EXPECT_EQ(s.solve(assumptions), Solver::Result::kUnsat);
  EXPECT_TRUE(s.unsat_core().empty());
}

TEST(Solver, RootConflictDoesNotLeakStaleCore) {
  // Regression: a failing-assumptions solve populates conflict_core_; a
  // later root-conflict solve used to return that stale core because the
  // ok() early-out skipped the clearing. The core must be empty.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({neg(a), neg(b)});
  const std::vector<Lit> both{pos(a), pos(b)};
  ASSERT_EQ(s.solve(both), Solver::Result::kUnsat);
  ASSERT_FALSE(s.unsat_core().empty());  // genuine assumption core
  // Now make the database itself contradictory.
  EXPECT_TRUE(s.add_clause({pos(a)}));
  EXPECT_FALSE(s.add_clause({neg(a)}));
  EXPECT_EQ(s.solve(both), Solver::Result::kUnsat);
  EXPECT_TRUE(s.unsat_core().empty());
}

TEST(Solver, BudgetAbortLeavesSolverReusableAtRoot) {
  // kUnknown must hand back a solver at decision level 0 that accepts new
  // clauses and solves correctly afterwards.
  Solver s;
  add_php(s, 8, 7);
  ASSERT_EQ(s.solve({}, 10), Solver::Result::kUnknown);
  const Var extra = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(extra)}));  // would fail off level 0
  const std::vector<Lit> assume{pos(extra)};
  EXPECT_EQ(s.solve(assume, -1), Solver::Result::kUnsat);
  EXPECT_TRUE(s.unsat_core().empty());  // formula-level, not assumption-level
}

TEST(Solver, IncrementalSolveAgreesWithFreshSolver) {
  // Interleaved solve calls with accumulating clauses must give the same
  // verdicts as a fresh solver loaded with the same prefix each time —
  // learnt clauses and saved phases must never change answers.
  Rng rng(77);
  const int nvars = 12;
  Solver inc;
  for (int v = 0; v < nvars; ++v) inc.new_var();
  std::vector<std::vector<Lit>> all;
  bool inc_ok = true;
  for (int round = 0; round < 25; ++round) {
    std::vector<Lit> cl;
    for (int k = 0; k < 3; ++k)
      cl.push_back(Lit(static_cast<Var>(rng.below(nvars)), rng.bit()));
    all.push_back(cl);
    if (inc_ok) inc_ok = inc.add_clause(cl);
    const auto inc_res =
        inc_ok ? inc.solve() : Solver::Result::kUnsat;

    Solver fresh;
    for (int v = 0; v < nvars; ++v) fresh.new_var();
    bool fresh_ok = true;
    for (const auto& c : all) fresh_ok &= fresh.add_clause(c);
    const auto fresh_res =
        fresh_ok ? fresh.solve() : Solver::Result::kUnsat;
    ASSERT_EQ(inc_res, fresh_res) << "round " << round;
    if (inc_res == Solver::Result::kUnsat) break;
  }
}

TEST(Solver, StatsAccumulate) {
  Solver s;
  add_php(s, 6, 5);
  EXPECT_EQ(s.solve(), Solver::Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().decisions, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
}

// reduce_db now detaches only the dropped clauses' watchers in place
// instead of rebuilding every watch list. A tiny learnt-clause cap forces
// it to fire constantly; verdicts, models, and the whole deterministic
// search trajectory must be unaffected.
TEST(Solver, ReduceDbUnderLoadKeepsVerdicts) {
  Rng rng(505);
  for (int round = 0; round < 10; ++round) {
    const int nvars = 30;
    const int nclauses = 120;
    std::vector<std::vector<Lit>> cnf;
    for (int i = 0; i < nclauses; ++i) {
      std::vector<Lit> cl;
      for (int k = 0; k < 3; ++k)
        cl.push_back(Lit(static_cast<Var>(rng.below(nvars)), rng.bit()));
      cnf.push_back(cl);
    }
    Solver loaded;
    loaded.set_max_learnts(8);  // clamp floor: reduce_db fires constantly
    Solver fresh;
    for (int v = 0; v < nvars; ++v) {
      loaded.new_var();
      fresh.new_var();
    }
    bool loaded_ok = true, fresh_ok = true;
    for (const auto& cl : cnf) {
      loaded_ok &= loaded.add_clause(cl);
      fresh_ok &= fresh.add_clause(cl);
    }
    ASSERT_EQ(loaded_ok, fresh_ok);
    const auto a = loaded_ok ? loaded.solve() : Solver::Result::kUnsat;
    const auto b = fresh_ok ? fresh.solve() : Solver::Result::kUnsat;
    EXPECT_EQ(a, b) << "round " << round;
    if (a == Solver::Result::kSat) {
      for (const auto& cl : cnf) {
        bool sat = false;
        for (const Lit l : cl) sat |= loaded.model_value(l.var()) != l.sign();
        EXPECT_TRUE(sat) << "round " << round;
      }
    }
  }
}

TEST(Solver, ReduceDbUnderLoadStaysDeterministic) {
  // PHP is conflict-heavy enough that an 8-clause learnt cap triggers many
  // reductions; two identical runs must take the identical search path.
  auto run = [](SolverStats* out) {
    Solver s;
    s.set_max_learnts(8);
    add_php(s, 7, 6);
    EXPECT_EQ(s.solve(), Solver::Result::kUnsat);
    *out = s.stats();
  };
  SolverStats s1, s2;
  run(&s1);
  run(&s2);
  EXPECT_GT(s1.reduce_dbs, 0u);
  EXPECT_EQ(s1.reduce_dbs, s2.reduce_dbs);
  EXPECT_EQ(s1.decisions, s2.decisions);
  EXPECT_EQ(s1.conflicts, s2.conflicts);
  EXPECT_EQ(s1.propagations, s2.propagations);
  EXPECT_EQ(s1.restarts, s2.restarts);

  // Same instance without the cap: verdict identical, reductions rarer.
  Solver relaxed;
  add_php(relaxed, 7, 6);
  EXPECT_EQ(relaxed.solve(), Solver::Result::kUnsat);
  EXPECT_LE(relaxed.stats().reduce_dbs, s1.reduce_dbs);
}

TEST(Solver, ReduceDbUnderLoadWithAssumptions) {
  // Core extraction must survive aggressive clause deletion: the learnt
  // database shrinking mid-search cannot lose root-level implications.
  Solver s;
  s.set_max_learnts(8);
  add_php(s, 7, 6);
  const Var sel = s.new_var();
  EXPECT_EQ(s.solve(std::vector<Lit>{pos(sel)}), Solver::Result::kUnsat);
  EXPECT_EQ(s.solve(std::vector<Lit>{neg(sel)}), Solver::Result::kUnsat);
  // The PHP contradiction does not involve the selector.
  for (const Lit l : s.unsat_core()) EXPECT_NE(l.var(), sel);
}

}  // namespace
}  // namespace orap::sat
