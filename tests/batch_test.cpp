// Batch-aware oracle query engine: Oracle::query_batch must be
// byte-identical to issuing the same inputs serially in element order —
// through every fault decorator and any stack of them — and the batched
// attack paths (--oracle-batch, --dip-batch) must preserve or merely
// re-route the attack's trajectory without ever changing its verdict.
// Also covers the cross-job result cache (serve/result_cache.h): hits
// cost zero device queries, and the cache below a fault layer never
// changes what the layer produces.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "attacks/faulty_oracle.h"
#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "serve/job_server.h"
#include "serve/result_cache.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace orap {
namespace {

Netlist small_circuit(std::uint64_t seed) {
  GenSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 16;
  spec.num_gates = 300;
  spec.depth = 8;
  spec.seed = seed;
  return generate_circuit(spec);
}

/// Multi-DIP target (same shape the resilience/serve suites use): a
/// 1-DIP attack has no batching interior worth testing.
LockedCircuit multi_dip_lock() {
  GenSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 16;
  spec.num_gates = 400;
  spec.depth = 8;
  spec.seed = 77;
  return lock_random_xor(generate_circuit(spec), 32, 5);
}

/// Builds one configuration of the decorator grid over a fresh golden
/// oracle. `mask` selects which layers are present (bit 0 = noisy,
/// 1 = intermittent, 2 = stuck, 3 = budgeted), so 16 stacks total.
struct Stack {
  explicit Stack(const LockedCircuit& lc, unsigned mask,
                 std::size_t budget = 48)
      : golden(std::make_unique<GoldenOracle>(lc)) {
    top = golden.get();
    if (mask & 1) {
      layers.push_back(std::make_unique<NoisyOracle>(*top, 0.07, 0xaaULL));
      top = layers.back().get();
    }
    if (mask & 2) {
      layers.push_back(
          std::make_unique<IntermittentOracle>(*top, 0.11, 0xbbULL));
      top = layers.back().get();
    }
    if (mask & 4) {
      layers.push_back(std::make_unique<StuckOracle>(*top, 0.13, 0xccULL));
      top = layers.back().get();
    }
    if (mask & 8) {
      layers.push_back(std::make_unique<BudgetedOracle>(*top, budget));
      top = layers.back().get();
    }
  }
  std::unique_ptr<GoldenOracle> golden;
  std::vector<std::unique_ptr<Oracle>> layers;
  Oracle* top = nullptr;
};

void expect_same_responses(const std::vector<OracleResult>& got,
                           const std::vector<OracleResult>& want,
                           unsigned mask) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].ok(), want[i].ok())
        << "stack mask " << mask << " element " << i;
    if (got[i].ok())
      EXPECT_EQ(got[i].response().words(), want[i].response().words())
          << "stack mask " << mask << " element " << i;
    else
      EXPECT_EQ(got[i].error().kind, want[i].error().kind)
          << "stack mask " << mask << " element " << i;
  }
}

void expect_same_result(const SatAttackResult& got,
                        const SatAttackResult& want) {
  EXPECT_EQ(got.status, want.status);
  EXPECT_EQ(got.key.size(), want.key.size());
  EXPECT_EQ(got.key.words(), want.key.words());
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.oracle_queries, want.oracle_queries);
  EXPECT_EQ(got.oracle_retries, want.oracle_retries);
  EXPECT_EQ(got.vote_queries, want.vote_queries);
  EXPECT_EQ(got.evicted_pairs, want.evicted_pairs);
  EXPECT_EQ(got.requeried_pairs, want.requeried_pairs);
}

// --- query_batch vs serial over the decorator grid ------------------------

TEST(Batch, ByteIdenticalToSerialAcrossDecoratorGrid) {
  const Netlist n = small_circuit(61);
  const LockedCircuit lc = lock_weighted(n, 12, 3, 62);
  Rng rng(63);
  std::vector<BitVec> xs;
  for (int i = 0; i < 60; ++i)
    xs.push_back(BitVec::random(lc.num_data_inputs, rng));

  for (unsigned mask = 0; mask < 16; ++mask) {
    // Serial reference: the same inputs, one query() each, in order.
    Stack serial(lc, mask);
    std::vector<OracleResult> want;
    for (const BitVec& x : xs) want.push_back(serial.top->query(x));

    // Batched: everything in one flush. Every decorator must draw its
    // per-query randomness in element order for this to hold.
    Stack batched(lc, mask);
    std::vector<OracleResult> got;
    batched.top->query_batch(xs, &got);
    expect_same_responses(got, want, mask);

    // Per-element accounting matches the serial run; the flush itself is
    // one batch and one round trip.
    EXPECT_EQ(batched.top->query_count(), serial.top->query_count());
    EXPECT_EQ(batched.top->error_count(), serial.top->error_count());
    EXPECT_EQ(batched.top->batch_count(), 1u);
    EXPECT_EQ(batched.top->round_trip_count(), 1u);
    EXPECT_EQ(serial.top->batch_count(), 0u);
    EXPECT_EQ(serial.top->round_trip_count(), xs.size());

    // And batch boundaries are invisible: many small flushes produce the
    // same byte stream as one big flush.
    Stack chunked(lc, mask);
    std::vector<OracleResult> pieces;
    for (std::size_t off = 0; off < xs.size(); off += 7) {
      const std::size_t len = std::min<std::size_t>(7, xs.size() - off);
      std::vector<BitVec> sub(xs.begin() + off, xs.begin() + off + len);
      std::vector<OracleResult> rs;
      chunked.top->query_batch(sub, &rs);
      for (auto& r : rs) pieces.push_back(std::move(r));
    }
    expect_same_responses(pieces, want, mask);
  }
}

TEST(Batch, LogicalMaskRoutesRetryAccounting) {
  const Netlist n = small_circuit(64);
  const LockedCircuit lc = lock_weighted(n, 10, 3, 65);
  GoldenOracle oracle(lc);
  Rng rng(66);
  std::vector<BitVec> xs;
  for (int i = 0; i < 6; ++i)
    xs.push_back(BitVec::random(lc.num_data_inputs, rng));

  // Elements with a zero mask entry are charged to retry_count (the
  // batched analogue of requery()); the rest to query_count.
  const std::vector<std::uint8_t> logical = {1, 0, 1, 1, 0, 0};
  std::vector<OracleResult> rs;
  oracle.query_batch(xs, &rs, &logical);
  EXPECT_EQ(oracle.query_count(), 3u);
  EXPECT_EQ(oracle.retry_count(), 3u);
  EXPECT_EQ(oracle.batch_count(), 1u);
  EXPECT_EQ(oracle.round_trip_count(), 1u);

  // An empty batch is a no-op: no flush, no round trip, no counters.
  std::vector<OracleResult> none;
  oracle.query_batch({}, &none);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(oracle.batch_count(), 1u);
  EXPECT_EQ(oracle.round_trip_count(), 1u);
}

TEST(Batch, BudgetedOracleChargesOnlyTheFittingPrefix) {
  const Netlist n = small_circuit(67);
  const LockedCircuit lc = lock_weighted(n, 10, 3, 68);
  GoldenOracle golden(lc);
  BudgetedOracle capped(golden, 4);
  Rng rng(69);
  std::vector<BitVec> xs;
  for (int i = 0; i < 7; ++i)
    xs.push_back(BitVec::random(lc.num_data_inputs, rng));

  std::vector<OracleResult> rs;
  capped.query_batch(xs, &rs);
  ASSERT_EQ(rs.size(), xs.size());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(rs[i].ok());
  for (std::size_t i = 4; i < 7; ++i) {
    ASSERT_FALSE(rs[i].ok());
    EXPECT_EQ(rs[i].error().kind, OracleErrorKind::kExhausted);
  }
  // Only the prefix that fit reached the device or spent budget.
  EXPECT_EQ(capped.attempts(), 4u);
  EXPECT_EQ(golden.query_count(), 4u);
}

// --- batched attack paths vs serial ---------------------------------------

TEST(Batch, AttackBatchedMatchesSerialAcrossGrid) {
  // With oracle_batch on (dip_batch = 1) and no retryable errors firing,
  // the attack trajectory is byte-identical to serial execution — across
  // thread counts, portfolio, cube, and majority votes.
  const LockedCircuit lc = multi_dip_lock();
  struct Config {
    std::size_t threads, portfolio, votes;
    std::uint32_t cube;
  };
  const Config grid[] = {
      {1, 1, 1, 0}, {3, 2, 1, 0}, {3, 1, 1, 2}, {1, 1, 3, 0}, {3, 2, 3, 0}};
  for (const Config& cfg : grid) {
    set_parallel_threads(cfg.threads);
    SatAttackOptions opts;
    opts.portfolio_size = cfg.portfolio;
    opts.cube_depth = cfg.cube;
    opts.resilience.votes = cfg.votes;

    GoldenOracle serial_oracle(lc);
    const SatAttackResult want = sat_attack(lc, serial_oracle, opts);
    ASSERT_EQ(want.status, SatAttackResult::Status::kKeyFound);

    GoldenOracle batched_oracle(lc);
    opts.oracle_batch = true;
    const SatAttackResult got = sat_attack(lc, batched_oracle, opts);
    expect_same_result(got, want);
    // Vote replicas collapse into one flush per DIP, so the batched run
    // pays fewer round trips whenever votes > 1.
    if (cfg.votes > 1)
      EXPECT_LT(got.oracle_round_trips, want.oracle_round_trips);
  }
  set_parallel_threads(0);
}

TEST(Batch, BatchedNoisyVotedAttackMatchesSerial) {
  // Same byte-identity with a fault layer actually firing: noise draws
  // happen per element in batch order, so the voted majority — and the
  // whole downstream trajectory — matches the serial run bit for bit.
  const LockedCircuit lc = multi_dip_lock();
  SatAttackOptions opts;
  opts.resilience.votes = 3;

  GoldenOracle g1(lc);
  NoisyOracle serial_noisy(g1, 0.01, 0xbadc0ffeULL);
  const SatAttackResult want = sat_attack(lc, serial_noisy, opts);

  GoldenOracle g2(lc);
  NoisyOracle batched_noisy(g2, 0.01, 0xbadc0ffeULL);
  opts.oracle_batch = true;
  const SatAttackResult got = sat_attack(lc, batched_noisy, opts);
  expect_same_result(got, want);
}

TEST(Batch, BatchedDegradedMeasurementMatchesSerial) {
  // The degraded error-rate measurement loop runs batched in chunks; with
  // no deadline firing it must produce the same measured rate (and the
  // same everything else) as the serial loop.
  const LockedCircuit lc = multi_dip_lock();
  SatAttackOptions opts;
  opts.resilience.quarantine = true;
  opts.resilience.max_evictions = 0;
  opts.resilience.degraded_samples = 48;

  GoldenOracle g1(lc);
  NoisyOracle serial_noisy(g1, 0.01, 0xbadc0ffeULL);
  const SatAttackResult want = sat_attack(lc, serial_noisy, opts);
  ASSERT_EQ(want.status, SatAttackResult::Status::kDegraded);

  GoldenOracle g2(lc);
  NoisyOracle batched_noisy(g2, 0.01, 0xbadc0ffeULL);
  opts.oracle_batch = true;
  const SatAttackResult got = sat_attack(lc, batched_noisy, opts);
  expect_same_result(got, want);
  EXPECT_DOUBLE_EQ(got.oracle_error_rate, want.oracle_error_rate);
}

TEST(Batch, DipBatchRecoversSameKeyWithFewerRoundTrips) {
  // dip_batch > 1 is a different (equally valid) trajectory: the final
  // key must still break the lock, and the flush count must shrink.
  const LockedCircuit lc = multi_dip_lock();
  GoldenOracle verify(lc);

  SatAttackResult base;
  {
    GoldenOracle oracle(lc);
    SatAttackOptions opts;
    opts.oracle_batch = true;
    base = sat_attack(lc, oracle, opts);
    ASSERT_EQ(base.status, SatAttackResult::Status::kKeyFound);
    EXPECT_EQ(verify_key_against_oracle(lc, base.key, verify, 128, 5), 0u);
  }
  std::size_t prev_round_trips = base.oracle_round_trips;
  for (const std::size_t dip : {std::size_t{2}, std::size_t{8}}) {
    GoldenOracle oracle(lc);
    SatAttackOptions opts;
    opts.oracle_batch = true;
    opts.dip_batch = dip;
    const SatAttackResult r = sat_attack(lc, oracle, opts);
    ASSERT_EQ(r.status, SatAttackResult::Status::kKeyFound) << "dip " << dip;
    EXPECT_EQ(verify_key_against_oracle(lc, r.key, verify, 128, 5), 0u)
        << "dip " << dip;
    EXPECT_LT(r.oracle_round_trips, prev_round_trips) << "dip " << dip;
    prev_round_trips = r.oracle_round_trips;
  }
}

TEST(Batch, DipBatchHonorsIterationLimit) {
  // Harvesting must not blow through max_iterations: the final round is
  // clipped to the remaining budget.
  const LockedCircuit lc = multi_dip_lock();
  GoldenOracle oracle(lc);
  SatAttackOptions opts;
  opts.oracle_batch = true;
  opts.dip_batch = 8;
  opts.max_iterations = 3;
  const SatAttackResult r = sat_attack(lc, oracle, opts);
  EXPECT_LE(r.iterations, 3u);
  EXPECT_EQ(r.status, SatAttackResult::Status::kIterationLimit);
}

TEST(Batch, DefaultsOffChangeNothing) {
  // oracle_batch=false, dip_batch=1 must reproduce the historical
  // trajectory exactly (and keep the new counters at their serial
  // meaning: one round trip per query, zero batches).
  const Netlist n = small_circuit(70);
  const LockedCircuit lc = lock_weighted(n, 12, 3, 71);
  SatAttackResult a, b;
  {
    GoldenOracle oracle(lc);
    a = sat_attack(lc, oracle);
  }
  {
    GoldenOracle oracle(lc);
    SatAttackOptions opts;
    EXPECT_FALSE(opts.oracle_batch);
    EXPECT_EQ(opts.dip_batch, 1u);
    b = sat_attack(lc, oracle, opts);
  }
  expect_same_result(a, b);
  EXPECT_EQ(b.oracle_batches, 0u);
  EXPECT_EQ(b.oracle_round_trips, b.oracle_queries);
  EXPECT_EQ(b.cache_hits, 0u);
  EXPECT_EQ(b.cache_misses, 0u);
}

// --- result cache ----------------------------------------------------------

TEST(Batch, CachedOracleServesHitsWithoutDeviceTraffic) {
  const Netlist n = small_circuit(72);
  const LockedCircuit lc = lock_weighted(n, 10, 3, 73);
  GoldenOracle golden(lc);
  serve::OracleResultCache cache;
  serve::CachedOracle cached(golden, cache);

  Rng rng(74);
  const BitVec x = BitVec::random(lc.num_data_inputs, rng);
  const OracleResult first = cached.query(x);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cached.cache_misses(), 1u);
  EXPECT_EQ(golden.query_count(), 1u);

  const OracleResult again = cached.query(x);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.response().words(), first.response().words());
  EXPECT_EQ(cached.cache_hits(), 1u);
  // The hit cost zero device queries, but the caller still sees its
  // logical query counted once at the layer it asked.
  EXPECT_EQ(golden.query_count(), 1u);
  EXPECT_EQ(cached.query_count(), 2u);

  // In-batch dedup: vote replicas of one input are a single device query.
  BitVec y = BitVec::random(lc.num_data_inputs, rng);
  std::vector<OracleResult> rs;
  cached.query_batch({x, y, x, y, x}, &rs);
  ASSERT_EQ(rs.size(), 5u);
  for (const auto& r : rs) ASSERT_TRUE(r.ok());
  EXPECT_EQ(rs[0].response().words(), rs[2].response().words());
  EXPECT_EQ(rs[1].response().words(), rs[3].response().words());
  EXPECT_EQ(golden.query_count(), 2u);  // only the distinct miss went in
}

TEST(Batch, CacheBelowFaultLayerNeverChangesTheTrajectory) {
  // The placement contract: with the cache under the noise layer, the
  // noise RNG draws — and therefore every response the attack sees — are
  // byte-identical cache on vs off.
  const Netlist n = small_circuit(75);
  const LockedCircuit lc = lock_weighted(n, 12, 3, 76);
  Rng rng(77);
  std::vector<BitVec> xs;
  for (int i = 0; i < 24; ++i)
    xs.push_back(BitVec::random(lc.num_data_inputs, rng));
  // Repeat some inputs so the cache actually serves hits.
  for (int i = 0; i < 12; ++i) xs.push_back(xs[i]);

  GoldenOracle g1(lc);
  NoisyOracle plain(g1, 0.08, 0x5eedULL);
  std::vector<OracleResult> want;
  for (const BitVec& x : xs) want.push_back(plain.query(x));

  GoldenOracle g2(lc);
  serve::OracleResultCache cache;
  serve::CachedOracle cached(g2, cache);
  NoisyOracle over_cache(cached, 0.08, 0x5eedULL);
  std::vector<OracleResult> got;
  for (const BitVec& x : xs) got.push_back(over_cache.query(x));

  expect_same_responses(got, want, /*mask=*/0);
  EXPECT_EQ(cached.cache_hits(), 12u);
  EXPECT_LT(g2.query_count(), g1.query_count());
}

TEST(Batch, JobServerSharesCacheAcrossJobsOfTheSameChip) {
  // Three jobs attack the same chip with a shared cache: results are
  // byte-identical to the cache-off run, and at least the repeated
  // queries across jobs are served from the cache. A fourth job on a
  // different chip gets its own cache (different fingerprint).
  const Netlist n = small_circuit(78);
  const LockedCircuit shared = lock_random_xor(n, 16, 79);
  const LockedCircuit other = lock_random_xor(small_circuit(80), 16, 81);
  EXPECT_NE(serve::chip_fingerprint(shared), serve::chip_fingerprint(other));

  std::vector<serve::AttackJob> jobs(4);
  for (std::size_t i = 0; i < 4; ++i) {
    jobs[i].id = "j" + std::to_string(i);
    jobs[i].circuit = i < 3 ? &shared : &other;
  }

  serve::JobServerOptions plain_opts;
  const serve::JobServer plain(plain_opts);
  const auto want = plain.run(jobs);

  serve::JobServerOptions cache_opts;
  cache_opts.result_cache = true;
  const serve::JobServer caching(cache_opts);
  const auto got = caching.run(jobs);

  ASSERT_EQ(got.size(), want.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_same_result(got[i].result, want[i].result);
    hits += got[i].result.cache_hits;
    EXPECT_EQ(want[i].result.cache_hits, 0u);
  }
  // Jobs 0-2 run the same deterministic attack on the same chip, so all
  // but the first arrival of every query is a hit.
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(caching.caches().num_chips(), 2u);
}

}  // namespace
}  // namespace orap
