// Tests for the deterministic portfolio CDCL front end: pass-through at
// size 1, agreement with the single solver, bit-identical results at any
// pool thread count (the determinism contract), budget/core semantics,
// and the learnt-sharing path.

#include <gtest/gtest.h>

#include <vector>

#include "sat/portfolio.h"
#include "sat/solver.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace orap::sat {
namespace {

// Pigeonhole principle PHP(pigeons, holes) into any sink.
void add_php(ClauseSink& s, int pigeons, int holes) {
  std::vector<std::vector<Var>> x(pigeons, std::vector<Var>(holes));
  for (auto& row : x)
    for (auto& v : row) v = s.new_var();
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> some;
    for (int h = 0; h < holes; ++h) some.push_back(pos(x[p][h]));
    s.add_clause(some);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_clause({neg(x[p1][h]), neg(x[p2][h])});
}

std::vector<std::vector<Lit>> random_cnf(std::uint64_t seed, int nvars,
                                         int nclauses) {
  Rng rng(seed);
  std::vector<std::vector<Lit>> cnf;
  for (int i = 0; i < nclauses; ++i) {
    std::vector<Lit> cl;
    for (int k = 0; k < 3; ++k)
      cl.push_back(Lit(static_cast<Var>(rng.below(nvars)), rng.bit()));
    cnf.push_back(cl);
  }
  return cnf;
}

bool model_satisfies(const PortfolioSolver& s,
                     const std::vector<std::vector<Lit>>& cnf) {
  for (const auto& cl : cnf) {
    bool any = false;
    for (const Lit l : cl) any |= s.model_value(l.var()) != l.sign();
    if (!any) return false;
  }
  return true;
}

TEST(Portfolio, SizeOneIsPassThrough) {
  PortfolioSolver p;  // default size 1
  EXPECT_EQ(p.size(), 1u);
  const Var a = p.new_var();
  const Var b = p.new_var();
  p.add_clause({neg(a), pos(b)});
  p.add_clause({pos(a)});
  EXPECT_EQ(p.solve(), Solver::Result::kSat);
  EXPECT_TRUE(p.model_value(b));
  EXPECT_EQ(p.portfolio_stats().epochs, 0u);
  EXPECT_EQ(p.portfolio_stats().winner, 0u);
}

TEST(Portfolio, AgreesWithPlainSolverOnRandomCnf) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto cnf = random_cnf(seed, 10, 42);
    Solver plain;
    for (int v = 0; v < 10; ++v) plain.new_var();
    bool plain_ok = true;
    for (auto cl : cnf) plain_ok &= plain.add_clause(cl);
    const auto expect =
        plain_ok ? plain.solve() : Solver::Result::kUnsat;

    for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      PortfolioOptions po;
      po.size = n;
      PortfolioSolver p(po);
      for (int v = 0; v < 10; ++v) p.new_var();
      bool p_ok = true;
      for (auto cl : cnf) p_ok &= p.add_clause(cl);
      ASSERT_EQ(p_ok, plain_ok) << "seed " << seed << " size " << n;
      const auto got = p_ok ? p.solve() : Solver::Result::kUnsat;
      ASSERT_EQ(got, expect) << "seed " << seed << " size " << n;
      if (got == Solver::Result::kSat)
        EXPECT_TRUE(model_satisfies(p, cnf)) << "seed " << seed << " size " << n;
    }
  }
}

TEST(Portfolio, PigeonholeUnsatAllSizes) {
  for (const std::size_t n : {std::size_t{2}, std::size_t{4}}) {
    PortfolioOptions po;
    po.size = n;
    po.epoch_budget = 50;  // force multiple epochs
    PortfolioSolver p(po);
    add_php(p, 7, 6);
    EXPECT_EQ(p.solve(), Solver::Result::kUnsat) << "size " << n;
    EXPECT_GE(p.portfolio_stats().epochs, 1u);
  }
}

TEST(Portfolio, BitIdenticalAcrossPoolThreadCounts) {
  // The determinism contract: verdict, winning instance, epoch count and
  // model bits must not depend on how many pool threads execute the
  // epochs. Small epoch budget forces the multi-epoch path.
  struct Outcome {
    Solver::Result res;
    std::uint64_t epochs;
    std::size_t winner;
    std::uint64_t units, clauses;
    std::vector<bool> model;
  };
  auto run = [](std::size_t threads) {
    set_parallel_threads(threads);
    PortfolioOptions po;
    po.size = 4;
    po.epoch_budget = 50;
    PortfolioSolver p(po);
    add_php(p, 8, 7);
    Outcome o;
    o.res = p.solve();
    o.epochs = p.portfolio_stats().epochs;
    o.winner = p.portfolio_stats().winner;
    o.units = p.portfolio_stats().shared_units;
    o.clauses = p.portfolio_stats().shared_clauses;
    for (std::size_t v = 0; v < p.num_vars(); ++v)
      o.model.push_back(o.res == Solver::Result::kSat ? p.model_value(v)
                                                      : false);
    return o;
  };
  const Outcome one = run(1);
  const Outcome four = run(4);
  set_parallel_threads(0);  // restore auto for the rest of the binary
  EXPECT_EQ(one.res, four.res);
  EXPECT_EQ(one.res, Solver::Result::kUnsat);
  EXPECT_EQ(one.epochs, four.epochs);
  EXPECT_EQ(one.winner, four.winner);
  EXPECT_EQ(one.units, four.units);
  EXPECT_EQ(one.clauses, four.clauses);
  EXPECT_EQ(one.model, four.model);
}

TEST(Portfolio, AssumptionCoreMatchesSemantics) {
  PortfolioOptions po;
  po.size = 3;
  PortfolioSolver p(po);
  const Var a = p.new_var();
  const Var b = p.new_var();
  const Var c = p.new_var();
  p.add_clause({neg(a), neg(b)});  // a,b incompatible; c irrelevant
  const std::vector<Lit> assumptions{pos(c), pos(a), pos(b)};
  ASSERT_EQ(p.solve(assumptions), Solver::Result::kUnsat);
  bool mentions_ab = false, mentions_c = false;
  for (const Lit l : p.unsat_core()) {
    if (l.var() == a || l.var() == b) mentions_ab = true;
    if (l.var() == c) mentions_c = true;
  }
  EXPECT_TRUE(mentions_ab);
  EXPECT_FALSE(mentions_c);
  // Not poisoned: succeeding assumptions still work.
  EXPECT_EQ(p.solve(std::vector<Lit>{pos(a)}), Solver::Result::kSat);
  EXPECT_FALSE(p.model_value(b));
}

TEST(Portfolio, ConflictBudgetAbortsAndStaysUsable) {
  PortfolioOptions po;
  po.size = 2;
  po.epoch_budget = 5;
  PortfolioSolver p(po);
  add_php(p, 8, 7);
  EXPECT_EQ(p.solve({}, 20), Solver::Result::kUnknown);
  EXPECT_EQ(p.solve({}, -1), Solver::Result::kUnsat);
}

TEST(Portfolio, SameBudgetParityWithSingleSolver) {
  // Budget-accounting parity regression: each instance's spend is charged
  // by its ACTUAL conflict delta, not by the epoch grant it was handed,
  // so a call budget that lets the single solver decide also lets every
  // portfolio size decide — and a zero budget aborts everywhere.
  Solver plain;
  add_php(plain, 7, 6);
  ASSERT_EQ(plain.solve(), Solver::Result::kUnsat);
  const std::int64_t need = static_cast<std::int64_t>(plain.stats().conflicts);

  for (const std::size_t size : {std::size_t{1}, std::size_t{3}}) {
    PortfolioOptions po;
    po.size = size;
    po.epoch_budget = 40;  // many epochs, so mis-charging would compound
    PortfolioSolver p(po);
    add_php(p, 7, 6);
    EXPECT_EQ(p.solve({}, 4 * need + 64), Solver::Result::kUnsat)
        << "size " << size;
    PortfolioSolver q(po);
    add_php(q, 7, 6);
    EXPECT_EQ(q.solve({}, 0), Solver::Result::kUnknown) << "size " << size;
  }
}

TEST(Portfolio, RootContradictionIsUnsatWithEmptyCore) {
  PortfolioOptions po;
  po.size = 3;
  PortfolioSolver p(po);
  const Var a = p.new_var();
  const Var b = p.new_var();
  p.add_clause({pos(a)});
  EXPECT_FALSE(p.add_clause({neg(a)}));
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.solve(std::vector<Lit>{pos(b)}), Solver::Result::kUnsat);
  EXPECT_TRUE(p.unsat_core().empty());
}

TEST(Portfolio, SharingMovesGlueClausesOnHardFormula) {
  // With sharing on and a formula hard enough for several epochs, the
  // barrier exchange should actually move units or glue clauses.
  PortfolioOptions po;
  po.size = 4;
  po.epoch_budget = 30;
  po.share_max_lbd = 2;
  PortfolioSolver p(po);
  add_php(p, 8, 7);
  ASSERT_EQ(p.solve(), Solver::Result::kUnsat);
  EXPECT_GT(p.portfolio_stats().epochs, 1u);
  EXPECT_GT(p.portfolio_stats().shared_units +
                p.portfolio_stats().shared_clauses,
            0u);
}

TEST(Portfolio, TotalStatsSumInstances) {
  PortfolioOptions po;
  po.size = 3;
  PortfolioSolver p(po);
  add_php(p, 6, 5);
  ASSERT_EQ(p.solve(), Solver::Result::kUnsat);
  EXPECT_GE(p.total_stats().conflicts, p.stats().conflicts);
  EXPECT_GT(p.portfolio_stats().solve_wall_ms, 0.0);
}

}  // namespace
}  // namespace orap::sat
