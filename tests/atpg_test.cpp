// Tests for the fault model, fault simulator and SAT-ATPG, including the
// Table II properties: high coverage on random logic, provably redundant
// faults classified as redundant, and improved testability of locked
// circuits when key inputs are scan-controllable.

#include <gtest/gtest.h>

#include "atpg/atpg.h"
#include "atpg/fault.h"
#include "atpg/fault_sim.h"
#include "gen/circuit_gen.h"
#include "gen/embedded.h"
#include "locking/locking.h"
#include "netlist/simulator.h"
#include "util/rng.h"

namespace orap {
namespace {

TEST(FaultModel, EnumerationCounts) {
  // c17: 5 PIs + 6 NANDs, several multi-fanout nets.
  const Netlist n = make_c17();
  const auto all = enumerate_faults(n);
  // 11 stems * 2 = 22 output faults, plus branch faults at multi-fanout
  // drivers (net 3: fanout 2 -> 2 gates have a branch; net 11: fanout 2;
  // net 16: fanout 2) = 6 branches * 2 = 12. Total 34.
  EXPECT_EQ(all.size(), 34u);
}

TEST(FaultModel, CollapsingShrinksList) {
  const Netlist n = make_c17();
  const auto all = enumerate_faults(n);
  const auto collapsed = collapse_faults(n);
  EXPECT_LT(collapsed.size(), all.size());
  // NAND branch sa0 faults are dropped (equivalent to output), sa1 kept.
  for (const Fault& f : collapsed) {
    if (f.pin >= 0 && n.type(f.gate) == GateType::kNand) {
      EXPECT_TRUE(f.stuck_value);
    }
  }
}

TEST(FaultModel, NamesAreReadable) {
  const Netlist n = make_c17();
  const Fault f{n.find("22"), -1, true};
  EXPECT_EQ(fault_name(n, f), "22/sa1");
}

TEST(FaultSim, DetectsInjectedFaultExactly) {
  // Cross-check the event-driven simulator against brute-force faulty
  // netlist simulation on c17, all faults x all 32 input patterns.
  const Netlist n = make_c17();
  Simulator good(n);
  for (const Fault& f : enumerate_faults(n)) {
    FaultSimulator fsim(n);
    for (unsigned m = 0; m < 32; ++m) {
      BitVec p(5);
      for (int i = 0; i < 5; ++i) p.set(i, (m >> i) & 1);
      // Brute force: evaluate with fault injected.
      Simulator sim(n);
      sim.broadcast_inputs(p);
      // Manual faulty evaluation.
      std::vector<std::uint64_t> vals(n.num_gates());
      for (GateId g = 0; g < n.num_gates(); ++g) {
        if (n.type(g) == GateType::kInput) {
          vals[g] = p.get(n.input_index(g)) ? ~0ULL : 0ULL;
        } else {
          std::vector<std::uint64_t> fi;
          const auto fanins = n.fanins(g);
          for (std::size_t q = 0; q < fanins.size(); ++q) {
            std::uint64_t v = vals[fanins[q]];
            if (f.gate == g && static_cast<std::int32_t>(q) == f.pin)
              v = f.stuck_value ? ~0ULL : 0ULL;
            fi.push_back(v);
          }
          vals[g] = eval_gate_word(n.type(g), fi);
        }
        if (f.gate == g && f.pin < 0) vals[g] = f.stuck_value ? ~0ULL : 0ULL;
      }
      bool brute_detect = false;
      const BitVec good_out = good.run_single(p);
      for (std::size_t o = 0; o < n.num_outputs(); ++o)
        brute_detect |=
            good_out.get(o) != ((vals[n.outputs()[o].gate] & 1) != 0);
      EXPECT_EQ(fsim.detects(p, f), brute_detect)
          << fault_name(n, f) << " pattern " << m;
    }
  }
}

TEST(FaultSim, RandomPhaseDropsDetectedFaults) {
  GenSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 16;
  spec.num_gates = 400;
  spec.depth = 9;
  spec.seed = 3;
  const Netlist n = generate_circuit(spec);
  auto faults = collapse_faults(n);
  const std::size_t total = faults.size();
  FaultSimulator fsim(n);
  Rng rng(4);
  const std::size_t detected = fsim.run_random(64, rng, faults);
  EXPECT_EQ(detected + faults.size(), total);
  EXPECT_GT(static_cast<double>(detected) / total, 0.8);
}

TEST(Atpg, GeneratesValidTestForHardFault) {
  // An AND tree root sa0 needs all inputs at 1 — random patterns rarely
  // find it; ATPG must.
  Netlist n;
  std::vector<GateId> ins;
  for (int i = 0; i < 12; ++i) ins.push_back(n.add_input("i" + std::to_string(i)));
  const GateId root = n.add_gate(GateType::kAnd, ins);
  n.mark_output(root, "y");
  const Fault f{root, -1, false};
  bool aborted = false;
  const auto pattern = generate_test(n, f, -1, &aborted);
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->count(), 12u);  // all ones
}

TEST(Atpg, ProvesRedundantFault) {
  // y = (a & b) | (a & !b) simplifies to a; the b-path contains redundant
  // faults: the OR output never equals... specifically sa1 on the AND
  // outputs is testable, but sa0 on input b of the first AND when a=1,
  // b=1... Construct a classically redundant fault: z = a | (a & b):
  // the (a & b) term is absorbed, so its output sa0 is undetectable.
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId ab = n.add_and2(a, b);
  const GateId z = n.add_or2(a, ab);
  n.mark_output(z, "z");
  bool aborted = false;
  const auto pattern = generate_test(n, {ab, -1, false}, -1, &aborted);
  EXPECT_FALSE(pattern.has_value());
  EXPECT_FALSE(aborted);
}

TEST(Atpg, AbortsOnBudget) {
  // A tiny budget forces an abort on a hard (but testable) fault.
  GenSpec spec;
  spec.num_inputs = 32;
  spec.num_outputs = 8;
  spec.num_gates = 600;
  spec.depth = 14;
  spec.seed = 5;
  const Netlist n = generate_circuit(spec);
  std::size_t aborted_cnt = 0;
  for (const Fault& f : collapse_faults(n)) {
    bool aborted = false;
    generate_test(n, f, 1, &aborted);
    if (aborted) ++aborted_cnt;
    if (aborted_cnt > 0) break;
  }
  EXPECT_GT(aborted_cnt, 0u);
}

TEST(Atpg, FullFlowHighCoverageOnRandomLogic) {
  GenSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 20;
  spec.num_gates = 500;
  spec.depth = 10;
  spec.seed = 7;
  const Netlist n = generate_circuit(spec);
  AtpgOptions opts;
  opts.random_words = 64;
  const AtpgResult r = run_atpg(n, opts);
  EXPECT_EQ(r.detected() + r.redundant + r.aborted, r.total_faults);
  EXPECT_GT(r.fault_coverage_pct(), 95.0);
  // A handful of genuinely hard proofs may abort at the default budget,
  // exactly like Atalanta's backtrack limit; they must stay rare.
  EXPECT_LE(r.aborted, r.total_faults / 50);
}

TEST(Atpg, AtpgPhaseBeatsRandomOnly) {
  // Deep circuit: random patterns leave a tail that ATPG picks up.
  GenSpec spec;
  spec.num_inputs = 28;
  spec.num_outputs = 12;
  spec.num_gates = 700;
  spec.depth = 18;
  spec.seed = 8;
  const Netlist n = generate_circuit(spec);
  AtpgOptions opts;
  opts.random_words = 48;
  opts.conflict_budget = 5000;
  const AtpgResult r = run_atpg(n, opts);
  EXPECT_GT(r.detected_atpg, 0u);
  EXPECT_GT(r.fault_coverage_pct(), 95.0);
}

TEST(Atpg, LockedCircuitTestabilityImproves) {
  // The Table II effect: with key inputs scan-controllable (free to the
  // ATPG), the protected circuit's redundant+aborted count does not grow
  // and coverage stays at least as high.
  GenSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 20;
  spec.num_gates = 500;
  spec.depth = 10;
  spec.seed = 9;
  const Netlist n = generate_circuit(spec);
  const LockedCircuit lc = lock_weighted(n, 24, 3, 10);
  AtpgOptions opts;
  opts.random_words = 96;
  const AtpgResult orig = run_atpg(n, opts);
  const AtpgResult prot = run_atpg(lc.netlist, opts);
  EXPECT_GE(prot.fault_coverage_pct() + 0.5, orig.fault_coverage_pct());
  EXPECT_GT(prot.total_faults, orig.total_faults);
}

class AtpgSweep : public ::testing::TestWithParam<int> {};

TEST_P(AtpgSweep, EveryAtpgPatternDetectsAndAccountingIsExact) {
  GenSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 12;
  spec.num_gates = 250;
  spec.depth = 8 + GetParam() % 6;
  spec.seed = 600 + GetParam();
  const Netlist n = generate_circuit(spec);
  AtpgOptions opts;
  opts.random_words = 8;
  opts.seed = GetParam();
  const AtpgResult r = run_atpg(n, opts);
  EXPECT_EQ(r.detected() + r.redundant + r.aborted, r.total_faults);
  EXPECT_GT(r.fault_coverage_pct(), 90.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AtpgSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace orap
