// Tests for DIMACS CNF import/export and its interaction with the solver.

#include <gtest/gtest.h>

#include "sat/dimacs.h"
#include "sat/solver.h"
#include "util/rng.h"

namespace orap::sat {
namespace {

TEST(Dimacs, ParsesSimpleFormula) {
  const Cnf cnf = read_dimacs_string(
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 0\n");
  EXPECT_EQ(cnf.num_vars, 3u);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0][0], pos(0));
  EXPECT_EQ(cnf.clauses[0][1], neg(1));
  EXPECT_EQ(cnf.clauses[1][1], pos(2));
}

TEST(Dimacs, ClausesMaySpanLines) {
  const Cnf cnf = read_dimacs_string(
      "p cnf 4 1\n"
      "1 2\n"
      "3 4 0\n");
  ASSERT_EQ(cnf.clauses.size(), 1u);
  EXPECT_EQ(cnf.clauses[0].size(), 4u);
}

TEST(Dimacs, RejectsMalformedInput) {
  EXPECT_THROW(read_dimacs_string("1 2 0\n"), CheckError);          // no header
  EXPECT_THROW(read_dimacs_string("p cnf 1 1\n5 0\n"), CheckError); // var range
  EXPECT_THROW(read_dimacs_string("p cnf 2 1\n1 2\n"), CheckError); // unterminated
  EXPECT_THROW(read_dimacs_string("p cnf 2 3\n1 0\n"), CheckError); // count
}

TEST(Dimacs, RoundTrip) {
  Rng rng(5);
  Cnf cnf;
  cnf.num_vars = 12;
  for (int i = 0; i < 30; ++i) {
    std::vector<Lit> cl;
    for (int k = 0; k < 3; ++k)
      cl.push_back(Lit(static_cast<Var>(rng.below(12)), rng.bit()));
    cnf.clauses.push_back(cl);
  }
  const Cnf back = read_dimacs_string(write_dimacs_string(cnf));
  EXPECT_EQ(back.num_vars, cnf.num_vars);
  ASSERT_EQ(back.clauses.size(), cnf.clauses.size());
  for (std::size_t i = 0; i < cnf.clauses.size(); ++i)
    EXPECT_EQ(back.clauses[i], cnf.clauses[i]);
}

TEST(Dimacs, LoadIntoSolverAndSolve) {
  // (x1 | x2) & (!x1 | x2) & (x1 | !x2)  =>  x1 & x2
  const Cnf cnf = read_dimacs_string(
      "p cnf 2 3\n"
      "1 2 0\n"
      "-1 2 0\n"
      "1 -2 0\n");
  Solver s;
  ASSERT_TRUE(cnf.load_into(s));
  ASSERT_EQ(s.solve(), Solver::Result::kSat);
  EXPECT_TRUE(s.model_value(0));
  EXPECT_TRUE(s.model_value(1));
}

TEST(Dimacs, UnsatFormula) {
  const Cnf cnf = read_dimacs_string(
      "p cnf 1 2\n"
      "1 0\n"
      "-1 0\n");
  Solver s;
  cnf.load_into(s);
  EXPECT_EQ(s.solve(), Solver::Result::kUnsat);
}

}  // namespace
}  // namespace orap::sat
