// Tests for the netlist IR, .bench I/O, simulator and structural analyses.

#include <gtest/gtest.h>

#include <sstream>

#include "gen/circuit_gen.h"
#include "gen/embedded.h"
#include "netlist/analysis.h"
#include "netlist/bench_io.h"
#include "netlist/netlist.h"
#include "netlist/simulator.h"
#include "util/rng.h"

namespace orap {
namespace {

TEST(Netlist, BuildAndQuery) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId g = n.add_gate(GateType::kAnd, {a, b}, "g");
  n.mark_output(g, "out");
  EXPECT_EQ(n.num_gates(), 3u);
  EXPECT_EQ(n.num_inputs(), 2u);
  EXPECT_EQ(n.num_outputs(), 1u);
  EXPECT_EQ(n.find("g"), g);
  EXPECT_EQ(n.find("nope"), kNoGate);
  EXPECT_EQ(n.input_index(b), 1u);
  ASSERT_EQ(n.fanins(g).size(), 2u);
  EXPECT_EQ(n.fanins(g)[0], a);
  n.validate();
}

TEST(Netlist, RejectsForwardReference) {
  Netlist n;
  const GateId a = n.add_input("a");
  EXPECT_THROW(n.add_gate(GateType::kAnd, {a, GateId{5}}), CheckError);
}

TEST(Netlist, RejectsBadArity) {
  Netlist n;
  const GateId a = n.add_input("a");
  EXPECT_THROW(n.add_gate(GateType::kMux, {a, a}), CheckError);
  EXPECT_THROW(n.add_gate(GateType::kAnd, {a}), CheckError);
}

TEST(Netlist, RejectsDuplicateName) {
  Netlist n;
  n.add_input("a");
  EXPECT_THROW(n.add_input("a"), CheckError);
}

TEST(Netlist, GateCountExcludesInverters) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId na = n.add_not(a);
  const GateId g = n.add_and2(na, b);
  n.mark_output(g);
  EXPECT_EQ(n.gate_count_no_inverters(), 1u);
  EXPECT_EQ(n.logic_gate_count(), 2u);
}

TEST(Simulator, GateSemanticsTruthTables) {
  // Exhaustive 2-input truth tables via one 64-bit word.
  const std::uint64_t a = 0b1100;
  const std::uint64_t b = 0b1010;
  EXPECT_EQ(eval_gate_word(GateType::kAnd, std::array{a, b}) & 0xF, 0b1000u);
  EXPECT_EQ(eval_gate_word(GateType::kNand, std::array{a, b}) & 0xF, 0b0111u);
  EXPECT_EQ(eval_gate_word(GateType::kOr, std::array{a, b}) & 0xF, 0b1110u);
  EXPECT_EQ(eval_gate_word(GateType::kNor, std::array{a, b}) & 0xF, 0b0001u);
  EXPECT_EQ(eval_gate_word(GateType::kXor, std::array{a, b}) & 0xF, 0b0110u);
  EXPECT_EQ(eval_gate_word(GateType::kXnor, std::array{a, b}) & 0xF, 0b1001u);
  EXPECT_EQ(eval_gate_word(GateType::kNot, std::array{a}) & 0xF, 0b0011u);
  EXPECT_EQ(eval_gate_word(GateType::kBuf, std::array{a}) & 0xF, 0b1100u);
}

TEST(Simulator, MuxSelectsCorrectInput) {
  const std::uint64_t s = 0b1100, d0 = 0b1010, d1 = 0b0110;
  // s=0 -> d0 bits; s=1 -> d1 bits.
  EXPECT_EQ(eval_gate_word(GateType::kMux, std::array{s, d0, d1}) & 0xF,
            (0b0110u & 0b1100u) | (0b1010u & 0b0011u));
}

TEST(Simulator, MultiInputParity) {
  const std::uint64_t a = 0xF0F0, b = 0xFF00, c = 0xCCCC;
  EXPECT_EQ(eval_gate_word(GateType::kXor, std::array{a, b, c}),
            a ^ b ^ c);
  EXPECT_EQ(eval_gate_word(GateType::kXnor, std::array{a, b, c}),
            ~(a ^ b ^ c));
}

TEST(Simulator, RippleAdderAddsCorrectly) {
  const Netlist n = make_ripple_adder(8);
  Simulator sim(n);
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned a = static_cast<unsigned>(rng.below(256));
    const unsigned b = static_cast<unsigned>(rng.below(256));
    const unsigned cin = static_cast<unsigned>(rng.below(2));
    BitVec pattern(n.num_inputs());
    for (std::size_t i = 0; i < 8; ++i) pattern.set(i, (a >> i) & 1);
    for (std::size_t i = 0; i < 8; ++i) pattern.set(8 + i, (b >> i) & 1);
    pattern.set(16, cin != 0);
    const BitVec out = sim.run_single(pattern);
    unsigned sum = 0;
    for (std::size_t i = 0; i < 8; ++i) sum |= out.get(i) << i;
    sum |= out.get(8) << 8;  // cout
    EXPECT_EQ(sum, a + b + cin);
  }
}

TEST(Simulator, Alu4MatchesReference) {
  const Netlist n = make_alu4();
  Simulator sim(n);
  for (unsigned op = 0; op < 4; ++op) {
    for (unsigned a = 0; a < 16; ++a) {
      for (unsigned b = 0; b < 16; ++b) {
        BitVec pattern(n.num_inputs());
        pattern.set(0, op & 1);
        pattern.set(1, (op >> 1) & 1);
        for (std::size_t i = 0; i < 4; ++i) pattern.set(2 + i, (a >> i) & 1);
        for (std::size_t i = 0; i < 4; ++i) pattern.set(6 + i, (b >> i) & 1);
        const BitVec out = sim.run_single(pattern);
        unsigned y = 0;
        for (std::size_t i = 0; i < 4; ++i) y |= out.get(i) << i;
        unsigned expect = 0;
        switch (op) {
          case 0: expect = (a + b) & 0xF; break;
          case 1: expect = a & b; break;
          case 2: expect = a | b; break;
          case 3: expect = a ^ b; break;
        }
        EXPECT_EQ(y, expect) << "op=" << op << " a=" << a << " b=" << b;
        if (op == 0)
          EXPECT_EQ(out.get(4), ((a + b) >> 4) & 1);
        else
          EXPECT_FALSE(out.get(4));
      }
    }
  }
}

TEST(Simulator, C17KnownVectors) {
  const Netlist n = make_c17();
  EXPECT_EQ(n.num_inputs(), 5u);
  EXPECT_EQ(n.num_outputs(), 2u);
  EXPECT_EQ(n.gate_count_no_inverters(), 6u);
  Simulator sim(n);
  // Inputs in file order: 1, 2, 3, 6, 7.
  // All-zero input: 10=NAND(0,0)=1, 11=1, 16=NAND(0,1)=1, 19=NAND(1,0)=1,
  // 22=NAND(1,1)=0, 23=NAND(1,1)=0.
  BitVec p(5);
  BitVec out = sim.run_single(p);
  EXPECT_FALSE(out.get(0));
  EXPECT_FALSE(out.get(1));
  // All-ones: 10=0, 11=0, 16=NAND(1,0)=1, 19=NAND(0,1)=1, 22=NAND(0,1)=1,
  // 23=NAND(1,1)=0.
  p = BitVec(5, true);
  out = sim.run_single(p);
  EXPECT_TRUE(out.get(0));
  EXPECT_FALSE(out.get(1));
}

TEST(Simulator, BitParallelAgreesWithSingle) {
  // Word-parallel run must equal 64 independent single-pattern runs.
  const Netlist n = make_alu4();
  Simulator par(n), ser(n);
  Rng rng(23);
  std::vector<BitVec> patterns;
  for (int lane = 0; lane < 64; ++lane)
    patterns.push_back(BitVec::random(n.num_inputs(), rng));
  for (std::size_t i = 0; i < n.num_inputs(); ++i) {
    std::uint64_t w = 0;
    for (int lane = 0; lane < 64; ++lane)
      w |= static_cast<std::uint64_t>(patterns[lane].get(i)) << lane;
    par.set_input_word(i, w);
  }
  par.run();
  for (int lane = 0; lane < 64; ++lane) {
    const BitVec out = ser.run_single(patterns[lane]);
    for (std::size_t o = 0; o < n.num_outputs(); ++o)
      EXPECT_EQ(out.get(o), ((par.output_word(o) >> lane) & 1) != 0);
  }
}

TEST(BenchIo, RoundTripPreservesFunction) {
  const Netlist original = make_alu4();
  const std::string text = write_bench_string(original);
  const Netlist parsed = read_bench_string(text, "alu4rt");
  ASSERT_EQ(parsed.num_inputs(), original.num_inputs());
  ASSERT_EQ(parsed.num_outputs(), original.num_outputs());
  Simulator a(original), b(parsed);
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const BitVec p = BitVec::random(original.num_inputs(), rng);
    EXPECT_EQ(a.run_single(p), b.run_single(p));
  }
}

TEST(BenchIo, ParsesOutOfOrderDefinitions) {
  const Netlist n = read_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(m, b)
m = OR(a, b)
)");
  Simulator sim(n);
  BitVec p(2);
  p.set(0, true);  // a=1 b=0 -> m=1, y=0
  EXPECT_FALSE(sim.run_single(p).get(0));
  p.set(1, true);  // a=1 b=1 -> y=1
  EXPECT_TRUE(sim.run_single(p).get(0));
}

TEST(BenchIo, SequentialDffBecomesPseudoIo) {
  const Netlist n = read_bench_string(R"(
INPUT(x)
OUTPUT(q)
q = DFF(d)
d = NAND(x, q)
)");
  // Comb core: inputs {x, q}, outputs {q (PO alias of input), d as q_next}.
  EXPECT_EQ(n.num_inputs(), 2u);
  EXPECT_EQ(n.num_outputs(), 2u);
  Simulator sim(n);
  BitVec p(2);
  p.set(0, true);
  p.set(1, true);
  const BitVec out = sim.run_single(p);
  EXPECT_TRUE(out.get(0));    // q passes through
  EXPECT_FALSE(out.get(1));   // d = NAND(1,1) = 0
}

TEST(BenchIo, RejectsCyclicCombinationalLogic) {
  EXPECT_THROW(read_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = AND(a, z)
z = OR(y, a)
)"),
               CheckError);
}

TEST(BenchIo, RejectsUndrivenSignal) {
  EXPECT_THROW(read_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = AND(a, ghost)
)"),
               CheckError);
}

class BenchRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BenchRoundTrip, RandomCircuitsSurviveSerialization) {
  // Property: write-then-parse is the identity function (up to gate ids)
  // for arbitrary generated circuits — including multi-input gates and
  // inverter-heavy structures.
  GenSpec spec;
  spec.num_inputs = 10 + GetParam() * 3;
  spec.num_outputs = 6 + GetParam();
  spec.num_gates = 120 + GetParam() * 40;
  spec.depth = 6 + GetParam() % 5;
  spec.seed = 9000 + GetParam();
  const Netlist original = generate_circuit(spec);
  const Netlist parsed =
      read_bench_string(write_bench_string(original), "rt");
  ASSERT_EQ(parsed.num_inputs(), original.num_inputs());
  ASSERT_EQ(parsed.num_outputs(), original.num_outputs());
  Simulator a(original), b(parsed);
  Rng rng(100 + GetParam());
  for (int t = 0; t < 50; ++t) {
    const BitVec p = BitVec::random(original.num_inputs(), rng);
    ASSERT_EQ(a.run_single(p), b.run_single(p)) << "trial " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BenchRoundTrip, ::testing::Range(0, 8));

TEST(Analysis, LevelsOfChain) {
  Netlist n;
  GateId g = n.add_input("a");
  const GateId b = n.add_input("b");
  for (int i = 0; i < 5; ++i) g = n.add_and2(g, b);
  n.mark_output(g);
  EXPECT_EQ(circuit_depth(n), 5u);
}

TEST(Analysis, InvertersAreFreeByDefault) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId x = n.add_and2(a, b);
  const GateId nx = n.add_not(x);
  const GateId y = n.add_or2(nx, a);
  n.mark_output(y);
  EXPECT_EQ(circuit_depth(n, /*inverters_free=*/true), 2u);
  EXPECT_EQ(circuit_depth(n, /*inverters_free=*/false), 3u);
}

TEST(Analysis, FanoutCountsIncludeOutputs) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId x = n.add_and2(a, b);
  n.add_or2(x, a);
  n.mark_output(x);
  const auto fo = fanout_counts(n);
  EXPECT_EQ(fo[a], 2u);
  EXPECT_EQ(fo[x], 2u);  // one gate fanin + one PO
}

TEST(Analysis, ConeExtractionPreservesFunction) {
  const Netlist n = make_alu4();
  // Extract the cone of output y0 only.
  const GateId root = n.outputs()[0].gate;
  std::vector<GateId> map;
  const Netlist cone = extract_cone(n, std::array{root}, &map);
  EXPECT_EQ(cone.num_outputs(), 1u);
  EXPECT_LE(cone.num_inputs(), n.num_inputs());
  Simulator full(n), part(cone);
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    const BitVec p = BitVec::random(n.num_inputs(), rng);
    // Project the pattern onto the cone's inputs (matched by name).
    BitVec q(cone.num_inputs());
    for (std::size_t i = 0; i < cone.num_inputs(); ++i) {
      const GateId orig = n.find(cone.gate_name(cone.inputs()[i]));
      ASSERT_NE(orig, kNoGate);
      q.set(i, p.get(n.input_index(orig)));
    }
    EXPECT_EQ(full.run_single(p).get(0), part.run_single(q).get(0));
  }
}

TEST(Analysis, StatsSmoke) {
  const auto s = netlist_stats(make_c17());
  EXPECT_EQ(s.inputs, 5u);
  EXPECT_EQ(s.outputs, 2u);
  EXPECT_EQ(s.gates_no_inv, 6u);
  EXPECT_EQ(s.depth, 3u);
}

}  // namespace
}  // namespace orap
