// Tests for the OraP chip model: unlock protocol (basic + modified),
// pulse-generator clearing, scan mechanics, the oracle-protection
// property, and all five Trojan scenarios with their payload costs.

#include <gtest/gtest.h>

#include "chip/chip.h"
#include "gen/circuit_gen.h"
#include "locking/locking.h"
#include "netlist/simulator.h"
#include "util/rng.h"

namespace orap {
namespace {

constexpr std::size_t kPis = 8;

Netlist chip_core(std::uint64_t seed) {
  GenSpec spec;
  spec.num_inputs = 24;   // 8 PIs + 16 state FFs
  spec.num_outputs = 28;  // 12 POs + 16 next-state
  spec.num_gates = 500;
  spec.depth = 9;
  spec.seed = seed;
  return generate_circuit(spec);
}

OrapChip make_chip(std::uint64_t seed, OrapOptions opt = {}) {
  const Netlist core = chip_core(seed);
  LockedCircuit lc = lock_weighted(core, 24, 3, seed + 1);
  return OrapChip(std::move(lc), kPis, opt, seed + 2);
}

/// Golden comb-core response: locked core with the correct key.
BitVec golden_response(const OrapChip& chip, const BitVec& data) {
  const LockedCircuit& lc = chip.locked_circuit();
  Simulator sim(lc.netlist);
  return sim.run_single(lc.assemble_input(data, lc.correct_key));
}

/// Locked-core response with an all-zero (cleared) key register.
BitVec cleared_key_response(const OrapChip& chip, const BitVec& data) {
  const LockedCircuit& lc = chip.locked_circuit();
  Simulator sim(lc.netlist);
  return sim.run_single(lc.assemble_input(data, BitVec(lc.num_key_inputs)));
}

TEST(OrapChip, PowerOnUnlocks) {
  OrapChip chip = make_chip(1);
  EXPECT_TRUE(chip.is_unlocked());
}

TEST(OrapChip, ModifiedVariantUnlocks) {
  OrapOptions opt;
  opt.variant = OrapVariant::kModified;
  OrapChip chip = make_chip(2, opt);
  EXPECT_TRUE(chip.is_unlocked());
}

TEST(OrapChip, FunctionalOperationMatchesGolden) {
  // After activation the chip must behave exactly like the correct-key
  // circuit, cycle by cycle.
  OrapChip chip = make_chip(3);
  const LockedCircuit& lc = chip.locked_circuit();
  Simulator ref(lc.netlist);
  Rng rng(4);
  BitVec ref_state(chip.num_state_ffs());
  // Align the reference with the chip's post-unlock FF state.
  ref_state = chip.state_ffs();
  for (int cycle = 0; cycle < 50; ++cycle) {
    const BitVec pi = BitVec::random(kPis, rng);
    BitVec data(lc.num_data_inputs);
    for (std::size_t i = 0; i < kPis; ++i) data.set(i, pi.get(i));
    for (std::size_t j = 0; j < chip.num_state_ffs(); ++j)
      data.set(kPis + j, ref_state.get(j));
    const BitVec expect = ref.run_single(
        lc.assemble_input(data, lc.correct_key));

    const BitVec po = chip.read_outputs(pi);
    for (std::size_t o = 0; o < chip.num_pos(); ++o)
      ASSERT_EQ(po.get(o), expect.get(o)) << "cycle " << cycle;
    chip.clock(pi);
    for (std::size_t j = 0; j < chip.num_state_ffs(); ++j)
      ref_state.set(j, expect.get(chip.num_pos() + j));
    ASSERT_EQ(chip.state_ffs(), ref_state) << "cycle " << cycle;
  }
}

TEST(OrapChip, ScanEnableClearsKeyRegister) {
  OrapChip chip = make_chip(5);
  ASSERT_TRUE(chip.is_unlocked());
  chip.set_scan_enable(true);
  EXPECT_TRUE(chip.key_register_state().none());
  EXPECT_FALSE(chip.is_unlocked());
}

TEST(OrapChip, PulseFiresOnlyOnRisingEdge) {
  OrapChip chip = make_chip(6);
  chip.set_scan_enable(true);
  EXPECT_TRUE(chip.key_register_state().none());
  // Load something into the key register through the scan chain, then
  // toggle enable low->low and high->high: no new pulse until next rise.
  BitVec image(chip.scan_image_size());
  const auto pos = chip.scan_image_position(ScanCell::Kind::kLfsr, 0);
  ASSERT_TRUE(pos.has_value());
  image.set(*pos, true);
  chip.scan_load(image);
  EXPECT_FALSE(chip.key_register_state().none());
  chip.set_scan_enable(true);  // already high: no pulse
  EXPECT_FALSE(chip.key_register_state().none());
  chip.set_scan_enable(false);
  EXPECT_FALSE(chip.key_register_state().none());  // falling edge: no pulse
  chip.set_scan_enable(true);  // rising edge: pulse
  EXPECT_TRUE(chip.key_register_state().none());
}

TEST(OrapChip, ExitTestModeReplaysUnlock) {
  OrapChip chip = make_chip(7);
  chip.set_scan_enable(true);
  EXPECT_FALSE(chip.is_unlocked());
  chip.exit_test_mode();
  EXPECT_TRUE(chip.is_unlocked());
}

TEST(OrapChip, ScanChainsStartWithLfsrCellsInterleaved) {
  OrapOptions opt;
  opt.num_scan_chains = 3;
  OrapChip chip = make_chip(8, opt);
  for (const auto& chain : chip.chains()) {
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain[0].kind, ScanCell::Kind::kLfsr);
  }
  // Interleaving: within the prefix, LFSR cells alternate with FFs.
  const auto& chain = chip.chains()[0];
  bool saw_ff_between_lfsr = false;
  for (std::size_t i = 2; i < chain.size(); ++i)
    if (chain[i].kind == ScanCell::Kind::kLfsr &&
        chain[i - 1].kind == ScanCell::Kind::kStateFf)
      saw_ff_between_lfsr = true;
  EXPECT_TRUE(saw_ff_between_lfsr);
}

TEST(OrapChip, SerialShiftMovesBitsAlongChain) {
  OrapChip chip = make_chip(9);
  chip.set_scan_enable(true);
  // Shift a known pattern through chain 0 and observe it at the tail
  // after chain-length cycles.
  const std::size_t len = chip.chains()[0].size();
  Rng rng(10);
  std::vector<bool> pattern;
  for (std::size_t i = 0; i < len; ++i) pattern.push_back(rng.bit());
  for (std::size_t i = 0; i < len; ++i) {
    BitVec head(1);
    head.set(0, pattern[i]);
    chip.scan_shift(head);
  }
  // Now shift len more times and collect the tail: the pattern emerges in
  // FIFO order.
  for (std::size_t i = 0; i < len; ++i) {
    EXPECT_EQ(chip.scan_tail_bits().get(0), pattern[i]) << "bit " << i;
    chip.scan_shift(BitVec(1));
  }
}

TEST(OrapChip, OracleProtectionBlocksScanQueries) {
  // The headline property: scan-based oracle queries return the *locked*
  // (cleared-key) responses, never the golden ones.
  OrapChip chip = make_chip(11);
  Rng rng(12);
  int equals_cleared = 0, equals_golden = 0, trials = 0;
  for (int t = 0; t < 30; ++t) {
    const BitVec data =
        BitVec::random(chip.num_pis() + chip.num_state_ffs(), rng);
    const BitVec got = scan_oracle_query(chip, data);
    const BitVec gold = golden_response(chip, data);
    const BitVec cleared = cleared_key_response(chip, data);
    if (gold == cleared) continue;  // pattern doesn't distinguish
    ++trials;
    if (got == cleared) ++equals_cleared;
    if (got == gold) ++equals_golden;
  }
  ASSERT_GT(trials, 5);
  EXPECT_EQ(equals_golden, 0);
  EXPECT_EQ(equals_cleared, trials);
}

TEST(OrapChip, ChipStillTestableWhileLocked) {
  // Scan queries are deterministic and controllable — the circuit is
  // testable in the locked state (Table II's premise); the key inputs can
  // even be set through the scan chain (LFSR cells are scannable).
  OrapChip chip = make_chip(13);
  Rng rng(14);
  const BitVec data =
      BitVec::random(chip.num_pis() + chip.num_state_ffs(), rng);
  const BitVec r1 = scan_oracle_query(chip, data);
  const BitVec r2 = scan_oracle_query(chip, data);
  EXPECT_EQ(r1, r2);
}

TEST(OrapChip, AfterTestingChipReturnsToService) {
  OrapChip chip = make_chip(15);
  Rng rng(16);
  for (int t = 0; t < 5; ++t)
    scan_oracle_query(chip,
                      BitVec::random(chip.num_pis() + chip.num_state_ffs(), rng));
  chip.exit_test_mode();
  EXPECT_TRUE(chip.is_unlocked());
}

// --- Trojan scenarios -------------------------------------------------------

TEST(TrojanA, SuppressedPulseLeaksKeyThroughScanOut) {
  OrapOptions opt;
  opt.trojan = TrojanKind::kSuppressPulsePerCell;
  OrapChip chip = make_chip(17, opt);
  chip.trigger_trojan();
  chip.power_on();
  ASSERT_TRUE(chip.is_unlocked());
  chip.set_scan_enable(true);  // pulse suppressed: key survives
  const BitVec image = chip.scan_unload();
  // The attacker reads the key directly at the scan-out pins.
  BitVec leaked(chip.lfsr_size());
  for (std::size_t i = 0; i < chip.lfsr_size(); ++i) {
    const auto pos = chip.scan_image_position(ScanCell::Kind::kLfsr, i);
    ASSERT_TRUE(pos.has_value());
    leaked.set(i, image.get(*pos));
  }
  EXPECT_EQ(leaked, chip.correct_key());
}

TEST(TrojanA, WithoutTriggerChipIsSafe) {
  OrapOptions opt;
  opt.trojan = TrojanKind::kSuppressPulsePerCell;
  OrapChip chip = make_chip(18, opt);  // trojan dormant
  chip.set_scan_enable(true);
  EXPECT_TRUE(chip.key_register_state().none());
}

TEST(TrojanB, BypassedLfsrGivesGoldenOracle) {
  OrapOptions opt;
  opt.trojan = TrojanKind::kBypassLfsrInScan;
  OrapChip chip = make_chip(19, opt);
  chip.trigger_trojan();
  chip.power_on();
  // LFSR no longer scannable.
  EXPECT_FALSE(
      chip.scan_image_position(ScanCell::Kind::kLfsr, 0).has_value());
  EXPECT_EQ(chip.scan_image_size(), chip.num_state_ffs());
  Rng rng(20);
  for (int t = 0; t < 10; ++t) {
    const BitVec data =
        BitVec::random(chip.num_pis() + chip.num_state_ffs(), rng);
    EXPECT_EQ(scan_oracle_query(chip, data), golden_response(chip, data));
  }
}

TEST(TrojanC, ShadowRegisterGivesGoldenOracle) {
  OrapOptions opt;
  opt.trojan = TrojanKind::kShadowRegister;
  OrapChip chip = make_chip(21, opt);
  chip.trigger_trojan();
  chip.power_on();  // shadow latches the key during unlock
  Rng rng(22);
  for (int t = 0; t < 10; ++t) {
    const BitVec data =
        BitVec::random(chip.num_pis() + chip.num_state_ffs(), rng);
    EXPECT_EQ(scan_oracle_query(chip, data), golden_response(chip, data));
  }
}

// Attack (e): preserve an attacker-chosen FF state across the unlock
// replay, capture one golden response, scan it out.
BitVec attack_e(OrapChip& chip, const BitVec& pi, const BitVec& state) {
  chip.set_scan_enable(true);
  BitVec image(chip.scan_image_size());
  for (std::size_t j = 0; j < chip.num_state_ffs(); ++j) {
    const auto pos = chip.scan_image_position(ScanCell::Kind::kStateFf, j);
    image.set(*pos, state.get(j));
  }
  chip.scan_load(image);
  chip.exit_test_mode();  // unlock replays; trojan freezes the FFs
  const BitVec po = chip.read_outputs(pi);
  chip.clock(pi);  // one functional cycle captures next-state
  chip.set_scan_enable(true);
  const BitVec out = chip.scan_unload();
  BitVec result(chip.num_pos() + chip.num_state_ffs());
  for (std::size_t o = 0; o < chip.num_pos(); ++o) result.set(o, po.get(o));
  for (std::size_t j = 0; j < chip.num_state_ffs(); ++j) {
    const auto pos = chip.scan_image_position(ScanCell::Kind::kStateFf, j);
    result.set(chip.num_pos() + j, out.get(*pos));
  }
  return result;
}

TEST(TrojanE, DefeatsBasicSchemeButNotModified) {
  Rng rng(23);
  for (const OrapVariant variant :
       {OrapVariant::kBasic, OrapVariant::kModified}) {
    OrapOptions opt;
    opt.variant = variant;
    opt.trojan = TrojanKind::kFreezeStateFfs;
    OrapChip chip = make_chip(24, opt);
    chip.trigger_trojan();
    int golden_hits = 0, trials = 0;
    for (int t = 0; t < 12; ++t) {
      const BitVec pi = BitVec::random(chip.num_pis(), rng);
      const BitVec st = BitVec::random(chip.num_state_ffs(), rng);
      BitVec data(chip.num_pis() + chip.num_state_ffs());
      for (std::size_t i = 0; i < chip.num_pis(); ++i) data.set(i, pi.get(i));
      for (std::size_t j = 0; j < chip.num_state_ffs(); ++j)
        data.set(chip.num_pis() + j, st.get(j));
      const BitVec gold = golden_response(chip, data);
      if (gold == cleared_key_response(chip, data)) continue;
      ++trials;
      if (attack_e(chip, pi, st) == gold) ++golden_hits;
    }
    ASSERT_GT(trials, 4);
    if (variant == OrapVariant::kBasic) {
      // Basic scheme (Fig. 1): the attack harvests golden responses.
      EXPECT_EQ(golden_hits, trials);
    } else {
      // Modified scheme (Fig. 3): frozen FFs feed wrong responses into
      // the reseeding points — the unlock lands on a wrong key.
      EXPECT_EQ(golden_hits, 0);
    }
  }
}

TEST(TrojanEPrime, ReplayReBreaksModifiedSchemeAtStorageCost) {
  // The natural escalation of attack (e): record the legitimate phase-1
  // response trajectory once, then freeze the FFs and replay it. This
  // defeats the modified scheme too — but its payload scales with
  // response_cycles x response points, which the designer controls. The
  // modified scheme turns a 4-GE Trojan into a multi-hundred-GE one.
  Rng rng(70);
  OrapOptions opt;
  opt.variant = OrapVariant::kModified;
  opt.trojan = TrojanKind::kReplayResponses;
  OrapChip chip = make_chip(71, opt);
  chip.trigger_trojan();
  chip.power_on();  // recording pass (legitimate unlock)
  ASSERT_TRUE(chip.is_unlocked());

  int golden_hits = 0, trials = 0;
  for (int t = 0; t < 10; ++t) {
    const BitVec pi = BitVec::random(chip.num_pis(), rng);
    const BitVec st = BitVec::random(chip.num_state_ffs(), rng);
    BitVec data(chip.num_pis() + chip.num_state_ffs());
    for (std::size_t i = 0; i < chip.num_pis(); ++i) data.set(i, pi.get(i));
    for (std::size_t j = 0; j < chip.num_state_ffs(); ++j)
      data.set(chip.num_pis() + j, st.get(j));
    const BitVec gold = golden_response(chip, data);
    if (gold == cleared_key_response(chip, data)) continue;
    ++trials;
    if (attack_e(chip, pi, st) == gold) ++golden_hits;
  }
  ASSERT_GT(trials, 3);
  EXPECT_EQ(golden_hits, trials);  // replay defeats the modified scheme...

  // ...but the price is the storage, not "a few gates" (paper's (e)):
  const double ge = chip.trojan_cost().gate_equivalents;
  EXPECT_GT(ge, 6.0 * chip.options().response_cycles *
                    (chip.lfsr_size() / 2) * 0.9);
  OrapOptions e_opt;
  e_opt.variant = OrapVariant::kModified;
  e_opt.trojan = TrojanKind::kFreezeStateFfs;
  EXPECT_GT(ge, 50 * make_chip(72, e_opt).trojan_cost().gate_equivalents);
}

TEST(TrojanCosts, MatchPaperArithmetic) {
  // 24-bit key register in these chips.
  {
    OrapOptions opt;
    opt.trojan = TrojanKind::kSuppressPulsePerCell;
    EXPECT_DOUBLE_EQ(make_chip(30, opt).trojan_cost().gate_equivalents,
                     0.5 * 24);
  }
  {
    OrapOptions opt;
    opt.trojan = TrojanKind::kBypassLfsrInScan;
    EXPECT_DOUBLE_EQ(make_chip(31, opt).trojan_cost().gate_equivalents,
                     1.0 + 3.0 * 24);
  }
  {
    OrapOptions opt;
    opt.trojan = TrojanKind::kShadowRegister;
    EXPECT_DOUBLE_EQ(make_chip(32, opt).trojan_cost().gate_equivalents,
                     9.0 * 24);
  }
  {
    OrapOptions opt;
    opt.trojan = TrojanKind::kXorTrees;
    EXPECT_GT(make_chip(33, opt).trojan_cost().gate_equivalents, 9.0 * 24);
  }
  {
    OrapOptions opt;
    opt.trojan = TrojanKind::kFreezeStateFfs;
    EXPECT_LT(make_chip(34, opt).trojan_cost().gate_equivalents, 10.0);
  }
}

TEST(TrojanCosts, OrderingMatchesSecurityAnalysis) {
  // Sec. III: (e) is the cheapest Trojan (hence the modified scheme); the
  // key-extraction Trojans (b)(c)(d) are progressively more expensive
  // than (a).
  auto cost = [](TrojanKind k) {
    OrapOptions opt;
    opt.trojan = k;
    return make_chip(35, opt).trojan_cost().gate_equivalents;
  };
  EXPECT_LT(cost(TrojanKind::kFreezeStateFfs),
            cost(TrojanKind::kSuppressPulsePerCell));
  EXPECT_LT(cost(TrojanKind::kSuppressPulsePerCell),
            cost(TrojanKind::kBypassLfsrInScan));
  EXPECT_LT(cost(TrojanKind::kBypassLfsrInScan),
            cost(TrojanKind::kShadowRegister));
  EXPECT_LT(cost(TrojanKind::kShadowRegister), cost(TrojanKind::kXorTrees));
}

TEST(OrapChip, MultiChainScanQueriesWork) {
  OrapOptions opt;
  opt.num_scan_chains = 4;
  OrapChip chip = make_chip(36, opt);
  Rng rng(37);
  const BitVec data =
      BitVec::random(chip.num_pis() + chip.num_state_ffs(), rng);
  // Query result must match the single-chain chip's (layout-independent).
  OrapChip chip1 = make_chip(36);
  EXPECT_EQ(scan_oracle_query(chip, data), scan_oracle_query(chip1, data));
}

TEST(OrapChip, RejectsAllZeroKey) {
  const Netlist core = chip_core(40);
  LockedCircuit lc = lock_weighted(core, 24, 3, 41);
  lc.correct_key = BitVec(24);  // force the degenerate key
  EXPECT_THROW(OrapChip(std::move(lc), kPis, {}, 42), CheckError);
}

TEST(OrapChip, LastFunctionalResponseLeaksButIsUntargetable) {
  // Sec. II-A: when scan-enable rises, the state FFs still hold the last
  // *unlocked* next-state — the one correct response an attacker can
  // scan out. The paper's argument: without the key the attacker cannot
  // steer the chip into a chosen state during functional operation, so
  // this single leak feeds no oracle-guided attack. We verify both sides:
  // the leak exists, and its state is the true functional trajectory
  // (which only the key-holder can predict).
  OrapChip chip = make_chip(60);
  const LockedCircuit& lc = chip.locked_circuit();
  Rng rng(61);
  // Run a few functional cycles; track the expected trajectory with the
  // correct key (the designer's view).
  Simulator ref(lc.netlist);
  BitVec expect_state = chip.state_ffs();
  BitVec last_pi(chip.num_pis());
  for (int cycle = 0; cycle < 5; ++cycle) {
    last_pi = BitVec::random(chip.num_pis(), rng);
    BitVec data(lc.num_data_inputs);
    for (std::size_t i = 0; i < chip.num_pis(); ++i)
      data.set(i, last_pi.get(i));
    for (std::size_t j = 0; j < chip.num_state_ffs(); ++j)
      data.set(chip.num_pis() + j, expect_state.get(j));
    const BitVec out = ref.run_single(lc.assemble_input(data, lc.correct_key));
    for (std::size_t j = 0; j < chip.num_state_ffs(); ++j)
      expect_state.set(j, out.get(chip.num_pos() + j));
    chip.clock(last_pi);
  }
  // Attacker raises scan-enable and unloads: the state is the correct
  // functional next-state (the "one correct response" of Sec. II-A)...
  chip.set_scan_enable(true);
  const BitVec image = chip.scan_unload();
  BitVec leaked(chip.num_state_ffs());
  for (std::size_t j = 0; j < chip.num_state_ffs(); ++j)
    leaked.set(j, image.get(*chip.scan_image_position(
                      ScanCell::Kind::kStateFf, j)));
  EXPECT_EQ(leaked, expect_state);
  // ...but the key register was cleared before anything could be shifted,
  // so no *further* correct responses are obtainable.
  EXPECT_TRUE(chip.key_register_state().none());
}

TEST(OrapChip, AtpgPatternsApplyThroughScanProtocol) {
  // Table II end-to-end: patterns generated for the locked core apply
  // through the real scan protocol (key bits loaded via the scannable
  // LFSR cells) and produce exactly the simulator-predicted responses.
  OrapChip chip = make_chip(62);
  const LockedCircuit& lc = chip.locked_circuit();
  Simulator sim(lc.netlist);
  Rng rng(63);
  for (int t = 0; t < 10; ++t) {
    // A full test pattern: PIs + state + key bits, all attacker-chosen.
    const BitVec pi = BitVec::random(chip.num_pis(), rng);
    const BitVec st = BitVec::random(chip.num_state_ffs(), rng);
    const BitVec key = BitVec::random(chip.lfsr_size(), rng);

    chip.set_scan_enable(true);
    BitVec image(chip.scan_image_size());
    for (std::size_t j = 0; j < chip.num_state_ffs(); ++j)
      image.set(*chip.scan_image_position(ScanCell::Kind::kStateFf, j),
                st.get(j));
    for (std::size_t i = 0; i < chip.lfsr_size(); ++i)
      image.set(*chip.scan_image_position(ScanCell::Kind::kLfsr, i),
                key.get(i));
    chip.scan_load(image);
    chip.set_scan_enable(false);
    const BitVec po = chip.capture(pi);

    BitVec data(lc.num_data_inputs);
    for (std::size_t i = 0; i < chip.num_pis(); ++i) data.set(i, pi.get(i));
    for (std::size_t j = 0; j < chip.num_state_ffs(); ++j)
      data.set(chip.num_pis() + j, st.get(j));
    const BitVec expect = sim.run_single(lc.assemble_input(data, key));
    for (std::size_t o = 0; o < chip.num_pos(); ++o)
      ASSERT_EQ(po.get(o), expect.get(o)) << "t=" << t;
    // Captured next-state matches too.
    for (std::size_t j = 0; j < chip.num_state_ffs(); ++j)
      ASSERT_EQ(chip.state_ffs().get(j), expect.get(chip.num_pos() + j));
    chip.set_scan_enable(true);  // next pattern
  }
}

TEST(OrapChip, ScanLoadMatchesSerialShifting) {
  // scan_load documents itself as "semantically a full serial shift".
  // Verify: shifting bit sequence b_t into a chain leaves cell d (head
  // first) holding b_{L-1-d}, exactly the image scan_load would place.
  OrapChip serial = make_chip(80);
  OrapChip direct = make_chip(80);
  Rng rng(81);
  const BitVec image = BitVec::random(direct.scan_image_size(), rng);

  direct.set_scan_enable(true);
  direct.scan_load(image);

  serial.set_scan_enable(true);
  const std::size_t len = serial.chains()[0].size();
  ASSERT_EQ(serial.scan_image_size(), len);  // single chain
  for (std::size_t t = 0; t < len; ++t) {
    BitVec head(1);
    head.set(0, image.get(len - 1 - t));
    serial.scan_shift(head);
  }
  // Both chips must now hold identical scan state: compare by unloading.
  EXPECT_EQ(serial.scan_unload(), direct.scan_unload());
}

TEST(OrapChip, UnlockCostAccounting) {
  OrapOptions opt;
  opt.variant = OrapVariant::kModified;
  opt.response_cycles = 12;
  OrapChip chip = make_chip(50, opt);
  const KeySequence& seq = chip.memory_key_sequence();
  EXPECT_EQ(chip.unlock_cycles(), 12 + seq.total_cycles());
  // Modified variant: memory drives half the reseed points.
  EXPECT_EQ(chip.tamper_memory_bits(),
            seq.seeds.size() * (chip.lfsr_size() / 2));
  // The whole unlock stays well under a typical boot budget.
  EXPECT_LT(chip.unlock_cycles(), 200u);
}

TEST(OrapChip, BasicVariantMemoryIsFullWidth) {
  OrapChip chip = make_chip(51);
  const KeySequence& seq = chip.memory_key_sequence();
  EXPECT_EQ(chip.tamper_memory_bits(), seq.seeds.size() * chip.lfsr_size());
  EXPECT_EQ(chip.unlock_cycles(), seq.total_cycles());
}

class VariantSweep : public ::testing::TestWithParam<int> {};

TEST_P(VariantSweep, BothVariantsUnlockAcrossSeeds) {
  for (const OrapVariant v : {OrapVariant::kBasic, OrapVariant::kModified}) {
    OrapOptions opt;
    opt.variant = v;
    opt.num_scan_chains = 1 + GetParam() % 3;
    OrapChip chip = make_chip(100 + GetParam(), opt);
    EXPECT_TRUE(chip.is_unlocked());
    // And the key sequence is not the key itself (the tamper-proof memory
    // never stores the final key).
    bool seq_contains_key = false;
    for (const BitVec& seed : chip.memory_key_sequence().seeds)
      if (seed.size() == chip.correct_key().size() &&
          seed == chip.correct_key())
        seq_contains_key = true;
    EXPECT_FALSE(seq_contains_key);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, VariantSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace orap
