// Tests for the AIG package and resynthesis passes. The load-bearing
// property everywhere: optimization must never change circuit function
// (verified by bit-parallel simulation and by SAT miters).

#include <gtest/gtest.h>

#include "aig/aig.h"
#include "aig/rewrite.h"
#include "gen/circuit_gen.h"
#include "gen/embedded.h"
#include "netlist/simulator.h"
#include "sat/encode.h"
#include "util/rng.h"

namespace orap::aig {
namespace {

TEST(Aig, ConstantsAndTrivialRules) {
  Aig a;
  const AigLit x = a.add_pi();
  EXPECT_EQ(a.and2(x, kLitFalse), kLitFalse);
  EXPECT_EQ(a.and2(x, kLitTrue), x);
  EXPECT_EQ(a.and2(x, x), x);
  EXPECT_EQ(a.and2(x, lit_not(x)), kLitFalse);
  EXPECT_EQ(a.num_ands(), 0u);
}

TEST(Aig, StructuralHashingSharesNodes) {
  Aig a;
  const AigLit x = a.add_pi();
  const AigLit y = a.add_pi();
  const AigLit g1 = a.and2(x, y);
  const AigLit g2 = a.and2(y, x);  // commuted — same node
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(a.num_ands(), 1u);
  EXPECT_EQ(a.find_and(x, y), g1);
  EXPECT_EQ(a.find_and(x, lit_not(y)), Aig::kNoLit);
}

TEST(Aig, XorAndMuxSemantics) {
  Aig a;
  const AigLit x = a.add_pi();
  const AigLit y = a.add_pi();
  const AigLit s = a.add_pi();
  a.add_po(a.xor2(x, y));
  a.add_po(a.mux(s, x, y));
  for (unsigned m = 0; m < 8; ++m) {
    const std::uint64_t xv = (m & 1) ? ~0ULL : 0;
    const std::uint64_t yv = (m & 2) ? ~0ULL : 0;
    const std::uint64_t sv = (m & 4) ? ~0ULL : 0;
    const auto out = a.simulate(std::array{xv, yv, sv});
    EXPECT_EQ(out[0], xv ^ yv);
    EXPECT_EQ(out[1], (sv & yv) | (~sv & xv));
  }
}

// Functional equivalence helper: netlist vs AIG on random words.
void expect_equivalent(const Netlist& n, const Aig& a, std::uint64_t seed,
                       int rounds = 16) {
  ASSERT_EQ(a.num_pis(), n.num_inputs());
  ASSERT_EQ(a.num_pos(), n.num_outputs());
  Rng rng(seed);
  Simulator sim(n);
  for (int r = 0; r < rounds; ++r) {
    std::vector<std::uint64_t> words(n.num_inputs());
    for (auto& w : words) w = rng.word();
    for (std::size_t i = 0; i < n.num_inputs(); ++i)
      sim.set_input_word(i, words[i]);
    sim.run();
    const auto out = a.simulate(words);
    for (std::size_t o = 0; o < n.num_outputs(); ++o)
      ASSERT_EQ(out[o], sim.output_word(o)) << "output " << o;
  }
}

TEST(Aig, FromNetlistPreservesFunction) {
  for (const Netlist& n :
       {make_c17(), make_alu4(), make_ripple_adder(8), make_parity(16),
        make_mux_tree(3)}) {
    expect_equivalent(n, Aig::from_netlist(n), 11);
  }
}

TEST(Aig, ToNetlistRoundTrip) {
  const Netlist n = make_alu4();
  const Aig a = Aig::from_netlist(n);
  const Netlist back = a.to_netlist();
  Simulator s1(n), s2(back);
  Rng rng(13);
  for (int t = 0; t < 64; ++t) {
    const BitVec p = BitVec::random(n.num_inputs(), rng);
    EXPECT_EQ(s1.run_single(p), s2.run_single(p));
  }
}

TEST(Aig, CleanupDropsDeadNodes) {
  Aig a;
  const AigLit x = a.add_pi();
  const AigLit y = a.add_pi();
  const AigLit used = a.and2(x, y);
  a.and2(x, lit_not(y));  // dead
  a.add_po(used);
  EXPECT_EQ(a.num_ands(), 2u);
  const Aig c = a.cleanup();
  EXPECT_EQ(c.num_ands(), 1u);
  EXPECT_EQ(c.num_pis(), 2u);  // interface preserved
}

TEST(Aig, LevelsOfXorChain) {
  Aig a;
  AigLit acc = a.add_pi();
  for (int i = 0; i < 4; ++i) acc = a.xor2(acc, a.add_pi());
  a.add_po(acc);
  EXPECT_EQ(a.depth(), 8u);  // each xor2 = 2 AND levels
}

class ResynthEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ResynthEquivalence, RandomCircuitsUnchangedByResynthesis) {
  GenSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 12;
  spec.num_gates = 400;
  spec.depth = 12;
  spec.seed = 7000 + GetParam();
  const Netlist n = generate_circuit(spec);
  const Aig before = Aig::from_netlist(n);
  const Aig after = resynthesize(before);
  expect_equivalent(n, after, 17 + GetParam());
  EXPECT_LE(after.num_ands(), before.num_ands());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ResynthEquivalence, ::testing::Range(0, 8));

TEST(Resynth, SatMiterProvesEquivalence) {
  // Stronger-than-simulation check on a mid-size circuit.
  GenSpec spec;
  spec.num_inputs = 16;
  spec.num_outputs = 8;
  spec.num_gates = 250;
  spec.depth = 10;
  spec.seed = 4242;
  const Netlist n = generate_circuit(spec);
  const Netlist optimized = resynthesize(Aig::from_netlist(n)).to_netlist();
  sat::Solver s;
  sat::Encoder e(s);
  const auto a = e.encode(n);
  const auto b = e.encode(optimized, a.inputs);
  e.force_not_equal(a.outputs, b.outputs);
  EXPECT_EQ(s.solve(), sat::Solver::Result::kUnsat);
}

TEST(Resynth, RemovesRedundantLogic) {
  // f = (x & y) | (x & !y) == x: rewriting should collapse to zero ANDs.
  Aig a;
  const AigLit x = a.add_pi();
  const AigLit y = a.add_pi();
  a.add_po(a.or2(a.and2(x, y), a.and2(x, lit_not(y))));
  const Aig r = resynthesize(a);
  EXPECT_EQ(r.num_ands(), 0u);
}

TEST(Resynth, SharesDuplicatedCones) {
  // Two identical cones built separately collapse by structural hashing.
  Aig a;
  const AigLit x = a.add_pi();
  const AigLit y = a.add_pi();
  const AigLit z = a.add_pi();
  const AigLit c1 = a.and2(a.and2(x, y), z);
  const AigLit c2 = a.and2(x, a.and2(y, z));
  a.add_po(c1);
  a.add_po(c2);
  const Aig r = resynthesize(a);
  EXPECT_LE(r.num_ands(), 2u);
}

TEST(Balance, ReducesChainDepth) {
  // A linear AND chain of 16 operands balances to depth 4.
  Aig a;
  AigLit acc = a.add_pi();
  for (int i = 0; i < 15; ++i) acc = a.and2(acc, a.add_pi());
  a.add_po(acc);
  EXPECT_EQ(a.depth(), 15u);
  const Aig b = balance(a);
  EXPECT_EQ(b.depth(), 4u);
  // Function preserved: all-ones -> 1, any zero -> 0.
  std::vector<std::uint64_t> ones(16, ~0ULL);
  EXPECT_EQ(b.simulate(ones)[0], ~0ULL);
  ones[7] = 0;
  EXPECT_EQ(b.simulate(ones)[0], 0ULL);
}

TEST(Balance, PreservesFunctionOnRandomCircuits) {
  GenSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 10;
  spec.num_gates = 300;
  spec.depth = 14;
  spec.seed = 555;
  const Netlist n = generate_circuit(spec);
  const Aig a = Aig::from_netlist(n);
  const Aig b = balance(a);
  expect_equivalent(n, b, 56);
  EXPECT_LE(b.depth(), a.depth());
}

TEST(Resynth, StatsPipeline) {
  const Netlist n = make_alu4();
  const AigStats st = resynthesized_stats(n);
  EXPECT_GT(st.ands, 0u);
  EXPECT_GT(st.depth, 0u);
  EXPECT_LE(st.ands, Aig::from_netlist(n).num_ands());
}

TEST(Refactor, CollapsesRedundantCone) {
  // A fanout-free cone computing (a&b&c) | (a&b&!c) == a&b through six
  // nodes; the 6-leaf refactorer must rebuild it as one AND.
  Aig a;
  const AigLit x = a.add_pi();
  const AigLit y = a.add_pi();
  const AigLit z = a.add_pi();
  const AigLit t1 = a.and2(a.and2(x, y), z);
  // Built with different association so strash cannot share the x&y term
  // (every interior node stays single-fanout -> one big cone).
  const AigLit t2 = a.and2(x, a.and2(y, lit_not(z)));
  a.add_po(a.or2(t1, t2));
  ASSERT_EQ(a.num_ands(), 5u);
  const Aig r = refactor_pass(a);
  EXPECT_LE(r.num_ands(), 2u);
  // Function check: output == x & y.
  const std::uint64_t vx = 0xAA, vy = 0xCC, vz = 0xF0;
  EXPECT_EQ(r.simulate(std::array{vx, vy, vz})[0] & 0xFF, (vx & vy) & 0xFF);
}

TEST(Refactor, PreservesFunctionOnRandomCircuits) {
  GenSpec spec;
  spec.num_inputs = 22;
  spec.num_outputs = 10;
  spec.num_gates = 350;
  spec.depth = 11;
  spec.seed = 888;
  const Netlist n = generate_circuit(spec);
  const Aig before = Aig::from_netlist(n);
  const Aig after = refactor_pass(before);
  expect_equivalent(n, after, 999);
  EXPECT_LE(after.num_ands(), before.num_ands());
}

TEST(Resynth, ExhaustiveThreeVariableFunctions) {
  // All 256 functions of 3 variables, built naively as sums of minterms,
  // resynthesized, and checked for exact equivalence — exercises every
  // decomposition path of the cut-function synthesizer.
  for (unsigned tt = 0; tt < 256; ++tt) {
    Aig a;
    const AigLit x0 = a.add_pi();
    const AigLit x1 = a.add_pi();
    const AigLit x2 = a.add_pi();
    AigLit acc = kLitFalse;
    for (unsigned m = 0; m < 8; ++m) {
      if (!((tt >> m) & 1)) continue;
      AigLit term = kLitTrue;
      term = a.and2(term, (m & 1) ? x0 : lit_not(x0));
      term = a.and2(term, (m & 2) ? x1 : lit_not(x1));
      term = a.and2(term, (m & 4) ? x2 : lit_not(x2));
      acc = a.or2(acc, term);
    }
    a.add_po(acc);
    const Aig r = resynthesize(a);
    EXPECT_LE(r.num_ands(), a.num_ands());
    // Exhaustive functional check over all 8 input combinations packed
    // into one 64-bit word.
    const std::uint64_t v0 = 0xAA, v1 = 0xCC, v2 = 0xF0;
    const auto out = r.simulate(std::array{v0, v1, v2});
    EXPECT_EQ(out[0] & 0xFF, static_cast<std::uint64_t>(tt)) << "tt=" << tt;
  }
}

TEST(Resynth, ParityIsAlreadyOptimal) {
  // XOR tree: 3 ANDs per XOR is optimal in an AIG; resynthesis must not
  // bloat it.
  const Netlist n = make_parity(8);
  const Aig before = Aig::from_netlist(n);
  const Aig after = resynthesize(before);
  EXPECT_LE(after.num_ands(), before.num_ands());
  expect_equivalent(n, after, 77);
}

}  // namespace
}  // namespace orap::aig
