// Tests for the structural attacks (SPS, removal, bypass) and the Verilog
// writer — including the paper's claims that SPS/removal defeat Anti-SAT,
// bypass defeats SARLock, and none of them apply to OraP + weighted
// locking.

#include <gtest/gtest.h>

#include "attacks/oracle.h"
#include "attacks/structural.h"
#include "chip/chip.h"
#include "gen/circuit_gen.h"
#include "gen/embedded.h"
#include "locking/locking.h"
#include "netlist/simulator.h"
#include "netlist/verilog_io.h"
#include "util/rng.h"

namespace orap {
namespace {

Netlist target(std::uint64_t seed) {
  GenSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 20;
  spec.num_gates = 400;
  spec.depth = 9;
  spec.seed = seed;
  return generate_circuit(spec);
}

bool equivalent_on_samples(const Netlist& a, const Netlist& b,
                           std::uint64_t seed, int trials = 200) {
  if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs())
    return false;
  Simulator sa(a), sb(b);
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    const BitVec p = BitVec::random(a.num_inputs(), rng);
    if (sa.run_single(p) != sb.run_single(p)) return false;
  }
  return true;
}

TEST(Sps, AntiSatBlockTopsRanking) {
  const Netlist n = target(1);
  const LockedCircuit lc = lock_antisat(n, 24, 2);
  const auto ranking = sps_rank(lc, 64, 3);
  ASSERT_FALSE(ranking.empty());
  // The Anti-SAT block output fires on ~2^-12 of random (X, K): skew ~0.5.
  EXPECT_GT(ranking[0].skew, 0.45);
  EXPECT_LT(ranking[0].prob_one, 0.05);
}

TEST(Sps, WeightedLockingSkewIsNotActionable) {
  // Ordinary deep logic also shows probability skew, so the ranking is
  // not empty — but unlike Anti-SAT's block, tying any weighted-locking
  // candidate off never disconnects the key logic (checked structurally
  // by removal_attack, which therefore reports failure).
  const Netlist n = target(2);
  const LockedCircuit lc = lock_weighted(n, 24, 3, 4);
  const auto ranking = sps_rank(lc, 64, 5);
  EXPECT_FALSE(removal_attack(lc, 64, 5).has_value());
  (void)ranking;
}

TEST(Removal, RecoversAntiSatOriginal) {
  // Removal attack: tie off the skewed block; the result must be the
  // original circuit (on the data inputs, key inputs now dead).
  const Netlist n = target(3);
  const LockedCircuit lc = lock_antisat(n, 24, 6);
  const auto r = removal_attack(lc, 64, 7);
  ASSERT_TRUE(r.has_value());
  // Compare recovered(X, any key) vs original(X).
  Simulator orig(n), rec(r->recovered);
  Rng rng(8);
  for (int t = 0; t < 200; ++t) {
    const BitVec x = BitVec::random(n.num_inputs(), rng);
    const BitVec key = BitVec::random(lc.num_key_inputs, rng);
    const BitVec full = lc.assemble_input(x, key);
    const BitVec out = rec.run_single(full);
    const BitVec expect = orig.run_single(x);
    // Compare on the original outputs.
    for (std::size_t o = 0; o < n.num_outputs(); ++o)
      ASSERT_EQ(out.get(o), expect.get(o)) << "trial " << t;
  }
}

TEST(Removal, DoesNotApplyToWeightedLocking) {
  const Netlist n = target(4);
  const LockedCircuit lc = lock_weighted(n, 24, 3, 9);
  EXPECT_FALSE(removal_attack(lc, 64, 10).has_value());
}

TEST(Bypass, DefeatsSarlockWithGoldenOracle) {
  const Netlist n = target(5);
  const LockedCircuit lc = lock_sarlock(n, 12, 11);
  GoldenOracle oracle(lc);
  const auto r = bypass_attack(lc, oracle, 8, 12);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->complete);
  EXPECT_LE(r->correction_points, 2u);  // at most the two wrong keys' points
  // The bypassed circuit is functionally the original.
  Simulator orig(n), byp(r->bypassed);
  Rng rng(13);
  for (int t = 0; t < 300; ++t) {
    const BitVec x = BitVec::random(n.num_inputs(), rng);
    ASSERT_EQ(byp.run_single(x), orig.run_single(x));
  }
  // Including at the wrong keys' own corruption points.
  for (const BitVec* k : {&r->wrong_key, &lc.correct_key}) {
    BitVec probe(n.num_inputs());
    for (std::size_t i = 0; i < k->size() && i < probe.size(); ++i)
      probe.set(i, k->get(i));
    EXPECT_EQ(byp.run_single(probe), orig.run_single(probe));
  }
}

TEST(Bypass, FailsOnWeightedLocking) {
  // High output corruptibility = astronomically many diff points; the
  // enumeration cap trips and the attack reports failure.
  const Netlist n = target(6);
  const LockedCircuit lc = lock_weighted(n, 18, 3, 14);
  GoldenOracle oracle(lc);
  EXPECT_FALSE(bypass_attack(lc, oracle, 16, 15).has_value());
}

TEST(Bypass, AgainstOrapReproducesOnlyLockedBehaviour) {
  // Through an OraP scan oracle the bypass "succeeds" on SARLock's tiny
  // diff set — but it patches toward the locked responses, so the result
  // still differs from the true original at the corruption points of the
  // cleared-key circuit. The attacker gains nothing.
  const Netlist core = target(7);
  LockedCircuit lc = lock_sarlock(core, 10, 16);
  OrapChip chip(std::move(lc), 8, {}, 17);
  ChipScanOracle oracle(chip);
  const auto r = bypass_attack(chip.locked_circuit(), oracle, 8, 18);
  ASSERT_TRUE(r.has_value());
  // Bypassed circuit == cleared-key circuit (what the oracle exposed)
  // wherever they were patched; crucially NOT the unlocked original at
  // the secret key's corruption point. Verify: bypassed behaviour matches
  // the zero-key locked circuit everywhere we sample.
  const LockedCircuit& view = chip.locked_circuit();
  Simulator locked_sim(view.netlist), byp(r->bypassed);
  Rng rng(19);
  const BitVec zero_key(view.num_key_inputs);
  int agree = 0;
  for (int t = 0; t < 100; ++t) {
    const BitVec x = BitVec::random(view.num_data_inputs, rng);
    if (byp.run_single(x) ==
        locked_sim.run_single(view.assemble_input(x, zero_key)))
      ++agree;
  }
  EXPECT_EQ(agree, 100);
}

TEST(Verilog, WritesParsableStructure) {
  const Netlist n = make_alu4();
  const std::string v = write_verilog_string(n);
  EXPECT_NE(v.find("module alu4"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input op0;"), std::string::npos);
  EXPECT_NE(v.find("output y0;"), std::string::npos);
  // One primitive per logic gate (MUX becomes an assign).
  std::size_t prims = 0, pos = 0;
  for (const char* kw : {"\n  and ", "\n  or ", "\n  xor ", "\n  not "}) {
    pos = 0;
    while ((pos = v.find(kw, pos)) != std::string::npos) {
      ++prims;
      ++pos;
    }
  }
  EXPECT_GT(prims, 10u);
}

TEST(Verilog, SanitizesNumericNames) {
  // c17 uses bare numeric signal names; Verilog identifiers cannot start
  // with a digit.
  const Netlist n = make_c17();
  const std::string v = write_verilog_string(n);
  EXPECT_EQ(v.find("input 1;"), std::string::npos);
  EXPECT_NE(v.find("n_1"), std::string::npos);
}

TEST(Verilog, LockedCircuitExports) {
  const Netlist n = target(8);
  const LockedCircuit lc = lock_weighted(n, 12, 3, 20);
  const std::string v = write_verilog_string(lc.netlist);
  EXPECT_NE(v.find("input key0;"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

}  // namespace
}  // namespace orap
